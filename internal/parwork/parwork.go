// Package parwork is the minimal indexed worker pool shared by the
// harness and the fault-injection campaign engine. Both fan independent
// jobs (experiment runs, campaign cases) across host goroutines and then
// aggregate results serially in job order, so parallel execution changes
// wall-clock time but never any reported number.
package parwork

import (
	"sync"
	"sync/atomic"
)

// Do runs fn(i) for every i in [0, n), on min(workers, n) goroutines.
// Jobs are claimed in index order; with workers <= 1 the loop runs
// inline, in order, on the calling goroutine. fn must write its result
// into a caller-owned slot indexed by i — Do itself returns only after
// every job has finished, so the caller can aggregate the slots in
// deterministic job order afterwards.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
