package parwork

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		Do(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestDoSerialRunsInOrder(t *testing.T) {
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
}

func TestDoEmpty(t *testing.T) {
	Do(0, 4, func(i int) { t.Fatal("fn called for n=0") })
	Do(-1, 4, func(i int) { t.Fatal("fn called for n<0") })
}
