// Package analysistest is a golden-fixture harness for lpvet analyzers,
// modeled on x/tools' package of the same name. A fixture is a directory
// of .go files (conventionally testdata/src/<pkg>/ under the analyzer)
// annotated with want comments:
//
//	start := time.Now() // want "wall-clock"
//
// Each `// want "re1" "re2"` lists regexps, one per expected diagnostic
// on that line. The harness type-checks the fixture against the real
// module (fixtures may import gpulp packages) and fails the test on any
// missing or unexpected diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gpulp/internal/analysis"
	"gpulp/internal/analysis/load"
)

// Run checks analyzer a against the fixture package in dir (relative to
// the test's working directory).
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := load.New(abs)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(abs, filepath.Base(abs))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunOnPackage(a, loader.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := parseWants(loader.Fset, abs)
	if err != nil {
		t.Fatal(err)
	}

	// Match diagnostics against expectations line by line.
	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		p := loader.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		msgs := got[k]
		matched := -1
		for i, m := range msgs {
			if w.re.MatchString(m) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %v)", w.file, w.line, w.re, msgs)
			continue
		}
		got[k] = append(msgs[:matched], msgs[matched+1:]...)
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts want comments from every fixture file.
func parseWants(fset *token.FileSet, dir string) ([]want, error) {
	var wants []want
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats, err := splitQuoted(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want: %v", path, i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

// splitQuoted parses `"a" "b c"` into its quoted pieces.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
