// Package persistbarrier flags writes that reach the durable pool (or
// the cache lines fronting it) without going through the Store/HostWrite
// barrier API.
//
// Two bypass shapes exist in this codebase:
//
//  1. Inside memsim itself: a direct assignment or copy into the
//     Memory.nvm backing array. Every durable mutation must route
//     through mutateNVM/mutateNVMLine so an active copy-on-write
//     snapshot preserves the pre-mutation bytes; a raw write silently
//     corrupts the frozen view every parallel worker is reading.
//
//  2. Anywhere: mutating the byte slice returned by (*Memory).Load. That
//     slice aliases live cache-line storage — writing through it changes
//     the coherent value without marking the line dirty, so the change
//     is never written back, never observed, and never checksummed: a
//     durable write that bypassed the LP barrier entirely.
//
// The runtime counterpart is persistcheck's bit-exact durable oracle,
// which only catches a bypass on schedules where the stale line is
// eventually compared.
package persistbarrier

import (
	"go/ast"
	"go/types"

	"gpulp/internal/analysis"
)

// Analyzer is the persistbarrier pass.
var Analyzer = &analysis.Analyzer{
	Name: "persistbarrier",
	Doc: "durable writes must go through the Store/HostWrite barrier API: " +
		"flag raw memsim.nvm writes outside the snapshot-safe mutators and " +
		"mutation of cache-aliasing Load results",
	Run: run,
}

// nvmMutators are the memsim functions allowed to write m.nvm raw: the
// two snapshot-aware mutators, plus the growth/alloc paths that only
// ever append fresh zero lines (never overwrite live durable bytes).
var nvmMutators = map[string]bool{
	"mutateNVM":     true,
	"mutateNVMLine": true,
	"ensureNVM":     true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRawNVM(pass, fd)
			checkLoadAliases(pass, fd)
		}
	}
	return nil
}

// --- shape 1: raw writes to Memory.nvm ---

func checkRawNVM(pass *analysis.Pass, fd *ast.FuncDecl) {
	if nvmMutators[fd.Name.Name] {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if base := indexedNVM(pass, lhs); base != nil {
					pass.Reportf(lhs.Pos(),
						"raw write to Memory.nvm bypasses the snapshot-safe mutators: route through mutateNVM/mutateNVMLine")
				}
			}
		case *ast.IncDecStmt:
			if base := indexedNVM(pass, n.X); base != nil {
				pass.Reportf(n.X.Pos(),
					"raw write to Memory.nvm bypasses the snapshot-safe mutators: route through mutateNVM/mutateNVMLine")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if isNVMSelector(pass, n.Args[0]) {
						pass.Reportf(n.Args[0].Pos(),
							"copy into Memory.nvm bypasses the snapshot-safe mutators: route through mutateNVM/mutateNVMLine")
					}
				}
			}
		}
		return true
	})
}

// indexedNVM returns the nvm selector when e is nvm[...] (an element
// write), else nil.
func indexedNVM(pass *analysis.Pass, e ast.Expr) ast.Expr {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	if isNVMSelector(pass, ix.X) {
		return ix.X
	}
	return nil
}

// isNVMSelector reports whether e denotes the nvm field of a memsim
// Memory (possibly sliced: m.nvm[a:b] counts).
func isNVMSelector(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "nvm" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return false
	}
	pkg := obj.Pkg()
	if pkg == nil || pkg.Name() != "memsim" {
		return false
	}
	// The field must belong to the Memory struct (Snapshot also has an
	// nvm field — its frozen array must never be written either, so both
	// owners count).
	return true
}

// --- shape 2: writing through a Load-aliased slice ---

// checkLoadAliases tracks, per function, variables bound to the first
// result of (*memsim.Memory).Load and flags writes through them.
func checkLoadAliases(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := map[*types.Var]ast.Expr{} // var -> the Load call that bound it
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// b, res := m.Load(...) — multi-assign from one call.
		if len(asg.Rhs) == 1 {
			if call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr); ok &&
				analysis.IsMethodOn(pass.TypesInfo, call, "memsim", "Memory", "Load") {
				if len(asg.Lhs) > 0 {
					if id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident); ok {
						if v := varOf(pass.TypesInfo, id); v != nil {
							tainted[v] = call
						}
					}
				}
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}
	report := func(pos ast.Node, v *types.Var) {
		pass.Reportf(pos.Pos(),
			"write through %q mutates cache-line storage aliased by Load: the change is never marked dirty, "+
				"never written back, and bypasses the LP barrier — use Store instead", v.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := indexedVar(pass, lhs); v != nil && tainted[v] != nil {
					report(lhs, v)
				}
			}
		case *ast.IncDecStmt:
			if v := indexedVar(pass, n.X); v != nil && tainted[v] != nil {
				report(n.X, v)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if v := sliceBaseVar(pass, n.Args[0]); v != nil && tainted[v] != nil {
						report(n.Args[0], v)
					}
				}
			}
		}
		return true
	})
}

func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// indexedVar returns the variable v when e is v[...] .
func indexedVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return varOf(pass.TypesInfo, id)
}

// sliceBaseVar returns v for expressions v or v[a:b].
func sliceBaseVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return varOf(pass.TypesInfo, id)
}
