package persistbarrier_test

import (
	"testing"

	"gpulp/internal/analysis/analysistest"
	"gpulp/internal/analysis/passes/persistbarrier"
)

func TestRawNVMWrites(t *testing.T) {
	analysistest.Run(t, persistbarrier.Analyzer, "testdata/src/memsim")
}

func TestLoadAliasWrites(t *testing.T) {
	analysistest.Run(t, persistbarrier.Analyzer, "testdata/src/loadalias")
}
