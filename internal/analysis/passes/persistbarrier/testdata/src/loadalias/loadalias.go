// Fixture for the persistbarrier analyzer's Load-alias shape, against
// the real memsim: the byte slice Load returns aliases live cache-line
// storage, so writing through it is a durable write that bypasses the
// barrier (never marked dirty, never written back, never checksummed).
package loadalias

import "gpulp/internal/memsim"

func mutateThroughLoad(m *memsim.Memory) {
	b, _ := m.Load(memsim.AccessData, 128, 4)
	b[0] = 1 // want "bypasses the LP barrier"
}

func copyThroughLoad(m *memsim.Memory, buf []byte) {
	b, _ := m.Load(memsim.AccessData, 128, 4)
	copy(b, buf) // want "bypasses the LP barrier"
}

func copySlicedThroughLoad(m *memsim.Memory, buf []byte) {
	b, _ := m.Load(memsim.AccessData, 128, 8)
	copy(b[4:], buf) // want "bypasses the LP barrier"
}

func readOnly(m *memsim.Memory) byte {
	b, _ := m.Load(memsim.AccessData, 128, 4)
	return b[0] // reads are what Load is for
}

func copyOut(m *memsim.Memory) []byte {
	b, _ := m.Load(memsim.AccessData, 128, 4)
	out := make([]byte, 4)
	copy(out, b) // aliased slice as source: fine
	return out
}

func properStore(m *memsim.Memory) {
	m.Store(memsim.AccessData, 128, []byte{1, 2, 3, 4}) // the barrier API
}

func unrelatedWrite(m *memsim.Memory, scratch []byte) {
	_, _ = m.Load(memsim.AccessData, 128, 4)
	scratch[0] = 1 // not an aliased slice
}
