// Fixture for the persistbarrier analyzer's raw-nvm shape: a miniature
// of the real memsim internals. Only the snapshot-safe mutators may
// touch the nvm backing array directly.
package memsim

type Memory struct {
	nvm []byte
}

func (m *Memory) mutateNVM(addr uint64, buf []byte) {
	copy(m.nvm[addr:], buf) // the mutator itself: allowed
}

func (m *Memory) mutateNVMLine(lineAddr uint64, data []byte) {
	copy(m.nvm[lineAddr:lineAddr+128], data) // allowed
}

func (m *Memory) ensureNVM(end int) {
	if end > len(m.nvm) {
		grown := make([]byte, end)
		copy(grown, m.nvm) // nvm as source: fine
		m.nvm = grown      // whole-array replacement: fine
	}
}

func (m *Memory) restoreRaw(img []byte) {
	copy(m.nvm, img) // want "copy into Memory.nvm"
	for i := len(img); i < len(m.nvm); i++ {
		m.nvm[i] = 0 // want "raw write to Memory.nvm"
	}
}

func (m *Memory) pokeByte(addr uint64, b byte) {
	m.nvm[addr] = b // want "raw write to Memory.nvm"
}

func (m *Memory) flipBit(addr uint64, bit uint8) {
	b := m.nvm[addr] ^ (1 << bit) // read: fine
	m.mutateNVM(addr, []byte{b})
}

func (m *Memory) sliceCopy(addr uint64, buf []byte) {
	copy(m.nvm[addr:addr+8], buf) // want "copy into Memory.nvm"
}

func (m *Memory) peek(addr uint64, size int) []byte {
	out := make([]byte, size)
	copy(out, m.nvm[addr:]) // nvm as source: fine
	return out
}
