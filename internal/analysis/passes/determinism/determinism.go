// Package determinism flags wall-clock and ambient-randomness escapes in
// contract-carrying packages, plus map iteration that feeds
// order-sensitive sinks without an intervening sort.
//
// The runtime counterpart is the root determinism suite: every report,
// durable image, and campaign summary must be bit-identical at Workers=1
// and Workers=8, across GOMAXPROCS. The three ways code breaks that
// contract in practice are reading the clock, consulting the global
// math/rand source, and letting Go's randomized map iteration order leak
// into output or durable writes. All three are detectable statically.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpulp/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name:         "determinism",
	ContractOnly: true,
	Doc: "flag time.Now/global math/rand/unsorted map iteration in contract packages: " +
		"anything that can make two identically-seeded runs diverge",
	Run: run,
}

// wallClock are the time package functions that read the wall clock (or
// arm wall-clock timers). time.Duration arithmetic is fine.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRand are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource) are allowed here;
// the seedplumb pass polices their seeds.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(),
				"time.%s in a contract package: wall-clock reads break seeded reproducibility", fn.Name())
		}
	case "math/rand":
		if globalRand[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global source: thread a seeded *rand.Rand instead", fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// feeds an order-sensitive sink: an append to a slice declared outside
// the loop that is not subsequently sorted in the same function, a
// durable write (memsim Store*/HostWrite*), or direct formatted output.
// Order-insensitive bodies — counter updates, map-to-map copies, min/max
// folds — pass.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var appended []*types.Var // slice vars appended to inside the body
	flagged := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if flagged {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := appendTarget(pass.TypesInfo, call); v != nil {
			if !declaredWithin(pass.TypesInfo, v, rng) {
				appended = append(appended, v)
			}
			return true
		}
		if isOrderSink(pass.TypesInfo, call) {
			pass.Reportf(rng.Pos(),
				"map iteration feeds an order-sensitive sink (%s): iterate a sorted key slice instead",
				sinkName(pass.TypesInfo, call))
			flagged = true
		}
		return true
	})
	if flagged {
		return
	}
	for _, v := range appended {
		if !sortedAfter(pass, file, rng, v) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %q without a subsequent sort: iteration order leaks into the slice", v.Name())
			return
		}
	}
}

// appendTarget returns the variable v for statements shaped
// `v = append(v, ...)` inside an assignment, else nil.
func appendTarget(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[base].(*types.Var)
	return v
}

// declaredWithin reports whether v's declaration lies inside node.
func declaredWithin(info *types.Info, v *types.Var, node ast.Node) bool {
	return v.Pos() >= node.Pos() && v.Pos() < node.End()
}

// isOrderSink reports whether call emits in iteration order somewhere a
// reader (or the durable image) can see: formatted output, writers, or a
// memsim durable write.
func isOrderSink(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	recv := analysis.NamedReceiver(fn)
	if recv != nil && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Name() == "memsim" {
		switch recv.Obj().Name() {
		case "Memory", "Region":
			name := fn.Name()
			if name == "Store" || name == "HostWrite" ||
				hasPrefix(name, "Store") || hasPrefix(name, "HostWrite") {
				return true
			}
		}
	}
	return false
}

func hasPrefix(s, p string) bool { return len(s) > len(p) && s[:len(p)] == p }

func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "call"
	}
	if recv := analysis.NamedReceiver(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// sortedAfter reports whether, after the range loop in the same
// function, v is passed to a sort (sort.* or slices.Sort*) call.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, v *types.Var) bool {
	fn := enclosingFunc(file, rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		// Only calls after the loop can fix the order.
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		isSort := pkg == "sort" || (pkg == "slices" && hasPrefixOrEq(callee.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if mentionsVar(pass.TypesInfo, arg, v) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func hasPrefixOrEq(s, p string) bool { return s == p || hasPrefix(s, p) }

func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var enc ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				enc = n // innermost wins: later matches are nested deeper
			}
		}
		return true
	})
	return enc
}
