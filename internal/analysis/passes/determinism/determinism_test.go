package determinism_test

import (
	"testing"

	"gpulp/internal/analysis/analysistest"
	"gpulp/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/determ")
}
