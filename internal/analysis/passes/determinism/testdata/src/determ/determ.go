// Fixture for the determinism analyzer: wall-clock reads, global rand,
// and map-iteration order leaks, next to the idioms that must pass.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want "wall-clock reads break seeded reproducibility"
	return t.UnixNano()
}

func since(start time.Time) bool {
	return time.Since(start) > time.Second // want "wall-clock reads"
}

func timerArm(d time.Duration) <-chan time.Time {
	return time.After(d) // want "wall-clock"
}

func globalSource() int {
	return rand.Intn(10) // want "global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global source"
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func durationMath(d time.Duration) time.Duration {
	return d * 2 // fine: no clock read
}

func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m { // want "without a subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapOrderSliceSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want "order-sensitive sink"
		fmt.Println(k, v)
	}
}

func mapFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // fine: slice iteration is ordered
		out = append(out, x)
	}
	return out
}

func loopLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int // declared inside the loop: order cannot leak out
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
