// Package seedplumb enforces seed threading in contract packages: every
// rand.NewSource / rand.New seed must derive from a threaded seed value
// (a config field, parameter, or a value computed from one), never a
// compile-time constant, and no contract package may hold RNG state in a
// package-level variable.
//
// A constant seed makes a scenario generator produce the same "random"
// campaign on every run regardless of the -seed flag — coverage silently
// collapses to one trajectory while the reports keep claiming seeded
// breadth. Package-level RNGs are worse: they thread hidden state across
// callers, so two identically-seeded runs diverge the moment call order
// changes (exactly what the Workers=1-vs-8 contract forbids).
package seedplumb

import (
	"go/ast"

	"gpulp/internal/analysis"
)

// Analyzer is the seedplumb pass.
var Analyzer = &analysis.Analyzer{
	Name:         "seedplumb",
	ContractOnly: true,
	Doc: "rand.NewSource seeds must derive from threaded seed values, not " +
		"constants, and RNG state must not live in package-level variables",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Package-level RNG state: a top-level var whose initializer
		// constructs any math/rand value.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					ast.Inspect(val, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if isRandCtor(pass, call) {
							pass.Reportf(call.Pos(),
								"package-level RNG state: construct the *rand.Rand where the seed is threaded in")
							return false
						}
						return true
					})
				}
			}
		}
		// Constant seeds at any construction site.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRandCtor(pass, call) || len(call.Args) == 0 {
				return true
			}
			allConst := true
			for _, arg := range call.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
					allConst = false
					break
				}
			}
			if allConst {
				pass.Reportf(call.Pos(),
					"constant seed: derive the seed from a threaded parameter or config field so -seed actually varies the run")
			}
			return true
		})
	}
	return nil
}

// isRandCtor matches the math/rand (and math/rand/v2) constructors that
// bake in a source or seed.
func isRandCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, pkg := range []string{"math/rand", "math/rand/v2"} {
		for _, name := range []string{"NewSource", "New", "NewPCG", "NewChaCha8"} {
			if analysis.IsPkgFunc(pass.TypesInfo, call, pkg, name) {
				return true
			}
		}
	}
	return false
}
