package seedplumb_test

import (
	"testing"

	"gpulp/internal/analysis/analysistest"
	"gpulp/internal/analysis/passes/seedplumb"
)

func TestSeedplumb(t *testing.T) {
	analysistest.Run(t, seedplumb.Analyzer, "testdata/src/seedfix")
}
