// Fixture for the seedplumb analyzer: constant seeds and package-level
// RNG state, next to properly threaded seeds.
package seedfix

import "math/rand"

var globalRNG = rand.New(rand.NewSource(1)) // want "package-level RNG state" "constant seed"

var defaultBudget = 100 // non-RNG package state: fine

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "constant seed"
}

func constExprSeed() *rand.Rand {
	return rand.New(rand.NewSource(int64(7 * 13))) // want "constant seed"
}

func threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derived(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed ^ 0x9e3779b97f4a7c15)))
}

type cfg struct{ Seed uint64 }

func fromConfig(c cfg) *rand.Rand {
	return rand.New(rand.NewSource(int64(c.Seed)))
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	return x ^ (x >> 31)
}

func viaHelper(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix(seed)))) // call result: not constant
}
