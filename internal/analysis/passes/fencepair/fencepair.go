// Package fencepair checks that every memsim write-fence erected with
// (*Memory).FenceRange is released with Unfence on all paths out of the
// erecting function — including early error returns — or covered by a
// deferred Unfence (which also covers panics).
//
// The walk is lostcancel-style but structural: a path-sensitive pass
// over the function body tracks the set of live FenceRange call sites,
// merging at branch joins and reporting any fence still live at a
// return or at fall-off-the-end. A protocol that leaks a fence by
// design (a failed-over shard stays fenced forever) documents itself
// with //lpvet:allow fencepair <reason>.
//
// The runtime counterpart: memsim panics when a Store or HostWrite lands
// in a fenced range, and the cluster campaign audits the pool image —
// both only fire on the schedules a test happens to execute.
package fencepair

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpulp/internal/analysis"
)

// Analyzer is the fencepair pass.
var Analyzer = &analysis.Analyzer{
	Name: "fencepair",
	Doc: "every memsim.FenceRange must be matched by Unfence on all paths " +
		"(or a deferred Unfence), so no code path leaks a write fence",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Fast path: no FenceRange call, nothing to track. Function literals
	// inside fd are walked as part of the same body; a fence erected in a
	// closure is attributed to the closure's paths only (handled below by
	// skipping FuncLit bodies in the statement walk and recursing).
	if !containsFenceCall(pass, fd.Body) {
		return
	}
	w := &walker{pass: pass}
	// A deferred Unfence anywhere in the function covers every exit,
	// including panics.
	if w.hasDeferredUnfence(fd.Body) {
		return
	}
	out := w.seq(fd.Body.List, nil)
	w.flush(out.fall)
	for pos := range w.leaked {
		pass.Reportf(pos, "fence erected here can reach a function exit without Unfence "+
			"(add a deferred Unfence, release it on every path, or document the leak with %s fencepair <reason>)",
			analysis.AllowPrefix)
	}
}

// flow summarizes walking a statement (list): fall is the set of live
// fence positions on paths that fall through; reachable reports whether
// any path falls through at all.
type flow struct {
	fall      fenceSet
	reachable bool
}

// fenceSet is the set of live FenceRange call positions on some path.
type fenceSet map[token.Pos]bool

func union(a, b fenceSet) fenceSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := fenceSet{}
	for p := range a {
		out[p] = true
	}
	for p := range b {
		out[p] = true
	}
	return out
}

type walker struct {
	pass   *analysis.Pass
	leaked map[token.Pos]bool
	// ctxs tracks enclosing breakable statements; break/continue route
	// their fence state to the matching context's exit set, which the
	// loop/switch folds into its own fall-through.
	ctxs []*branchCtx
}

// branchCtx is one enclosing for/range (isLoop) or switch/select.
type branchCtx struct {
	isLoop bool
	exits  fenceSet
}

func (w *walker) push(isLoop bool) *branchCtx {
	c := &branchCtx{isLoop: isLoop}
	w.ctxs = append(w.ctxs, c)
	return c
}

func (w *walker) pop() { w.ctxs = w.ctxs[:len(w.ctxs)-1] }

// branchExit records state flowing out of a break (innermost breakable)
// or continue (innermost loop). Labeled branches conservatively target
// the innermost matching context: the state still unions outward through
// every enclosing fall-through, so this can only over-approximate where
// the fence is live — the safe direction.
func (w *walker) branchExit(tok token.Token, state fenceSet) {
	for i := len(w.ctxs) - 1; i >= 0; i-- {
		c := w.ctxs[i]
		if tok == token.CONTINUE && !c.isLoop {
			continue
		}
		c.exits = union(c.exits, state)
		return
	}
}

// flush records every fence in s as leaked.
func (w *walker) flush(s fenceSet) {
	for p := range s {
		if w.leaked == nil {
			w.leaked = map[token.Pos]bool{}
		}
		w.leaked[p] = true
	}
}

// seq walks a statement list with entry state in, returning the join of
// all fall-through paths.
func (w *walker) seq(stmts []ast.Stmt, in fenceSet) flow {
	cur := flow{fall: in, reachable: true}
	for _, s := range stmts {
		if !cur.reachable {
			// Dead code after return/panic: still walk for nested fences
			// in closures, but with an empty state.
			w.stmt(s, nil)
			continue
		}
		cur = w.stmt(s, cur.fall)
	}
	return cur
}

// stmt walks one statement. in is the live-fence set on entry.
func (w *walker) stmt(s ast.Stmt, in fenceSet) flow {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return flow{w.exprEffect(s.X, in), !isNoReturn(w.pass, s.X)}
	case *ast.AssignStmt:
		out := in
		for _, e := range s.Rhs {
			out = w.exprEffect(e, out)
		}
		return flow{out, true}
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.IncDecStmt, *ast.SendStmt:
		return flow{in, true}
	case *ast.ReturnStmt:
		out := in
		for _, e := range s.Results {
			out = w.exprEffect(e, out)
		}
		w.flush(out)
		return flow{nil, false}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			w.branchExit(s.Tok, in)
		}
		// goto: control flow we do not model; the state is dropped, which
		// can only under-report.
		return flow{nil, false}
	case *ast.BlockStmt:
		return w.seq(s.List, in)
	case *ast.IfStmt:
		st := in
		if s.Init != nil {
			f := w.stmt(s.Init, st)
			st = f.fall
		}
		st = w.exprEffect(s.Cond, st)
		then := w.seq(s.Body.List, st)
		els := flow{fall: st, reachable: true}
		if s.Else != nil {
			els = w.stmt(s.Else, st)
		}
		return joinBranches(then, els)
	case *ast.ForStmt:
		st := in
		if s.Init != nil {
			st = w.stmt(s.Init, st).fall
		}
		if s.Cond != nil {
			st = w.exprEffect(s.Cond, st)
		}
		// The body may run zero times (post-loop keeps the entry fences),
		// leave a fence held on its fall-through, or carry one out via
		// break/continue; post-loop unions all three. Returns inside the
		// body are checked in the walk.
		ctx := w.push(true)
		body := w.seq(s.Body.List, st)
		w.pop()
		if s.Cond == nil && !hasBreak(s.Body) {
			return flow{nil, false} // for{} without break never falls through
		}
		return flow{union(union(st, body.fall), ctx.exits), true}
	case *ast.RangeStmt:
		st := w.exprEffect(s.X, in)
		ctx := w.push(true)
		body := w.seq(s.Body.List, st)
		w.pop()
		return flow{union(union(st, body.fall), ctx.exits), true}
	case *ast.SwitchStmt:
		st := in
		if s.Init != nil {
			st = w.stmt(s.Init, st).fall
		}
		if s.Tag != nil {
			st = w.exprEffect(s.Tag, st)
		}
		return w.caseBody(s.Body, st)
	case *ast.TypeSwitchStmt:
		st := in
		if s.Init != nil {
			st = w.stmt(s.Init, st).fall
		}
		return w.caseBody(s.Body, st)
	case *ast.SelectStmt:
		ctx := w.push(false)
		out := flow{reachable: false}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			f := w.seq(cc.Body, in)
			out = joinBranches(out, f)
		}
		w.pop()
		out.fall = union(out.fall, ctx.exits)
		return out
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned Unfence was handled up front; a deferred
		// FenceRange would be bizarre — ignore both.
		return flow{in, true}
	default:
		return flow{in, true}
	}
}

// caseBody joins a switch body's clauses; a missing default adds a
// fall-around path with the entry state, and break statements carry
// their state to the switch's fall-through.
func (w *walker) caseBody(body *ast.BlockStmt, in fenceSet) flow {
	ctx := w.push(false)
	out := flow{reachable: false}
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		st := in
		for _, e := range cc.List {
			st = w.exprEffect(e, st)
		}
		out = joinBranches(out, w.seq(cc.Body, st))
	}
	w.pop()
	if !hasDefault {
		out = joinBranches(out, flow{fall: in, reachable: true})
	}
	if len(ctx.exits) > 0 {
		out = joinBranches(out, flow{fall: ctx.exits, reachable: true})
	}
	return out
}

func joinBranches(a, b flow) flow {
	switch {
	case !a.reachable:
		return b
	case !b.reachable:
		return a
	}
	return flow{union(a.fall, b.fall), true}
}

// exprEffect applies the fence effects of every call inside e, in source
// order: FenceRange adds its position, Unfence clears everything.
// Closure bodies are walked independently (their paths are their own).
func (w *walker) exprEffect(e ast.Expr, in fenceSet) fenceSet {
	out := in
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.closure(n)
			return false
		case *ast.CallExpr:
			if isFenceCall(w.pass, n) {
				next := fenceSet{n.Pos(): true}
				for p := range out {
					next[p] = true
				}
				out = next
			} else if isUnfenceCall(w.pass, n) {
				out = nil
			}
		}
		return true
	})
	return out
}

// closure checks a function literal as its own little function.
func (w *walker) closure(fl *ast.FuncLit) {
	if !containsFenceCall(w.pass, fl.Body) {
		return
	}
	if w.hasDeferredUnfence(fl.Body) {
		return
	}
	f := w.seq(fl.Body.List, nil)
	w.flush(f.fall)
}

func (w *walker) hasDeferredUnfence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if isUnfenceCall(w.pass, d.Call) || containsUnfenceCall(w.pass, d.Call) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsFenceCall(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isFenceCall(pass, c) {
			found = true
		}
		return !found
	})
	return found
}

func containsUnfenceCall(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isUnfenceCall(pass, c) {
			found = true
		}
		return !found
	})
	return found
}

// hasBreak reports whether body contains a break that exits this loop
// (a shallow scan: breaks inside nested loops/switches are counted too,
// which can only make the loop look escapable — the conservative
// direction for fence tracking).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

func isFenceCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsMethodOn(pass.TypesInfo, call, "memsim", "Memory", "FenceRange") ||
		analysis.IsMethodOn(pass.TypesInfo, call, "memsim", "Memory", "FenceRangeHost")
}

func isUnfenceCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsMethodOn(pass.TypesInfo, call, "memsim", "Memory", "Unfence")
}

// isNoReturn reports whether e is a call that never returns (panic).
func isNoReturn(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
