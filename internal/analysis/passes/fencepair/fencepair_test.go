package fencepair_test

import (
	"testing"

	"gpulp/internal/analysis/analysistest"
	"gpulp/internal/analysis/passes/fencepair"
)

func TestFencepair(t *testing.T) {
	analysistest.Run(t, fencepair.Analyzer, "testdata/src/fencefix")
}
