// Fixture for the fencepair analyzer, driven against the real memsim
// fence API. Positive cases leak a fence on some path; negative cases
// release on every path or defer the release.
package fencefix

import (
	"errors"

	"gpulp/internal/memsim"
)

var errBoom = errors.New("boom")

func leakOnErrorReturn(m *memsim.Memory, fail bool) error {
	m.FenceRange("f", 128, 64) // want "without Unfence"
	if fail {
		return errBoom // leaks the fence
	}
	m.Unfence("f")
	return nil
}

func leakFallOffEnd(m *memsim.Memory) {
	m.FenceRange("f", 128, 64) // want "without Unfence"
}

func leakOutOfLoop(m *memsim.Memory, jobs int) {
	for j := 0; j < jobs; j++ {
		if j%2 == 0 {
			m.FenceRange("f", 128, 64) // want "without Unfence"
			continue
		}
	}
}

func leakViaBreak(m *memsim.Memory, xs []int) {
	for _, x := range xs {
		if x > 0 {
			m.FenceRange("f", 128, 64) // want "without Unfence"
			break
		}
	}
}

func leakInSwitch(m *memsim.Memory, k int) {
	switch k {
	case 0:
		m.FenceRange("f", 128, 64) // want "without Unfence"
	default:
		return
	}
}

func leakInClosure(m *memsim.Memory) func() {
	return func() {
		m.FenceRange("f", 128, 64) // want "without Unfence"
	}
}

func okAllPaths(m *memsim.Memory, fail bool) error {
	m.FenceRange("f", 128, 64)
	if fail {
		m.Unfence("f")
		return errBoom
	}
	m.Unfence("f")
	return nil
}

func okDeferred(m *memsim.Memory, fail bool) error {
	m.FenceRange("f", 128, 64)
	defer m.Unfence("f")
	if fail {
		return errBoom
	}
	return nil
}

func okDeferredClosure(m *memsim.Memory) {
	m.FenceRange("f", 128, 64)
	defer func() {
		m.Unfence("f")
	}()
}

func okUnfenceThenBreak(m *memsim.Memory, xs []int) {
	for _, x := range xs {
		m.FenceRange("f", 128, 64)
		if x > 0 {
			m.Unfence("f")
			break
		}
		m.Unfence("f")
	}
}

func okPanicPath(m *memsim.Memory, bad bool) {
	m.FenceRange("f", 128, 64)
	if bad {
		// A panic tears the whole simulation down; fences are volatile
		// state, so a panicking path is not a leak.
		panic("protocol bug")
	}
	m.Unfence("f")
}

func okSwitchAllCases(m *memsim.Memory, k int) {
	m.FenceRange("f", 128, 64)
	switch k {
	case 0:
		m.Unfence("f")
	default:
		m.Unfence("f")
	}
}

func okLoopRelease(m *memsim.Memory, jobs int) {
	for j := 0; j < jobs; j++ {
		m.FenceRange("f", 128, 64)
		m.Unfence("f")
	}
}

func leakHostFence(m *memsim.Memory) {
	m.FenceRangeHost("f", 128, 64) // want "without Unfence"
}

func okHostFence(m *memsim.Memory) {
	m.FenceRangeHost("f", 128, 64)
	m.Unfence("f")
}
