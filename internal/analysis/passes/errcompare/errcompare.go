// Package errcompare enforces the typed-error discipline: sentinel
// errors (core.ErrDegraded, gpusim watchdog/recovery sentinels, …) are
// tested with errors.Is, and typed error structs (*core.DegradedError,
// *cluster.DegradedClusterError, *gpusim.WatchdogError, …) are extracted
// with errors.As — never compared with == or picked apart with type
// assertions and type switches on concrete types.
//
// Every recovery error in this repo wraps (DegradedError wraps a cause
// and Is-matches ErrDegraded; DegradedClusterError wraps core errors), so
// a == or a concrete type assertion silently stops matching the moment a
// wrapping layer is added — exactly the churn ROADMAP items 3 and 4 will
// cause. The one legitimate == against a sentinel lives inside an Is
// method, which is exempt.
package errcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpulp/internal/analysis"
)

// Analyzer is the errcompare pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcompare",
	Doc: "sentinel errors must be tested with errors.Is and typed errors " +
		"extracted with errors.As, never == / != or concrete type assertions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIsOrAsMethod(pass, fd) {
				// The error's own Is/As implementation is where a raw
				// comparison is the point.
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				checkComparison(pass, n)
			}
		case *ast.TypeAssertExpr:
			checkAssertion(pass, n)
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(pass, n)
		}
		return true
	})
}

// checkComparison flags err ==/!= someSentinel.
func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if v := sentinelVar(pass, side); v != nil {
			pass.Reportf(cmp.Pos(),
				"comparing an error with %s against sentinel %s breaks once the error is wrapped: use errors.Is",
				cmp.Op, v.Name())
			return
		}
	}
}

// sentinelVar returns the package-level error variable e refers to, if
// any.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !analysis.IsErrorType(v.Type()) {
		return nil
	}
	// Package-level: declared directly in the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// checkAssertion flags err.(*SomeError) on an error-typed operand.
func checkAssertion(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // the x.(type) of a type switch, handled separately
	}
	xt := pass.TypesInfo.Types[ta.X].Type
	if xt == nil || !analysis.IsErrorType(xt) {
		return
	}
	if t := concreteErrorType(pass, ta.Type); t != "" {
		pass.Reportf(ta.Pos(),
			"type assertion to concrete error type %s misses wrapped errors: use errors.As", t)
	}
}

// checkTypeSwitch flags `switch err.(type) { case *SomeError: }`.
func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		x = a.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		x = a.Rhs[0].(*ast.TypeAssertExpr).X
	}
	xt := pass.TypesInfo.Types[x].Type
	if xt == nil || !analysis.IsErrorType(xt) {
		return
	}
	for _, c := range ts.Body.List {
		cc := c.(*ast.CaseClause)
		for _, te := range cc.List {
			if t := concreteErrorType(pass, te); t != "" {
				pass.Reportf(te.Pos(),
					"type switch case on concrete error type %s misses wrapped errors: use errors.As", t)
			}
		}
	}
}

// concreteErrorType returns the display name of the concrete (named,
// non-interface) error-implementing type denoted by te, or "".
// Interface cases (upgrade patterns like interface{ Timeout() bool })
// and nil are fine.
func concreteErrorType(pass *analysis.Pass, te ast.Expr) string {
	t := pass.TypesInfo.Types[te].Type
	if t == nil {
		return ""
	}
	base := t
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return ""
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return ""
	}
	if !analysis.ImplementsError(t) {
		return ""
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// isIsOrAsMethod reports whether fd is an Is(error) bool or
// As(any) bool method — the errors-package protocol implementations.
func isIsOrAsMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	name := fd.Name.Name
	if name != "Is" && name != "As" {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}
