package errcompare_test

import (
	"testing"

	"gpulp/internal/analysis/analysistest"
	"gpulp/internal/analysis/passes/errcompare"
)

func TestErrcompare(t *testing.T) {
	analysistest.Run(t, errcompare.Analyzer, "testdata/src/errfix")
}
