// Fixture for the errcompare analyzer: sentinel comparisons and
// concrete-type dispatch on errors, next to the errors.Is/As idioms and
// the exempt Is-method pattern.
package errfix

import "errors"

var ErrGone = errors.New("gone")
var ErrStale = errors.New("stale")

type DepthError struct{ Depth int }

func (e *DepthError) Error() string { return "depth exceeded" }

// Is is the errors-package protocol: the raw comparison here is the
// point, and the analyzer exempts it.
func (e *DepthError) Is(target error) bool { return target == ErrGone }

type flakyError struct{ tries int }

func (e *flakyError) Error() string { return "flaky" }

func badEquals(err error) bool {
	return err == ErrGone // want "use errors.Is"
}

func badNotEquals(err error) bool {
	if err != ErrStale { // want "use errors.Is"
		return true
	}
	return false
}

func badReversed(err error) bool {
	return ErrGone == err // want "use errors.Is"
}

func badAssert(err error) int {
	if de, ok := err.(*DepthError); ok { // want "use errors.As"
		return de.Depth
	}
	return 0
}

func badTypeSwitch(err error) string {
	switch err.(type) {
	case *DepthError: // want "use errors.As"
		return "depth"
	case *flakyError: // want "use errors.As"
		return "flaky"
	default:
		return "other"
	}
}

func goodIs(err error) bool {
	return errors.Is(err, ErrGone)
}

func goodAs(err error) int {
	var de *DepthError
	if errors.As(err, &de) {
		return de.Depth
	}
	return 0
}

func goodNil(err error) bool {
	return err == nil // nil checks are fine
}

func goodInterfaceUpgrade(err error) bool {
	if t, ok := err.(interface{ Timeout() bool }); ok { // interface case: fine
		return t.Timeout()
	}
	return false
}

func goodLocalCompare(a, b int) bool {
	return a == b // non-error comparison untouched
}
