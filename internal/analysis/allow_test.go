package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseAllow parses src as a single file and returns the fset, file, and
// a helper that builds a Diagnostic at the start of the given 1-based line.
func parseAllow(t *testing.T, src string) (*token.FileSet, *ast.File, func(line int, analyzer, msg string) Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tf := fset.File(f.Pos())
	at := func(line int, analyzer, msg string) Diagnostic {
		return Diagnostic{Pos: tf.LineStart(line), Analyzer: analyzer, Message: msg}
	}
	return fset, f, at
}

var knownTest = map[string]bool{"determinism": true, "fencepair": true}

func TestAllowSuppressesSameLine(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lpvet:allow determinism budget is wall-clock by design
}
`
	fset, f, at := parseAllow(t, src)
	diags := []Diagnostic{at(4, "determinism", "call to time.Now")}
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, diags)
	if len(got) != 0 {
		t.Fatalf("want suppression, got %v", got)
	}
}

func TestAllowSuppressesNextLine(t *testing.T) {
	src := `package p

func f() {
	//lpvet:allow fencepair lost shard stays fenced by protocol
	_ = 1
}
`
	fset, f, at := parseAllow(t, src)
	diags := []Diagnostic{at(5, "fencepair", "FenceRange not released")}
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, diags)
	if len(got) != 0 {
		t.Fatalf("want suppression, got %v", got)
	}
}

func TestAllowWrongAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lpvet:allow determinism reason here
}
`
	fset, f, at := parseAllow(t, src)
	diags := []Diagnostic{at(4, "fencepair", "FenceRange not released")}
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, diags)
	// The fencepair diagnostic survives, and the determinism allow is
	// now unused — two diagnostics total.
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (kept + unused allow), got %v", got)
	}
	if got[0].Analyzer != "fencepair" {
		t.Errorf("kept diagnostic = %v, want fencepair", got[0])
	}
	if got[1].Analyzer != allowName || !strings.Contains(got[1].Message, "suppresses nothing") {
		t.Errorf("unused-allow diagnostic = %v", got[1])
	}
}

func TestAllowWithoutReasonIsDiagnostic(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lpvet:allow determinism
}
`
	fset, f, at := parseAllow(t, src)
	diags := []Diagnostic{at(4, "determinism", "call to time.Now")}
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, diags)
	// An unreasoned allow suppresses nothing: the original diagnostic
	// survives AND the pragma itself is reported.
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (kept + malformed allow), got %v", got)
	}
	if got[0].Analyzer != "determinism" {
		t.Errorf("kept diagnostic = %v, want determinism", got[0])
	}
	if got[1].Analyzer != allowName || !strings.Contains(got[1].Message, "must give a reason") {
		t.Errorf("malformed-allow diagnostic = %v", got[1])
	}
}

func TestAllowBareIsDiagnostic(t *testing.T) {
	src := `package p

//lpvet:allow
func f() {}
`
	fset, f, _ := parseAllow(t, src)
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, nil)
	if len(got) != 1 || got[0].Analyzer != allowName ||
		!strings.Contains(got[0].Message, "must name an analyzer") {
		t.Fatalf("want bare-allow diagnostic, got %v", got)
	}
}

func TestAllowUnknownAnalyzerIsDiagnostic(t *testing.T) {
	src := `package p

//lpvet:allow nosuchpass reason here
func f() {}
`
	fset, f, _ := parseAllow(t, src)
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, nil)
	if len(got) != 1 || got[0].Analyzer != allowName ||
		!strings.Contains(got[0].Message, `unknown analyzer "nosuchpass"`) {
		t.Fatalf("want unknown-analyzer diagnostic, got %v", got)
	}
}

func TestAllowUnusedIsDiagnostic(t *testing.T) {
	src := `package p

//lpvet:allow determinism this line is already clean
func f() {}
`
	fset, f, _ := parseAllow(t, src)
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, nil)
	if len(got) != 1 || got[0].Analyzer != allowName ||
		!strings.Contains(got[0].Message, "suppresses nothing") {
		t.Fatalf("want unused-allow diagnostic, got %v", got)
	}
}

func TestAllowPrefixNotConfusedBySuffix(t *testing.T) {
	src := `package p

//lpvet:allowance is not our pragma
func f() {}
`
	fset, f, _ := parseAllow(t, src)
	got := ApplyAllows(fset, []*ast.File{f}, knownTest, nil)
	if len(got) != 0 {
		t.Fatalf("lookalike comment should be ignored, got %v", got)
	}
}
