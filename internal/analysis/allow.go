// The //lpvet:allow suppression pragma. A violation that is intentional
// — a protocol that leaks a fence by design, a wall-clock budget in an
// otherwise seed-deterministic checker — is exempted at the line that
// triggers it, and the exemption must name the analyzer and give a
// reason:
//
//	start := time.Now() //lpvet:allow determinism duration budget is wall-clock by design
//
// The pragma suppresses diagnostics from that analyzer on its own line
// and on the line directly below (so it can sit above a statement). An
// allow without a reason, naming an unknown analyzer, or suppressing
// nothing is itself a diagnostic: exemptions must stay precise, reasoned,
// and alive.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression comment.
const AllowPrefix = "//lpvet:allow"

// allowDirective is one parsed //lpvet:allow comment.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// allowName is the pseudo-analyzer that reports pragma misuse.
const allowName = "allow"

// ApplyAllows filters diags through the //lpvet:allow pragmas found in
// files, and appends a diagnostic for every malformed or unused pragma.
// known names the valid analyzer names.
func ApplyAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []Diagnostic) []Diagnostic {
	var dirs []*allowDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lpvet:allowance — not ours
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{c.Pos(), allowName,
						"lpvet:allow must name an analyzer and give a reason"})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{c.Pos(), allowName,
						"lpvet:allow names unknown analyzer " + quoted(fields[0])})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{c.Pos(), allowName,
						"lpvet:allow " + fields[0] + " must give a reason"})
				default:
					dirs = append(dirs, &allowDirective{
						pos:      c.Pos(),
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}

	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer == d.Analyzer && dir.file == pos.Filename &&
				(dir.line == pos.Line || dir.line+1 == pos.Line) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			bad = append(bad, Diagnostic{dir.pos, allowName,
				"lpvet:allow " + dir.analyzer + " suppresses nothing; remove it"})
		}
	}
	return append(kept, bad...)
}

func quoted(s string) string { return `"` + s + `"` }
