// Package load type-checks this module's packages without any
// third-party machinery. Module packages are parsed and checked from
// source in dependency order; standard-library imports are satisfied
// from the go command's compiled export data (`go list -export`), which
// works offline and never recompiles the world. The result carries full
// syntax plus go/types information, which is all an analyzer needs.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads and memoizes packages for one module.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	exports map[string]string // stdlib import path -> export data file
	gc      types.Importer    // export-data importer for the standard library
	mods    map[string]*modPkg
	loaded  map[string]*Package
	loading map[string]bool
}

type modPkg struct {
	Dir     string
	GoFiles []string
}

type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// New creates a Loader for the module containing dir. It runs `go list`
// once to map the module's full dependency closure: source locations for
// module packages, export-data files for the standard library.
func New(dir string) (*Loader, error) {
	modRoot, modPath, err := moduleOf(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: modRoot,
		ModPath: modPath,
		exports: map[string]string{},
		mods:    map[string]*modPkg{},
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
	}
	entries, err := goList(modRoot, "-export", "-deps", "./...")
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		l.note(e)
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

func (l *Loader) note(e listEntry) {
	if e.Standard {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
		return
	}
	l.mods[e.ImportPath] = &modPkg{Dir: e.Dir, GoFiles: e.GoFiles}
}

// lookupExport feeds the gc importer. A miss (a stdlib package outside
// the module's dependency closure, e.g. pulled in by a fixture) falls
// back to one more go list call, memoized.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		entries, err := goList(l.ModRoot, "-export", "-deps", path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %w", path, err)
		}
		for _, e := range entries {
			l.note(e)
		}
		f, ok = l.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
	}
	return os.Open(f)
}

// Load resolves the given go-list patterns (e.g. "./...") to module
// packages and returns them type-checked, in dependency order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	entries, err := goList(l.ModRoot, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, e := range entries {
		if e.Standard {
			continue
		}
		l.note(e)
		p, err := l.loadPkg(e.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) loadPkg(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	mp, ok := l.mods[path]
	if !ok {
		return nil, fmt.Errorf("load: %q is not a package of module %s", path, l.ModPath)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []string
	for _, f := range mp.GoFiles {
		files = append(files, filepath.Join(mp.Dir, f))
	}
	p, err := l.check(path, mp.Dir, files)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = p
	return p, nil
}

// LoadDir parses every non-test .go file in dir as a single package with
// the given import path and type-checks it against the module's
// packages and the standard library. Fixture harnesses use this for
// testdata packages that the go tool itself never builds.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") || strings.HasSuffix(de.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, de.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	return l.check(pkgPath, dir, files)
}

func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type errors in %s:\n  %s", pkgPath, strings.Join(typeErrs, "\n  "))
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter routes imports: module packages come from source (so
// type identity is shared with the packages under analysis), everything
// else from export data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.loadPkg(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.Import(path)
}

func moduleOf(dir string) (root, path string, err error) {
	out, err := run(dir, "go", "env", "GOMOD")
	if err != nil {
		return "", "", err
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", "", fmt.Errorf("load: %s is not inside a module", dir)
	}
	root = filepath.Dir(gomod)
	out, err = run(root, "go", "list", "-m")
	if err != nil {
		return "", "", err
	}
	return root, strings.TrimSpace(out), nil
}

func goList(dir string, args ...string) ([]listEntry, error) {
	out, err := run(dir, "go", append([]string{"list", "-json"}, args...)...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func run(dir, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("load: %s %s: %v\n%s", name, strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}
