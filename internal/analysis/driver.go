// The lpvet driver: run every registered analyzer over loaded packages,
// apply //lpvet:allow pragmas, and return ordered diagnostics.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PackageUnit is one loaded package handed to the driver — the concrete
// pieces an analyzer pass needs (the loader's Package carries the same
// fields; restated here to keep this package free of loader imports).
type PackageUnit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Driver runs a set of analyzers over packages.
type Driver struct {
	Analyzers []*Analyzer
}

// RunPackages runs every analyzer over each package (respecting
// ContractOnly) and applies the allow pragmas per package. Diagnostics
// come back sorted by position.
func (d *Driver) RunPackages(pkgs []PackageUnit) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range d.Analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		var pkgDiags []Diagnostic
		for _, a := range d.Analyzers {
			if a.ContractOnly && !ContractPackages[p.Types.Path()] {
				continue
			}
			diags, err := RunOnPackage(a, p.Fset, p.Files, p.Types, p.Info)
			if err != nil {
				return nil, err
			}
			pkgDiags = append(pkgDiags, diags...)
		}
		pkgDiags = ApplyAllows(p.Fset, p.Files, known, pkgDiags)
		all = append(all, pkgDiags...)
	}
	if fset == nil {
		fset = token.NewFileSet()
	}
	sortDiagnostics(fset, all)
	return all, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
