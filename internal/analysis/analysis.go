// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, scoped to what lpvet needs:
// typed AST passes over this module's packages, a suppression pragma, and
// golden-fixture tests. It deliberately avoids the x/tools dependency so
// the checker builds with the standard library alone; the loader
// (internal/analysis/load) recovers full type information offline from
// the go command's export-data cache.
//
// The contracts the passes enforce are the ones this repo's runtime
// suites (determinism tests, persistcheck, faultsim campaigns) probe
// dynamically — see DESIGN.md §7 for the pairing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named pass. Run is invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lpvet:allow pragmas. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// ContractOnly restricts the pass to the contract-carrying packages
	// (see ContractPackages); the driver skips other packages.
	ContractOnly bool
	// Run reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunOnPackage executes one analyzer over an already-loaded package and
// returns its diagnostics. The driver and the fixture harness both build
// on this.
func RunOnPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
	}
	return diags, nil
}

// ContractPackages are the module packages that carry the persistency and
// determinism contracts: every guarantee in DESIGN.md is implemented in
// one of these, so contract-only analyzers run exactly here.
var ContractPackages = map[string]bool{
	"gpulp/internal/gpusim":       true,
	"gpulp/internal/memsim":       true,
	"gpulp/internal/core":         true,
	"gpulp/internal/cluster":      true,
	"gpulp/internal/faultsim":     true,
	"gpulp/internal/persistcheck": true,
	"gpulp/internal/pmodel":       true,
	"gpulp/internal/serve":        true,
}

// --- shared type-matching helpers ---

// CalleeFunc resolves the static callee of a call, or nil for dynamic
// calls (function values, interface methods resolve to the interface
// method object).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsPkgFunc reports whether call statically invokes the package-level
// function pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// NamedReceiver returns the named type of f's receiver (pointers
// dereferenced), or nil when f is not a method.
func NamedReceiver(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsMethodOn reports whether call statically invokes a method named
// method on a (pointer to) named type typeName declared in a package
// whose name is pkgName. Matching by package *name* rather than import
// path lets fixture packages model the real API.
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Name() != method {
		return false
	}
	n := NamedReceiver(f)
	if n == nil || n.Obj().Name() != typeName {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Name() == pkgName
}

// ImplementsError reports whether t (or *t) implements the error
// interface.
func ImplementsError(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// IsErrorType reports whether t is exactly the error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
