// Package lpvet assembles the full analyzer suite and runs it over
// go-list patterns. cmd/lpvet is a thin wrapper around Vet; the root
// lpvet_test.go calls it in-process to gate the tree.
package lpvet

import (
	"fmt"

	"gpulp/internal/analysis"
	"gpulp/internal/analysis/load"
	"gpulp/internal/analysis/passes/determinism"
	"gpulp/internal/analysis/passes/errcompare"
	"gpulp/internal/analysis/passes/fencepair"
	"gpulp/internal/analysis/passes/persistbarrier"
	"gpulp/internal/analysis/passes/seedplumb"
)

// Analyzers is the registered suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		errcompare.Analyzer,
		fencepair.Analyzer,
		persistbarrier.Analyzer,
		seedplumb.Analyzer,
	}
}

// Finding is one formatted diagnostic.
type Finding struct {
	Position string // file:line:col, module-relative where possible
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Vet loads the packages matched by patterns (resolved from dir's
// module) and runs the suite. It returns the surviving findings —
// anything suppressed by a reasoned //lpvet:allow is gone, and pragma
// misuse appears as an "allow" finding.
func Vet(dir string, patterns ...string) ([]Finding, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.New(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	units := make([]analysis.PackageUnit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, analysis.PackageUnit{
			Fset:  loader.Fset,
			Files: p.Files,
			Types: p.Types,
			Info:  p.Info,
		})
	}
	d := &analysis.Driver{Analyzers: Analyzers()}
	diags, err := d.RunPackages(units)
	if err != nil {
		return nil, err
	}
	// The driver already ordered diags by file position.
	findings := make([]Finding, 0, len(diags))
	for _, dg := range diags {
		findings = append(findings, Finding{
			Position: loader.Fset.Position(dg.Pos).String(),
			Analyzer: dg.Analyzer,
			Message:  dg.Message,
		})
	}
	return findings, nil
}
