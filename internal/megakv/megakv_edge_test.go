package megakv

import (
	"bytes"
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// These tests pin the batch edge cases surfaced by the serving-layer
// batcher (internal/serve): persist-hook visibility of atomically claimed
// slots, host/device duplicate-key placement, duplicate keys within one
// batch, batches larger than the table capacity, and the empty-batch
// launch contract. Each was written to reproduce the pre-fix behavior
// first; the comments record what used to go wrong.

// countKeySlots scans the bucket array coherently and counts slots
// holding key.
func countKeySlots(s *Store, key uint64) int {
	n := 0
	for b := 0; b < s.nbuckets; b++ {
		for slot := 0; slot < SlotsPerBucket; slot++ {
			if s.buckets.PeekU64(s.keyWord(b, slot)) == key {
				n++
			}
		}
	}
	return n
}

// TestStoreHookSeesAtomicKeyClaims reproduces the bug behind the EP
// mismatches on megakv-insert: gpusim atomics (AtomicCASU64, AtomicExchU64)
// serialize at the L2 but never fire the store hook, so persistency models
// that instrument stores through the hook (EP's redo log, strict's
// flush-per-store, SBRP's release buffer) missed the key word of every
// CAS-claimed or tombstoned slot. Replaying such a log restored values
// into buckets whose keys were still zero. Insert and Delete now issue a
// hook-visible confirming StoreU64 of the same value after the atomic, so
// the key word reaches every model's persist path.
func TestStoreHookSeesAtomicKeyClaims(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 64)

	seen := map[int]bool{} // u32-granule element indices stored to buckets
	dev.SetStoreHook(func(th *gpusim.Thread, r memsim.Region, elemIdx int, bits uint32) {
		if r.Base == s.buckets.Base {
			seen[elemIdx] = true
		}
	})
	defer dev.SetStoreHook(nil)

	const key = 42
	runOp(dev, func(th *gpusim.Thread) {
		if !s.Insert(th, key, 99) {
			t.Error("insert failed")
		}
	})
	b := s.bucketOf(key)
	slot := -1
	for i := 0; i < SlotsPerBucket; i++ {
		if s.buckets.PeekU64(s.keyWord(b, i)) == key {
			slot = i
		}
	}
	if slot < 0 {
		t.Fatal("inserted key not found")
	}
	kw := s.keyWord(b, slot)
	if !seen[kw*2] || !seen[kw*2+1] {
		t.Errorf("store hook never saw the CAS-claimed key word %d (halves %d,%d); persist models would miss it", kw, kw*2, kw*2+1)
	}

	seen = map[int]bool{}
	runOp(dev, func(th *gpusim.Thread) {
		if !s.Delete(th, key) {
			t.Error("delete failed")
		}
	})
	if !seen[kw*2] || !seen[kw*2+1] {
		t.Errorf("store hook never saw the tombstoned key word %d; persist models would miss the delete", kw)
	}
}

// TestHostInsertOverwritesExistingKey reproduces a duplicate-key bug in
// HostInsert: the old single pass took the first empty or tombstoned slot
// even when the key already lived in a later slot of the same bucket, so
// re-populating after a delete left the key twice in the bucket.
func TestHostInsertOverwritesExistingKey(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 1) // single bucket: every key collides
	s.HostInsert(1, 10)   // slot 0
	s.HostInsert(2, 20)   // slot 1
	runOp(dev, func(th *gpusim.Thread) {
		s.Delete(th, 1) // slot 0 becomes a tombstone
	})
	s.HostInsert(2, 21) // must overwrite slot 1, not claim slot 0
	if n := countKeySlots(s, 2); n != 1 {
		t.Fatalf("key 2 occupies %d slots after re-insert, want 1", n)
	}
	if v, ok := s.HostGet(2); !ok || v != 21 {
		t.Errorf("HostGet(2) = %d/%v, want 21/true", v, ok)
	}
}

// TestDeleteThenHostInsertNoResurrection is the end-to-end consequence of
// the HostInsert duplicate: with key 2 in two slots, a device Delete
// tombstoned only the first match, and the stale second slot then
// "resurrected" the old value on the next search.
func TestDeleteThenHostInsertNoResurrection(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 1)
	s.HostInsert(1, 10)
	s.HostInsert(2, 20)
	runOp(dev, func(th *gpusim.Thread) {
		s.Delete(th, 1)
	})
	s.HostInsert(2, 21)
	runOp(dev, func(th *gpusim.Thread) {
		if !s.Delete(th, 2) {
			t.Error("delete of key 2 failed")
		}
		if v, ok := s.Search(th, 2); ok {
			t.Errorf("deleted key 2 resurrected with value %d", v)
		}
	})
}

// TestBatchDuplicateKeysLastDeterministic pins what a batch containing
// duplicate keys does: all threads race on the same bucket, the CAS/
// overwrite protocol must leave exactly one slot for the key, and the
// outcome must be identical across reruns (the serving batcher keeps
// duplicates out of one batch precisely so it can predict the result, but
// the store itself must still stay well-formed if handed one).
func TestBatchDuplicateKeysLastDeterministic(t *testing.T) {
	run := func() (uint64, []byte) {
		dev := newTestDevice()
		s := NewStore(dev, 4)
		const key = 7
		dev.Launch("dup", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
			b.ForAll(func(th *gpusim.Thread) {
				if !s.Insert(th, key, uint64(1000+th.Linear)) {
					t.Errorf("thread %d: duplicate-key insert failed", th.Linear)
				}
			})
		})
		if n := countKeySlots(s, key); n != 1 {
			t.Fatalf("duplicate-key batch left key in %d slots, want 1", n)
		}
		v, ok := s.HostGet(key)
		if !ok || v < 1000 || v >= 1032 {
			t.Fatalf("HostGet = %d/%v, want one of the 32 written values", v, ok)
		}
		dev.Mem().FlushAll()
		return v, dev.Mem().PeekNVM(s.buckets.Base, s.buckets.Size)
	}
	v1, img1 := run()
	v2, img2 := run()
	if v1 != v2 || !bytes.Equal(img1, img2) {
		t.Errorf("duplicate-key batch nondeterministic: winner %d vs %d", v1, v2)
	}
}

// TestBatchLargerThanCapacity pins the overflow contract: a batch of
// inserts exceeding the table capacity must not panic and must not evict
// residents — the excess inserts report false and the store stays
// well-formed at exactly Capacity() live slots.
func TestBatchLargerThanCapacity(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 1) // capacity = SlotsPerBucket = 8
	if s.Capacity() != SlotsPerBucket {
		t.Fatalf("Capacity = %d, want %d", s.Capacity(), SlotsPerBucket)
	}
	const batch = 2 * SlotsPerBucket
	ok := make([]bool, batch)
	dev.Launch("overflow", gpusim.D1(1), gpusim.D1(batch), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			ok[th.Linear] = s.Insert(th, uint64(th.Linear+1), uint64(th.Linear)*10)
		})
	})
	admitted := 0
	for i, o := range ok {
		if !o {
			continue
		}
		admitted++
		runOp(dev, func(th *gpusim.Thread) {
			if v, found := s.Search(th, uint64(i+1)); !found || v != uint64(i)*10 {
				t.Errorf("admitted key %d: got %d/%v", i+1, v, found)
			}
		})
	}
	if admitted != s.Capacity() {
		t.Errorf("admitted %d inserts into a capacity-%d store", admitted, s.Capacity())
	}
}

// TestEmptyLaunchPanics documents why the serving batcher must never emit
// an empty batch: gpusim refuses zero-sized grids outright, so "launch
// the kernel over no operations" is a programming error here, not a no-op.
func TestEmptyLaunchPanics(t *testing.T) {
	dev := newTestDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("empty-grid launch did not panic")
		}
	}()
	dev.Launch("empty", gpusim.D1(0), gpusim.D1(32), func(b *gpusim.Block) {})
}

// TestCapacityAccessor pins the Capacity helper the batcher sizes
// admission against.
func TestCapacityAccessor(t *testing.T) {
	dev := newTestDevice()
	for _, tc := range []struct{ want, buckets int }{{64 * SlotsPerBucket, 64}, {128 * SlotsPerBucket, 100}} {
		if got := NewStore(dev, tc.buckets).Capacity(); got != tc.want {
			t.Errorf("Capacity(%d buckets) = %d, want %d", tc.buckets, got, tc.want)
		}
	}
}
