// Package megakv is a GPU-resident in-memory key-value store modeled on
// MEGA-KV (Zhang et al., VLDB 2015), the real-world application the paper
// evaluates in §VII-4. The index is a bucketed open hash table in device
// global memory: each bucket holds a fixed number of (key, value) slots,
// and batches of insert/search/delete operations are processed by GPU
// kernels with one thread per operation.
//
// Because the index lives in (simulated) NVM-backed memory, protecting a
// batch kernel with Lazy Persistency makes the store crash-recoverable:
// a lost update is detected by the batch's block checksum and the batch
// block re-executes, which is idempotent under set semantics (inserting
// the same key twice overwrites; deleting twice is a no-op).
package megakv

import (
	"fmt"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// SlotsPerBucket is the bucket width. Eight 16-byte slots keep a bucket
// within a handful of cache sectors, as in MEGA-KV's signature buckets.
const SlotsPerBucket = 8

// Tombstone marks a deleted slot. Keys must be neither 0 (empty) nor
// Tombstone.
const Tombstone = ^uint64(0)

// Store is the bucketed hash index in device memory.
type Store struct {
	dev      *gpusim.Device
	buckets  memsim.Region // nbuckets * SlotsPerBucket * 2 uint64 words
	nbuckets int
}

// NewStore creates an empty store with the given bucket count (rounded up
// to a power of two).
func NewStore(dev *gpusim.Device, nbuckets int) *Store {
	if nbuckets <= 0 {
		panic("megakv: nbuckets must be positive")
	}
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	r := dev.Alloc("megakv.buckets", n*SlotsPerBucket*16)
	r.HostZero()
	return &Store{dev: dev, buckets: r, nbuckets: n}
}

// Buckets returns the bucket count.
func (s *Store) Buckets() int { return s.nbuckets }

// Capacity returns the total slot count; a batch admitting more distinct
// keys than this is guaranteed to see insert overflows.
func (s *Store) Capacity() int { return s.nbuckets * SlotsPerBucket }

// Region returns the underlying memory region (for persistence checks).
func (s *Store) Region() memsim.Region { return s.buckets }

func (s *Store) bucketOf(key uint64) int {
	x := key
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int(x^(x>>31)) & (s.nbuckets - 1)
}

func (s *Store) keyWord(bucket, slot int) int { return (bucket*SlotsPerBucket + slot) * 2 }
func (s *Store) valWord(bucket, slot int) int { return (bucket*SlotsPerBucket+slot)*2 + 1 }

func (s *Store) checkKey(key uint64) {
	if key == 0 || key == Tombstone {
		panic(fmt.Sprintf("megakv: reserved key %#x", key))
	}
}

// Insert adds or overwrites key with val from device code; returns false
// when the bucket is full. Claims empty or tombstoned slots with
// atomicCAS; an existing slot for the key is overwritten in place.
func (s *Store) Insert(t *gpusim.Thread, key, val uint64) bool {
	s.checkKey(key)
	b := s.bucketOf(key)
	t.Op(6) // hash
	// First pass: overwrite an existing slot for this key.
	for slot := 0; slot < SlotsPerBucket; slot++ {
		if t.LoadU64(s.buckets, s.keyWord(b, slot)) == key {
			t.StoreU64(s.buckets, s.valWord(b, slot), val)
			return true
		}
		t.Op(1)
	}
	// Second pass: claim a free slot.
	for slot := 0; slot < SlotsPerBucket; slot++ {
		cur := t.LoadU64(s.buckets, s.keyWord(b, slot))
		if cur != 0 && cur != Tombstone {
			t.Op(1)
			continue
		}
		if old := t.AtomicCASU64(s.buckets, s.keyWord(b, slot), cur, key); old == cur {
			// Atomics serialize at the L2 but bypass the store hook, so a
			// CAS-only claim is invisible to hook-driven persistency models
			// (EP's redo log, strict's flush-per-store, SBRP's release
			// buffer): a replayed log would restore the value into a slot
			// whose key word never persisted. Confirm the claim with a
			// hook-visible store of the same value.
			t.StoreU64(s.buckets, s.keyWord(b, slot), key)
			t.StoreU64(s.buckets, s.valWord(b, slot), val)
			return true
		}
	}
	return false
}

// Search looks key up from device code.
func (s *Store) Search(t *gpusim.Thread, key uint64) (uint64, bool) {
	s.checkKey(key)
	b := s.bucketOf(key)
	t.Op(6)
	for slot := 0; slot < SlotsPerBucket; slot++ {
		if t.LoadU64(s.buckets, s.keyWord(b, slot)) == key {
			return t.LoadU64(s.buckets, s.valWord(b, slot)), true
		}
		t.Op(1)
	}
	return 0, false
}

// Delete removes key from device code; returns whether it was present.
func (s *Store) Delete(t *gpusim.Thread, key uint64) bool {
	s.checkKey(key)
	b := s.bucketOf(key)
	t.Op(6)
	for slot := 0; slot < SlotsPerBucket; slot++ {
		if t.LoadU64(s.buckets, s.keyWord(b, slot)) == key {
			t.AtomicExchU64(s.buckets, s.keyWord(b, slot), Tombstone)
			// Same-value confirming store: make the tombstone visible to
			// hook-driven persistency models (see Insert).
			t.StoreU64(s.buckets, s.keyWord(b, slot), Tombstone)
			return true
		}
		t.Op(1)
	}
	return false
}

// HostInsert durably pre-populates the store (direct NVM writes), using
// the same placement as device inserts: overwrite an existing slot for
// the key first, then claim a free one. Panics when the bucket is full.
func (s *Store) HostInsert(key, val uint64) {
	s.checkKey(key)
	b := s.bucketOf(key)
	free := -1
	for slot := 0; slot < SlotsPerBucket; slot++ {
		cur := s.buckets.PeekU64(s.keyWord(b, slot))
		if cur == key {
			s.buckets.HostPutU64(s.valWord(b, slot), val)
			return
		}
		if free < 0 && (cur == 0 || cur == Tombstone) {
			free = slot
		}
	}
	if free < 0 {
		panic(fmt.Sprintf("megakv: bucket %d full during host pre-population", b))
	}
	s.buckets.HostPutU64(s.keyWord(b, free), key)
	s.buckets.HostPutU64(s.valWord(b, free), val)
}

// HostGet returns the coherent (cache-through) value for key.
func (s *Store) HostGet(key uint64) (uint64, bool) {
	s.checkKey(key)
	b := s.bucketOf(key)
	for slot := 0; slot < SlotsPerBucket; slot++ {
		if s.buckets.PeekU64(s.keyWord(b, slot)) == key {
			return s.buckets.PeekU64(s.valWord(b, slot)), true
		}
	}
	return 0, false
}

// NVMGet returns the durable (post-crash) value for key.
func (s *Store) NVMGet(key uint64) (uint64, bool) {
	s.checkKey(key)
	b := s.bucketOf(key)
	for slot := 0; slot < SlotsPerBucket; slot++ {
		if s.buckets.NVMU64(s.keyWord(b, slot)) == key {
			return s.buckets.NVMU64(s.valWord(b, slot)), true
		}
	}
	return 0, false
}
