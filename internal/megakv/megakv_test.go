package megakv

import (
	"testing"
	"testing/quick"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

func newTestDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 4
	return gpusim.MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
}

// runOp executes a single-thread device operation.
func runOp(dev *gpusim.Device, f func(t *gpusim.Thread)) {
	dev.Launch("op", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear == 0 {
				f(t)
			}
		})
	})
}

func TestInsertSearchDelete(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 64)

	runOp(dev, func(th *gpusim.Thread) {
		if !s.Insert(th, 42, 99) {
			t.Error("insert failed")
		}
		v, ok := s.Search(th, 42)
		if !ok || v != 99 {
			t.Errorf("search: %d/%v, want 99/true", v, ok)
		}
		if _, ok := s.Search(th, 43); ok {
			t.Error("found a key never inserted")
		}
		if !s.Delete(th, 42) {
			t.Error("delete failed")
		}
		if _, ok := s.Search(th, 42); ok {
			t.Error("found key after delete")
		}
		if s.Delete(th, 42) {
			t.Error("double delete reported success")
		}
	})
}

func TestInsertOverwrites(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 64)
	runOp(dev, func(th *gpusim.Thread) {
		s.Insert(th, 7, 1)
		s.Insert(th, 7, 2)
		if v, _ := s.Search(th, 7); v != 2 {
			t.Errorf("overwrite: got %d, want 2", v)
		}
	})
	if v, ok := s.HostGet(7); !ok || v != 2 {
		t.Errorf("HostGet: %d/%v", v, ok)
	}
}

func TestTombstoneReuse(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 1) // single bucket: forces slot reuse
	runOp(dev, func(th *gpusim.Thread) {
		for k := uint64(1); k <= SlotsPerBucket; k++ {
			if !s.Insert(th, k, k*10) {
				t.Fatalf("insert %d failed", k)
			}
		}
		// Bucket full now.
		if s.Insert(th, 100, 1) {
			t.Error("insert into full bucket should fail")
		}
		// Delete one, insert reuses the tombstone.
		s.Delete(th, 3)
		if !s.Insert(th, 100, 1) {
			t.Error("insert after delete should reuse tombstone")
		}
		if v, ok := s.Search(th, 100); !ok || v != 1 {
			t.Errorf("reused slot search: %d/%v", v, ok)
		}
	})
}

func TestReservedKeysPanic(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 4)
	for _, k := range []uint64{0, Tombstone} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %#x did not panic", k)
				}
			}()
			s.HostInsert(k, 1)
		}()
	}
}

func TestNewStoreValidation(t *testing.T) {
	dev := newTestDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero buckets")
		}
	}()
	NewStore(dev, 0)
}

func TestBucketsRoundedToPow2(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 100)
	if s.Buckets() != 128 {
		t.Errorf("Buckets = %d, want 128", s.Buckets())
	}
}

func TestHostAndDevicePlacementAgree(t *testing.T) {
	// A key pre-populated by the host must be found by device search, and
	// vice versa.
	dev := newTestDevice()
	s := NewStore(dev, 64)
	s.HostInsert(11, 110)
	runOp(dev, func(th *gpusim.Thread) {
		if v, ok := s.Search(th, 11); !ok || v != 110 {
			t.Errorf("device search of host insert: %d/%v", v, ok)
		}
		s.Insert(th, 12, 120)
	})
	if v, ok := s.HostGet(12); !ok || v != 120 {
		t.Errorf("host get of device insert: %d/%v", v, ok)
	}
}

func TestNVMGetSeesOnlyDurable(t *testing.T) {
	dev := newTestDevice()
	s := NewStore(dev, 64)
	s.HostInsert(1, 10) // durable
	runOp(dev, func(th *gpusim.Thread) {
		s.Insert(th, 2, 20) // cached, not yet written back
	})
	if _, ok := s.NVMGet(1); !ok {
		t.Error("durable key invisible to NVMGet")
	}
	if _, ok := s.NVMGet(2); ok {
		t.Error("cached-only key visible to NVMGet before eviction")
	}
	dev.Mem().FlushAll()
	if v, ok := s.NVMGet(2); !ok || v != 20 {
		t.Errorf("flushed key not durable: %d/%v", v, ok)
	}
}

// TestPropertySetSemantics drives random batches against a map model.
func TestPropertySetSemantics(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val uint64
		Del bool
	}) bool {
		dev := newTestDevice()
		s := NewStore(dev, 256)
		model := map[uint64]uint64{}
		ok := true
		runOp(dev, func(th *gpusim.Thread) {
			for _, op := range ops {
				k := op.Key%1000 + 1 // avoid reserved keys, bound bucket pressure
				if op.Del {
					s.Delete(th, k)
					delete(model, k)
				} else {
					if !s.Insert(th, k, op.Val) {
						continue // bucket full: skip, model unchanged
					}
					model[k] = op.Val
				}
			}
			for k, want := range model {
				got, found := s.Search(th, k)
				if !found || got != want {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
