package harness

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/parwork"
)

// This file holds ablation experiments beyond the paper's published
// artifacts, exploring the design choices the paper calls out:
//
//   - scaling: the title's claim — LP overhead vs thread-block count for
//     the three checksum stores (and the lock-based strawman);
//   - fusion: §IV-A's "thread blocks can be enlarged" — region fusion
//     factor vs overhead, table size, and recovery granularity;
//   - checkpoint: §IV-A's periodic whole-cache flush that bounds how far
//     back validation must look — interval vs flush cost vs post-crash
//     damage;
//   - loadfactor: §IV-C's quadratic-probing load-factor limit — load
//     factor vs collisions and insertion cost.

// scalingKernel builds a SAD-like synthetic kernel: tiny fixed-work
// blocks, one persistent store per thread.
func scalingKernel(out memsim.Region, lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			t.Op(40)
			v := uint32(t.GlobalLinear())*2654435761 + 17
			t.StoreU32(out, t.GlobalLinear(), v)
			r.Update(t, v)
		})
		r.Commit()
	}
}

// Scaling sweeps the thread-block count with fixed per-block work and
// measures the overhead of each checksum store — the experiment behind
// the paper's title: hash-table LP stops scaling, the global array does
// not.
func (r *Runner) Scaling() (*Table, error) {
	t := &Table{ID: "scaling", Title: "LP overhead vs thread-block count (ablation; the paper's scalability claim)",
		Columns: []string{"blocks", "global array", "quad lock-free", "cuckoo lock-free", "quad lock-based"}}
	blockCounts := []int{512, 2048, 8192, 32768}
	configs := []core.Config{
		core.DefaultConfig(),
		naiveCfg(hashtab.Quad),
		naiveCfg(hashtab.Cuckoo),
		lockCfg(hashtab.Quad),
	}
	run := func(nBlocks int, cfg *core.Config) int64 {
		mem := memsim.MustNew(r.Opt.Mem)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		grid, blk := gpusim.D1(nBlocks), gpusim.D1(32)
		out := dev.Alloc("out", nBlocks*32*4)
		out.HostZero()
		var lp *core.LP
		if cfg != nil {
			c := *cfg
			c.Seed = r.Opt.Seed
			lp = core.New(dev, c, grid, blk)
		}
		res := dev.Launch("scaling", grid, blk, scalingKernel(out, lp))
		return res.Cycles
	}
	// Every (block count, config) run owns a fresh simulated system, so
	// the whole grid of runs fans out; cycles land in indexed slots and
	// rows assemble serially, keeping the table byte-identical at any
	// Options.Parallel.
	perRow := 1 + len(configs) // baseline + configs
	cycles := make([]int64, len(blockCounts)*perRow)
	parwork.Do(len(cycles), r.workers(), func(j int) {
		nBlocks := blockCounts[j/perRow]
		if c := j % perRow; c > 0 {
			cycles[j] = run(nBlocks, &configs[c-1])
		} else {
			cycles[j] = run(nBlocks, nil)
		}
	})
	for bi, nBlocks := range blockCounts {
		row := []string{fmt.Sprint(nBlocks)}
		base := cycles[bi*perRow]
		for c := 1; c < perRow; c++ {
			row = append(row, pct(float64(cycles[bi*perRow+c])/float64(base)-1))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"fixed tiny per-block work (SAD-like); overhead growth with block count is pure checksum-insertion contention")
	return t, nil
}

// Fusion sweeps the region fusion factor on TMM (whose substantial
// per-block work is the setting where enlarging regions makes sense) and
// reports the three-way trade: insertion overhead, checksum table
// footprint, and recovery granularity (blocks re-executed after a crash).
func (r *Runner) Fusion() (*Table, error) {
	t := &Table{ID: "fusion", Title: "Region fusion factor (ablation; §IV-A region enlargement)",
		Columns: []string{"fusion", "overhead", "table bytes", "failed blocks after crash", "recover cycles"}}
	memCfg := r.Opt.Mem
	memCfg.CacheBytes = 256 << 10
	for _, f := range []int{1, 4, 16, 64} {
		cfg := core.DefaultConfig()
		cfg.Fusion = f
		cfg.Seed = r.Opt.Seed

		// Overhead at full cache (comparable with table5).
		o, m, err := r.overhead("tmm", cfg)
		if err != nil {
			return nil, err
		}

		// Crash damage at small cache.
		mem := memsim.MustNew(memCfg)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		w := kernels.New("tmm", r.Opt.Scale)
		w.Setup(dev)
		grid, blk := w.Geometry()
		lp := core.New(dev, cfg, grid, blk)
		kernel := w.Kernel(lp)
		dev.Launch("tmm", grid, blk, kernel)
		mem.Crash()
		failed, _, _ := lp.Validate(w.Recompute())
		rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 5)
		if err != nil {
			return nil, fmt.Errorf("fusion=%d: %w", f, err)
		}
		if err := w.Verify(); err != nil {
			return nil, fmt.Errorf("fusion=%d: %w", f, err)
		}
		t.AddRow(fmt.Sprint(f), pct(o), fmt.Sprint(m.tableBytes), fmt.Sprint(len(failed)), fmt.Sprint(rep.RecoverCycles))
	}
	t.Notes = append(t.Notes,
		"fusion shrinks the checksum table by ~the factor but re-executes whole groups per damaged region, and its atomic merging costs more than plain stores")
	return t, nil
}

// Checkpoint sweeps the periodic whole-cache-flush interval (§IV-A): how
// often the application checkpoints bounds how many regions a crash can
// damage, at the cost of flush traffic LP otherwise avoids.
func (r *Runner) Checkpoint() (*Table, error) {
	t := &Table{ID: "checkpoint", Title: "Checkpoint (whole-cache flush) interval (ablation; §IV-A)",
		Columns: []string{"interval (blocks)", "checkpoints", "flushed lines", "failed blocks after crash", "validate+recover cycles"}}
	memCfg := r.Opt.Mem // full-size cache: without checkpoints, everything is lost
	for _, interval := range []int{0, 512, 256, 64} {
		mem := memsim.MustNew(memCfg)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		w := kernels.New("tmm", r.Opt.Scale)
		w.Setup(dev)
		grid, blk := w.Geometry()
		cfg := core.DefaultConfig()
		cfg.Seed = r.Opt.Seed
		lp := core.New(dev, cfg, grid, blk)
		kernel := w.Kernel(lp)

		// Launch in chunks, checkpointing between them.
		checkpoints := 0
		flushed := 0
		n := grid.Size()
		chunk := interval
		if chunk <= 0 {
			chunk = n
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			sel := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				sel = append(sel, i)
			}
			dev.LaunchSelected("tmm-chunk", grid, blk, kernel, sel)
			if interval > 0 && hi < n {
				flushed += lp.Checkpoint()
				checkpoints++
			}
		}

		mem.Crash()
		failed, _, _ := lp.Validate(w.Recompute())
		rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 5)
		if err != nil {
			return nil, fmt.Errorf("interval=%d: %w", interval, err)
		}
		if err := w.Verify(); err != nil {
			return nil, fmt.Errorf("interval=%d: %w", interval, err)
		}
		label := fmt.Sprint(interval)
		if interval == 0 {
			label = "none"
		}
		t.AddRow(label, fmt.Sprint(checkpoints), fmt.Sprint(flushed),
			fmt.Sprint(len(failed)), fmt.Sprint(rep.TotalCycles()))
	}
	t.Notes = append(t.Notes,
		"the crash hits at kernel end; only stores after the last checkpoint (or never evicted) are lost",
		"LP itself never flushes — checkpoints are the §IV-A mechanism bounding how far back validation must look")
	return t, nil
}

// LoadFactor sweeps the quadratic-probing table's load factor and shows
// the collision blow-up behind the paper's ≤70% guidance (§IV-C).
func (r *Runner) LoadFactor() (*Table, error) {
	t := &Table{ID: "loadfactor", Title: "Quadratic probing load factor (ablation; §IV-C guidance: <= 70%)",
		Columns: []string{"load factor", "keys", "collisions", "max probe", "insert cycles"}}
	// Fix the table capacity and vary the fill, sidestepping the
	// power-of-two capacity rounding.
	const capacity = 16384
	for _, pct100 := range []int{30, 50, 70, 85, 95} {
		nKeys := capacity * pct100 / 100
		mem := memsim.MustNew(r.Opt.Mem)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		st := hashtab.New(dev, "tbl", hashtab.Config{
			Kind:        hashtab.Quad,
			NumKeys:     capacity - 1, // rounds up to exactly `capacity` slots
			Seed:        r.Opt.Seed,
			QuadLoadPct: 100,
		})
		if st.TableBytes() != capacity*32 {
			return nil, fmt.Errorf("loadfactor: capacity %d != expected %d", st.TableBytes()/32, capacity)
		}
		res := dev.Launch("insert", gpusim.D1(nKeys), gpusim.D1(32), func(b *gpusim.Block) {
			b.ForAll(func(th *gpusim.Thread) {
				if th.Linear == 0 {
					st.Insert(th, uint64(b.LinearIdx), checksumOf(uint64(b.LinearIdx)))
				}
			})
		})
		stats := st.Stats()
		t.AddRow(fmt.Sprintf("%d%%", pct100), fmt.Sprint(nKeys),
			fmt.Sprint(stats.Collisions), fmt.Sprint(stats.MaxProbe), fmt.Sprint(res.Cycles))
	}
	t.Notes = append(t.Notes,
		"fixed 16384-slot table, varying fill",
		"collisions and worst-case probe depth explode past ~70%, as §IV-C warns")
	return t, nil
}

// MTBFPlan completes §IV-A's remark that "the interval period can be
// selected based on probability of crashes and recovery time to achieve
// a certain MTBF or availability target": measure the actual checkpoint
// flush cost and validation cost on TMM, then derive the
// overhead-optimal checkpoint interval and best availability across
// failure rates with core.CheckpointPlanner.
func (r *Runner) MTBFPlan() (*Table, error) {
	t := &Table{ID: "mtbf", Title: "Checkpoint interval planning from failure rate (§IV-A)",
		Columns: []string{"MTBF (cycles)", "optimal interval (cycles)", "expected overhead", "availability"}}

	// Measure flush and validation costs on the real system.
	mem := memsim.MustNew(r.Opt.Mem)
	dev := gpusim.MustNew(r.Opt.Dev, mem)
	w := kernels.New("tmm", r.Opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	cfg := core.DefaultConfig()
	cfg.Seed = r.Opt.Seed
	lp := core.New(dev, cfg, grid, blk)
	dev.Launch("tmm", grid, blk, w.Kernel(lp))
	flushedLines := lp.Checkpoint()
	// Flush cost in cycles: line write-backs at NVM bandwidth.
	lineBytes := float64(r.Opt.Mem.LineSize)
	flushCost := float64(flushedLines) * lineBytes / r.Opt.Dev.NVMBytesPerCycle
	_, vres, _ := lp.Validate(w.Recompute())

	for _, mtbf := range []float64{1e7, 1e9, 1e11} {
		p := core.CheckpointPlanner{
			FlushCost:    flushCost,
			ValidateCost: float64(vres.Cycles),
			MTBFCycles:   mtbf,
		}
		opt := p.OptimalInterval()
		t.AddRow(fmt.Sprintf("%.0e", mtbf), fmt.Sprintf("%.0f", opt),
			pct(p.ExpectedOverhead(opt)), fmt.Sprintf("%.6f", p.Availability(opt)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured on tmm: checkpoint flush %.0f cycles (%d lines), validation sweep %d cycles",
			flushCost, flushedLines, vres.Cycles),
		"optimal interval = sqrt(flushCost * MTBF); rarer failures justify longer intervals")
	return t, nil
}

// RecoveryCost quantifies LP's trade-off (§I: "crash recovery is slower
// in LP" in exchange for near-free normal execution): sweep the cache
// size — which controls how much of a run a crash destroys — and compare
// the cost of LP recovery (validate everything + re-execute the failed
// regions) against the naive alternative of re-running the whole kernel.
func (r *Runner) RecoveryCost() (*Table, error) {
	t := &Table{ID: "recoverycost", Title: "Recovery cost vs damage (ablation; §I trade-off)",
		Columns: []string{"cache", "failed blocks", "validate cycles", "re-execute cycles", "full rerun cycles", "recovery vs rerun"}}
	for _, cacheKB := range []int{64, 256, 1024, 4096} {
		memCfg := r.Opt.Mem
		memCfg.CacheBytes = cacheKB << 10
		mem := memsim.MustNew(memCfg)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		w := kernels.New("tmm", r.Opt.Scale)
		w.Setup(dev)
		grid, blk := w.Geometry()
		cfg := core.DefaultConfig()
		cfg.Seed = r.Opt.Seed
		lp := core.New(dev, cfg, grid, blk)
		kernel := w.Kernel(lp)
		full := dev.Launch("tmm", grid, blk, kernel)

		mem.Crash()
		failed, _, _ := lp.Validate(w.Recompute())
		rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 5)
		if err != nil {
			return nil, fmt.Errorf("cache %dKB: %w", cacheKB, err)
		}
		if err := w.Verify(); err != nil {
			return nil, fmt.Errorf("cache %dKB: %w", cacheKB, err)
		}
		ratio := float64(rep.TotalCycles()) / float64(full.Cycles)
		t.AddRow(fmt.Sprintf("%d KB", cacheKB), fmt.Sprint(len(failed)),
			fmt.Sprint(rep.ValidateCycles), fmt.Sprint(rep.RecoverCycles),
			fmt.Sprint(full.Cycles), fmt.Sprintf("%.2fx", ratio))
	}
	t.Notes = append(t.Notes,
		"validation always sweeps every region (the LP recovery tax); re-execution is proportional to actual damage",
		"bigger caches mean more unevicted data at the crash and therefore more re-execution")
	return t, nil
}

// CPULP contrasts the original CPU Lazy Persistency design (§II-A:
// sequential checksum computation, lock-protected chained hash table —
// reported at ~1% overhead on 16 CPU threads) against the paper's GPU
// design, sweeping the number of concurrently executing regions. The CPU
// recipe is fine at CPU parallelism and collapses at GPU parallelism —
// the observation that motivates the whole paper.
func (r *Runner) CPULP() (*Table, error) {
	t := &Table{ID: "cpulp", Title: "The CPU LP design vs the GPU design across concurrency (§II-A)",
		Columns: []string{"concurrent regions", "CPU design (chained+lock+seq)", "GPU design (array+shuffle)"}}

	// CPU-scale regions: substantial work per region (as the CPU paper's
	// loop tiles have), a handful of persistent stores each.
	const nBlocks = 4096
	cpuRegionKernel := func(out memsim.Region, lp *core.LP) gpusim.KernelFunc {
		return func(b *gpusim.Block) {
			reg := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				t.Op(20000) // the region's computation
				for k := 0; k < 4; k++ {
					v := uint32(t.GlobalLinear()*4+k)*2654435761 + 3
					t.StoreU32(out, t.GlobalLinear()*4+k, v)
					reg.Update(t, v)
				}
			})
			reg.Commit()
		}
	}
	run := func(workers int, cfg *core.Config) (int64, error) {
		dev := gpusim.MustNew(cpuLikeDevice(workers), memsim.MustNew(r.Opt.Mem))
		grid, blk := gpusim.D1(nBlocks), gpusim.D1(32)
		out := dev.Alloc("out", nBlocks*32*4*4)
		out.HostZero()
		var lp *core.LP
		if cfg != nil {
			c := *cfg
			c.Seed = r.Opt.Seed
			lp = core.New(dev, c, grid, blk)
		}
		res := dev.Launch("cpulp", grid, blk, cpuRegionKernel(out, lp))
		return res.Cycles, nil
	}

	cpuCfg := core.Config{
		Checksum:  checksum.Dual,
		Store:     hashtab.Chained,
		LockMode:  hashtab.LockBased,
		Reduction: core.ReduceSequential,
	}
	gpuCfg := core.DefaultConfig()

	for _, workers := range []int{16, 128, 1024} {
		base, err := run(workers, nil)
		if err != nil {
			return nil, err
		}
		cpu, err := run(workers, &cpuCfg)
		if err != nil {
			return nil, err
		}
		gpu, err := run(workers, &gpuCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(workers),
			pct(float64(cpu)/float64(base)-1),
			pct(float64(gpu)/float64(base)-1))
	}
	t.Notes = append(t.Notes,
		"same kernel and region count throughout; only the number of simultaneously executing regions varies",
		"the original CPU LP paper reports ~1% at 16 threads — the recipe does not survive GPU concurrency")
	return t, nil
}

// cpuLikeDevice builds a device whose concurrency equals workers
// single-region execution slots.
func cpuLikeDevice(workers int) gpusim.Config {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = workers
	cfg.MaxBlocksPerSM = 1
	return cfg
}

// checksumOf derives a deterministic checksum payload for ablation keys.
func checksumOf(key uint64) checksum.State {
	return checksum.State{Mod: key * 3, Par: key ^ 0xabcdef}
}
