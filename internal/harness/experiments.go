package harness

import (
	"fmt"
	"math/rand"

	"gpulp/internal/checksum"
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

// paperFig5 holds the paper's Fig. 5 / Table IV (with-shuffle) overheads
// in percent, for the side-by-side comparison columns: {quad, cuckoo}.
var paperFig5 = map[string][2]float64{
	"tmm":          {8.1, 7.25},
	"tpacf":        {1.5, 1.33},
	"mri-gridding": {216.6, 45.67},
	"spmv":         {22.1, 11.78},
	"sad":          {51.23, 232.79},
	"histo":        {4.54, 27.73},
	"cutcp":        {7.96, 13.16},
	"mri-q":        {8.01, 6.06},
}

// paperTable4NoShfl holds Table IV's no-shuffle overhead columns.
var paperTable4NoShfl = map[string][2]float64{
	"tmm":          {15.4, 13.65},
	"tpacf":        {2.6, 1.89},
	"mri-gridding": {224.1, 50.32},
	"spmv":         {437.6, 431.18},
	"sad":          {86.34, 242.13},
	"histo":        {9.70, 45.81},
	"cutcp":        {9.01, 14.78},
	"mri-q":        {9.78, 8.03},
}

// paperTable2 holds the paper's collision counts: {quad, cuckoo}.
var paperTable2 = map[string][2]int64{
	"tmm":          {60443, 38951},
	"tpacf":        {532, 483},
	"mri-gridding": {172978, 26351},
	"spmv":         {57, 39},
	"sad":          {31971, 44566},
	"histo":        {26, 54},
	"cutcp":        {550, 562},
	"mri-q":        {120, 112},
}

// paperTable3 holds the paper's slowdown factors and block counts:
// {quad lock-free, quad lock-based, cuckoo lock-free, cuckoo lock-based,
// blocks}.
var paperTable3 = map[string][5]float64{
	"tmm":          {1.07, 1.70, 1.07, 4.04, 16384},
	"tpacf":        {1.01, 1.02, 1.01, 1.02, 512},
	"mri-gridding": {3.19, 6332, 1.46, 1868.09, 65536},
	"spmv":         {1.22, 23.78, 1.12, 18.85, 1536},
	"sad":          {2.51, 4491.87, 3.33, 9162.23, 128640},
	"histo":        {1.05, 1.30, 1.28, 1.48, 42},
	"cutcp":        {1.08, 32.31, 1.13, 50.73, 128},
	"mri-q":        {1.08, 5.50, 1.06, 4.88, 1024},
}

// paperTable5 holds Table V: {time overhead %, space overhead %}.
var paperTable5 = map[string][2]float64{
	"tmm":          {6.2, 0.2},
	"tpacf":        {1.0, 0.02},
	"mri-gridding": {2.5, 0.82},
	"spmv":         {1.6, 0.02},
	"sad":          {0.6, 12.27},
	"histo":        {0.6, 0.01},
	"cutcp":        {2.1, 0.02},
	"mri-q":        {2.7, 0.25},
}

// naiveCfg is the Fig. 5 configuration: lock-free, shuffle reduction,
// dual checksums, hash-table store of the given kind.
func naiveCfg(kind hashtab.Kind) core.Config {
	return core.Config{
		Checksum:  checksum.Dual,
		Store:     kind,
		LockMode:  hashtab.LockFree,
		Reduction: core.ReduceShuffle,
	}
}

// Table1 renders the Table I benchmark inventory with this
// reproduction's synthetic inputs and block counts.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{ID: "table1", Title: "Benchmark inventory (Table I)",
		Columns: []string{"name", "suite", "bottleneck", "input", "blocks", "block dim"}}
	names := append(append([]string{}, kernels.Names...),
		"megakv-search", "megakv-insert", "megakv-delete", "megakv-mixed")
	for _, name := range names {
		w := kernels.New(name, r.Opt.Scale)
		grid, blk := w.Geometry()
		info := w.Info()
		t.AddRow(name, info.Suite, info.Bottleneck, info.Input,
			fmt.Sprint(grid.Size()), fmt.Sprintf("%dx%dx%d", blk.X, blk.Y, blk.Z))
	}
	t.Notes = append(t.Notes, "inputs are synthetic, scaled to preserve the paper's thread-block count ordering")
	return t, nil
}

// Fig5 measures the naive-LP overheads (lock-free hash tables with
// parallel reduction) for Quad and Cuckoo.
func (r *Runner) Fig5() (*Table, error) {
	t := &Table{ID: "fig5", Title: "Execution time overhead vs baseline, Quad vs Cuckoo (Fig. 5)",
		Columns: []string{"benchmark", "quad", "cuckoo", "paper quad", "paper cuckoo"}}
	var quadOs, cuckooOs []float64
	for _, name := range kernels.Names {
		oq, _, err := r.overhead(name, naiveCfg(hashtab.Quad))
		if err != nil {
			return nil, err
		}
		oc, _, err := r.overhead(name, naiveCfg(hashtab.Cuckoo))
		if err != nil {
			return nil, err
		}
		quadOs = append(quadOs, oq)
		cuckooOs = append(cuckooOs, oc)
		p := paperFig5[name]
		t.AddRow(name, pct(oq), pct(oc), fmt.Sprintf("%.1f%%", p[0]), fmt.Sprintf("%.1f%%", p[1]))
	}
	t.AddRow("geomean", pct(geomeanOverhead(quadOs)), pct(geomeanOverhead(cuckooOs)), "29.4%", "31.7%")
	return t, nil
}

// Table2 reports hash-table collision counts during checksum insertion.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{ID: "table2", Title: "Number of hash table collisions (Table II)",
		Columns: []string{"benchmark", "quad", "cuckoo", "paper quad", "paper cuckoo"}}
	for _, name := range kernels.Names {
		mq, err := r.measure(name, cfgPtr(naiveCfg(hashtab.Quad)))
		if err != nil {
			return nil, err
		}
		mc, err := r.measure(name, cfgPtr(naiveCfg(hashtab.Cuckoo)))
		if err != nil {
			return nil, err
		}
		p := paperTable2[name]
		t.AddRow(name, fmt.Sprint(mq.collisions), fmt.Sprint(mc.collisions),
			fmt.Sprint(p[0]), fmt.Sprint(p[1]))
	}
	t.Notes = append(t.Notes,
		"absolute counts scale with input size; the paper ran much larger inputs — compare which benchmarks collide heavily")
	return t, nil
}

// Table3 compares lock-free and lock-based insertion.
func (r *Runner) Table3() (*Table, error) {
	t := &Table{ID: "table3", Title: "Lock-based vs lock-free slowdown (Table III)",
		Columns: []string{"benchmark", "quad lock-free", "quad lock-based", "cuckoo lock-free", "cuckoo lock-based", "blocks", "paper (q-lf/q-lb/c-lf/c-lb)"}}
	var fQF, fQL, fCF, fCL []float64
	for _, name := range kernels.Names {
		row := []string{name}
		var blocks int
		factors := make([]float64, 4)
		for i, cfg := range []core.Config{
			naiveCfg(hashtab.Quad),
			lockCfg(hashtab.Quad),
			naiveCfg(hashtab.Cuckoo),
			lockCfg(hashtab.Cuckoo),
		} {
			o, m, err := r.overhead(name, cfg)
			if err != nil {
				return nil, err
			}
			factors[i] = 1 + o
			blocks = m.blocks
			row = append(row, times(1+o))
		}
		fQF = append(fQF, factors[0])
		fQL = append(fQL, factors[1])
		fCF = append(fCF, factors[2])
		fCL = append(fCL, factors[3])
		p := paperTable3[name]
		row = append(row, fmt.Sprint(blocks),
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", p[0], p[1], p[2], p[3]))
		t.AddRow(row...)
	}
	t.AddRow("geomean", times(geomeanFactor(fQF)), times(geomeanFactor(fQL)),
		times(geomeanFactor(fCF)), times(geomeanFactor(fCL)), "-", "1.33/36.62/1.35/31.73")
	return t, nil
}

func lockCfg(kind hashtab.Kind) core.Config {
	c := naiveCfg(kind)
	c.LockMode = hashtab.LockBased
	return c
}

// Table4 compares shuffle-based parallel reduction against the
// through-memory sequential reduction.
func (r *Runner) Table4() (*Table, error) {
	t := &Table{ID: "table4", Title: "Overheads with vs without parallel reduction (Table IV)",
		Columns: []string{"benchmark", "quad+shfl", "quad+no", "cuckoo+shfl", "cuckoo+no", "paper (q+shfl/q+no/c+shfl/c+no)"}}
	var col [4][]float64
	for _, name := range kernels.Names {
		row := []string{name}
		for i, cfg := range []core.Config{
			naiveCfg(hashtab.Quad),
			seqCfg(hashtab.Quad),
			naiveCfg(hashtab.Cuckoo),
			seqCfg(hashtab.Cuckoo),
		} {
			o, _, err := r.overhead(name, cfg)
			if err != nil {
				return nil, err
			}
			col[i] = append(col[i], o)
			row = append(row, pct(o))
		}
		p := paperFig5[name]
		pn := paperTable4NoShfl[name]
		row = append(row, fmt.Sprintf("%.1f/%.1f/%.1f/%.1f%%", p[0], pn[0], p[1], pn[1]))
		t.AddRow(row...)
	}
	t.AddRow("geomean", pct(geomeanOverhead(col[0])), pct(geomeanOverhead(col[1])),
		pct(geomeanOverhead(col[2])), pct(geomeanOverhead(col[3])), "29.4/63.3/31.7/65.8%")
	return t, nil
}

func seqCfg(kind hashtab.Kind) core.Config {
	c := naiveCfg(kind)
	c.Reduction = core.ReduceSequential
	return c
}

// Table5 measures the paper's final design: the checksum global array
// with shuffle reduction, including the space overhead column.
func (r *Runner) Table5() (*Table, error) {
	t := &Table{ID: "table5", Title: "Global array + shuffle: time and space overheads (Table V)",
		Columns: []string{"benchmark", "array+shuffle", "space overhead", "paper time", "paper space"}}
	var timeOs, spaceOs []float64
	for _, name := range kernels.Names {
		o, m, err := r.overhead(name, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		space := float64(m.tableBytes) / float64(m.persist)
		timeOs = append(timeOs, o)
		spaceOs = append(spaceOs, space)
		p := paperTable5[name]
		t.AddRow(name, pct(o), pct(space), fmt.Sprintf("%.1f%%", p[0]), fmt.Sprintf("%.2f%%", p[1]))
	}
	t.AddRow("geomean", pct(geomeanOverhead(timeOs)), pct(geomeanOverhead(spaceOs)), "2.1%", "1.63%")
	return t, nil
}

// NoCollision reruns MRI-GRIDDING with collisions artificially removed
// (every first probe hits an empty slot), the §IV-D.2 hypothesis test.
func (r *Runner) NoCollision() (*Table, error) {
	t := &Table{ID: "nocollision", Title: "MRI-GRIDDING with collisions removed (§IV-D.2)",
		Columns: []string{"store", "with collisions", "collision-free", "paper collision-free"}}
	for _, kind := range []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo} {
		withC, _, err := r.overhead("mri-gridding", naiveCfg(kind))
		if err != nil {
			return nil, err
		}
		cfg := naiveCfg(kind)
		cfg.PerfectSlot = true
		without, m, err := r.overhead("mri-gridding", cfg)
		if err != nil {
			return nil, err
		}
		if m.collisions != 0 {
			return nil, fmt.Errorf("perfect-slot run still collided %d times", m.collisions)
		}
		paper := "0.8%"
		if kind == hashtab.Cuckoo {
			paper = "0.1%"
		}
		t.AddRow(kind.String(), pct(withC), pct(without), paper)
	}
	t.Notes = append(t.Notes, "the overhead drop confirms collisions (not insertion itself) dominate the naive-LP slowdown")
	return t, nil
}

// NoAtomic replaces the insertion atomics with plain check-then-act
// sequences (§IV-D.3).
func (r *Runner) NoAtomic() (*Table, error) {
	t := &Table{ID: "noatomic", Title: "Insertion without atomic instructions (§IV-D.3)",
		Columns: []string{"store", "with atomics (geomean)", "without atomics (geomean)", "paper without"}}
	for _, kind := range []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo} {
		var withOs, withoutOs []float64
		for _, name := range kernels.Names {
			ow, _, err := r.overhead(name, naiveCfg(kind))
			if err != nil {
				return nil, err
			}
			cfg := naiveCfg(kind)
			cfg.LockMode = hashtab.NoAtomic
			on, _, err := r.overhead(name, cfg)
			if err != nil {
				return nil, err
			}
			withOs = append(withOs, ow)
			withoutOs = append(withoutOs, on)
		}
		paper := ">16x"
		if kind == hashtab.Cuckoo {
			paper = "41.9%"
		}
		t.AddRow(kind.String(), pct(geomeanOverhead(withOs)), pct(geomeanOverhead(withoutOs)), paper)
	}
	t.Notes = append(t.Notes, "removing atomics exposes dependent round-trip latency and lost-update retries; it never helps")
	return t, nil
}

// MultiChecksum compares parity-only, modular-only and dual checksums on
// TMM with quadratic probing (§VII-2).
func (r *Runner) MultiChecksum() (*Table, error) {
	t := &Table{ID: "multichecksum", Title: "Single vs dual checksums, TMM + Quad (§VII-2)",
		Columns: []string{"checksums", "overhead", "paper"}}
	for _, row := range []struct {
		kind  checksum.Kind
		paper string
	}{
		{checksum.Parity, "7.6%"},
		{checksum.Modular, "7.7%"},
		{checksum.Dual, "8.1%"},
	} {
		cfg := naiveCfg(hashtab.Quad)
		cfg.Checksum = row.kind
		o, _, err := r.overhead("tmm", cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.kind.String(), pct(o), row.paper)
	}
	t.Notes = append(t.Notes, "the dual scheme's false-negative rate (<1e-12) is worth its small cost bump")
	return t, nil
}

// WriteAmp measures the increase in NVM line writes caused by LP's
// checksum stores (§VII-3), on the paper's three workloads.
func (r *Runner) WriteAmp() (*Table, error) {
	t := &Table{ID: "writeamp", Title: "NVM write amplification of the final LP design (§VII-3)",
		Columns: []string{"benchmark", "baseline NVM writes", "LP NVM writes", "increase", "paper"}}
	paper := map[string]string{"spmv": "+0.5%", "tmm": "+2.2%", "sad": "between"}
	for _, name := range []string{"spmv", "tmm", "sad"} {
		base, err := r.measure(name, nil)
		if err != nil {
			return nil, err
		}
		m, err := r.measure(name, cfgPtr(core.DefaultConfig()))
		if err != nil {
			return nil, err
		}
		inc := float64(m.nvmWrites)/float64(base.nvmWrites) - 1
		t.AddRow(name, fmt.Sprint(base.nvmWrites), fmt.Sprint(m.nvmWrites),
			fmt.Sprintf("+%s", pct(inc)), paper[name])
	}
	t.Notes = append(t.Notes,
		"LP never flushes: the only extra writes are naturally evicted checksum lines")
	return t, nil
}

// MegaKV measures the final design's overhead on the MEGA-KV key-value
// store's three operation types (§VII-4).
func (r *Runner) MegaKV() (*Table, error) {
	t := &Table{ID: "megakv", Title: "MEGA-KV operation overheads with the final LP design (§VII-4)",
		Columns: []string{"operation", "overhead", "paper"}}
	paper := map[string]string{
		"megakv-search": "3.4%", "megakv-delete": "5.2%", "megakv-insert": "2.1%",
		"megakv-mixed": "(not in paper)",
	}
	for _, name := range []string{"megakv-search", "megakv-delete", "megakv-insert", "megakv-mixed"} {
		o, _, err := r.overhead(name, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(name[len("megakv-"):], pct(o), paper[name])
	}
	return t, nil
}

// FalseNeg measures checksum false-negative rates under random error
// injection (§IV-B). The paper reports <1 in 2e9 for modular and
// Adler-32 individually and <1e-12 for the dual scheme; sampled trials
// here bound the rate from above.
func (r *Runner) FalseNeg() (*Table, error) {
	t := &Table{ID: "falseneg", Title: "Checksum false negatives under random error injection (§IV-B)",
		Columns: []string{"checksum", "corruption", "trials", "false negatives", "rate"}}
	rng := rand.New(rand.NewSource(int64(r.Opt.Seed)))
	trials := 200000
	if r.Opt.Scale > 1 {
		trials *= r.Opt.Scale
	}
	cases := []struct {
		c         checksum.Corruption
		maxErrors int
		label     string
	}{
		{checksum.LostStore, 4, "lost-store (1-4)"},
		{checksum.LostLine, 2, "lost-line (1-2)"},
		{checksum.BitFlip, 1, "bit-flip (1)"},
		{checksum.BitFlip, 4, "bit-flip (1-4)"},
	}
	for _, k := range []checksum.Kind{checksum.Parity, checksum.Modular, checksum.Dual, checksum.Adler32} {
		for _, tc := range cases {
			res := checksum.MeasureFalseNegatives(rng, k, tc.c, 256, tc.maxErrors, trials)
			t.AddRow(k.String(), tc.label, fmt.Sprint(res.Trials),
				fmt.Sprint(res.FalseNegatives), fmt.Sprintf("%.2e", res.FalseNegativeRate()))
		}
	}
	t.Notes = append(t.Notes,
		"paper: modular and Adler-32 < 1/2e9 individually; modular+parity < 1e-12 combined",
		"multi-bit-flip misses are opposite flips of the same bit position in two values, which cancel in both sum and XOR; LP's own failure mode (lost stores) is always caught in these trials")
	return t, nil
}

// Recovery runs the end-to-end crash flow: run under LP, crash, validate,
// re-execute failed regions, verify the output equals the crash-free
// golden result.
func (r *Runner) Recovery() (*Table, error) {
	t := &Table{ID: "recovery", Title: "Crash, validation and recovery (§II-A, §IV-A)",
		Columns: []string{"benchmark", "blocks", "failed after crash", "recovery rounds", "validate+recover cycles", "output"}}
	// A small cache makes natural eviction persist most of the run before
	// the crash, so only the cache-resident tail of regions fails — the
	// realistic partial-loss scenario LP recovers from.
	memCfg := r.Opt.Mem
	memCfg.CacheBytes = 256 << 10
	for _, name := range []string{"tmm", "spmv", "histo", "megakv-insert"} {
		mem := memsim.MustNew(memCfg)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		w := kernels.New(name, r.Opt.Scale)
		w.Setup(dev)
		grid, blk := w.Geometry()
		cfg := core.DefaultConfig()
		cfg.Seed = r.Opt.Seed
		lp := core.New(dev, cfg, grid, blk)
		kernel := w.Kernel(lp)
		dev.Launch(name, grid, blk, kernel)

		mem.Crash()

		rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 5)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if f, ok := w.(kernels.Finalizer); ok {
			fname, fg, fb, k := f.FinalizeKernel()
			dev.Launch(fname, fg, fb, k)
		}
		status := "verified"
		if err := w.Verify(); err != nil {
			status = "MISMATCH: " + err.Error()
		}
		t.AddRow(name, fmt.Sprint(grid.Size()), fmt.Sprint(rep.FailedPerRound[0]),
			fmt.Sprint(rep.Rounds), fmt.Sprint(rep.TotalCycles()), status)
	}
	t.Notes = append(t.Notes, "failed regions are those whose data or checksum stores were still cache-resident at the crash")
	return t, nil
}

func cfgPtr(c core.Config) *core.Config { return &c }
