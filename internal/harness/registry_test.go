package harness

import (
	"strings"
	"testing"
)

// TestExperimentRegistryIntegrity pins the registry's structural
// contract: every experiment has a unique ID, a non-empty title, a
// runnable body, and round-trips through ByID; every deprecated alias
// resolves to a live experiment without shadowing a real ID.
func TestExperimentRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" {
			t.Fatalf("experiment with empty ID (title %q)", e.Title)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if strings.TrimSpace(e.Title) == "" {
			t.Errorf("experiment %q has no description", e.ID)
		}
		if e.Run == nil {
			t.Errorf("experiment %q has no Run body", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID || got.Title != e.Title {
			t.Errorf("ByID(%q) round-trip failed: %+v", e.ID, got)
		}
	}
	for alias, target := range experimentAliases {
		if seen[alias] {
			t.Errorf("alias %q shadows a registered experiment", alias)
		}
		if !seen[target] {
			t.Errorf("alias %q points at unregistered experiment %q", alias, target)
		}
		got, ok := ByID(alias)
		if !ok || got.ID != target {
			t.Errorf("ByID(%q) did not resolve to %q", alias, target)
		}
	}
}

// TestServeExperimentRegistered: the serving sweep is part of the
// experiment registry and produces the full model x load x policy grid,
// with bare rows carrying no overhead figure and model rows carrying
// one.
func TestServeExperimentRegistered(t *testing.T) {
	e, ok := ByID("serve")
	if !ok {
		t.Fatal("serve experiment not registered")
	}
	r := smallRunner()
	r.Opt.Models = []string{"lp"} // none + lp keeps the sweep fast
	tbl, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(serveRateScales) * len(servePolicies)
	if len(tbl.Rows) != wantRows {
		t.Fatalf("serve table has %d rows, want %d", len(tbl.Rows), wantRows)
	}
	overheadCol := len(tbl.Columns) - 1
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns: %v", len(row), len(tbl.Columns), row)
		}
		switch row[0] {
		case "none":
			if row[overheadCol] != "—" {
				t.Errorf("bare row reports overhead %q", row[overheadCol])
			}
		case "lp":
			if !strings.HasPrefix(row[overheadCol], "+") {
				t.Errorf("lp row overhead %q not measured against bare", row[overheadCol])
			}
		default:
			t.Errorf("unexpected model %q with restricted Models", row[0])
		}
	}
}
