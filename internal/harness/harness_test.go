package harness

import (
	"strconv"
	"strings"
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/pmodel"
)

// smallRunner uses a reduced device so tests stay fast; relationships
// between configurations (not absolute numbers) are what the tests check.
func smallRunner() *Runner {
	opt := DefaultOptions()
	opt.Dev.NumSMs = 16
	opt.Verify = true
	return NewRunner(opt)
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Notes = append(tbl.Notes, "a note")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a    bb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestGeomeans(t *testing.T) {
	if g := geomeanOverhead(nil); g != 0 {
		t.Errorf("empty geomeanOverhead = %v", g)
	}
	if g := geomeanOverhead([]float64{0.1, 0.1}); g < 0.099 || g > 0.101 {
		t.Errorf("geomeanOverhead([0.1,0.1]) = %v", g)
	}
	if g := geomeanFactor([]float64{2, 8}); g != 4 {
		t.Errorf("geomeanFactor([2,8]) = %v, want 4", g)
	}
	if g := geomeanFactor(nil); g != 0 {
		t.Errorf("empty geomeanFactor = %v", g)
	}
}

func TestFormatting(t *testing.T) {
	if pct(0.1234) != "12.34%" {
		t.Errorf("pct = %q", pct(0.1234))
	}
	if times(1.5) != "1.50x" {
		t.Errorf("times = %q", times(1.5))
	}
}

func TestBaselineCaching(t *testing.T) {
	r := smallRunner()
	m1, err := r.measure("histo", nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.measure("histo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.cycles != m2.cycles {
		t.Errorf("baseline cache returned different measurement: %d vs %d", m1.cycles, m2.cycles)
	}
	if len(r.baseline) != 1 {
		t.Errorf("cache holds %d entries, want 1", len(r.baseline))
	}
}

func TestOverheadPositiveAndVerified(t *testing.T) {
	r := smallRunner()
	o, m, err := r.overhead("histo", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if o <= 0 {
		t.Errorf("LP overhead = %v, want > 0", o)
	}
	if m.tableBytes == 0 || m.persist == 0 {
		t.Errorf("measurement incomplete: %+v", m)
	}
}

func TestTable1Static(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 { // 8 suite + 4 megakv
		t.Errorf("table1 rows = %d, want 12", len(tbl.Rows))
	}
}

func TestMultiChecksumOrdering(t *testing.T) {
	r := smallRunner()
	tbl, err := r.MultiChecksum()
	if err != nil {
		t.Fatal(err)
	}
	// Dual must not be cheaper than either single checksum.
	parity := parsePct(t, tbl.Rows[0][1])
	dual := parsePct(t, tbl.Rows[2][1])
	if dual < parity {
		t.Errorf("dual checksum (%v%%) cheaper than parity (%v%%)", dual, parity)
	}
}

// parsePct parses a "12.34%" table cell.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestRecoveryExperiment(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Recovery()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[5] != "verified" {
			t.Errorf("%s: output %s", row[0], row[5])
		}
	}
}

func TestMegaKVExperiment(t *testing.T) {
	r := smallRunner()
	tbl, err := r.MegaKV()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("megakv rows = %d, want 4", len(tbl.Rows))
	}
}

func TestNoCollisionReducesOverhead(t *testing.T) {
	r := smallRunner()
	tbl, err := r.NoCollision()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		with := parsePct(t, row[1])
		without := parsePct(t, row[2])
		if without >= with {
			t.Errorf("%s: collision-free overhead %v%% >= with collisions %v%%", row[0], without, with)
		}
	}
}

func TestWriteAmpSmall(t *testing.T) {
	r := smallRunner()
	tbl, err := r.WriteAmp()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[3], "+") {
			t.Errorf("%s: LP should only add writes, got %s", row[0], row[3])
		}
	}
}

func TestLockConfigsSlower(t *testing.T) {
	r := smallRunner()
	free, _, err := r.overhead("sad", naiveCfg(hashtab.Quad))
	if err != nil {
		t.Fatal(err)
	}
	locked, _, err := r.overhead("sad", lockCfg(hashtab.Quad))
	if err != nil {
		t.Fatal(err)
	}
	if locked <= free {
		t.Errorf("lock-based (%v) not slower than lock-free (%v) on the most block-heavy workload", locked, free)
	}
}

func TestEPCompareDirections(t *testing.T) {
	r := smallRunner()
	tbl, err := r.EPCompare()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		epO := parsePct(t, row[1])
		lpO := parsePct(t, row[2])
		if epO <= lpO {
			t.Errorf("%s: EP overhead %v%% not greater than LP %v%%", row[0], epO, lpO)
		}
		epW := parsePct(t, strings.TrimPrefix(row[3], "+"))
		lpW := parsePct(t, strings.TrimPrefix(row[4], "+"))
		if epW <= lpW {
			t.Errorf("%s: EP write amplification %v%% not greater than LP %v%%", row[0], epW, lpW)
		}
	}
}

func TestLoadFactorMonotone(t *testing.T) {
	r := smallRunner()
	tbl, err := r.LoadFactor()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, row := range tbl.Rows {
		c, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("collisions not increasing with load: %v after %v", c, prev)
		}
		prev = c
	}
}

func TestFusionAblation(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Fusion()
	if err != nil {
		t.Fatal(err)
	}
	// Table bytes must strictly decrease with the fusion factor.
	var prev float64 = 1e18
	for _, row := range tbl.Rows {
		bytes, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if bytes >= prev {
			t.Errorf("table bytes not decreasing: %v after %v", bytes, prev)
		}
		prev = bytes
	}
}

func TestCheckpointAblation(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Post-crash damage must not increase as checkpoints get denser.
	var prev float64 = 1e18
	for _, row := range tbl.Rows {
		failed, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if failed > prev {
			t.Errorf("denser checkpoints increased damage: %v after %v", failed, prev)
		}
		prev = failed
	}
}

func TestMTBFPlanAblation(t *testing.T) {
	r := smallRunner()
	tbl, err := r.MTBFPlan()
	if err != nil {
		t.Fatal(err)
	}
	// Rarer failures must allow longer intervals and higher availability.
	var prevIv, prevAv float64 = -1, -1
	for _, row := range tbl.Rows {
		iv, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		av, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if iv <= prevIv || av <= prevAv {
			t.Errorf("interval/availability not increasing with MTBF: %v/%v after %v/%v", iv, av, prevIv, prevAv)
		}
		prevIv, prevAv = iv, av
	}
}

func TestRecoveryCostAblation(t *testing.T) {
	r := smallRunner()
	tbl, err := r.RecoveryCost()
	if err != nil {
		t.Fatal(err)
	}
	// Damage must not decrease as the cache grows.
	var prev float64 = -1
	for _, row := range tbl.Rows {
		failed, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if failed < prev {
			t.Errorf("larger cache lost fewer regions: %v after %v", failed, prev)
		}
		prev = failed
	}
}

func TestCPULPConcurrencyStory(t *testing.T) {
	r := smallRunner()
	tbl, err := r.CPULP()
	if err != nil {
		t.Fatal(err)
	}
	first := parsePct(t, tbl.Rows[0][1])
	last := parsePct(t, tbl.Rows[len(tbl.Rows)-1][1])
	if last <= first*5 {
		t.Errorf("CPU design should collapse with concurrency: %v%% -> %v%%", first, last)
	}
	for _, row := range tbl.Rows {
		cpu := parsePct(t, row[1])
		gpu := parsePct(t, row[2])
		if gpu >= cpu {
			t.Errorf("workers=%s: GPU design (%v%%) not cheaper than CPU design (%v%%)", row[0], gpu, cpu)
		}
	}
}

func TestRunnerScaleClamped(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0
	if r := NewRunner(opt); r.Opt.Scale != 1 {
		t.Errorf("scale not clamped: %d", r.Opt.Scale)
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	opt := DefaultOptions()
	if opt.Dev.NumSMs <= 0 || opt.Mem.CacheBytes <= 0 || opt.Scale != 1 {
		t.Errorf("bad defaults: %+v", opt)
	}
	_ = gpusim.DefaultConfig() // keep import balanced with usage above
}

func TestFaultCampaignExperiment(t *testing.T) {
	r := smallRunner()
	tbl, err := r.FaultCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("fault campaign produced no rows")
	}
	for _, row := range tbl.Rows {
		if row[5] != "0" {
			t.Errorf("%s/%s: %s cases violated the campaign contract", row[0], row[1], row[5])
		}
	}
}

func TestModelCompareDirections(t *testing.T) {
	r := smallRunner()
	tbl, err := r.ModelCompare()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tbl.Rows), 5*len(pmodel.Names()); got != want {
		t.Fatalf("got %d rows, want %d (5 benchmarks x every registered model)", got, want)
	}
	// Per-benchmark orderings that hold by construction: strict flushes
	// and fences every protected store, so it must cost at least as much
	// time and as many NVM writes as any other model; EP's logging must
	// cost more than LP's flush-free checksums. (SBRP vs LP is workload-
	// dependent — buffered flushing can beat or lose to natural eviction
	// — so no ordering is pinned between them.)
	type cell struct{ overhead, writes float64 }
	byModel := map[string]map[string]cell{}
	for _, row := range tbl.Rows {
		bench, model := row[0], row[1]
		if byModel[bench] == nil {
			byModel[bench] = map[string]cell{}
		}
		byModel[bench][model] = cell{
			overhead: parsePct(t, row[2]),
			writes:   parsePct(t, strings.TrimPrefix(row[3], "+")),
		}
		if mb, err := strconv.ParseInt(row[4], 10, 64); err != nil || mb <= 0 {
			t.Errorf("%s/%s: bad metadata bytes %q", bench, model, row[4])
		}
	}
	for bench, cells := range byModel {
		strict := cells["strict"]
		for model, c := range cells {
			if model == "strict" {
				continue
			}
			if strict.overhead < c.overhead {
				t.Errorf("%s: strict overhead %v%% below %s's %v%%", bench, strict.overhead, model, c.overhead)
			}
		}
		if cells["ep"].overhead <= cells["lp"].overhead {
			t.Errorf("%s: EP overhead %v%% not greater than LP %v%%", bench, cells["ep"].overhead, cells["lp"].overhead)
		}
		if cells["ep"].writes <= cells["lp"].writes {
			t.Errorf("%s: EP write amplification %v%% not greater than LP %v%%", bench, cells["ep"].writes, cells["lp"].writes)
		}
	}
}

func TestModelCompareSubset(t *testing.T) {
	opt := DefaultOptions()
	opt.Dev.NumSMs = 16
	opt.Models = []string{"sbrp"}
	tbl, err := NewRunner(opt).ModelCompare()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("got %d rows, want 5 (one per benchmark)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "sbrp" {
			t.Errorf("row for %s has model %q, want sbrp", row[0], row[1])
		}
	}
	opt.Models = []string{"nope"}
	if _, err := NewRunner(opt).ModelCompare(); err == nil {
		t.Fatal("unknown model in Options.Models did not error")
	}
}

func TestExperimentAlias(t *testing.T) {
	e, ok := ByID("epcompare")
	if !ok {
		t.Fatal("deprecated id epcompare no longer resolves")
	}
	if e.ID != "modelcompare" {
		t.Fatalf("epcompare resolved to %q, want modelcompare", e.ID)
	}
	for _, exp := range Experiments {
		if exp.ID == "epcompare" {
			t.Fatal("epcompare still registered: RunAll would run the sweep twice")
		}
	}
}
