package harness

import (
	"fmt"

	"gpulp/internal/faultsim"
)

// ReplicaCompare measures what replicated durable placement buys and
// costs as the replication factor grows (see faultsim.ReplicaCampaign
// and cmd/lpfault -replicas for the full grid): for each R a seeded
// sweep kills one device mid-launch per case across every failure kind,
// and the table rolls the cells up per R — availability (cases absorbed
// without degradation), how many failures were repaired with zero
// re-execution (replica adoption), goodput, and the NVM write
// amplification the extra durable copies cost.
func (r *Runner) ReplicaCompare() (*Table, error) {
	c := faultsim.DefaultReplicaCampaign(3)
	c.Opt.Scale = r.Opt.Scale
	c.Opt.Dev = r.Opt.Dev
	c.Opt.LP.Seed = r.Opt.Seed
	c.RFactors = []int{1, 2, 3}
	c.Models = []string{"lp"}
	c.Parallel = r.Opt.Parallel
	rep, err := c.Run()
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:      "replicacompare",
		Title:   "replicated placement: availability, goodput and NVM write amplification vs R",
		Columns: []string{"replicas", "cases", "adopted", "reexec-free", "availability", "mean reexec blocks", "mean nvm line writes", "write amp", "mean makespan", "goodput jobs/Mcycle"},
	}

	// Roll the per-(kind, placer, model) cells up per replication factor.
	type rollup struct {
		cases, adopted, recovered, degraded, typed, failed, reexecFree int
		reexec, nvm, makespan, coverage                                float64
	}
	byR := map[int]*rollup{}
	var order []int
	for _, cell := range rep.Cells {
		ru := byR[cell.Replicas]
		if ru == nil {
			ru = &rollup{}
			byR[cell.Replicas] = ru
			order = append(order, cell.Replicas)
		}
		ru.cases += cell.Cases
		ru.adopted += cell.Adopted
		ru.recovered += cell.Recovered
		ru.degraded += cell.Degraded
		ru.typed += cell.TypedErrors
		ru.failed += cell.Failures
		if cell.MeanReexec == 0 {
			ru.reexecFree += cell.Cases
		}
		ru.reexec += cell.MeanReexec * float64(cell.Cases)
		ru.nvm += cell.MeanNVMWrites * float64(cell.Cases)
		ru.makespan += cell.MeanMakespan * float64(cell.Cases)
		ru.coverage += cell.MeanCoverage * float64(cell.Cases)
	}

	var baseNVM float64
	for i, rf := range order {
		ru := byR[rf]
		n := float64(ru.cases)
		meanNVM := ru.nvm / n
		if i == 0 {
			baseNVM = meanNVM
		}
		amp := 1.0
		if baseNVM > 0 {
			amp = meanNVM / baseNVM
		}
		meanMakespan := ru.makespan / n
		goodput := 0.0
		if meanMakespan > 0 {
			goodput = float64(c.Jobs) * (ru.coverage / n) / (meanMakespan / 1e6)
		}
		availability := float64(ru.adopted+ru.recovered) / n
		tbl.AddRow(fmt.Sprint(rf), fmt.Sprint(ru.cases), fmt.Sprint(ru.adopted),
			fmt.Sprint(ru.reexecFree), fmt.Sprintf("%.4f", availability),
			fmt.Sprintf("%.2f", ru.reexec/n), fmt.Sprintf("%.1f", meanNVM),
			fmt.Sprintf("%.2fx", amp), fmt.Sprintf("%.0f", meanMakespan),
			fmt.Sprintf("%.2f", goodput))
	}

	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d cases total on a %d-device cluster; every case kills one seeded device mid-launch (fail-stop, hang, or transient stall)", rep.Total, c.Devices),
		fmt.Sprintf("%d cases recovered without re-executing a single block: with R >= 2 failover adopts the freshest checksum-consistent surviving replica instead of re-executing", rep.RecoveredWithoutReexec),
		"write amp is mean durable NVM line writes relative to R=1 — the price of keeping R copies inside the shared-clock loop")
	for _, f := range rep.Failures {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("FAILURE: %v -> %v (%s)", f.Case, f.Outcome, f.Err))
	}
	return tbl, nil
}
