package harness

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/ep"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

// EPCompare pits the paper's Lazy Persistency against an Eager
// Persistency baseline (redo log + clwb + persist barriers — the §I/§II
// machinery LP avoids) on time overhead and NVM write amplification.
// The paper quotes "20-40% slowdowns are typical for EP" on CPUs and
// motivates LP by EP's logging/flushing write amplification; this
// experiment regenerates both effects at GPU block counts.
//
// The registered experiment is now modelcompare, which sweeps the full
// persistency-model zoo; "-exp epcompare" aliases to it. This focused
// two-point measurement stays for its direction pins (EP costs more
// time and more NVM writes than LP on every benchmark).
func (r *Runner) EPCompare() (*Table, error) {
	t := &Table{ID: "epcompare", Title: "Eager vs Lazy Persistency (§I/§II motivation)",
		Columns: []string{"benchmark", "EP overhead", "LP overhead", "EP extra NVM writes", "LP extra NVM writes"}}

	for _, name := range []string{"tmm", "spmv", "sad", "histo", "mri-q"} {
		base, err := r.measure(name, nil)
		if err != nil {
			return nil, err
		}
		lpO, lpM, err := r.overhead(name, core.DefaultConfig())
		if err != nil {
			return nil, err
		}

		// EP run: fresh system, same workload, redo-log wrap.
		mem := memsim.MustNew(r.Opt.Mem)
		dev := gpusim.MustNew(r.Opt.Dev, mem)
		w := kernels.New(name, r.Opt.Scale)
		w.Setup(dev)
		grid, blk := w.Geometry()
		// Capacity: every thread may store a few values (MRI-Q stores 2).
		e := ep.New(dev, grid, blk, blk.Size()*4)
		kernel := e.Wrap(w.Kernel(nil), w.Outputs()...)
		mem.ResetStats()
		res := dev.Launch(name+"-ep", grid, blk, kernel)
		epCycles := res.Cycles
		if f, ok := w.(kernels.Finalizer); ok {
			fname, fg, fb, k := f.FinalizeKernel()
			fres := dev.Launch(fname, fg, fb, k)
			epCycles += fres.Cycles
		}
		if r.Opt.Verify {
			if err := w.Verify(); err != nil {
				return nil, fmt.Errorf("%s under EP: %w", name, err)
			}
		}
		mem.FlushAll()
		epWrites := mem.Stats().NVMLineWrites

		epO := float64(epCycles)/float64(base.cycles) - 1
		epExtra := float64(epWrites)/float64(base.nvmWrites) - 1
		lpExtra := float64(lpM.nvmWrites)/float64(base.nvmWrites) - 1
		t.AddRow(name, pct(epO), pct(lpO), "+"+pct(epExtra), "+"+pct(lpExtra))
	}
	t.Notes = append(t.Notes,
		"EP: per-store redo-log records with line flushes, plus two persist barriers per thread block",
		"LP: no flushes, no fences, no log — only naturally evicted checksum lines")
	return t, nil
}
