package harness

import (
	"fmt"

	"gpulp/internal/faultsim"
)

// FaultCampaign runs a reduced seeded fault-injection sweep (see
// internal/faultsim and cmd/lpfault for the full campaign): every
// (kernel, fault kind) cell gets a few seeded cases, and each must
// either recover to a bit-exact durable image or report a typed error.
// The table shows the recovery outcome mix and mean simulated recovery
// cost per cell — the robustness counterpart of the recovery experiment.
func (r *Runner) FaultCampaign() (*Table, error) {
	c := faultsim.DefaultCampaign(3)
	c.Opt.Scale = r.Opt.Scale
	c.Opt.Dev = r.Opt.Dev
	c.Opt.LP.Seed = r.Opt.Seed
	rep, err := c.Run()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "faultcampaign",
		Title:   "fault-injection campaign: crash shapes, torn persists and bit flips vs hardened recovery",
		Columns: []string{"kernel", "fault", "cases", "recovered", "typed-err", "failed", "max tier", "mean recovery cycles"},
	}
	for _, s := range rep.Summaries {
		tbl.AddRow(s.Kernel, s.Kind, fmt.Sprint(s.Cases), fmt.Sprint(s.Recovered),
			fmt.Sprint(s.TypedErrors), fmt.Sprint(s.Mismatches+s.Panics),
			s.MaxTier, fmt.Sprint(s.MeanRecoveryCycles))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d cases total: %d recovered bit-exact, %d typed errors, %d contract violations",
			rep.Total, rep.Recovered, rep.TypedErrors, rep.Mismatches+rep.Panics),
		"data bit flips are probed only on dense kernels; flips in the MEGA-KV index are outside the block-checksum contract")
	for _, f := range rep.Failures {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("FAILURE: %v -> %v (%s)", f.Case, f.Outcome, f.Err))
	}
	return tbl, nil
}
