// Package harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// measures simulated-cycle overheads of Lazy Persistency configurations
// against no-persistency baselines over the Table I workload suite and
// renders a text table shaped like the paper's artifact, with the paper's
// published numbers alongside for comparison.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/parwork"
)

// Options configures a harness run.
type Options struct {
	// Scale is the workload input scale (1 = default).
	Scale int
	// Dev and Mem are the simulated device and memory configurations.
	Dev gpusim.Config
	Mem memsim.Config
	// Verify re-checks every run's output against the host golden
	// reference (slower; on by default in tests).
	Verify bool
	// Seed perturbs the LP hash functions.
	Seed uint64
	// Models restricts the modelcompare sweep to these registered
	// persistency models (empty = all of them).
	Models []string
	// Parallel is the number of host goroutines used to fan out
	// independent simulator runs — across experiments in RunAll and
	// across the per-configuration runs inside an experiment. Every run
	// owns a fresh simulated system and results are aggregated in a
	// fixed order, so any value (including 1, the default) produces
	// byte-identical tables.
	Parallel int
}

// DefaultOptions returns the V100-like configuration used for the
// experiment suite.
func DefaultOptions() Options {
	return Options{
		Scale:  1,
		Dev:    gpusim.DefaultConfig(),
		Mem:    memsim.DefaultConfig(),
		Verify: false,
		Seed:   0x1157c,
	}
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig5", "table3").
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Columns are the header cells; Rows the data cells.
	Columns []string
	Rows    [][]string
	// Notes carry caveats and observations.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as GitHub-flavored markdown (used to
// regenerate the EXPERIMENTS.md tables).
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|"))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one regenerable artifact.
type Experiment struct {
	// ID is the lookup key; Title the paper artifact it reproduces.
	ID    string
	Title string
	// Run executes the experiment.
	Run func(r *Runner) (*Table, error)
}

// Experiments lists every experiment in paper order.
var Experiments = []Experiment{
	{"table1", "Table I: benchmark inventory", (*Runner).Table1},
	{"fig5", "Fig. 5: naive LP overhead, Quad vs Cuckoo (lock-free, shuffle)", (*Runner).Fig5},
	{"table2", "Table II: hash table collision counts", (*Runner).Table2},
	{"table3", "Table III: lock-based vs lock-free slowdown", (*Runner).Table3},
	{"table4", "Table IV: reduction with vs without shuffle", (*Runner).Table4},
	{"table5", "Table V: global-array overheads (time and space)", (*Runner).Table5},
	{"nocollision", "§IV-D.2: MRI-GRIDDING with collisions removed", (*Runner).NoCollision},
	{"noatomic", "§IV-D.3: insertion without atomic instructions", (*Runner).NoAtomic},
	{"multichecksum", "§VII-2: single vs dual checksum on TMM", (*Runner).MultiChecksum},
	{"writeamp", "§VII-3: NVM write amplification", (*Runner).WriteAmp},
	{"megakv", "§VII-4: MEGA-KV operation overheads", (*Runner).MegaKV},
	{"falseneg", "§IV-B: checksum false-negative rates under error injection", (*Runner).FalseNeg},
	{"recovery", "§II-A/§IV-A: crash, validation and recovery", (*Runner).Recovery},
	{"faultcampaign", "robustness: seeded fault-injection campaign vs hardened recovery", (*Runner).FaultCampaign},
	{"scrubcampaign", "robustness: media-error rate sweep vs self-healing recovery", (*Runner).ScrubCampaign},
	{"clustercampaign", "robustness: multi-device failover sweep vs sharded cross-device recovery", (*Runner).ClusterCampaign},
	{"replicacompare", "robustness: availability, goodput and NVM write amplification vs replication factor", (*Runner).ReplicaCompare},
	{"modelcompare", "persistency model zoo: LP vs EP vs SBRP vs strict", (*Runner).ModelCompare},
	{"serve", "serving: MEGA-KV latency under load, admission and persistency models (§VII-4 online)", (*Runner).Serve},
	{"scaling", "ablation: LP overhead vs thread-block count", (*Runner).Scaling},
	{"fusion", "ablation: region fusion factor (§IV-A enlargement)", (*Runner).Fusion},
	{"checkpoint", "ablation: checkpoint interval (§IV-A whole-cache flush)", (*Runner).Checkpoint},
	{"loadfactor", "ablation: quadratic-probing load factor (§IV-C)", (*Runner).LoadFactor},
	{"cpulp", "§II-A: the CPU LP design vs the GPU design across concurrency", (*Runner).CPULP},
	{"recoverycost", "ablation: LP recovery cost vs crash damage (§I trade-off)", (*Runner).RecoveryCost},
	{"mtbf", "§IV-A: checkpoint interval planning from failure rate", (*Runner).MTBFPlan},
}

// experimentAliases maps deprecated experiment IDs to their successors
// (the old name keeps working on the CLI; RunAll runs each once).
var experimentAliases = map[string]string{
	"epcompare": "modelcompare",
}

// ByID looks an experiment up, resolving deprecated aliases.
func ByID(id string) (Experiment, bool) {
	if alias, ok := experimentAliases[id]; ok {
		id = alias
	}
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Runner executes experiments, caching baseline measurements across them.
type Runner struct {
	Opt Options

	mu       sync.Mutex // guards baseline; experiments may run concurrently
	baseline map[string]measurement
}

// NewRunner creates a Runner with the given options.
func NewRunner(opt Options) *Runner {
	if opt.Scale < 1 {
		opt.Scale = 1
	}
	return &Runner{Opt: opt, baseline: map[string]measurement{}}
}

// workers returns the configured fan-out width (>= 1).
func (r *Runner) workers() int {
	if r.Opt.Parallel > 1 {
		return r.Opt.Parallel
	}
	return 1
}

// RunAll executes every experiment, rendering with the given renderer
// (Table.Render or Table.RenderMarkdown). With Options.Parallel > 1 the
// experiments run concurrently on a worker pool; tables are still
// rendered in paper order and are byte-identical to a serial run.
func (r *Runner) RunAll(w io.Writer, render func(*Table, io.Writer)) error {
	if render == nil {
		render = (*Table).Render
	}
	tables := make([]*Table, len(Experiments))
	errs := make([]error, len(Experiments))
	parwork.Do(len(Experiments), r.workers(), func(i int) {
		tables[i], errs[i] = Experiments[i].Run(r)
	})
	for i, e := range Experiments {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", e.ID, errs[i])
		}
		render(tables[i], w)
	}
	return nil
}

// measurement captures one workload run.
type measurement struct {
	cycles     int64
	launch     gpusim.LaunchResult
	collisions int64
	raceRedos  int64
	rehashes   int64
	tableBytes int64
	persist    int64
	nvmWrites  int64 // NVM line writes incl. a final drain flush
	blocks     int
}

// measure runs the named workload once, with lpCfg (nil = baseline), and
// returns the measurement. Baselines are cached per workload; the
// simulator is deterministic, so when two concurrent experiments race to
// fill the same cache entry they store the same value.
func (r *Runner) measure(name string, lpCfg *core.Config) (measurement, error) {
	if lpCfg == nil {
		r.mu.Lock()
		m, ok := r.baseline[name]
		r.mu.Unlock()
		if ok {
			return m, nil
		}
	}
	mem := memsim.MustNew(r.Opt.Mem)
	dev := gpusim.MustNew(r.Opt.Dev, mem)
	w := kernels.New(name, r.Opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()

	var lp *core.LP
	if lpCfg != nil {
		cfg := *lpCfg
		cfg.Seed = r.Opt.Seed
		lp = core.New(dev, cfg, grid, blk)
	}
	mem.ResetStats() // exclude setup traffic
	res := dev.Launch(w.Name(), grid, blk, w.Kernel(lp))
	m := measurement{cycles: res.Cycles, launch: res, blocks: grid.Size(), persist: w.PersistBytes()}
	if f, ok := w.(kernels.Finalizer); ok {
		fname, fg, fb, k := f.FinalizeKernel()
		fres := dev.Launch(fname, fg, fb, k)
		m.cycles += fres.Cycles
	}
	if r.Opt.Verify {
		if err := w.Verify(); err != nil {
			return m, fmt.Errorf("%s output verification failed: %w", name, err)
		}
	}
	mem.FlushAll() // drain dirty data so write counts cover the full run
	m.nvmWrites = mem.Stats().NVMLineWrites
	if lp != nil {
		st := lp.Store().Stats()
		m.collisions = st.Collisions
		m.raceRedos = st.RaceRedos
		m.rehashes = st.Rehashes
		m.tableBytes = lp.TableBytes()
	}
	if lpCfg == nil {
		r.mu.Lock()
		r.baseline[name] = m
		r.mu.Unlock()
	}
	return m, nil
}

// overhead returns the fractional slowdown of an LP config vs baseline.
func (r *Runner) overhead(name string, lpCfg core.Config) (float64, measurement, error) {
	base, err := r.measure(name, nil)
	if err != nil {
		return 0, measurement{}, err
	}
	m, err := r.measure(name, &lpCfg)
	if err != nil {
		return 0, m, err
	}
	return float64(m.cycles)/float64(base.cycles) - 1, m, nil
}

// geomeanOverhead computes the geometric mean of (1+overhead) minus one.
func geomeanOverhead(overheads []float64) float64 {
	if len(overheads) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range overheads {
		sum += math.Log(1 + o)
	}
	return math.Exp(sum/float64(len(overheads))) - 1
}

// geomeanFactor computes the geometric mean of slowdown factors.
func geomeanFactor(factors []float64) float64 {
	if len(factors) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range factors {
		sum += math.Log(f)
	}
	return math.Exp(sum / float64(len(factors)))
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// times formats a slowdown factor.
func times(v float64) string { return fmt.Sprintf("%.2fx", v) }

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
