package harness

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/parwork"
	"gpulp/internal/pmodel"
)

// modelCompareBenches is the workload slice the model sweep runs over —
// the same five benchmarks the legacy epcompare experiment used.
var modelCompareBenches = []string{"tmm", "spmv", "sad", "histo", "mri-q"}

// ModelCompare sweeps every registered persistency model — LP, EP,
// SBRP, strict — over the benchmark suite and reports each model's time
// overhead, NVM write amplification, and durable-metadata footprint
// against the no-persistency baseline. It generalizes the §I/§II
// Eager-vs-Lazy comparison into the full model zoo: the persistency
// spectrum from "no ordering enforced until recovery" (LP) to "every
// store persisted in program order" (strict).
func (r *Runner) ModelCompare() (*Table, error) {
	specs, err := r.modelSpecs()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "modelcompare", Title: "Persistency model zoo: overheads across the ordering spectrum",
		Columns: []string{"benchmark", "model", "overhead", "extra NVM writes", "metadata bytes"}}

	type job struct{ bench, model string }
	jobs := make([]job, 0, len(modelCompareBenches)*len(specs))
	for _, bench := range modelCompareBenches {
		for _, s := range specs {
			jobs = append(jobs, job{bench, s.Name})
		}
	}
	rows := make([][]string, len(jobs))
	errs := make([]error, len(jobs))
	parwork.Do(len(jobs), r.workers(), func(i int) {
		rows[i], errs[i] = r.modelRow(jobs[i].bench, jobs[i].model)
	})
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("%s under %s: %w", jobs[i].bench, jobs[i].model, e)
		}
		t.Rows = append(t.Rows, rows[i])
	}
	t.Notes = append(t.Notes,
		"lp: no flushes, no fences — only naturally evicted checksum lines",
		"ep: per-store redo-log records with line flushes, plus two persist barriers per thread block",
		"sbrp: bounded per-scope persist buffer, drained with a flag commit at each block's release fence",
		"strict: every protected store flushed and fenced in program order",
		"metadata bytes = durable footprint of the model's recovery metadata (checksums, redo log, or release flags)")
	return t, nil
}

// modelSpecs resolves Options.Models (empty = every registered model).
func (r *Runner) modelSpecs() ([]pmodel.Spec, error) {
	if len(r.Opt.Models) == 0 {
		return pmodel.Specs(), nil
	}
	specs := make([]pmodel.Spec, 0, len(r.Opt.Models))
	for _, name := range r.Opt.Models {
		s, ok := pmodel.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown persistency model %q (registered: %v)", name, pmodel.Names())
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// modelRow measures one benchmark under one model and renders its table
// row.
func (r *Runner) modelRow(bench, model string) ([]string, error) {
	base, err := r.measure(bench, nil)
	if err != nil {
		return nil, err
	}
	mem := memsim.MustNew(r.Opt.Mem)
	dev := gpusim.MustNew(r.Opt.Dev, mem)
	w := kernels.New(bench, r.Opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lpCfg := core.DefaultConfig()
	lpCfg.Seed = r.Opt.Seed
	m := pmodel.MustLookup(model).New(dev, w, pmodel.Options{LP: &lpCfg})

	mem.ResetStats() // exclude setup and metadata-allocation traffic
	res := dev.Launch(bench+"-"+model, grid, blk, m.Kernel())
	cycles := res.Cycles
	if f, ok := w.(kernels.Finalizer); ok {
		fname, fg, fb, k := f.FinalizeKernel()
		fres := dev.Launch(fname, fg, fb, k)
		cycles += fres.Cycles
	}
	if r.Opt.Verify {
		if err := w.Verify(); err != nil {
			return nil, err
		}
	}
	mem.FlushAll()
	writes := mem.Stats().NVMLineWrites

	overhead := float64(cycles)/float64(base.cycles) - 1
	extra := float64(writes)/float64(base.nvmWrites) - 1
	return []string{bench, model, pct(overhead), "+" + pct(extra),
		fmt.Sprintf("%d", m.MetadataBytes())}, nil
}
