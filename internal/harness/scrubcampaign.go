package harness

import (
	"fmt"

	"gpulp/internal/faultsim"
)

// ScrubCampaign runs a reduced media-error rate sweep (see
// faultsim.RateSweep and cmd/lpfault -ratesweep for the full campaign):
// the online fault process is armed at each swept per-write rate, the
// workload is crashed, and core.SelfHeal must heal bit-exactly, degrade
// honestly with a coverage ratio, or report a typed error. The table is
// the degraded-coverage curve of the self-healing runtime.
func (r *Runner) ScrubCampaign() (*Table, error) {
	s := faultsim.DefaultRateSweep(4)
	s.Opt.Scale = r.Opt.Scale
	s.Opt.Dev = r.Opt.Dev
	s.Opt.LP.Seed = r.Opt.Seed
	rep, err := s.Run()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "scrubcampaign",
		Title:   "media-error rate sweep: scrub heal rate and degraded coverage vs self-healing recovery",
		Columns: []string{"transient/write", "stuck/write", "cases", "healed", "degraded", "unrec", "success", "scrub heal rate", "mean coverage", "quar bytes", "watchdog"},
	}
	for _, p := range rep.Points {
		tbl.AddRow(fmt.Sprintf("%.4g", p.TransientPerWrite), fmt.Sprintf("%.4g", p.StuckPerWrite),
			fmt.Sprint(p.Cases), fmt.Sprint(p.Healed), fmt.Sprint(p.Degraded),
			fmt.Sprint(p.Unrecoverable), fmt.Sprintf("%.2f", p.SuccessRate),
			fmt.Sprintf("%.3f", p.ScrubHealRate), fmt.Sprintf("%.4f", p.MeanCoverage),
			fmt.Sprintf("%.0f", p.MeanQuarantinedBytes), fmt.Sprint(p.WatchdogAborts))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d cases total; stuck fraction %.2g of each rate is permanent (uncorrectable) faults", rep.Total, rep.StuckFrac),
		"transient faults are healed by the per-attempt ECC scrub; stuck-at lines are quarantined and the run completes degraded")
	for _, f := range rep.Failures {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("FAILURE: rate=%v seed=%#x -> %v (%s)", f.Rate, f.Seed, f.Outcome, f.Err))
	}
	return tbl, nil
}
