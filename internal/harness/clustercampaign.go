package harness

import (
	"fmt"

	"gpulp/internal/faultsim"
)

// ClusterCampaign runs a reduced multi-device failover sweep (see
// faultsim.ClusterCampaign and cmd/lpfault -cluster for the full
// campaign): for every device count × failure kind × router cell, a
// seeded injector kills one device mid-launch and cross-device failover
// must recover the shared durable image bit-exactly on the survivors —
// or degrade honestly to the typed cluster error. The table is the
// failover-cost surface of the sharded persistency runtime.
func (r *Runner) ClusterCampaign() (*Table, error) {
	c := faultsim.DefaultClusterCampaign(3)
	c.Opt.Scale = r.Opt.Scale
	c.Opt.Dev = r.Opt.Dev
	c.Opt.LP.Seed = r.Opt.Seed
	c.Parallel = r.Opt.Parallel
	rep, err := c.Run()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "clustercampaign",
		Title:   "multi-device failover sweep: device loss mid-launch vs sharded cross-device recovery",
		Columns: []string{"devices", "failure", "router", "cases", "recovered", "degraded", "typed", "failed", "mean failovers", "mean reexec blocks", "mean makespan", "mean coverage"},
	}
	for _, cell := range rep.Cells {
		tbl.AddRow(fmt.Sprint(cell.Devices), cell.Kind.String(), cell.Router.String(),
			fmt.Sprint(cell.Cases), fmt.Sprint(cell.Recovered), fmt.Sprint(cell.Degraded),
			fmt.Sprint(cell.TypedErrors), fmt.Sprint(cell.Failures),
			fmt.Sprintf("%.2f", cell.MeanFailovers), fmt.Sprintf("%.2f", cell.MeanReexec),
			fmt.Sprintf("%.0f", cell.MeanMakespan), fmt.Sprintf("%.4f", cell.MeanCoverage))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d cases total; each kills one seeded job mid-launch (fail-stop, hang, or transient stall)", rep.Total),
		"failover fences the lost shard, harvests the dead device's durable bytes (data + in-band checksum table), and re-executes on a survivor")
	for _, f := range rep.Failures {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("FAILURE: %v -> %v (%s)", f.Case, f.Outcome, f.Err))
	}
	return tbl, nil
}
