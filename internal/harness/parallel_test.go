package harness

import (
	"fmt"
	"reflect"
	"testing"

	"gpulp/internal/parwork"
)

// TestScalingParallelMatchesSerial runs the scaling experiment — the
// harness's fan-out showpiece, whose 20 (block count × config) runs all
// execute concurrently under Options.Parallel — serially and at width 8,
// and requires byte-identical tables.
func TestScalingParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *Table {
		opt := DefaultOptions()
		opt.Parallel = parallel
		tbl, err := NewRunner(opt).Scaling()
		if err != nil {
			t.Fatalf("scaling (parallel=%d): %v", parallel, err)
		}
		return tbl
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("scaling table diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRunAllParallelBaselineCache exercises the shared baseline cache
// under concurrent experiments, the way RunAll does: table3 and table4
// measure the same workload baselines, so running them concurrently
// races to fill the same cache entries. The tables must match a serial
// runner's byte for byte.
func TestRunAllParallelBaselineCache(t *testing.T) {
	ids := []string{"table3", "table4"}
	run := func(parallel int) []*Table {
		opt := DefaultOptions()
		opt.Parallel = parallel
		r := NewRunner(opt)
		tables := make([]*Table, len(ids))
		errs := make([]error, len(ids))
		parwork.Do(len(ids), parallel, func(i int) {
			e, ok := ByID(ids[i])
			if !ok {
				errs[i] = fmt.Errorf("experiment %s not registered", ids[i])
				return
			}
			tables[i], errs[i] = e.Run(r)
		})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s (parallel=%d): %v", ids[i], parallel, err)
			}
		}
		return tables
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("tables diverged between serial and parallel runners")
	}
}
