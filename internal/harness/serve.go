package harness

import (
	"fmt"

	"gpulp/internal/parwork"
	"gpulp/internal/serve"
)

// serveRateScales are the load multipliers applied to every client of
// the default serving mix (1x ≈ 100 requests/Mcycle offered).
var serveRateScales = []float64{1, 2}

// servePolicies are the admission policies the sweep crosses with model
// and load.
var servePolicies = []string{"always-admit", "token-bucket"}

// Serve sweeps persistency model × offered load × admission policy over
// full MEGA-KV serving runs (internal/serve): seeded open/closed-loop
// clients, batched kernel launches, epoch drains at every batch
// boundary. Each row reports admissions, drops, worst-class latency
// percentiles, goodput, and the busy-cycle durability overhead against
// the bare (model "none") run at the same load and policy.
func (r *Runner) Serve() (*Table, error) {
	specs, err := r.modelSpecs()
	if err != nil {
		return nil, err
	}
	models := []string{"none"}
	for _, s := range specs {
		models = append(models, s.Name)
	}

	t := &Table{ID: "serve", Title: "MEGA-KV serving: model x load x admission policy",
		Columns: []string{"model", "policy", "load", "offered", "admitted", "dropped",
			"p50", "p95", "p99", "goodput/Mcyc", "overhead"}}

	type job struct {
		model  string
		rate   float64
		policy string
	}
	var jobs []job
	for _, m := range models {
		for _, rate := range serveRateScales {
			for _, pol := range servePolicies {
				jobs = append(jobs, job{m, rate, pol})
			}
		}
	}
	reports := make([]*serve.Report, len(jobs))
	errs := make([]error, len(jobs))
	parwork.Do(len(jobs), r.workers(), func(i int) {
		reports[i], errs[i] = r.serveRun(jobs[i].model, jobs[i].rate, jobs[i].policy)
	})
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("serve %s/%s at %gx: %w", jobs[i].model, jobs[i].policy, jobs[i].rate, e)
		}
	}

	// Bare runs at each (load, policy) are the durability baselines.
	type cell struct {
		rate   float64
		policy string
	}
	base := map[cell]*serve.Report{}
	for i, j := range jobs {
		if j.model == "none" {
			base[cell{j.rate, j.policy}] = reports[i]
		}
	}
	for i, j := range jobs {
		rep := reports[i]
		rep.CompareBaseline(base[cell{j.rate, j.policy}])
		var offered, admitted, dropped int
		var goodput float64
		var p50, p95, p99 int64
		for _, c := range rep.Classes {
			offered += c.Offered
			admitted += c.Admitted
			dropped += c.Dropped
			goodput += c.GoodputPerMCycle
			p50 = maxI64Harness(p50, c.P50)
			p95 = maxI64Harness(p95, c.P95)
			p99 = maxI64Harness(p99, c.P99)
		}
		overhead := "—"
		if j.model != "none" {
			overhead = "+" + pct(rep.DurabilityOverhead)
		}
		t.AddRow(j.model, j.policy, fmt.Sprintf("%gx", j.rate),
			fmt.Sprintf("%d", offered), fmt.Sprintf("%d", admitted), fmt.Sprintf("%d", dropped),
			fmt.Sprintf("%d", p50), fmt.Sprintf("%d", p95), fmt.Sprintf("%d", p99),
			fmt.Sprintf("%.1f", goodput), overhead)
	}
	t.Notes = append(t.Notes,
		"percentiles are the worst (max) across SLO classes, in device cycles",
		"goodput counts completions within their class budget, per million cycles, summed over classes",
		"overhead = busy-cycle inflation vs the bare (model none) run at the same load and policy",
		"token-bucket admits 70 requests/Mcycle sustained (burst 32); drops shed load before the batcher")
	return t, nil
}

// serveRun executes one serving run of the sweep.
func (r *Runner) serveRun(model string, rateScale float64, policy string) (*serve.Report, error) {
	cfg := serve.DefaultConfig()
	cfg.HorizonCycles = 400_000
	cfg.Seed = r.Opt.Seed
	cfg.Model = model
	cfg.Policy = policy
	for i := range cfg.Clients {
		cfg.Clients[i].RatePerMCycle *= rateScale
		if cfg.Clients[i].Closed {
			cfg.Clients[i].ThinkCycles /= rateScale
		}
	}
	res, err := serve.Run(cfg)
	if err != nil {
		return nil, err
	}
	if err := res.VerifyLedger(); err != nil {
		return nil, err
	}
	return res.Report, nil
}

// maxI64Harness returns the larger of two int64s (math.Max is floats).
func maxI64Harness(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
