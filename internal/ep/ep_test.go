package ep

import (
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

func newTestDevice(cacheBytes int) *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 8
	memCfg := memsim.DefaultConfig()
	if cacheBytes > 0 {
		memCfg.CacheBytes = cacheBytes
	}
	return gpusim.MustNew(cfg, memsim.MustNew(memCfg))
}

// fillKernel stores a deterministic value per thread.
func fillKernel(out memsim.Region) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			t.StoreU32(out, gid, uint32(gid)*2654435761+7)
		})
	}
}

func TestNewValidation(t *testing.T) {
	dev := newTestDevice(0)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"empty grid", func() { New(dev, gpusim.D1(0), gpusim.D1(32), 4) }},
		{"zero entries", func() { New(dev, gpusim.D1(1), gpusim.D1(32), 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.f()
		})
	}
}

func TestWrapValidation(t *testing.T) {
	dev := newTestDevice(0)
	e := New(dev, gpusim.D1(1), gpusim.D1(32), 32)
	t.Run("nil kernel", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		e.Wrap(nil, memsim.Region{})
	})
	t.Run("no regions", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		e.Wrap(func(b *gpusim.Block) {})
	})
}

func TestCommittedBlocksRecoverByReplay(t *testing.T) {
	// Small cache: data lines may be lost, but the flushed redo log and
	// commit flags survive, so replay restores everything without any
	// re-execution.
	dev := newTestDevice(32 << 10)
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()

	e := New(dev, grid, blk, blk.Size())
	dev.Launch("fill", grid, blk, e.Wrap(fillKernel(out), out))

	dev.Mem().Crash()

	rep := e.Recover()
	if rep.Committed != grid.Size() {
		t.Fatalf("committed = %d, want all %d (commit flags are flushed+fenced)", rep.Committed, grid.Size())
	}
	if len(rep.Uncommitted) != 0 {
		t.Fatalf("uncommitted blocks despite fenced commits: %v", rep.Uncommitted)
	}
	if rep.Replayed != n {
		t.Fatalf("replayed %d records, want %d", rep.Replayed, n)
	}
	for i := 0; i < n; i++ {
		if got, want := out.NVMU32(i), uint32(i)*2654435761+7; got != want {
			t.Fatalf("durable out[%d] = %d after replay, want %d", i, got, want)
		}
	}
}

func TestEPOverheadExceedsBaseline(t *testing.T) {
	grid, blk := gpusim.D1(128), gpusim.D1(64)
	run := func(ep bool) int64 {
		dev := newTestDevice(0)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		kernel := fillKernel(out)
		if ep {
			e := New(dev, grid, blk, blk.Size())
			kernel = e.Wrap(kernel, out)
		}
		return dev.Launch("fill", grid, blk, kernel).Cycles
	}
	base, eager := run(false), run(true)
	if eager <= base {
		t.Errorf("EP (%d cycles) not slower than baseline (%d)", eager, base)
	}
}

func TestEPWriteAmplification(t *testing.T) {
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	run := func(ep bool) int64 {
		dev := newTestDevice(0)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		kernel := fillKernel(out)
		if ep {
			e := New(dev, grid, blk, blk.Size())
			kernel = e.Wrap(kernel, out)
		}
		dev.Mem().ResetStats()
		dev.Launch("fill", grid, blk, kernel)
		dev.Mem().FlushAll()
		return dev.Mem().Stats().NVMLineWrites
	}
	base, eager := run(false), run(true)
	// The redo log is 16B per 4B store: at least 4x the data volume.
	if eager < base*3 {
		t.Errorf("EP write amplification too low: %d vs baseline %d lines", eager, base)
	}
}

func TestLogOverflowPanics(t *testing.T) {
	dev := newTestDevice(0)
	grid, blk := gpusim.D1(1), gpusim.D1(32)
	out := dev.Alloc("out", 64*4)
	out.HostZero()
	e := New(dev, grid, blk, 8) // too small for 32 stores
	defer func() {
		if recover() == nil {
			t.Fatal("log overflow did not panic")
		}
	}()
	dev.Launch("fill", grid, blk, e.Wrap(fillKernel(out), out))
}

func TestUnprotectedStoresNotLogged(t *testing.T) {
	dev := newTestDevice(0)
	grid, blk := gpusim.D1(2), gpusim.D1(32)
	out := dev.Alloc("out", 64*4)
	scratch := dev.Alloc("scratch", 64*4)
	out.HostZero()
	scratch.HostZero()
	e := New(dev, grid, blk, blk.Size())
	kernel := func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			t.StoreU32(scratch, t.GlobalLinear(), 1) // not protected
			t.StoreU32(out, t.GlobalLinear(), 2)
		})
	}
	dev.Launch("fill", grid, blk, e.Wrap(kernel, out))
	dev.Mem().Crash()
	rep := e.Recover()
	if rep.Replayed != grid.Size()*blk.Size() {
		t.Errorf("replayed %d, want %d (scratch stores must not be logged)", rep.Replayed, grid.Size()*blk.Size())
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	dev := newTestDevice(0)
	out := dev.Alloc("out", 64*4)
	out.HostZero()
	e := New(dev, gpusim.D1(2), gpusim.D1(32), 32)
	wrapped := e.Wrap(fillKernel(out), out)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched launch geometry did not panic")
		}
	}()
	dev.Launch("bad", gpusim.D1(2), gpusim.D1(64), wrapped)
}

func TestTornFlagBoundsReplay(t *testing.T) {
	// A flag claiming more entries than the per-block capacity (torn or
	// corrupted) must not read past the block's log segment.
	dev := newTestDevice(0)
	grid, blk := gpusim.D1(2), gpusim.D1(32)
	out := dev.Alloc("out", 64*4)
	out.HostZero()
	e := New(dev, grid, blk, blk.Size())
	dev.Launch("fill", grid, blk, e.Wrap(fillKernel(out), out))
	dev.Mem().FlushAll()
	// Corrupt block 0's flag to an absurd count.
	e.flags.HostPutU64(0, 1<<40)
	dev.Mem().Crash()
	rep := e.Recover()
	if rep.Replayed > 64 {
		t.Errorf("replay ran past the log segments: %d records", rep.Replayed)
	}
}

func TestUncommittedBlocksReported(t *testing.T) {
	dev := newTestDevice(0)
	grid, blk := gpusim.D1(4), gpusim.D1(32)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	e := New(dev, grid, blk, blk.Size())
	dev.Launch("fill", grid, blk, e.Wrap(fillKernel(out), out))
	dev.Mem().FlushAll()
	// Durably clear block 2's commit flag: it must surface as uncommitted.
	e.flags.HostPutU64(2, 0)
	dev.Mem().Crash()
	rep := e.Recover()
	if len(rep.Uncommitted) != 1 || rep.Uncommitted[0] != 2 {
		t.Errorf("uncommitted = %v, want [2]", rep.Uncommitted)
	}
	if rep.Committed != 3 {
		t.Errorf("committed = %d, want 3", rep.Committed)
	}
}

func TestLogBytes(t *testing.T) {
	dev := newTestDevice(0)
	e := New(dev, gpusim.D1(10), gpusim.D1(32), 16)
	if got := e.LogBytes(); got != 10*16*16 {
		t.Errorf("LogBytes = %d, want %d", got, 10*16*16)
	}
}
