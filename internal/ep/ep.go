// Package ep implements an Eager Persistency (EP) baseline — the
// conventional crash-consistency approach the paper contrasts Lazy
// Persistency against (§I, §II): a redo log plus cache-line write-backs
// (clwb) and persist barriers (s_fence).
//
// Every persistent store appends an (address, value) record to a
// per-block redo log whose lines are flushed to NVM as they fill; at
// block end a persist barrier drains the flushes, a per-block commit
// flag is written and flushed, and a second barrier orders it. After a
// crash, committed blocks are recovered by replaying their logs;
// uncommitted blocks re-execute.
//
// This is exactly the machinery LP exists to avoid: the log roughly
// quadruples the bytes written per store, the flushes steal NVM write
// bandwidth during normal execution, and the two barriers per thread
// block expose full NVM write latencies that the paper reports as
// 20-40% slowdowns on CPUs — and worse at GPU block counts.
package ep

import (
	"fmt"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// EP is an eager-persistency runtime bound to one kernel geometry.
type EP struct {
	dev        *gpusim.Device
	grid, blk  gpusim.Dim3
	perBlock   int // log entries per block
	log        memsim.Region
	flags      memsim.Region
	mem        *memsim.Memory
	lineSize   int
	entryBytes int
}

// entryWords is the redo-log record size: [address, value] as uint64s.
const entryWords = 2

// New creates an EP runtime for kernels launched with the given geometry,
// with capacity for entriesPerBlock logged stores per thread block.
func New(dev *gpusim.Device, grid, blk gpusim.Dim3, entriesPerBlock int) *EP {
	if grid.Size() <= 0 || blk.Size() <= 0 {
		panic(fmt.Sprintf("ep: empty geometry grid=%v block=%v", grid, blk))
	}
	if entriesPerBlock <= 0 {
		panic("ep: entriesPerBlock must be positive")
	}
	e := &EP{
		dev:        dev,
		grid:       grid,
		blk:        blk,
		perBlock:   entriesPerBlock,
		mem:        dev.Mem(),
		lineSize:   dev.Mem().Config().LineSize,
		entryBytes: entryWords * 8,
	}
	e.log = dev.Alloc("ep.log", grid.Size()*entriesPerBlock*e.entryBytes)
	e.flags = dev.Alloc("ep.flags", grid.Size()*8)
	e.log.HostZero()
	e.flags.HostZero()
	return e
}

// LogBytes returns the redo log footprint (EP's space overhead).
func (e *EP) LogBytes() int64 {
	return int64(e.grid.Size()) * int64(e.perBlock) * int64(e.entryBytes)
}

// MetadataRegions lists EP's durable metadata: the redo log and the
// per-block commit flags (fault-injection and oracle targets).
func (e *EP) MetadataRegions() []memsim.Region {
	return []memsim.Region{e.log, e.flags}
}

// Wrap instruments a plain kernel with eager persistency over the
// protected regions: redo-logging with line flushes during execution and
// a flushed, fenced commit flag per block.
func (e *EP) Wrap(kernel gpusim.KernelFunc, protected ...memsim.Region) gpusim.KernelFunc {
	if kernel == nil {
		panic("ep: nil kernel")
	}
	if len(protected) == 0 {
		panic("ep: Wrap needs at least one protected region")
	}
	return func(b *gpusim.Block) {
		if b.GridDim != e.grid || b.BlockDim != e.blk {
			panic("ep: block geometry does not match the EP runtime's geometry")
		}
		segBase := b.LinearIdx * e.perBlock
		n := 0
		// Per-block hook: blocks may execute concurrently (Workers > 1),
		// and each block logs into its own segment with its own counter.
		prev := b.SetStoreHook(func(t *gpusim.Thread, reg memsim.Region, elemIdx int, bits uint32) {
			tracked := false
			for _, p := range protected {
				if p.Base == reg.Base {
					tracked = true
					break
				}
			}
			if !tracked {
				return
			}
			if n >= e.perBlock {
				panic(fmt.Sprintf("ep: block %d overflowed its %d-entry log", b.LinearIdx, e.perBlock))
			}
			entry := segBase + n
			t.StoreU64K(memsim.AccessLog, e.log, entry*entryWords, reg.Base+uint64(elemIdx)*4)
			t.StoreU64K(memsim.AccessLog, e.log, entry*entryWords+1, uint64(bits))
			// Flush the previous log line once this entry starts a new one.
			if byteOff := entry * e.entryBytes; n > 0 && byteOff%e.lineSize == 0 {
				t.FlushLine(e.log, byteOff-e.entryBytes)
			}
			n++
		})
		kernel(b)
		b.SetStoreHook(prev)

		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear != 0 {
				return
			}
			if n > 0 {
				t.FlushLine(e.log, (segBase+n-1)*e.entryBytes) // tail log line
			}
			t.PersistBarrier() // log fully durable before the commit flag
			t.StoreU64K(memsim.AccessLog, e.flags, b.LinearIdx, uint64(n)+1)
			t.FlushLine(e.flags, b.LinearIdx*8)
			t.PersistBarrier() // commit flag durable before the block retires
		})
	}
}

// RecoveryReport summarizes an EP crash recovery.
type RecoveryReport struct {
	// Committed is the number of blocks whose commit flag persisted;
	// Replayed the redo records applied for them.
	Committed int
	Replayed  int
	// Uncommitted lists blocks that must re-execute.
	Uncommitted []int
}

// ImageCommitted reads the per-block commit flags from a raw durable
// image (memsim.NVMImage or an oracle shadow of it): element blk is true
// iff block blk's commit flag persisted. This is the device-free spec of
// Recover's committed/uncommitted split — the crash-consistency checker
// predicts the recovery report from its oracle image with it.
func (e *EP) ImageCommitted(img []byte) []bool {
	out := make([]bool, e.grid.Size())
	for blk := range out {
		out[blk] = memsim.ImageU64(img, e.flags.Base+uint64(blk)*8) != 0
	}
	return out
}

// Recover replays the redo logs of committed blocks into durable memory
// and returns the blocks whose commit never persisted (the caller
// re-executes them, then flushes). Call after a crash.
func (e *EP) Recover() RecoveryReport {
	var rep RecoveryReport
	for blk := 0; blk < e.grid.Size(); blk++ {
		if e.flags.NVMU64(blk) == 0 {
			rep.Uncommitted = append(rep.Uncommitted, blk)
			continue
		}
		rep.Committed++
		rep.Replayed += e.replayBlock(blk)
	}
	return rep
}

// ReplayBlocks replays the redo logs of the listed blocks (skipping
// uncommitted ones) into durable memory and returns the record count —
// the shard-scoped form of Recover. Cluster failover uses it after
// importing a harvested log onto a survivor: EP's data lines are never
// written back eagerly, so a committed block's data exists only in the
// log until replayed.
func (e *EP) ReplayBlocks(blocks []int) int {
	replayed := 0
	for _, blk := range blocks {
		if blk < 0 || blk >= e.grid.Size() || e.flags.NVMU64(blk) == 0 {
			continue
		}
		replayed += e.replayBlock(blk)
	}
	return replayed
}

// replayBlock replays one committed block's log segment, returning the
// number of records applied.
func (e *EP) replayBlock(blk int) int {
	n := int(e.flags.NVMU64(blk) - 1)
	if n > e.perBlock {
		n = e.perBlock // torn flag: bound the replay
	}
	segBase := blk * e.perBlock
	var buf [4]byte
	replayed := 0
	for i := 0; i < n; i++ {
		addr := e.log.NVMU64((segBase + i) * entryWords)
		val := e.log.NVMU64((segBase+i)*entryWords + 1)
		if addr == 0 {
			break // torn log tail
		}
		buf[0] = byte(val)
		buf[1] = byte(val >> 8)
		buf[2] = byte(val >> 16)
		buf[3] = byte(val >> 24)
		e.mem.HostWrite(addr, buf[:])
		replayed++
	}
	return replayed
}
