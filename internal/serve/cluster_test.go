package serve

import (
	"bytes"
	"errors"
	"testing"

	"gpulp/internal/core"
)

// quickClusterConfig scales DefaultClusterConfig down like quickConfig.
func quickClusterConfig() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.HorizonCycles = 400_000
	return cfg
}

func mustRunCluster(t *testing.T, cfg ClusterConfig) *ClusterRunResult {
	t.Helper()
	r, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// replicaImages snapshots one device's durable output regions.
func replicaImages(d *clusterDevice) [][]byte {
	var out [][]byte
	for _, reg := range d.w.Outputs() {
		out = append(out, d.mem.PeekNVM(reg.Base, reg.Size))
	}
	return out
}

// TestClusterSingleDeviceMatchesRun pins that a one-device cluster is
// the plain serving loop, byte for byte: same report, same durable
// outputs.
func TestClusterSingleDeviceMatchesRun(t *testing.T) {
	ccfg := quickClusterConfig()
	ccfg.Devices = 1
	cr := mustRunCluster(t, ccfg)
	sr := mustRun(t, ccfg.Config)

	if got, want := cr.Report.Report.String(), sr.Report.String(); got != want {
		t.Fatalf("one-device cluster report diverged from Run:\n%s\nvs\n%s", got, want)
	}
	co, so := cr.Outputs(), sr.Outputs()
	if len(co) != len(so) {
		t.Fatalf("output region count %d vs %d", len(co), len(so))
	}
	for i := range co {
		if !bytes.Equal(co[i], so[i]) {
			t.Fatalf("output region %d diverged", i)
		}
	}
}

// TestClusterCleanReplication checks that with no failures every
// replica's durable store is bit-identical and the ledger verifies
// against all of them.
func TestClusterCleanReplication(t *testing.T) {
	cfg := quickClusterConfig()
	cfg.Devices = 3
	r := mustRunCluster(t, cfg)

	if got := r.AliveDevices(); len(got) != 3 {
		t.Fatalf("expected all 3 devices alive, got %v", got)
	}
	if r.Report.AdoptedBatches != 0 || r.Report.DegradedSheds != 0 || len(r.Report.DeadDevices) != 0 {
		t.Fatalf("clean run reported degradation: %+v", r.Report)
	}
	base := replicaImages(r.nodes[0])
	for _, d := range r.nodes[1:] {
		imgs := replicaImages(d)
		for i := range base {
			if !bytes.Equal(base[i], imgs[i]) {
				t.Fatalf("device %d output region %d diverged from device 0", d.id, i)
			}
		}
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterAdoptionOnFailure fail-stops one device mid-batch and
// checks the survivors carry the batch with zero recovery work.
func TestClusterAdoptionOnFailure(t *testing.T) {
	cfg := quickClusterConfig()
	cfg.Devices = 3
	cfg.FailAtLaunch = 2
	cfg.FailDevice = 1
	r := mustRunCluster(t, cfg)
	rep := r.Report

	if len(rep.DeadDevices) != 1 || rep.DeadDevices[0] != 1 {
		t.Fatalf("expected device 1 dead, got %v", rep.DeadDevices)
	}
	if rep.AdoptedBatches != 1 {
		t.Fatalf("expected 1 adopted batch, got %d", rep.AdoptedBatches)
	}
	if rep.Recoveries != 0 || rep.RecoveryCycles != 0 || rep.RetriesUsed != 0 {
		t.Fatalf("adoption must cost zero recovery work: %+v", rep)
	}
	if got := r.AliveDevices(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("expected devices [0 2] alive, got %v", got)
	}
	base := replicaImages(r.nodes[0])
	imgs := replicaImages(r.nodes[2])
	for i := range base {
		if !bytes.Equal(base[i], imgs[i]) {
			t.Fatalf("surviving replicas diverged in output region %d", i)
		}
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDegradedShedding checks that after a device loss the
// bulk class is shed at the door while the interactive class keeps
// being admitted — and that widening DegradedKeepClasses to cover
// every class disables shedding entirely.
func TestClusterDegradedShedding(t *testing.T) {
	cfg := quickClusterConfig()
	cfg.Devices = 2
	cfg.FailAtLaunch = 1
	cfg.FailDevice = 1
	r := mustRunCluster(t, cfg)
	rep := r.Report

	if rep.DegradedSheds == 0 {
		t.Fatal("expected degraded-mode sheds after losing a device")
	}
	// Interactive (class 0) is kept: its drops must all be policy
	// drops, and always-admit never drops.
	if got := rep.Classes[0].Dropped; got != 0 {
		t.Fatalf("interactive class shed %d requests in degraded mode", got)
	}
	if got := rep.Classes[1].Dropped; got != rep.DegradedSheds {
		t.Fatalf("bulk drops %d != degraded sheds %d", got, rep.DegradedSheds)
	}
	if rep.Classes[0].Admitted == 0 {
		t.Fatal("interactive class starved under degraded mode")
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}

	cfg.DegradedKeepClasses = len(cfg.Classes)
	r2 := mustRunCluster(t, cfg)
	if r2.Report.DegradedSheds != 0 {
		t.Fatalf("DegradedKeepClasses=all still shed %d", r2.Report.DegradedSheds)
	}
}

// TestClusterLastDeviceRetryBackoff drives the bounded retry path: a
// single-device fleet whose first two recovery attempts fail must
// succeed on the third with exponential backoff charged, and a
// too-small budget must surface the typed error.
func TestClusterLastDeviceRetryBackoff(t *testing.T) {
	cfg := quickClusterConfig()
	cfg.Devices = 1
	cfg.FailAtLaunch = 2
	cfg.MaxRetries = 3
	cfg.RetryBackoffCycles = 4096
	cfg.FailRecoveryAttempts = 2
	r := mustRunCluster(t, cfg)
	rep := r.Report

	if rep.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d", rep.Recoveries)
	}
	if rep.RetriesUsed != 2 {
		t.Fatalf("expected 2 retries, got %d", rep.RetriesUsed)
	}
	if want := int64(4096 + 8192); rep.RetryBackoffCycles != want {
		t.Fatalf("backoff cycles %d, want %d", rep.RetryBackoffCycles, want)
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}

	cfg.MaxRetries = 2
	cfg.FailRecoveryAttempts = 2
	if _, err := RunCluster(cfg); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("exhausted retry budget should surface the recovery error, got %v", err)
	}
}

// TestClusterValidation pins the cluster-specific config rejections.
func TestClusterValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ClusterConfig)
	}{
		{"zero devices", func(c *ClusterConfig) { c.Devices = 0 }},
		{"crash-at-launch knob", func(c *ClusterConfig) { c.CrashAtLaunch = 1 }},
		{"negative fail launch", func(c *ClusterConfig) { c.FailAtLaunch = -1 }},
		{"bare model failure", func(c *ClusterConfig) { c.FailAtLaunch = 1; c.Model = "none" }},
		{"fail device range", func(c *ClusterConfig) { c.FailAtLaunch = 1; c.FailDevice = 5 }},
		{"no retry budget", func(c *ClusterConfig) { c.FailAtLaunch = 1; c.MaxRetries = 0 }},
		{"negative retries", func(c *ClusterConfig) { c.MaxRetries = -1 }},
		{"negative backoff", func(c *ClusterConfig) { c.RetryBackoffCycles = -1 }},
		{"keep classes range", func(c *ClusterConfig) { c.DegradedKeepClasses = 3 }},
		{"negative inject", func(c *ClusterConfig) { c.FailRecoveryAttempts = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultClusterConfig()
			tc.mut(&cfg)
			if _, err := RunCluster(cfg); !errors.Is(err, ErrConfig) {
				t.Fatalf("expected ErrConfig, got %v", err)
			}
		})
	}
}

// TestClusterDeterministicReport pins that a degraded cluster run is a
// pure function of its config: rerunning reproduces the report and
// durable outputs byte-identically.
func TestClusterDeterministicReport(t *testing.T) {
	cfg := quickClusterConfig()
	cfg.Devices = 3
	cfg.FailAtLaunch = 2
	cfg.FailDevice = 0
	cfg.Model = "sbrp"

	a := mustRunCluster(t, cfg)
	b := mustRunCluster(t, cfg)
	if a.Report.String() != b.Report.String() {
		t.Fatalf("cluster report not deterministic:\n%s\nvs\n%s", a.Report, b.Report)
	}
	ao, bo := a.Outputs(), b.Outputs()
	for i := range ao {
		if !bytes.Equal(ao[i], bo[i]) {
			t.Fatalf("durable output region %d not deterministic", i)
		}
	}
}
