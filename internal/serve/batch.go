package serve

// batch.go coalesces admitted requests into kernel-sized batches. Two
// invariants make a batch both launchable and predictable:
//
//   - never empty: gpusim refuses zero-sized grids, so the serving loop
//     only calls Take when Len() > 0 and Take always returns at least
//     one request;
//   - conflict-free: no two operations in one batch touch the same key.
//     Batch threads run concurrently with no intra-batch ordering, so a
//     key conflict would make the outcome depend on scheduling; deferring
//     the younger request to a later batch keeps every launch's effect a
//     pure function of (durable state, batch contents) — which is what
//     the recovery recompute and the admission ledger check against.
//
// Requests the batcher skips for conflicts keep their queue order (FIFO
// within and across flushes).

// pendingReq is one admitted request waiting to launch.
type pendingReq struct {
	req Request
	// admitted is when it entered the queue (the batching deadline is
	// measured from the oldest of these).
	admitted int64
}

// Batcher is the conflict-aware FIFO coalescer.
type Batcher struct {
	max   int
	queue []pendingReq
}

// NewBatcher creates a batcher that emits at most max requests per Take.
func NewBatcher(max int) *Batcher {
	if max <= 0 {
		panic("serve: batcher needs a positive batch cap")
	}
	return &Batcher{max: max}
}

// Add enqueues an admitted request.
func (b *Batcher) Add(req Request, admitted int64) {
	b.queue = append(b.queue, pendingReq{req: req, admitted: admitted})
}

// Len returns the queued request count.
func (b *Batcher) Len() int { return len(b.queue) }

// OldestAdmit returns the earliest admission time in the queue; callers
// must check Len() > 0 first.
func (b *Batcher) OldestAdmit() int64 { return b.queue[0].admitted }

// Take removes and returns the next batch: up to max requests in FIFO
// order, skipping (but keeping queued) any request whose key is already
// in this batch. Never returns an empty batch while Len() > 0.
func (b *Batcher) Take() []pendingReq {
	if len(b.queue) == 0 {
		return nil
	}
	taken := make([]pendingReq, 0, b.max)
	inBatch := make(map[uint64]bool, b.max)
	rest := b.queue[:0]
	for i, p := range b.queue {
		if len(taken) >= b.max || inBatch[p.req.Key] {
			rest = append(rest, b.queue[i])
			continue
		}
		inBatch[p.req.Key] = true
		taken = append(taken, p)
	}
	b.queue = rest
	return taken
}
