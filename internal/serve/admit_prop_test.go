package serve

import "testing"

// Seeded property test for the token-bucket admission policy: across a
// seed sweep of adversarial arrival patterns (bursts at one instant,
// long gaps, dense streams), the bucket must (a) never admit more than
// AdmitBurst requests at a single instant, (b) never admit more than
// its starting capacity plus the exact refill over any run prefix, and
// (c) track an independent reference reimplementation token-for-token —
// exact float equality, since both sides perform the identical
// arithmetic in the identical order. That last check pins the refill
// accounting: no drift, no double-refill at repeated timestamps,
// clamping only at the burst cap.
func TestTokenBucketProperties(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := DefaultConfig()
		r := rng{s: seed * 0x9e37_79b9}
		cfg.Policy = "token-bucket"
		cfg.AdmitRatePerMCycle = float64(10 + r.intn(200))
		cfg.AdmitBurst = 1 + r.intn(40)
		spec, _ := LookupPolicy(cfg.Policy)
		tb := spec.New(cfg).(*tokenBucket)

		// Reference state, advanced with the same arithmetic.
		perCycle := cfg.AdmitRatePerMCycle / 1e6
		burst := float64(cfg.AdmitBurst)
		refTokens := burst
		refLast := int64(0)

		var now, lastNow int64
		admitsAtNow := 0
		totalAdmitted := 0
		for step := 0; step < 2000; step++ {
			// Adversarial gaps: mostly zero (same-instant bursts), with
			// occasional short and rare long jumps.
			switch r.intn(8) {
			case 0:
				now += int64(r.intn(5_000))
			case 1:
				now += int64(r.intn(2_000_000))
			}
			if now != lastNow {
				admitsAtNow = 0
				lastNow = now
			}
			admitted := tb.Admit(now, Request{})

			// Reference step: identical refill, clamp and spend.
			if now > refLast {
				refTokens += float64(now-refLast) * perCycle
				if refTokens > burst {
					refTokens = burst
				}
				refLast = now
			}
			wantAdmit := refTokens >= 1
			if wantAdmit {
				refTokens--
			}

			if admitted != wantAdmit {
				t.Fatalf("seed %d step %d (now=%d): Admit=%v, reference says %v (tokens %v)",
					seed, step, now, admitted, wantAdmit, refTokens)
			}
			if tb.tokens != refTokens {
				t.Fatalf("seed %d step %d: refill accounting drifted: bucket %v, reference %v",
					seed, step, tb.tokens, refTokens)
			}
			if tb.tokens < 0 || tb.tokens > burst {
				t.Fatalf("seed %d step %d: tokens %v outside [0, %v]", seed, step, tb.tokens, burst)
			}

			if admitted {
				totalAdmitted++
				admitsAtNow++
			}
			if admitsAtNow > cfg.AdmitBurst {
				t.Fatalf("seed %d: %d admits at instant %d exceed burst %d",
					seed, admitsAtNow, now, cfg.AdmitBurst)
			}
			// Over the whole prefix the bucket can never have admitted
			// more than its starting capacity plus the refill for the
			// elapsed time (the first arrival lands at cycle 0 with a
			// full bucket).
			if ceiling := burst + float64(now)*perCycle; float64(totalAdmitted) > ceiling {
				t.Fatalf("seed %d: %d admits by cycle %d exceed ceiling %v",
					seed, totalAdmitted, now, ceiling)
			}
		}
		if totalAdmitted == 0 {
			t.Fatalf("seed %d: property run admitted nothing — pattern degenerate", seed)
		}
	}
}
