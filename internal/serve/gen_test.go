package serve

import (
	"math"
	"testing"
)

// Property tests for the arrival generator (satellite: same seed ⇒ same
// sequence; Poisson mean ≈ 1/λ across seeds; Gamma shape/rate sanity).
// Everything here runs on the virtual clock — no wall-time reads.

func openLoopConfig(seed uint64, process string, shape int, rate float64, horizon int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.HorizonCycles = horizon
	cfg.Clients = []ClientSpec{{
		Name: "c0", Class: 0, Process: process, Shape: shape,
		RatePerMCycle: rate, SearchW: 1, InsertW: 1, DeleteW: 1,
	}}
	return cfg
}

func drain(g *Generator) []Request {
	var out []Request
	for {
		r, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestGeneratorSameSeedSameSequence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HorizonCycles = 500_000
	a := drain(NewGenerator(cfg))
	b := drain(NewGenerator(cfg))
	if len(a) == 0 {
		t.Fatal("generator produced no arrivals")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedChangesSequence(t *testing.T) {
	cfg := openLoopConfig(1, "poisson", 0, 50, 500_000)
	a := drain(NewGenerator(cfg))
	cfg.Seed = 2
	b := drain(NewGenerator(cfg))
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("generator produced no arrivals")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].Arrival != b[i].Arrival {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical arrival sequences")
	}
}

func TestGeneratorArrivalsOrderedAndInHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HorizonCycles = 300_000
	// Exercise the merge: several open-loop clients.
	cfg.Clients = []ClientSpec{
		{Name: "a", Class: 0, Process: "poisson", RatePerMCycle: 40, SearchW: 1},
		{Name: "b", Class: 1, Process: "gamma", Shape: 4, RatePerMCycle: 40, InsertW: 1},
		{Name: "c", Class: 0, Process: "poisson", RatePerMCycle: 40, DeleteW: 1},
	}
	reqs := drain(NewGenerator(cfg))
	if len(reqs) < 10 {
		t.Fatalf("only %d arrivals", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("arrival %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrivals out of order at %d: %d after %d", i, r.Arrival, reqs[i-1].Arrival)
		}
		if r.Arrival <= 0 || r.Arrival > cfg.HorizonCycles {
			t.Fatalf("arrival %d at cycle %d outside (0, %d]", i, r.Arrival, cfg.HorizonCycles)
		}
		if r.Key == 0 || r.Key > cfg.KeySpace {
			t.Fatalf("arrival %d key %#x outside [1, %d]", i, r.Key, cfg.KeySpace)
		}
		if r.Op == OpInsert && r.Val == 0 {
			t.Fatalf("arrival %d inserts value 0", i)
		}
	}
}

// TestPoissonInterArrivalMean checks the sample mean of the exponential
// gaps against 1/λ across a seed sweep: each seed's sample mean (n≈2000)
// must land within 10% of the configured mean, and the sweep-wide mean
// within 2%.
func TestPoissonInterArrivalMean(t *testing.T) {
	const rate = 100.0 // per Mcycle → mean gap 10_000 cycles
	const wantMean = 1e6 / rate
	var sweepSum float64
	var sweepN int
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := openLoopConfig(seed, "poisson", 0, rate, 20_000_000)
		reqs := drain(NewGenerator(cfg))
		if len(reqs) < 1000 {
			t.Fatalf("seed %d: only %d arrivals", seed, len(reqs))
		}
		var sum float64
		prev := int64(0)
		for _, r := range reqs {
			sum += float64(r.Arrival - prev)
			prev = r.Arrival
		}
		mean := sum / float64(len(reqs))
		if math.Abs(mean-wantMean)/wantMean > 0.10 {
			t.Errorf("seed %d: sample mean gap %.0f, want %.0f ± 10%%", seed, mean, wantMean)
		}
		sweepSum += sum
		sweepN += len(reqs)
	}
	sweepMean := sweepSum / float64(sweepN)
	if math.Abs(sweepMean-wantMean)/wantMean > 0.02 {
		t.Errorf("sweep mean gap %.0f, want %.0f ± 2%%", sweepMean, wantMean)
	}
}

// TestGammaShapeRateSanity checks the Erlang process: same configured
// rate as Poisson (so the same sample mean), but Shape stages cut the
// gap variance by ~Shape — the coefficient of variation must be near
// 1/sqrt(Shape), and clearly below the Poisson CV of 1.
func TestGammaShapeRateSanity(t *testing.T) {
	const rate = 100.0
	const wantMean = 1e6 / rate
	const shape = 4
	var gaps []float64
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := openLoopConfig(seed, "gamma", shape, rate, 20_000_000)
		reqs := drain(NewGenerator(cfg))
		prev := int64(0)
		for _, r := range reqs {
			gaps = append(gaps, float64(r.Arrival-prev))
			prev = r.Arrival
		}
	}
	if len(gaps) < 4000 {
		t.Fatalf("only %d gaps", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-wantMean)/wantMean > 0.05 {
		t.Errorf("gamma sample mean gap %.0f, want %.0f ± 5%%", mean, wantMean)
	}
	var varSum float64
	for _, g := range gaps {
		varSum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varSum/float64(len(gaps))) / mean
	want := 1 / math.Sqrt(shape)
	if math.Abs(cv-want) > 0.1 {
		t.Errorf("gamma CV %.3f, want %.3f ± 0.1 (shape %d)", cv, want, shape)
	}
	if cv > 0.8 {
		t.Errorf("gamma CV %.3f not clearly below Poisson's 1.0", cv)
	}
}

// TestClosedLoopOneOutstanding drives the closed-loop protocol by hand:
// a closed client never has a second arrival scheduled before Complete,
// and think gaps separate completion from the next arrival.
func TestClosedLoopOneOutstanding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HorizonCycles = 1_000_000
	cfg.Clients = []ClientSpec{{
		Name: "closed", Class: 0, Closed: true, ThinkCycles: 10_000,
		SearchW: 1, InsertW: 1, DeleteW: 1,
	}}
	g := NewGenerator(cfg)
	var count int
	var last int64
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		count++
		if r.Arrival <= last {
			t.Fatalf("closed-loop arrival %d at %d not after completion %d", count, r.Arrival, last)
		}
		if _, again := g.Next(); again {
			t.Fatal("closed-loop client had two outstanding requests")
		}
		last = r.Arrival + 500 // simulated service time
		g.Complete(0, last)
	}
	if count < 20 {
		t.Fatalf("closed loop produced only %d requests", count)
	}
	if g.Live() {
		t.Error("generator still live after horizon")
	}
}
