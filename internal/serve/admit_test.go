package serve

import "testing"

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) != 2 || names[0] != "always-admit" || names[1] != "token-bucket" {
		t.Fatalf("policy registry = %v", names)
	}
	for _, spec := range Policies() {
		if spec.Title == "" {
			t.Errorf("policy %s has no title", spec.Name)
		}
		p := spec.New(DefaultConfig())
		if p.Name() != spec.Name {
			t.Errorf("policy %s reports name %s", spec.Name, p.Name())
		}
	}
	if _, ok := LookupPolicy("nope"); ok {
		t.Error("LookupPolicy found an unregistered policy")
	}
}

func TestAlwaysAdmit(t *testing.T) {
	p := alwaysAdmit{}
	for i := 0; i < 100; i++ {
		if !p.Admit(int64(i), Request{}) {
			t.Fatal("always-admit dropped a request")
		}
	}
}

// TestTokenBucketSustainedRate holds the bucket to its contract: at a
// steady arrival rate above the refill rate, admissions converge on the
// refill rate; below it, nothing drops.
func TestTokenBucketSustainedRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdmitRatePerMCycle = 100 // one token per 10_000 cycles
	cfg.AdmitBurst = 5
	spec, _ := LookupPolicy("token-bucket")

	// Overload: arrivals every 2_000 cycles (5x the sustained rate).
	p := spec.New(cfg)
	admitted := 0
	const n = 500
	for i := 0; i < n; i++ {
		if p.Admit(int64(i)*2_000, Request{}) {
			admitted++
		}
	}
	// n arrivals span ~1M cycles → ~100 sustained tokens + 5 burst.
	want := int(float64(n)*2_000/10_000) + cfg.AdmitBurst
	if admitted < want-2 || admitted > want+2 {
		t.Errorf("overload admitted %d of %d, want ≈%d", admitted, n, want)
	}

	// Underload: arrivals every 20_000 cycles (half the sustained rate).
	p = spec.New(cfg)
	for i := 0; i < 200; i++ {
		if !p.Admit(int64(i)*20_000, Request{}) {
			t.Fatalf("underloaded token bucket dropped arrival %d", i)
		}
	}
}

// TestTokenBucketBurst pins burst credit: a cold bucket admits exactly
// AdmitBurst back-to-back arrivals before shedding.
func TestTokenBucketBurst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdmitRatePerMCycle = 1 // negligible refill at one instant
	cfg.AdmitBurst = 7
	spec, _ := LookupPolicy("token-bucket")
	p := spec.New(cfg)
	admitted := 0
	for i := 0; i < 20; i++ {
		if p.Admit(100, Request{}) { // all at the same cycle
			admitted++
		}
	}
	if admitted != cfg.AdmitBurst {
		t.Errorf("cold bucket admitted %d, want burst %d", admitted, cfg.AdmitBurst)
	}
}

// TestTokenBucketDeterministic: same arrival schedule, same decisions.
func TestTokenBucketDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdmitRatePerMCycle = 73
	cfg.AdmitBurst = 3
	spec, _ := LookupPolicy("token-bucket")
	run := func() []bool {
		p := spec.New(cfg)
		var out []bool
		tm := int64(0)
		r := rng{s: 9}
		for i := 0; i < 300; i++ {
			tm += int64(r.intn(9_000)) + 1
			out = append(out, p.Admit(tm, Request{}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}
