package serve

import (
	"bytes"
	"errors"
	"testing"

	"gpulp/internal/pmodel"
)

// quickConfig is a scaled-down run that still exercises every pipeline
// stage: both SLO classes, all three clients, batching under load.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.HorizonCycles = 400_000
	return cfg
}

func mustRun(t *testing.T, cfg Config) *RunResult {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBasicLP(t *testing.T) {
	r := mustRun(t, quickConfig())
	rep := r.Report
	if rep.Launches == 0 {
		t.Fatal("no launches")
	}
	if rep.EndCycle <= 0 || rep.BusyCycles <= 0 || rep.DrainCycles <= 0 {
		t.Fatalf("degenerate cycle accounting: %+v", rep)
	}
	var offered, admitted, dropped, completed int
	for _, c := range rep.Classes {
		offered += c.Offered
		admitted += c.Admitted
		dropped += c.Dropped
		completed += c.Completed
		if c.Completed > 0 && (c.P50 <= 0 || c.P95 < c.P50 || c.P99 < c.P95 || c.MaxLatency < c.P99) {
			t.Errorf("class %s percentile ordering broken: %+v", c.Class, c)
		}
	}
	if offered == 0 || offered != admitted+dropped {
		t.Fatalf("offered %d != admitted %d + dropped %d", offered, admitted, dropped)
	}
	if completed != admitted {
		t.Fatalf("completed %d != admitted %d (always-admit, run drained)", completed, admitted)
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestRunEveryModel drives the full pipeline under each registered
// persistency model plus the bare baseline, verifying the ledger each
// time and that durability costs cycles relative to bare.
func TestRunEveryModel(t *testing.T) {
	cfg := quickConfig()
	cfg.Model = "none"
	base := mustRun(t, cfg)
	if err := base.VerifyLedger(); err != nil {
		t.Fatalf("bare: %v", err)
	}
	for _, spec := range pmodel.Specs() {
		cfg.Model = spec.Name
		r := mustRun(t, cfg)
		if err := r.VerifyLedger(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		r.Report.CompareBaseline(base.Report)
		if r.Report.DurabilityOverhead < 0 {
			t.Errorf("%s: durability overhead %.3f < 0 (busy %d vs bare %d)",
				spec.Name, r.Report.DurabilityOverhead, r.Report.BusyCycles, base.Report.BusyCycles)
		}
	}
}

// TestRunDeterministicAcrossWorkers is the package-level half of the
// root determinism pin: the rendered report and the durable output
// images must be byte-identical at Workers=1 and Workers=8, for every
// model, and across same-seed reruns.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	models := append([]string{"none"}, pmodel.Names()...)
	for _, model := range models {
		cfg := quickConfig()
		cfg.Model = model
		cfg.Dev.Workers = 1
		serial := mustRun(t, cfg)
		rerun := mustRun(t, cfg)
		if serial.Report.String() != rerun.Report.String() {
			t.Fatalf("%s: same-seed reruns differ", model)
		}
		cfg.Dev.Workers = 8
		parallel := mustRun(t, cfg)
		if serial.Report.String() != parallel.Report.String() {
			t.Fatalf("%s: Workers=1 vs 8 reports differ:\n%s\nvs\n%s",
				model, serial.Report.String(), parallel.Report.String())
		}
		so, po := serial.Outputs(), parallel.Outputs()
		for i := range so {
			if !bytes.Equal(so[i], po[i]) {
				t.Fatalf("%s: durable output %d differs across Workers", model, i)
			}
		}
	}
}

// TestRunCrashRecoversBitExact injects a mid-serving crash under every
// registered model and requires the run to absorb it: recovery happens
// in-loop, the durable image right after recovery matches the crash-free
// run's image after the same launch bit for bit (both runs have served
// exactly the same requests at that instant), and the admission ledger
// holds through the end of the run.
func TestRunCrashRecoversBitExact(t *testing.T) {
	for _, spec := range pmodel.Specs() {
		probe := quickConfig()
		probe.Model = spec.Name
		launches := mustRun(t, probe).Report.Launches
		if launches < 3 {
			t.Fatalf("%s: only %d launches; crash point needs more", spec.Name, launches)
		}
		at := launches / 2

		cfg := probe
		cfg.ObserveAtLaunch = at
		golden := mustRun(t, cfg)
		crash := cfg
		crash.CrashAtLaunch = at
		crash.CrashAfterBlocks = 1
		r := mustRun(t, crash)
		if r.Report.Recoveries != 1 {
			t.Fatalf("%s: %d recoveries, want 1", spec.Name, r.Report.Recoveries)
		}
		if err := r.VerifyLedger(); err != nil {
			t.Fatalf("%s after crash: %v", spec.Name, err)
		}
		gObs, cObs := golden.Observed(), r.Observed()
		if len(gObs) == 0 || len(cObs) == 0 {
			t.Fatalf("%s: missing observation snapshots (%d vs %d)", spec.Name, len(gObs), len(cObs))
		}
		for i := range gObs {
			if !bytes.Equal(gObs[i], cObs[i]) {
				t.Fatalf("%s: durable output %d after recovery diverges from crash-free launch %d", spec.Name, i, at)
			}
		}
	}
}

// TestTokenBucketShedsUnderOverload: a token bucket below the offered
// rate must drop work, and everything admitted still completes and
// verifies.
func TestTokenBucketShedsUnderOverload(t *testing.T) {
	cfg := quickConfig()
	cfg.Policy = "token-bucket"
	cfg.AdmitRatePerMCycle = 30 // well under the ~100/Mcycle offered
	cfg.AdmitBurst = 8
	r := mustRun(t, cfg)
	var admitted, dropped, completed int
	for _, c := range r.Report.Classes {
		admitted += c.Admitted
		dropped += c.Dropped
		completed += c.Completed
	}
	if dropped == 0 {
		t.Fatal("token bucket dropped nothing under overload")
	}
	if completed != admitted {
		t.Fatalf("completed %d != admitted %d", completed, admitted)
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertOverflowAnswered: a store far smaller than the key space
// turns bucket overflows into answered ResultOverflow requests — shed at
// the store, never lost, ledger still exact.
func TestInsertOverflowAnswered(t *testing.T) {
	cfg := quickConfig()
	cfg.StoreBuckets = 1 // 8 slots total
	cfg.KeySpace = 512
	r := mustRun(t, cfg)
	var overflows int
	for _, c := range r.Report.Classes {
		overflows += c.Overflows
	}
	if overflows == 0 {
		t.Fatal("no overflow answers from an 8-slot store under hundreds of inserts")
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.HorizonCycles = 0 },
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Clients = nil },
		func(c *Config) { c.Clients[0].Class = 9 },
		func(c *Config) { c.MaxBatch = 100 }, // not a BlockThreads multiple
		func(c *Config) { c.Model = "mystery" },
		func(c *Config) { c.Policy = "mystery" },
		func(c *Config) { c.Clients[0].Process = "weibull" },
		func(c *Config) { c.CrashAtLaunch = 3; c.Model = "none" },
		func(c *Config) { c.Policy = "token-bucket"; c.AdmitRatePerMCycle = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("bad config %d: error %v, want ErrConfig", i, err)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig does not validate: %v", err)
	}
}
