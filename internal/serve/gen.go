package serve

import "math"

// gen.go is the seeded load generator. Every draw comes from a per-client
// splitmix64 stream derived from Config.Seed, so the merged arrival
// sequence is a pure function of the config: same seed, same requests,
// same cycle stamps — the property the determinism pins and the
// statistical property tests both lean on. No math/rand, no wall clock.

// rng is a splitmix64 generator (the repo's standard seeded stream; see
// internal/kernels' prng and faultsim's splitmix).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in (0, 1].
func (r *rng) float64() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// exp returns an exponential draw with the given mean (inverse-CDF on a
// (0,1] uniform, so the log argument never hits zero).
func (r *rng) exp(mean float64) float64 {
	return -mean * math.Log(r.float64())
}

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// clientState is one client's generation stream.
type clientState struct {
	spec     ClientSpec
	idx      int
	r        rng
	keySpace uint64
	// next is the client's next arrival cycle; negative means none
	// scheduled (closed-loop waiting for a completion, or done).
	next int64
}

// gap draws one inter-arrival gap in cycles (at least 1).
func (c *clientState) gap() int64 {
	var g float64
	switch {
	case c.spec.Closed:
		g = c.r.exp(c.spec.ThinkCycles)
	case c.spec.Process == "gamma":
		// Erlang: the sum of Shape exponential stages whose means add up
		// to the configured mean gap — same rate, lower variance.
		shape := c.spec.Shape
		if shape <= 0 {
			shape = 2
		}
		mean := 1e6 / c.spec.RatePerMCycle
		for i := 0; i < shape; i++ {
			g += c.r.exp(mean / float64(shape))
		}
	default: // poisson
		g = c.r.exp(1e6 / c.spec.RatePerMCycle)
	}
	if g < 1 {
		return 1
	}
	return int64(g)
}

// draw fills in the request's operation, key and value from the client's
// stream.
func (c *clientState) draw(req *Request) {
	total := c.spec.SearchW + c.spec.InsertW + c.spec.DeleteW
	w := c.r.intn(total)
	switch {
	case w < c.spec.SearchW:
		req.Op = OpSearch
	case w < c.spec.SearchW+c.spec.InsertW:
		req.Op = OpInsert
	default:
		req.Op = OpDelete
	}
	req.Key = 1 + c.r.next()%c.keySpace
	if req.Op == OpInsert {
		if req.Val = c.r.next(); req.Val == 0 {
			req.Val = 1
		}
	}
}

// Generator merges every client's stream into one deterministic arrival
// sequence ordered by (cycle, client index).
type Generator struct {
	clients []*clientState
	horizon int64
	nextID  int
}

// NewGenerator builds the generator for cfg (which must validate).
func NewGenerator(cfg Config) *Generator {
	g := &Generator{horizon: cfg.HorizonCycles}
	for i, spec := range cfg.Clients {
		c := &clientState{spec: spec, idx: i, keySpace: cfg.KeySpace}
		// Decorrelate client streams: each gets its own splitmix state
		// derived from the run seed and the client's index.
		c.r.s = (cfg.Seed + 0x9e3779b97f4a7c15) * (uint64(i)*2 + 1)
		c.next = c.gap() // closed-loop clients think before their first request
		if c.next > g.horizon {
			c.next = -1
		}
		g.clients = append(g.clients, c)
	}
	return g
}

// Next returns the earliest pending arrival, or ok=false when no client
// has one scheduled (closed-loop clients may schedule more after
// Complete).
func (g *Generator) Next() (Request, bool) {
	best := -1
	for i, c := range g.clients {
		if c.next < 0 {
			continue
		}
		if best < 0 || c.next < g.clients[best].next {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false
	}
	c := g.clients[best]
	req := Request{ID: g.nextID, Client: c.idx, Class: c.spec.Class, Arrival: c.next}
	c.draw(&req)
	g.nextID++
	if c.spec.Closed {
		c.next = -1 // wait for Complete
	} else if c.next += c.gap(); c.next > g.horizon {
		c.next = -1
	}
	return req, true
}

// Complete tells a closed-loop client its outstanding request finished
// at cycle done, scheduling its next arrival after a think gap. Open-loop
// clients ignore it.
func (g *Generator) Complete(client int, done int64) {
	c := g.clients[client]
	if !c.spec.Closed {
		return
	}
	if next := done + c.gap(); next <= g.horizon {
		c.next = next
	}
}

// Live reports whether any client can still produce an arrival now or
// after a future completion.
func (g *Generator) Live() bool {
	for _, c := range g.clients {
		if c.next >= 0 {
			return true
		}
	}
	return false
}
