package serve

import (
	"fmt"
	"math"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// cluster.go is the cluster-backed serving loop: the same virtual-time
// front end as Run, but every batch launches on every alive device of a
// small fleet, so each device's durable store is a full replica of the
// service state. Losing a device mid-serving therefore costs nothing to
// repair — the batch in flight is already complete on the survivors
// (adoption), and serving continues in degraded mode, shedding
// bulk-class arrivals before interactive ones until the run ends. Only
// when the last alive device fails is there anything to recover, and
// that path runs the persistency model's recovery under a bounded
// retry/backoff budget.
//
// Replication here is full-state (every device serves every batch), the
// serving-layer counterpart of internal/cluster's per-shard replica
// placement: the cluster package replicates shards R ways below the
// job layer; this file replicates whole epochs device-wide above it.
// Both preserve the determinism contract — a cluster run is a pure
// function of its ClusterConfig.

// ClusterConfig describes one cluster-backed serving run.
type ClusterConfig struct {
	Config

	// Devices is the fleet size; every batch launches on every alive
	// device, so each device's store is a full replica.
	Devices int
	// FailAtLaunch, when positive, fail-stops device FailDevice midway
	// through the Nth kernel launch (after FailAfterBlocks thread
	// blocks, default 1): its memory system crashes and, when survivors
	// remain, the device is removed from the fleet without any recovery
	// work (the survivors already carry the batch).
	FailAtLaunch    int
	FailDevice      int
	FailAfterBlocks int
	// MaxRetries bounds recovery attempts when the failing device was
	// the last one alive; each retry after the first charges an
	// exponentially growing backoff (RetryBackoffCycles << (attempt-2)).
	MaxRetries         int
	RetryBackoffCycles int64
	// DegradedKeepClasses is how many leading SLO classes (lowest
	// indices — the most latency-sensitive) keep being admitted once
	// the fleet is degraded; arrivals of every later class are shed at
	// the door. 0 sheds everything; len(Classes) sheds nothing.
	DegradedKeepClasses int
	// FailRecoveryAttempts is a test hook: the first N last-device
	// recovery attempts fail deterministically, exercising the
	// retry/backoff path without a second fault injector.
	FailRecoveryAttempts int
}

// DefaultClusterConfig returns DefaultConfig served by a two-device
// fleet with a modest retry budget and interactive-only degraded mode.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Config:              DefaultConfig(),
		Devices:             2,
		MaxRetries:          2,
		RetryBackoffCycles:  4096,
		DegradedKeepClasses: 1,
	}
}

// Validate reports the first configuration problem wrapped in ErrConfig.
func (c ClusterConfig) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrConfig, fmt.Sprintf(format, args...))
	}
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Devices <= 0 {
		return fail("cluster serving needs a positive device count, got %d", c.Devices)
	}
	if c.CrashAtLaunch != 0 {
		return fail("cluster serving injects failures via FailAtLaunch, not CrashAtLaunch")
	}
	if c.FailAtLaunch < 0 {
		return fail("FailAtLaunch must be non-negative")
	}
	if c.FailAfterBlocks < 0 {
		return fail("FailAfterBlocks must be non-negative")
	}
	if c.FailAtLaunch > 0 {
		if bareModel(c.Model) {
			return fail("FailAtLaunch requires a persistency model, got %q", c.Model)
		}
		if c.FailDevice < 0 || c.FailDevice >= c.Devices {
			return fail("FailDevice %d out of range [0, %d)", c.FailDevice, c.Devices)
		}
		if c.MaxRetries <= 0 {
			return fail("FailAtLaunch needs a positive MaxRetries budget")
		}
	}
	if c.MaxRetries < 0 {
		return fail("MaxRetries must be non-negative")
	}
	if c.RetryBackoffCycles < 0 {
		return fail("RetryBackoffCycles must be non-negative")
	}
	if c.DegradedKeepClasses < 0 || c.DegradedKeepClasses > len(c.Classes) {
		return fail("DegradedKeepClasses %d out of range [0, %d]", c.DegradedKeepClasses, len(c.Classes))
	}
	if c.FailRecoveryAttempts < 0 {
		return fail("FailRecoveryAttempts must be non-negative")
	}
	return nil
}

// ClusterReport is a cluster run's summary: the usual serving report
// (fleet-wide busy/drain totals) plus the degradation ledger.
type ClusterReport struct {
	Report
	// Devices is the configured fleet size; DeadDevices lists the
	// devices lost during the run, in failure order.
	Devices     int   `json:"devices"`
	DeadDevices []int `json:"dead_devices,omitempty"`
	// AdoptedBatches counts batches whose failing device was simply
	// dropped because survivors already carried them — failovers that
	// cost zero recovery cycles.
	AdoptedBatches int `json:"adopted_batches,omitempty"`
	// DegradedSheds counts arrivals shed by degraded-mode class
	// filtering (they also appear in their class's Dropped column).
	DegradedSheds int `json:"degraded_sheds,omitempty"`
	// RetriesUsed counts extra last-device recovery attempts beyond the
	// first; RetryBackoffCycles is the total backoff charged for them.
	RetriesUsed        int   `json:"retries_used,omitempty"`
	RetryBackoffCycles int64 `json:"retry_backoff_cycles,omitempty"`
}

// String renders the base report plus one cluster line (the
// determinism pins compare these byte-for-byte).
func (rep *ClusterReport) String() string {
	return rep.Report.String() + fmt.Sprintf(
		"  cluster: devices=%d dead=%v adopted=%d degraded_sheds=%d retries=%d backoff=%d\n",
		rep.Devices, rep.DeadDevices, rep.AdoptedBatches, rep.DegradedSheds,
		rep.RetriesUsed, rep.RetryBackoffCycles)
}

// clusterDevice is one fleet member's full replica stack.
type clusterDevice struct {
	id   int
	mem  *memsim.Memory
	dev  *gpusim.Device
	w    *batchWorkload
	l    *launcher
	free int64
	dead bool
}

// ClusterRunResult is a finished cluster serving run.
type ClusterRunResult struct {
	Report *ClusterReport
	nodes  []*clusterDevice
	ledger *Ledger

	observed [][]byte
}

// lowestAlive returns the smallest-id alive device — the canonical
// replica results and snapshots are read from. At least one device is
// always alive (a last-device failure either recovers or errors out).
func (r *ClusterRunResult) lowestAlive() *clusterDevice {
	for _, d := range r.nodes {
		if !d.dead {
			return d
		}
	}
	panic("serve: cluster run finished with no alive device")
}

// Outputs snapshots the canonical replica's durable output regions.
func (r *ClusterRunResult) Outputs() [][]byte {
	d := r.lowestAlive()
	var out [][]byte
	for _, reg := range d.w.Outputs() {
		out = append(out, d.mem.PeekNVM(reg.Base, reg.Size))
	}
	return out
}

// Observed returns the durable snapshot taken at ObserveAtLaunch.
func (r *ClusterRunResult) Observed() [][]byte { return r.observed }

// Ledger exposes the admission ledger.
func (r *ClusterRunResult) Ledger() *Ledger { return r.ledger }

// VerifyLedger checks every alive replica's durable store against the
// admission ledger — the replicas must agree with the acknowledged
// request stream and therefore with each other.
func (r *ClusterRunResult) VerifyLedger() error {
	for _, d := range r.nodes {
		if d.dead {
			continue
		}
		if err := r.ledger.Verify(d.w.Store()); err != nil {
			return fmt.Errorf("device %d: %w", d.id, err)
		}
	}
	return nil
}

// AliveDevices lists the ids still serving at run end.
func (r *ClusterRunResult) AliveDevices() []int {
	var out []int
	for _, d := range r.nodes {
		if !d.dead {
			out = append(out, d.id)
		}
	}
	return out
}

// RunCluster executes one cluster-backed serving run to completion.
func RunCluster(cfg ClusterConfig) (*ClusterRunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := make([]*clusterDevice, cfg.Devices)
	for i := range nodes {
		mem := memsim.MustNew(cfg.Mem)
		dev := gpusim.MustNew(cfg.Dev, mem)
		w := newBatchWorkload(dev, cfg.StoreBuckets, cfg.MaxBatch)
		nodes[i] = &clusterDevice{id: i, mem: mem, dev: dev, w: w, l: newLauncher(w, cfg.Config)}
	}
	gen := NewGenerator(cfg.Config)
	pol, _ := LookupPolicy(cfg.Policy)
	policy := pol.New(cfg.Config)
	bat := NewBatcher(cfg.MaxBatch)
	ledger := newLedger()
	grid, blk := nodes[0].w.Geometry()

	stats := make([]classStats, len(cfg.Classes))
	rep := &ClusterReport{
		Report:  Report{Model: cfg.Model, Policy: cfg.Policy, Seed: cfg.Seed},
		Devices: cfg.Devices,
	}
	if bareModel(cfg.Model) {
		rep.Model = "none"
	}

	lineBytes := int64(nodes[0].mem.Config().LineSize)
	nvmBW := nodes[0].dev.Config().NVMBytesPerCycle
	lowestAlive := func() *clusterDevice {
		for _, d := range nodes {
			if !d.dead {
				return d
			}
		}
		return nil
	}
	aliveCount := func() int {
		n := 0
		for _, d := range nodes {
			if !d.dead {
				n++
			}
		}
		return n
	}
	// fleetFree is when every alive device can accept the next batch;
	// the fleet launches in lockstep so the replicas stay in the same
	// epoch.
	fleetFree := func() int64 {
		var free int64
		for _, d := range nodes {
			if !d.dead && d.free > free {
				free = d.free
			}
		}
		return free
	}
	snapshot := func() [][]byte {
		d := lowestAlive()
		var out [][]byte
		for _, reg := range d.w.Outputs() {
			out = append(out, d.mem.PeekNVM(reg.Base, reg.Size))
		}
		return out
	}
	var observed [][]byte

	injectFail := cfg.FailRecoveryAttempts
	degraded := false

	var now int64
	arr, arrOK := gen.Next()
	for {
		// When would the current queue launch?
		tLaunch := int64(math.MaxInt64)
		if bat.Len() >= cfg.MaxBatch {
			tLaunch = maxI64(now, fleetFree())
		} else if bat.Len() > 0 {
			tLaunch = maxI64(bat.OldestAdmit()+cfg.MaxWaitCycles, fleetFree())
			if !arrOK {
				tLaunch = maxI64(now, fleetFree())
			}
		}

		if arrOK && (tLaunch == int64(math.MaxInt64) || arr.Arrival < tLaunch) {
			now = maxI64(now, arr.Arrival)
			st := &stats[arr.Class]
			st.offered++
			switch {
			case degraded && arr.Class >= cfg.DegradedKeepClasses:
				// Degraded mode sheds the lower-priority classes at the
				// door, before the admission policy sees them, keeping
				// the surviving capacity for the leading (interactive)
				// classes.
				st.dropped++
				rep.DegradedSheds++
				ledger.drop(arr)
				if cfg.Clients[arr.Client].Closed {
					gen.Complete(arr.Client, arr.Arrival)
				}
			case policy.Admit(arr.Arrival, arr):
				st.admitted++
				bat.Add(arr, arr.Arrival)
			default:
				st.dropped++
				ledger.drop(arr)
				if cfg.Clients[arr.Client].Closed {
					gen.Complete(arr.Client, arr.Arrival)
				}
			}
			arr, arrOK = gen.Next()
			continue
		}
		if tLaunch == int64(math.MaxInt64) {
			break
		}

		// Launch the batch on every alive device.
		now = tLaunch
		batch := bat.Take()
		rep.Launches++
		done := now
		for _, d := range nodes {
			if d.dead {
				continue
			}
			d.w.SetBatch(batch)
			d.l.beginEpoch(rep.Launches)
			if cfg.FailAtLaunch == rep.Launches && d.id == cfg.FailDevice {
				after := cfg.FailAfterBlocks
				if after <= 0 {
					after = 1
				}
				mem := d.mem
				d.dev.SetCrashTrigger(&gpusim.CrashTrigger{
					AfterBlocks: after,
					Fire:        func(*gpusim.Device) { mem.Crash() },
				})
			}
			res := d.dev.Launch(fmt.Sprintf("megakv-serve#%d", rep.Launches), grid, blk, d.l.kernel)
			busy := cfg.LaunchOverheadCycles + res.Cycles
			rep.BusyCycles += res.Cycles
			if res.Interrupted {
				if aliveCount() > 1 {
					// Survivors already carry this batch bit-for-bit:
					// adopt their copy and drop the device. No recovery
					// launch, no stall — the whole point of replication.
					d.dead = true
					degraded = true
					rep.DeadDevices = append(rep.DeadDevices, d.id)
					rep.AdoptedBatches++
					continue
				}
				// Last device alive: recover in place under the bounded
				// retry/backoff budget.
				if d.l.model == nil {
					return nil, fmt.Errorf("%w: crash injected without a persistency model", ErrConfig)
				}
				var rrep pmodel.Report
				var rerr error
				for attempt := 1; attempt <= cfg.MaxRetries; attempt++ {
					if attempt > 1 {
						backoff := cfg.RetryBackoffCycles << uint(attempt-2)
						busy += backoff
						rep.RetryBackoffCycles += backoff
						rep.RetriesUsed++
					}
					if injectFail > 0 {
						injectFail--
						rerr = fmt.Errorf("serve: injected recovery fault (attempt %d): %w", attempt, core.ErrDegraded)
						continue
					}
					rrep, rerr = d.l.model.Recover()
					if rerr == nil {
						break
					}
				}
				if rerr != nil {
					return nil, fmt.Errorf("serve: recovery after launch %d exhausted %d attempts: %w",
						rep.Launches, cfg.MaxRetries, rerr)
				}
				rep.Recoveries++
				rep.RecoveryCycles += rrep.Cycles
				busy += rrep.Cycles
			}
			lines := int64(d.mem.FlushAll())
			drain := int64(math.Ceil(float64(lines*lineBytes) / nvmBW))
			rep.DrainCycles += drain
			busy += drain
			d.free = now + busy
			if d.free > done {
				done = d.free
			}
		}
		if cfg.ObserveAtLaunch == rep.Launches {
			observed = snapshot()
		}

		// The batch completes when the slowest alive replica has drained
		// it — acknowledgements wait for fleet-wide durability.
		if done > rep.EndCycle {
			rep.EndCycle = done
		}
		src := lowestAlive()
		for i, p := range batch {
			if err := ledger.apply(p.req, src.w.Result(i)); err != nil {
				return nil, fmt.Errorf("serve: launch %d slot %d (%v key %#x): %w",
					rep.Launches, i, p.req.Op, p.req.Key, err)
			}
			st := &stats[p.req.Class]
			st.completed++
			if src.w.Result(i) == ResultOverflow && p.req.Op == OpInsert {
				st.overflows++
			}
			lat := done - p.req.Arrival
			st.latencies = append(st.latencies, lat)
			if lat <= cfg.Classes[p.req.Class].BudgetCycles {
				st.onTime++
			}
			gen.Complete(p.req.Client, done)
		}
		if !arrOK {
			arr, arrOK = gen.Next()
		}
	}
	if rep.EndCycle < now {
		rep.EndCycle = now
	}

	rep.fillClasses(cfg.Config, stats)
	return &ClusterRunResult{Report: rep, nodes: nodes, ledger: ledger, observed: observed}, nil
}
