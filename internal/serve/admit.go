package serve

// admit.go is the pluggable admission-control layer. Policies are pure
// functions of (virtual time, request) over internal state, so admission
// decisions — like everything else in a serving run — are deterministic.

// Policy decides, at a request's arrival instant, whether it enters the
// batching queue or is shed.
type Policy interface {
	// Name returns the registry name.
	Name() string
	// Admit is called once per arrival, in arrival order, with the
	// current virtual time.
	Admit(now int64, req Request) bool
}

// PolicySpec is one registered admission policy.
type PolicySpec struct {
	// Name is the registry key, as -policy flags spell it.
	Name string
	// Title is a one-line description for listings and docs.
	Title string
	// New binds the policy to a run's config.
	New func(cfg Config) Policy
}

// policyRegistry lists every policy in presentation order (a slice, not
// a map: iteration order is part of the determinism contract).
var policyRegistry = []PolicySpec{
	{
		Name:  "always-admit",
		Title: "admit every request; overload shows up as latency, not drops",
		New:   func(Config) Policy { return alwaysAdmit{} },
	},
	{
		Name:  "token-bucket",
		Title: "shed arrivals beyond a sustained rate with bounded burst credit",
		New: func(cfg Config) Policy {
			return &tokenBucket{
				perCycle: cfg.AdmitRatePerMCycle / 1e6,
				burst:    float64(cfg.AdmitBurst),
				tokens:   float64(cfg.AdmitBurst),
			}
		},
	},
}

// Policies returns every registered policy, in registry order.
func Policies() []PolicySpec {
	return append([]PolicySpec(nil), policyRegistry...)
}

// PolicyNames returns the registered policy names, in registry order.
func PolicyNames() []string {
	out := make([]string, len(policyRegistry))
	for i, p := range policyRegistry {
		out[i] = p.Name
	}
	return out
}

// LookupPolicy finds a policy by name.
func LookupPolicy(name string) (PolicySpec, bool) {
	for _, p := range policyRegistry {
		if p.Name == name {
			return p, true
		}
	}
	return PolicySpec{}, false
}

// alwaysAdmit is the no-shedding baseline.
type alwaysAdmit struct{}

func (alwaysAdmit) Name() string                { return "always-admit" }
func (alwaysAdmit) Admit(int64, Request) bool { return true }

// tokenBucket refills perCycle tokens per cycle up to burst and spends
// one per admitted request.
type tokenBucket struct {
	perCycle float64
	burst    float64
	tokens   float64
	last     int64
}

func (tb *tokenBucket) Name() string { return "token-bucket" }

func (tb *tokenBucket) Admit(now int64, _ Request) bool {
	if now > tb.last {
		tb.tokens += float64(now-tb.last) * tb.perCycle
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
