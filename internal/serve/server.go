package serve

import (
	"fmt"
	"math"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// server.go is the deterministic virtual-time serving loop. One pass
// interleaves three event sources — arrivals (generator + admission),
// launch deadlines (batcher), and completions (kernel launch + recovery
// + epoch drain) — on a single cycle clock. The device serves one batch
// at a time; requests admitted while it is busy queue for the next
// launch, which is where batching-under-load comes from.
//
// Epoch discipline: every batch boundary is a persistency epoch. After a
// launch, the cache's dirty lines are drained to NVM (charged at NVM
// bandwidth), making the previous epoch's effects durable; before the
// next launch, epoch-salted models advance their epoch and metadata-
// truncating models (redo logs, release flags) are host-reset. A crash
// therefore only ever has one in-flight batch to repair, and the model's
// recovery restores the durable image bit-exactly.

// bareModel reports whether name means "no persistency model".
func bareModel(name string) bool { return name == "" || name == "none" }

// modelKnown reports whether name is bare or registered.
func modelKnown(name string) bool {
	if bareModel(name) {
		return true
	}
	_, ok := pmodel.Lookup(name)
	return ok
}

// launcher binds the workload to the selected persistency model (or to
// nothing, for the non-persistent baseline).
type launcher struct {
	kernel  gpusim.KernelFunc
	model   pmodel.Model
	epocher pmodel.Epocher
	meta    []memsim.Region
}

func newLauncher(w *batchWorkload, cfg Config) *launcher {
	if bareModel(cfg.Model) {
		return &launcher{kernel: w.Kernel(nil)}
	}
	spec := pmodel.MustLookup(cfg.Model)
	_, blk := w.Geometry()
	m := spec.New(w.dev, w, pmodel.Options{
		LP: cfg.LP,
		// The serving kernel issues up to three 64-bit persistent stores
		// per thread (key confirm, value, result) — six hook records —
		// so EP's log needs twice its four-per-thread default.
		EPEntries: blk.Size() * 8,
		// No checkpoint tier: a bind-time checkpoint goes stale after the
		// first batch, and restoring it mid-run would erase every earlier
		// epoch. Selective re-execution and full-grid re-execution are
		// the only sound tiers under the per-batch epoch discipline.
		Checkpoint: false,
	})
	l := &launcher{kernel: m.Kernel(), model: m, meta: m.MetadataRegions()}
	l.epocher, _ = m.(pmodel.Epocher)
	return l
}

// beginEpoch prepares the model for batch n (1-based). Epoch-salted
// models advance their salt; the rest truncate their durable metadata —
// sound exactly because the previous epoch's data was drained first.
func (l *launcher) beginEpoch(n int) {
	if l.model == nil {
		return
	}
	if l.epocher != nil {
		l.epocher.SetEpoch(uint64(n))
		return
	}
	for _, r := range l.meta {
		r.HostZero()
	}
}

// classStats accumulates one SLO class's counters.
type classStats struct {
	offered   int
	admitted  int
	dropped   int
	completed int
	onTime    int
	overflows int
	latencies []int64
}

// Ledger is the host-side admission ledger: the durable key-value state
// implied by every admitted request's acknowledged outcome, maintained
// in first-touch order (no map iteration anywhere near a report).
type Ledger struct {
	order   []uint64
	touched map[uint64]bool
	expect  map[uint64]uint64
	present map[uint64]bool
}

func newLedger() *Ledger {
	return &Ledger{
		touched: map[uint64]bool{},
		expect:  map[uint64]uint64{},
		present: map[uint64]bool{},
	}
}

func (l *Ledger) touch(key uint64) {
	if !l.touched[key] {
		l.touched[key] = true
		l.order = append(l.order, key)
	}
}

// Keys returns every key any request (admitted or dropped) named, in
// first-touch order.
func (l *Ledger) Keys() []uint64 { return append([]uint64(nil), l.order...) }

// apply folds one completed request's acknowledged outcome into the
// expected state, checking the result word against what the ledger
// already knows. A contradiction is an ErrLedger.
func (l *Ledger) apply(req Request, res uint64) error {
	l.touch(req.Key)
	switch req.Op {
	case OpSearch:
		want := uint64(0)
		if l.present[req.Key] {
			want = l.expect[req.Key]
		}
		if res != want {
			return fmt.Errorf("%w: search(key %#x) answered %#x, ledger expects %#x", ErrLedger, req.Key, res, want)
		}
	case OpInsert:
		switch res {
		case ResultInsertOK:
			l.expect[req.Key] = req.Val
			l.present[req.Key] = true
		case ResultOverflow:
			if l.present[req.Key] {
				return fmt.Errorf("%w: insert(key %#x) overflowed but the key is resident (overwrite cannot overflow)", ErrLedger, req.Key)
			}
		default:
			return fmt.Errorf("%w: insert(key %#x) answered unknown result %#x", ErrLedger, req.Key, res)
		}
	case OpDelete:
		if res != ResultDeleteAck {
			return fmt.Errorf("%w: delete(key %#x) answered %#x, want ack", ErrLedger, req.Key, res)
		}
		l.present[req.Key] = false
	default:
		return fmt.Errorf("%w: completed request has op %v", ErrLedger, req.Op)
	}
	return nil
}

// drop records a shed request's key so verification can also assert that
// dropped work left no trace.
func (l *Ledger) drop(req Request) { l.touch(req.Key) }

// Verify checks the durable store against the expected state, key by
// key, in first-touch order.
func (l *Ledger) Verify(store interface {
	NVMGet(key uint64) (uint64, bool)
}) error {
	for _, k := range l.order {
		got, ok := store.NVMGet(k)
		if l.present[k] {
			if !ok || got != l.expect[k] {
				return fmt.Errorf("%w: key %#x durable as %#x/%v, ledger expects %#x/true", ErrLedger, k, got, ok, l.expect[k])
			}
		} else if ok {
			return fmt.Errorf("%w: key %#x durable as %#x, ledger expects absent", ErrLedger, k, got)
		}
	}
	return nil
}

// RunResult is a finished serving run: the report plus the handles the
// crash campaign and the determinism pins verify against.
type RunResult struct {
	Report *Report
	mem    *memsim.Memory
	w      *batchWorkload
	ledger *Ledger

	observed [][]byte
}

// Outputs snapshots the durable bytes of every persistent output region
// (results, then the store) — the bit-exactness witness.
func (r *RunResult) Outputs() [][]byte {
	var out [][]byte
	for _, reg := range r.w.Outputs() {
		out = append(out, r.mem.PeekNVM(reg.Base, reg.Size))
	}
	return out
}

// Observed returns the durable output snapshot taken at
// Config.ObserveAtLaunch (nil when unset or never reached).
func (r *RunResult) Observed() [][]byte { return r.observed }

// VerifyLedger checks the durable store against the admission ledger.
func (r *RunResult) VerifyLedger() error { return r.ledger.Verify(r.w.Store()) }

// Ledger exposes the admission ledger.
func (r *RunResult) Ledger() *Ledger { return r.ledger }

// Run executes one serving run to completion.
func Run(cfg Config) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem := memsim.MustNew(cfg.Mem)
	dev := gpusim.MustNew(cfg.Dev, mem)
	w := newBatchWorkload(dev, cfg.StoreBuckets, cfg.MaxBatch)
	l := newLauncher(w, cfg)
	gen := NewGenerator(cfg)
	pol, _ := LookupPolicy(cfg.Policy)
	policy := pol.New(cfg)
	bat := NewBatcher(cfg.MaxBatch)
	ledger := newLedger()
	grid, blk := w.Geometry()

	stats := make([]classStats, len(cfg.Classes))
	rep := &Report{
		Model:  cfg.Model,
		Policy: cfg.Policy,
		Seed:   cfg.Seed,
	}
	if bareModel(cfg.Model) {
		rep.Model = "none"
	}

	lineBytes := int64(mem.Config().LineSize)
	nvmBW := dev.Config().NVMBytesPerCycle
	snapshot := func() [][]byte {
		var out [][]byte
		for _, reg := range w.Outputs() {
			out = append(out, mem.PeekNVM(reg.Base, reg.Size))
		}
		return out
	}
	var observed [][]byte

	var now, devFree int64
	arr, arrOK := gen.Next()
	for {
		// When would the current queue launch?
		tLaunch := int64(math.MaxInt64)
		if bat.Len() >= cfg.MaxBatch {
			tLaunch = maxI64(now, devFree)
		} else if bat.Len() > 0 {
			tLaunch = maxI64(bat.OldestAdmit()+cfg.MaxWaitCycles, devFree)
			if !arrOK {
				// No arrival can precede the deadline: drain immediately.
				tLaunch = maxI64(now, devFree)
			}
		}

		// Arrivals strictly before the launch instant are processed
		// first (ties launch: the batch the request raced is full or
		// due, so the request waits for the next one).
		if arrOK && (tLaunch == int64(math.MaxInt64) || arr.Arrival < tLaunch) {
			now = maxI64(now, arr.Arrival)
			st := &stats[arr.Class]
			st.offered++
			if policy.Admit(arr.Arrival, arr) {
				st.admitted++
				bat.Add(arr, arr.Arrival)
			} else {
				st.dropped++
				ledger.drop(arr)
				if cfg.Clients[arr.Client].Closed {
					// A shed closed-loop request completes instantly
					// from the client's point of view.
					gen.Complete(arr.Client, arr.Arrival)
				}
			}
			arr, arrOK = gen.Next()
			continue
		}
		if tLaunch == int64(math.MaxInt64) {
			break // no queue, no scheduled arrivals, nothing in flight
		}

		// Launch one batch.
		now = tLaunch
		batch := bat.Take()
		rep.Launches++
		w.SetBatch(batch)
		l.beginEpoch(rep.Launches)
		if cfg.CrashAtLaunch == rep.Launches {
			after := cfg.CrashAfterBlocks
			if after <= 0 {
				after = 1
			}
			dev.SetCrashTrigger(&gpusim.CrashTrigger{
				AfterBlocks: after,
				Fire:        func(*gpusim.Device) { mem.Crash() },
			})
		}
		res := dev.Launch(fmt.Sprintf("megakv-serve#%d", rep.Launches), grid, blk, l.kernel)
		busy := cfg.LaunchOverheadCycles + res.Cycles
		rep.BusyCycles += res.Cycles
		if res.Interrupted {
			if l.model == nil {
				return nil, fmt.Errorf("%w: crash injected without a persistency model", ErrConfig)
			}
			rrep, rerr := l.model.Recover()
			if rerr != nil {
				return nil, fmt.Errorf("serve: recovery after launch %d: %w", rep.Launches, rerr)
			}
			rep.Recoveries++
			rep.RecoveryCycles += rrep.Cycles
			busy += rrep.Cycles
		}
		// Epoch drain: push every dirty line to NVM so this batch is
		// durable before its requests are acknowledged.
		lines := int64(mem.FlushAll())
		drain := int64(math.Ceil(float64(lines*lineBytes) / nvmBW))
		rep.DrainCycles += drain
		busy += drain
		if cfg.ObserveAtLaunch == rep.Launches {
			observed = snapshot()
		}

		done := now + busy
		devFree = done
		if done > rep.EndCycle {
			rep.EndCycle = done
		}
		for i, p := range batch {
			if err := ledger.apply(p.req, w.Result(i)); err != nil {
				return nil, fmt.Errorf("serve: launch %d slot %d (%v key %#x): %w",
					rep.Launches, i, p.req.Op, p.req.Key, err)
			}
			st := &stats[p.req.Class]
			st.completed++
			if w.Result(i) == ResultOverflow && p.req.Op == OpInsert {
				st.overflows++
			}
			lat := done - p.req.Arrival
			st.latencies = append(st.latencies, lat)
			if lat <= cfg.Classes[p.req.Class].BudgetCycles {
				st.onTime++
			}
			gen.Complete(p.req.Client, done)
		}
		if !arrOK {
			// Completions may have scheduled new closed-loop arrivals.
			arr, arrOK = gen.Next()
		}
	}
	if rep.EndCycle < now {
		rep.EndCycle = now
	}

	rep.fillClasses(cfg, stats)
	return &RunResult{Report: rep, mem: mem, w: w, ledger: ledger, observed: observed}, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
