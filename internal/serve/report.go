package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// report.go renders a serving run's outcome. Every field derives from
// simulated cycles and seeded draws, so two runs of the same config
// produce byte-identical reports — the root determinism suite pins
// exactly that, across gpusim Workers settings.

// ClassReport is one SLO class's outcome.
type ClassReport struct {
	Class        string  `json:"class"`
	BudgetCycles int64   `json:"budget_cycles"`
	Offered      int     `json:"offered"`
	Admitted     int     `json:"admitted"`
	Dropped      int     `json:"dropped"`
	Completed    int     `json:"completed"`
	Overflows    int     `json:"overflows,omitempty"`
	P50          int64   `json:"p50_cycles"`
	P95          int64   `json:"p95_cycles"`
	P99          int64   `json:"p99_cycles"`
	MaxLatency   int64   `json:"max_cycles"`
	// SLOFrac is the fraction of completed requests inside the budget.
	SLOFrac float64 `json:"slo_frac"`
	// GoodputPerMCycle is budget-respecting completions per million
	// cycles of run time.
	GoodputPerMCycle float64 `json:"goodput_per_mcycle"`
}

// Report is the full per-run summary.
type Report struct {
	Model  string `json:"model"`
	Policy string `json:"policy"`
	Seed   uint64 `json:"seed"`
	// Launches counts kernel launches; Recoveries counts crash
	// recoveries the run absorbed.
	Launches   int `json:"launches"`
	Recoveries int `json:"recoveries,omitempty"`
	// EndCycle is when the last batch completed; Busy/Drain/Recovery
	// cycles decompose where device time went.
	EndCycle       int64 `json:"end_cycle"`
	BusyCycles     int64 `json:"busy_cycles"`
	DrainCycles    int64 `json:"drain_cycles"`
	RecoveryCycles int64 `json:"recovery_cycles,omitempty"`
	// Classes reports per-SLO-class latency and admission outcomes, in
	// Config.Classes order.
	Classes []ClassReport `json:"classes"`
	// DurabilityOverhead is busy-cycle inflation relative to a bare
	// (model "none") run of the same config: set by CompareBaseline,
	// negative until then.
	DurabilityOverhead float64 `json:"durability_overhead,omitempty"`
}

// percentile returns the nearest-rank q-th percentile (q in (0,100]) of
// sorted latencies; 0 when empty.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*q/100 + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// fillClasses folds the raw per-class counters into the report.
func (rep *Report) fillClasses(cfg Config, stats []classStats) {
	horizonM := float64(rep.EndCycle) / 1e6
	for i, st := range stats {
		sort.Slice(st.latencies, func(a, b int) bool { return st.latencies[a] < st.latencies[b] })
		cr := ClassReport{
			Class:        cfg.Classes[i].Name,
			BudgetCycles: cfg.Classes[i].BudgetCycles,
			Offered:      st.offered,
			Admitted:     st.admitted,
			Dropped:      st.dropped,
			Completed:    st.completed,
			Overflows:    st.overflows,
			P50:          percentile(st.latencies, 50),
			P95:          percentile(st.latencies, 95),
			P99:          percentile(st.latencies, 99),
		}
		if n := len(st.latencies); n > 0 {
			cr.MaxLatency = st.latencies[n-1]
		}
		if st.completed > 0 {
			cr.SLOFrac = float64(st.onTime) / float64(st.completed)
		}
		if horizonM > 0 {
			cr.GoodputPerMCycle = float64(st.onTime) / horizonM
		}
		rep.Classes = append(rep.Classes, cr)
	}
	rep.DurabilityOverhead = -1
}

// CompareBaseline records busy-cycle inflation against a bare run of the
// same workload (model "none").
func (rep *Report) CompareBaseline(base *Report) {
	if base != nil && base.BusyCycles > 0 {
		rep.DurabilityOverhead = float64(rep.BusyCycles)/float64(base.BusyCycles) - 1
	}
}

// Render writes the human-readable report.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "serve: model=%s policy=%s seed=%d\n", rep.Model, rep.Policy, rep.Seed)
	fmt.Fprintf(w, "  %d launches over %d cycles (busy %d, drain %d", rep.Launches, rep.EndCycle, rep.BusyCycles, rep.DrainCycles)
	if rep.Recoveries > 0 {
		fmt.Fprintf(w, ", %d recoveries costing %d", rep.Recoveries, rep.RecoveryCycles)
	}
	fmt.Fprintf(w, ")\n")
	if rep.DurabilityOverhead >= 0 {
		fmt.Fprintf(w, "  durability overhead vs bare: +%.2f%%\n", rep.DurabilityOverhead*100)
	}
	tw := newTextTable("class", "budget", "offered", "admit", "drop", "done", "p50", "p95", "p99", "max", "slo-ok", "goodput/Mcyc")
	for _, c := range rep.Classes {
		tw.row(
			c.Class,
			fmt.Sprint(c.BudgetCycles),
			fmt.Sprint(c.Offered),
			fmt.Sprint(c.Admitted),
			fmt.Sprint(c.Dropped),
			fmt.Sprint(c.Completed),
			fmt.Sprint(c.P50),
			fmt.Sprint(c.P95),
			fmt.Sprint(c.P99),
			fmt.Sprint(c.MaxLatency),
			fmt.Sprintf("%.1f%%", c.SLOFrac*100),
			fmt.Sprintf("%.2f", c.GoodputPerMCycle),
		)
	}
	tw.render(w, "  ")
}

// String renders the report to a string (the determinism pins compare
// these byte-for-byte).
func (rep *Report) String() string {
	var sb strings.Builder
	rep.Render(&sb)
	return sb.String()
}

// textTable is a minimal aligned-column renderer (serve cannot import
// the harness, which sits above it).
type textTable struct {
	head []string
	rows [][]string
}

func newTextTable(head ...string) *textTable { return &textTable{head: head} }

func (t *textTable) row(cells ...string) {
	if len(cells) != len(t.head) {
		panic("serve: table row width mismatch")
	}
	t.rows = append(t.rows, cells)
}

func (t *textTable) render(w io.Writer, indent string) {
	width := make([]int, len(t.head))
	for i, h := range t.head {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, indent)
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", width[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.head)
	for _, r := range t.rows {
		line(r)
	}
}
