package serve

import "testing"

func req(id int, key uint64) Request {
	return Request{ID: id, Op: OpInsert, Key: key, Val: uint64(id) + 1}
}

// TestBatcherNeverEmptyNeverOversized pins the two launchability
// invariants: Take returns 1..max requests whenever the queue is
// non-empty, and never an empty slice.
func TestBatcherNeverEmptyNeverOversized(t *testing.T) {
	b := NewBatcher(4)
	for i := 0; i < 11; i++ {
		b.Add(req(i, uint64(100+i)), int64(i))
	}
	sizes := []int{}
	for b.Len() > 0 {
		batch := b.Take()
		if len(batch) == 0 {
			t.Fatal("Take returned an empty batch with a non-empty queue")
		}
		if len(batch) > 4 {
			t.Fatalf("Take returned %d > max 4", len(batch))
		}
		sizes = append(sizes, len(batch))
	}
	if want := []int{4, 4, 3}; len(sizes) != 3 || sizes[0] != want[0] || sizes[1] != want[1] || sizes[2] != want[2] {
		t.Errorf("batch sizes %v, want [4 4 3]", sizes)
	}
	if b.Take() != nil {
		t.Error("Take on an empty batcher returned a batch")
	}
}

// TestBatcherDefersKeyConflicts: two operations on one key never share a
// batch, and the deferred request keeps its FIFO position among the
// leftovers.
func TestBatcherDefersKeyConflicts(t *testing.T) {
	b := NewBatcher(8)
	b.Add(req(0, 7), 0)
	b.Add(req(1, 9), 1)
	b.Add(req(2, 7), 2) // conflicts with ID 0
	b.Add(req(3, 5), 3)
	b.Add(req(4, 7), 4) // conflicts again

	first := b.Take()
	if len(first) != 3 || first[0].req.ID != 0 || first[1].req.ID != 1 || first[2].req.ID != 3 {
		t.Fatalf("first batch IDs wrong: %+v", first)
	}
	second := b.Take()
	if len(second) != 1 || second[0].req.ID != 2 {
		t.Fatalf("second batch should carry the older conflict (ID 2): %+v", second)
	}
	third := b.Take()
	if len(third) != 1 || third[0].req.ID != 4 {
		t.Fatalf("third batch should carry ID 4: %+v", third)
	}
}

// TestBatcherConflictHeadAlwaysProgresses: even a queue of operations on
// a single key drains one per batch — no livelock, no empty batch.
func TestBatcherConflictHeadAlwaysProgresses(t *testing.T) {
	b := NewBatcher(4)
	for i := 0; i < 5; i++ {
		b.Add(req(i, 42), int64(i))
	}
	for want := 0; want < 5; want++ {
		batch := b.Take()
		if len(batch) != 1 || batch[0].req.ID != want {
			t.Fatalf("single-key drain batch %d: %+v", want, batch)
		}
	}
	if b.Len() != 0 {
		t.Errorf("%d requests left after drain", b.Len())
	}
}

// TestBatcherOldestAdmit feeds the deadline logic.
func TestBatcherOldestAdmit(t *testing.T) {
	b := NewBatcher(2)
	b.Add(req(0, 1), 100)
	b.Add(req(1, 2), 200)
	if got := b.OldestAdmit(); got != 100 {
		t.Errorf("OldestAdmit = %d, want 100", got)
	}
	b.Take()
	b.Add(req(2, 3), 300)
	if got := b.OldestAdmit(); got != 300 {
		t.Errorf("OldestAdmit after drain = %d, want 300", got)
	}
}

func TestBatcherRejectsNonPositiveCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatcher(0) did not panic")
		}
	}()
	NewBatcher(0)
}
