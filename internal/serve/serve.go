// Package serve is the MEGA-KV serving layer: the front-end that turns
// the paper's batch kernel (internal/megakv, §VII-4) into a service under
// a million-user-shaped load. A seeded open/closed-loop generator emits
// client requests with Poisson or Gamma inter-arrival processes, an
// admission policy accepts or sheds them, a batcher coalesces admitted
// requests into conflict-free MEGA-KV kernel launches on the gpusim/
// memsim stack with a selectable persistency model (internal/pmodel)
// underneath, and a virtual-time serving loop reports per-SLO-class
// latency percentiles, goodput, admission drops, and durability
// overhead.
//
// Everything runs in simulated cycles — no wall-clock reads, no global
// randomness — so a serving run is a pure function of its Config:
// byte-identical across reruns, across gpusim Workers settings, and
// across host parallelism. Each batch boundary is an epoch boundary
// (dirty lines drained, model metadata advanced or truncated), which is
// what makes a mid-serving crash recoverable to the bit by the selected
// model.
package serve

import (
	"errors"
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Op is one MEGA-KV request operation.
type Op uint8

const (
	// OpNop pads partially filled batch slots; it stores a zero result.
	OpNop Op = iota
	// OpSearch looks a key up and persists the found value (0 on miss).
	OpSearch
	// OpInsert adds or overwrites a key.
	OpInsert
	// OpDelete tombstones a key.
	OpDelete
	numOps
)

func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request is one client operation flowing through the pipeline.
type Request struct {
	// ID is the global arrival sequence number (merged stream order).
	ID int
	// Client indexes Config.Clients; Class indexes Config.Classes.
	Client int
	Class  int
	Op     Op
	Key    uint64
	Val    uint64
	// Arrival is the request's arrival time in device cycles.
	Arrival int64
}

// SLOClass is one service-level objective bucket.
type SLOClass struct {
	// Name labels the class in reports ("interactive", "bulk", ...).
	Name string
	// BudgetCycles is the end-to-end latency budget; completions within
	// it count toward goodput.
	BudgetCycles int64
}

// ClientSpec describes one load-generating client.
type ClientSpec struct {
	// Name labels the client in traces.
	Name string
	// Class indexes Config.Classes.
	Class int
	// Process selects the inter-arrival distribution: "poisson"
	// (exponential gaps) or "gamma" (Erlang gaps of Shape stages).
	Process string
	// RatePerMCycle is the mean arrival rate in requests per million
	// cycles; the mean inter-arrival gap is 1e6/RatePerMCycle.
	RatePerMCycle float64
	// Shape is the Erlang stage count for "gamma" (ignored for
	// "poisson"; 0 means 2).
	Shape int
	// SearchW, InsertW, DeleteW weight the operation mix.
	SearchW, InsertW, DeleteW int
	// Closed switches the client to closed-loop: it keeps exactly one
	// request outstanding and thinks for a random exponential gap of
	// mean ThinkCycles between a completion and its next arrival.
	Closed bool
	// ThinkCycles is the closed-loop mean think time.
	ThinkCycles float64
}

// Config is a complete, deterministic description of one serving run.
type Config struct {
	// Seed drives every random draw in the run.
	Seed uint64
	// HorizonCycles is the arrival horizon: no request arrives after it
	// (in-flight work still completes, so reports cover every admitted
	// request).
	HorizonCycles int64
	// Classes are the SLO buckets; Clients generate the load.
	Classes []SLOClass
	Clients []ClientSpec
	// MaxBatch caps requests per kernel launch; it must be a positive
	// multiple of BlockThreads (padding slots run OpNop).
	MaxBatch int
	// MaxWaitCycles is the batching deadline: a non-empty batch launches
	// once its oldest admitted request has waited this long.
	MaxWaitCycles int64
	// LaunchOverheadCycles is the fixed host-side cost charged per
	// kernel launch (driver + dispatch).
	LaunchOverheadCycles int64
	// KeySpace is the client key universe (keys are 1..KeySpace).
	KeySpace uint64
	// StoreBuckets sizes the MEGA-KV index (rounded up to a power of
	// two; capacity is 8 slots per bucket).
	StoreBuckets int
	// Model names the persistency model protecting the store: a pmodel
	// registry name, or ""/"none" for bare (non-persistent) launches.
	Model string
	// Policy names the admission policy ("always-admit", "token-bucket").
	Policy string
	// AdmitRatePerMCycle and AdmitBurst parameterize the token bucket:
	// sustained admitted requests per million cycles and bucket depth.
	AdmitRatePerMCycle float64
	AdmitBurst         int
	// Dev and Mem configure the simulated device (zero values select the
	// package defaults).
	Dev gpusim.Config
	Mem memsim.Config
	// LP is the Lazy Persistency design point (nil = core.DefaultConfig).
	LP *core.Config
	// CrashAtLaunch, when positive, crashes the memory system (volatile
	// loss) mid-way through the Nth kernel launch of the run, after
	// CrashAfterBlocks thread blocks (default 1); the serving loop then
	// runs the model's recovery and keeps serving.
	CrashAtLaunch    int
	CrashAfterBlocks int
	// ObserveAtLaunch, when positive, snapshots the durable output
	// images right after the Nth launch's epoch drain (and, for the
	// crashed launch, after recovery). The crash campaign compares a
	// crashed run's snapshot against a crash-free run's at the same
	// launch — the instant both runs have served exactly the same
	// requests — which is the bit-exact recovery witness. (Later batches
	// re-batch around the recovery stall, so final slot-indexed scratch
	// may differ while the admission ledger still verifies.)
	ObserveAtLaunch int
}

// BlockThreads is the serving kernel's thread-block width, matching the
// batch kernels in internal/kernels (one thread per operation).
const BlockThreads = 128

// ErrConfig wraps every configuration validation failure.
var ErrConfig = errors.New("serve: invalid config")

// ErrLedger wraps every admission-ledger consistency violation: the
// durable store disagreed with what the admitted request stream implies.
var ErrLedger = errors.New("serve: ledger violation")

// DefaultConfig returns a small but fully featured serving run: two SLO
// classes, two open-loop clients (Poisson and Gamma) plus one
// closed-loop client, a token-bucket-ready rate, and the LP model's
// device defaults scaled down to keep a sweep fast.
func DefaultConfig() Config {
	dev := gpusim.DefaultConfig()
	dev.NumSMs = 8
	return Config{
		Seed:          1,
		HorizonCycles: 2_000_000,
		Classes: []SLOClass{
			{Name: "interactive", BudgetCycles: 60_000},
			{Name: "bulk", BudgetCycles: 250_000},
		},
		Clients: []ClientSpec{
			{Name: "web", Class: 0, Process: "poisson", RatePerMCycle: 60,
				SearchW: 7, InsertW: 2, DeleteW: 1},
			{Name: "loader", Class: 1, Process: "gamma", Shape: 3, RatePerMCycle: 30,
				SearchW: 2, InsertW: 6, DeleteW: 2},
			{Name: "replayer", Class: 1, Process: "poisson", Closed: true, ThinkCycles: 25_000,
				SearchW: 5, InsertW: 3, DeleteW: 2},
		},
		MaxBatch:             256,
		MaxWaitCycles:        15_000,
		LaunchOverheadCycles: 2_000,
		KeySpace:             4_096,
		StoreBuckets:         1_024,
		Model:                "lp",
		Policy:               "always-admit",
		AdmitRatePerMCycle:   70,
		AdmitBurst:           32,
		Dev:                  dev,
		Mem:                  memsim.DefaultConfig(),
	}
}

// Validate reports the first configuration problem, wrapped in
// ErrConfig, or nil.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrConfig, fmt.Sprintf(format, args...))
	}
	if c.HorizonCycles <= 0 {
		return fail("HorizonCycles must be positive")
	}
	if len(c.Classes) == 0 {
		return fail("at least one SLO class required")
	}
	for i, cl := range c.Classes {
		if cl.Name == "" {
			return fail("class %d has no name", i)
		}
		if cl.BudgetCycles <= 0 {
			return fail("class %q BudgetCycles must be positive", cl.Name)
		}
	}
	if len(c.Clients) == 0 {
		return fail("at least one client required")
	}
	for i, cs := range c.Clients {
		if cs.Class < 0 || cs.Class >= len(c.Classes) {
			return fail("client %d references class %d of %d", i, cs.Class, len(c.Classes))
		}
		if cs.SearchW < 0 || cs.InsertW < 0 || cs.DeleteW < 0 || cs.SearchW+cs.InsertW+cs.DeleteW <= 0 {
			return fail("client %d needs a non-negative op mix with positive total", i)
		}
		if cs.Closed {
			if cs.ThinkCycles <= 0 {
				return fail("closed-loop client %d needs positive ThinkCycles", i)
			}
		} else {
			if cs.RatePerMCycle <= 0 {
				return fail("open-loop client %d needs positive RatePerMCycle", i)
			}
			switch cs.Process {
			case "poisson":
			case "gamma":
				if cs.Shape < 0 {
					return fail("client %d Shape must be non-negative", i)
				}
			default:
				return fail("client %d has unknown process %q (poisson, gamma)", i, cs.Process)
			}
		}
	}
	if c.MaxBatch <= 0 || c.MaxBatch%BlockThreads != 0 {
		return fail("MaxBatch must be a positive multiple of %d, got %d", BlockThreads, c.MaxBatch)
	}
	if c.MaxWaitCycles <= 0 {
		return fail("MaxWaitCycles must be positive")
	}
	if c.LaunchOverheadCycles < 0 {
		return fail("LaunchOverheadCycles must be non-negative")
	}
	if c.KeySpace < 1 || c.KeySpace >= ^uint64(0)-1 {
		return fail("KeySpace must be in [1, 2^64-2)")
	}
	if c.StoreBuckets <= 0 {
		return fail("StoreBuckets must be positive")
	}
	if !modelKnown(c.Model) {
		return fail("unknown persistency model %q", c.Model)
	}
	if _, ok := LookupPolicy(c.Policy); !ok {
		return fail("unknown admission policy %q (registered: %v)", c.Policy, PolicyNames())
	}
	if c.Policy == "token-bucket" {
		if c.AdmitRatePerMCycle <= 0 {
			return fail("token-bucket needs positive AdmitRatePerMCycle")
		}
		if c.AdmitBurst <= 0 {
			return fail("token-bucket needs positive AdmitBurst")
		}
	}
	if c.CrashAtLaunch < 0 {
		return fail("CrashAtLaunch must be non-negative")
	}
	if c.ObserveAtLaunch < 0 {
		return fail("ObserveAtLaunch must be non-negative")
	}
	if c.CrashAtLaunch > 0 && bareModel(c.Model) {
		return fail("CrashAtLaunch requires a persistency model, got %q", c.Model)
	}
	return nil
}
