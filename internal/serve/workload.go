package serve

import (
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/megakv"
	"gpulp/internal/memsim"
)

// workload.go adapts MEGA-KV batches to the pmodel.Workload contract
// with *mutable batch contents*: the persistency model binds once (its
// metadata is allocated once), and the serving loop re-fills the input
// regions before every launch. The fixed geometry — MaxBatch threads,
// one per batch slot, padded with nops — is what lets one model instance
// span the whole serving run.

// Device-visible result words. Every thread writes its result slot every
// batch, so the results region is fully re-covered each epoch and the
// recovery recompute can re-fold any slot from durable state alone.
const (
	// ResultInsertOK / ResultDeleteAck acknowledge a mutation.
	ResultInsertOK  = uint64(1)
	ResultDeleteAck = uint64(1)
	// ResultOverflow reports an insert that found its bucket full; the
	// request is answered (shed at the store), not lost.
	ResultOverflow = uint64(0xFF00_0F1C)
)

// servePoison is folded by the recompute when durable state contradicts
// a slot's recorded outcome (cf. kernels' deleteMissMarker).
const servePoison = 0xBAD5_EEDE

// batchWorkload implements pmodel.Workload over the current batch.
type batchWorkload struct {
	dev      *gpusim.Device
	store    *megakv.Store
	maxBatch int

	// ops/keys/vals are host-written (durably) before each launch;
	// results and the store are the device-written persistent outputs.
	ops     memsim.Region
	keys    memsim.Region
	vals    memsim.Region
	results memsim.Region

	opsBuf, keysBuf, valsBuf []uint64
}

func newBatchWorkload(dev *gpusim.Device, storeBuckets, maxBatch int) *batchWorkload {
	w := &batchWorkload{
		dev:      dev,
		store:    megakv.NewStore(dev, storeBuckets),
		maxBatch: maxBatch,
		ops:      dev.Alloc("serve.ops", maxBatch*8),
		keys:     dev.Alloc("serve.keys", maxBatch*8),
		vals:     dev.Alloc("serve.vals", maxBatch*8),
		results:  dev.Alloc("serve.results", maxBatch*8),
		opsBuf:   make([]uint64, maxBatch),
		keysBuf:  make([]uint64, maxBatch),
		valsBuf:  make([]uint64, maxBatch),
	}
	w.ops.HostZero()
	w.keys.HostZero()
	w.vals.HostZero()
	w.results.HostZero()
	return w
}

func (w *batchWorkload) Name() string { return "megakv-serve" }

func (w *batchWorkload) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D1(w.maxBatch / BlockThreads), gpusim.D1(BlockThreads)
}

// SetBatch stages the batch inputs with direct durable writes (HostWrite
// bypasses the volatile cache), so a crash during the launch can never
// lose the inputs recovery re-executes from.
func (w *batchWorkload) SetBatch(batch []pendingReq) {
	for i := range w.opsBuf {
		w.opsBuf[i], w.keysBuf[i], w.valsBuf[i] = 0, 0, 0
	}
	for i, p := range batch {
		w.opsBuf[i] = uint64(p.req.Op)
		w.keysBuf[i] = p.req.Key
		w.valsBuf[i] = p.req.Val
	}
	w.ops.HostWriteU64s(w.opsBuf)
	w.keys.HostWriteU64s(w.keysBuf)
	w.vals.HostWriteU64s(w.valsBuf)
}

// Store exposes the underlying index (ledger verification).
func (w *batchWorkload) Store() *megakv.Store { return w.store }

// Result reads batch slot i's coherent result word.
func (w *batchWorkload) Result(i int) uint64 { return w.results.PeekU64(i) }

func (w *batchWorkload) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			i := t.GlobalLinear()
			op := Op(t.LoadU64(w.ops, i))
			key := t.LoadU64(w.keys, i)
			switch op {
			case OpSearch:
				val, _ := w.store.Search(t, key)
				t.StoreU64(w.results, i, val)
				r.Update(t, uint32(val)^uint32(val>>32))
			case OpInsert:
				val := t.LoadU64(w.vals, i)
				res := ResultInsertOK
				if !w.store.Insert(t, key, val) {
					res = ResultOverflow
				}
				t.StoreU64(w.results, i, res)
				r.Update(t, uint32(key)^uint32(val)^uint32(res))
			case OpDelete:
				w.store.Delete(t, key)
				t.StoreU64(w.results, i, ResultDeleteAck)
				r.Update(t, uint32(key)^uint32(ResultDeleteAck))
			default: // OpNop pad
				t.StoreU64(w.results, i, 0)
				r.Update(t, 0)
			}
		})
		r.Commit()
	}
}

// Recompute re-folds a slot's checksum contribution from durable state
// alone: the recorded result word plus the store's current answer. Any
// contradiction — an acknowledged insert whose key is missing, a deleted
// key still present, a result word that can't have been written — folds
// servePoison, forcing a mismatch and selective re-execution.
func (w *batchWorkload) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			i := t.GlobalLinear()
			op := Op(t.LoadU64(w.ops, i))
			key := t.LoadU64(w.keys, i)
			res := t.LoadU64(w.results, i)
			switch op {
			case OpSearch:
				r.Update(t, uint32(res)^uint32(res>>32))
			case OpInsert:
				switch res {
				case ResultInsertOK:
					val, ok := w.store.Search(t, key)
					if !ok {
						r.Update(t, servePoison) // acknowledged insert lost
						return
					}
					r.Update(t, uint32(key)^uint32(val)^uint32(res))
				case ResultOverflow:
					if _, ok := w.store.Search(t, key); ok {
						r.Update(t, servePoison) // overflow implies absence
						return
					}
					val := t.LoadU64(w.vals, i)
					r.Update(t, uint32(key)^uint32(val)^uint32(res))
				default:
					r.Update(t, servePoison) // result word lost
				}
			case OpDelete:
				if res != ResultDeleteAck {
					r.Update(t, servePoison)
					return
				}
				if _, ok := w.store.Search(t, key); ok {
					r.Update(t, servePoison) // tombstone lost
					return
				}
				r.Update(t, uint32(key)^uint32(ResultDeleteAck))
			default:
				r.Update(t, uint32(res))
			}
		})
	}
}

// Outputs lists the persistent regions a model protects: the per-slot
// results and the index itself.
func (w *batchWorkload) Outputs() []memsim.Region {
	return []memsim.Region{w.results, w.store.Region()}
}
