package gpusim

// wordTimeline tracks unsynchronized ("racy") accesses per 32-byte memory
// sector during the functional pass, to deterministically surface the
// data races a check-then-act sequence suffers when atomics are removed
// (§IV-D.3). Atomic and lock queueing is not modeled here — it is
// computed after the launch by the time-ordered sweep in schedule.go.
type wordTimeline struct {
	touchAt map[uint64]touchRec
}

type touchRec struct {
	when  int64
	actor int
}

func newWordTimeline() *wordTimeline {
	return &wordTimeline{touchAt: make(map[uint64]touchRec)}
}

func (w *wordTimeline) reset() {
	clear(w.touchAt)
}

// touch records an unsynchronized access to addr at time now by actor and
// reports whether a *different* actor hit the same sector within the
// preceding window cycles. An actor's own repeated touches never race
// with themselves.
func (w *wordTimeline) touch(addr uint64, now, window int64, actor int) bool {
	last, seen := w.touchAt[addr]
	w.touchAt[addr] = touchRec{when: now, actor: actor}
	return seen && last.actor != actor && now-last.when <= window
}

// Lock is a simulated device-wide spin lock: a FIFO resource in simulated
// time. Threads acquire it via Thread.LockAcquire / LockRelease; the
// queueing is resolved by the post-launch sweep from the measured
// critical-section lengths.
type Lock struct {
	name string
	id   int

	acquisitions int64
	contended    int64
}

// Name returns the lock's diagnostic name.
func (l *Lock) Name() string { return l.name }

// Acquisitions returns how many times the lock was taken during the last
// launch; Contended how many of those had to wait.
func (l *Lock) Acquisitions() int64 { return l.acquisitions }

// Contended returns the number of contended acquisitions.
func (l *Lock) Contended() int64 { return l.contended }

func (l *Lock) reset() {
	l.acquisitions = 0
	l.contended = 0
}
