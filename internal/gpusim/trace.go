package gpusim

// BlockTrace records the timing reconstruction of one executed block.
type BlockTrace struct {
	// LinearIdx is the block's grid-linear index.
	LinearIdx int `json:"block"`
	// Start is the scheduled start cycle; Base the block's cycles
	// excluding queueing; Stall its total queueing delay.
	Start int64 `json:"start"`
	Base  int64 `json:"base"`
	Stall int64 `json:"stall"`
	// Events is the number of serialization events (atomics + lock
	// acquisitions) the block issued.
	Events int `json:"events"`
}

// End returns the block's completion cycle.
func (b BlockTrace) End() int64 { return b.Start + b.Base + b.Stall }

// LaunchTrace is the per-block timing breakdown of one launch, emitted to
// the device's trace sink (SetTraceSink). It is the raw material behind
// the experiment tables: per-block stalls expose exactly where checksum
// insertion serializes.
type LaunchTrace struct {
	// Name is the kernel name; Cycles the launch duration.
	Name   string       `json:"name"`
	Cycles int64        `json:"cycles"`
	Blocks []BlockTrace `json:"blocks"`
}

// TotalStall sums queueing delays over all blocks.
func (t LaunchTrace) TotalStall() int64 {
	var s int64
	for _, b := range t.Blocks {
		s += b.Stall
	}
	return s
}

// MaxEnd returns the latest block completion (equals Cycles).
func (t LaunchTrace) MaxEnd() int64 {
	var m int64
	for _, b := range t.Blocks {
		if e := b.End(); e > m {
			m = e
		}
	}
	return m
}

// SetTraceSink installs a callback receiving a LaunchTrace after every
// launch (nil to disable). Returns the previous sink.
func (d *Device) SetTraceSink(sink func(LaunchTrace)) func(LaunchTrace) {
	prev := d.traceSink
	d.traceSink = sink
	return prev
}

// emitTrace builds and delivers the trace for a completed launch.
func (d *Device) emitTrace(name string, order []int, recs []blockRec, cycles int64) {
	if d.traceSink == nil {
		return
	}
	tr := LaunchTrace{Name: name, Cycles: cycles, Blocks: make([]BlockTrace, len(recs))}
	for i, rec := range recs {
		tr.Blocks[i] = BlockTrace{
			LinearIdx: order[i],
			Start:     rec.start,
			Base:      rec.base,
			Stall:     rec.stall,
			Events:    len(rec.events),
		}
	}
	d.traceSink(tr)
}
