// Typed error surface of the simulator: configuration validation
// (matching the memsim convention — New returns an error, MustNew
// panics) and the watchdog abort raised when a kernel livelocks.
package gpusim

import (
	"errors"
	"fmt"
)

// ErrConfig is the sentinel all configuration errors wrap, so callers can
// test errors.Is(err, gpusim.ErrConfig) without matching field details.
var ErrConfig = errors.New("gpusim: invalid configuration")

// ConfigError reports one invalid Config field.
type ConfigError struct {
	// Field is the Config field name; Reason describes the constraint it
	// violated.
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("gpusim: invalid %s: %s", e.Field, e.Reason)
}

// Unwrap ties every ConfigError to the ErrConfig sentinel.
func (e *ConfigError) Unwrap() error { return ErrConfig }

// ErrWatchdog is the sentinel every watchdog abort wraps, so callers can
// test errors.Is(err, gpusim.ErrWatchdog) to distinguish a converted
// livelock from other launch failures.
var ErrWatchdog = errors.New("gpusim: kernel watchdog abort")

// WatchdogError reports a kernel aborted by the bounded-step hang
// detector: some thread exceeded Config.WatchdogSteps charged steps
// inside one block — the simulator's deterministic proxy for a wall-clock
// hang, e.g. a spin lock whose memory word is pinned by a stuck-at media
// fault. The launch is converted into a consistent crash image (all
// volatile state dropped), so ordinary recovery can proceed; Block names
// the culprit so a recovery orchestrator can quarantine its regions.
type WatchdogError struct {
	// Kernel is the launch name; Block/Thread locate the runaway thread
	// (linear block index in the grid, linear thread index in the block).
	Kernel string
	Block  int
	Thread int
	// Steps is the charged-step count that tripped the budget.
	Steps int64
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("gpusim: watchdog abort in kernel %q: block %d thread %d exceeded %d steps",
		e.Kernel, e.Block, e.Thread, e.Steps)
}

// Unwrap ties every WatchdogError to the ErrWatchdog sentinel.
func (e *WatchdogError) Unwrap() error { return ErrWatchdog }

// watchdogAbort is the panic payload that unwinds a hung kernel out of
// the functional pass; the engines recover it and convert it into a
// LaunchResult.Watchdog abort.
type watchdogAbort struct{ err *WatchdogError }

// runBlockGuarded runs kernel(b), converting a watchdog abort into a
// returned *WatchdogError. Every other panic propagates unchanged.
func runBlockGuarded(kernel KernelFunc, b *Block) (wd *WatchdogError) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(watchdogAbort)
			if !ok {
				panic(r)
			}
			wd = a.err
		}
	}()
	kernel(b)
	return nil
}
