package gpusim

import (
	"encoding/json"
	"testing"
)

func TestTraceEmitted(t *testing.T) {
	d := testDevice()
	var traces []LaunchTrace
	d.SetTraceSink(func(tr LaunchTrace) { traces = append(traces, tr) })

	tbl := d.Alloc("tbl", 1024*8)
	tbl.HostZero()
	res := d.Launch("traced", D1(16), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.Op(50)
			if th.Linear == 0 {
				th.AtomicCASU64(tbl, b.LinearIdx*4, 0, 1)
			}
		})
	})

	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Name != "traced" || len(tr.Blocks) != 16 {
		t.Fatalf("trace shape wrong: %s, %d blocks", tr.Name, len(tr.Blocks))
	}
	if tr.Cycles != res.Cycles || tr.MaxEnd() != res.Cycles {
		t.Errorf("trace cycles %d / maxEnd %d != launch cycles %d", tr.Cycles, tr.MaxEnd(), res.Cycles)
	}
	seen := map[int]bool{}
	for _, b := range tr.Blocks {
		if b.Base <= 0 || b.Start < 0 || b.Stall < 0 {
			t.Errorf("block %d has bad timing: %+v", b.LinearIdx, b)
		}
		if b.Events != 1 {
			t.Errorf("block %d events = %d, want 1", b.LinearIdx, b.Events)
		}
		seen[b.LinearIdx] = true
	}
	if len(seen) != 16 {
		t.Errorf("trace covered %d distinct blocks", len(seen))
	}
}

func TestTraceStallAccounting(t *testing.T) {
	d := testDevice()
	var tr LaunchTrace
	d.SetTraceSink(func(t LaunchTrace) { tr = t })
	hot := d.Alloc("hot", 8)
	hot.HostZero()
	res := d.Launch("contended", D1(32), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) { th.AtomicAddI32(hot, 0, 1) })
	})
	if got := tr.TotalStall(); got != res.AtomicStallCycles {
		t.Errorf("trace TotalStall = %d, launch AtomicStallCycles = %d", got, res.AtomicStallCycles)
	}
	if tr.TotalStall() == 0 {
		t.Error("same-address atomic storm produced no recorded stalls")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	d := testDevice()
	var tr LaunchTrace
	d.SetTraceSink(func(t LaunchTrace) { tr = t })
	d.Launch("j", D1(2), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(1) })
	})
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back LaunchTrace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || len(back.Blocks) != len(tr.Blocks) {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestTraceSinkRestore(t *testing.T) {
	d := testDevice()
	f := func(LaunchTrace) {}
	if prev := d.SetTraceSink(f); prev != nil {
		t.Error("fresh device had a sink")
	}
	if prev := d.SetTraceSink(nil); prev == nil {
		t.Error("SetTraceSink did not return the previous sink")
	}
	// With sink removed, launches must not panic.
	d.Launch("quiet", D1(1), D1(32), func(b *Block) { b.ForAll(func(th *Thread) {}) })
}
