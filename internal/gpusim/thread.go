package gpusim

import (
	"fmt"
	"math"

	"gpulp/internal/memsim"
)

// Thread is the per-thread view inside a Block.ForAll phase. All methods
// charge the timing model as a side effect of their functional behaviour.
type Thread struct {
	b *Block
	// Idx is the thread index within the block; Linear its linearization;
	// WarpID/Lane locate it within its warp.
	Idx    Dim3
	Linear int
	WarpID int
	Lane   int

	instrs      int64
	l2Bytes     int64
	nvmBytes    int64
	atomicStall int64 // exposed latency charged via Stall

	lockHeld       *Lock
	lockEventIdx   int
	lockStartInstr int64
}

// Block returns the enclosing block context.
func (t *Thread) Block() *Block { return t.b }

// GlobalLinear returns the grid-wide linear thread id.
func (t *Thread) GlobalLinear() int {
	return t.b.LinearIdx*t.b.BlockDim.Size() + t.Linear
}

// Op charges n ALU (or shared-memory) instructions.
func (t *Thread) Op(n int) {
	t.instrs += int64(n)
	t.wdCheck()
}

// wdCheck trips the kernel watchdog when this thread's charged
// instruction count exceeds Config.WatchdogSteps (0 disables). Every
// functional charge path calls it, so a spin loop — whose every
// iteration charges at least one instruction — cannot livelock the
// simulator: the abort unwinds as a watchdogAbort panic that the
// engines convert into a typed LaunchResult.Watchdog. The count is part
// of the deterministic functional pass, so the abort point is
// bit-identical across Workers settings (a speculative trip is absorbed
// into re-execution, where it re-trips at the same charged step).
func (t *Thread) wdCheck() {
	budget := t.b.dev.cfg.WatchdogSteps
	if budget > 0 && t.instrs > budget {
		panic(watchdogAbort{&WatchdogError{
			Kernel: t.b.dev.launchName,
			Block:  t.b.LinearIdx,
			Thread: t.Linear,
			Steps:  t.instrs,
		}})
	}
}

// Stall charges n cycles of exposed (non-hidable) latency — e.g. a chain
// of dependent memory round trips whose results gate the thread's next
// action, which the warp scheduler cannot cover with other work.
func (t *Thread) Stall(n int64) { t.atomicStall += n }

// now returns the thread's current simulated absolute time, approximating
// intra-phase progress by its instruction count. It uses the pass-1
// (zero-queueing) schedule, which is all that is available while the
// functional pass runs.
func (t *Thread) now() int64 {
	return t.b.startTime + t.b.cycles + t.instrs + t.atomicStall
}

const sectorBytes = 32 // L2 transaction granularity

// checksumBitsF32 is the Fig. 2 float-to-integer conversion used when a
// hooked float store is folded into a checksum.
func checksumBitsF32(v float32) uint32 {
	return math.Float32bits(v)
}

func (t *Thread) chargeAccess(res memsim.AccessResult) {
	t.instrs++
	t.l2Bytes += sectorBytes
	t.nvmBytes += int64(res.Bytes(t.b.dev.mem.Config().LineSize))
	t.wdCheck()
}

// storeHook returns the hook observing this thread's data stores: the
// per-block hook when one is installed, else the device-level hook.
func (t *Thread) storeHook() StoreHook {
	if h := t.b.storeHook; h != nil {
		return h
	}
	return t.b.dev.storeHook
}

// --- Speculative access path (Config.Workers > 1; see spec.go) ---

// specLoad performs a load against the block's speculative view (snapshot
// plus private overlay), traces it, and charges the cache-independent
// costs. NVM traffic is charged later, at replay, from real access
// results.
func (t *Thread) specLoad(kind memsim.AccessKind, r memsim.Region, idx, size int) uint64 {
	s := t.b.spec
	addr := specAddr(r, idx, size)
	var v uint64
	if size == 4 {
		v = uint64(s.read32(addr))
	} else {
		v = s.read64(addr)
	}
	s.curOps = append(s.curOps, specOp{op: opLoad, size: uint8(size), charged: true, kind: kind, addr: addr, val: v})
	t.instrs++
	t.l2Bytes += sectorBytes
	t.wdCheck()
	return v
}

// specStore applies a store to the block's private overlay and traces it.
// charged is false for the functional store half of an atomic, which the
// serial engine performs but never charges.
func (t *Thread) specStore(kind memsim.AccessKind, r memsim.Region, idx, size int, v uint64, charged bool) {
	s := t.b.spec
	addr := specAddr(r, idx, size)
	s.write(addr, size, v)
	s.curOps = append(s.curOps, specOp{op: opStore, size: uint8(size), charged: charged, kind: kind, addr: addr, val: v})
	if charged {
		t.instrs++
		t.l2Bytes += sectorBytes
		t.wdCheck()
	}
}

// --- Global memory: data accesses ---

// LoadF32 loads element idx of r as kernel data.
func (t *Thread) LoadF32(r memsim.Region, idx int) float32 {
	if t.b.spec != nil {
		return math.Float32frombits(uint32(t.specLoad(memsim.AccessData, r, idx, 4)))
	}
	v, res := r.LoadF32(memsim.AccessData, idx)
	t.chargeAccess(res)
	return v
}

// StoreF32 stores v to element idx of r as kernel data.
func (t *Thread) StoreF32(r memsim.Region, idx int, v float32) {
	if t.b.spec != nil {
		t.specStore(memsim.AccessData, r, idx, 4, uint64(math.Float32bits(v)), true)
	} else {
		res := r.StoreF32(memsim.AccessData, idx, v)
		t.chargeAccess(res)
	}
	if h := t.storeHook(); h != nil {
		h(t, r, idx, checksumBitsF32(v))
	}
}

// LoadI32 loads element idx of r as kernel data.
func (t *Thread) LoadI32(r memsim.Region, idx int) int32 {
	if t.b.spec != nil {
		return int32(uint32(t.specLoad(memsim.AccessData, r, idx, 4)))
	}
	v, res := r.LoadI32(memsim.AccessData, idx)
	t.chargeAccess(res)
	return v
}

// StoreI32 stores v to element idx of r as kernel data.
func (t *Thread) StoreI32(r memsim.Region, idx int, v int32) {
	if t.b.spec != nil {
		t.specStore(memsim.AccessData, r, idx, 4, uint64(uint32(v)), true)
	} else {
		res := r.StoreI32(memsim.AccessData, idx, v)
		t.chargeAccess(res)
	}
	if h := t.storeHook(); h != nil {
		h(t, r, idx, uint32(v))
	}
}

// LoadU32 loads element idx of r as kernel data.
func (t *Thread) LoadU32(r memsim.Region, idx int) uint32 {
	if t.b.spec != nil {
		return uint32(t.specLoad(memsim.AccessData, r, idx, 4))
	}
	v, res := r.LoadU32(memsim.AccessData, idx)
	t.chargeAccess(res)
	return v
}

// StoreU32 stores v to element idx of r as kernel data.
func (t *Thread) StoreU32(r memsim.Region, idx int, v uint32) {
	if t.b.spec != nil {
		t.specStore(memsim.AccessData, r, idx, 4, uint64(v), true)
	} else {
		res := r.StoreU32(memsim.AccessData, idx, v)
		t.chargeAccess(res)
	}
	if h := t.storeHook(); h != nil {
		h(t, r, idx, v)
	}
}

// LoadU64 loads element idx of r as kernel data.
func (t *Thread) LoadU64(r memsim.Region, idx int) uint64 {
	if t.b.spec != nil {
		return t.specLoad(memsim.AccessData, r, idx, 8)
	}
	v, res := r.LoadU64(memsim.AccessData, idx)
	t.chargeAccess(res)
	return v
}

// StoreU64 stores v to element idx of r as kernel data. A store hook
// observes it as two 32-bit halves (low, then high), so directive-style
// instrumentation covers 64-bit persistent stores too.
func (t *Thread) StoreU64(r memsim.Region, idx int, v uint64) {
	if t.b.spec != nil {
		t.specStore(memsim.AccessData, r, idx, 8, v, true)
	} else {
		res := r.StoreU64(memsim.AccessData, idx, v)
		t.chargeAccess(res)
	}
	if h := t.storeHook(); h != nil {
		h(t, r, idx*2, uint32(v))
		h(t, r, idx*2+1, uint32(v>>32))
	}
}

// --- Global memory: tagged accesses (Lazy Persistency machinery) ---

// LoadU64K / StoreU64K are like LoadU64/StoreU64 but tag the access (used
// by the checksum table code so write amplification can be attributed).
func (t *Thread) LoadU64K(kind memsim.AccessKind, r memsim.Region, idx int) uint64 {
	if t.b.spec != nil {
		return t.specLoad(kind, r, idx, 8)
	}
	v, res := r.LoadU64(kind, idx)
	t.chargeAccess(res)
	return v
}

// StoreU64K stores a tagged uint64.
func (t *Thread) StoreU64K(kind memsim.AccessKind, r memsim.Region, idx int, v uint64) {
	if t.b.spec != nil {
		t.specStore(kind, r, idx, 8, v, true)
		return
	}
	res := r.StoreU64(kind, idx, v)
	t.chargeAccess(res)
}

// --- Persistency instructions (Eager Persistency baseline) ---

// FlushLine issues a cache-line write-back (clwb) for the line holding
// element idx (elemSize bytes each) of r, charging the NVM write traffic
// when the line was dirty. Lazy Persistency never uses this — it exists
// for the Eager Persistency comparison baseline.
func (t *Thread) FlushLine(r memsim.Region, byteOff int) {
	t.instrs++
	if s := t.b.spec; s != nil {
		// Whether the flush writes back depends on cache state at the
		// block's dispatch position; trace it and let replay perform the
		// real FlushAddr (charging the line if it was dirty).
		s.curOps = append(s.curOps, specOp{op: opFlush, addr: r.Base + uint64(byteOff)})
		return
	}
	if t.b.dev.mem.FlushAddr(r.Base + uint64(byteOff)) {
		t.nvmBytes += int64(t.b.dev.mem.Config().LineSize)
	}
}

// PersistBarrier models an s_fence/persist barrier: the thread stalls
// until its outstanding flushes reach the NVM. The charge is one NVM
// write latency of exposed stall (round-trip to the persistence domain).
func (t *Thread) PersistBarrier() {
	cfg := t.b.dev.cfg
	memCfg := t.b.dev.mem.Config()
	t.Stall(int64(memCfg.NVMWriteNS * cfg.ClockGHz))
}

// --- Atomics ---

// recordAtomic registers a serialization event for an atomic on the
// sector containing byte byteOff of r. The caller performs the
// read-modify-write functionally; queueing delays are computed after the
// launch by the global time-ordered sweep (see schedule.go).
func (t *Thread) recordAtomic(r memsim.Region, byteOff int) {
	addr := (r.Base + uint64(byteOff)) &^ (sectorBytes - 1)
	if s := t.b.spec; s != nil {
		s.curEv = append(s.curEv, specEvent{intra: t.instrs + t.atomicStall, addr: addr})
		return
	}
	t.b.events = append(t.b.events, opEvent{
		offset: t.b.cycles + t.instrs + t.atomicStall,
		addr:   addr,
	})
}

// AtomicCASU64 performs an atomic compare-and-swap on element idx of r,
// returning the old value. Models CUDA atomicCAS on the L2.
func (t *Thread) AtomicCASU64(r memsim.Region, idx int, compare, swap uint64) uint64 {
	t.recordAtomic(r, idx*8)
	if t.b.spec != nil {
		old := t.specLoad(memsim.AccessAtomic, r, idx, 8)
		if old == compare {
			t.specStore(memsim.AccessAtomic, r, idx, 8, swap, false)
		}
		return old
	}
	old, res := r.LoadU64(memsim.AccessAtomic, idx)
	if old == compare {
		r.StoreU64(memsim.AccessAtomic, idx, swap)
	}
	t.chargeAccess(res)
	return old
}

// AtomicExchU64 atomically exchanges element idx of r with v, returning
// the old value. Models CUDA atomicExch.
func (t *Thread) AtomicExchU64(r memsim.Region, idx int, v uint64) uint64 {
	t.recordAtomic(r, idx*8)
	if t.b.spec != nil {
		old := t.specLoad(memsim.AccessAtomic, r, idx, 8)
		t.specStore(memsim.AccessAtomic, r, idx, 8, v, false)
		return old
	}
	old, res := r.LoadU64(memsim.AccessAtomic, idx)
	r.StoreU64(memsim.AccessAtomic, idx, v)
	t.chargeAccess(res)
	return old
}

// AtomicAddI32 atomically adds v to element idx of r, returning the old
// value. Models CUDA atomicAdd on int.
func (t *Thread) AtomicAddI32(r memsim.Region, idx int, v int32) int32 {
	t.recordAtomic(r, idx*4)
	if t.b.spec != nil {
		old := int32(uint32(t.specLoad(memsim.AccessAtomic, r, idx, 4)))
		t.specStore(memsim.AccessAtomic, r, idx, 4, uint64(uint32(old+v)), false)
		return old
	}
	old, res := r.LoadI32(memsim.AccessAtomic, idx)
	r.StoreI32(memsim.AccessAtomic, idx, old+v)
	t.chargeAccess(res)
	return old
}

// AtomicAddF32 atomically adds v to element idx of r, returning the old
// value. Models CUDA atomicAdd on float.
func (t *Thread) AtomicAddF32(r memsim.Region, idx int, v float32) float32 {
	t.recordAtomic(r, idx*4)
	if t.b.spec != nil {
		old := math.Float32frombits(uint32(t.specLoad(memsim.AccessAtomic, r, idx, 4)))
		t.specStore(memsim.AccessAtomic, r, idx, 4, uint64(math.Float32bits(old+v)), false)
		return old
	}
	old, res := r.LoadF32(memsim.AccessAtomic, idx)
	r.StoreF32(memsim.AccessAtomic, idx, old+v)
	t.chargeAccess(res)
	return old
}

// AtomicAddU64 atomically adds v to element idx of r, returning the old
// value.
func (t *Thread) AtomicAddU64(r memsim.Region, idx int, v uint64) uint64 {
	t.recordAtomic(r, idx*8)
	if t.b.spec != nil {
		old := t.specLoad(memsim.AccessAtomic, r, idx, 8)
		t.specStore(memsim.AccessAtomic, r, idx, 8, old+v, false)
		return old
	}
	old, res := r.LoadU64(memsim.AccessAtomic, idx)
	r.StoreU64(memsim.AccessAtomic, idx, old+v)
	t.chargeAccess(res)
	return old
}

// AtomicXorU64 atomically XORs v into element idx of r, returning the
// old value.
func (t *Thread) AtomicXorU64(r memsim.Region, idx int, v uint64) uint64 {
	t.recordAtomic(r, idx*8)
	if t.b.spec != nil {
		old := t.specLoad(memsim.AccessAtomic, r, idx, 8)
		t.specStore(memsim.AccessAtomic, r, idx, 8, old^v, false)
		return old
	}
	old, res := r.LoadU64(memsim.AccessAtomic, idx)
	r.StoreU64(memsim.AccessAtomic, idx, old^v)
	t.chargeAccess(res)
	return old
}

// AtomicMinI32 atomically computes min into element idx of r, returning
// the old value.
func (t *Thread) AtomicMinI32(r memsim.Region, idx int, v int32) int32 {
	t.recordAtomic(r, idx*4)
	if t.b.spec != nil {
		old := int32(uint32(t.specLoad(memsim.AccessAtomic, r, idx, 4)))
		if v < old {
			t.specStore(memsim.AccessAtomic, r, idx, 4, uint64(uint32(v)), false)
		}
		return old
	}
	old, res := r.LoadI32(memsim.AccessAtomic, idx)
	if v < old {
		r.StoreI32(memsim.AccessAtomic, idx, v)
	}
	t.chargeAccess(res)
	return old
}

// SerializeOn records a serialization event on the sector containing
// byte offset byteOff of r without performing an atomic operation. It
// models unsynchronized read-modify-write emulations (§IV-D.3): even
// without atomic instructions, the stores still serialize at the L2
// partition and consume atomic-pipeline slots, so removing atomics does
// not remove the queueing — it adds traffic on top.
func (t *Thread) SerializeOn(r memsim.Region, byteOff int) {
	t.recordAtomic(r, byteOff)
}

// RacyTouch records an unsynchronized access to the sector containing
// byte offset byteOff of r and reports whether another unsynchronized
// access touched the same sector within the last window cycles. It is the
// simulator's deterministic model for the data races a check-then-act
// insertion suffers when atomic instructions are removed (§IV-D.3): the
// caller must treat a true result as a lost update and redo its work.
//
// The answer depends on what earlier blocks did to the shared timeline,
// so it cannot be speculated: a speculative block that calls RacyTouch is
// flagged for direct re-execution at its dispatch slot, where the serial
// semantics apply untouched.
func (t *Thread) RacyTouch(r memsim.Region, byteOff int, window int64) bool {
	if s := t.b.spec; s != nil {
		s.needReexec = true
		return false
	}
	addr := (r.Base + uint64(byteOff)) &^ (sectorBytes - 1)
	return t.b.dev.lines.touch(addr, t.now(), window, t.b.LinearIdx)
}

// --- Locks ---

// LockAcquire registers a lock-acquisition event; the FIFO queueing wait
// is computed by the post-launch sweep (schedule.go). The matching
// LockRelease fills in the measured critical-section length.
func (t *Thread) LockAcquire(l *Lock) {
	if t.lockHeld != nil {
		panic(fmt.Sprintf("gpusim: thread %d acquiring %q while holding %q", t.Linear, l.name, t.lockHeld.name))
	}
	if s := t.b.spec; s != nil {
		s.curEv = append(s.curEv, specEvent{intra: t.instrs + t.atomicStall, lock: l})
		t.lockHeld = l
		t.lockEventIdx = len(s.curEv) - 1
		t.lockStartInstr = t.instrs
		// l.acquisitions is bumped at commit (replaySpec), keeping the
		// shared counter single-writer.
		return
	}
	t.b.events = append(t.b.events, opEvent{
		offset: t.b.cycles + t.instrs + t.atomicStall,
		lock:   l,
	})
	t.lockHeld = l
	t.lockEventIdx = len(t.b.events) - 1
	t.lockStartInstr = t.instrs
	l.acquisitions++
}

// LockRelease releases the lock, recording the hold time (critical
// section instructions plus the handoff cost) on the acquisition event.
func (t *Thread) LockRelease(l *Lock) {
	if t.lockHeld != l {
		panic(fmt.Sprintf("gpusim: thread %d releasing %q it does not hold", t.Linear, l.name))
	}
	hold := (t.instrs - t.lockStartInstr) + t.b.dev.cfg.LockHandoffCycles
	if s := t.b.spec; s != nil {
		s.curEv[t.lockEventIdx].hold = hold
	} else {
		t.b.events[t.lockEventIdx].hold = hold
	}
	t.lockHeld = nil
}
