package gpusim

import (
	"testing"

	"gpulp/internal/memsim"
)

// BenchmarkLaunchCompute measures a compute-only launch (simulator
// overhead per thread-instruction).
func BenchmarkLaunchCompute(b *testing.B) {
	d := testDevice()
	for i := 0; i < b.N; i++ {
		d.Launch("compute", D1(64), D1(128), func(blk *Block) {
			blk.ForAll(func(t *Thread) { t.Op(100) })
		})
	}
}

// BenchmarkLaunchMemory measures a memory-streaming launch (cache
// simulation throughput).
func BenchmarkLaunchMemory(b *testing.B) {
	d := testDevice()
	data := d.Alloc("data", 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch("stream", D1(32), D1(64), func(blk *Block) {
			blk.ForAll(func(t *Thread) {
				t.LoadF32(data, (t.GlobalLinear()*31)%(1<<18))
			})
		})
	}
}

// BenchmarkWarpReduce measures the warp shuffle reduction primitive.
func BenchmarkWarpReduce(b *testing.B) {
	d := testDevice()
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = uint64(i) * 977
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch("reduce", D1(1), D1(32), func(blk *Block) {
			blk.WarpPhase(func(w *Warp) { w.ReduceAdd(vals) })
		})
	}
}

// BenchmarkAtomicContention measures the two-pass schedule under a
// same-sector atomic storm.
func BenchmarkAtomicContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig()
		cfg.NumSMs = 8
		d := MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
		hot := d.Alloc("hot", 4)
		hot.HostZero()
		b.StartTimer()
		d.Launch("storm", D1(256), D1(32), func(blk *Block) {
			blk.ForAll(func(t *Thread) { t.AtomicAddI32(hot, 0, 1) })
		})
	}
}

// BenchmarkLockSerialization measures the lock queueing sweep.
func BenchmarkLockSerialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig()
		cfg.NumSMs = 8
		d := MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
		lock := d.NewLock("l")
		b.StartTimer()
		d.Launch("locked", D1(512), D1(32), func(blk *Block) {
			blk.ForAll(func(t *Thread) {
				if t.Linear == 0 {
					t.LockAcquire(lock)
					t.Op(30)
					t.LockRelease(lock)
				}
			})
		})
	}
}
