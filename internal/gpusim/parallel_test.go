package gpusim

import (
	"reflect"
	"sync/atomic"
	"testing"

	"gpulp/internal/memsim"
)

// newParTestSystem builds a small device pair (serial + parallel over the
// same config) with fresh memories, for side-by-side launches.
func newParTestSystem(workers int) (*Device, *memsim.Memory) {
	mem := memsim.MustNew(memsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Workers = workers
	return MustNew(cfg, mem), mem
}

// launchBoth runs the same kernel construction serially and with workers
// workers on fresh systems, returning both results and both traces.
func launchBoth(t *testing.T, workers int, setup func(d *Device) (Dim3, Dim3, KernelFunc)) (sres, pres LaunchResult, strace, ptrace LaunchTrace) {
	t.Helper()
	run := func(w int) (LaunchResult, LaunchTrace, *memsim.Memory) {
		dev, mem := newParTestSystem(w)
		var tr LaunchTrace
		dev.SetTraceSink(func(lt LaunchTrace) { tr = lt })
		grid, blk, kernel := setup(dev)
		return dev.Launch("par-test", grid, blk, kernel), tr, mem
	}
	sres, strace, smem := run(1)
	pres, ptrace, pmem := run(workers)
	if sstats, pstats := smem.Stats(), pmem.Stats(); !reflect.DeepEqual(sstats, pstats) {
		t.Errorf("memory stats diverged\nserial:   %+v\nparallel: %+v", sstats, pstats)
	}
	if s, p := smem.NVMImage(), pmem.NVMImage(); !reflect.DeepEqual(s, p) {
		t.Errorf("NVM images diverged")
	}
	return
}

func assertSameLaunch(t *testing.T, sres, pres LaunchResult, strace, ptrace LaunchTrace) {
	t.Helper()
	if sres != pres {
		t.Errorf("launch result diverged\nserial:   %+v\nparallel: %+v", sres, pres)
	}
	if !reflect.DeepEqual(strace, ptrace) {
		t.Errorf("launch trace diverged\nserial:   %+v\nparallel: %+v", strace, ptrace)
	}
}

// TestParallelEventMergeDispatchOrder is the dispatch-order merge
// regression: block 0 carries a heavy compute phase while every later
// block issues atomics almost immediately, so under the worker pool the
// fast blocks complete long before block 0 — the exact inversion that
// would corrupt the flattened event stream if results were merged in
// completion order. The schedule() input must be byte-identical to the
// serial engine, which shows up as identical cycle counts, stall totals,
// and per-block trace rows.
func TestParallelEventMergeDispatchOrder(t *testing.T) {
	completed := make(chan int, 64)
	setup := func(parallel bool) func(d *Device) (Dim3, Dim3, KernelFunc) {
		return func(d *Device) (Dim3, Dim3, KernelFunc) {
			ctr := d.Alloc("ctr", 4096)
			return D1(32), D1(32), func(b *Block) {
				b.ForAll(func(th *Thread) {
					if b.LinearIdx == 0 {
						th.Op(2_000_000) // block 0 takes far longer than the rest
					}
					// All blocks contend on a handful of atomic words.
					th.AtomicAddU64(ctr, (b.LinearIdx+th.Linear)%8, 1)
					th.AtomicAddU64(ctr, 64+b.LinearIdx%4, 1)
				})
				if parallel {
					select {
					case completed <- b.LinearIdx:
					default:
					}
				}
			}
		}
	}
	sres, pres, strace, ptrace := launchBoth(t, 8, setup(false))
	_ = setup(true) // completion-order probe used below

	assertSameLaunch(t, sres, pres, strace, ptrace)
	if sres.AtomicStallCycles == 0 {
		t.Fatalf("test kernel produced no atomic contention; event merge not exercised")
	}

	// Confirm the premise: under the pool, completion order actually
	// differs from dispatch order (block 0 finishes late).
	dev, _ := newParTestSystem(8)
	grid, blk, kernel := setup(true)(dev)
	dev.Launch("completion-order", grid, blk, kernel)
	close(completed)
	order := make([]int, 0, 32)
	for idx := range completed {
		order = append(order, idx)
	}
	inverted := false
	for i, idx := range order {
		if idx == 0 && i > 0 {
			inverted = true
		}
	}
	if !inverted {
		t.Logf("note: speculative completion order %v did not invert; merge still validated by equality", order)
	}
}

// TestParallelLocks runs a lock-contended kernel under both engines: lock
// acquisition counts, hold times, and FIFO queueing stalls must match.
func TestParallelLocks(t *testing.T) {
	setup := func(d *Device) (Dim3, Dim3, KernelFunc) {
		data := d.Alloc("data", 8192)
		lock := d.NewLock("tab")
		return D1(24), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if th.Linear == 0 {
					th.LockAcquire(lock)
					v := th.LoadU64(data, b.LinearIdx)
					th.Op(40)
					th.StoreU64(data, b.LinearIdx, v+uint64(b.LinearIdx))
					th.LockRelease(lock)
				}
			})
		}
	}
	sres, pres, strace, ptrace := launchBoth(t, 8, setup)
	assertSameLaunch(t, sres, pres, strace, ptrace)
	if sres.LockStallCycles == 0 {
		t.Fatalf("test kernel produced no lock queueing; lock path not exercised")
	}
}

// TestParallelRacyTouchReexec verifies that blocks using the
// order-sensitive RacyTouch primitive are re-executed at their dispatch
// slot: results must match the serial engine exactly (including the
// deterministic race outcomes).
func TestParallelRacyTouchReexec(t *testing.T) {
	setup := func(d *Device) (Dim3, Dim3, KernelFunc) {
		tab := d.Alloc("tab", 4096)
		return D1(16), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if th.Linear == 0 {
					slot := b.LinearIdx % 4
					raced := th.RacyTouch(tab, slot*32, 1_000_000)
					if raced {
						th.Op(500) // redo penalty
					}
					th.StoreU64(tab, slot, uint64(b.LinearIdx))
				}
			})
		}
	}
	sres, pres, strace, ptrace := launchBoth(t, 8, setup)
	assertSameLaunch(t, sres, pres, strace, ptrace)
}

// TestParallelStaleLoadReexec forces genuine speculation failures: every
// block read-modify-writes the same word with plain loads/stores, so all
// but the first committed block observe stale snapshot values and must
// re-execute. The final memory value and all statistics must match the
// serial engine.
func TestParallelStaleLoadReexec(t *testing.T) {
	run := func(w int) (LaunchResult, uint64) {
		dev, mem := newParTestSystem(w)
		acc := dev.Alloc("acc", 64)
		res := dev.Launch("chain", D1(20), D1(1), func(b *Block) {
			b.ForAll(func(th *Thread) {
				v := th.LoadU64(acc, 0)
				th.StoreU64(acc, 0, v+1)
			})
		})
		return res, mem.PeekCoherentU64(acc.Base)
	}
	sres, sval := run(1)
	pres, pval := run(8)
	if sres != pres {
		t.Errorf("launch result diverged\nserial:   %+v\nparallel: %+v", sres, pres)
	}
	if sval != 20 || pval != 20 {
		t.Errorf("chained increments lost: serial=%d parallel=%d, want 20", sval, pval)
	}
}

// TestParallelCrashTriggers checks both crash trigger styles fire at the
// same point under the pool as serially.
func TestParallelCrashTriggers(t *testing.T) {
	mkSetup := func(d *Device) (Dim3, Dim3, KernelFunc) {
		out := d.Alloc("out", 64*1024)
		return D1(48), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				th.Op(500)
				th.StoreU32(out, b.LinearIdx*32+th.Linear, uint32(th.GlobalLinear()))
			})
		}
	}
	for _, tc := range []struct {
		label string
		trig  CrashTrigger
	}{
		{"after-blocks", CrashTrigger{AfterBlocks: 17}},
		// With 2-cycle dispatch skew and more slots than blocks, block k
		// starts at cycle 2k; AtCycle 40 interrupts at the 21st block.
		{"at-cycle", CrashTrigger{AtCycle: 40}},
	} {
		t.Run(tc.label, func(t *testing.T) {
			run := func(w int) (LaunchResult, int32, memsim.Stats) {
				dev, mem := newParTestSystem(w)
				var fired int32
				trig := tc.trig
				trig.Fire = func(d *Device) { atomic.AddInt32(&fired, 1); d.Mem().Crash() }
				dev.SetCrashTrigger(&trig)
				grid, blk, kernel := mkSetup(dev)
				res := dev.Launch("crash", grid, blk, kernel)
				return res, atomic.LoadInt32(&fired), mem.Stats()
			}
			sres, sfired, sstats := run(1)
			pres, pfired, pstats := run(8)
			if !sres.Interrupted || sfired != 1 {
				t.Fatalf("serial crash did not fire (res=%+v fired=%d)", sres, sfired)
			}
			if sres != pres || pfired != 1 {
				t.Errorf("crash behaviour diverged\nserial:   %+v (fired %d)\nparallel: %+v (fired %d)", sres, sfired, pres, pfired)
			}
			if !reflect.DeepEqual(sstats, pstats) {
				t.Errorf("post-crash memory stats diverged\nserial:   %+v\nparallel: %+v", sstats, pstats)
			}
		})
	}
}

// TestParallelLaunchSelected checks the recovery primitive (selected
// block lists, including non-monotone orders) under the pool.
func TestParallelLaunchSelected(t *testing.T) {
	selected := []int{11, 3, 7, 0, 14, 2}
	run := func(w int) (LaunchResult, memsim.Stats) {
		dev, mem := newParTestSystem(w)
		out := dev.Alloc("out", 64*1024)
		grid, blk := D1(16), D1(32)
		kernel := func(b *Block) {
			b.ForAll(func(th *Thread) {
				th.StoreU32(out, b.LinearIdx*32+th.Linear, uint32(b.LinearIdx))
			})
		}
		res := dev.LaunchSelected("sel", grid, blk, kernel, selected)
		return res, mem.Stats()
	}
	sres, sstats := run(1)
	pres, pstats := run(8)
	if sres != pres {
		t.Errorf("selected launch diverged\nserial:   %+v\nparallel: %+v", sres, pres)
	}
	if !reflect.DeepEqual(sstats, pstats) {
		t.Errorf("selected launch stats diverged")
	}
}

// TestParallelSpecPanicReexec verifies that a panic during speculation
// (from stale state) is absorbed and the block re-executes cleanly, while
// a panic that also occurs during direct execution still surfaces.
func TestParallelSpecPanicReexec(t *testing.T) {
	// Block 1 indexes a region by a value block 0 writes; under
	// speculation it reads the stale initial value, producing an
	// out-of-range index that panics mid-speculation. At commit time the
	// re-execution sees block 0's write and stays in range.
	run := func(w int) LaunchResult {
		dev, _ := newParTestSystem(w)
		idx := dev.Alloc("idx", 64)
		out := dev.Alloc("out", 8)
		dev.Mem().HostWrite(idx.Base, []byte{0xff, 0xff, 0xff, 0x7f}) // huge stale index
		return dev.Launch("specpanic", D1(2), D1(1), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if b.LinearIdx == 0 {
					th.StoreU32(idx, 0, 1)
				} else {
					i := th.LoadU32(idx, 0)
					th.StoreU32(out, int(i)-1, 7)
				}
			})
		})
	}
	sres := run(1)
	pres := run(8)
	if sres != pres {
		t.Errorf("spec-panic launch diverged\nserial:   %+v\nparallel: %+v", sres, pres)
	}
}

// TestParallelBlockHooks checks per-block store hooks and OnCommit/Staged
// staging under the pool: per-block side effects must apply exactly once,
// in dispatch order.
func TestParallelBlockHooks(t *testing.T) {
	run := func(w int) (hookBits []uint32, commits []int, res LaunchResult) {
		dev, _ := newParTestSystem(w)
		out := dev.Alloc("out", 64*1024)
		grid, blk := D1(12), D1(32)
		res = dev.Launch("hooks", grid, blk, func(b *Block) {
			var local []uint32
			b.SetStoreHook(func(th *Thread, r memsim.Region, elemIdx int, bits uint32) {
				local = append(local, bits)
			})
			b.ForAll(func(th *Thread) {
				th.StoreU32(out, b.LinearIdx*32+th.Linear, uint32(b.LinearIdx*1000+th.Linear))
			})
			b.OnCommit(func() {
				hookBits = append(hookBits, local...)
				commits = append(commits, b.LinearIdx)
			})
		})
		return
	}
	sBits, sCommits, sres := run(1)
	pBits, pCommits, pres := run(8)
	if sres != pres {
		t.Errorf("hook launch diverged\nserial:   %+v\nparallel: %+v", sres, pres)
	}
	if !reflect.DeepEqual(sBits, pBits) {
		t.Errorf("hooked store streams diverged (serial %d values, parallel %d)", len(sBits), len(pBits))
	}
	if !reflect.DeepEqual(sCommits, pCommits) {
		t.Errorf("commit order diverged: serial %v, parallel %v", sCommits, pCommits)
	}
}

// TestPhaseCostMatchesSerialHelpers pins the pure timing helpers to the
// serial engine's arithmetic (a change to one without the other would
// silently break replay determinism).
func TestPhaseCostMatchesSerialHelpers(t *testing.T) {
	cfg := DefaultConfig()
	for _, nw := range []int{1, 2, 7, 32, 64} {
		got := barrierCostFor(cfg, nw)
		want := int64(4 * nw)
		if want > cfg.BarrierCycles {
			want = cfg.BarrierCycles
		}
		if got != want {
			t.Errorf("barrierCostFor(%d) = %d, want %d", nw, got, want)
		}
	}
	cases := []struct{ wi, l2, nvm int64 }{
		{0, 0, 0}, {1000, 0, 0}, {10, 50000, 10}, {10, 10, 90000}, {12345, 6789, 4242},
	}
	for _, c := range cases {
		compute := int64(float64(c.wi) / cfg.IssueWidth)
		l2Cyc := int64(float64(c.l2) / (cfg.L2BytesPerCycle / float64(cfg.NumSMs)))
		nvmCyc := int64(float64(c.nvm) / (cfg.NVMBytesPerCycle / float64(cfg.NumSMs)))
		want := compute
		if l2Cyc > want {
			want = l2Cyc
		}
		if nvmCyc > want {
			want = nvmCyc
		}
		if got := phaseCost(cfg, c.wi, c.l2, c.nvm); got != want {
			t.Errorf("phaseCost(%+v) = %d, want %d", c, got, want)
		}
	}
}
