package gpusim

import "fmt"

// Warp is the per-warp view inside a Block.WarpPhase. It exposes vector
// (per-lane) register operations, most importantly the shuffle-down data
// exchange that the paper uses for parallel checksum reduction (§IV-B,
// Listing 4).
type Warp struct {
	b *Block
	// ID is the warp index within the block; Lanes the number of active
	// lanes (the last warp of a block may be partial).
	ID    int
	Lanes int

	instrs   int64
	l2Bytes  int64
	nvmBytes int64
	stall    int64
}

// Block returns the enclosing block context.
func (w *Warp) Block() *Block { return w.b }

// LaneLinear returns the block-linear thread id of the given lane.
func (w *Warp) LaneLinear(lane int) int {
	if lane < 0 || lane >= w.Lanes {
		panic(fmt.Sprintf("gpusim: lane %d out of range [0,%d)", lane, w.Lanes))
	}
	return w.ID*w.b.dev.cfg.WarpSize + lane
}

// Op charges n warp instructions.
func (w *Warp) Op(n int) { w.instrs += int64(n) }

// ShuffleDownU64 models __shfl_down_sync over a per-lane register vector:
// lane i receives lane i+delta's value; lanes whose source is out of range
// keep their own value (matching CUDA semantics for inactive sources).
// Costs one warp instruction. v is not modified; the shifted vector is
// returned.
func (w *Warp) ShuffleDownU64(v []uint64, delta int) []uint64 {
	if len(v) != w.Lanes {
		panic(fmt.Sprintf("gpusim: shuffle vector has %d lanes, warp has %d", len(v), w.Lanes))
	}
	w.instrs++
	out := make([]uint64, len(v))
	for i := range v {
		if j := i + delta; j < len(v) {
			out[i] = v[j]
		} else {
			out[i] = v[i]
		}
	}
	return out
}

// ReduceAdd performs the paper's warp-level parallel reduction
// (Listing 4) with shuffle-down steps, returning the lane-0 sum.
// Each step costs one shuffle and one add per checksum vector.
func (w *Warp) ReduceAdd(v []uint64) uint64 {
	ws := w.b.dev.cfg.WarpSize
	cur := make([]uint64, len(v))
	copy(cur, v)
	for offset := ws / 2; offset > 0; offset /= 2 {
		shifted := w.ShuffleDownU64(cur, offset)
		w.instrs++ // the add
		for i := range cur {
			if i+offset < len(cur) {
				cur[i] += shifted[i]
			}
		}
	}
	return cur[0]
}

// ReduceXor is ReduceAdd with XOR as the combining operator (parity
// checksum reduction).
func (w *Warp) ReduceXor(v []uint64) uint64 {
	ws := w.b.dev.cfg.WarpSize
	cur := make([]uint64, len(v))
	copy(cur, v)
	for offset := ws / 2; offset > 0; offset /= 2 {
		shifted := w.ShuffleDownU64(cur, offset)
		w.instrs++
		for i := range cur {
			if i+offset < len(cur) {
				cur[i] ^= shifted[i]
			}
		}
	}
	return cur[0]
}
