package gpusim

import "testing"

func TestCrashTriggerAfterBlocks(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 1024*4)
	fired := 0
	d.SetCrashTrigger(&CrashTrigger{
		AfterBlocks: 3,
		Fire:        func(*Device) { fired++ },
	})
	kernel := func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.StoreI32(out, th.GlobalLinear(), int32(th.GlobalLinear()))
		})
	}
	res := d.Launch("work", D1(8), D1(128), kernel)
	if !res.Interrupted {
		t.Fatal("launch was not marked interrupted")
	}
	if res.Blocks != 3 {
		t.Fatalf("retired %d blocks, want exactly 3", res.Blocks)
	}
	if fired != 1 {
		t.Fatalf("trigger fired %d times, want once", fired)
	}
	// Blocks past the crash point never executed.
	if got := out.PeekI32(3*128 + 5); got != 0 {
		t.Fatalf("block 3 wrote %d after the crash", got)
	}
	if got := out.PeekI32(2*128 + 5); got != int32(2*128+5) {
		t.Fatalf("retired block 2 missing its store: %d", got)
	}

	// One-shot: the next launch must run to completion.
	res = d.Launch("work", D1(8), D1(128), kernel)
	if res.Interrupted || res.Blocks != 8 {
		t.Fatalf("trigger not disarmed after firing: %+v", res)
	}
	if fired != 1 {
		t.Fatalf("trigger re-fired: %d", fired)
	}
}

func TestCrashTriggerAtCycle(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 4096*4)
	kernel := func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.StoreI32(out, th.GlobalLinear(), 1)
		})
	}
	// Baseline to learn the launch length in cycles.
	base := d.Launch("work", D1(32), D1(128), kernel)
	if base.Cycles <= 0 {
		t.Fatal("baseline launch has no cycles")
	}
	d.Mem().Crash()

	fired := false
	d.SetCrashTrigger(&CrashTrigger{
		AtCycle: base.Cycles / 2,
		Fire:    func(*Device) { fired = true },
	})
	res := d.Launch("work", D1(32), D1(128), kernel)
	if !fired || !res.Interrupted {
		t.Fatalf("mid-cycle trigger did not fire: fired=%v res=%+v", fired, res)
	}
	if res.Blocks == 0 || res.Blocks >= 32 {
		t.Fatalf("crash at half the schedule retired %d of 32 blocks", res.Blocks)
	}
}

func TestCrashTriggerDisarm(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 512*4)
	d.SetCrashTrigger(&CrashTrigger{AfterBlocks: 1, Fire: func(*Device) { t.Fatal("disarmed trigger fired") }})
	d.SetCrashTrigger(nil)
	res := d.Launch("work", D1(4), D1(128), func(b *Block) {
		b.ForAll(func(th *Thread) { th.StoreI32(out, th.GlobalLinear(), 1) })
	})
	if res.Interrupted || res.Blocks != 4 {
		t.Fatalf("disarmed trigger affected the launch: %+v", res)
	}
}
