package gpusim

// CrashTrigger arms a one-shot mid-launch crash: the next Launch stops
// dispatching thread blocks at the trigger point, runs Fire (typically
// memsim's Crash or PartialCrash), and returns with Interrupted set and
// only the retired blocks counted. The grid is left genuinely partial —
// some blocks completed and committed their LP checksums, the rest never
// existed — which is the failure shape crashes between launch boundaries
// can never produce.
//
// The simulator executes blocks functionally one at a time in dispatch
// order, so the crash lands on a block boundary of the dispatch sequence;
// AtCycle is evaluated against the greedy (pre-queueing) schedule, making
// it a deterministic approximation of "the SMs had reached cycle C".
// Intra-block partial effects are modeled separately by torn write-backs
// and partial eviction at the memory layer.
type CrashTrigger struct {
	// AtCycle fires before executing the first block whose scheduled
	// start time reaches this simulated cycle. 0 disables the condition.
	AtCycle int64
	// AfterBlocks fires once this many blocks of the launch have retired.
	// 0 disables the condition.
	AfterBlocks int
	// Fire is invoked exactly once when the trigger trips. It should
	// drop (or partially drop) the memory hierarchy's volatile state.
	Fire func(d *Device)
}

// SetCrashTrigger arms t for the next launch (nil disarms). The trigger
// is one-shot: it is disarmed when it fires, so recovery launches that
// follow the crash run to completion.
func (d *Device) SetCrashTrigger(t *CrashTrigger) { d.crash = t }

// fireCrash disarms and runs the trigger.
func (d *Device) fireCrash() {
	t := d.crash
	d.crash = nil
	if t != nil && t.Fire != nil {
		t.Fire(d)
	}
}
