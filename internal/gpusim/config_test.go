package gpusim

import (
	"errors"
	"testing"
	"testing/quick"

	"gpulp/internal/memsim"
)

func TestConfigValidationBranches(t *testing.T) {
	mem := memsim.MustNew(memsim.DefaultConfig())
	mutations := []struct {
		field  string
		mutate func(*Config)
	}{
		{"NumSMs", func(c *Config) { c.NumSMs = 0 }},
		{"WarpSize", func(c *Config) { c.WarpSize = 0 }},
		{"MaxBlocksPerSM", func(c *Config) { c.MaxBlocksPerSM = 0 }},
		{"MaxThreadsPerSM", func(c *Config) { c.MaxThreadsPerSM = 0 }},
		{"IssueWidth", func(c *Config) { c.IssueWidth = 0 }},
		{"L2BytesPerCycle", func(c *Config) { c.L2BytesPerCycle = 0 }},
		{"NVMBytesPerCycle", func(c *Config) { c.NVMBytesPerCycle = 0 }},
		{"WatchdogSteps", func(c *Config) { c.WatchdogSteps = -1 }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mutate(&cfg)
		d, err := New(cfg, mem)
		if d != nil || err == nil {
			t.Errorf("%s: New accepted invalid config (err=%v)", m.field, err)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", m.field, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != m.field {
			t.Errorf("%s: error %v does not name the field", m.field, err)
		}
	}
	t.Run("nil memory", func(t *testing.T) {
		if _, err := New(DefaultConfig(), nil); !errors.Is(err, ErrConfig) {
			t.Fatalf("nil memory: err = %v, want ErrConfig", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		if _, err := New(DefaultConfig(), mem); err != nil {
			t.Fatalf("default config rejected: %v", err)
		}
	})
	t.Run("mustnew panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("MustNew with invalid config did not panic")
			}
		}()
		bad := DefaultConfig()
		bad.NumSMs = 0
		MustNew(bad, mem)
	})
}

// TestPropertyDim3RoundTrip: Linear and Unlinear are inverse bijections
// over arbitrary extents.
func TestPropertyDim3RoundTrip(t *testing.T) {
	f := func(xr, yr, zr uint8, pick uint16) bool {
		d := Dim3{int(xr%7) + 1, int(yr%7) + 1, int(zr%7) + 1}
		lin := int(pick) % d.Size()
		idx := d.Unlinear(lin)
		if idx.X >= d.X || idx.Y >= d.Y || idx.Z >= d.Z {
			return false
		}
		return d.Linear(idx) == lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGlobalLinearCoversGrid(t *testing.T) {
	d := testDevice()
	seen := map[int]bool{}
	grid, blk := D2(3, 2), D2(4, 8)
	d.Launch("cover", grid, blk, func(b *Block) {
		b.ForAll(func(th *Thread) { seen[th.GlobalLinear()] = true })
	})
	want := grid.Size() * blk.Size()
	if len(seen) != want {
		t.Errorf("GlobalLinear covered %d ids, want %d", len(seen), want)
	}
	for i := 0; i < want; i++ {
		if !seen[i] {
			t.Fatalf("id %d missing (ids not dense)", i)
		}
	}
}
