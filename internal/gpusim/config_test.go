package gpusim

import (
	"testing"
	"testing/quick"

	"gpulp/internal/memsim"
)

func TestConfigValidationBranches(t *testing.T) {
	mem := memsim.MustNew(memsim.DefaultConfig())
	mutations := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpSize = 0 },
		func(c *Config) { c.MaxBlocksPerSM = 0 },
		func(c *Config) { c.MaxThreadsPerSM = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.L2BytesPerCycle = 0 },
		func(c *Config) { c.NVMBytesPerCycle = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mutation %d did not panic", i)
				}
			}()
			NewDevice(cfg, mem)
		}()
	}
	t.Run("nil memory", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("nil memory accepted")
			}
		}()
		NewDevice(DefaultConfig(), nil)
	})
}

// TestPropertyDim3RoundTrip: Linear and Unlinear are inverse bijections
// over arbitrary extents.
func TestPropertyDim3RoundTrip(t *testing.T) {
	f := func(xr, yr, zr uint8, pick uint16) bool {
		d := Dim3{int(xr%7) + 1, int(yr%7) + 1, int(zr%7) + 1}
		lin := int(pick) % d.Size()
		idx := d.Unlinear(lin)
		if idx.X >= d.X || idx.Y >= d.Y || idx.Z >= d.Z {
			return false
		}
		return d.Linear(idx) == lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGlobalLinearCoversGrid(t *testing.T) {
	d := testDevice()
	seen := map[int]bool{}
	grid, blk := D2(3, 2), D2(4, 8)
	d.Launch("cover", grid, blk, func(b *Block) {
		b.ForAll(func(th *Thread) { seen[th.GlobalLinear()] = true })
	})
	want := grid.Size() * blk.Size()
	if len(seen) != want {
		t.Errorf("GlobalLinear covered %d ids, want %d", len(seen), want)
	}
	for i := 0; i < want; i++ {
		if !seen[i] {
			t.Fatalf("id %d missing (ids not dense)", i)
		}
	}
}
