package gpusim

import (
	"bytes"
	"errors"
	"testing"

	"gpulp/internal/memsim"
)

// wdDevice builds a small device + memory pair with the watchdog armed.
func wdDevice(t *testing.T, steps int64, workers int) (*Device, *memsim.Memory) {
	t.Helper()
	mcfg := memsim.DefaultConfig()
	mcfg.CacheBytes = 1 << 14
	mem := memsim.MustNew(mcfg)
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.WatchdogSteps = steps
	cfg.Workers = workers
	return MustNew(cfg, mem), mem
}

// spinKernel returns a kernel whose thread 0 of each block spin-locks on
// the block's own word of locks, writes a token, and unlocks — the lock
// acquisition loop of §IV-D, reduced to its livelock-prone core.
func spinKernel(locks, out memsim.Region) KernelFunc {
	return func(b *Block) {
		b.ForAll(func(t *Thread) {
			if t.Linear != 0 {
				return
			}
			for t.AtomicCASU64(locks, b.LinearIdx, 0, 1) != 0 {
				t.Op(1)
			}
			t.StoreU64(out, b.LinearIdx, uint64(b.LinearIdx)+1)
			t.AtomicExchU64(locks, b.LinearIdx, 0)
		})
	}
}

// launchResultsEqual compares LaunchResults across engines, comparing the
// watchdog abort by value (the pointers necessarily differ).
func launchResultsEqual(a, b LaunchResult) bool {
	if (a.Watchdog == nil) != (b.Watchdog == nil) {
		return false
	}
	if a.Watchdog != nil && *a.Watchdog != *b.Watchdog {
		return false
	}
	a.Watchdog, b.Watchdog = nil, nil
	return a == b
}

// TestWatchdogAbortsStuckLockLivelock: a stuck-at fault pinning a lock
// word to "held" turns the acquisition spin into a livelock; the watchdog
// must convert it into a typed ErrWatchdog abort with a consistent crash
// image instead of hanging, identically on the serial and parallel
// engines.
func TestWatchdogAbortsStuckLockLivelock(t *testing.T) {
	run := func(workers int) (LaunchResult, []byte) {
		dev, mem := wdDevice(t, 20_000, workers)
		locks := dev.Alloc("locks", 4*8)
		out := dev.Alloc("out", 4*8)
		// Pin bit 0 of block 1's lock word to 1: the word durably reads
		// "held" and no store can clear it.
		mem.PlantStuckAt(locks.Base+8, 0, 1)
		res := dev.Launch("spin", D1(4), D1(32), spinKernel(locks, out))
		return res, mem.NVMImage()
	}

	res, img := run(1)
	if !res.Interrupted || res.Watchdog == nil {
		t.Fatalf("livelock not aborted: %+v", res)
	}
	if !errors.Is(res.Watchdog, ErrWatchdog) {
		t.Fatalf("abort %v does not wrap ErrWatchdog", res.Watchdog)
	}
	if res.Watchdog.Block != 1 || res.Watchdog.Kernel != "spin" {
		t.Fatalf("abort blames %q block %d, want spin block 1", res.Watchdog.Kernel, res.Watchdog.Block)
	}
	if res.Blocks != 1 {
		t.Fatalf("retired blocks = %d, want 1 (only block 0 precedes the hang)", res.Blocks)
	}

	resP, imgP := run(8)
	if !launchResultsEqual(res, resP) {
		t.Fatalf("parallel abort diverges:\nserial   %+v (%v)\nparallel %+v (%v)", res, res.Watchdog, resP, resP.Watchdog)
	}
	if !bytes.Equal(img, imgP) {
		t.Fatal("durable images diverge between serial and parallel watchdog aborts")
	}
}

// TestWatchdogQuietOnHealthyKernel: with a generous budget the watchdog
// must not perturb a normal launch — results are bit-identical to a
// watchdog-disabled run.
func TestWatchdogQuietOnHealthyKernel(t *testing.T) {
	run := func(steps int64) LaunchResult {
		dev, _ := wdDevice(t, steps, 1)
		locks := dev.Alloc("locks", 4*8)
		out := dev.Alloc("out", 4*8)
		res := dev.Launch("spin", D1(4), D1(32), spinKernel(locks, out))
		for i := 0; i < 4; i++ {
			if got := out.PeekU64(i); got != uint64(i)+1 {
				t.Fatalf("out[%d] = %d, want %d", i, got, i+1)
			}
		}
		return res
	}
	armed, disarmed := run(1_000_000), run(0)
	if armed.Watchdog != nil || armed.Interrupted {
		t.Fatalf("healthy launch aborted: %+v", armed)
	}
	if !launchResultsEqual(armed, disarmed) {
		t.Fatalf("armed watchdog perturbed a healthy launch:\narmed    %+v\ndisarmed %+v", armed, disarmed)
	}
}
