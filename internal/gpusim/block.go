package gpusim

import "fmt"

// Block is the per-thread-block execution context handed to a KernelFunc.
// Code between barriers is expressed as phases: ForAll (per-thread bodies)
// and WarpPhase (per-warp bodies with vector register access). Each phase
// ends with an implicit __syncthreads.
type Block struct {
	dev *Device
	// Idx is the block index within the grid; LinearIdx its linearization.
	Idx       Dim3
	LinearIdx int
	// BlockDim and GridDim are the launch dimensions.
	BlockDim Dim3
	GridDim  Dim3

	startTime int64 // pass-1 (zero-queueing) start time of the block
	cycles    int64 // cycles accumulated so far within the block

	shared map[string]any
	events []opEvent // serialization events for the post-launch sweep

	totWarpInstrs  int64
	totL2Bytes     int64
	totNVMBytes    int64
	totAtomicStall int64

	thread Thread // reused across iterations to avoid allocation
}

// Device returns the device executing this block.
func (b *Block) Device() *Device { return b.dev }

// NumWarps returns the number of warps in the block.
func (b *Block) NumWarps() int {
	ws := b.dev.cfg.WarpSize
	return (b.BlockDim.Size() + ws - 1) / ws
}

// Cycles returns the cycles the block has accumulated so far.
func (b *Block) Cycles() int64 { return b.cycles }

// SharedF32 returns (allocating on first use) a named per-block shared
// memory array of n float32. Shared memory never touches the global
// hierarchy; charge accesses with Thread.Op as kernel code would pay
// shared-memory instructions.
func (b *Block) SharedF32(name string, n int) []float32 {
	if v, ok := b.shared[name]; ok {
		s := v.([]float32)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]float32, n)
	b.shared[name] = s
	return s
}

// SharedU64 returns a named per-block shared memory array of n uint64.
func (b *Block) SharedU64(name string, n int) []uint64 {
	if v, ok := b.shared[name]; ok {
		s := v.([]uint64)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]uint64, n)
	b.shared[name] = s
	return s
}

// SharedI32 returns a named per-block shared memory array of n int32.
func (b *Block) SharedI32(name string, n int) []int32 {
	if v, ok := b.shared[name]; ok {
		s := v.([]int32)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]int32, n)
	b.shared[name] = s
	return s
}

// Barrier charges one explicit __syncthreads (phases already include an
// implicit trailing barrier; use this for extra synchronization points a
// fused phase models, e.g. between warp-partial staging and the final
// reduce).
func (b *Block) Barrier() { b.cycles += b.barrierCost() }

// barrierCost scales the __syncthreads charge with the number of warps
// that must rendezvous: a one-warp block synchronizes almost for free.
func (b *Block) barrierCost() int64 {
	cost := int64(4 * b.NumWarps())
	if max := b.dev.cfg.BarrierCycles; cost > max {
		cost = max
	}
	return cost
}

// ForAll executes fn once per thread of the block and then charges the
// phase: compute cycles (divergence-aware: a warp costs its max lane),
// memory cycles (roofline against per-SM L2 and NVM bandwidth shares), and
// any serialization stalls the threads incurred, plus a barrier.
func (b *Block) ForAll(fn func(t *Thread)) {
	ws := b.dev.cfg.WarpSize
	nt := b.BlockDim.Size()
	nw := b.NumWarps()
	warpMax := make([]int64, nw)
	var l2, nvm, aStall int64

	for lin := 0; lin < nt; lin++ {
		t := &b.thread
		*t = Thread{
			b:      b,
			Idx:    b.BlockDim.Unlinear(lin),
			Linear: lin,
			WarpID: lin / ws,
			Lane:   lin % ws,
		}
		fn(t)
		if t.lockHeld != nil {
			panic("gpusim: thread exited phase while holding lock " + t.lockHeld.name)
		}
		if t.instrs > warpMax[t.WarpID] {
			warpMax[t.WarpID] = t.instrs
		}
		l2 += t.l2Bytes
		nvm += t.nvmBytes
		aStall += t.atomicStall
	}

	var warpInstrs int64
	for _, wi := range warpMax {
		warpInstrs += wi
	}
	b.totAtomicStall += aStall
	b.endPhase(warpInstrs, l2, nvm, aStall)
}

// WarpPhase executes fn once per warp, giving vector access to lanes
// (used for shuffle reductions). The phase is charged like ForAll, with
// each warp's instruction count taken as issued.
func (b *Block) WarpPhase(fn func(w *Warp)) {
	ws := b.dev.cfg.WarpSize
	nt := b.BlockDim.Size()
	nw := b.NumWarps()
	var warpInstrs, l2, nvm, stall int64

	for wid := 0; wid < nw; wid++ {
		lanes := ws
		if rem := nt - wid*ws; rem < lanes {
			lanes = rem
		}
		w := Warp{b: b, ID: wid, Lanes: lanes}
		fn(&w)
		warpInstrs += w.instrs
		l2 += w.l2Bytes
		nvm += w.nvmBytes
		stall += w.stall
	}
	b.totAtomicStall += stall
	b.endPhase(warpInstrs, l2, nvm, stall)
}

func (b *Block) endPhase(warpInstrs, l2, nvm, stall int64) {
	cfg := b.dev.cfg
	compute := int64(float64(warpInstrs) / cfg.IssueWidth)
	l2Cyc := int64(float64(l2) / (cfg.L2BytesPerCycle / float64(cfg.NumSMs)))
	nvmCyc := int64(float64(nvm) / (cfg.NVMBytesPerCycle / float64(cfg.NumSMs)))
	mem := l2Cyc
	if nvmCyc > mem {
		mem = nvmCyc
	}
	phase := compute
	if mem > phase {
		phase = mem
	}
	b.cycles += phase + stall + b.barrierCost()

	b.totWarpInstrs += warpInstrs
	b.totL2Bytes += l2
	b.totNVMBytes += nvm
}
