package gpusim

import "fmt"

// Block is the per-thread-block execution context handed to a KernelFunc.
// Code between barriers is expressed as phases: ForAll (per-thread bodies)
// and WarpPhase (per-warp bodies with vector register access). Each phase
// ends with an implicit __syncthreads.
type Block struct {
	dev *Device
	// Idx is the block index within the grid; LinearIdx its linearization.
	Idx       Dim3
	LinearIdx int
	// BlockDim and GridDim are the launch dimensions.
	BlockDim Dim3
	GridDim  Dim3

	startTime int64 // pass-1 (zero-queueing) start time of the block
	cycles    int64 // cycles accumulated so far within the block

	shared map[string]any
	events []opEvent // serialization events for the post-launch sweep

	totWarpInstrs  int64
	totL2Bytes     int64
	totNVMBytes    int64
	totAtomicStall int64

	// storeHook, when set, observes this block's data stores; it shadows
	// the device-level hook. Per-block hooks are the concurrency-safe way
	// for wrappers (core.Instrument, ep.Wrap) to instrument stores: a
	// device-level hook installed from inside a kernel would race when
	// blocks run on the worker pool.
	storeHook StoreHook

	// spec is non-nil while the block executes speculatively on a worker
	// (see spec.go); onCommit and staged hold side effects deferred to the
	// block's dispatch-order commit.
	spec     *specState
	onCommit []func()
	staged   map[any]any

	thread Thread // reused across iterations to avoid allocation
}

// Device returns the device executing this block.
func (b *Block) Device() *Device { return b.dev }

// NumWarps returns the number of warps in the block.
func (b *Block) NumWarps() int {
	ws := b.dev.cfg.WarpSize
	return (b.BlockDim.Size() + ws - 1) / ws
}

// Cycles returns the cycles the block has accumulated so far.
func (b *Block) Cycles() int64 { return b.cycles }

// SetStoreHook installs a per-block store hook, returning the previous
// one. The block hook shadows the device-level hook for this block's
// stores. Kernel wrappers must use this (not Device.SetStoreHook) so
// instrumentation stays correct when blocks execute concurrently.
func (b *Block) SetStoreHook(h StoreHook) StoreHook {
	prev := b.storeHook
	b.storeHook = h
	return prev
}

// Speculative reports whether the block is currently executing
// speculatively on a worker (Config.Workers > 1). Host-side bookkeeping
// that must not run twice — or must not run concurrently — should be
// deferred with OnCommit or staged with Staged when this is true.
func (b *Block) Speculative() bool { return b.spec != nil }

// OnCommit runs fn now when executing directly, or queues it to run at
// the block's dispatch-order commit when executing speculatively. Queued
// functions run on the committer goroutine, in registration order, only
// if the speculative trace validates; a re-executed block discards them
// (the direct re-execution runs its own OnCommit calls immediately).
func (b *Block) OnCommit(fn func()) {
	if b.spec != nil {
		b.onCommit = append(b.onCommit, fn)
		return
	}
	fn()
}

// Staged returns a per-block staging value for key, calling create on
// first use. It gives kernel-adjacent host code (e.g. hash-table
// statistics) a private accumulator while the block runs speculatively;
// pair it with OnCommit to merge the staged value into shared state at
// commit time.
func (b *Block) Staged(key any, create func() any) any {
	if v, ok := b.staged[key]; ok {
		return v
	}
	if b.staged == nil {
		b.staged = map[any]any{}
	}
	v := create()
	b.staged[key] = v
	return v
}

// SharedF32 returns (allocating on first use) a named per-block shared
// memory array of n float32. Shared memory never touches the global
// hierarchy; charge accesses with Thread.Op as kernel code would pay
// shared-memory instructions.
func (b *Block) SharedF32(name string, n int) []float32 {
	if v, ok := b.shared[name]; ok {
		s := v.([]float32)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]float32, n)
	b.shared[name] = s
	return s
}

// SharedU64 returns a named per-block shared memory array of n uint64.
func (b *Block) SharedU64(name string, n int) []uint64 {
	if v, ok := b.shared[name]; ok {
		s := v.([]uint64)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]uint64, n)
	b.shared[name] = s
	return s
}

// SharedI32 returns a named per-block shared memory array of n int32.
func (b *Block) SharedI32(name string, n int) []int32 {
	if v, ok := b.shared[name]; ok {
		s := v.([]int32)
		if len(s) != n {
			panic(fmt.Sprintf("gpusim: shared %q reallocated with different size %d != %d", name, n, len(s)))
		}
		return s
	}
	s := make([]int32, n)
	b.shared[name] = s
	return s
}

// Barrier charges one explicit __syncthreads (phases already include an
// implicit trailing barrier; use this for extra synchronization points a
// fused phase models, e.g. between warp-partial staging and the final
// reduce).
func (b *Block) Barrier() {
	if s := b.spec; s != nil {
		s.phases = append(s.phases, phaseRec{barrierOnly: true})
		return
	}
	b.cycles += b.barrierCost()
}

// barrierCost scales the __syncthreads charge with the number of warps
// that must rendezvous: a one-warp block synchronizes almost for free.
func (b *Block) barrierCost() int64 {
	return barrierCostFor(b.dev.cfg, b.NumWarps())
}

// ForAll executes fn once per thread of the block and then charges the
// phase: compute cycles (divergence-aware: a warp costs its max lane),
// memory cycles (roofline against per-SM L2 and NVM bandwidth shares), and
// any serialization stalls the threads incurred, plus a barrier.
func (b *Block) ForAll(fn func(t *Thread)) {
	ws := b.dev.cfg.WarpSize
	nt := b.BlockDim.Size()
	nw := b.NumWarps()
	warpMax := make([]int64, nw)
	var l2, nvm, aStall int64

	for lin := 0; lin < nt; lin++ {
		t := &b.thread
		*t = Thread{
			b:      b,
			Idx:    b.BlockDim.Unlinear(lin),
			Linear: lin,
			WarpID: lin / ws,
			Lane:   lin % ws,
		}
		fn(t)
		if t.lockHeld != nil {
			panic("gpusim: thread exited phase while holding lock " + t.lockHeld.name)
		}
		if t.instrs > warpMax[t.WarpID] {
			warpMax[t.WarpID] = t.instrs
		}
		l2 += t.l2Bytes
		nvm += t.nvmBytes
		aStall += t.atomicStall
	}

	var warpInstrs int64
	for _, wi := range warpMax {
		warpInstrs += wi
	}
	b.totAtomicStall += aStall
	b.endPhase(warpInstrs, l2, nvm, aStall)
}

// WarpPhase executes fn once per warp, giving vector access to lanes
// (used for shuffle reductions). The phase is charged like ForAll, with
// each warp's instruction count taken as issued.
func (b *Block) WarpPhase(fn func(w *Warp)) {
	ws := b.dev.cfg.WarpSize
	nt := b.BlockDim.Size()
	nw := b.NumWarps()
	var warpInstrs, l2, nvm, stall int64

	for wid := 0; wid < nw; wid++ {
		lanes := ws
		if rem := nt - wid*ws; rem < lanes {
			lanes = rem
		}
		w := Warp{b: b, ID: wid, Lanes: lanes}
		fn(&w)
		warpInstrs += w.instrs
		l2 += w.l2Bytes
		nvm += w.nvmBytes
		stall += w.stall
	}
	b.totAtomicStall += stall
	b.endPhase(warpInstrs, l2, nvm, stall)
}

func (b *Block) endPhase(warpInstrs, l2, nvm, stall int64) {
	if s := b.spec; s != nil {
		// Speculative: the phase's NVM traffic is unknowable here (it
		// depends on cache state at the block's dispatch position), so only
		// the cache-independent charge inputs are recorded; replaySpec
		// recomputes nvm, the phase cost, and the totals at commit.
		s.phases = append(s.phases, phaseRec{
			warpInstrs: warpInstrs,
			l2:         l2,
			stall:      stall,
			ops:        s.curOps,
			events:     s.curEv,
		})
		s.curOps = nil
		s.curEv = nil
		return
	}
	b.cycles += phaseCost(b.dev.cfg, warpInstrs, l2, nvm) + stall + b.barrierCost()

	b.totWarpInstrs += warpInstrs
	b.totL2Bytes += l2
	b.totNVMBytes += nvm
}
