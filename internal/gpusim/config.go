// Package gpusim is a deterministic functional-plus-timing simulator of a
// CUDA-style GPU, built as the execution substrate for the Lazy Persistency
// on GPUs reproduction (IISWC 2020).
//
// Functional model. A kernel is a Go function invoked once per thread
// block. Inside the kernel, code between barriers is expressed as phases:
// Block.ForAll runs a body for every thread of the block (SIMT threads),
// and Block.WarpPhase runs a body once per warp with vector (per-lane)
// register access, which is how warp shuffle reductions are written.
// Global memory is a memsim.Memory (an NVM-backed write-back hierarchy),
// so stores persist only via natural eviction — the property Lazy
// Persistency depends on. Shared memory is per-block scratch that never
// touches the hierarchy.
//
// Timing model. The simulator charges cycles with a roofline-plus-
// contention model, which preserves the three costs that drive every
// result in the paper:
//
//   - compute: warp-instructions per phase divided by SM issue width,
//     with divergence charged as the max lane cost within a warp;
//   - memory: bytes moved at L2 and at the NVM, each against a per-SM
//     bandwidth share (a phase costs max(compute, memory));
//   - serialization: atomics to the same memory word queue behind each
//     other on a device-wide discrete-event timeline, and locks are FIFO
//     resources whose hold times are measured from the critical section.
//
// Thread blocks are scheduled onto SM slots (earliest-free-slot, occupancy
// limited), so the number of concurrently running blocks — the key scaling
// variable in the paper — determines how much contention the timeline sees.
// Everything is deterministic; no wall-clock time or randomness is used.
package gpusim

// Config describes the simulated device.
type Config struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// WarpSize is the number of lanes per warp.
	WarpSize int
	// MaxBlocksPerSM limits concurrent resident blocks per SM.
	MaxBlocksPerSM int
	// MaxThreadsPerSM limits concurrent resident threads per SM.
	MaxThreadsPerSM int
	// IssueWidth is warp-instructions issued per cycle per SM.
	IssueWidth float64
	// L2BytesPerCycle is device-wide L2 bandwidth in bytes/cycle.
	L2BytesPerCycle float64
	// NVMBytesPerCycle is device-wide NVM bandwidth in bytes/cycle.
	NVMBytesPerCycle float64
	// AtomicServiceCycles is how long a memory word stays busy per atomic
	// operation; conflicting atomics queue at this spacing.
	AtomicServiceCycles int64
	// AtomicChannelCycles is the device-wide reciprocal throughput of the
	// atomic pipeline (cycles per atomic, regardless of address). Bursts
	// of atomics from many concurrent blocks queue on this channel even
	// when they touch distinct addresses.
	AtomicChannelCycles int64
	// LockHandoffCycles is the fixed cost to pass a lock between
	// owners (release store + next owner's successful acquire over the
	// spin variable).
	LockHandoffCycles int64
	// BarrierCycles is the cost of a __syncthreads barrier.
	BarrierCycles int64
	// BlockDispatchCycles is the rate at which the work distributor
	// hands blocks to SMs (cycles per block). It skews the start times
	// of same-wave blocks, as the GigaThread engine does — without it,
	// uniform-duration blocks would all hit the checksum table at the
	// exact same simulated instant.
	BlockDispatchCycles int64
	// ClockGHz converts cycles to time for reporting.
	ClockGHz float64
	// Workers is the number of host worker goroutines executing thread
	// blocks speculatively during the functional pass. Values <= 1 select
	// the serial engine. Any value produces bit-identical results — the
	// commit loop validates and replays speculative blocks in dispatch
	// order (see spec.go) — so Workers trades host CPU for wall-clock
	// speed without perturbing the simulation.
	Workers int
	// WatchdogSteps arms the kernel watchdog: a thread that charges more
	// than this many instructions within one phase is presumed hung (e.g.
	// a spin lock whose memory word is pinned by a stuck-at media fault)
	// and the launch is aborted with a typed WatchdogError plus a
	// consistent crash image, instead of livelocking the simulator. The
	// budget is counted in charged steps of the deterministic functional
	// pass — a simulated clock, never wall time — so an abort is
	// bit-identical across Workers settings. 0 disables the watchdog.
	WatchdogSteps int64
}

// DefaultConfig returns a Volta-class device: 80 SMs, 32-lane warps, and an
// NVM memory system matching §VII-3 of the paper (326.4 GB/s at 1.455 GHz
// ≈ 224 bytes/cycle device-wide).
func DefaultConfig() Config {
	return Config{
		NumSMs:              80,
		WarpSize:            32,
		MaxBlocksPerSM:      8,
		MaxThreadsPerSM:     2048,
		IssueWidth:          4,
		L2BytesPerCycle:     1600, // ~2.3 TB/s L2
		NVMBytesPerCycle:    224,  // 326.4 GB/s at 1.455 GHz
		AtomicServiceCycles: 24,
		AtomicChannelCycles: 4,
		LockHandoffCycles:   220,
		BarrierCycles:       16,
		BlockDispatchCycles: 2,
		ClockGHz:            1.455,
	}
}

// Validate reports the first invalid field as a *ConfigError wrapping
// ErrConfig, or nil when the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return &ConfigError{Field: "NumSMs", Reason: "must be positive"}
	case c.WarpSize <= 0:
		return &ConfigError{Field: "WarpSize", Reason: "must be positive"}
	case c.MaxBlocksPerSM <= 0:
		return &ConfigError{Field: "MaxBlocksPerSM", Reason: "must be positive"}
	case c.MaxThreadsPerSM <= 0:
		return &ConfigError{Field: "MaxThreadsPerSM", Reason: "must be positive"}
	case c.IssueWidth <= 0:
		return &ConfigError{Field: "IssueWidth", Reason: "must be positive"}
	case c.L2BytesPerCycle <= 0:
		return &ConfigError{Field: "L2BytesPerCycle", Reason: "must be positive"}
	case c.NVMBytesPerCycle <= 0:
		return &ConfigError{Field: "NVMBytesPerCycle", Reason: "must be positive"}
	case c.WatchdogSteps < 0:
		return &ConfigError{Field: "WatchdogSteps", Reason: "must be non-negative (0 disables)"}
	}
	return nil
}

// CyclesToMS converts a cycle count to milliseconds at the device clock.
func (c Config) CyclesToMS(cycles int64) float64 {
	return float64(cycles) / (c.ClockGHz * 1e9) * 1e3
}

// Dim3 is a CUDA-style 3-component extent or index.
type Dim3 struct{ X, Y, Z int }

// D1 returns a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{x, 1, 1} }

// D2 returns a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{x, y, 1} }

// D3 returns a three-dimensional Dim3.
func D3(x, y, z int) Dim3 { return Dim3{x, y, z} }

// Size returns the number of elements covered by the extent.
func (d Dim3) Size() int { return d.X * d.Y * d.Z }

// Linear returns the linearized index of idx within extent d
// (x fastest, z slowest).
func (d Dim3) Linear(idx Dim3) int {
	return (idx.Z*d.Y+idx.Y)*d.X + idx.X
}

// Unlinear is the inverse of Linear.
func (d Dim3) Unlinear(lin int) Dim3 {
	x := lin % d.X
	y := (lin / d.X) % d.Y
	z := lin / (d.X * d.Y)
	return Dim3{x, y, z}
}
