package gpusim

import (
	"sync"
	"sync/atomic"

	"gpulp/internal/memsim"
)

// runAheadPerWorker bounds how many uncommitted speculative traces may be
// in flight per worker. The bound keeps trace memory proportional to the
// pool size rather than the grid size while still hiding worker latency
// behind the commit loop.
const runAheadPerWorker = 4

// runSpecBlock executes one block speculatively on a worker goroutine. It
// never touches the live memory hierarchy; any panic (possible when stale
// snapshot state produces garbage control flow) is absorbed into
// needReexec — a genuine fault will re-panic during the direct
// re-execution at commit.
func (d *Device) runSpecBlock(grid, block Dim3, kernel KernelFunc, lin int, snap *memsim.Snapshot) (b *Block) {
	b = &Block{
		dev:       d,
		Idx:       grid.Unlinear(lin),
		BlockDim:  block,
		GridDim:   grid,
		LinearIdx: lin,
		shared:    map[string]any{},
		spec:      &specState{snap: snap, overlay: map[uint64]uint32{}},
	}
	defer func() {
		if r := recover(); r != nil {
			b.spec.needReexec = true
		}
	}()
	kernel(b)
	return b
}

// reexecBlock runs one block directly (non-speculatively) at its committed
// dispatch position — the exact code path the serial engine uses. A
// watchdog abort is returned, not propagated: the commit loop converts it
// exactly as the serial engine would.
func (d *Device) reexecBlock(grid, block Dim3, kernel KernelFunc, lin int, start int64) (*Block, *WatchdogError) {
	b := &Block{
		dev:       d,
		Idx:       grid.Unlinear(lin),
		BlockDim:  block,
		GridDim:   grid,
		LinearIdx: lin,
		startTime: start,
		shared:    map[string]any{},
	}
	wd := runBlockGuarded(kernel, b)
	return b, wd
}

// runBlocksParallel is the functional pass on a host worker pool: workers
// claim blocks in dispatch order and execute them speculatively against a
// frozen snapshot; the committer (this goroutine) consumes the results in
// dispatch order, validating and replaying each trace — or re-executing
// the block directly — so every observable output is bit-identical to
// runBlocksSerial. Crash triggers are evaluated at the same points as the
// serial loop, against the same greedy schedule.
func (d *Device) runBlocksParallel(grid, block Dim3, kernel KernelFunc, order []int, slots []int64, res *LaunchResult) []blockRec {
	workers := d.cfg.Workers
	if workers > len(order) {
		workers = len(order)
	}
	snap := d.mem.BeginSnapshot()

	results := make([]chan *Block, len(order))
	for i := range results {
		// Buffered so a worker's send never blocks: the committer may stop
		// consuming early when a crash trigger fires.
		results[i] = make(chan *Block, 1)
	}
	inflight := workers * runAheadPerWorker
	if inflight > len(order) {
		inflight = len(order)
	}
	tickets := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		tickets <- struct{}{}
	}
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-tickets:
				case <-done:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					return
				}
				results[i] <- d.runSpecBlock(grid, block, kernel, order[i], snap)
			}
		}()
	}

	// finish stops the pool and deactivates the snapshot. It must run
	// before a crash trigger fires: Fire mutates the hierarchy, and no
	// worker may be reading the snapshot while it does.
	finished := false
	finish := func() {
		if finished {
			return
		}
		finished = true
		close(done)
		wg.Wait()
		d.mem.EndSnapshot()
	}
	defer finish()

	recs := make([]blockRec, 0, len(order))
	scratch := map[uint64]uint32{}
	for orderIdx, lin := range order {
		// Earliest-free slot and dispatch skew: identical arithmetic to the
		// serial pass.
		slot := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[slot] {
				slot = i
			}
		}
		start := slots[slot]
		if minStart := int64(orderIdx) * d.cfg.BlockDispatchCycles; start < minStart {
			start = minStart
		}
		if tr := d.crash; tr != nil && tr.AtCycle > 0 && start >= tr.AtCycle {
			finish()
			d.fireCrash()
			res.Interrupted = true
			return recs
		}

		b := <-results[orderIdx]
		if d.validateSpec(b, scratch) {
			d.replaySpec(b, start)
			for _, fn := range b.onCommit {
				fn()
			}
			b.onCommit = nil
		} else {
			// A speculative watchdog trip was absorbed into needReexec, so
			// a genuinely hung block re-trips here, at its exact dispatch
			// position — bit-identical to the serial abort.
			var wd *WatchdogError
			b, wd = d.reexecBlock(grid, block, kernel, lin, start)
			if wd != nil {
				finish()
				d.mem.Crash()
				res.Interrupted = true
				res.Watchdog = wd
				return recs
			}
		}

		slots[slot] = start + b.cycles
		recs = append(recs, blockRec{base: b.cycles, events: b.events})
		res.WarpInstrs += b.totWarpInstrs
		res.L2Bytes += b.totL2Bytes
		res.NVMBytes += b.totNVMBytes
		res.AtomicStallCycles += b.totAtomicStall

		// Heartbeat and external abort: the identical observation point to
		// the serial engine (after a block commits, before crash triggers).
		if hb := d.heartbeat; hb != nil {
			hb(Heartbeat{Device: d.id, Launch: d.launchName, Blocks: len(recs), Cycle: slots[slot]})
		}
		if d.abortPending {
			d.abortPending = false
			finish()
			d.mem.Crash()
			res.Interrupted = true
			res.Aborted = true
			return recs
		}
		if tr := d.crash; tr != nil && tr.AfterBlocks > 0 && len(recs) >= tr.AfterBlocks {
			finish()
			d.fireCrash()
			res.Interrupted = true
			return recs
		}
		tickets <- struct{}{}
	}
	finish()
	return recs
}
