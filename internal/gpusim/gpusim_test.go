package gpusim

import (
	"testing"
	"testing/quick"

	"gpulp/internal/memsim"
)

func testDevice() *Device {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxBlocksPerSM = 2
	mem := memsim.MustNew(memsim.Config{
		LineSize: 128, CacheBytes: 1 << 20, Ways: 8,
		NVMReadNS: 160, NVMWriteNS: 480, NVMBandwidthGBs: 326.4,
	})
	return MustNew(cfg, mem)
}

func TestDim3(t *testing.T) {
	d := D3(4, 3, 2)
	if d.Size() != 24 {
		t.Fatalf("Size = %d, want 24", d.Size())
	}
	for lin := 0; lin < d.Size(); lin++ {
		idx := d.Unlinear(lin)
		if got := d.Linear(idx); got != lin {
			t.Fatalf("Linear(Unlinear(%d)) = %d", lin, got)
		}
	}
	if D1(7) != (Dim3{7, 1, 1}) || D2(3, 4) != (Dim3{3, 4, 1}) {
		t.Error("D1/D2 constructors wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	mem := memsim.MustNew(memsim.DefaultConfig())
	bad := DefaultConfig()
	bad.NumSMs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with 0 SMs did not panic")
		}
	}()
	MustNew(bad, mem)
}

func TestLaunchFunctional(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 1024*4)
	res := d.Launch("fill", D1(8), D1(128), func(b *Block) {
		b.ForAll(func(th *Thread) {
			gid := th.GlobalLinear()
			th.StoreI32(out, gid, int32(gid*3))
		})
	})
	if res.Blocks != 8 {
		t.Errorf("Blocks = %d, want 8", res.Blocks)
	}
	if res.Cycles <= 0 {
		t.Errorf("Cycles = %d, want > 0", res.Cycles)
	}
	for i := 0; i < 1024; i++ {
		if got := out.PeekI32(i); got != int32(i*3) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*3)
		}
	}
}

func TestBlockAndThreadGeometry(t *testing.T) {
	d := testDevice()
	seenBlocks := map[int]bool{}
	d.Launch("geom", D2(2, 3), D2(8, 4), func(b *Block) {
		if b.GridDim != D2(2, 3) || b.BlockDim != D2(8, 4) {
			t.Errorf("bad dims: %+v", b)
		}
		seenBlocks[b.LinearIdx] = true
		if b.NumWarps() != 1 {
			t.Errorf("NumWarps = %d, want 1 for 32 threads", b.NumWarps())
		}
		lanes := map[int]bool{}
		b.ForAll(func(th *Thread) {
			if th.WarpID != 0 {
				t.Errorf("WarpID = %d", th.WarpID)
			}
			lanes[th.Lane] = true
			if got := b.BlockDim.Linear(th.Idx); got != th.Linear {
				t.Errorf("thread Idx/Linear mismatch: %v -> %d != %d", th.Idx, got, th.Linear)
			}
		})
		if len(lanes) != 32 {
			t.Errorf("saw %d lanes, want 32", len(lanes))
		}
	})
	if len(seenBlocks) != 6 {
		t.Errorf("executed %d blocks, want 6", len(seenBlocks))
	}
}

func TestLaunchSelected(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 64*4)
	kernel := func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				th.StoreI32(out, b.LinearIdx, 1)
			}
		})
	}
	res := d.LaunchSelected("sel", D1(64), D1(32), kernel, []int{3, 17, 42})
	if res.Blocks != 3 {
		t.Errorf("Blocks = %d, want 3", res.Blocks)
	}
	for i := 0; i < 64; i++ {
		want := int32(0)
		if i == 3 || i == 17 || i == 42 {
			want = 1
		}
		if got := out.PeekI32(i); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestLaunchSelectedEmpty(t *testing.T) {
	d := testDevice()
	res := d.LaunchSelected("none", D1(4), D1(32), func(b *Block) {}, nil)
	if res.Blocks != 0 || res.Cycles != 0 {
		t.Errorf("empty selection ran something: %+v", res)
	}
}

func TestSharedMemoryPerBlock(t *testing.T) {
	d := testDevice()
	out := d.Alloc("out", 16*4)
	d.Launch("shmem", D1(16), D1(32), func(b *Block) {
		s := b.SharedI32("acc", 1)
		b.ForAll(func(th *Thread) {
			th.Op(1)
			s[0]++ // all threads of this block bump the shared counter
		})
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				th.StoreI32(out, b.LinearIdx, s[0])
			}
		})
	})
	for i := 0; i < 16; i++ {
		if got := out.PeekI32(i); got != 32 {
			t.Errorf("block %d shared count = %d, want 32 (leaked across blocks?)", i, got)
		}
	}
}

func TestSharedResizePanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("shared realloc with different size did not panic")
		}
	}()
	d.Launch("bad", D1(1), D1(32), func(b *Block) {
		b.SharedF32("x", 4)
		b.SharedF32("x", 8)
	})
}

func TestWarpShuffleDown(t *testing.T) {
	d := testDevice()
	d.Launch("shfl", D1(1), D1(32), func(b *Block) {
		b.WarpPhase(func(w *Warp) {
			v := make([]uint64, w.Lanes)
			for i := range v {
				v[i] = uint64(i)
			}
			got := w.ShuffleDownU64(v, 16)
			for i := 0; i < 16; i++ {
				if got[i] != uint64(i+16) {
					t.Errorf("lane %d got %d, want %d", i, got[i], i+16)
				}
			}
			// Out-of-range lanes keep their own value.
			for i := 16; i < 32; i++ {
				if got[i] != uint64(i) {
					t.Errorf("lane %d got %d, want own value %d", i, got[i], i)
				}
			}
		})
	})
}

func TestWarpReduce(t *testing.T) {
	d := testDevice()
	d.Launch("reduce", D1(1), D1(64), func(b *Block) {
		b.WarpPhase(func(w *Warp) {
			v := make([]uint64, w.Lanes)
			var wantSum, wantXor uint64
			for i := range v {
				v[i] = uint64(i*7 + w.ID)
				wantSum += v[i]
				wantXor ^= v[i]
			}
			if got := w.ReduceAdd(v); got != wantSum {
				t.Errorf("warp %d ReduceAdd = %d, want %d", w.ID, got, wantSum)
			}
			if got := w.ReduceXor(v); got != wantXor {
				t.Errorf("warp %d ReduceXor = %d, want %d", w.ID, got, wantXor)
			}
		})
	})
}

func TestWarpReducePartialWarp(t *testing.T) {
	d := testDevice()
	d.Launch("partial", D1(1), D1(40), func(b *Block) { // 1 full + 1 partial warp
		warps := 0
		b.WarpPhase(func(w *Warp) {
			warps++
			v := make([]uint64, w.Lanes)
			var want uint64
			for i := range v {
				v[i] = uint64(i + 1)
				want += v[i]
			}
			if got := w.ReduceAdd(v); got != want {
				t.Errorf("warp %d (lanes=%d) ReduceAdd = %d, want %d", w.ID, w.Lanes, got, want)
			}
		})
		if warps != 2 {
			t.Errorf("saw %d warps, want 2", warps)
		}
	})
}

func TestAtomicAddCorrectness(t *testing.T) {
	d := testDevice()
	ctr := d.Alloc("ctr", 4)
	ctr.HostZero()
	d.Launch("atomadd", D1(4), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.AtomicAddI32(ctr, 0, 1)
		})
	})
	if got := ctr.PeekI32(0); got != 256 {
		t.Errorf("counter = %d, want 256", got)
	}
}

func TestAtomicCASClaimsOnce(t *testing.T) {
	d := testDevice()
	slot := d.Alloc("slot", 8)
	slot.HostZero()
	winners := d.Alloc("winners", 4)
	winners.HostZero()
	d.Launch("cas", D1(2), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) {
			old := th.AtomicCASU64(slot, 0, 0, uint64(th.GlobalLinear()+1))
			if old == 0 {
				th.AtomicAddI32(winners, 0, 1)
			}
		})
	})
	if got := winners.PeekI32(0); got != 1 {
		t.Errorf("CAS winners = %d, want exactly 1", got)
	}
}

func TestAtomicExch(t *testing.T) {
	d := testDevice()
	slot := d.Alloc("slot", 8)
	slot.HostWriteU64s([]uint64{7})
	var old uint64
	d.Launch("exch", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				old = th.AtomicExchU64(slot, 0, 99)
			}
		})
	})
	if old != 7 || slot.PeekU64(0) != 99 {
		t.Errorf("exch old=%d new=%d, want 7/99", old, slot.PeekU64(0))
	}
}

func TestAtomicContentionCostsTime(t *testing.T) {
	d := testDevice()
	hot := d.Alloc("hot", 4)
	hot.HostZero()
	cold := d.Alloc("cold", 64*64*4)
	cold.HostZero()

	same := d.Launch("same-addr", D1(8), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) { th.AtomicAddI32(hot, 0, 1) })
	})
	// Fresh device to reset the timeline fairly.
	d2 := testDevice()
	cold2 := d2.Alloc("cold", 64*64*4)
	cold2.HostZero()
	diff := d2.Launch("diff-addr", D1(8), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.AtomicAddI32(cold2, th.GlobalLinear()*8, 1) // distinct sectors
		})
	})
	if same.AtomicStallCycles <= diff.AtomicStallCycles {
		t.Errorf("same-address atomics stalled %d cycles <= distinct-address %d",
			same.AtomicStallCycles, diff.AtomicStallCycles)
	}
	if same.Cycles <= diff.Cycles {
		t.Errorf("same-address launch (%d cycles) not slower than distinct (%d)",
			same.Cycles, diff.Cycles)
	}
}

func TestLockMutualCostAndStats(t *testing.T) {
	d := testDevice()
	lock := d.NewLock("table")
	ctr := d.Alloc("ctr", 4)
	ctr.HostZero()
	res := d.Launch("locked", D1(16), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				th.LockAcquire(lock)
				v := th.LoadI32(ctr, 0)
				th.StoreI32(ctr, 0, v+1)
				th.LockRelease(lock)
			}
		})
	})
	if got := ctr.PeekI32(0); got != 16 {
		t.Errorf("counter = %d, want 16", got)
	}
	if lock.Acquisitions() != 16 {
		t.Errorf("acquisitions = %d, want 16", lock.Acquisitions())
	}
	if res.LockStallCycles == 0 {
		t.Error("no lock stall recorded despite contention")
	}
	if lock.Name() != "table" {
		t.Errorf("lock name = %q", lock.Name())
	}
}

func TestLockStallGrowsWithContenders(t *testing.T) {
	run := func(blocks int) int64 {
		d := testDevice()
		lock := d.NewLock("l")
		res := d.Launch("lk", D1(blocks), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if th.Linear == 0 {
					th.LockAcquire(lock)
					th.Op(50)
					th.LockRelease(lock)
				}
			})
		})
		return res.Cycles
	}
	small, big := run(8), run(256)
	if big <= small*4 {
		t.Errorf("lock serialization does not scale: 8 blocks = %d cycles, 256 blocks = %d", small, big)
	}
}

func TestLockMisusePanics(t *testing.T) {
	d := testDevice()
	lock := d.NewLock("l")
	t.Run("release unheld", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		d.Launch("bad", D1(1), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) { th.LockRelease(lock) })
		})
	})
	t.Run("exit phase holding", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		d.Launch("bad2", D1(1), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if th.Linear == 0 {
					th.LockAcquire(lock)
				}
			})
		})
	})
}

func TestDivergenceChargesMaxLane(t *testing.T) {
	d := testDevice()
	uniform := d.Launch("uniform", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(100) })
	})
	divergent := d.Launch("divergent", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Lane == 0 {
				th.Op(100)
			} else {
				th.Op(1)
			}
		})
	})
	if divergent.WarpInstrs != uniform.WarpInstrs {
		t.Errorf("divergent warp cost %d != max-lane cost %d", divergent.WarpInstrs, uniform.WarpInstrs)
	}
}

func TestMoreWorkMoreCycles(t *testing.T) {
	d := testDevice()
	light := d.Launch("light", D1(32), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(10) })
	})
	heavy := d.Launch("heavy", D1(32), D1(64), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(1000) })
	})
	if heavy.Cycles <= light.Cycles {
		t.Errorf("heavy %d cycles <= light %d", heavy.Cycles, light.Cycles)
	}
}

func TestSchedulerOverlapsBlocks(t *testing.T) {
	// With 8 slots (4 SMs x 2 blocks), 8 identical blocks should take about
	// the same time as 1, and 64 blocks about 8x one wave. Dispatch skew is
	// disabled to make the wave arithmetic exact.
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxBlocksPerSM = 2
	cfg.BlockDispatchCycles = 0
	d := MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
	kernel := func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(1000) })
	}
	one := d.Launch("one", D1(1), D1(64), kernel)
	eight := d.Launch("eight", D1(8), D1(64), kernel)
	sixtyFour := d.Launch("64", D1(64), D1(64), kernel)
	if eight.Cycles != one.Cycles {
		t.Errorf("8 blocks on 8 slots = %d cycles, want %d (full overlap)", eight.Cycles, one.Cycles)
	}
	if want := one.Cycles * 8; sixtyFour.Cycles != want {
		t.Errorf("64 blocks = %d cycles, want %d (8 waves)", sixtyFour.Cycles, want)
	}
}

func TestOccupancyLimitedByThreads(t *testing.T) {
	// MaxThreadsPerSM=2048; blocks of 1024 threads allow only 2 per SM even
	// though MaxBlocksPerSM is higher in this config.
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxBlocksPerSM = 8
	cfg.MaxThreadsPerSM = 2048
	mem := memsim.MustNew(memsim.DefaultConfig())
	d := MustNew(cfg, mem)
	res := d.Launch("big-blocks", D1(4), D1(1024), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(100) })
	})
	if res.MaxConcurrency != 2 {
		t.Errorf("MaxConcurrency = %d, want 2", res.MaxConcurrency)
	}
}

func TestMemoryTrafficAccounted(t *testing.T) {
	d := testDevice()
	data := d.Alloc("data", 1<<20)
	res := d.Launch("stream", D1(16), D1(128), func(b *Block) {
		b.ForAll(func(th *Thread) {
			gid := th.GlobalLinear()
			v := th.LoadF32(data, gid*32) // stride past line size: all misses
			th.StoreF32(data, gid*32, v+1)
		})
	})
	if res.L2Bytes == 0 || res.NVMBytes == 0 {
		t.Errorf("traffic not accounted: %+v", res)
	}
	stats := d.Mem().Stats()
	if stats.Misses == 0 {
		t.Error("strided stream produced no misses")
	}
}

func TestBandwidthBoundSlower(t *testing.T) {
	// Same instruction count; one variant streams memory. The streaming
	// variant must be slower under the roofline.
	d := testDevice()
	data := d.Alloc("data", 8<<20)
	compute := d.Launch("compute", D1(32), D1(128), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(64) })
	})
	stream := d.Launch("stream", D1(32), D1(128), func(b *Block) {
		b.ForAll(func(th *Thread) {
			gid := th.GlobalLinear()
			for k := 0; k < 32; k++ {
				th.LoadF32(data, (gid*32+k*131)%(2<<20))
				th.Op(1)
			}
		})
	})
	if stream.Cycles <= compute.Cycles {
		t.Errorf("memory-streaming kernel (%d) not slower than compute (%d)", stream.Cycles, compute.Cycles)
	}
}

func TestLaunchPanicsOnBadArgs(t *testing.T) {
	d := testDevice()
	for _, tc := range []struct {
		name  string
		grid  Dim3
		block Dim3
	}{
		{"empty grid", D1(0), D1(32)},
		{"empty block", D1(1), D1(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			d.Launch("bad", tc.grid, tc.block, func(b *Block) {})
		})
	}
	t.Run("nil kernel", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		d.Launch("bad", D1(1), D1(1), nil)
	})
	t.Run("selected out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		d.LaunchSelected("bad", D1(4), D1(32), func(b *Block) {}, []int{4})
	})
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		d := testDevice()
		tbl := d.Alloc("tbl", 4096*8)
		tbl.HostZero()
		res := d.Launch("mix", D1(32), D1(64), func(b *Block) {
			b.ForAll(func(th *Thread) {
				th.Op(17)
				th.AtomicCASU64(tbl, (th.GlobalLinear()*31)%4096, 0, uint64(th.GlobalLinear()))
			})
		})
		return res.Cycles, res.AtomicStallCycles
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("nondeterministic launch: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestResultString(t *testing.T) {
	d := testDevice()
	res := d.Launch("k", D1(1), D1(32), func(b *Block) { b.ForAll(func(th *Thread) { th.Op(1) }) })
	if res.String() == "" {
		t.Error("empty String()")
	}
}

// TestPropertyWarpReduceMatchesScalar checks ReduceAdd/ReduceXor against a
// scalar fold for arbitrary lane values.
func TestPropertyWarpReduceMatchesScalar(t *testing.T) {
	d := testDevice()
	f := func(vals [32]uint64) bool {
		var wantSum, wantXor uint64
		for _, v := range vals {
			wantSum += v
			wantXor ^= v
		}
		ok := true
		d.Launch("prop", D1(1), D1(32), func(b *Block) {
			b.WarpPhase(func(w *Warp) {
				if w.ReduceAdd(vals[:]) != wantSum || w.ReduceXor(vals[:]) != wantXor {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCyclesToMS(t *testing.T) {
	cfg := DefaultConfig()
	ms := cfg.CyclesToMS(int64(cfg.ClockGHz * 1e9)) // one second of cycles
	if ms < 999 || ms > 1001 {
		t.Errorf("CyclesToMS(1s) = %v ms", ms)
	}
}
