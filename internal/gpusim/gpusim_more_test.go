package gpusim

import (
	"testing"

	"gpulp/internal/memsim"
)

func TestAtomicAddXorU64(t *testing.T) {
	d := testDevice()
	r := d.Alloc("r", 16)
	r.HostWriteU64s([]uint64{10, 0b1100})
	var oldAdd, oldXor uint64
	d.Launch("rmw", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				oldAdd = th.AtomicAddU64(r, 0, 5)
				oldXor = th.AtomicXorU64(r, 1, 0b1010)
			}
		})
	})
	if oldAdd != 10 || r.PeekU64(0) != 15 {
		t.Errorf("AtomicAddU64: old=%d new=%d, want 10/15", oldAdd, r.PeekU64(0))
	}
	if oldXor != 0b1100 || r.PeekU64(1) != 0b0110 {
		t.Errorf("AtomicXorU64: old=%b new=%b, want 1100/0110", oldXor, r.PeekU64(1))
	}
}

func TestSerializeOnCostsLikeAtomics(t *testing.T) {
	// Many SerializeOn calls to the same sector must queue like atomics.
	run := func(serialize bool) int64 {
		d := testDevice()
		r := d.Alloc("r", 64)
		res := d.Launch("ser", D1(64), D1(32), func(b *Block) {
			b.ForAll(func(th *Thread) {
				if th.Linear == 0 && serialize {
					th.SerializeOn(r, 0)
				}
				th.Op(10)
			})
		})
		return res.Cycles
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Errorf("SerializeOn added no cost: %d vs %d", with, without)
	}
}

func TestStoreHookObservesAllWidths(t *testing.T) {
	d := testDevice()
	r := d.Alloc("r", 64)
	var got []uint32
	d.SetStoreHook(func(th *Thread, reg memsim.Region, idx int, bits uint32) {
		got = append(got, bits)
	})
	defer d.SetStoreHook(nil)
	d.Launch("hooked", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear != 0 {
				return
			}
			th.StoreU32(r, 0, 7)
			th.StoreI32(r, 1, -2)
			th.StoreF32(r, 2, 3.5)
			th.StoreU64(r, 2, 0x0000000100000002) // halves: 2, 1
		})
	})
	minusTwo := int32(-2)
	want := []uint32{7, uint32(minusTwo), 1080033280, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d stores, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStoreHookRestore(t *testing.T) {
	d := testDevice()
	h := StoreHook(func(*Thread, memsim.Region, int, uint32) {})
	if prev := d.SetStoreHook(h); prev != nil {
		t.Error("fresh device had a hook installed")
	}
	if prev := d.SetStoreHook(nil); prev == nil {
		t.Error("SetStoreHook did not return the previous hook")
	}
}

func TestDispatchSkewStaggersStarts(t *testing.T) {
	// With dispatch skew, even empty-ish blocks cannot all start at 0, so
	// a launch of N blocks takes at least N*skew cycles.
	cfg := DefaultConfig()
	cfg.NumSMs = 80
	cfg.BlockDispatchCycles = 2
	d := MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
	res := d.Launch("tiny", D1(1000), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) { th.Op(1) })
	})
	if res.Cycles < 2*999 {
		t.Errorf("launch of 1000 blocks took %d cycles, want >= %d (dispatch skew)", res.Cycles, 2*999)
	}
}

func TestBarrierCostScalesWithWarps(t *testing.T) {
	d := testDevice()
	run := func(threads int) int64 {
		res := d.Launch("b", D1(1), D1(threads), func(b *Block) {
			for p := 0; p < 10; p++ {
				b.ForAll(func(th *Thread) { th.Op(1) })
			}
		})
		return res.Cycles
	}
	small, big := run(32), run(256)
	if big <= small {
		t.Errorf("8-warp barriers (%d cycles) not more expensive than 1-warp (%d)", big, small)
	}
}

func TestLockContendedCounter(t *testing.T) {
	d := testDevice()
	lock := d.NewLock("l")
	d.Launch("lk", D1(8), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				th.LockAcquire(lock)
				th.Op(100)
				th.LockRelease(lock)
			}
		})
	})
	if lock.Contended() == 0 {
		t.Error("8 overlapping critical sections recorded no contention")
	}
	if lock.Acquisitions() != 8 {
		t.Errorf("acquisitions = %d, want 8", lock.Acquisitions())
	}
}

func TestScheduleFixedPointStable(t *testing.T) {
	// Repeated identical launches after the damped fixed point must give
	// identical cycle counts (no residual state between launches).
	d := testDevice()
	tbl := d.Alloc("tbl", 512*32)
	tbl.HostZero()
	kernel := func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				th.AtomicCASU64(tbl, (b.LinearIdx*7)%512*4, 0, uint64(b.LinearIdx)+1)
			}
			th.Op(20)
		})
	}
	var prev int64 = -1
	for i := 0; i < 3; i++ {
		tbl.HostZero()
		res := d.Launch("fp", D1(256), D1(32), kernel)
		if prev >= 0 && res.Cycles != prev {
			t.Fatalf("launch %d took %d cycles, previous %d", i, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestRacyTouchSameActorNoRace(t *testing.T) {
	d := testDevice()
	r := d.Alloc("r", 64)
	var first, second bool
	d.Launch("touch", D1(1), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 {
				first = th.RacyTouch(r, 0, 1000)
				second = th.RacyTouch(r, 0, 1000)
			}
		})
	})
	if first || second {
		t.Error("a thread raced with its own touches")
	}
}

func TestRacyTouchCrossActorRace(t *testing.T) {
	d := testDevice()
	r := d.Alloc("r", 64)
	races := 0
	d.Launch("touch", D1(2), D1(32), func(b *Block) {
		b.ForAll(func(th *Thread) {
			if th.Linear == 0 && th.RacyTouch(r, 0, 1_000_000) {
				races++
			}
		})
	})
	if races != 1 {
		t.Errorf("second block should race with the first: races=%d", races)
	}
}
