package gpusim

import "sort"

// opEvent is a serialization-sensitive operation recorded during the
// functional pass: an atomic (which occupies its memory sector and the
// device-wide atomic channel) or a lock acquisition (which occupies the
// lock for its measured hold time).
type opEvent struct {
	// offset is the issue time relative to the block's start, before any
	// queueing delays.
	offset int64
	// addr is the memory sector for atomics (lock == nil).
	addr uint64
	// lock is non-nil for lock acquisitions; hold is the critical
	// section length including handoff.
	lock *Lock
	hold int64
}

// blockRec captures one executed block for timing reconstruction.
type blockRec struct {
	base   int64 // cycles excluding queueing delays
	events []opEvent
	stall  int64 // total queueing delay (computed)
	start  int64 // scheduled start (computed)
}

// schedule computes the launch timing as a damped fixed point: block
// start times follow from the greedy earliest-free-slot scheduler given
// block durations; durations include queueing delays; and delays follow
// from a global time-ordered sweep of all serialization events given
// start times.
//
// This two-pass structure exists because blocks execute functionally in
// dispatch order, not simulated-time order: computing delays inline
// would let a slow early-dispatched block spuriously delay operations
// that physically precede it. The damping exists because the raw
// fixed-point map oscillates — a stretched schedule relaxes contention,
// which compresses the schedule, which restores contention; averaging
// converges to the self-limiting steady state a true event-driven
// simulation reaches.
func (d *Device) schedule(blocks []blockRec, slots int) (cycles, atomicStall, lockStall int64) {
	cfg := d.cfg
	type flatEvent struct {
		time  int64
		blk   int
		idx   int
		order int
	}
	// eff is the damped per-event delay; cumBefore its prefix sums
	// (shifting later events within the same block).
	eff := make([][]int64, len(blocks))
	cumBefore := make([][]int64, len(blocks))
	nEvents := 0
	for i := range blocks {
		eff[i] = make([]int64, len(blocks[i].events))
		cumBefore[i] = make([]int64, len(blocks[i].events))
		nEvents += len(blocks[i].events)
	}

	reschedule := func() {
		free := make([]int64, slots)
		for i := range blocks {
			slot := 0
			for s := 1; s < len(free); s++ {
				if free[s] < free[slot] {
					slot = s
				}
			}
			start := free[slot]
			if minStart := int64(i) * cfg.BlockDispatchCycles; start < minStart {
				start = minStart
			}
			blocks[i].start = start
			free[slot] = start + blocks[i].base + blocks[i].stall
		}
	}

	events := make([]flatEvent, 0, nEvents)
	sectorFree := map[uint64]int64{}
	lockFree := map[*Lock]int64{}

	const maxIters = 12
	for iter := 0; iter < maxIters && nEvents > 0; iter++ {
		reschedule()

		// Sweep all events in simulated-time order.
		events = events[:0]
		for i := range blocks {
			for j := range blocks[i].events {
				events = append(events, flatEvent{
					time: blocks[i].start + blocks[i].events[j].offset + cumBefore[i][j],
					blk:  i, idx: j, order: len(events),
				})
			}
		}
		sort.Slice(events, func(a, b int) bool {
			if events[a].time != events[b].time {
				return events[a].time < events[b].time
			}
			return events[a].order < events[b].order
		})

		clear(sectorFree)
		clear(lockFree)
		var chanFree int64
		for _, l := range d.locks {
			l.contended = 0
		}
		changed := int64(0)
		for _, fe := range events {
			ev := &blocks[fe.blk].events[fe.idx]
			var delay int64
			if ev.lock != nil {
				start := fe.time
				if f := lockFree[ev.lock]; f > start {
					start = f
					ev.lock.contended++
				}
				delay = start - fe.time
				lockFree[ev.lock] = start + ev.hold
			} else {
				start := fe.time
				if f := sectorFree[ev.addr]; f > start {
					start = f
				}
				if chanFree > start {
					start = chanFree
				}
				delay = start - fe.time
				sectorFree[ev.addr] = start + cfg.AtomicServiceCycles
				if cfg.AtomicChannelCycles > 0 {
					chanFree = start + cfg.AtomicChannelCycles
				}
			}
			// Damped update toward the sweep's delay.
			next := (eff[fe.blk][fe.idx] + delay + 1) / 2
			if diff := next - eff[fe.blk][fe.idx]; diff > 0 {
				changed += diff
			} else {
				changed -= diff
			}
			eff[fe.blk][fe.idx] = next
		}

		for i := range blocks {
			var cum int64
			for j := range blocks[i].events {
				cumBefore[i][j] = cum
				cum += eff[i][j]
			}
			blocks[i].stall = cum
		}
		if changed == 0 {
			break
		}
	}

	// Recompute starts once more with the final stalls so block end times
	// are consistent with the durations the sweep settled on.
	reschedule()

	for i := range blocks {
		end := blocks[i].start + blocks[i].base + blocks[i].stall
		if end > cycles {
			cycles = end
		}
		for j, ev := range blocks[i].events {
			if ev.lock != nil {
				lockStall += eff[i][j]
			} else {
				atomicStall += eff[i][j]
			}
		}
	}
	return cycles, atomicStall, lockStall
}
