package gpusim

import (
	"encoding/binary"
	"fmt"

	"gpulp/internal/memsim"
)

// Speculative block execution.
//
// When Config.Workers > 1, blocks run functionally on a host worker pool
// before their dispatch-order turn. A speculative block never touches the
// live memory hierarchy: it reads through a frozen memsim.Snapshot plus a
// private write overlay, and records everything it did — every memory
// operation with its observed value, every phase's charge inputs, every
// serialization event — into a trace. The commit loop (parallel.go)
// consumes traces strictly in dispatch order: it validates that each
// recorded load still observes the recorded value against the live
// hierarchy, replays the operation stream through the real memsim.Memory
// (reconstructing the exact cache, statistics, and NVM trajectory the
// serial engine would have produced), and recomputes the timing from the
// recorded charge inputs plus the replay's real NVM traffic. A block
// whose loads went stale — or that used an order-sensitive primitive like
// RacyTouch — is simply re-executed directly at its committed position,
// which is bit-identical to serial execution by construction.

// specOpKind tags one traced memory operation.
type specOpKind uint8

const (
	opLoad specOpKind = iota
	opStore
	opFlush
)

// specOp is one traced memory operation of a speculative block.
type specOp struct {
	op   specOpKind
	size uint8 // access size in bytes (4 or 8); unused for opFlush
	// charged reports whether the access was charged to the thread
	// (instruction + L2 sector + NVM traffic). The functional store half
	// of an atomic mutates memory but is not charged — only the load half
	// is (mirroring the serial engine's single chargeAccess per atomic).
	charged bool
	kind    memsim.AccessKind
	addr    uint64
	val     uint64 // value loaded (opLoad) or stored (opStore)
}

// specEvent is a traced serialization event (atomic or lock acquisition).
// intra is the event's offset within its phase (instructions + exposed
// stall at record time); the commit loop adds the replay-computed cycle
// count at phase start, reproducing the serial engine's event offsets.
type specEvent struct {
	intra int64
	addr  uint64
	lock  *Lock
	hold  int64
}

// phaseRec captures one completed phase (ForAll/WarpPhase) or an explicit
// Barrier of a speculative block. warpInstrs, l2 and stall are the charge
// inputs that do not depend on cache state; NVM traffic is deliberately
// absent — it is recomputed during replay from real access results.
type phaseRec struct {
	barrierOnly bool
	warpInstrs  int64
	l2          int64
	stall       int64
	ops         []specOp
	events      []specEvent
}

// specState is the per-block speculative execution context.
type specState struct {
	snap    *memsim.Snapshot
	overlay map[uint64]uint32 // 4-byte-word address -> speculatively stored value
	phases  []phaseRec
	curOps  []specOp
	curEv   []specEvent
	// needReexec is set when the block used a primitive whose outcome
	// depends on cross-block execution order (RacyTouch), or when the
	// speculative run panicked on stale state; the commit loop then
	// discards the trace and re-executes the block directly.
	needReexec bool
}

// read32 returns the speculative view of the 4-aligned word at addr.
func (s *specState) read32(addr uint64) uint32 {
	if v, ok := s.overlay[addr]; ok {
		return v
	}
	return s.snap.ReadU32(addr)
}

// read64 returns the speculative view of the 8-aligned word at addr,
// combining per-word overlay entries with the snapshot (a 64-bit load may
// observe one half written by a 32-bit store).
func (s *specState) read64(addr uint64) uint64 {
	lo, okLo := s.overlay[addr]
	hi, okHi := s.overlay[addr+4]
	if !okLo || !okHi {
		base := s.snap.ReadU64(addr)
		if !okLo {
			lo = uint32(base)
		}
		if !okHi {
			hi = uint32(base >> 32)
		}
	}
	return uint64(lo) | uint64(hi)<<32
}

// write applies a speculative store to the overlay at word granularity.
func (s *specState) write(addr uint64, size int, val uint64) {
	s.overlay[addr] = uint32(val)
	if size == 8 {
		s.overlay[addr+4] = uint32(val >> 32)
	}
}

// specAddr resolves a region element address with the same bounds
// discipline as memsim's accessors. A speculative out-of-range access
// (possible when stale snapshot data produced garbage indices) panics;
// the worker recovers it into needReexec, and a genuine out-of-range
// access re-panics during the direct re-execution.
func specAddr(r memsim.Region, idx, elemSize int) uint64 {
	off := idx * elemSize
	if idx < 0 || off+elemSize > r.Size {
		panic(fmt.Sprintf("memsim: region %q index %d (elem %dB) out of range (size %dB)", r.Name, idx, elemSize, r.Size))
	}
	return r.Base + uint64(off)
}

// barrierCostFor is Block.barrierCost as a pure function, shared between
// direct execution and trace replay so both charge identical arithmetic.
func barrierCostFor(cfg Config, numWarps int) int64 {
	cost := int64(4 * numWarps)
	if max := cfg.BarrierCycles; cost > max {
		cost = max
	}
	return cost
}

// phaseCost is the roofline charge of one phase as a pure function,
// shared between direct execution and trace replay.
func phaseCost(cfg Config, warpInstrs, l2, nvm int64) int64 {
	compute := int64(float64(warpInstrs) / cfg.IssueWidth)
	l2Cyc := int64(float64(l2) / (cfg.L2BytesPerCycle / float64(cfg.NumSMs)))
	nvmCyc := int64(float64(nvm) / (cfg.NVMBytesPerCycle / float64(cfg.NumSMs)))
	mem := l2Cyc
	if nvmCyc > mem {
		mem = nvmCyc
	}
	phase := compute
	if mem > phase {
		phase = mem
	}
	return phase
}

// validateSpec replays b's traced loads read-only against the live
// hierarchy (plus the block's own earlier stores), reporting whether every
// load still observes the value the speculative run saw. scratch is a
// reusable word-overlay map (cleared here).
func (d *Device) validateSpec(b *Block, scratch map[uint64]uint32) bool {
	s := b.spec
	if s.needReexec {
		return false
	}
	clear(scratch)
	mem := d.mem
	word := func(addr uint64) uint32 {
		if v, ok := scratch[addr]; ok {
			return v
		}
		return mem.PeekCoherentU32(addr)
	}
	for pi := range s.phases {
		ops := s.phases[pi].ops
		for oi := range ops {
			op := &ops[oi]
			switch op.op {
			case opLoad:
				if op.size == 4 {
					if word(op.addr) != uint32(op.val) {
						return false
					}
				} else if uint64(word(op.addr))|uint64(word(op.addr+4))<<32 != op.val {
					return false
				}
			case opStore:
				scratch[op.addr] = uint32(op.val)
				if op.size == 8 {
					scratch[op.addr+4] = uint32(op.val >> 32)
				}
			}
		}
	}
	return true
}

// replaySpec commits a validated speculative block: it replays the traced
// operation stream through the real memory hierarchy (reproducing the
// exact cache, statistics and NVM trajectory of serial execution),
// recomputes the block's timing from the recorded charge inputs plus the
// replay's real NVM traffic, and materializes the serialization events at
// serial-identical offsets.
func (d *Device) replaySpec(b *Block, start int64) {
	s := b.spec
	cfg := d.cfg
	mem := d.mem
	lineSize := mem.Config().LineSize
	nw := b.NumWarps()

	var cycles, totWI, totL2, totNVM, totStall int64
	var events []opEvent
	var buf [8]byte
	for pi := range s.phases {
		ph := &s.phases[pi]
		if ph.barrierOnly {
			cycles += barrierCostFor(cfg, nw)
			continue
		}
		var nvm int64
		for oi := range ph.ops {
			op := &ph.ops[oi]
			switch op.op {
			case opLoad:
				data, res := mem.Load(op.kind, op.addr, int(op.size))
				var v uint64
				if op.size == 4 {
					v = uint64(binary.LittleEndian.Uint32(data))
				} else {
					v = binary.LittleEndian.Uint64(data)
				}
				if v != op.val {
					panic(fmt.Sprintf("gpusim: replay divergence at block %d: load %#x = %#x, traced %#x",
						b.LinearIdx, op.addr, v, op.val))
				}
				if op.charged {
					nvm += int64(res.Bytes(lineSize))
				}
			case opStore:
				var res memsim.AccessResult
				if op.size == 4 {
					binary.LittleEndian.PutUint32(buf[:4], uint32(op.val))
					res = mem.Store(op.kind, op.addr, buf[:4])
				} else {
					binary.LittleEndian.PutUint64(buf[:], op.val)
					res = mem.Store(op.kind, op.addr, buf[:])
				}
				if op.charged {
					nvm += int64(res.Bytes(lineSize))
				}
			case opFlush:
				if mem.FlushAddr(op.addr) {
					nvm += int64(lineSize)
				}
			}
		}
		for _, ev := range ph.events {
			events = append(events, opEvent{offset: cycles + ev.intra, addr: ev.addr, lock: ev.lock, hold: ev.hold})
			if ev.lock != nil {
				ev.lock.acquisitions++
			}
		}
		cycles += phaseCost(cfg, ph.warpInstrs, ph.l2, nvm) + ph.stall + barrierCostFor(cfg, nw)
		totWI += ph.warpInstrs
		totL2 += ph.l2
		totNVM += nvm
		totStall += ph.stall
	}

	b.startTime = start
	b.cycles = cycles
	b.events = events
	b.totWarpInstrs = totWI
	b.totL2Bytes = totL2
	b.totNVMBytes = totNVM
	b.totAtomicStall = totStall
	b.spec = nil
}
