package gpusim

import (
	"reflect"
	"testing"

	"gpulp/internal/memsim"
)

func heartbeatDevice(workers int) *Device {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxBlocksPerSM = 2
	cfg.Workers = workers
	mem := memsim.MustNew(memsim.Config{
		LineSize: 128, CacheBytes: 1 << 20, Ways: 8,
		NVMReadNS: 160, NVMWriteNS: 480, NVMBandwidthGBs: 326.4,
	})
	return MustNew(cfg, mem)
}

func fillKernel(out memsim.Region) KernelFunc {
	return func(b *Block) {
		b.ForAll(func(th *Thread) {
			th.StoreI32(out, th.GlobalLinear(), int32(th.GlobalLinear()))
		})
	}
}

// TestHeartbeatStream: every retired block emits one heartbeat carrying
// the device identity, launch name, retired count, and a monotonic cycle
// stamp — identically in the serial and parallel engines.
func TestHeartbeatStream(t *testing.T) {
	collect := func(workers int) []Heartbeat {
		d := heartbeatDevice(workers)
		d.SetIdentity(7, "gpu7")
		out := d.Alloc("out", 1024*4)
		var hbs []Heartbeat
		d.SetHeartbeat(func(hb Heartbeat) { hbs = append(hbs, hb) })
		res := d.Launch("work", D1(8), D1(128), fillKernel(out))
		if res.Interrupted {
			t.Fatalf("workers=%d: clean launch interrupted", workers)
		}
		return hbs
	}

	serial := collect(1)
	if len(serial) != 8 {
		t.Fatalf("8-block launch emitted %d heartbeats, want 8", len(serial))
	}
	for i, hb := range serial {
		if hb.Device != 7 || hb.Launch != "work" {
			t.Fatalf("heartbeat %d misidentified: %+v", i, hb)
		}
		if hb.Blocks != i+1 {
			t.Fatalf("heartbeat %d reports %d retired blocks, want %d", i, hb.Blocks, i+1)
		}
		if i > 0 && hb.Cycle < serial[i-1].Cycle {
			t.Fatalf("heartbeat cycles regressed: %d after %d", hb.Cycle, serial[i-1].Cycle)
		}
	}
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("heartbeat streams diverge between engines:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}

	// SetHeartbeat returns the previous hook and nil detaches.
	d := heartbeatDevice(1)
	prev := d.SetHeartbeat(func(Heartbeat) {})
	if prev != nil {
		t.Fatal("fresh device had a heartbeat hook")
	}
	if prev = d.SetHeartbeat(nil); prev == nil {
		t.Fatal("SetHeartbeat did not return the previous hook")
	}
}

// TestRequestAbort: an externally-requested abort stops the launch at the
// next block boundary and leaves a crash-consistent image (cache dropped,
// retired blocks' NVM state preserved), in both engines.
func TestRequestAbort(t *testing.T) {
	for _, workers := range []int{1, 8} {
		d := heartbeatDevice(workers)
		out := d.Alloc("out", 1024*4)
		d.SetHeartbeat(func(hb Heartbeat) {
			if hb.Blocks == 2 {
				d.RequestAbort()
			}
		})
		res := d.Launch("work", D1(8), D1(128), fillKernel(out))
		if !res.Interrupted || !res.Aborted {
			t.Fatalf("workers=%d: abort not honored: %+v", workers, res)
		}
		if res.Blocks != 2 {
			t.Fatalf("workers=%d: aborted after %d blocks, want 2", workers, res.Blocks)
		}
		// The cache was dropped: only what had been written back survives.
		// Un-launched blocks certainly never wrote.
		img := d.Mem().NVMImage()
		addr := out.Base + uint64((7*128+5)*4)
		if got := memsim.ImageU32(img, addr); got != 0 {
			t.Fatalf("workers=%d: block 7 wrote %d after the abort", workers, got)
		}

		// The abort is one-shot: the next launch runs clean.
		d.SetHeartbeat(nil)
		res = d.Launch("work", D1(8), D1(128), fillKernel(out))
		if res.Interrupted || res.Aborted || res.Blocks != 8 {
			t.Fatalf("workers=%d: abort leaked into next launch: %+v", workers, res)
		}
	}
}

// TestRequestAbortStaleCleared: an abort requested between launches (e.g.
// a watchdog firing on a device that already finished) must not kill the
// next launch.
func TestRequestAbortStaleCleared(t *testing.T) {
	d := heartbeatDevice(1)
	out := d.Alloc("out", 1024*4)
	d.RequestAbort()
	res := d.Launch("work", D1(8), D1(128), fillKernel(out))
	if res.Interrupted || res.Aborted {
		t.Fatalf("stale abort killed a fresh launch: %+v", res)
	}
}

// TestDeviceIdentity covers the identity plumbing used by the cluster.
func TestDeviceIdentity(t *testing.T) {
	d := heartbeatDevice(1)
	if d.ID() != 0 || d.Label() != "" {
		t.Fatalf("fresh device identity = (%d, %q)", d.ID(), d.Label())
	}
	d.SetIdentity(3, "gpu3")
	if d.ID() != 3 || d.Label() != "gpu3" {
		t.Fatalf("identity = (%d, %q), want (3, gpu3)", d.ID(), d.Label())
	}
}
