package gpusim

import (
	"fmt"

	"gpulp/internal/memsim"
)

// KernelFunc is the body of a kernel, invoked once per thread block.
type KernelFunc func(b *Block)

// Device is a simulated GPU attached to a simulated global memory.
type Device struct {
	cfg       Config
	mem       *memsim.Memory
	lines     *wordTimeline // device-wide atomic serialization state
	locks     []*Lock
	storeHook StoreHook
	traceSink func(LaunchTrace)
	crash     *CrashTrigger
	heartbeat HeartbeatFunc
	// abortPending is set by RequestAbort and honored at the next block
	// boundary of the launch in flight.
	abortPending bool
	// id and label identify the device in a multi-device topology.
	id    int
	label string
	// launchName is the name of the launch in flight, read by the watchdog
	// when it aborts. Written once per launch before any worker goroutine
	// starts, so concurrent reads during the functional pass are safe.
	launchName string
}

// Heartbeat is one liveness report from a launch in flight: the device
// emits it after every thread-block commit. A cluster control plane uses
// the stream to detect hangs (silence past a timeout) and to decide
// where to inject failures.
type Heartbeat struct {
	// Device is the emitting device's identity (SetIdentity).
	Device int
	// Launch is the kernel name of the launch in flight.
	Launch string
	// Blocks is the number of blocks retired so far in this launch.
	Blocks int
	// Cycle is the greedy-schedule completion cycle of the latest block.
	Cycle int64
}

// HeartbeatFunc observes launch heartbeats. It runs on the commit path —
// after each block retires, at the identical point in the serial and
// parallel engines — so it must not mutate device memory; calling
// RequestAbort from inside it is the intended use.
type HeartbeatFunc func(hb Heartbeat)

// SetHeartbeat installs fn (nil to remove) and returns the previous one.
func (d *Device) SetHeartbeat(fn HeartbeatFunc) HeartbeatFunc {
	prev := d.heartbeat
	d.heartbeat = fn
	return prev
}

// SetIdentity names the device within a multi-device topology.
func (d *Device) SetIdentity(id int, label string) {
	d.id = id
	d.label = label
}

// ID returns the identity set by SetIdentity (0 by default).
func (d *Device) ID() int { return d.id }

// Label returns the label set by SetIdentity ("" by default).
func (d *Device) Label() string { return d.label }

// RequestAbort asks the launch in flight to stop at its next block
// boundary: the launch drops all volatile memory state (exactly the
// durable image a power failure at that dispatch point would leave) and
// returns with Interrupted and Aborted set. This is the external kill a
// cluster control plane uses to reclaim a hung or stalled device. A
// request made while no launch is in flight is dropped at the next
// launch's entry.
func (d *Device) RequestAbort() { d.abortPending = true }

// StoreHook observes every 32-bit data store a kernel performs. It is the
// mechanism behind directive-style instrumentation: a Lazy Persistency
// runtime installs a hook that folds stored values into the active
// region's checksum, so kernels need no hand-written checksum code.
type StoreHook func(t *Thread, r memsim.Region, elemIdx int, bits uint32)

// SetStoreHook installs hook (nil to remove) and returns the previous one.
func (d *Device) SetStoreHook(hook StoreHook) StoreHook {
	prev := d.storeHook
	d.storeHook = hook
	return prev
}

// New creates a Device over mem with the given configuration, returning a
// typed *ConfigError (wrapping ErrConfig) when the configuration or memory
// is invalid.
func New(cfg Config, mem *memsim.Memory) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, &ConfigError{Field: "mem", Reason: "must be non-nil"}
	}
	return &Device{cfg: cfg, mem: mem, lines: newWordTimeline()}, nil
}

// MustNew is New, panicking on error — the convenience constructor for
// tests and examples whose configuration is statically known-good.
func MustNew(cfg Config, mem *memsim.Memory) *Device {
	d, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Mem returns the global memory behind the device.
func (d *Device) Mem() *memsim.Memory { return d.mem }

// Alloc allocates named global memory; a convenience forwarding to the
// memory system.
func (d *Device) Alloc(name string, size int) memsim.Region {
	return d.mem.Alloc(name, size)
}

// NewLock creates a device-wide spin lock (a location in global memory
// that threads acquire with atomic compare-and-swap). The returned Lock
// carries the simulated queueing state.
func (d *Device) NewLock(name string) *Lock {
	l := &Lock{name: name, id: len(d.locks)}
	d.locks = append(d.locks, l)
	return l
}

// LaunchResult summarizes the execution of one kernel launch.
type LaunchResult struct {
	// Name is the kernel name passed to Launch.
	Name string
	// Cycles is the simulated duration of the launch (last block
	// completion).
	Cycles int64
	// Blocks is the number of thread blocks executed.
	Blocks int
	// WarpInstrs is the total warp-instruction count.
	WarpInstrs int64
	// L2Bytes and NVMBytes are total bytes moved at each level.
	L2Bytes  int64
	NVMBytes int64
	// AtomicStallCycles is time blocks spent queued behind conflicting
	// atomics; LockStallCycles is time spent waiting for locks.
	AtomicStallCycles int64
	LockStallCycles   int64
	// MaxConcurrency is the number of SM block slots the launch could
	// occupy simultaneously.
	MaxConcurrency int
	// Interrupted reports that the launch stopped before the full grid
	// retired — an armed CrashTrigger fired, or the watchdog aborted a
	// hung block; Blocks then counts only the blocks that retired.
	Interrupted bool
	// Watchdog is non-nil when the kernel watchdog aborted the launch
	// (Config.WatchdogSteps exceeded): it identifies the runaway block.
	// The memory hierarchy has been crashed to a consistent durable image,
	// so recovery can proceed as after a power failure.
	Watchdog *WatchdogError
	// Aborted reports that an external RequestAbort stopped the launch at
	// a block boundary (Interrupted is also set, and the hierarchy has
	// been crashed to a consistent durable image).
	Aborted bool
}

// MS returns the launch duration in milliseconds (requires the config used
// at launch; use Device.Config().CyclesToMS for exactness).
func (r LaunchResult) String() string {
	return fmt.Sprintf("%s: %d blocks, %d cycles, %d warp-instrs, %dB L2, %dB NVM, stalls atomic=%d lock=%d",
		r.Name, r.Blocks, r.Cycles, r.WarpInstrs, r.L2Bytes, r.NVMBytes, r.AtomicStallCycles, r.LockStallCycles)
}

// Launch runs kernel over the full grid and returns timing.
func (d *Device) Launch(name string, grid, block Dim3, kernel KernelFunc) LaunchResult {
	return d.launch(name, grid, block, kernel, nil)
}

// LaunchSelected runs kernel only for the listed linear block indices —
// the primitive used by crash recovery to re-execute failed LP regions.
func (d *Device) LaunchSelected(name string, grid, block Dim3, kernel KernelFunc, blocks []int) LaunchResult {
	if blocks == nil {
		blocks = []int{}
	}
	return d.launch(name, grid, block, kernel, blocks)
}

func (d *Device) launch(name string, grid, block Dim3, kernel KernelFunc, selected []int) LaunchResult {
	if grid.Size() <= 0 || block.Size() <= 0 {
		panic(fmt.Sprintf("gpusim: launch %q with empty grid %v or block %v", name, grid, block))
	}
	if kernel == nil {
		panic("gpusim: nil kernel")
	}
	d.launchName = name
	// An abort request targets the launch in flight; a stale request made
	// between launches must not kill the next one.
	d.abortPending = false
	threadsPerBlock := block.Size()
	perSM := d.cfg.MaxBlocksPerSM
	if byThreads := d.cfg.MaxThreadsPerSM / threadsPerBlock; byThreads < perSM {
		perSM = byThreads
	}
	if perSM < 1 {
		perSM = 1
	}
	slots := make([]int64, d.cfg.NumSMs*perSM)

	order := selected
	if order == nil {
		order = make([]int, grid.Size())
		for i := range order {
			order[i] = i
		}
	}
	for _, lin := range order {
		if lin < 0 || lin >= grid.Size() {
			panic(fmt.Sprintf("gpusim: selected block %d out of grid %v", lin, grid))
		}
	}

	res := LaunchResult{Name: name, Blocks: len(order), MaxConcurrency: len(slots)}
	// Reset per-launch state: each launch starts at t=0.
	d.lines.reset()
	for _, l := range d.locks {
		l.reset()
	}

	// Pass 1: functional execution in dispatch order, with a zero-queueing
	// greedy schedule providing approximate absolute times (used only by
	// RacyTouch race windows). Serialization events are recorded per block.
	// With Workers > 1, blocks execute speculatively on a host pool and are
	// committed in dispatch order, producing bit-identical recs.
	var recs []blockRec
	if d.cfg.Workers > 1 && len(order) > 1 {
		recs = d.runBlocksParallel(grid, block, kernel, order, slots, &res)
	} else {
		recs = d.runBlocksSerial(grid, block, kernel, order, slots, &res)
	}
	res.Blocks = len(recs)

	// Pass 2: fixed-point timing with queueing delays.
	cycles, aStall, lStall := d.schedule(recs, len(slots))
	res.Cycles = cycles
	res.AtomicStallCycles += aStall
	res.LockStallCycles = lStall
	d.emitTrace(name, order, recs, cycles)
	return res
}

// runBlocksSerial executes blocks one at a time in dispatch order — the
// reference engine every parallel run must match bit-for-bit.
func (d *Device) runBlocksSerial(grid, block Dim3, kernel KernelFunc, order []int, slots []int64, res *LaunchResult) []blockRec {
	recs := make([]blockRec, 0, len(order))
	for orderIdx, lin := range order {
		// Earliest-free slot.
		slot := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[slot] {
				slot = i
			}
		}
		start := slots[slot]
		// Work-distributor dispatch skew.
		if minStart := int64(orderIdx) * d.cfg.BlockDispatchCycles; start < minStart {
			start = minStart
		}
		if tr := d.crash; tr != nil && tr.AtCycle > 0 && start >= tr.AtCycle {
			d.fireCrash()
			res.Interrupted = true
			break
		}
		b := &Block{
			dev:       d,
			Idx:       grid.Unlinear(lin),
			BlockDim:  block,
			GridDim:   grid,
			LinearIdx: lin,
			startTime: start,
			shared:    map[string]any{},
		}
		if wd := runBlockGuarded(kernel, b); wd != nil {
			// Hung block: drop all volatile state so the durable image is
			// exactly what a power failure at this dispatch point would
			// leave, and surface the typed abort. The partial block never
			// retires.
			d.mem.Crash()
			res.Interrupted = true
			res.Watchdog = wd
			break
		}
		slots[slot] = start + b.cycles
		recs = append(recs, blockRec{base: b.cycles, events: b.events})

		res.WarpInstrs += b.totWarpInstrs
		res.L2Bytes += b.totL2Bytes
		res.NVMBytes += b.totNVMBytes
		res.AtomicStallCycles += b.totAtomicStall

		if hb := d.heartbeat; hb != nil {
			hb(Heartbeat{Device: d.id, Launch: d.launchName, Blocks: len(recs), Cycle: slots[slot]})
		}
		if d.abortPending {
			d.abortPending = false
			d.mem.Crash()
			res.Interrupted = true
			res.Aborted = true
			break
		}
		if tr := d.crash; tr != nil && tr.AfterBlocks > 0 && len(recs) >= tr.AfterBlocks {
			d.fireCrash()
			res.Interrupted = true
			break
		}
	}
	return recs
}
