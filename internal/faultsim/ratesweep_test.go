package faultsim

import (
	"reflect"
	"testing"
)

// TestRateSweepContract runs a reduced sweep and checks the structural
// contract: no case may lie (mismatch) or panic, every aggregate is
// consistent with its cases, and the curve endpoints behave — a zero-rate
// point heals everything, and success never requires corruption to go
// unnoticed.
func TestRateSweepContract(t *testing.T) {
	s := DefaultRateSweep(3)
	s.Rates = []float64{0, 0.01, 0.1}
	s.Blocks = 16
	s.BlockThreads = 32
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sweep contract violated: %+v", rep.Failures)
	}
	if rep.Total != 9 || len(rep.Points) != 3 {
		t.Fatalf("sweep shape: total=%d points=%d, want 9/3", rep.Total, len(rep.Points))
	}
	zero := rep.Points[0]
	if zero.Healed != zero.Cases || zero.SuccessRate != 1 || zero.MeanCoverage != 1 {
		t.Fatalf("zero-rate point not fully healed: %+v", zero)
	}
	for _, p := range rep.Points {
		if p.Healed+p.Degraded+p.Unrecoverable+p.Failures != p.Cases {
			t.Fatalf("outcome counts do not partition cases: %+v", p)
		}
		if p.ScrubHealRate < 0 || p.ScrubHealRate > 1 {
			t.Fatalf("heal rate out of range: %+v", p)
		}
		if p.MeanCoverage < 0 || p.MeanCoverage > 1 {
			t.Fatalf("coverage out of range: %+v", p)
		}
	}
	// The swept fault process must actually have fired at the top rate.
	top := rep.Points[2]
	if top.MeanScrubHealed == 0 && top.MeanQuarantinedBytes == 0 {
		t.Fatalf("top-rate point shows no media activity: %+v", top)
	}
}

// TestRateSweepStuckQuarantines drives the stuck fraction hard enough
// that permanent faults land under checksummed data: cases must complete
// degraded (coverage < 1, quarantined bytes reported) rather than lie.
func TestRateSweepStuckQuarantines(t *testing.T) {
	s := DefaultRateSweep(4)
	s.Rates = []float64{0.2}
	s.StuckFrac = 0.5
	s.Blocks = 16
	s.BlockThreads = 32
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sweep contract violated: %+v", rep.Failures)
	}
	p := rep.Points[0]
	if p.Degraded == 0 {
		t.Fatalf("no case degraded under heavy stuck-at faults: %+v", p)
	}
	if p.MeanCoverage >= 1 || p.MeanQuarantinedBytes == 0 {
		t.Fatalf("degradation not reflected in aggregates: %+v", p)
	}
}

// TestRateSweepLockLivelockWatchdog arms the per-block spin locks under a
// heavy stuck rate: when a permanent fault pins a lock word, re-execution
// livelocks and the sweep must ride the watchdog to a typed, non-hanging
// completion. The assertion is on the contract (no hang, no panic, no
// lie); watchdog aborts fire only when a stuck cell happens to land under
// a lock line that re-execution reads from NVM.
func TestRateSweepLockLivelockWatchdog(t *testing.T) {
	s := DefaultRateSweep(4)
	s.Rates = []float64{0.3}
	s.StuckFrac = 0.5
	s.Locks = true
	s.WatchdogSteps = 100_000
	s.Blocks = 16
	s.BlockThreads = 32
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sweep contract violated: %+v", rep.Failures)
	}
}

// TestRateSweepParallelMatchesSerial: case seeds derive from sweep
// position, every case owns a fresh simulated system, and aggregation is
// in sweep order — Parallel=1 and Parallel=8 must produce identical
// structured reports.
func TestRateSweepParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *RateReport {
		s := DefaultRateSweep(2)
		s.Rates = []float64{0.01, 0.08}
		s.StuckFrac = 0.25
		s.Blocks = 16
		s.BlockThreads = 32
		s.Parallel = parallel
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("sweep (parallel=%d): %v", parallel, err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rate-sweep reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRateSweepRejectsBadRates: out-of-range probabilities are a typed
// configuration error, not a panic downstream.
func TestRateSweepRejectsBadRates(t *testing.T) {
	s := DefaultRateSweep(1)
	s.Rates = []float64{1.5}
	if _, err := s.Run(); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	s = DefaultRateSweep(1)
	s.Rates = []float64{0.9}
	s.StuckFrac = 2
	if _, err := s.Run(); err == nil {
		t.Fatal("stuck rate 1.8 accepted")
	}
}

// TestRateSweepEmptyRateListDefaults: an empty rate list is not an error
// or an empty sweep — withDefaults installs the standard rate curve.
func TestRateSweepEmptyRateListDefaults(t *testing.T) {
	s := &RateSweep{Seeds: 1, Blocks: 16, BlockThreads: 32}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 || rep.Total != 4 {
		t.Fatalf("defaulted sweep shape: points=%d total=%d, want 4/4", len(rep.Points), rep.Total)
	}
	want := []float64{0.002, 0.01, 0.05, 0.2}
	for i, p := range rep.Points {
		if p.TransientPerWrite != want[i] {
			t.Fatalf("point %d swept rate %v, want %v (default curve, sweep order)", i, p.TransientPerWrite, want[i])
		}
	}
}

// TestRateSweepSingleSeed: a one-seed sweep is a legal degenerate case —
// every point aggregates exactly one case and stays internally
// consistent.
func TestRateSweepSingleSeed(t *testing.T) {
	s := DefaultRateSweep(1)
	s.Rates = []float64{0, 0.05}
	s.Blocks = 16
	s.BlockThreads = 32
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("single-seed sweep violated the contract: %+v", rep.Failures)
	}
	for _, p := range rep.Points {
		if p.Cases != 1 {
			t.Fatalf("single-seed point aggregates %d cases", p.Cases)
		}
		if p.Healed+p.Degraded+p.Unrecoverable+p.Failures != 1 {
			t.Fatalf("outcome counts do not partition the single case: %+v", p)
		}
	}
}

// TestRateSweepParallelAggregatesInSweepOrder: under the parallel path,
// completion order is scheduling-dependent but the report's points must
// stay in sweep (rate-list) order, including an out-of-sorted-order rate
// list, and match the serial report exactly.
func TestRateSweepParallelAggregatesInSweepOrder(t *testing.T) {
	rates := []float64{0.1, 0, 0.02} // deliberately not sorted
	run := func(parallel int) *RateReport {
		s := DefaultRateSweep(2)
		s.Rates = append([]float64(nil), rates...)
		s.Blocks = 16
		s.BlockThreads = 32
		s.Parallel = parallel
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	par := run(8)
	for i, p := range par.Points {
		if p.TransientPerWrite != rates[i] {
			t.Fatalf("parallel point %d is rate %v, want sweep-order %v", i, p.TransientPerWrite, rates[i])
		}
	}
	if !reflect.DeepEqual(run(1), par) {
		t.Fatal("parallel aggregation diverges from serial sweep order")
	}
}
