package faultsim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"gpulp/internal/cluster"
)

// smallReplicaCampaign keeps a sweep fast: tiny jobs, short geometry.
func smallReplicaCampaign(seeds int) *ReplicaCampaign {
	c := DefaultReplicaCampaign(seeds)
	c.Devices = 3
	c.Jobs = 4
	c.BlocksPerJob = 2
	c.BlockThreads = 32
	return c
}

// TestReplicaCampaignAcceptance pins the PR's acceptance criterion: with
// R >= 2 every single-device failure — across kinds, placers and models
// — must be absorbed by adopting a surviving replica with ZERO
// re-executed blocks and a bit-exact durable pool; with R = 1 every case
// must take the legacy re-execute path and never claim an adoption.
func TestReplicaCampaignAcceptance(t *testing.T) {
	c := smallReplicaCampaign(2)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("campaign contract violated: %+v", rep.Failures)
	}
	// 2 rfactors × 3 kinds × 2 placers × 2 models × 2 seeds.
	if rep.Total != 48 || len(rep.Cells) != 24 {
		t.Fatalf("campaign shape: total=%d cells=%d, want 48/24", rep.Total, len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if cell.Replicas > 1 {
			if cell.Adopted != cell.Cases {
				t.Fatalf("cell %+v: %d of %d cases adopted — replicated failures must never re-execute",
					cell, cell.Adopted, cell.Cases)
			}
			if cell.MeanReexec != 0 {
				t.Fatalf("cell %+v: replicated recovery re-executed blocks", cell)
			}
		} else if cell.Recovered != cell.Cases {
			t.Fatalf("cell %+v: %d of %d unreplicated cases recovered", cell, cell.Recovered, cell.Cases)
		}
		if cell.MeanCoverage != 1 {
			t.Fatalf("cell %+v: coverage %v after full recovery", cell, cell.MeanCoverage)
		}
	}
	// Exactly the replicated half of the sweep recovers without
	// re-execution... plus any R=1 stall cases that rejoined cleanly;
	// at minimum every R>1 case counts.
	if rep.RecoveredWithoutReexec < rep.Total/2 {
		t.Fatalf("recovered-without-reexec %d below the replicated half of %d cases",
			rep.RecoveredWithoutReexec, rep.Total)
	}
}

// TestReplicaCampaignWriteAmplification: replication must cost durable
// line writes — an R=2 cell writes measurably more NVM lines than its
// R=1 counterpart under the same kind/placer/model.
func TestReplicaCampaignWriteAmplification(t *testing.T) {
	c := smallReplicaCampaign(2)
	c.Kinds = []cluster.FailureKind{cluster.FailStop}
	c.Placers = []cluster.PlacerKind{cluster.Spread}
	c.Models = []string{"lp"}
	c.RFactors = []int{1, 2}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("campaign contract violated: %+v", rep.Failures)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(rep.Cells))
	}
	if rep.Cells[1].MeanNVMWrites <= rep.Cells[0].MeanNVMWrites {
		t.Fatalf("R=2 NVM writes %.0f not above R=1's %.0f — replication is free?",
			rep.Cells[1].MeanNVMWrites, rep.Cells[0].MeanNVMWrites)
	}
}

// TestReplicaCampaignCaseShape: the seeded failure time is mid-launch
// and reproducible, and adoption carried the whole repair.
func TestReplicaCampaignCaseShape(t *testing.T) {
	c := smallReplicaCampaign(1)
	cs := ReplicaCase{Replicas: 2, Kind: cluster.FailStop, Placer: cluster.Spread, Model: "lp", Seed: 0xabcdef}
	r1 := c.RunReplicaCase(cs)
	if r1.Outcome != ReplicaAdopted {
		t.Fatalf("case did not adopt: %+v", r1)
	}
	if r1.FailJob < 0 || r1.FailJob >= c.Jobs {
		t.Fatalf("derived fail job %d outside [0,%d)", r1.FailJob, c.Jobs)
	}
	if r1.AfterBlocks < 1 || r1.AfterBlocks >= c.BlocksPerJob {
		t.Fatalf("failure at block %d of %d is not mid-launch", r1.AfterBlocks, c.BlocksPerJob)
	}
	if r1.Adopted != 1 || r1.ReexecutedBlocks != 0 || r1.Failovers != 0 {
		t.Fatalf("adoption accounting off: %+v", r1)
	}
	if r1.ReplicaLaunches == 0 {
		t.Fatalf("no replica launches recorded: %+v", r1)
	}
	r2 := c.RunReplicaCase(cs)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same case diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestReplicaCampaignParallelMatchesSerial: case seeds derive from sweep
// position and aggregation is in sweep order, so Parallel=1 and
// Parallel=8 produce identical structured reports.
func TestReplicaCampaignParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *ReplicaReport {
		c := smallReplicaCampaign(1)
		c.Parallel = parallel
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (parallel=%d): %v", parallel, err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("replica campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestReplicaCampaignRejectsBadRFactor: a replication factor outside
// [1, Devices] is a configuration error, not a panic downstream.
func TestReplicaCampaignRejectsBadRFactor(t *testing.T) {
	c := smallReplicaCampaign(1)
	c.RFactors = []int{0}
	if _, err := c.Run(); err == nil {
		t.Fatal("replication factor 0 accepted")
	}
	c.RFactors = []int{c.Devices + 1}
	if _, err := c.Run(); err == nil {
		t.Fatal("replication factor above device count accepted")
	}
}

// TestReplicaReportRoundTrip: the report marshals with readable enum
// names and renders without panicking.
func TestReplicaReportRoundTrip(t *testing.T) {
	c := smallReplicaCampaign(1)
	c.RFactors = []int{2}
	c.Kinds = []cluster.FailureKind{cluster.FailStop}
	c.Placers = []cluster.PlacerKind{cluster.Affinity}
	c.Models = []string{"sbrp"}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fail-stop"`, `"affinity"`, `"adopted"`, `"sbrp"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Fatalf("report JSON missing %s:\n%s", want, js)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("replicated failover campaign")) {
		t.Fatalf("render output unexpected:\n%s", buf.String())
	}
}
