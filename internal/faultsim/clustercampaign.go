// Cluster campaign: the multi-device counterpart of the crash-shape
// campaign. Every case builds a fresh N-device cluster, kills one device
// mid-launch at a seeded job and block boundary, and demands that
// cross-device failover republish a bit-exact shared durable image — or
// degrade honestly to the typed cluster error. The sweep covers device
// count × failure kind × failure time (seed-derived) × router; every
// case is seeded from its sweep position, so the report is bit-identical
// at any Parallel width and any gpusim Workers value.
package faultsim

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"gpulp/internal/cluster"
	"gpulp/internal/core"
	"gpulp/internal/parwork"
)

// ClusterCase identifies one reproducible cluster-failover run. The
// failure time (job index and block boundary) derives from Seed.
type ClusterCase struct {
	Devices int                 `json:"devices"`
	Kind    cluster.FailureKind `json:"kind"`
	Router  cluster.RouterKind  `json:"router"`
	Seed    uint64              `json:"seed"`
}

// String implements fmt.Stringer.
func (c ClusterCase) String() string {
	return fmt.Sprintf("devices=%d/%s/%s seed=%#x", c.Devices, c.Kind, c.Router, c.Seed)
}

// ClusterOutcome classifies one cluster case.
type ClusterOutcome int

const (
	// ClusterRecovered: every job completed (the killed device's shard
	// failed over) and the pool image is bit-exact.
	ClusterRecovered ClusterOutcome = iota
	// ClusterDegraded: jobs were lost but the run returned the typed
	// DegradedClusterError and every completed shard is bit-exact.
	ClusterDegraded
	// ClusterTypedError: the run surfaced another typed recovery error.
	ClusterTypedError
	// ClusterMismatch: the run claimed success (full or degraded) but a
	// completed shard's durable bytes diverge — silent corruption.
	ClusterMismatch
	// ClusterPanicked: the runtime panicked.
	ClusterPanicked
)

// String implements fmt.Stringer.
func (o ClusterOutcome) String() string {
	switch o {
	case ClusterRecovered:
		return "recovered"
	case ClusterDegraded:
		return "degraded"
	case ClusterTypedError:
		return "typed-error"
	case ClusterMismatch:
		return "MISMATCH"
	case ClusterPanicked:
		return "PANIC"
	}
	return fmt.Sprintf("ClusterOutcome(%d)", int(o))
}

// MarshalJSON writes the readable String form.
func (o ClusterOutcome) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// Failed reports whether the outcome violates the campaign contract:
// recover bit-exactly, degrade honestly with the typed error, or report
// another typed error — never lie, never panic.
func (o ClusterOutcome) Failed() bool { return o == ClusterMismatch || o == ClusterPanicked }

// ClusterResult reports one executed case.
type ClusterResult struct {
	Case    ClusterCase    `json:"case"`
	Outcome ClusterOutcome `json:"outcome"`
	// FailJob and AfterBlocks are the seed-derived failure time.
	FailJob     int `json:"fail_job"`
	AfterBlocks int `json:"after_blocks"`
	// Failovers, Rejoins, ReexecutedBlocks, LostJobs, BackoffCycles and
	// MakespanCycles summarize the run's Report.
	Failovers        int     `json:"failovers"`
	Rejoins          int     `json:"rejoins"`
	ReexecutedBlocks int     `json:"reexecuted_blocks"`
	LostJobs         int     `json:"lost_jobs"`
	Coverage         float64 `json:"coverage"`
	BackoffCycles    int64   `json:"backoff_cycles"`
	MakespanCycles   int64   `json:"makespan_cycles"`
	// Err carries the error or panic text for non-Recovered outcomes.
	Err string `json:"err,omitempty"`
}

// ClusterCell aggregates every case of one (devices, kind, router) cell.
type ClusterCell struct {
	Devices       int                 `json:"devices"`
	Kind          cluster.FailureKind `json:"kind"`
	Router        cluster.RouterKind  `json:"router"`
	Cases         int                 `json:"cases"`
	Recovered     int                 `json:"recovered"`
	Degraded      int                 `json:"degraded"`
	TypedErrors   int                 `json:"typed_errors"`
	Failures      int                 `json:"failures"`
	MeanFailovers float64             `json:"mean_failovers"`
	MeanReexec    float64             `json:"mean_reexecuted_blocks"`
	MeanMakespan  float64             `json:"mean_makespan_cycles"`
	MeanCoverage  float64             `json:"mean_coverage"`
}

// ClusterReport is the structured result of a cluster campaign.
type ClusterReport struct {
	Total int           `json:"total"`
	Cells []ClusterCell `json:"cells"`
	// Failures lists every contract-violating case, reproducible from its
	// (devices, kind, router, seed) tuple alone.
	Failures []ClusterResult `json:"failures,omitempty"`
}

// Failed reports whether any case violated the campaign contract.
func (r *ClusterReport) Failed() bool { return len(r.Failures) > 0 }

// ClusterCampaign sweeps device count × failure kind × failure time
// (seed-derived) × router over the cluster's sharded fill workload.
type ClusterCampaign struct {
	Opt Options
	// DeviceCounts are the cluster sizes to sweep (default {2, 3}).
	DeviceCounts []int
	// Kinds are the failure shapes (default all).
	Kinds []cluster.FailureKind
	// Routers are the dispatch policies (default all).
	Routers []cluster.RouterKind
	// Seeds is the number of seeded cases per cell (default 4).
	Seeds int
	// BaseSeed perturbs every derived case seed.
	BaseSeed uint64
	// Jobs, BlocksPerJob and BlockThreads fix the workload
	// (default 8 × 4 × 32).
	Jobs, BlocksPerJob, BlockThreads int
	// MinAlive is the cluster quorum (default 1, so a single loss is
	// always survivable at Devices >= 2).
	MinAlive int
	// MaxFailovers bounds failover attempts per lost job (default 3).
	MaxFailovers int
	// Parallel is the number of host goroutines running cases
	// concurrently; the report is identical at any value.
	Parallel int
	// Progress, when non-nil, observes each completed case (completion
	// order is scheduling-dependent; the report is not).
	Progress func(done, total int, r ClusterResult)
}

// DefaultClusterCampaign returns the standard cluster sweep: 2- and
// 3-device clusters, every failure kind, every router.
func DefaultClusterCampaign(seeds int) *ClusterCampaign {
	if seeds <= 0 {
		seeds = 4
	}
	return &ClusterCampaign{
		Opt:      DefaultOptions(),
		Seeds:    seeds,
		BaseSeed: 0xc105_7e4d,
	}
}

// withDefaults fills unset sweep knobs.
func (c *ClusterCampaign) withDefaults() {
	if len(c.DeviceCounts) == 0 {
		c.DeviceCounts = []int{2, 3}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = cluster.AllFailureKinds()
	}
	if len(c.Routers) == 0 {
		c.Routers = cluster.AllRouters()
	}
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.BlocksPerJob <= 0 {
		c.BlocksPerJob = 4
	}
	if c.BlockThreads <= 0 {
		c.BlockThreads = 32
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 1
	}
	if c.MaxFailovers <= 0 {
		c.MaxFailovers = 3
	}
	if c.Opt.Mem.LineSize == 0 {
		c.Opt = DefaultOptions()
	}
}

// Run executes the campaign. Cases run concurrently when Parallel > 1;
// each owns a fresh simulated cluster, and aggregation happens in sweep
// order.
func (c *ClusterCampaign) Run() (*ClusterReport, error) {
	c.withDefaults()
	for _, d := range c.DeviceCounts {
		if d < 1 {
			return nil, fmt.Errorf("faultsim: swept device count %d must be >= 1", d)
		}
	}

	var specs []ClusterCase
	for di, d := range c.DeviceCounts {
		for ki, k := range c.Kinds {
			for ri, r := range c.Routers {
				for si := 0; si < c.Seeds; si++ {
					pos := uint64(di)<<48 | uint64(ki)<<32 | uint64(ri)<<16 | uint64(si)
					specs = append(specs, ClusterCase{
						Devices: d, Kind: k, Router: r,
						Seed: splitmix(c.BaseSeed ^ splitmix(pos)),
					})
				}
			}
		}
	}

	results := make([]ClusterResult, len(specs))
	var progressMu sync.Mutex
	done := 0
	parwork.Do(len(specs), c.Parallel, func(i int) {
		res := c.RunClusterCase(specs[i])
		results[i] = res
		if c.Progress != nil {
			progressMu.Lock()
			done++
			c.Progress(done, len(specs), res)
			progressMu.Unlock()
		}
	})

	rep := &ClusterReport{Total: len(specs)}
	i := 0
	for _, d := range c.DeviceCounts {
		for _, k := range c.Kinds {
			for _, r := range c.Routers {
				cell := ClusterCell{Devices: d, Kind: k, Router: r}
				var failovers, reexec int64
				var makespan int64
				var coverage float64
				for si := 0; si < c.Seeds; si++ {
					res := results[i]
					i++
					cell.Cases++
					failovers += int64(res.Failovers)
					reexec += int64(res.ReexecutedBlocks)
					makespan += res.MakespanCycles
					coverage += res.Coverage
					switch res.Outcome {
					case ClusterRecovered:
						cell.Recovered++
					case ClusterDegraded:
						cell.Degraded++
					case ClusterTypedError:
						cell.TypedErrors++
					default:
						cell.Failures++
						rep.Failures = append(rep.Failures, res)
					}
				}
				cell.MeanFailovers = float64(failovers) / float64(cell.Cases)
				cell.MeanReexec = float64(reexec) / float64(cell.Cases)
				cell.MeanMakespan = float64(makespan) / float64(cell.Cases)
				cell.MeanCoverage = coverage / float64(cell.Cases)
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	return rep, nil
}

// RunClusterCase executes one case end to end: build the cluster, arm
// the seeded failure (job and block boundary derived from the seed),
// run, and audit the shared pool. It never panics.
func (c *ClusterCampaign) RunClusterCase(cs ClusterCase) (res ClusterResult) {
	c.withDefaults()
	res = ClusterResult{Case: cs, Coverage: 1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = ClusterPanicked
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	// Failure time from the seed: which job dies, and after how many of
	// its blocks. The boundary stays strictly mid-launch.
	res.FailJob = int(splitmix(cs.Seed^0xfa11) % uint64(c.Jobs))
	midMax := c.BlocksPerJob - 1
	if midMax < 1 {
		midMax = 1
	}
	res.AfterBlocks = 1 + int(splitmix(cs.Seed^0xb10c)%uint64(midMax))

	cfg := cluster.Config{
		Devices:      cs.Devices,
		Jobs:         c.Jobs,
		BlocksPerJob: c.BlocksPerJob,
		BlockThreads: c.BlockThreads,
		Router:       cs.Router,
		Seed:         cs.Seed,
		Mem:          c.Opt.Mem,
		Dev:          c.Opt.Dev,
		LP:           c.Opt.LP,
		MaxRounds:    c.Opt.MaxRounds,
		MinAlive:     c.MinAlive,
		MaxFailovers: c.MaxFailovers,
		Failures: []cluster.FailurePlan{{
			Job:         res.FailJob,
			Kind:        cs.Kind,
			AfterBlocks: res.AfterBlocks,
		}},
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		res.Outcome = ClusterTypedError
		res.Err = err.Error()
		return res
	}
	rep, err := cl.Run()
	res.Failovers = rep.Failovers
	res.Rejoins = rep.Rejoins
	res.ReexecutedBlocks = rep.ReexecutedBlocks
	res.LostJobs = len(rep.LostJobs)
	res.Coverage = rep.Coverage
	res.BackoffCycles = rep.BackoffCycles
	res.MakespanCycles = rep.MakespanCycles

	var deg *cluster.DegradedClusterError
	switch {
	case err == nil:
		if verr := cl.Verify(); verr != nil {
			res.Outcome = ClusterMismatch
			res.Err = verr.Error()
			return res
		}
		res.Outcome = ClusterRecovered
	case errors.As(err, &deg):
		res.Err = err.Error()
		if verr := cl.Verify(); verr != nil {
			res.Outcome = ClusterMismatch
			res.Err = verr.Error()
			return res
		}
		res.Outcome = ClusterDegraded
	case core.IsTypedRecoveryError(err):
		res.Outcome = ClusterTypedError
		res.Err = err.Error()
	default:
		res.Outcome = ClusterMismatch
		res.Err = err.Error()
	}
	return res
}

// Render writes the report as an aligned text table.
func (r *ClusterReport) Render(w io.Writer) {
	fmt.Fprintf(w, "cluster failover campaign: %d cases\n", r.Total)
	fmt.Fprintf(w, "%-8s %-16s %-16s %5s %9s %8s %6s %5s %9s %8s %12s\n",
		"devices", "kind", "router", "cases", "recovered", "degraded", "typed", "fail",
		"failovers", "reexec", "makespan")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8d %-16s %-16s %5d %9d %8d %6d %5d %9.2f %8.1f %12.0f\n",
			c.Devices, c.Kind, c.Router, c.Cases, c.Recovered, c.Degraded,
			c.TypedErrors, c.Failures, c.MeanFailovers, c.MeanReexec, c.MeanMakespan)
	}
	for i, f := range r.Failures {
		fmt.Fprintf(w, "FAILURE %d: %v -> %v (%s)\n", i+1, f.Case, f.Outcome, f.Err)
	}
}
