// Rate sweep: the self-healing counterpart of the crash-shape campaign.
// Where Campaign injects one discrete fault per case and demands bit-exact
// hardened recovery, RateSweep arms memsim's online media-error process at
// a swept per-write fault rate and drives core.SelfHeal — per-rate it
// reports the recovery success rate, the scrub heal rate, quarantined
// bytes, and the degraded-coverage curve. Every case is seeded from its
// sweep position and owns a fresh simulated system, so the report is
// bit-identical at any Parallel width.
package faultsim

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
	"gpulp/internal/parwork"
)

// RateSweep sweeps the online media-error rate over a dense LP-protected
// fill workload (the workload's data layout is known exactly, so the
// self-healer gets a precise line→region quarantine mapping).
type RateSweep struct {
	Opt Options
	// Rates are the TransientPerWrite probabilities to sweep.
	Rates []float64
	// StuckFrac scales each rate into the permanent-fault probability:
	// StuckPerWrite = rate * StuckFrac.
	StuckFrac float64
	// Seeds is the number of seeded cases per rate.
	Seeds int
	// BaseSeed perturbs every derived case seed.
	BaseSeed uint64
	// Blocks and BlockThreads fix the fill workload geometry
	// (default 32 × 64).
	Blocks, BlockThreads int
	// Locks guards each block behind a per-block spin lock, so a stuck-at
	// cell landing under a lock word can livelock re-execution — which the
	// kernel watchdog must convert into a typed abort and quarantine.
	Locks bool
	// WatchdogSteps arms the gpusim watchdog (default 2_000_000).
	WatchdogSteps int64
	// MaxAttempts bounds each case's SelfHeal loop (default 4; must leave
	// room for the scrub to sight a stuck line twice and quarantine it).
	MaxAttempts int
	// Parallel is the number of host goroutines running cases
	// concurrently; the report is identical at any value.
	Parallel int
	// Progress, when non-nil, observes each completed case (completion
	// order is scheduling-dependent; the report is not).
	Progress func(done, total int, r RateResult)
}

// DefaultRateSweep returns the standard scrub campaign: four rates
// spanning two orders of magnitude, 10% of faults permanent.
func DefaultRateSweep(seeds int) *RateSweep {
	if seeds <= 0 {
		seeds = 8
	}
	return &RateSweep{
		Opt:       DefaultOptions(),
		Rates:     []float64{0.002, 0.01, 0.05, 0.2},
		StuckFrac: 0.1,
		Seeds:     seeds,
		BaseSeed:  0x5ee5_cafe,
	}
}

// HealOutcome classifies one rate-sweep case.
type HealOutcome int

const (
	// Healed: SelfHeal reported clean and the durable image is bit-exact.
	Healed HealOutcome = iota
	// Degraded: SelfHeal completed in degraded mode and every surviving
	// region's durable bytes are bit-exact — the honest partial success.
	Degraded
	// Unrecoverable: SelfHeal reported a typed unrecoverable error.
	Unrecoverable
	// HealMismatch: SelfHeal claimed success (full or degraded) but a
	// surviving region's durable bytes diverge — silent corruption.
	HealMismatch
	// HealPanic: the runtime panicked.
	HealPanic
)

// String implements fmt.Stringer.
func (o HealOutcome) String() string {
	switch o {
	case Healed:
		return "healed"
	case Degraded:
		return "degraded"
	case Unrecoverable:
		return "unrecoverable"
	case HealMismatch:
		return "MISMATCH"
	case HealPanic:
		return "PANIC"
	}
	return fmt.Sprintf("HealOutcome(%d)", int(o))
}

// MarshalJSON writes the readable String form.
func (o HealOutcome) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// Failed reports whether the outcome violates the sweep contract: heal
// bit-exactly, degrade honestly, or report a typed error — never lie,
// never panic.
func (o HealOutcome) Failed() bool { return o == HealMismatch || o == HealPanic }

// RateResult reports one executed case.
type RateResult struct {
	Rate    float64     `json:"rate"`
	Seed    uint64      `json:"seed"`
	Outcome HealOutcome `json:"outcome"`
	// Attempts, ScrubHealed, Uncorrectable, QuarantinedBytes, Coverage and
	// WatchdogAborts summarize the case's HealReport.
	Attempts         int     `json:"attempts"`
	ScrubHealed      int64   `json:"scrub_healed"`
	Uncorrectable    int     `json:"uncorrectable"`
	QuarantinedBytes int64   `json:"quarantined_bytes"`
	Coverage         float64 `json:"coverage"`
	WatchdogAborts   int     `json:"watchdog_aborts"`
	// Err carries the error or panic text for non-Healed outcomes.
	Err string `json:"err,omitempty"`
}

// RatePoint aggregates every case at one swept rate.
type RatePoint struct {
	TransientPerWrite float64 `json:"transient_per_write"`
	StuckPerWrite     float64 `json:"stuck_per_write"`
	Cases             int     `json:"cases"`
	Healed            int     `json:"healed"`
	Degraded          int     `json:"degraded"`
	Unrecoverable     int     `json:"unrecoverable"`
	Failures          int     `json:"failures"`
	// SuccessRate is (Healed + Degraded) / Cases: the fraction of cases
	// that completed honestly with their surviving data intact.
	SuccessRate float64 `json:"success_rate"`
	// ScrubHealRate is healed lines over corrupt-line encounters,
	// healed / (healed + final uncorrectable); 1.0 when nothing was ever
	// corrupt. MeanScrubHealed is the average healed-line count per case.
	ScrubHealRate   float64 `json:"scrub_heal_rate"`
	MeanScrubHealed float64 `json:"mean_scrub_healed"`
	// MeanCoverage averages the degraded-coverage ratio over all cases
	// (1.0 for fully healed ones) — the degraded-coverage curve point.
	MeanCoverage float64 `json:"mean_coverage"`
	// MeanQuarantinedBytes averages the durable footprint lost to
	// quarantined lines.
	MeanQuarantinedBytes float64 `json:"mean_quarantined_bytes"`
	WatchdogAborts       int     `json:"watchdog_aborts"`
	MeanAttempts         float64 `json:"mean_attempts"`
}

// RateReport is the structured result of a rate sweep.
type RateReport struct {
	StuckFrac float64     `json:"stuck_frac"`
	Total     int         `json:"total"`
	Points    []RatePoint `json:"points"`
	// Failures lists every contract-violating case, reproducible from its
	// (rate, seed) pair alone.
	Failures []RateResult `json:"failures,omitempty"`
}

// Failed reports whether any case violated the sweep contract.
func (r *RateReport) Failed() bool { return len(r.Failures) > 0 }

// withDefaults fills unset sweep knobs.
func (s *RateSweep) withDefaults() {
	if len(s.Rates) == 0 {
		s.Rates = []float64{0.002, 0.01, 0.05, 0.2}
	}
	if s.Seeds <= 0 {
		s.Seeds = 8
	}
	if s.Blocks <= 0 {
		s.Blocks = 32
	}
	if s.BlockThreads <= 0 {
		s.BlockThreads = 64
	}
	if s.WatchdogSteps <= 0 {
		s.WatchdogSteps = 2_000_000
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 4
	}
	if s.Opt.Mem.LineSize == 0 {
		s.Opt = DefaultOptions()
	}
}

// Run executes the sweep. Cases run concurrently when Parallel > 1; each
// owns a fresh simulated system, and aggregation happens in sweep order.
func (s *RateSweep) Run() (*RateReport, error) {
	s.withDefaults()
	for _, rate := range s.Rates {
		if rate < 0 || rate > 1 || rate*s.StuckFrac > 1 {
			return nil, fmt.Errorf("faultsim: swept rate %v (stuck frac %v) out of [0,1]", rate, s.StuckFrac)
		}
	}

	type spec struct {
		rate float64
		seed uint64
	}
	var specs []spec
	for ri, rate := range s.Rates {
		for si := 0; si < s.Seeds; si++ {
			seed := splitmix(s.BaseSeed ^ splitmix(uint64(ri)<<32|uint64(si)))
			specs = append(specs, spec{rate: rate, seed: seed})
		}
	}

	results := make([]RateResult, len(specs))
	var progressMu sync.Mutex
	done := 0
	parwork.Do(len(specs), s.Parallel, func(i int) {
		res := s.RunRateCase(specs[i].rate, specs[i].seed)
		results[i] = res
		if s.Progress != nil {
			progressMu.Lock()
			done++
			s.Progress(done, len(specs), res)
			progressMu.Unlock()
		}
	})

	rep := &RateReport{StuckFrac: s.StuckFrac, Total: len(specs)}
	for ri, rate := range s.Rates {
		pt := RatePoint{TransientPerWrite: rate, StuckPerWrite: rate * s.StuckFrac}
		var healed, uncorrectable, quarantined, attempts int64
		var coverage float64
		for si := 0; si < s.Seeds; si++ {
			res := results[ri*s.Seeds+si]
			pt.Cases++
			healed += res.ScrubHealed
			uncorrectable += int64(res.Uncorrectable)
			quarantined += res.QuarantinedBytes
			attempts += int64(res.Attempts)
			coverage += res.Coverage
			pt.WatchdogAborts += res.WatchdogAborts
			switch res.Outcome {
			case Healed:
				pt.Healed++
			case Degraded:
				pt.Degraded++
			case Unrecoverable:
				pt.Unrecoverable++
			default:
				pt.Failures++
				rep.Failures = append(rep.Failures, res)
			}
		}
		pt.SuccessRate = float64(pt.Healed+pt.Degraded) / float64(pt.Cases)
		pt.ScrubHealRate = 1
		if healed+uncorrectable > 0 {
			pt.ScrubHealRate = float64(healed) / float64(healed+uncorrectable)
		}
		pt.MeanScrubHealed = float64(healed) / float64(pt.Cases)
		pt.MeanCoverage = coverage / float64(pt.Cases)
		pt.MeanQuarantinedBytes = float64(quarantined) / float64(pt.Cases)
		pt.MeanAttempts = float64(attempts) / float64(pt.Cases)
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// RunRateCase executes one (rate, seed) case end to end: run the fill
// workload under LP on a medium whose fault process is armed at the rate,
// crash, self-heal, and audit the durable image against the (computable)
// expected values — surviving regions must be bit-exact. It never panics.
func (s *RateSweep) RunRateCase(rate float64, seed uint64) (res RateResult) {
	s.withDefaults()
	res = RateResult{Rate: rate, Seed: seed, Coverage: 1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = HealPanic
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	mcfg := s.Opt.Mem
	mcfg.Fault = memsim.FaultConfig{
		Enabled:           true,
		Seed:              seed,
		TransientPerWrite: rate,
		StuckPerWrite:     rate * s.StuckFrac,
	}
	dcfg := s.Opt.Dev
	dcfg.WatchdogSteps = s.WatchdogSteps
	mem := memsim.MustNew(mcfg)
	dev := gpusim.MustNew(dcfg, mem)

	grid, blk := gpusim.D1(s.Blocks), gpusim.D1(s.BlockThreads)
	n := grid.Size() * blk.Size()
	var locks memsim.Region
	if s.Locks {
		locks = dev.Alloc("locks", grid.Size()*8)
		locks.HostZero()
	}
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := core.New(dev, s.Opt.LP, grid, blk)
	ck := core.CaptureCheckpoint(mem)
	kernel := s.fillKernel(locks, out, lp)

	lres := dev.Launch("rate-fill", grid, blk, kernel)
	if lres.Watchdog == nil {
		mem.Crash()
	}

	fusion := s.Opt.LP.Fusion
	if fusion < 1 {
		fusion = 1
	}
	blockBytes := uint64(blk.Size() * 4)
	regionOf := func(line uint64) int {
		if line < out.Base || line >= out.Base+uint64(n*4) {
			return -1
		}
		return int((line-out.Base)/blockBytes) / fusion
	}
	rep, err := lp.SelfHeal(kernel, s.fillRecompute(out), core.HealOpts{
		MaxAttempts: s.MaxAttempts,
		Checkpoint:  ck,
		RegionOf:    regionOf,
	})
	res.Attempts = rep.Attempts
	res.ScrubHealed = rep.ScrubHealed
	res.Uncorrectable = rep.FinalScrub.Uncorrectable
	res.QuarantinedBytes = rep.QuarantinedBytes
	res.Coverage = rep.Coverage
	res.WatchdogAborts = rep.WatchdogAborts

	var deg *core.DegradedError
	switch {
	case err == nil:
		res.Outcome = s.auditImage(mem, out, blk.Size(), fusion, nil, Healed)
	case errors.As(err, &deg):
		skip := map[int]bool{}
		for _, reg := range deg.Regions {
			skip[reg] = true
		}
		res.Err = err.Error()
		res.Outcome = s.auditImage(mem, out, blk.Size(), fusion, skip, Degraded)
	case core.IsTypedRecoveryError(err):
		res.Outcome = Unrecoverable
		res.Err = err.Error()
	default:
		res.Outcome = HealMismatch
		res.Err = err.Error()
	}
	return res
}

// auditImage verifies the durable fill values of every non-quarantined
// region and downgrades the claimed outcome to HealMismatch on any
// divergence.
func (s *RateSweep) auditImage(mem *memsim.Memory, out memsim.Region, blkSize, fusion int, skip map[int]bool, claimed HealOutcome) HealOutcome {
	img := mem.NVMImage()
	for gid := 0; gid < s.Blocks*blkSize; gid++ {
		if skip[(gid/blkSize)/fusion] {
			continue
		}
		if memsim.ImageU32(img, out.Base+uint64(gid*4)) != fillValue(gid) {
			return HealMismatch
		}
	}
	return claimed
}

// fillValue is the expected durable word of global thread gid.
func fillValue(gid int) uint32 { return uint32(gid)*2654435761 + 12345 }

// fillKernel is the sweep's dense LP-protected workload: each thread
// stores one checksummed word. With Locks armed, thread 0 wraps the block
// in a per-block spin lock, making a stuck-at lock cell a livelock the
// watchdog must abort.
func (s *RateSweep) fillKernel(locks, out memsim.Region, lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		if s.Locks {
			b.ForAll(func(t *gpusim.Thread) {
				if t.Linear == 0 {
					for t.AtomicCASU64(locks, b.LinearIdx, 0, 1) != 0 {
						t.Op(1)
					}
				}
			})
		}
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := fillValue(gid)
			t.StoreU32(out, gid, v)
			r.Update(t, v)
		})
		if s.Locks {
			b.ForAll(func(t *gpusim.Thread) {
				if t.Linear == 0 {
					t.AtomicExchU64(locks, b.LinearIdx, 0)
				}
			})
		}
		r.Commit()
	}
}

// fillRecompute refolds each block's durable outputs.
func (s *RateSweep) fillRecompute(out memsim.Region) core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.Update(t, t.LoadU32(out, t.GlobalLinear()))
		})
	}
}

// Render writes the report as an aligned text table.
func (r *RateReport) Render(w io.Writer) {
	fmt.Fprintf(w, "media-error rate sweep: %d cases, stuck fraction %.2g\n", r.Total, r.StuckFrac)
	fmt.Fprintf(w, "%-10s %-10s %5s %6s %8s %6s %5s %9s %9s %8s %10s %8s\n",
		"transient", "stuck", "cases", "healed", "degraded", "unrec", "fail",
		"success", "heal-rate", "coverage", "quar-bytes", "watchdog")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10.4g %-10.4g %5d %6d %8d %6d %5d %9.3f %9.3f %8.4f %10.1f %8d\n",
			p.TransientPerWrite, p.StuckPerWrite, p.Cases, p.Healed, p.Degraded,
			p.Unrecoverable, p.Failures, p.SuccessRate, p.ScrubHealRate,
			p.MeanCoverage, p.MeanQuarantinedBytes, p.WatchdogAborts)
	}
	for i, f := range r.Failures {
		fmt.Fprintf(w, "FAILURE %d: rate=%v seed=%#x -> %v (%s)\n", i+1, f.Rate, f.Seed, f.Outcome, f.Err)
	}
}
