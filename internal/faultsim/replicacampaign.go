// Replica campaign: the replicated-placement counterpart of the cluster
// campaign. Every case builds a fresh fixed-size cluster with R durable
// copies per shard, kills one device mid-launch at a seeded job and
// block boundary, and audits the failover path against the replication
// contract: with R >= 2 every single-device failure must be absorbed by
// adopting a consistent surviving replica — zero failover re-execution
// — while R = 1 must take the legacy re-execute path and never claim an
// adoption. Either way the shared durable pool must come out bit-exact.
// The sweep covers replication factor × failure kind × placer × model;
// every case is seeded from its sweep position, so the report is
// bit-identical at any Parallel width and any gpusim Workers value.
package faultsim

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"gpulp/internal/cluster"
	"gpulp/internal/core"
	"gpulp/internal/parwork"
)

// ReplicaCase identifies one reproducible replicated-failover run. The
// failure time (job index and block boundary) derives from Seed.
type ReplicaCase struct {
	Replicas int                 `json:"replicas"`
	Kind     cluster.FailureKind `json:"kind"`
	Placer   cluster.PlacerKind  `json:"placer"`
	Model    string              `json:"model"`
	Seed     uint64              `json:"seed"`
}

// String implements fmt.Stringer.
func (c ReplicaCase) String() string {
	return fmt.Sprintf("r=%d/%s/%s/%s seed=%#x", c.Replicas, c.Kind, c.Placer, c.Model, c.Seed)
}

// ReplicaOutcome classifies one replica case.
type ReplicaOutcome int

const (
	// ReplicaAdopted: the failure was absorbed by adopting a surviving
	// replica — zero re-execution — and the pool is bit-exact. The
	// required outcome for every R >= 2 case.
	ReplicaAdopted ReplicaOutcome = iota
	// ReplicaRecovered: the legacy re-execute failover recovered the
	// job (the required shape for R = 1) and the pool is bit-exact.
	ReplicaRecovered
	// ReplicaDegraded: jobs were lost but the run returned the typed
	// DegradedClusterError and every completed shard is bit-exact
	// (honest only at R = 1; replicated cases must not degrade on a
	// single failure).
	ReplicaDegraded
	// ReplicaTypedError: the run surfaced another typed recovery error.
	ReplicaTypedError
	// ReplicaContract: the run claimed success but broke the
	// replication contract — an R >= 2 case that re-executed or
	// degraded instead of adopting, or an R = 1 case that adopted.
	ReplicaContract
	// ReplicaMismatch: the run claimed success but a completed shard's
	// durable bytes diverge — silent corruption.
	ReplicaMismatch
	// ReplicaPanicked: the runtime panicked.
	ReplicaPanicked
)

// String implements fmt.Stringer.
func (o ReplicaOutcome) String() string {
	switch o {
	case ReplicaAdopted:
		return "adopted"
	case ReplicaRecovered:
		return "recovered"
	case ReplicaDegraded:
		return "degraded"
	case ReplicaTypedError:
		return "typed-error"
	case ReplicaContract:
		return "CONTRACT"
	case ReplicaMismatch:
		return "MISMATCH"
	case ReplicaPanicked:
		return "PANIC"
	}
	return fmt.Sprintf("ReplicaOutcome(%d)", int(o))
}

// MarshalJSON writes the readable String form.
func (o ReplicaOutcome) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// Failed reports whether the outcome violates the campaign contract.
func (o ReplicaOutcome) Failed() bool {
	return o == ReplicaContract || o == ReplicaMismatch || o == ReplicaPanicked
}

// ReplicaResult reports one executed case.
type ReplicaResult struct {
	Case    ReplicaCase    `json:"case"`
	Outcome ReplicaOutcome `json:"outcome"`
	// FailJob and AfterBlocks are the seed-derived failure time.
	FailJob     int `json:"fail_job"`
	AfterBlocks int `json:"after_blocks"`
	// Adopted, Failovers and ReexecutedBlocks classify how the failure
	// was absorbed; ReplicaLaunches and NVMLineWrites measure what the
	// redundancy cost.
	Adopted          int     `json:"adopted"`
	Failovers        int     `json:"failovers"`
	ReexecutedBlocks int     `json:"reexecuted_blocks"`
	ReplicaLaunches  int     `json:"replica_launches"`
	NVMLineWrites    int64   `json:"nvm_line_writes"`
	Coverage         float64 `json:"coverage"`
	MakespanCycles   int64   `json:"makespan_cycles"`
	// Err carries the error or panic text for non-clean outcomes.
	Err string `json:"err,omitempty"`
}

// ReplicaCell aggregates every case of one (replicas, kind, placer,
// model) cell.
type ReplicaCell struct {
	Replicas    int                 `json:"replicas"`
	Kind        cluster.FailureKind `json:"kind"`
	Placer      cluster.PlacerKind  `json:"placer"`
	Model       string              `json:"model"`
	Cases       int                 `json:"cases"`
	Adopted     int                 `json:"adopted"`
	Recovered   int                 `json:"recovered"`
	Degraded    int                 `json:"degraded"`
	TypedErrors int                 `json:"typed_errors"`
	Failures    int                 `json:"failures"`
	// MeanReexec and MeanNVMWrites quantify the replication trade:
	// adopted cells re-execute nothing and pay write amplification.
	MeanReexec    float64 `json:"mean_reexecuted_blocks"`
	MeanNVMWrites float64 `json:"mean_nvm_line_writes"`
	MeanMakespan  float64 `json:"mean_makespan_cycles"`
	MeanCoverage  float64 `json:"mean_coverage"`
}

// ReplicaReport is the structured result of a replica campaign.
type ReplicaReport struct {
	Total int `json:"total"`
	// RecoveredWithoutReexec counts cases whose failure was absorbed
	// with zero re-executed blocks — the replication payoff headline.
	RecoveredWithoutReexec int           `json:"recovered_without_reexec"`
	Cells                  []ReplicaCell `json:"cells"`
	// Failures lists every contract-violating case, reproducible from
	// its (replicas, kind, placer, model, seed) tuple alone.
	Failures []ReplicaResult `json:"failures,omitempty"`
}

// Failed reports whether any case violated the campaign contract.
func (r *ReplicaReport) Failed() bool { return len(r.Failures) > 0 }

// ReplicaCampaign sweeps replication factor × failure kind × placer ×
// persistency model over a fixed-size cluster.
type ReplicaCampaign struct {
	Opt Options
	// Devices is the fixed cluster size every case runs on (default 4).
	Devices int
	// RFactors are the replication factors to sweep (default {1, 2}).
	RFactors []int
	// Kinds are the failure shapes (default all).
	Kinds []cluster.FailureKind
	// Placers are the replica placement policies (default all).
	Placers []cluster.PlacerKind
	// Models are the persistency models guarding the shards
	// (default {"lp", "sbrp"}).
	Models []string
	// Seeds is the number of seeded cases per cell (default 3).
	Seeds int
	// BaseSeed perturbs every derived case seed.
	BaseSeed uint64
	// Jobs, BlocksPerJob and BlockThreads fix the workload
	// (default 8 × 4 × 32).
	Jobs, BlocksPerJob, BlockThreads int
	// MinAlive is the cluster quorum (default 1).
	MinAlive int
	// MaxFailovers bounds failover attempts per lost job (default 3).
	MaxFailovers int
	// Parallel is the number of host goroutines running cases
	// concurrently; the report is identical at any value.
	Parallel int
	// Progress, when non-nil, observes each completed case (completion
	// order is scheduling-dependent; the report is not).
	Progress func(done, total int, r ReplicaResult)
}

// DefaultReplicaCampaign returns the standard replicated-failover
// sweep: a 4-device cluster, R in {1, 2}, every failure kind, every
// placer, the LP and SBRP models.
func DefaultReplicaCampaign(seeds int) *ReplicaCampaign {
	if seeds <= 0 {
		seeds = 3
	}
	return &ReplicaCampaign{
		Opt:      DefaultOptions(),
		Seeds:    seeds,
		BaseSeed: 0x5e71_1ca5,
	}
}

// withDefaults fills unset sweep knobs.
func (c *ReplicaCampaign) withDefaults() {
	if c.Devices <= 0 {
		c.Devices = 4
	}
	if len(c.RFactors) == 0 {
		c.RFactors = []int{1, 2}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = cluster.AllFailureKinds()
	}
	if len(c.Placers) == 0 {
		c.Placers = cluster.AllPlacers()
	}
	if len(c.Models) == 0 {
		c.Models = []string{"lp", "sbrp"}
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.BlocksPerJob <= 0 {
		c.BlocksPerJob = 4
	}
	if c.BlockThreads <= 0 {
		c.BlockThreads = 32
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 1
	}
	if c.MaxFailovers <= 0 {
		c.MaxFailovers = 3
	}
	if c.Opt.Mem.LineSize == 0 {
		c.Opt = DefaultOptions()
	}
}

// Run executes the campaign. Cases run concurrently when Parallel > 1;
// each owns a fresh simulated cluster, and aggregation happens in sweep
// order.
func (c *ReplicaCampaign) Run() (*ReplicaReport, error) {
	c.withDefaults()
	for _, r := range c.RFactors {
		if r < 1 || r > c.Devices {
			return nil, fmt.Errorf("faultsim: swept replication factor %d must be in [1, %d]", r, c.Devices)
		}
	}

	var specs []ReplicaCase
	for ri, r := range c.RFactors {
		for ki, k := range c.Kinds {
			for pi, p := range c.Placers {
				for mi, m := range c.Models {
					for si := 0; si < c.Seeds; si++ {
						pos := uint64(ri)<<48 | uint64(ki)<<36 | uint64(pi)<<24 | uint64(mi)<<12 | uint64(si)
						specs = append(specs, ReplicaCase{
							Replicas: r, Kind: k, Placer: p, Model: m,
							Seed: splitmix(c.BaseSeed ^ splitmix(pos)),
						})
					}
				}
			}
		}
	}

	results := make([]ReplicaResult, len(specs))
	var progressMu sync.Mutex
	done := 0
	parwork.Do(len(specs), c.Parallel, func(i int) {
		res := c.RunReplicaCase(specs[i])
		results[i] = res
		if c.Progress != nil {
			progressMu.Lock()
			done++
			c.Progress(done, len(specs), res)
			progressMu.Unlock()
		}
	})

	rep := &ReplicaReport{Total: len(specs)}
	i := 0
	for _, r := range c.RFactors {
		for _, k := range c.Kinds {
			for _, p := range c.Placers {
				for _, m := range c.Models {
					cell := ReplicaCell{Replicas: r, Kind: k, Placer: p, Model: m}
					var reexec, nvm, makespan int64
					var coverage float64
					for si := 0; si < c.Seeds; si++ {
						res := results[i]
						i++
						cell.Cases++
						reexec += int64(res.ReexecutedBlocks)
						nvm += res.NVMLineWrites
						makespan += res.MakespanCycles
						coverage += res.Coverage
						if !res.Outcome.Failed() && res.ReexecutedBlocks == 0 {
							rep.RecoveredWithoutReexec++
						}
						switch res.Outcome {
						case ReplicaAdopted:
							cell.Adopted++
						case ReplicaRecovered:
							cell.Recovered++
						case ReplicaDegraded:
							cell.Degraded++
						case ReplicaTypedError:
							cell.TypedErrors++
						default:
							cell.Failures++
							rep.Failures = append(rep.Failures, res)
						}
					}
					cell.MeanReexec = float64(reexec) / float64(cell.Cases)
					cell.MeanNVMWrites = float64(nvm) / float64(cell.Cases)
					cell.MeanMakespan = float64(makespan) / float64(cell.Cases)
					cell.MeanCoverage = coverage / float64(cell.Cases)
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
	}
	return rep, nil
}

// RunReplicaCase executes one case end to end: build the replicated
// cluster, arm the seeded failure, run, audit the shared pool, and
// check the replication contract. It never panics.
func (c *ReplicaCampaign) RunReplicaCase(cs ReplicaCase) (res ReplicaResult) {
	c.withDefaults()
	res = ReplicaResult{Case: cs, Coverage: 1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = ReplicaPanicked
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	res.FailJob = int(splitmix(cs.Seed^0xfa11) % uint64(c.Jobs))
	midMax := c.BlocksPerJob - 1
	if midMax < 1 {
		midMax = 1
	}
	res.AfterBlocks = 1 + int(splitmix(cs.Seed^0xb10c)%uint64(midMax))

	cfg := cluster.Config{
		Devices:      c.Devices,
		Jobs:         c.Jobs,
		BlocksPerJob: c.BlocksPerJob,
		BlockThreads: c.BlockThreads,
		Replicas:     cs.Replicas,
		Placer:       cs.Placer,
		Model:        cs.Model,
		Seed:         cs.Seed,
		Mem:          c.Opt.Mem,
		Dev:          c.Opt.Dev,
		LP:           c.Opt.LP,
		MaxRounds:    c.Opt.MaxRounds,
		MinAlive:     c.MinAlive,
		MaxFailovers: c.MaxFailovers,
		Failures: []cluster.FailurePlan{{
			Job:         res.FailJob,
			Kind:        cs.Kind,
			AfterBlocks: res.AfterBlocks,
		}},
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		res.Outcome = ReplicaTypedError
		res.Err = err.Error()
		return res
	}
	rep, err := cl.Run()
	res.Adopted = rep.Adopted
	res.Failovers = rep.Failovers
	res.ReexecutedBlocks = rep.ReexecutedBlocks
	res.ReplicaLaunches = rep.ReplicaLaunches
	res.NVMLineWrites = rep.NVMLineWrites
	res.Coverage = rep.Coverage
	res.MakespanCycles = rep.MakespanCycles

	var deg *cluster.DegradedClusterError
	switch {
	case err == nil:
		if verr := cl.Verify(); verr != nil {
			res.Outcome = ReplicaMismatch
			res.Err = verr.Error()
			return res
		}
		switch {
		case cs.Replicas > 1 && (rep.Adopted < 1 || rep.ReexecutedBlocks > 0):
			res.Outcome = ReplicaContract
			res.Err = fmt.Sprintf("replicated case adopted=%d reexec=%d: failure must be absorbed by replica adoption",
				rep.Adopted, rep.ReexecutedBlocks)
		case cs.Replicas == 1 && rep.Adopted > 0:
			res.Outcome = ReplicaContract
			res.Err = fmt.Sprintf("unreplicated case claims %d adoptions", rep.Adopted)
		case cs.Replicas > 1:
			res.Outcome = ReplicaAdopted
		default:
			res.Outcome = ReplicaRecovered
		}
	case errors.As(err, &deg):
		res.Err = err.Error()
		if verr := cl.Verify(); verr != nil {
			res.Outcome = ReplicaMismatch
			res.Err = verr.Error()
			return res
		}
		if cs.Replicas > 1 {
			// A replicated single-device failure has a surviving copy
			// by construction; degrading instead of adopting breaks
			// the availability contract.
			res.Outcome = ReplicaContract
			return res
		}
		res.Outcome = ReplicaDegraded
	case core.IsTypedRecoveryError(err):
		res.Outcome = ReplicaTypedError
		res.Err = err.Error()
	default:
		res.Outcome = ReplicaMismatch
		res.Err = err.Error()
	}
	return res
}

// Render writes the report as an aligned text table.
func (r *ReplicaReport) Render(w io.Writer) {
	fmt.Fprintf(w, "replicated failover campaign: %d cases, %d recovered without re-execution\n",
		r.Total, r.RecoveredWithoutReexec)
	fmt.Fprintf(w, "%-4s %-16s %-10s %-7s %5s %7s %9s %8s %5s %4s %8s %10s %12s\n",
		"r", "kind", "placer", "model", "cases", "adopted", "recovered", "degraded", "typed", "fail",
		"reexec", "nvm-writes", "makespan")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-4d %-16s %-10s %-7s %5d %7d %9d %8d %5d %4d %8.1f %10.0f %12.0f\n",
			c.Replicas, c.Kind, c.Placer, c.Model, c.Cases, c.Adopted, c.Recovered,
			c.Degraded, c.TypedErrors, c.Failures, c.MeanReexec, c.MeanNVMWrites, c.MeanMakespan)
	}
	for i, f := range r.Failures {
		fmt.Fprintf(w, "FAILURE %d: %v -> %v (%s)\n", i+1, f.Case, f.Outcome, f.Err)
	}
}
