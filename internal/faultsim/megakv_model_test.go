package faultsim

import "testing"

// TestModelMegaKVAtomicVisibility is the regression pin for a real bug
// the serving layer surfaced: megakv claimed key slots with AtomicCASU64
// and tombstoned them with AtomicExchU64, and gpusim atomics do not fire
// the store hook — so EP's redo log (and, in principle, any hook-driven
// persistency model) never saw the key words. Replaying such a log after
// a crash restored values into slots whose keys were still zero, and
// every EP clean-crash/partial-evict case on megakv-insert reported
// "durable image of megakv.buckets diverges from fault-free golden".
// megakv now issues hook-visible confirming stores after each atomic;
// every model must recover the store bit-exact.
func TestModelMegaKVAtomicVisibility(t *testing.T) {
	opt := DefaultOptions()
	for _, kernel := range []string{"megakv-insert", "megakv-mixed"} {
		golden, err := GoldenRun(opt, kernel)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []string{"ep", "sbrp", "strict"} {
			for _, kind := range []Kind{CleanCrash, PartialEviction} {
				for seed := uint64(0); seed < 2; seed++ {
					c := Case{Kernel: kernel, Kind: kind, Seed: 0xa70 + seed, Model: model}
					r := RunCase(opt, c, golden)
					if r.Outcome != Recovered {
						t.Errorf("%s/%s/%v seed %#x: %v (%s)", model, kernel, kind, c.Seed, r.Outcome, r.Err)
					}
				}
			}
		}
	}
}
