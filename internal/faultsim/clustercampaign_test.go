package faultsim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"gpulp/internal/cluster"
)

// smallClusterCampaign keeps a sweep fast: tiny jobs, short geometry.
func smallClusterCampaign(seeds int) *ClusterCampaign {
	c := DefaultClusterCampaign(seeds)
	c.Jobs = 4
	c.BlocksPerJob = 2
	c.BlockThreads = 32
	return c
}

// TestClusterCampaignAcceptance pins the PR's acceptance criterion: a
// seeded campaign that kills one device mid-launch on EVERY case — across
// device counts, failure kinds and routers — must recover a bit-exact
// durable image via cross-device re-execution on every single case, with
// zero panics (MinAlive=1 and Devices >= 2 make every loss survivable).
func TestClusterCampaignAcceptance(t *testing.T) {
	c := smallClusterCampaign(2)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("campaign contract violated: %+v", rep.Failures)
	}
	// 2 device counts × 3 kinds × 3 routers × 2 seeds.
	if rep.Total != 36 || len(rep.Cells) != 18 {
		t.Fatalf("campaign shape: total=%d cells=%d, want 36/18", rep.Total, len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if cell.Recovered != cell.Cases {
			t.Fatalf("cell %d/%s/%s: %d of %d cases recovered (degraded=%d typed=%d failed=%d) — "+
				"a single loss above quorum must always recover bit-exactly",
				cell.Devices, cell.Kind, cell.Router, cell.Recovered, cell.Cases,
				cell.Degraded, cell.TypedErrors, cell.Failures)
		}
		if cell.MeanCoverage != 1 {
			t.Fatalf("cell %d/%s/%s: coverage %v after full recovery", cell.Devices, cell.Kind, cell.Router, cell.MeanCoverage)
		}
		if cell.MeanFailovers < 1 {
			t.Fatalf("cell %d/%s/%s: no failovers recorded — the injected loss never fired", cell.Devices, cell.Kind, cell.Router)
		}
	}
}

// TestClusterCampaignCaseShape: the seeded failure time is mid-launch and
// reproducible, and re-execution actually happened.
func TestClusterCampaignCaseShape(t *testing.T) {
	c := smallClusterCampaign(1)
	cs := ClusterCase{Devices: 2, Kind: cluster.FailStop, Router: cluster.RoundRobin, Seed: 0xabcdef}
	r1 := c.RunClusterCase(cs)
	if r1.Outcome != ClusterRecovered {
		t.Fatalf("case did not recover: %+v", r1)
	}
	if r1.FailJob < 0 || r1.FailJob >= c.Jobs {
		t.Fatalf("derived fail job %d outside [0,%d)", r1.FailJob, c.Jobs)
	}
	if r1.AfterBlocks < 1 || r1.AfterBlocks >= c.BlocksPerJob {
		t.Fatalf("failure at block %d of %d is not mid-launch", r1.AfterBlocks, c.BlocksPerJob)
	}
	if r1.ReexecutedBlocks < 1 {
		t.Fatalf("recovery re-executed no blocks: %+v", r1)
	}
	r2 := c.RunClusterCase(cs)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same case diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestClusterCampaignDegradedHonest: with quorum equal to the device
// count, the loss is unsurvivable — every case must land on the typed
// degraded outcome, never a mismatch or panic.
func TestClusterCampaignDegradedHonest(t *testing.T) {
	c := smallClusterCampaign(2)
	c.DeviceCounts = []int{2}
	c.Kinds = []cluster.FailureKind{cluster.FailStop}
	c.Routers = []cluster.RouterKind{cluster.RoundRobin}
	c.MinAlive = 2
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("degraded sweep must stay honest: %+v", rep.Failures)
	}
	cell := rep.Cells[0]
	if cell.Degraded != cell.Cases {
		t.Fatalf("quorum-loss cell: degraded=%d of %d (recovered=%d typed=%d)",
			cell.Degraded, cell.Cases, cell.Recovered, cell.TypedErrors)
	}
	if cell.MeanCoverage >= 1 {
		t.Fatalf("degraded cell reports full coverage: %+v", cell)
	}
}

// TestClusterCampaignParallelMatchesSerial: case seeds derive from sweep
// position and aggregation is in sweep order, so Parallel=1 and
// Parallel=8 produce identical structured reports.
func TestClusterCampaignParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *ClusterReport {
		c := smallClusterCampaign(1)
		c.DeviceCounts = []int{2, 3}
		c.Parallel = parallel
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (parallel=%d): %v", parallel, err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("cluster campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestClusterCampaignRejectsBadDevices: a non-positive swept device count
// is a configuration error, not a panic downstream.
func TestClusterCampaignRejectsBadDevices(t *testing.T) {
	c := smallClusterCampaign(1)
	c.DeviceCounts = []int{0}
	if _, err := c.Run(); err == nil {
		t.Fatal("device count 0 accepted")
	}
}

// TestClusterReportRoundTrip: the report marshals with readable enum
// names and renders without panicking.
func TestClusterReportRoundTrip(t *testing.T) {
	c := smallClusterCampaign(1)
	c.DeviceCounts = []int{2}
	c.Kinds = []cluster.FailureKind{cluster.Hang}
	c.Routers = []cluster.RouterKind{cluster.LeastLoaded}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"hang"`, `"least-loaded"`, `"recovered"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Fatalf("report JSON missing %s:\n%s", want, js)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("cluster failover campaign")) {
		t.Fatalf("render output unexpected:\n%s", buf.String())
	}
}
