package faultsim

import (
	"strings"
	"testing"
)

// TestCampaignSmoke runs a small but complete campaign — every fault
// kind over a dense and a hash-structured workload — and requires the
// campaign contract to hold: every case either recovers bit-exact or
// returns a typed error; zero panics, zero silent mismatches.
func TestCampaignSmoke(t *testing.T) {
	c := DefaultCampaign(2)
	c.Kernels = []string{"tmm", "megakv-insert"}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 kernels × 6 kinds − 1 inapplicable (megakv data flips), × 2 seeds.
	if want := (2*int(numKinds) - 1) * 2; rep.Total != want {
		t.Fatalf("campaign ran %d cases, want %d", rep.Total, want)
	}
	if rep.Failed() {
		var sb strings.Builder
		rep.Render(&sb)
		t.Fatalf("campaign contract violated:\n%s", sb.String())
	}
	if rep.Recovered+rep.TypedErrors != rep.Total {
		t.Fatalf("outcome counts inconsistent: %+v", rep)
	}
	if len(rep.Summaries) != 2*int(numKinds)-1 {
		t.Fatalf("expected a summary row per (kernel, kind) cell, got %d", len(rep.Summaries))
	}
}

// TestCaseReproducible asserts a case replays identically from its
// recorded Case alone — the property that makes campaign failures
// debuggable.
func TestCaseReproducible(t *testing.T) {
	opt := DefaultOptions()
	golden, err := GoldenRun(opt, "tmm")
	if err != nil {
		t.Fatal(err)
	}
	c := Case{Kernel: "tmm", Kind: TornWriteback, Seed: 0xdeadbeef}
	a := RunCase(opt, c, golden)
	b := RunCase(opt, c, golden)
	if a != b {
		t.Fatalf("case not reproducible:\n  first:  %+v\n  second: %+v", a, b)
	}
	if a.Outcome.Failed() {
		t.Fatalf("torn-writeback case failed: %+v", a)
	}
}

// TestMidKernelCrashPinned pins the crash point and checks the recorded
// crash parameters round-trip into the result.
func TestMidKernelCrashPinned(t *testing.T) {
	opt := DefaultOptions()
	golden, err := GoldenRun(opt, "tmm")
	if err != nil {
		t.Fatal(err)
	}
	res := RunCase(opt, Case{Kernel: "tmm", Kind: MidKernelCrash, Seed: 7, AfterBlocks: 3}, golden)
	if res.CrashedAfter != 3 {
		t.Fatalf("CrashedAfter = %d, want the pinned 3", res.CrashedAfter)
	}
	if res.Outcome != Recovered {
		t.Fatalf("mid-kernel crash at block 3 did not recover: %+v", res)
	}
}

// TestMinimizeKeepsOriginalWhenNoSmallerFails: if no smaller crash point
// reproduces, the minimizer must hand back the original case untouched.
func TestMinimizeKeepsOriginalWhenNoSmallerFails(t *testing.T) {
	opt := DefaultOptions()
	golden, err := GoldenRun(opt, "tmm")
	if err != nil {
		t.Fatal(err)
	}
	res := RunCase(opt, Case{Kernel: "tmm", Kind: MidKernelCrash, Seed: 11, AfterBlocks: 4}, golden)
	if res.Outcome != Recovered {
		t.Fatalf("setup case unexpectedly failed: %+v", res)
	}
	// Pretend it failed; every smaller candidate recovers, so the
	// minimizer must return it unchanged.
	fake := res
	fake.Outcome = Mismatch
	min := MinimizeCase(opt, fake, golden)
	if min.Case != fake.Case {
		t.Fatalf("minimizer replaced a failure with a passing case: %+v", min.Case)
	}
}

// TestApplicable pins the one applicability exclusion and its rationale.
func TestApplicable(t *testing.T) {
	if !Applicable("tmm", DataBitFlips) || !Applicable("spmv", DataBitFlips) {
		t.Error("data bit flips must apply to dense float kernels")
	}
	if Applicable("megakv-insert", DataBitFlips) {
		t.Error("data bit flips into the MEGA-KV index are not a decidable probe")
	}
	for _, k := range AllKinds() {
		if k != DataBitFlips && !Applicable("megakv-insert", k) {
			t.Errorf("kind %v should apply to megakv-insert", k)
		}
	}
}

// TestParseKind round-trips every kind through its String form.
func TestParseKind(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

// TestModelApplicable pins the per-model applicability matrix.
func TestModelApplicable(t *testing.T) {
	// LP defers to the legacy matrix.
	if ModelApplicable("lp", "tmm", DataBitFlips) != Applicable("tmm", DataBitFlips) {
		t.Error("lp applicability must match the legacy matrix")
	}
	for _, model := range []string{"ep", "sbrp", "strict"} {
		if ModelApplicable(model, "tmm", DataBitFlips) || ModelApplicable(model, "tmm", StoreBitFlips) {
			t.Errorf("%s has no checksums; bit-flip probes are undetectable by design", model)
		}
		if !ModelApplicable(model, "tmm", MidKernelCrash) {
			t.Errorf("%s mid-kernel crash must apply to dense kernels", model)
		}
		if ModelApplicable(model, "megakv-insert", MidKernelCrash) {
			t.Errorf("%s block re-execution is not byte-idempotent on megakv", model)
		}
		for _, k := range []Kind{CleanCrash, PartialEviction, TornWriteback} {
			if !ModelApplicable(model, "megakv-insert", k) {
				t.Errorf("%s should allow %v everywhere", model, k)
			}
		}
	}
}

// TestModelCampaign sweeps every registered persistency model through
// the seeded fault campaign on tmm: each model must recover bit-exact
// (or report a typed error) under every applicable fault shape, and the
// per-model summary cells must carry their labels.
func TestModelCampaign(t *testing.T) {
	c := DefaultCampaign(2)
	c.Kernels = []string{"tmm"}
	c.Models = []string{"lp", "ep", "sbrp", "strict"}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// lp: all 6 kinds; ep/sbrp/strict: clean, mid-kernel, partial, torn.
	if want := (6 + 3*4) * 2; rep.Total != want {
		t.Fatalf("model campaign ran %d cases, want %d", rep.Total, want)
	}
	if rep.Failed() {
		var sb strings.Builder
		rep.Render(&sb)
		t.Fatalf("model campaign contract violated:\n%s", sb.String())
	}
	if rep.TypedErrors != 0 {
		t.Fatalf("model campaign hit %d typed errors on tmm; every applicable fault should recover", rep.TypedErrors)
	}
	models := map[string]bool{}
	for _, s := range rep.Summaries {
		models[s.Model] = true
	}
	for _, m := range c.Models {
		if !models[m] {
			t.Errorf("no summary cell for model %s", m)
		}
	}
}

// TestModelCaseReproducible asserts model cases replay identically from
// their recorded Case alone, like LP cases.
func TestModelCaseReproducible(t *testing.T) {
	opt := DefaultOptions()
	golden, err := GoldenRun(opt, "tmm")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"ep", "sbrp", "strict"} {
		c := Case{Kernel: "tmm", Kind: MidKernelCrash, Seed: 0xbead, Model: model}
		a := RunCase(opt, c, golden)
		b := RunCase(opt, c, golden)
		if a != b {
			t.Fatalf("%s case not reproducible:\n  first:  %+v\n  second: %+v", model, a, b)
		}
		if a.Outcome != Recovered {
			t.Fatalf("%s mid-kernel case did not recover: %+v", model, a)
		}
	}
}
