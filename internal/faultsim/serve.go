// Serve campaign: fault injection against the MEGA-KV serving layer
// (internal/serve). Every case runs a full serving loop — seeded load,
// admission, batched launches — under one persistency model and crashes
// the memory system mid-way through a seed-derived kernel launch. The
// contract is the serving layer's own: the in-loop recovery must leave
// the durable image bit-exact against a crash-free run observed at the
// same launch (the instant both runs have served identical requests),
// the admission ledger must hold to the end of the run, and nothing may
// panic. Cases are seeded from their sweep position, so the report is
// bit-identical at any Parallel width and any gpusim Workers value.
package faultsim

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"gpulp/internal/parwork"
	"gpulp/internal/pmodel"
	"gpulp/internal/serve"
)

// ServeCase identifies one reproducible mid-serving crash run. The
// crashed launch and the block boundary inside it derive from Seed and
// the golden run's launch count.
type ServeCase struct {
	Model string `json:"model"`
	Seed  uint64 `json:"seed"`
}

// String implements fmt.Stringer.
func (c ServeCase) String() string {
	return fmt.Sprintf("serve/%s seed=%#x", c.Model, c.Seed)
}

// ServeOutcome classifies one serve case.
type ServeOutcome int

const (
	// ServeRecovered: the crash was absorbed in-loop, the post-recovery
	// durable image matches the crash-free run's bit for bit, and the
	// admission ledger verifies at the end of the run.
	ServeRecovered ServeOutcome = iota
	// ServeTypedError: the run surfaced a typed error instead of
	// recovering (honest refusal).
	ServeTypedError
	// ServeMismatch: the run claimed recovery but the durable image
	// diverges from the crash-free run, or the ledger is violated —
	// silent corruption.
	ServeMismatch
	// ServePanicked: the serving loop panicked.
	ServePanicked
)

// String implements fmt.Stringer.
func (o ServeOutcome) String() string {
	switch o {
	case ServeRecovered:
		return "recovered"
	case ServeTypedError:
		return "typed-error"
	case ServeMismatch:
		return "MISMATCH"
	case ServePanicked:
		return "PANIC"
	}
	return fmt.Sprintf("ServeOutcome(%d)", int(o))
}

// MarshalJSON writes the readable String form.
func (o ServeOutcome) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// Failed reports whether the outcome violates the serving contract.
func (o ServeOutcome) Failed() bool { return o == ServeMismatch || o == ServePanicked }

// ServeResult reports one executed case.
type ServeResult struct {
	Case    ServeCase    `json:"case"`
	Outcome ServeOutcome `json:"outcome"`
	// CrashLaunch and AfterBlocks are the seed-derived crash point.
	CrashLaunch int `json:"crash_launch"`
	AfterBlocks int `json:"after_blocks"`
	// Launches, Recoveries and RecoveryCycles summarize the crashed run.
	Launches       int   `json:"launches"`
	Recoveries     int   `json:"recoveries"`
	RecoveryCycles int64 `json:"recovery_cycles"`
	// Err carries the error or panic text for non-Recovered outcomes.
	Err string `json:"err,omitempty"`
}

// ServeCell aggregates every case of one model.
type ServeCell struct {
	Model        string  `json:"model"`
	Cases        int     `json:"cases"`
	Recovered    int     `json:"recovered"`
	TypedErrors  int     `json:"typed_errors"`
	Failures     int     `json:"failures"`
	MeanRecovery float64 `json:"mean_recovery_cycles"`
	MeanLaunches float64 `json:"mean_launches"`
}

// ServeReport is the structured result of a serve campaign.
type ServeReport struct {
	Total int         `json:"total"`
	Cells []ServeCell `json:"cells"`
	// Failures lists every contract-violating case, reproducible from
	// its (model, seed) tuple alone.
	Failures []ServeResult `json:"failures,omitempty"`
}

// Failed reports whether any case violated the serving contract.
func (r *ServeReport) Failed() bool { return len(r.Failures) > 0 }

// ServeCampaign sweeps persistency model × seed-derived crash time over
// full serving runs.
type ServeCampaign struct {
	// Base is the serving configuration every case perturbs (zero value:
	// serve.DefaultConfig with a shortened horizon). Crash and
	// observation knobs are overwritten per case.
	Base serve.Config
	// Models are the persistency models to sweep (default: every
	// registered model; bare "none" cannot host a crash case).
	Models []string
	// Seeds is the number of seeded cases per model (default 4).
	Seeds int
	// BaseSeed perturbs every derived case seed.
	BaseSeed uint64
	// Parallel is the number of host goroutines running cases
	// concurrently; the report is identical at any value.
	Parallel int
	// Progress, when non-nil, observes each completed case (completion
	// order is scheduling-dependent; the report is not).
	Progress func(done, total int, r ServeResult)
}

// DefaultServeCampaign returns the standard serve sweep: every
// registered persistency model, a shortened default serving run.
func DefaultServeCampaign(seeds int) *ServeCampaign {
	if seeds <= 0 {
		seeds = 4
	}
	base := serve.DefaultConfig()
	base.HorizonCycles = 400_000
	return &ServeCampaign{
		Base:     base,
		Seeds:    seeds,
		BaseSeed: 0x5e12_7e4d,
	}
}

// withDefaults fills unset sweep knobs.
func (c *ServeCampaign) withDefaults() {
	if c.Base.HorizonCycles == 0 {
		c.Base = serve.DefaultConfig()
		c.Base.HorizonCycles = 400_000
	}
	if len(c.Models) == 0 {
		c.Models = pmodel.Names()
	}
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
}

// Run executes the campaign. Cases run concurrently when Parallel > 1;
// each owns a fresh simulated stack, and aggregation happens in sweep
// order.
func (c *ServeCampaign) Run() (*ServeReport, error) {
	c.withDefaults()
	for _, m := range c.Models {
		if _, ok := pmodel.Lookup(m); !ok {
			return nil, fmt.Errorf("faultsim: serve campaign model %q is not registered (bare runs cannot crash)", m)
		}
	}

	var specs []ServeCase
	for mi, m := range c.Models {
		for si := 0; si < c.Seeds; si++ {
			pos := uint64(mi)<<32 | uint64(si)
			specs = append(specs, ServeCase{
				Model: m,
				Seed:  splitmix(c.BaseSeed ^ splitmix(pos)),
			})
		}
	}

	results := make([]ServeResult, len(specs))
	var progressMu sync.Mutex
	done := 0
	parwork.Do(len(specs), c.Parallel, func(i int) {
		res := c.RunServeCase(specs[i])
		results[i] = res
		if c.Progress != nil {
			progressMu.Lock()
			done++
			c.Progress(done, len(specs), res)
			progressMu.Unlock()
		}
	})

	rep := &ServeReport{Total: len(specs)}
	i := 0
	for _, m := range c.Models {
		cell := ServeCell{Model: m}
		var recovery, launches int64
		for si := 0; si < c.Seeds; si++ {
			res := results[i]
			i++
			cell.Cases++
			recovery += res.RecoveryCycles
			launches += int64(res.Launches)
			switch res.Outcome {
			case ServeRecovered:
				cell.Recovered++
			case ServeTypedError:
				cell.TypedErrors++
			default:
				cell.Failures++
				rep.Failures = append(rep.Failures, res)
			}
		}
		cell.MeanRecovery = float64(recovery) / float64(cell.Cases)
		cell.MeanLaunches = float64(launches) / float64(cell.Cases)
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// RunServeCase executes one case end to end: a crash-free golden run to
// locate the launch schedule and snapshot the durable image at the
// seed-derived crash launch, then the crashed run, recovery audit, and
// ledger audit. It never panics.
func (c *ServeCampaign) RunServeCase(cs ServeCase) (res ServeResult) {
	c.withDefaults()
	res = ServeResult{Case: cs}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = ServePanicked
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	cfg := c.Base
	cfg.Model = cs.Model
	cfg.Seed = cs.Seed
	cfg.CrashAtLaunch = 0
	cfg.CrashAfterBlocks = 0
	cfg.ObserveAtLaunch = 0

	// Probe the launch schedule, then pick a strictly interior crash
	// launch from the seed so early and late epochs both get coverage.
	probe, err := serve.Run(cfg)
	if err != nil {
		res.Outcome = ServeTypedError
		res.Err = err.Error()
		return res
	}
	launches := probe.Report.Launches
	if launches < 2 {
		res.Outcome = ServeTypedError
		res.Err = fmt.Sprintf("golden run made only %d launches; no interior crash point", launches)
		return res
	}
	res.CrashLaunch = 1 + int(splitmix(cs.Seed^0xc4a5)%uint64(launches-1))
	res.AfterBlocks = 1 + int(splitmix(cs.Seed^0xb10c)%uint64(c.Base.MaxBatch/serve.BlockThreads))

	cfg.ObserveAtLaunch = res.CrashLaunch
	golden, err := serve.Run(cfg)
	if err != nil {
		res.Outcome = ServeTypedError
		res.Err = err.Error()
		return res
	}

	crash := cfg
	crash.CrashAtLaunch = res.CrashLaunch
	crash.CrashAfterBlocks = res.AfterBlocks
	r, err := serve.Run(crash)
	if err != nil {
		res.Outcome = ServeTypedError
		res.Err = err.Error()
		return res
	}
	res.Launches = r.Report.Launches
	res.Recoveries = r.Report.Recoveries
	res.RecoveryCycles = r.Report.RecoveryCycles

	if r.Report.Recoveries != 1 {
		res.Outcome = ServeMismatch
		res.Err = fmt.Sprintf("crashed run reported %d recoveries, want 1", r.Report.Recoveries)
		return res
	}
	gObs, cObs := golden.Observed(), r.Observed()
	if len(gObs) == 0 || len(gObs) != len(cObs) {
		res.Outcome = ServeMismatch
		res.Err = fmt.Sprintf("observation snapshots missing or mismatched (%d vs %d)", len(gObs), len(cObs))
		return res
	}
	for i := range gObs {
		if !bytes.Equal(gObs[i], cObs[i]) {
			res.Outcome = ServeMismatch
			res.Err = fmt.Sprintf("durable output %d after recovery diverges from the crash-free image at launch %d", i, res.CrashLaunch)
			return res
		}
	}
	if err := r.VerifyLedger(); err != nil {
		res.Outcome = ServeMismatch
		res.Err = err.Error()
		return res
	}
	res.Outcome = ServeRecovered
	return res
}

// Render writes the report as an aligned text table.
func (r *ServeReport) Render(w io.Writer) {
	fmt.Fprintf(w, "serve crash campaign: %d cases\n", r.Total)
	fmt.Fprintf(w, "%-8s %5s %9s %6s %5s %14s %9s\n",
		"model", "cases", "recovered", "typed", "fail", "recovery-cyc", "launches")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8s %5d %9d %6d %5d %14.0f %9.1f\n",
			c.Model, c.Cases, c.Recovered, c.TypedErrors, c.Failures,
			c.MeanRecovery, c.MeanLaunches)
	}
	for i, f := range r.Failures {
		fmt.Fprintf(w, "FAILURE %d: %v -> %v (%s)\n", i+1, f.Case, f.Outcome, f.Err)
	}
}
