// Package faultsim is a deterministic, seeded fault-injection campaign
// engine for the Lazy Persistency runtime. It subjects LP-protected
// kernels to the failure shapes that actually stress the paper's
// correctness claim (§II-A, §IV): crashes mid-kernel with blocks in
// flight, arbitrary eviction subsets and orderings, torn line
// write-backs, and NVM media bit flips that probe the checksum scheme's
// detection limits (Fig. 2). Every case is reproducible from its
// (kernel, kind, seed) triple alone; a campaign sweeps seeds × fault
// kinds × kernels, asserts the post-recovery durable image is bit-exact
// against a fault-free golden run, and minimizes any failing case to its
// smallest reproducing parameters.
package faultsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

// Kind is a fault shape the engine can inject.
type Kind int

const (
	// CleanCrash drops the whole cache at the kernel boundary — the
	// baseline failure the repo could already simulate.
	CleanCrash Kind = iota
	// MidKernelCrash crashes after a seeded number of block completions,
	// leaving the grid genuinely partial (some blocks retired and
	// committed checksums, the rest never ran).
	MidKernelCrash
	// PartialEviction writes a random subset of dirty lines back in
	// arbitrary order before dropping the rest.
	PartialEviction
	// TornWriteback is PartialEviction where some write-backs persist
	// only a prefix of the line (8-byte media atomicity).
	TornWriteback
	// DataBitFlips crashes, then flips bits in a persistent output
	// region — NVM media errors the checksums must detect.
	DataBitFlips
	// StoreBitFlips crashes, then flips bits in the checksum store
	// itself — corruption of LP's own recovery metadata.
	StoreBitFlips
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CleanCrash:
		return "clean-crash"
	case MidKernelCrash:
		return "mid-kernel"
	case PartialEviction:
		return "partial-evict"
	case TornWriteback:
		return "torn-lines"
	case DataBitFlips:
		return "data-bitflips"
	case StoreBitFlips:
		return "store-bitflips"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds returns every fault kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind parses a Kind's String form.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faultsim: unknown fault kind %q", s)
}

// MarshalJSON writes the readable String form — reported cases are
// meant to be replayed by hand.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the String form or the numeric constant.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParseKind(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var i int
	if err := json.Unmarshal(b, &i); err != nil {
		return fmt.Errorf("faultsim: fault kind must be a name or number: %s", b)
	}
	if i < 0 || i >= int(numKinds) {
		return fmt.Errorf("faultsim: fault kind %d out of range", i)
	}
	*k = Kind(i)
	return nil
}

// Case identifies one reproducible fault-injection run. Kernel, Kind and
// Seed alone determine everything; AfterBlocks and Flips are normally 0
// (derived from Seed) and are pinned only by the minimizer.
type Case struct {
	Kernel string `json:"kernel"`
	Kind   Kind   `json:"kind"`
	Seed   uint64 `json:"seed"`
	// Model selects the persistency model from the pmodel registry.
	// Empty means "lp", the legacy LP path — recorded cases from before
	// the registry replay unchanged.
	Model string `json:"model,omitempty"`
	// AfterBlocks pins the mid-kernel crash point (0 = derive from Seed).
	AfterBlocks int `json:"after_blocks,omitempty"`
	// Flips pins the injected bit-flip count (0 = derive from Seed).
	Flips int `json:"flips,omitempty"`
}

// String implements fmt.Stringer.
func (c Case) String() string {
	s := fmt.Sprintf("%s/%s seed=%#x", c.Kernel, c.Kind, c.Seed)
	if c.Model != "" {
		s += " model=" + c.Model
	}
	if c.AfterBlocks > 0 {
		s += fmt.Sprintf(" after=%d", c.AfterBlocks)
	}
	if c.Flips > 0 {
		s += fmt.Sprintf(" flips=%d", c.Flips)
	}
	return s
}

// Outcome classifies a case result.
type Outcome int

const (
	// Recovered means recovery succeeded and the durable image is
	// bit-exact against the fault-free golden run.
	Recovered Outcome = iota
	// TypedError means recovery reported a typed corruption error
	// (ErrUnrecoverable / ErrStoreCorrupt) — an acceptable, honest
	// outcome for damage beyond repair.
	TypedError
	// Mismatch means recovery claimed success but the durable image
	// diverges from golden — silent corruption, a campaign failure.
	Mismatch
	// Panicked means the runtime panicked — always a campaign failure.
	Panicked
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Recovered:
		return "recovered"
	case TypedError:
		return "typed-error"
	case Mismatch:
		return "MISMATCH"
	case Panicked:
		return "PANIC"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Failed reports whether the outcome violates the campaign contract
// (recover bit-exact or return a typed error — never panic, never lie).
func (o Outcome) Failed() bool { return o == Mismatch || o == Panicked }

// MarshalJSON writes the readable String form.
func (o Outcome) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// Result reports one executed case.
type Result struct {
	Case    Case              `json:"case"`
	Outcome Outcome           `json:"outcome"`
	Tier    core.RecoveryTier `json:"tier"`
	// Rounds and FirstRoundFailed summarize the recovery effort; Cycles
	// is its simulated cost.
	Rounds           int   `json:"rounds"`
	FirstRoundFailed int   `json:"first_round_failed"`
	Cycles           int64 `json:"cycles"`
	// ModelTier names the recovery mechanism for non-LP model cases
	// ("replay+reexec", "release-reexec"); empty on the LP path, whose
	// mechanism is Tier.
	ModelTier string `json:"model_tier,omitempty"`
	// CrashedAfter is the number of blocks that retired before a
	// mid-kernel crash (0 for boundary crashes).
	CrashedAfter int `json:"crashed_after,omitempty"`
	// Injected counts bits flipped into the durable image.
	Injected int `json:"injected,omitempty"`
	// Err carries the error or panic text for non-Recovered outcomes.
	Err string `json:"err,omitempty"`
}

// Options fixes the simulated platform for a campaign.
type Options struct {
	// Scale is the workload input scale.
	Scale int
	// Mem and Dev configure the simulated hierarchy; Mem.CacheBytes
	// defaults to 256 KiB so natural eviction persists most of a run
	// (the realistic partial-loss scenario).
	Mem memsim.Config
	Dev gpusim.Config
	// LP selects the runtime design point (default: the paper's final
	// design).
	LP core.Config
	// MaxRounds bounds the selective tier of hardened recovery.
	MaxRounds int
}

// DefaultOptions returns the campaign platform defaults.
func DefaultOptions() Options {
	mem := memsim.DefaultConfig()
	mem.CacheBytes = 256 << 10
	return Options{
		Scale:     1,
		Mem:       mem,
		Dev:       gpusim.DefaultConfig(),
		LP:        core.DefaultConfig(),
		MaxRounds: 3,
	}
}

// Golden is the fault-free durable image of a workload's persistent
// outputs, the reference every case must reproduce bit-exactly.
type Golden struct {
	outputs [][]byte
	// written holds, per output region, the byte offsets the kernel
	// actually wrote (where the golden image differs from the
	// post-setup image). Media-error injection targets these: a flip in
	// a never-written byte is outside LP's protection contract (no
	// checksum ever covered it), so it would probe nothing.
	written [][]int
}

// Output returns the golden durable bytes of output region i.
func (g *Golden) Output(i int) []byte { return g.outputs[i] }

// WrittenOffsets returns the byte offsets of output region i the kernel
// actually wrote (the media-error target set).
func (g *Golden) WrittenOffsets(i int) []int { return g.written[i] }

// NumOutputs returns the number of output regions in the golden image.
func (g *Golden) NumOutputs() int { return len(g.outputs) }

// GoldenRun computes the golden image for a kernel by running it on a
// fresh fault-free system and flushing everything durable.
func GoldenRun(opt Options, kernel string) (g *Golden, err error) {
	// An unknown workload name or a setup failure surfaces as a panic in
	// the kernels package; a campaign caller gets a plain error instead.
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("faultsim: golden run of %s failed: %v", kernel, r)
		}
	}()
	mem := memsim.MustNew(opt.Mem)
	dev := gpusim.MustNew(opt.Dev, mem)
	w := kernels.New(kernel, opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	initial := make([][]byte, 0, len(w.Outputs()))
	for _, r := range w.Outputs() {
		initial = append(initial, mem.PeekNVM(r.Base, r.Size))
	}
	dev.Launch(kernel, grid, blk, w.Kernel(nil))
	if f, ok := w.(kernels.Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	mem.FlushAll()
	if err := w.Verify(); err != nil {
		return nil, fmt.Errorf("faultsim: golden run of %s is itself wrong: %w", kernel, err)
	}
	g = &Golden{}
	for i, r := range w.Outputs() {
		img := mem.PeekNVM(r.Base, r.Size)
		g.outputs = append(g.outputs, img)
		var wr []int
		for j := range img {
			if img[j] != initial[i][j] {
				wr = append(wr, j)
			}
		}
		g.written = append(g.written, wr)
	}
	return g, nil
}

// splitmix advances a SplitMix64 state — used to derive per-case seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunCase executes one fault-injection case end to end: run the kernel
// under LP, inject the fault at its seeded point, recover with hardened
// escalation, and compare the durable image against golden. It never
// panics: a runtime panic is converted into the Panicked outcome.
func RunCase(opt Options, c Case, golden *Golden) (res Result) {
	if c.Model != "" && c.Model != "lp" {
		return runModelCase(opt, c, golden)
	}
	res.Case = c
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = Panicked
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	rng := rand.New(rand.NewSource(int64(splitmix(c.Seed))))
	mem := memsim.MustNew(opt.Mem)
	dev := gpusim.MustNew(opt.Dev, mem)
	w := kernels.New(c.Kernel, opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lp := core.New(dev, opt.LP, grid, blk)
	// The durable state right after setup (inputs, zeroed outputs,
	// cleared checksum store) is the restore point of last resort.
	ck := core.CaptureCheckpoint(mem)
	kernel := w.Kernel(lp)

	switch c.Kind {
	case MidKernelCrash:
		after := c.AfterBlocks
		if after <= 0 {
			after = 1 + rng.Intn(grid.Size())
		}
		res.CrashedAfter = after
		dev.SetCrashTrigger(&gpusim.CrashTrigger{
			AfterBlocks: after,
			Fire:        func(*gpusim.Device) { mem.Crash() },
		})
		dev.Launch(c.Kernel, grid, blk, kernel)
	default:
		dev.Launch(c.Kernel, grid, blk, kernel)
		switch c.Kind {
		case CleanCrash:
			mem.Crash()
		case PartialEviction:
			mem.PartialCrash(rng, memsim.CrashProfile{EvictFrac: 0.2 + 0.6*rng.Float64()})
		case TornWriteback:
			mem.PartialCrash(rng, memsim.CrashProfile{
				EvictFrac: 0.3 + 0.5*rng.Float64(),
				TornFrac:  0.2 + 0.5*rng.Float64(),
			})
		case DataBitFlips:
			mem.Crash()
			n := c.Flips
			if n <= 0 {
				n = 1 + rng.Intn(4)
			}
			outs := w.Outputs()
			ri := rng.Intn(len(outs))
			r := outs[ri]
			if wr := golden.written[ri]; len(wr) > 0 {
				// Flip bits only within bytes the kernel actually wrote:
				// those are the ones the checksums claim to cover.
				for i := 0; i < n; i++ {
					off := uint64(wr[rng.Intn(len(wr))])
					mem.InjectBitFlipsRange(rng, r.Base+off, 1, 1)
				}
				res.Injected = n
			} else {
				res.Injected = len(mem.InjectBitFlipsRange(rng, r.Base, r.Size, n))
			}
		case StoreBitFlips:
			mem.Crash()
			n := c.Flips
			if n <= 0 {
				n = 1 + rng.Intn(4)
			}
			tabs := lp.Store().TableRegions()
			r := tabs[rng.Intn(len(tabs))]
			res.Injected = len(mem.InjectBitFlipsRange(rng, r.Base, r.Size, n))
		default:
			res.Outcome = TypedError
			res.Err = fmt.Sprintf("faultsim: unknown fault kind %v", c.Kind)
			return res
		}
	}

	rep, err := lp.RecoverHardened(kernel, w.Recompute(), core.RecoverOpts{
		MaxRounds:  opt.MaxRounds,
		Checkpoint: ck,
	})
	res.Tier = rep.Tier
	res.Rounds = rep.Rounds
	res.Cycles = rep.TotalCycles()
	if len(rep.FailedPerRound) > 0 {
		res.FirstRoundFailed = rep.FailedPerRound[0]
	}
	if err != nil {
		res.Err = err.Error()
		if errors.Is(err, core.ErrUnrecoverable) || errors.Is(err, core.ErrStoreCorrupt) {
			res.Outcome = TypedError
		} else {
			res.Outcome = Mismatch
		}
		return res
	}

	if f, ok := w.(kernels.Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		if !bytes.Equal(mem.PeekNVM(r.Base, r.Size), golden.outputs[i]) {
			res.Outcome = Mismatch
			res.Err = fmt.Sprintf("durable image of %s diverges from fault-free golden", r.Name)
			return res
		}
	}
	res.Outcome = Recovered
	return res
}
