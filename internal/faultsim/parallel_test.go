package faultsim

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestCampaignParallelMatchesSerial runs the same seeded campaign with
// Parallel=1 and Parallel=8 and requires identical structured reports:
// case seeds derive from sweep position, every case owns a fresh
// simulated system, and aggregation happens in sweep order, so the
// scheduling of cases must never leak into a reported number.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *Report {
		c := DefaultCampaign(2)
		c.Kernels = []string{"tmm", "megakv-insert"}
		c.Parallel = parallel
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (parallel=%d): %v", parallel, err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestCampaignParallelProgress checks the Progress contract at width > 1:
// one observation per case, with done counting up to total — completion
// order is allowed to vary, the counts are not.
func TestCampaignParallelProgress(t *testing.T) {
	c := DefaultCampaign(1)
	c.Kernels = []string{"tmm"}
	c.Parallel = 4
	var calls, lastDone, total atomic.Int64
	c.Progress = func(done, tot int, r Result) {
		calls.Add(1)
		lastDone.Store(int64(done))
		total.Store(int64(tot))
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(calls.Load()); got != rep.Total {
		t.Errorf("Progress called %d times, want %d", got, rep.Total)
	}
	if got := int(lastDone.Load()); got != rep.Total {
		t.Errorf("final done=%d, want %d", got, rep.Total)
	}
	if got := int(total.Load()); got != rep.Total {
		t.Errorf("Progress total=%d, want %d", got, rep.Total)
	}
}
