package faultsim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"gpulp/internal/pmodel"
)

// TestServeCampaignAcceptance pins the PR's acceptance criterion: a
// seeded mid-serving crash on EVERY case — across every registered
// persistency model — must be absorbed in-loop, the durable MEGA-KV
// image must match the crash-free run bit for bit at the crashed
// launch, and the admission ledger must hold to the end of the run,
// with zero panics.
func TestServeCampaignAcceptance(t *testing.T) {
	c := DefaultServeCampaign(2)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("serving contract violated: %+v", rep.Failures)
	}
	if want := len(pmodel.Names()) * 2; rep.Total != want {
		t.Fatalf("campaign shape: total=%d, want %d", rep.Total, want)
	}
	for _, cell := range rep.Cells {
		if cell.Recovered != cell.Cases {
			t.Fatalf("model %s: %d of %d cases recovered (typed=%d failed=%d)",
				cell.Model, cell.Recovered, cell.Cases, cell.TypedErrors, cell.Failures)
		}
		// Every recovered case already proved Recoveries == 1, so the
		// crash fired; recovery itself may be free (an sbrp buffer that
		// drained at the epoch boundary has nothing to replay).
		if cell.MeanLaunches < 2 {
			t.Fatalf("model %s: %v mean launches — no interior crash point existed",
				cell.Model, cell.MeanLaunches)
		}
	}
}

// TestServeCampaignCaseShape: the seed-derived crash point is interior
// to the launch schedule and a case reproduces exactly from its
// (model, seed) tuple.
func TestServeCampaignCaseShape(t *testing.T) {
	c := DefaultServeCampaign(1)
	cs := ServeCase{Model: "lp", Seed: 0xabcdef}
	r1 := c.RunServeCase(cs)
	if r1.Outcome != ServeRecovered {
		t.Fatalf("case did not recover: %+v", r1)
	}
	if r1.CrashLaunch < 1 || r1.CrashLaunch >= r1.Launches {
		t.Fatalf("crash launch %d not interior to %d launches", r1.CrashLaunch, r1.Launches)
	}
	if r1.Recoveries != 1 {
		t.Fatalf("case recorded %d recoveries, want 1", r1.Recoveries)
	}
	r2 := c.RunServeCase(cs)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same case diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestServeCampaignParallelMatchesSerial: case seeds derive from sweep
// position and aggregation is in sweep order, so Parallel=1 and
// Parallel=8 produce identical structured reports.
func TestServeCampaignParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) *ServeReport {
		c := DefaultServeCampaign(2)
		c.Models = []string{"lp", "ep"}
		c.Parallel = parallel
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (parallel=%d): %v", parallel, err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serve campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestServeCampaignRejectsBareModel: "none" cannot host a crash case
// and must be a configuration error, not a silent no-op sweep.
func TestServeCampaignRejectsBareModel(t *testing.T) {
	c := DefaultServeCampaign(1)
	c.Models = []string{"none"}
	if _, err := c.Run(); err == nil {
		t.Fatal("bare model accepted into the crash campaign")
	}
}

// TestServeReportRoundTrip: the report marshals with readable outcome
// names and renders without panicking.
func TestServeReportRoundTrip(t *testing.T) {
	c := DefaultServeCampaign(1)
	c.Models = []string{"lp"}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"lp"`, `"recovered"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Fatalf("report JSON missing %s:\n%s", want, js)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("serve crash campaign")) {
		t.Fatalf("render output unexpected:\n%s", buf.String())
	}
}
