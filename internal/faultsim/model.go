package faultsim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// model.go runs fault cases through the pmodel registry, so campaigns
// sweep every persistency model — not just LP — under the same seeded
// faults. A case's Model field selects the runner: "" and "lp" take the
// legacy LP path in RunCase (bit-identical to pre-registry reports);
// everything else lands here.

// ModelApplicable reports whether kind is a meaningful, decidable probe
// for kernel under the named persistency model. For LP it defers to
// Applicable. The flag models (ep, sbrp, strict) have no checksums, so
// media bit flips are undetectable by design and excluded; their
// mid-kernel recovery re-executes whole blocks, which is only
// byte-idempotent on the dense kernels.
func ModelApplicable(model, kernel string, kind Kind) bool {
	if model == "" || model == "lp" {
		return Applicable(kernel, kind)
	}
	switch kind {
	case DataBitFlips, StoreBitFlips:
		return false
	case MidKernelCrash:
		return denseFlipKernels[kernel]
	}
	return true
}

// runModelCase is RunCase for registry models other than LP: run the
// model's instrumented kernel, inject the fault, then hold the model to
// its whole contract — PredictDamage from the raw durable image must
// equal what Recover repairs, and the recovered image must match the
// fault-free golden bit for bit.
func runModelCase(opt Options, c Case, golden *Golden) (res Result) {
	res.Case = c
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = Panicked
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	spec, ok := pmodel.Lookup(c.Model)
	if !ok {
		res.Outcome = TypedError
		res.Err = fmt.Sprintf("faultsim: unknown persistency model %q", c.Model)
		return res
	}
	if !ModelApplicable(c.Model, c.Kernel, c.Kind) {
		res.Outcome = TypedError
		res.Err = fmt.Sprintf("faultsim: fault kind %v is not applicable to model %s on %s", c.Kind, c.Model, c.Kernel)
		return res
	}

	rng := rand.New(rand.NewSource(int64(splitmix(c.Seed))))
	mem := memsim.MustNew(opt.Mem)
	dev := gpusim.MustNew(opt.Dev, mem)
	w := kernels.New(c.Kernel, opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lpCfg := opt.LP
	m := spec.New(dev, w, pmodel.Options{
		LP:         &lpCfg,
		MaxRounds:  opt.MaxRounds,
		Checkpoint: true,
	})
	kernel := m.Kernel()

	switch c.Kind {
	case MidKernelCrash:
		after := c.AfterBlocks
		if after <= 0 {
			after = 1 + rng.Intn(grid.Size())
		}
		res.CrashedAfter = after
		dev.SetCrashTrigger(&gpusim.CrashTrigger{
			AfterBlocks: after,
			Fire:        func(*gpusim.Device) { mem.Crash() },
		})
		dev.Launch(c.Kernel, grid, blk, kernel)
	case CleanCrash, PartialEviction, TornWriteback:
		dev.Launch(c.Kernel, grid, blk, kernel)
		switch c.Kind {
		case CleanCrash:
			mem.Crash()
		case PartialEviction:
			mem.PartialCrash(rng, memsim.CrashProfile{EvictFrac: 0.2 + 0.6*rng.Float64()})
		case TornWriteback:
			mem.PartialCrash(rng, memsim.CrashProfile{
				EvictFrac: 0.3 + 0.5*rng.Float64(),
				TornFrac:  0.2 + 0.5*rng.Float64(),
			})
		}
	default:
		res.Outcome = TypedError
		res.Err = fmt.Sprintf("faultsim: unknown fault kind %v", c.Kind)
		return res
	}

	// The durable-state contract: the damage the model predicts from the
	// raw NVM image alone must be exactly what its recovery repairs.
	predicted := m.PredictDamage(mem.SnapshotNVM())
	rep, rerr := m.Recover()
	res.ModelTier = rep.Tier
	res.Cycles = rep.Cycles
	if !equalInts(predicted, rep.Damaged) {
		res.Outcome = Mismatch
		res.Err = fmt.Sprintf("model %s predicted damage %v but recovery repaired %v", c.Model, head(predicted), head(rep.Damaged))
		return res
	}
	if rerr != nil {
		res.Err = rerr.Error()
		if errors.Is(rerr, core.ErrUnrecoverable) || errors.Is(rerr, core.ErrStoreCorrupt) {
			res.Outcome = TypedError
		} else {
			res.Outcome = Mismatch
		}
		return res
	}

	if f, ok := w.(kernels.Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		if !bytes.Equal(mem.PeekNVM(r.Base, r.Size), golden.outputs[i]) {
			res.Outcome = Mismatch
			res.Err = fmt.Sprintf("durable image of %s diverges from fault-free golden under model %s", r.Name, c.Model)
			return res
		}
	}
	res.Outcome = Recovered
	return res
}

// equalInts compares two int slices elementwise.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// head renders at most eight elements of a damage set.
func head(xs []int) string {
	if len(xs) <= 8 {
		return fmt.Sprint(xs)
	}
	return fmt.Sprintf("%v… (%d total)", xs[:8], len(xs))
}
