package faultsim

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"gpulp/internal/parwork"
)

// denseFlipKernels lists the workloads whose output regions are dense
// arrays of checksummed 32-bit values: every written byte is covered by
// the block checksums and block re-execution is byte-idempotent, so a
// media bit flip in the data image MUST be detected and repaired
// bit-exactly. Hash-structured workloads (MEGA-KV) fold only a 32-bit
// digest per operation and relocate repaired keys, so data flips there
// would probe the workload's instrumentation gap rather than LP itself.
var denseFlipKernels = map[string]bool{
	"tmm": true, "spmv": true, "tpacf": true, "cutcp": true,
	"mri-q": true, "mri-gridding": true, "sad": true,
}

// Applicable reports whether kind is a meaningful, decidable probe for
// kernel (see denseFlipKernels for the one exclusion).
func Applicable(kernel string, kind Kind) bool {
	if kind != DataBitFlips {
		return true
	}
	return denseFlipKernels[kernel]
}

// Campaign sweeps seeded fault cases over kernels × fault kinds.
type Campaign struct {
	Opt Options
	// Kernels are the workloads to stress (default: tmm, spmv,
	// megakv-insert — the paper's §VII-4 application plus two dense
	// Table I kernels).
	Kernels []string
	// Kinds are the fault shapes to inject (default: all).
	Kinds []Kind
	// Models are the persistency models to sweep (pmodel registry
	// names). Empty means the legacy LP-only campaign, whose reports are
	// byte-identical to pre-registry runs. Each model sees the same
	// seeded fault at every sweep position, so model columns are
	// directly comparable.
	Models []string
	// Seeds is the number of seeded cases per applicable
	// (kernel, kind) pair.
	Seeds int
	// BaseSeed perturbs every derived case seed; a report is
	// reproducible from (BaseSeed, Kernels, Kinds, Seeds) or from any
	// single case's recorded seed.
	BaseSeed uint64
	// Minimize shrinks every failing case to its smallest reproducing
	// parameters before reporting.
	Minimize bool
	// Progress, when non-nil, observes each completed case. With
	// Parallel > 1 cases complete out of order, so the observation
	// order is nondeterministic; the Report is not.
	Progress func(done, total int, r Result)
	// Parallel is the number of host goroutines running cases
	// concurrently. Every case owns a fresh simulated system and is
	// seeded from its sweep position alone, and results are aggregated
	// in sweep order — any value (including 1, the default) produces an
	// identical Report.
	Parallel int
}

// DefaultCampaign returns the standard regression campaign: with
// seeds = 12 it is 204 cases (3 kernels × 6 kinds, minus the one
// inapplicable pair, × 12 seeds).
func DefaultCampaign(seeds int) *Campaign {
	if seeds <= 0 {
		seeds = 12
	}
	return &Campaign{
		Opt:      DefaultOptions(),
		Kernels:  []string{"tmm", "spmv", "megakv-insert"},
		Kinds:    AllKinds(),
		Seeds:    seeds,
		BaseSeed: 0x1a2b3c4d,
		Minimize: true,
	}
}

// KindSummary aggregates one (model, kernel, kind) cell of the sweep.
// Model is empty on legacy LP-only campaigns.
type KindSummary struct {
	Model       string `json:"model,omitempty"`
	Kernel      string `json:"kernel"`
	Kind        string `json:"kind"`
	Cases       int    `json:"cases"`
	Recovered   int    `json:"recovered"`
	TypedErrors int    `json:"typed_errors"`
	Mismatches  int    `json:"mismatches"`
	Panics      int    `json:"panics"`
	// MaxTier is the highest recovery tier any case needed.
	MaxTier string `json:"max_tier"`
	// MeanRecoveryCycles is the average simulated recovery cost.
	MeanRecoveryCycles int64 `json:"mean_recovery_cycles"`
}

// Report is the structured result of a campaign run.
type Report struct {
	Total       int           `json:"total"`
	Recovered   int           `json:"recovered"`
	TypedErrors int           `json:"typed_errors"`
	Mismatches  int           `json:"mismatches"`
	Panics      int           `json:"panics"`
	Summaries   []KindSummary `json:"summaries"`
	// Failures lists every case that violated the campaign contract
	// (mismatch or panic), reproducible from its recorded Case alone.
	Failures []Result `json:"failures,omitempty"`
	// Minimized pairs each failure with its shrunk reproduction.
	Minimized []Result `json:"minimized,omitempty"`
}

// Failed reports whether any case violated the campaign contract.
func (r *Report) Failed() bool { return r.Mismatches > 0 || r.Panics > 0 }

// Run executes the campaign. Golden images are computed once per kernel;
// every case runs on its own fresh simulated system.
func (c *Campaign) Run() (*Report, error) {
	opt := c.Opt
	if opt.Scale < 1 {
		opt.Scale = 1
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 3
	}
	kernels := c.Kernels
	if len(kernels) == 0 {
		kernels = []string{"tmm", "spmv", "megakv-insert"}
	}
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	seeds := c.Seeds
	if seeds <= 0 {
		seeds = 12
	}

	// An empty model list is the legacy LP-only campaign; its cases carry
	// no model label so recorded reports stay byte-identical.
	models := c.Models
	if len(models) == 0 {
		models = []string{""}
	}

	goldens := make(map[string]*Golden, len(kernels))
	total := 0
	for _, name := range kernels {
		g, err := GoldenRun(opt, name)
		if err != nil {
			return nil, err
		}
		goldens[name] = g
		for _, kind := range kinds {
			for _, model := range models {
				if ModelApplicable(model, name, kind) {
					total += seeds
				}
			}
		}
	}

	// Flatten the sweep into an ordered case list. Seeds derive from the
	// (kernel, kind, seed) sweep position exactly as the serial loops
	// did — deliberately not from the model, so every model faces the
	// same fault at the same position and the cells compare directly.
	type caseSpec struct {
		kernel string
		c      Case
	}
	var specs []caseSpec
	for ki, name := range kernels {
		for kj, kind := range kinds {
			for s := 0; s < seeds; s++ {
				seed := splitmix(c.BaseSeed ^ splitmix(uint64(ki)<<40|uint64(kj)<<20|uint64(s)))
				for _, model := range models {
					if !ModelApplicable(model, name, kind) {
						continue
					}
					specs = append(specs, caseSpec{kernel: name, c: Case{Kernel: name, Kind: kind, Seed: seed, Model: model}})
				}
			}
		}
	}

	// Run the cases — concurrently when Parallel > 1; each owns a fresh
	// simulated system and only reads its golden image. Progress fires
	// as cases complete (completion order is scheduling-dependent).
	results := make([]Result, len(specs))
	var progressMu sync.Mutex
	done := 0
	parwork.Do(len(specs), c.Parallel, func(i int) {
		res := RunCase(opt, specs[i].c, goldens[specs[i].kernel])
		results[i] = res
		if c.Progress != nil {
			progressMu.Lock()
			done++
			c.Progress(done, total, res)
			progressMu.Unlock()
		}
	})

	// Aggregate in sweep order, reproducing the serial report exactly.
	rep := &Report{Total: total}
	cells := map[string]*KindSummary{}
	cellCycles := map[string]int64{}
	for i, res := range results {
		key := specs[i].c.Model + "/" + specs[i].kernel + "/" + specs[i].c.Kind.String()
		cell, ok := cells[key]
		if !ok {
			cell = &KindSummary{Model: specs[i].c.Model, Kernel: specs[i].kernel, Kind: specs[i].c.Kind.String(), MaxTier: "selective"}
			cells[key] = cell
		}
		cell.Cases++
		cellCycles[key] += res.Cycles
		switch res.Outcome {
		case Recovered:
			rep.Recovered++
			cell.Recovered++
		case TypedError:
			rep.TypedErrors++
			cell.TypedErrors++
		case Mismatch:
			rep.Mismatches++
			cell.Mismatches++
		case Panicked:
			rep.Panics++
			cell.Panics++
		}
		if res.ModelTier != "" {
			// Non-LP models have one fixed mechanism, not an escalation
			// ladder; the cell reports it directly.
			cell.MaxTier = res.ModelTier
		} else if tierRank(res.Tier.String()) > tierRank(cell.MaxTier) {
			cell.MaxTier = res.Tier.String()
		}
		if res.Outcome.Failed() {
			rep.Failures = append(rep.Failures, res)
			if c.Minimize {
				rep.Minimized = append(rep.Minimized, MinimizeCase(opt, res, goldens[specs[i].kernel]))
			}
		}
	}
	for key, cell := range cells {
		if cell.Cases > 0 {
			cell.MeanRecoveryCycles = cellCycles[key] / int64(cell.Cases)
		}
	}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Summaries = append(rep.Summaries, *cells[k])
	}
	return rep, nil
}

// tierRank orders tiers by escalation level.
func tierRank(s string) int {
	switch s {
	case "selective":
		return 0
	case "full-grid":
		return 1
	case "checkpoint":
		return 2
	}
	return -1
}

// MinimizeCase shrinks a failing case to the smallest reproducing
// parameters by greedy descent over the fault magnitude (crash point or
// flip count), re-running each candidate. The returned Result is the
// smallest case that still fails — or the original when no smaller one
// does. Every candidate is fully seeded, so the minimized case
// reproduces from its Case alone.
func MinimizeCase(opt Options, failing Result, golden *Golden) Result {
	best := failing
	switch failing.Case.Kind {
	case MidKernelCrash:
		// Try to reproduce at ever-earlier crash points.
		after := failing.CrashedAfter
		for step := after / 2; step >= 1; step /= 2 {
			cand := best.Case
			cand.AfterBlocks = bestAfter(best) - step
			if cand.AfterBlocks < 1 {
				continue
			}
			if r := RunCase(opt, cand, golden); r.Outcome.Failed() {
				best = r
			}
		}
	case DataBitFlips, StoreBitFlips:
		// A single flip is the minimal media error.
		for flips := 1; flips < injectedFlips(best); flips++ {
			cand := best.Case
			cand.Flips = flips
			if r := RunCase(opt, cand, golden); r.Outcome.Failed() {
				best = r
				break
			}
		}
	}
	return best
}

func bestAfter(r Result) int {
	if r.Case.AfterBlocks > 0 {
		return r.Case.AfterBlocks
	}
	return r.CrashedAfter
}

func injectedFlips(r Result) int {
	if r.Case.Flips > 0 {
		return r.Case.Flips
	}
	return r.Injected
}

// Render writes the report as an aligned text table plus failure
// reproduction lines.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fault-injection campaign: %d cases — %d recovered, %d typed errors, %d mismatches, %d panics\n",
		r.Total, r.Recovered, r.TypedErrors, r.Mismatches, r.Panics)
	// Legacy LP-only reports keep their exact column set; model sweeps
	// lead with a model column.
	hasModel := false
	for _, s := range r.Summaries {
		if s.Model != "" {
			hasModel = true
			break
		}
	}
	header := []string{"kernel", "fault", "cases", "recovered", "typed-err", "mismatch", "panic", "max tier", "mean rec cycles"}
	if hasModel {
		header = append([]string{"model"}, header...)
	}
	rows := [][]string{header}
	for _, s := range r.Summaries {
		row := []string{
			s.Kernel, s.Kind, fmt.Sprint(s.Cases), fmt.Sprint(s.Recovered),
			fmt.Sprint(s.TypedErrors), fmt.Sprint(s.Mismatches), fmt.Sprint(s.Panics),
			s.MaxTier, fmt.Sprint(s.MeanRecoveryCycles),
		}
		if hasModel {
			model := s.Model
			if model == "" {
				model = "lp"
			}
			row = append([]string{model}, row...)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	for i, f := range r.Failures {
		fmt.Fprintf(w, "FAILURE %d: %v -> %v (%s)\n", i+1, f.Case, f.Outcome, f.Err)
		if i < len(r.Minimized) {
			m := r.Minimized[i]
			fmt.Fprintf(w, "  minimized: %v -> %v\n", m.Case, m.Outcome)
		}
	}
}
