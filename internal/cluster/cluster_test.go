package cluster

import (
	"encoding/json"
	"errors"
	"testing"

	"gpulp/internal/core"
)

// testConfig is a small, fast cluster: 3 devices, 6 jobs of 2 blocks.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Devices = 3
	cfg.Jobs = 6
	cfg.BlocksPerJob = 2
	cfg.BlockThreads = 32
	cfg.Seed = 0xdead_beef
	return cfg
}

func TestClusterCleanRun(t *testing.T) {
	cl := MustNew(testConfig())
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	if rep.Completed != 6 || rep.Coverage != 1 {
		t.Fatalf("clean run completed %d/%d (coverage %v)", rep.Completed, rep.Jobs, rep.Coverage)
	}
	if rep.Failovers != 0 || len(rep.LostJobs) != 0 {
		t.Fatalf("clean run reported failovers=%d lost=%v", rep.Failovers, rep.LostJobs)
	}
	for _, d := range rep.PerDevice {
		if d.State != Alive {
			t.Fatalf("device %d ended %v in a clean run", d.ID, d.State)
		}
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit: %v", err)
	}
}

// TestClusterFailoverEachKind is the acceptance-criterion core: for every
// failure kind, killing a device mid-launch must recover a bit-exact
// durable image via cross-device re-execution, with zero panics.
func TestClusterFailoverEachKind(t *testing.T) {
	for _, kind := range AllFailureKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Failures = []FailurePlan{{Job: 2, Kind: kind, AfterBlocks: 1}}
			cl := MustNew(cfg)
			rep, err := cl.Run()
			if err != nil {
				t.Fatalf("run errored: %v", err)
			}
			if rep.Completed != cfg.Jobs {
				t.Fatalf("completed %d/%d, lost %v", rep.Completed, cfg.Jobs, rep.LostJobs)
			}
			if rep.FailedOver != 1 || rep.Failovers < 1 {
				t.Fatalf("expected exactly one failed-over job (got FailedOver=%d Failovers=%d)",
					rep.FailedOver, rep.Failovers)
			}
			if rep.ReexecutedBlocks < 1 {
				t.Fatalf("mid-launch kill after 1 of 2 blocks must re-execute blocks (got %d)",
					rep.ReexecutedBlocks)
			}
			wantTimeouts := 0
			if kind == Hang || kind == TransientStall {
				wantTimeouts = 1
			}
			if rep.HeartbeatTimeouts != wantTimeouts {
				t.Fatalf("kind %v: heartbeat timeouts = %d, want %d", kind, rep.HeartbeatTimeouts, wantTimeouts)
			}
			if err := cl.Verify(); err != nil {
				t.Fatalf("pool image not bit-exact after failover: %v", err)
			}
			if got := len(cl.Pool().Fences()); got != 0 {
				t.Fatalf("recovered run left %d shards fenced", got)
			}
		})
	}
}

// TestClusterTransientStallRejoins checks that a stalled device comes
// back: with enough jobs behind the stall, round-robin routes work onto
// the rejoined device again and the run records the rejoin.
func TestClusterTransientStallRejoins(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = 9
	cfg.Failures = []FailurePlan{{Job: 1, Kind: TransientStall, AfterBlocks: 1, RejoinCycles: 10}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if rep.Rejoins < 1 {
		t.Fatalf("transient stall never rejoined (rejoins=%d)", rep.Rejoins)
	}
	for _, d := range rep.PerDevice {
		if d.State == Dead {
			t.Fatalf("transient stall must not leave device %d dead", d.ID)
		}
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit: %v", err)
	}
}

// TestClusterFailoverRetryBackoff exercises the cascade path: the first
// failover attempt dies too, so recovery must retry on the next survivor
// with deterministic exponential backoff.
func TestClusterFailoverRetryBackoff(t *testing.T) {
	cfg := testConfig()
	cfg.Failures = []FailurePlan{{Job: 0, Kind: FailStop, AfterBlocks: 1}}
	cfg.FailRecoveryAttempts = 1
	cfg.BackoffBase = 512
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if rep.Failovers < 2 {
		t.Fatalf("cascaded failure needs >= 2 failover attempts (got %d)", rep.Failovers)
	}
	if rep.FailedOver != 1 {
		t.Fatalf("job 0 should ultimately fail over once (got %d)", rep.FailedOver)
	}
	if rep.BackoffCycles < 512 {
		t.Fatalf("retry must charge exponential backoff (got %d cycles)", rep.BackoffCycles)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit: %v", err)
	}
}

// TestClusterDegradedQuorum drives the graceful-degradation contract: a
// 2-device cluster with MinAlive=2 cannot survive a loss, so the run must
// return the typed DegradedClusterError, keep completed shards valid, and
// leave lost shards fenced in the pool.
func TestClusterDegradedQuorum(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 2
	cfg.MinAlive = 2
	cfg.Failures = []FailurePlan{{Job: 2, Kind: FailStop, AfterBlocks: 1}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err == nil {
		t.Fatal("quorum loss must degrade, got nil error")
	}
	var deg *DegradedClusterError
	if !errors.As(err, &deg) {
		t.Fatalf("error is %T, want *DegradedClusterError", err)
	}
	if !errors.Is(err, core.ErrDegraded) {
		t.Fatal("DegradedClusterError must wrap core.ErrDegraded")
	}
	if !core.IsTypedRecoveryError(err) {
		t.Fatal("degraded cluster outcome must count as a typed recovery error")
	}
	if len(deg.LostJobs) == 0 || deg.Coverage >= 1 {
		t.Fatalf("degraded error carries no loss: %+v", deg)
	}
	if deg.LostBlocks != len(deg.LostJobs)*cfg.BlocksPerJob {
		t.Fatalf("LostBlocks %d inconsistent with %d lost jobs", deg.LostBlocks, len(deg.LostJobs))
	}
	if len(deg.DeadDevices) != 1 {
		t.Fatalf("exactly one device died, error says %v", deg.DeadDevices)
	}
	if rep.Completed == 0 {
		t.Fatal("jobs dispatched before the loss must stay completed")
	}
	// Completed shards still audit bit-exactly; lost shards stay fenced.
	if err := cl.Verify(); err != nil {
		t.Fatalf("completed shards must stay valid in degraded mode: %v", err)
	}
	fences := cl.Pool().Fences()
	if len(fences) != len(deg.LostJobs) {
		t.Fatalf("%d lost jobs but %d fenced shards", len(deg.LostJobs), len(fences))
	}
	// Writing into a fenced (lost) shard must be refused.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("HostWrite into a fenced lost shard must panic")
			}
		}()
		cl.Pool().HostWrite(fences[0].Base, []byte{1, 2, 3, 4})
	}()
}

// TestClusterSingleDeviceLoss: with one device there is no survivor, so a
// fail-stop mid-run degrades rather than panicking or lying.
func TestClusterSingleDeviceLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 1
	cfg.Failures = []FailurePlan{{Job: 1, Kind: FailStop, AfterBlocks: 1}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	var deg *DegradedClusterError
	if !errors.As(err, &deg) {
		t.Fatalf("single-device loss must degrade, got %v", err)
	}
	if rep.Completed != 1 {
		t.Fatalf("only job 0 can complete (got %d)", rep.Completed)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("job 0's shard must stay valid: %v", err)
	}
}

// TestClusterRouters pins each built-in policy's placement on a clean
// 3-device run.
func TestClusterRouters(t *testing.T) {
	t.Run("round-robin", func(t *testing.T) {
		cfg := testConfig()
		cfg.Router = RoundRobin
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range rep.PerDevice {
			if d.Jobs != 2 {
				t.Fatalf("round-robin over 3 devices × 6 jobs must give 2 each (device %d got %d)", d.ID, d.Jobs)
			}
		}
	})
	t.Run("least-loaded", func(t *testing.T) {
		cfg := testConfig()
		cfg.Router = LeastLoaded
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range rep.PerDevice {
			total += d.Jobs
			if d.Jobs == 0 {
				t.Fatalf("least-loaded must not starve device %d", d.ID)
			}
		}
		if total != cfg.Jobs {
			t.Fatalf("dispatched %d of %d jobs", total, cfg.Jobs)
		}
	})
	t.Run("region-affinity", func(t *testing.T) {
		cfg := testConfig()
		cfg.Router = RegionAffinity
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		// 6 jobs over 3 devices: owner = job % 3, so 2 jobs per device.
		for _, d := range rep.PerDevice {
			if d.Jobs != 2 {
				t.Fatalf("affinity placement: device %d ran %d jobs, want 2", d.ID, d.Jobs)
			}
		}
	})
	t.Run("affinity-falls-over", func(t *testing.T) {
		cfg := testConfig()
		cfg.Router = RegionAffinity
		// Job 1's owner (device 1) dies; jobs 4 (owner 1) must land elsewhere.
		cfg.Failures = []FailurePlan{{Job: 1, Kind: FailStop, AfterBlocks: 1}}
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != cfg.Jobs {
			t.Fatalf("affinity failover completed %d/%d", rep.Completed, cfg.Jobs)
		}
		if rep.PerDevice[1].State != Dead {
			t.Fatalf("device 1 should be dead, is %v", rep.PerDevice[1].State)
		}
		if err := cl.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestClusterDeterministicReport: the same Config yields byte-identical
// reports and pool images across independent runs.
func TestClusterDeterministicReport(t *testing.T) {
	run := func() ([]byte, []byte) {
		cfg := testConfig()
		cfg.Failures = []FailurePlan{
			{Job: 1, Kind: Hang, AfterBlocks: 1},
			{Job: 4, Kind: FailStop, AfterBlocks: 1},
		}
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatalf("run errored: %v", err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return js, cl.Pool().NVMImage()
	}
	r1, img1 := run()
	r2, img2 := run()
	if string(r1) != string(r2) {
		t.Fatalf("reports diverge:\n%s\n%s", r1, r2)
	}
	if string(img1) != string(img2) {
		t.Fatal("pool images diverge across identical runs")
	}
}

func TestClusterConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero devices", func(c *Config) { c.Devices = 0 }},
		{"quorum above devices", func(c *Config) { c.MinAlive = 99 }},
		{"unknown router", func(c *Config) { c.Router = RouterKind(42) }},
		{"shard misaligned to fusion", func(c *Config) { c.LP.Fusion = 4; c.BlocksPerJob = 2 }},
		{"failure job out of range", func(c *Config) {
			c.Failures = []FailurePlan{{Job: 99, Kind: FailStop}}
		}},
		{"duplicate failure plan", func(c *Config) {
			c.Failures = []FailurePlan{{Job: 1, Kind: FailStop}, {Job: 1, Kind: Hang}}
		}},
		{"unknown failure kind", func(c *Config) {
			c.Failures = []FailurePlan{{Job: 1, Kind: FailureKind(9)}}
		}},
		{"failure past job end", func(c *Config) {
			c.Failures = []FailurePlan{{Job: 1, Kind: FailStop, AfterBlocks: 3}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("%s: New accepted an invalid config", tc.name)
			}
		})
	}
}

func TestParseKinds(t *testing.T) {
	for _, k := range AllFailureKinds() {
		got, err := ParseFailureKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseFailureKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFailureKind("meteor-strike"); err == nil {
		t.Fatal("unknown failure kind must not parse")
	}
	for _, r := range AllRouters() {
		got, err := ParseRouterKind(r.String())
		if err != nil || got != r {
			t.Fatalf("ParseRouterKind(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRouterKind("random"); err == nil {
		t.Fatal("unknown router kind must not parse")
	}
	var k FailureKind
	if err := json.Unmarshal([]byte(`"hang"`), &k); err != nil || k != Hang {
		t.Fatalf("failure kind JSON round-trip: %v, %v", k, err)
	}
	var r RouterKind
	if err := json.Unmarshal([]byte(`"least-loaded"`), &r); err != nil || r != LeastLoaded {
		t.Fatalf("router kind JSON round-trip: %v, %v", r, err)
	}
}
