// Package cluster simulates a fault-tolerant multi-GPU cluster over the
// repo's single-device stack: N gpusim devices advance under one shared
// simulated clock, a pluggable router dispatches kernel launches (jobs)
// across them, and every completed job's durable bytes are published
// into a shared durable memsim image (the pool) — each job is a shard of
// the cluster's persistent state.
//
// The robustness core is the device-failure protocol. A seeded injector
// arms whole-device failures mid-launch: fail-stop (instant death, cache
// lost, NVM harvestable), hang (silence detected when the per-device
// heartbeat stream stays quiet past a timeout, then an external abort
// reclaims a crash-consistent image), and transient stall (hang followed
// by a rejoin). Failover fences the lost shard's range in the pool,
// harvests the dead device's durable bytes — the partially-persisted
// data slice plus its Lazy Persistency checksum table, which encodes
// presence in-band and therefore survives a raw copy — imports them into
// a surviving device at identical addresses, and drives the existing
// checksum machinery (core.RecoverBlocks) to validate and re-execute
// exactly the in-flight blocks there, with bounded retries and
// deterministic exponential backoff across survivors. When the failover
// budget or the MinAlive quorum is exhausted, the run degrades
// gracefully to a typed DegradedClusterError: completed shards stay
// valid and published, lost shards stay fenced.
//
// Everything is deterministic: the same Config produces a bit-identical
// report and pool image at any gpusim Workers value and any host
// GOMAXPROCS — the repo's determinism contract extends to whole-cluster
// failover.
package cluster

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Config fixes one cluster run.
type Config struct {
	// Devices is the number of simulated GPUs (>= 1).
	Devices int
	// Jobs is the number of kernel launches to dispatch (default 8).
	// Job j computes the shard of blocks [j*BlocksPerJob, (j+1)*BlocksPerJob).
	Jobs int
	// BlocksPerJob and BlockThreads fix the per-job geometry
	// (default 4 × 32).
	BlocksPerJob int
	// BlockThreads is the threads per block.
	BlockThreads int
	// Router selects the dispatch policy (default RoundRobin);
	// CustomRouter overrides it with a caller-provided implementation.
	Router       RouterKind
	CustomRouter Router
	// Seed salts the fill pattern and derived values.
	Seed uint64
	// Mem and Dev configure every device's private hierarchy (and the
	// pool); zero values take the platform defaults.
	Mem memsim.Config
	Dev gpusim.Config
	// LP selects the persistency design point. BlocksPerJob must be a
	// multiple of the fusion factor so shard boundaries align to regions.
	LP core.Config
	// HeartbeatTimeout is the silence (in simulated cycles past the last
	// heartbeat) after which a hung device is declared lost (default
	// 25_000).
	HeartbeatTimeout int64
	// MaxFailovers bounds the failover attempts per lost job (default 3).
	MaxFailovers int
	// BackoffBase is the deterministic exponential backoff unit: retry
	// attempt a (a >= 1) waits BackoffBase << (a-1) cycles (default 1024).
	BackoffBase int64
	// MaxRounds bounds each failover attempt's validate→re-execute loop
	// (default 3).
	MaxRounds int
	// MinAlive is the quorum: when fewer devices remain non-dead, the
	// cluster stops accepting and failing over work (default 1).
	MinAlive int
	// Failures are the injected device failures, keyed by job.
	Failures []FailurePlan
	// FailRecoveryAttempts is a test hook: the first N failover attempts
	// die themselves (the recovering device fail-stops before validating),
	// exercising retry, backoff and degraded paths deterministically.
	FailRecoveryAttempts int
}

// DefaultConfig returns a 2-device round-robin cluster over the platform
// defaults.
func DefaultConfig() Config {
	return Config{
		Devices: 2,
		Mem:     memsim.DefaultConfig(),
		Dev:     gpusim.DefaultConfig(),
		LP:      core.DefaultConfig(),
	}
}

// withDefaults fills unset knobs in place.
func (c *Config) withDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.BlocksPerJob <= 0 {
		c.BlocksPerJob = 4
	}
	if c.BlockThreads <= 0 {
		c.BlockThreads = 32
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 25_000
	}
	if c.MaxFailovers <= 0 {
		c.MaxFailovers = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 1024
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 3
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 1
	}
	if c.Mem.LineSize == 0 {
		c.Mem = memsim.DefaultConfig()
	}
	if c.Dev.NumSMs == 0 {
		c.Dev = gpusim.DefaultConfig()
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	if c.Devices < 1 {
		return fmt.Errorf("cluster: Devices must be >= 1 (got %d)", c.Devices)
	}
	if c.MinAlive > c.Devices {
		return fmt.Errorf("cluster: MinAlive %d exceeds Devices %d", c.MinAlive, c.Devices)
	}
	if c.Router < 0 || c.Router >= numRouters {
		return fmt.Errorf("cluster: unknown router kind %d", int(c.Router))
	}
	fusion := c.LP.Fusion
	if fusion < 1 {
		fusion = 1
	}
	if c.BlocksPerJob%fusion != 0 {
		return fmt.Errorf("cluster: BlocksPerJob %d must be a multiple of LP fusion %d (shards must align to regions)",
			c.BlocksPerJob, fusion)
	}
	seen := map[int]bool{}
	for _, p := range c.Failures {
		if p.Job < 0 || p.Job >= c.Jobs {
			return fmt.Errorf("cluster: failure plan targets job %d outside [0,%d)", p.Job, c.Jobs)
		}
		if seen[p.Job] {
			return fmt.Errorf("cluster: duplicate failure plan for job %d", p.Job)
		}
		seen[p.Job] = true
		if p.Kind < 0 || p.Kind >= numFailureKinds {
			return fmt.Errorf("cluster: failure plan for job %d has unknown kind %d", p.Job, int(p.Kind))
		}
		if p.AfterBlocks < 0 || p.AfterBlocks > c.BlocksPerJob {
			return fmt.Errorf("cluster: failure plan for job %d fails after %d blocks (job has %d)",
				p.Job, p.AfterBlocks, c.BlocksPerJob)
		}
	}
	return nil
}

// node is one device and its private simulated hierarchy.
type node struct {
	id    int
	mem   *memsim.Memory
	dev   *gpusim.Device
	lp    *core.LP
	out   memsim.Region
	state DeviceState
	// freeAt is when the device's launch queue drains; rejoinAt is when a
	// stalled device becomes routable again.
	freeAt   int64
	rejoinAt int64
	busy     int64
	jobs     int
}

// DeviceReport is the per-device slice of a cluster Report.
type DeviceReport struct {
	ID         int         `json:"id"`
	State      DeviceState `json:"state"`
	Jobs       int         `json:"jobs"`
	BusyCycles int64       `json:"busy_cycles"`
}

// Report summarizes one cluster run. It is a pure function of the
// Config — bit-identical at any Workers or GOMAXPROCS.
type Report struct {
	Devices   int        `json:"devices"`
	Jobs      int        `json:"jobs"`
	Router    RouterKind `json:"router"`
	Completed int        `json:"completed"`
	// FailedOver counts jobs recovered on a survivor; Failovers counts
	// attempts (>= FailedOver when retries or cascades happened).
	FailedOver int   `json:"failed_over"`
	Failovers  int   `json:"failovers"`
	LostJobs   []int `json:"lost_jobs,omitempty"`
	// HeartbeatTimeouts counts hang/stall detections; Rejoins counts
	// stalled devices that came back.
	HeartbeatTimeouts int `json:"heartbeat_timeouts"`
	Rejoins           int `json:"rejoins"`
	// ReexecutedBlocks is how many blocks cross-device recovery had to
	// re-execute (first-round validation failures of successful
	// failovers).
	ReexecutedBlocks int `json:"reexecuted_blocks"`
	// BackoffCycles is simulated time spent in failover retry backoff.
	BackoffCycles int64 `json:"backoff_cycles"`
	// MakespanCycles is the shared-clock completion time of the run.
	MakespanCycles int64 `json:"makespan_cycles"`
	// Coverage is completed jobs over total jobs.
	Coverage  float64        `json:"coverage"`
	PerDevice []DeviceReport `json:"per_device"`
}

// Cluster is one runnable cluster instance.
type Cluster struct {
	cfg    Config
	grid   gpusim.Dim3
	blk    gpusim.Dim3
	pool   *memsim.Memory
	nodes  []*node
	router Router
	plans  map[int]FailurePlan
	salt   uint32

	now          int64 // shared-clock high-water mark outside device queues
	done         []bool
	lost         []int
	failRecovery int
	rep          *Report
	ran          bool
}

// splitmix advances a SplitMix64 state — seed derivation without global
// randomness.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a cluster: N devices with identical memory layouts (so a
// dead device's durable bytes import into any survivor at the same
// addresses), one shared durable pool, and the configured router.
func New(cfg Config) (*Cluster, error) {
	cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := memsim.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:          cfg,
		grid:         gpusim.D1(cfg.Jobs * cfg.BlocksPerJob),
		blk:          gpusim.D1(cfg.BlockThreads),
		pool:         pool,
		plans:        map[int]FailurePlan{},
		salt:         uint32(splitmix(cfg.Seed ^ 0xc105_7e4d)),
		done:         make([]bool, cfg.Jobs),
		failRecovery: cfg.FailRecoveryAttempts,
	}
	n := c.grid.Size() * c.blk.Size()
	for i := 0; i < cfg.Devices; i++ {
		mem, err := memsim.New(cfg.Mem)
		if err != nil {
			return nil, err
		}
		dev, err := gpusim.New(cfg.Dev, mem)
		if err != nil {
			return nil, err
		}
		dev.SetIdentity(i, fmt.Sprintf("gpu%d", i))
		nd := &node{id: i, mem: mem, dev: dev}
		nd.out = dev.Alloc("out", n*4)
		nd.out.HostZero()
		nd.lp = core.New(dev, cfg.LP, c.grid, c.blk)
		c.nodes = append(c.nodes, nd)
		if nd.out.Base != c.nodes[0].out.Base {
			panic("cluster: device memory layouts diverged — cross-device import is unsound")
		}
	}
	for _, p := range cfg.Failures {
		if p.AfterBlocks <= 0 {
			p.AfterBlocks = 1
		}
		if p.Kind == TransientStall && p.RejoinCycles <= 0 {
			p.RejoinCycles = 4 * cfg.HeartbeatTimeout
		}
		c.plans[p.Job] = p
	}
	c.router = cfg.CustomRouter
	if c.router == nil {
		c.router = newRouter(cfg.Router)
	}
	c.rep = &Report{Devices: cfg.Devices, Jobs: cfg.Jobs, Router: cfg.Router}
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Word returns the expected durable value of global thread gid — the
// audit oracle for the pool image.
func (c *Cluster) Word(gid int) uint32 { return uint32(gid)*2654435761 + c.salt }

// Pool returns the shared durable image.
func (c *Cluster) Pool() *memsim.Memory { return c.pool }

// Owner returns job j's shard owner under the affinity placement.
func (c *Cluster) Owner(j int) int { return j % c.cfg.Devices }

// Done reports whether job j completed (directly or via failover).
func (c *Cluster) Done(j int) bool { return c.done[j] }

// jobBlocks returns job j's linear block indices.
func (c *Cluster) jobBlocks(j int) []int {
	out := make([]int, c.cfg.BlocksPerJob)
	for i := range out {
		out[i] = j*c.cfg.BlocksPerJob + i
	}
	return out
}

// jobBytes is the durable footprint of one job's output slice.
func (c *Cluster) jobBytes() int { return c.cfg.BlocksPerJob * c.cfg.BlockThreads * 4 }

// jobAddr returns the job's base address — identical in every device and
// in the pool (layouts are asserted equal at construction).
func (c *Cluster) jobAddr(j int) uint64 {
	return c.nodes[0].out.Base + uint64(j*c.jobBytes())
}

// kernel is the cluster's dense LP-protected fill workload on nd: every
// thread stores one checksummed word of its job's shard.
func (c *Cluster) kernel(nd *node) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := nd.lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := c.Word(gid)
			t.StoreU32(nd.out, gid, v)
			r.Update(t, v)
		})
		r.Commit()
	}
}

// recompute refolds a block's durable outputs on nd for validation.
func (c *Cluster) recompute(nd *node) core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.Update(t, t.LoadU32(nd.out, t.GlobalLinear()))
		})
	}
}

// alive counts the non-dead devices.
func (c *Cluster) alive() int {
	n := 0
	for _, nd := range c.nodes {
		if nd.state != Dead {
			n++
		}
	}
	return n
}

// view builds the router-visible state of nd.
func (nd *node) view() DeviceView {
	at := nd.freeAt
	if nd.state == Stalled && nd.rejoinAt > at {
		at = nd.rejoinAt
	}
	return DeviceView{ID: nd.id, AvailableAt: at, BusyCycles: nd.busy, Jobs: nd.jobs}
}

// route picks the device for job j, or nil when quorum is lost.
func (c *Cluster) route(j int) *node {
	if c.alive() < c.cfg.MinAlive {
		return nil
	}
	var cands []DeviceView
	for _, nd := range c.nodes {
		if nd.state != Dead {
			cands = append(cands, nd.view())
		}
	}
	if len(cands) == 0 {
		return nil
	}
	pick := c.router.Pick(j, c.Owner(j), cands)
	for _, nd := range c.nodes {
		if nd.id == pick && nd.state != Dead {
			return nd
		}
	}
	panic(fmt.Sprintf("cluster: router %s picked non-candidate device %d for job %d", c.router.Name(), pick, j))
}

// Run dispatches every job, failing over around injected device losses.
// The error is nil on full completion, or a typed *DegradedClusterError
// (wrapping core.ErrDegraded) when jobs were lost.
func (c *Cluster) Run() (*Report, error) {
	if c.ran {
		panic("cluster: Run called twice")
	}
	c.ran = true
	for j := 0; j < c.cfg.Jobs; j++ {
		nd := c.route(j)
		if nd == nil {
			// Quorum lost before this job could run: its shard joins the
			// fenced lost set like any failover-exhausted shard.
			//lpvet:allow fencepair a quorum-lost shard stays fenced by protocol: no survivor may ever publish into an unrecovered range
			c.pool.FenceRange(fmt.Sprintf("shard-job-%d", j), c.jobAddr(j), c.jobBytes())
			c.lost = append(c.lost, j)
			continue
		}
		c.runJob(j, nd)
	}
	c.finishReport()
	if len(c.lost) > 0 {
		var deadIDs []int
		for _, nd := range c.nodes {
			if nd.state == Dead {
				deadIDs = append(deadIDs, nd.id)
			}
		}
		return c.rep, &DegradedClusterError{
			Coverage:    c.rep.Coverage,
			LostJobs:    append([]int(nil), c.lost...),
			LostBlocks:  len(c.lost) * c.cfg.BlocksPerJob,
			DeadDevices: deadIDs,
		}
	}
	return c.rep, nil
}

// runJob launches job j on nd, arming any injected failure, and hands a
// failed launch to the failover path.
func (c *Cluster) runJob(j int, nd *node) {
	start := nd.freeAt
	if nd.state == Stalled {
		if nd.rejoinAt > start {
			start = nd.rejoinAt
		}
		nd.state = Alive
		nd.rejoinAt = 0
		c.rep.Rejoins++
	}

	plan, hasPlan := c.plans[j]
	if hasPlan {
		switch plan.Kind {
		case FailStop:
			nd.dev.SetCrashTrigger(&gpusim.CrashTrigger{
				AfterBlocks: plan.AfterBlocks,
				Fire:        func(*gpusim.Device) { nd.mem.Crash() },
			})
		case Hang, TransientStall:
			// The injected hang: the device goes silent after AfterBlocks.
			// Simulated as an external abort at that block boundary — the
			// volatile state is dropped exactly as the eventual reclaim of
			// a genuinely hung device would leave it.
			dev := nd.dev
			nd.dev.SetHeartbeat(func(hb gpusim.Heartbeat) {
				if hb.Blocks >= plan.AfterBlocks {
					dev.RequestAbort()
				}
			})
		}
	}
	res := nd.dev.LaunchSelected(fmt.Sprintf("job-%d", j), c.grid, c.blk, c.kernel(nd), c.jobBlocks(j))
	nd.dev.SetHeartbeat(nil)
	nd.dev.SetCrashTrigger(nil)
	nd.busy += res.Cycles
	nd.jobs++
	end := start + res.Cycles
	nd.freeAt = end

	if !res.Interrupted {
		c.publish(j, nd)
		return
	}

	// The device failed mid-launch. Classify, charge detection latency,
	// and fail the in-flight shard over.
	kind := Hang // an un-planned interruption (e.g. watchdog) reads as a hang
	if hasPlan {
		kind = plan.Kind
	}
	detectAt := end
	switch kind {
	case FailStop:
		nd.state = Dead
	case Hang:
		nd.state = Dead
		detectAt = end + c.cfg.HeartbeatTimeout
		c.rep.HeartbeatTimeouts++
	case TransientStall:
		nd.state = Stalled
		detectAt = end + c.cfg.HeartbeatTimeout
		nd.rejoinAt = detectAt + plan.RejoinCycles
		c.rep.HeartbeatTimeouts++
	}
	if detectAt > c.now {
		c.now = detectAt
	}
	c.failover(j, nd, detectAt)
}

// publish makes job j's durable bytes visible in the shared pool: flush
// the owner's cache (the per-job durability sync point), then copy the
// job's NVM slice into the pool at the identical address.
func (c *Cluster) publish(j int, nd *node) {
	nd.mem.FlushAll()
	data := nd.mem.PeekNVM(c.jobAddr(j), c.jobBytes())
	c.pool.HostWrite(c.jobAddr(j), data)
	c.done[j] = true
	c.rep.Completed++
	if nd.freeAt > c.now {
		c.now = nd.freeAt
	}
}

// failover recovers job j, lost on dead at detectAt, on a surviving
// device: fence the shard in the pool, harvest the dead device's durable
// bytes, import them into a survivor, and re-execute the failed blocks
// there with the existing checksum machinery. Bounded attempts with
// deterministic exponential backoff; on exhaustion the shard stays
// fenced and the job is recorded lost.
func (c *Cluster) failover(j int, dead *node, detectAt int64) {
	fence := fmt.Sprintf("shard-job-%d", j)
	//lpvet:allow fencepair on failover exhaustion the lost shard stays fenced by protocol (see DegradedClusterError); the success path unfences before publish
	c.pool.FenceRange(fence, c.jobAddr(j), c.jobBytes())

	// Harvest: the job's (partially persisted) data slice and the whole
	// checksum table. The GlobalArray store encodes entry presence
	// in-band (sentinel / contributor count), so a raw byte copy
	// reproduces lookup semantics exactly on the importing device.
	data := dead.mem.PeekNVM(c.jobAddr(j), c.jobBytes())
	tableRegions := dead.lp.Store().TableRegions()
	tables := make([][]byte, len(tableRegions))
	for i, tr := range tableRegions {
		tables[i] = dead.mem.PeekNVM(tr.Base, tr.Size)
	}

	tried := map[int]bool{dead.id: true}
	for attempt := 0; attempt < c.cfg.MaxFailovers; attempt++ {
		r := c.pickRecovery(tried)
		if r == nil {
			break // quorum lost or every survivor already tried
		}
		c.rep.Failovers++
		start := detectAt
		if r.state == Stalled {
			if r.rejoinAt > start {
				start = r.rejoinAt
			}
			r.state = Alive
			r.rejoinAt = 0
			c.rep.Rejoins++
		}
		if r.freeAt > start {
			start = r.freeAt
		}
		if attempt > 0 {
			bo := c.cfg.BackoffBase << (attempt - 1)
			start += bo
			c.rep.BackoffCycles += bo
		}

		r.mem.HostWrite(c.jobAddr(j), data)
		for i, tr := range r.lp.Store().TableRegions() {
			r.mem.HostWrite(tr.Base, tables[i])
		}

		if c.failRecovery > 0 {
			// Injected cascade: the recovering device dies before its
			// validation launch completes.
			c.failRecovery--
			r.state = Dead
			r.mem.Crash()
			r.freeAt = start + c.cfg.HeartbeatTimeout
			if r.freeAt > c.now {
				c.now = r.freeAt
			}
			tried[r.id] = true
			detectAt = r.freeAt
			continue
		}

		rep, err := r.lp.RecoverBlocks(c.kernel(r), c.recompute(r), c.jobBlocks(j), core.ShardRecoverOpts{
			MaxRounds:   c.cfg.MaxRounds,
			BackoffBase: c.cfg.BackoffBase,
		})
		r.busy += rep.TotalCycles()
		r.freeAt = start + rep.TotalCycles() + rep.BackoffCycles
		r.jobs++
		c.rep.BackoffCycles += rep.BackoffCycles
		if err == nil {
			if len(rep.FailedPerRound) > 0 {
				c.rep.ReexecutedBlocks += rep.FailedPerRound[0]
			}
			c.pool.Unfence(fence)
			c.publish(j, r)
			c.rep.FailedOver++
			return
		}
		// Typed failure on this survivor: try the next one.
		tried[r.id] = true
		detectAt = r.freeAt
	}
	c.lost = append(c.lost, j)
}

// pickRecovery chooses the least-loaded untried survivor (ties by lowest
// id), preferring alive devices over stalled ones; nil when quorum is
// below MinAlive or no candidate remains.
func (c *Cluster) pickRecovery(tried map[int]bool) *node {
	if c.alive() < c.cfg.MinAlive {
		return nil
	}
	var best *node
	better := func(a, b *node) bool {
		if a.state != b.state {
			return a.state == Alive
		}
		if a.busy != b.busy {
			return a.busy < b.busy
		}
		return a.id < b.id
	}
	for _, nd := range c.nodes {
		if nd.state == Dead || tried[nd.id] {
			continue
		}
		if best == nil || better(nd, best) {
			best = nd
		}
	}
	return best
}

// finishReport freezes the per-device stats and cluster totals.
func (c *Cluster) finishReport() {
	makespan := c.now
	for _, nd := range c.nodes {
		if nd.freeAt > makespan {
			makespan = nd.freeAt
		}
		c.rep.PerDevice = append(c.rep.PerDevice, DeviceReport{
			ID: nd.id, State: nd.state, Jobs: nd.jobs, BusyCycles: nd.busy,
		})
	}
	c.rep.MakespanCycles = makespan
	c.rep.LostJobs = append([]int(nil), c.lost...)
	c.rep.Coverage = float64(c.rep.Completed) / float64(c.cfg.Jobs)
}

// Verify audits the shared pool: every completed job's shard must hold
// the expected fill values bit-exactly. Lost (fenced) shards are
// excluded — that exclusion is exactly the degraded-mode contract.
func (c *Cluster) Verify() error {
	img := c.pool.NVMImage()
	wordsPerJob := c.jobBytes() / 4
	for j := 0; j < c.cfg.Jobs; j++ {
		if !c.done[j] {
			continue
		}
		for w := 0; w < wordsPerJob; w++ {
			gid := j*wordsPerJob + w
			addr := c.jobAddr(j) + uint64(w*4)
			if got := memsim.ImageU32(img, addr); got != c.Word(gid) {
				return fmt.Errorf("cluster: pool image diverges at job %d word %d (addr %#x): got %#x want %#x",
					j, w, addr, got, c.Word(gid))
			}
		}
	}
	return nil
}
