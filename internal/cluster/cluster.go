// Package cluster simulates a fault-tolerant multi-GPU cluster over the
// repo's single-device stack: N gpusim devices advance under one shared
// simulated clock, a pluggable router dispatches kernel launches (jobs)
// across them, and every completed job's durable bytes are published
// into a shared durable memsim image (the pool) — each job is a shard of
// the cluster's persistent state.
//
// The robustness core is the device-failure protocol. A seeded injector
// arms whole-device failures mid-launch: fail-stop (instant death, cache
// lost, NVM harvestable), hang (silence detected when the per-device
// heartbeat stream stays quiet past a timeout, then an external abort
// reclaims a crash-consistent image), and transient stall (hang followed
// by a rejoin). Failover fences the lost shard's range in the pool,
// harvests the dead device's durable bytes — the partially-persisted
// data slice plus its Lazy Persistency checksum table, which encodes
// presence in-band and therefore survives a raw copy — imports them into
// a surviving device at identical addresses, and drives the existing
// checksum machinery (core.RecoverBlocks) to validate and re-execute
// exactly the in-flight blocks there, with bounded retries and
// deterministic exponential backoff across survivors. When the failover
// budget or the MinAlive quorum is exhausted, the run degrades
// gracefully to a typed DegradedClusterError: completed shards stay
// valid and published, lost shards stay fenced.
//
// With Replicas > 1 every shard is additionally written to R-1 replica
// devices chosen by a deterministic Placer (spread or affinity-aware),
// each replica flushed durable within the same shared-clock loop, and
// failover upgrades to quorum harvest: the survivors' replicas are
// judged — freshest first, in placement order — against the configured
// persistency model's own durable-image contract (LP refolds the shard
// and compares checksums; EP replays its redo log; SBRP/strict check
// release flags), and the first consistent replica is adopted and
// published without re-executing anything. Only when no replica passes
// does the protocol fall back to the harvest/re-execute path above.
// Devices that rejoin after a transient stall trigger online
// rebalancing: a bounded number of published shards are copied back in
// per rejoin, the destination range fenced against device stores for
// the duration of each copy.
//
// Everything is deterministic: the same Config produces a bit-identical
// report and pool image at any gpusim Workers value and any host
// GOMAXPROCS — the repo's determinism contract extends to whole-cluster
// failover.
package cluster

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// Config fixes one cluster run.
type Config struct {
	// Devices is the number of simulated GPUs (>= 1).
	Devices int
	// Jobs is the number of kernel launches to dispatch (default 8).
	// Job j computes the shard of blocks [j*BlocksPerJob, (j+1)*BlocksPerJob).
	Jobs int
	// BlocksPerJob and BlockThreads fix the per-job geometry
	// (default 4 × 32).
	BlocksPerJob int
	// BlockThreads is the threads per block.
	BlockThreads int
	// Router selects the dispatch policy (default RoundRobin);
	// CustomRouter overrides it with a caller-provided implementation.
	Router       RouterKind
	CustomRouter Router
	// Replicas is the number of durable copies per shard, the primary
	// included (default 1 — the original sharded placement). With
	// Replicas > 1 each job also launches on Replicas-1 placer-chosen
	// devices within the same shared-clock loop, and failover prefers
	// adopting a consistent surviving replica over re-executing.
	Replicas int
	// Placer selects the replica placement policy (default Spread);
	// CustomPlacer overrides it with a caller-provided implementation.
	Placer       PlacerKind
	CustomPlacer Placer
	// Model names the persistency model protecting every device's shard
	// writes (a pmodel registry name; default "lp"). The model's durable
	// metadata decides replica freshness during quorum harvest; "lp"
	// keeps the original checksum-table failover path bit-identically.
	Model string
	// RebalanceBudget bounds shard copy-ins per rejoin event when
	// Replicas > 1 (default 2).
	RebalanceBudget int
	// Seed salts the fill pattern and derived values.
	Seed uint64
	// Mem and Dev configure every device's private hierarchy (and the
	// pool); zero values take the platform defaults.
	Mem memsim.Config
	Dev gpusim.Config
	// LP selects the persistency design point. BlocksPerJob must be a
	// multiple of the fusion factor so shard boundaries align to regions.
	LP core.Config
	// HeartbeatTimeout is the silence (in simulated cycles past the last
	// heartbeat) after which a hung device is declared lost (default
	// 25_000).
	HeartbeatTimeout int64
	// MaxFailovers bounds the failover attempts per lost job (default 3;
	// FailoverDisabled forbids failover entirely — every lost job
	// degrades immediately).
	MaxFailovers int
	// BackoffBase is the deterministic exponential backoff unit: retry
	// attempt a (a >= 1) waits BackoffBase << (a-1) cycles (default 1024).
	BackoffBase int64
	// MaxRounds bounds each failover attempt's validate→re-execute loop
	// (default 3).
	MaxRounds int
	// MinAlive is the quorum: when fewer devices remain non-dead, the
	// cluster stops accepting and failing over work (default 1).
	MinAlive int
	// Failures are the injected device failures, keyed by job.
	Failures []FailurePlan
	// FailRecoveryAttempts is a test hook: the first N failover attempts
	// die themselves (the recovering device fail-stops before validating),
	// exercising retry, backoff and degraded paths deterministically.
	FailRecoveryAttempts int
}

// FailoverDisabled, as Config.MaxFailovers, gives failover a zero
// budget: every lost job degrades immediately (MaxFailovers = 0 keeps
// the default of 3 so legacy zero-value configs are unchanged).
const FailoverDisabled = -1

// DefaultConfig returns a 2-device round-robin cluster over the platform
// defaults.
func DefaultConfig() Config {
	return Config{
		Devices: 2,
		Mem:     memsim.DefaultConfig(),
		Dev:     gpusim.DefaultConfig(),
		LP:      core.DefaultConfig(),
	}
}

// withDefaults fills unset knobs in place.
func (c *Config) withDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 8
	}
	if c.BlocksPerJob <= 0 {
		c.BlocksPerJob = 4
	}
	if c.BlockThreads <= 0 {
		c.BlockThreads = 32
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 25_000
	}
	if c.MaxFailovers == 0 {
		c.MaxFailovers = 3
	}
	if c.MaxFailovers < 0 {
		c.MaxFailovers = 0 // FailoverDisabled: zero budget, degrade immediately
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Model == "" {
		c.Model = "lp"
	}
	if c.RebalanceBudget == 0 {
		c.RebalanceBudget = 2
	}
	if c.RebalanceBudget < 0 {
		c.RebalanceBudget = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 1024
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 3
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 1
	}
	if c.Mem.LineSize == 0 {
		c.Mem = memsim.DefaultConfig()
	}
	if c.Dev.NumSMs == 0 {
		c.Dev = gpusim.DefaultConfig()
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	if c.Devices < 1 {
		return fmt.Errorf("cluster: Devices must be >= 1 (got %d)", c.Devices)
	}
	if c.MinAlive > c.Devices {
		return fmt.Errorf("cluster: MinAlive %d exceeds Devices %d", c.MinAlive, c.Devices)
	}
	if c.Router < 0 || c.Router >= numRouters {
		return fmt.Errorf("cluster: unknown router kind %d", int(c.Router))
	}
	if c.Placer < 0 || c.Placer >= numPlacers {
		return fmt.Errorf("cluster: unknown placer kind %d", int(c.Placer))
	}
	if c.Replicas > c.Devices {
		return fmt.Errorf("cluster: Replicas %d exceeds Devices %d (replicas must land on distinct devices)",
			c.Replicas, c.Devices)
	}
	if c.Model != "" {
		if _, ok := pmodel.Lookup(c.Model); !ok {
			return fmt.Errorf("cluster: unknown persistency model %q (have %v)", c.Model, pmodel.Names())
		}
	}
	fusion := c.LP.Fusion
	if fusion < 1 {
		fusion = 1
	}
	if c.BlocksPerJob%fusion != 0 {
		return fmt.Errorf("cluster: BlocksPerJob %d must be a multiple of LP fusion %d (shards must align to regions)",
			c.BlocksPerJob, fusion)
	}
	seen := map[int]bool{}
	for _, p := range c.Failures {
		if p.Job < 0 || p.Job >= c.Jobs {
			return fmt.Errorf("cluster: failure plan targets job %d outside [0,%d)", p.Job, c.Jobs)
		}
		if seen[p.Job] {
			return fmt.Errorf("cluster: duplicate failure plan for job %d", p.Job)
		}
		seen[p.Job] = true
		if p.Kind < 0 || p.Kind >= numFailureKinds {
			return fmt.Errorf("cluster: failure plan for job %d has unknown kind %d", p.Job, int(p.Kind))
		}
		if p.AfterBlocks < 0 || p.AfterBlocks > c.BlocksPerJob {
			return fmt.Errorf("cluster: failure plan for job %d fails after %d blocks (job has %d)",
				p.Job, p.AfterBlocks, c.BlocksPerJob)
		}
	}
	return nil
}

// node is one device and its private simulated hierarchy. model is the
// device's persistency model instance; lp is its LP runtime when the
// model is "lp" (nil otherwise — the generic failover path applies).
type node struct {
	id    int
	mem   *memsim.Memory
	dev   *gpusim.Device
	model pmodel.Model
	lp    *core.LP
	out   memsim.Region
	state DeviceState
	// freeAt is when the device's launch queue drains; rejoinAt is when a
	// stalled device becomes routable again.
	freeAt   int64
	rejoinAt int64
	busy     int64
	jobs     int
}

// DeviceReport is the per-device slice of a cluster Report.
type DeviceReport struct {
	ID         int         `json:"id"`
	State      DeviceState `json:"state"`
	Jobs       int         `json:"jobs"`
	BusyCycles int64       `json:"busy_cycles"`
}

// Report summarizes one cluster run. It is a pure function of the
// Config — bit-identical at any Workers or GOMAXPROCS.
type Report struct {
	Devices   int        `json:"devices"`
	Jobs      int        `json:"jobs"`
	Router    RouterKind `json:"router"`
	Model     string     `json:"model"`
	Replicas  int        `json:"replicas"`
	Placer    PlacerKind `json:"placer"`
	Completed int        `json:"completed"`
	// FailedOver counts jobs recovered on a survivor; Failovers counts
	// attempts (>= FailedOver when retries or cascades happened).
	FailedOver int   `json:"failed_over"`
	Failovers  int   `json:"failovers"`
	LostJobs   []int `json:"lost_jobs,omitempty"`
	// HeartbeatTimeouts counts hang/stall detections; Rejoins counts
	// stalled devices that came back.
	HeartbeatTimeouts int `json:"heartbeat_timeouts"`
	Rejoins           int `json:"rejoins"`
	// ReexecutedBlocks is how many blocks cross-device recovery had to
	// re-execute (first-round validation failures of successful
	// failovers).
	ReexecutedBlocks int `json:"reexecuted_blocks"`
	// BackoffCycles is simulated time spent in failover retry backoff.
	BackoffCycles int64 `json:"backoff_cycles"`
	// ReplicaLaunches counts replica (non-primary) shard launches;
	// Adopted counts jobs recovered by adopting a consistent surviving
	// replica — zero re-execution, zero failover attempts.
	ReplicaLaunches int `json:"replica_launches,omitempty"`
	Adopted         int `json:"adopted,omitempty"`
	// UnderReplicated counts jobs that could not reach the configured
	// replica count; RebalancedShards counts rejoin-triggered shard
	// copy-ins.
	UnderReplicated  int `json:"under_replicated,omitempty"`
	RebalancedShards int `json:"rebalanced_shards,omitempty"`
	// ReplicaCoverage is the mean fraction of the configured replica
	// count still alive per completed shard (1.0 = fully replicated);
	// only reported when Replicas > 1.
	ReplicaCoverage float64 `json:"replica_coverage,omitempty"`
	// NVMLineWrites totals durable line writes across every device and
	// the pool — the replication write-amplification measure.
	NVMLineWrites int64 `json:"nvm_line_writes"`
	// MakespanCycles is the shared-clock completion time of the run.
	MakespanCycles int64 `json:"makespan_cycles"`
	// Coverage is completed jobs over total jobs.
	Coverage  float64        `json:"coverage"`
	PerDevice []DeviceReport `json:"per_device"`
}

// Cluster is one runnable cluster instance.
type Cluster struct {
	cfg    Config
	grid   gpusim.Dim3
	blk    gpusim.Dim3
	pool   *memsim.Memory
	nodes  []*node
	router Router
	placer Placer
	plans  map[int]FailurePlan
	salt   uint32
	// holders[j] lists, in placement order, the devices holding a
	// durable copy of job j's shard (replicas, then the publisher).
	// Tracked only when Replicas > 1.
	holders [][]int

	now          int64 // shared-clock high-water mark outside device queues
	done         []bool
	lost         []int
	failRecovery int
	rep          *Report
	ran          bool
}

// splitmix advances a SplitMix64 state — seed derivation without global
// randomness.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a cluster: N devices with identical memory layouts (so a
// dead device's durable bytes import into any survivor at the same
// addresses), one shared durable pool, and the configured router.
func New(cfg Config) (*Cluster, error) {
	cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := memsim.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:          cfg,
		grid:         gpusim.D1(cfg.Jobs * cfg.BlocksPerJob),
		blk:          gpusim.D1(cfg.BlockThreads),
		pool:         pool,
		plans:        map[int]FailurePlan{},
		salt:         uint32(splitmix(cfg.Seed ^ 0xc105_7e4d)),
		done:         make([]bool, cfg.Jobs),
		holders:      make([][]int, cfg.Jobs),
		failRecovery: cfg.FailRecoveryAttempts,
	}
	n := c.grid.Size() * c.blk.Size()
	spec := pmodel.MustLookup(cfg.Model)
	lpCfg := cfg.LP
	for i := 0; i < cfg.Devices; i++ {
		mem, err := memsim.New(cfg.Mem)
		if err != nil {
			return nil, err
		}
		dev, err := gpusim.New(cfg.Dev, mem)
		if err != nil {
			return nil, err
		}
		dev.SetIdentity(i, fmt.Sprintf("gpu%d", i))
		nd := &node{id: i, mem: mem, dev: dev}
		nd.out = dev.Alloc("out", n*4)
		nd.out.HostZero()
		nd.model = spec.New(dev, &clusterWorkload{c: c, nd: nd}, pmodel.Options{
			LP:        &lpCfg,
			MaxRounds: cfg.MaxRounds,
		})
		if lm, ok := nd.model.(interface{ LP() *core.LP }); ok {
			nd.lp = lm.LP()
		}
		c.nodes = append(c.nodes, nd)
		if nd.out.Base != c.nodes[0].out.Base {
			panic("cluster: device memory layouts diverged — cross-device import is unsound")
		}
	}
	for _, p := range cfg.Failures {
		if p.AfterBlocks <= 0 {
			p.AfterBlocks = 1
		}
		if p.Kind == TransientStall && p.RejoinCycles <= 0 {
			p.RejoinCycles = 4 * cfg.HeartbeatTimeout
		}
		c.plans[p.Job] = p
	}
	c.router = cfg.CustomRouter
	if c.router == nil {
		c.router = newRouter(cfg.Router)
	}
	c.placer = cfg.CustomPlacer
	if c.placer == nil {
		c.placer = newPlacer(cfg.Placer)
	}
	c.rep = &Report{
		Devices: cfg.Devices, Jobs: cfg.Jobs, Router: cfg.Router,
		Model: cfg.Model, Replicas: cfg.Replicas, Placer: cfg.Placer,
	}
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Word returns the expected durable value of global thread gid — the
// audit oracle for the pool image.
func (c *Cluster) Word(gid int) uint32 { return uint32(gid)*2654435761 + c.salt }

// Pool returns the shared durable image.
func (c *Cluster) Pool() *memsim.Memory { return c.pool }

// Owner returns job j's shard owner under the affinity placement.
func (c *Cluster) Owner(j int) int { return j % c.cfg.Devices }

// Done reports whether job j completed (directly or via failover).
func (c *Cluster) Done(j int) bool { return c.done[j] }

// jobBlocks returns job j's linear block indices.
func (c *Cluster) jobBlocks(j int) []int {
	out := make([]int, c.cfg.BlocksPerJob)
	for i := range out {
		out[i] = j*c.cfg.BlocksPerJob + i
	}
	return out
}

// jobBytes is the durable footprint of one job's output slice.
func (c *Cluster) jobBytes() int { return c.cfg.BlocksPerJob * c.cfg.BlockThreads * 4 }

// jobAddr returns the job's base address — identical in every device and
// in the pool (layouts are asserted equal at construction).
func (c *Cluster) jobAddr(j int) uint64 {
	return c.nodes[0].out.Base + uint64(j*c.jobBytes())
}

// clusterWorkload adapts the cluster's dense fill — every thread stores
// one word of its job's shard — to the pmodel.Workload contract, so any
// registered persistency model can protect a device's shard writes.
type clusterWorkload struct {
	c  *Cluster
	nd *node
}

func (w *clusterWorkload) Name() string                         { return "cluster-fill" }
func (w *clusterWorkload) Geometry() (gpusim.Dim3, gpusim.Dim3) { return w.c.grid, w.c.blk }
func (w *clusterWorkload) Outputs() []memsim.Region             { return []memsim.Region{w.nd.out} }

func (w *clusterWorkload) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := w.c.Word(gid)
			t.StoreU32(w.nd.out, gid, v)
			r.Update(t, v)
		})
		r.Commit()
	}
}

func (w *clusterWorkload) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.Update(t, t.LoadU32(w.nd.out, t.GlobalLinear()))
		})
	}
}

// recompute refolds a block's durable outputs on nd for validation.
func (c *Cluster) recompute(nd *node) core.RecomputeFunc {
	return (&clusterWorkload{c: c, nd: nd}).Recompute()
}

// foldBlock replays one block of the fill from a raw durable image in
// thread order — the pmodel.BlockFolder LP's quorum-harvest judge
// refolds replica checksums with.
func (c *Cluster) foldBlock(img []byte, block int, emit func(bits uint32)) {
	base := c.nodes[0].out.Base
	for t := 0; t < c.cfg.BlockThreads; t++ {
		gid := block*c.cfg.BlockThreads + t
		emit(memsim.ImageU32(img, base+uint64(gid)*4))
	}
}

// alive counts the non-dead devices.
func (c *Cluster) alive() int {
	n := 0
	for _, nd := range c.nodes {
		if nd.state != Dead {
			n++
		}
	}
	return n
}

// view builds the router-visible state of nd.
func (nd *node) view() DeviceView {
	at := nd.freeAt
	if nd.state == Stalled && nd.rejoinAt > at {
		at = nd.rejoinAt
	}
	return DeviceView{ID: nd.id, AvailableAt: at, BusyCycles: nd.busy, Jobs: nd.jobs}
}

// route picks the device for job j, or nil when quorum is lost.
func (c *Cluster) route(j int) *node {
	if c.alive() < c.cfg.MinAlive {
		return nil
	}
	var cands []DeviceView
	for _, nd := range c.nodes {
		if nd.state != Dead {
			cands = append(cands, nd.view())
		}
	}
	if len(cands) == 0 {
		return nil
	}
	pick := c.router.Pick(j, c.Owner(j), cands)
	for _, nd := range c.nodes {
		if nd.id == pick && nd.state != Dead {
			return nd
		}
	}
	panic(fmt.Sprintf("cluster: router %s picked non-candidate device %d for job %d", c.router.Name(), pick, j))
}

// Run dispatches every job, failing over around injected device losses.
// The error is nil on full completion, or a typed *DegradedClusterError
// (wrapping core.ErrDegraded) when jobs were lost.
func (c *Cluster) Run() (*Report, error) {
	if c.ran {
		panic("cluster: Run called twice")
	}
	c.ran = true
	for j := 0; j < c.cfg.Jobs; j++ {
		nd := c.route(j)
		if nd == nil {
			// Quorum lost before this job could run: its shard joins the
			// fenced lost set like any failover-exhausted shard.
			//lpvet:allow fencepair a quorum-lost shard stays fenced by protocol: no survivor may ever publish into an unrecovered range
			c.pool.FenceRange(fmt.Sprintf("shard-job-%d", j), c.jobAddr(j), c.jobBytes())
			c.lost = append(c.lost, j)
			continue
		}
		c.runJob(j, nd)
	}
	c.finishReport()
	if len(c.lost) > 0 {
		var deadIDs []int
		for _, nd := range c.nodes {
			if nd.state == Dead {
				deadIDs = append(deadIDs, nd.id)
			}
		}
		return c.rep, &DegradedClusterError{
			Coverage:    c.rep.Coverage,
			LostJobs:    append([]int(nil), c.lost...),
			LostBlocks:  len(c.lost) * c.cfg.BlocksPerJob,
			DeadDevices: deadIDs,
		}
	}
	return c.rep, nil
}

// revive marks a stalled device alive, charging its rejoin wait, and
// returns the adjusted start time. Under replication a rejoin triggers
// bounded rebalancing of published shards back onto the device.
func (c *Cluster) revive(nd *node, start int64) int64 {
	if nd.rejoinAt > start {
		start = nd.rejoinAt
	}
	nd.state = Alive
	nd.rejoinAt = 0
	c.rep.Rejoins++
	if c.cfg.Replicas > 1 {
		c.rebalance(nd)
	}
	return start
}

// runJob launches job j on nd, arming any injected failure, and hands a
// failed launch to the failover path.
func (c *Cluster) runJob(j int, nd *node) {
	// Replicate first: the shard's durable copies exist before the
	// primary's (possibly failure-armed) launch, so quorum harvest has
	// survivors to judge whatever happens to the primary.
	if c.cfg.Replicas > 1 {
		c.replicate(j, nd)
	}
	start := nd.freeAt
	if nd.state == Stalled {
		start = c.revive(nd, start)
	}

	plan, hasPlan := c.plans[j]
	if hasPlan {
		switch plan.Kind {
		case FailStop:
			nd.dev.SetCrashTrigger(&gpusim.CrashTrigger{
				AfterBlocks: plan.AfterBlocks,
				Fire:        func(*gpusim.Device) { nd.mem.Crash() },
			})
		case Hang, TransientStall:
			// The injected hang: the device goes silent after AfterBlocks.
			// Simulated as an external abort at that block boundary — the
			// volatile state is dropped exactly as the eventual reclaim of
			// a genuinely hung device would leave it.
			dev := nd.dev
			nd.dev.SetHeartbeat(func(hb gpusim.Heartbeat) {
				if hb.Blocks >= plan.AfterBlocks {
					dev.RequestAbort()
				}
			})
		}
	}
	res := nd.dev.LaunchSelected(fmt.Sprintf("job-%d", j), c.grid, c.blk, nd.model.Kernel(), c.jobBlocks(j))
	nd.dev.SetHeartbeat(nil)
	nd.dev.SetCrashTrigger(nil)
	nd.busy += res.Cycles
	nd.jobs++
	end := start + res.Cycles
	nd.freeAt = end

	if !res.Interrupted {
		c.publish(j, nd)
		return
	}

	// The device failed mid-launch. Classify, charge detection latency,
	// and fail the in-flight shard over.
	kind := Hang // an un-planned interruption (e.g. watchdog) reads as a hang
	if hasPlan {
		kind = plan.Kind
	}
	detectAt := end
	switch kind {
	case FailStop:
		nd.state = Dead
	case Hang:
		nd.state = Dead
		detectAt = end + c.cfg.HeartbeatTimeout
		c.rep.HeartbeatTimeouts++
	case TransientStall:
		nd.state = Stalled
		detectAt = end + c.cfg.HeartbeatTimeout
		nd.rejoinAt = detectAt + plan.RejoinCycles
		c.rep.HeartbeatTimeouts++
	}
	if detectAt > c.now {
		c.now = detectAt
	}
	c.failover(j, nd, detectAt)
}

// replicate launches job j's shard on Replicas-1 placer-chosen devices
// besides the primary, flushing each replica durable — the shard's
// standby copies for quorum harvest.
func (c *Cluster) replicate(j int, primary *node) {
	var cands []DeviceView
	for _, nd := range c.nodes {
		if nd.state != Dead && nd.id != primary.id {
			cands = append(cands, nd.view())
		}
	}
	need := c.cfg.Replicas - 1
	if need > len(cands) {
		c.rep.UnderReplicated++
	}
	if len(cands) == 0 {
		return
	}
	for _, id := range c.placer.Replicas(j, c.Owner(j), primary.id, need, cands) {
		r := c.nodes[id]
		start := r.freeAt
		if r.state == Stalled {
			start = c.revive(r, start)
		}
		res := r.dev.LaunchSelected(fmt.Sprintf("job-%d-replica", j), c.grid, c.blk, r.model.Kernel(), c.jobBlocks(j))
		r.busy += res.Cycles
		r.jobs++
		r.freeAt = start + res.Cycles
		// The replica durability sync point: the copy must survive any
		// later loss of this device.
		r.mem.FlushAll()
		c.addHolder(j, id)
		c.rep.ReplicaLaunches++
	}
}

// addHolder records id as holding a durable copy of job j's shard.
func (c *Cluster) addHolder(j, id int) {
	if c.cfg.Replicas <= 1 {
		return
	}
	for _, h := range c.holders[j] {
		if h == id {
			return
		}
	}
	c.holders[j] = append(c.holders[j], id)
}

// rebalance restores replication onto a rejoined device: up to
// RebalanceBudget published shards whose alive copy count dropped below
// Replicas are copied back in from the durable pool, the destination
// range fenced against device stores for the duration of each copy
// (host writes pass — the copy-in is control-plane work).
func (c *Cluster) rebalance(nd *node) {
	budget := c.cfg.RebalanceBudget
	for j := 0; j < c.cfg.Jobs && budget > 0; j++ {
		if !c.done[j] || c.holdsShard(j, nd.id) || c.aliveHolders(j) >= c.cfg.Replicas {
			continue
		}
		fence := fmt.Sprintf("rebalance-job-%d-dev-%d", j, nd.id)
		nd.mem.FenceRangeHost(fence, c.jobAddr(j), c.jobBytes())
		nd.mem.HostWrite(c.jobAddr(j), c.pool.PeekNVM(c.jobAddr(j), c.jobBytes()))
		nd.mem.Unfence(fence)
		c.addHolder(j, nd.id)
		c.rep.RebalancedShards++
		budget--
	}
}

// holdsShard reports whether device id already holds job j's shard.
func (c *Cluster) holdsShard(j, id int) bool {
	for _, h := range c.holders[j] {
		if h == id {
			return true
		}
	}
	return false
}

// aliveHolders counts job j's holders on non-dead devices.
func (c *Cluster) aliveHolders(j int) int {
	n := 0
	for _, h := range c.holders[j] {
		if c.nodes[h].state != Dead {
			n++
		}
	}
	return n
}

// publish makes job j's durable bytes visible in the shared pool: flush
// the owner's cache (the per-job durability sync point), then copy the
// job's NVM slice into the pool at the identical address.
func (c *Cluster) publish(j int, nd *node) {
	nd.mem.FlushAll()
	data := nd.mem.PeekNVM(c.jobAddr(j), c.jobBytes())
	c.pool.HostWrite(c.jobAddr(j), data)
	c.addHolder(j, nd.id)
	c.done[j] = true
	c.rep.Completed++
	if nd.freeAt > c.now {
		c.now = nd.freeAt
	}
}

// shardFresh judges a holder's durable image against its model's
// freshness contract: LP refolds the shard's data and compares the
// checksum table in the same image; EP replays its redo log; SBRP and
// strict check release flags.
func (c *Cluster) shardFresh(r *node, img []byte, blocks []int) bool {
	switch m := r.model.(type) {
	case pmodel.DataJudge:
		return m.ShardConsistent(img, blocks, c.foldBlock)
	case pmodel.ImageJudge:
		return m.ShardIntact(img, blocks)
	}
	return false
}

// adopt scans job j's surviving replicas in placement order and returns
// the first whose durable image passes its model's freshness contract —
// the quorum-harvest path that recovers without re-executing anything.
// Dead holders are skipped: their NVM is harvestable, but adoption
// publishes via the holder's cache flush, which needs a live device.
func (c *Cluster) adopt(j int, dead *node) *node {
	blocks := c.jobBlocks(j)
	for _, id := range c.holders[j] {
		r := c.nodes[id]
		if r == dead || r.state == Dead {
			continue
		}
		if c.shardFresh(r, r.mem.NVMImage(), blocks) {
			return r
		}
	}
	return nil
}

// failover recovers job j, lost on dead at detectAt. With replicas the
// first resort is quorum harvest: adopt the freshest consistent
// surviving replica and publish it — no re-execution, no failover
// attempt spent. Otherwise (or when no replica passes its model's
// contract): fence the shard in the pool, harvest the dead device's
// durable bytes, import them into a survivor, and re-execute the failed
// blocks there — via the LP checksum machinery when the model is "lp",
// or via the model's own PredictDamage contract otherwise. Bounded
// attempts with deterministic exponential backoff; on exhaustion the
// shard stays fenced and the job is recorded lost.
func (c *Cluster) failover(j int, dead *node, detectAt int64) {
	fence := fmt.Sprintf("shard-job-%d", j)
	//lpvet:allow fencepair on failover exhaustion the lost shard stays fenced by protocol (see DegradedClusterError); the success paths unfence before publish
	c.pool.FenceRange(fence, c.jobAddr(j), c.jobBytes())

	if c.cfg.Replicas > 1 {
		if r := c.adopt(j, dead); r != nil {
			c.pool.Unfence(fence)
			c.publish(j, r)
			c.rep.Adopted++
			return
		}
	}

	// Harvest: the job's (partially persisted) data slice and the whole
	// durable metadata — LP's checksum table (the GlobalArray store
	// encodes entry presence in-band, so a raw byte copy reproduces
	// lookup semantics exactly on the importing device), EP's redo log
	// and commit flags, or a flag model's release flags.
	data := dead.mem.PeekNVM(c.jobAddr(j), c.jobBytes())
	metaRegions := dead.model.MetadataRegions()
	tables := make([][]byte, len(metaRegions))
	for i, tr := range metaRegions {
		tables[i] = dead.mem.PeekNVM(tr.Base, tr.Size)
	}

	tried := map[int]bool{dead.id: true}
	for attempt := 0; attempt < c.cfg.MaxFailovers; attempt++ {
		r := c.pickRecovery(tried)
		if r == nil {
			break // quorum lost or every survivor already tried
		}
		c.rep.Failovers++
		start := detectAt
		if r.state == Stalled {
			start = c.revive(r, start)
		}
		if r.freeAt > start {
			start = r.freeAt
		}
		if attempt > 0 {
			bo := c.cfg.BackoffBase << (attempt - 1)
			start += bo
			c.rep.BackoffCycles += bo
		}

		r.mem.HostWrite(c.jobAddr(j), data)
		for i, tr := range r.model.MetadataRegions() {
			r.mem.HostWrite(tr.Base, tables[i])
		}

		if c.failRecovery > 0 {
			// Injected cascade: the recovering device dies before its
			// validation launch completes.
			c.failRecovery--
			r.state = Dead
			r.mem.Crash()
			r.freeAt = start + c.cfg.HeartbeatTimeout
			if r.freeAt > c.now {
				c.now = r.freeAt
			}
			tried[r.id] = true
			detectAt = r.freeAt
			continue
		}

		if r.lp != nil {
			rep, err := r.lp.RecoverBlocks(r.model.Kernel(), c.recompute(r), c.jobBlocks(j), core.ShardRecoverOpts{
				MaxRounds:   c.cfg.MaxRounds,
				BackoffBase: c.cfg.BackoffBase,
			})
			r.busy += rep.TotalCycles()
			r.freeAt = start + rep.TotalCycles() + rep.BackoffCycles
			r.jobs++
			c.rep.BackoffCycles += rep.BackoffCycles
			if err == nil {
				if len(rep.FailedPerRound) > 0 {
					c.rep.ReexecutedBlocks += rep.FailedPerRound[0]
				}
				c.pool.Unfence(fence)
				c.publish(j, r)
				c.rep.FailedOver++
				return
			}
			// Typed failure on this survivor: try the next one.
			tried[r.id] = true
			detectAt = r.freeAt
			continue
		}

		// Log-structured models (EP) keep durable data in their redo
		// log, not in place: rematerialize the shard from the imported
		// log before judging damage, or committed blocks publish zeros.
		if rp, ok := r.model.(pmodel.ShardReplayer); ok {
			rp.ReplayBlocks(c.jobBlocks(j))
		}

		// Generic model path: the model's PredictDamage contract names,
		// from the imported durable image alone, the shard blocks whose
		// persistence never completed; re-execute exactly those.
		damaged := intersectBlocks(r.model.PredictDamage(r.mem.NVMImage()), c.jobBlocks(j))
		var cycles int64
		if len(damaged) > 0 {
			res := r.dev.LaunchSelected(fmt.Sprintf("job-%d-reexec", j), c.grid, c.blk, r.model.Kernel(), damaged)
			cycles = res.Cycles
			if res.Interrupted {
				r.busy += cycles
				r.freeAt = start + cycles
				tried[r.id] = true
				detectAt = r.freeAt
				continue
			}
		}
		r.busy += cycles
		r.freeAt = start + cycles
		r.jobs++
		c.rep.ReexecutedBlocks += len(damaged)
		c.pool.Unfence(fence)
		c.publish(j, r)
		c.rep.FailedOver++
		return
	}
	c.lost = append(c.lost, j)
}

// intersectBlocks filters damage units to the job's shard blocks,
// preserving ascending order.
func intersectBlocks(damage, shard []int) []int {
	in := make(map[int]bool, len(shard))
	for _, b := range shard {
		in[b] = true
	}
	var out []int
	for _, d := range damage {
		if in[d] {
			out = append(out, d)
		}
	}
	return out
}

// pickRecovery chooses the least-loaded untried survivor (ties by lowest
// id), preferring alive devices over stalled ones; nil when quorum is
// below MinAlive or no candidate remains.
func (c *Cluster) pickRecovery(tried map[int]bool) *node {
	if c.alive() < c.cfg.MinAlive {
		return nil
	}
	var best *node
	better := func(a, b *node) bool {
		if a.state != b.state {
			return a.state == Alive
		}
		if a.busy != b.busy {
			return a.busy < b.busy
		}
		return a.id < b.id
	}
	for _, nd := range c.nodes {
		if nd.state == Dead || tried[nd.id] {
			continue
		}
		if best == nil || better(nd, best) {
			best = nd
		}
	}
	return best
}

// finishReport freezes the per-device stats and cluster totals.
func (c *Cluster) finishReport() {
	makespan := c.now
	for _, nd := range c.nodes {
		if nd.freeAt > makespan {
			makespan = nd.freeAt
		}
		c.rep.PerDevice = append(c.rep.PerDevice, DeviceReport{
			ID: nd.id, State: nd.state, Jobs: nd.jobs, BusyCycles: nd.busy,
		})
	}
	c.rep.MakespanCycles = makespan
	c.rep.LostJobs = append([]int(nil), c.lost...)
	c.rep.Coverage = float64(c.rep.Completed) / float64(c.cfg.Jobs)
	writes := c.pool.Stats().NVMLineWrites
	for _, nd := range c.nodes {
		writes += nd.mem.Stats().NVMLineWrites
	}
	c.rep.NVMLineWrites = writes
	if c.cfg.Replicas > 1 && c.rep.Completed > 0 {
		// Mean alive copies per completed shard, as a fraction of the
		// configured replica count (capped at 1 per shard).
		var sum float64
		for j := 0; j < c.cfg.Jobs; j++ {
			if !c.done[j] {
				continue
			}
			alive := c.aliveHolders(j)
			if alive > c.cfg.Replicas {
				alive = c.cfg.Replicas
			}
			sum += float64(alive) / float64(c.cfg.Replicas)
		}
		c.rep.ReplicaCoverage = sum / float64(c.rep.Completed)
	}
}

// Verify audits the shared pool: every completed job's shard must hold
// the expected fill values bit-exactly. Lost (fenced) shards are
// excluded — that exclusion is exactly the degraded-mode contract.
func (c *Cluster) Verify() error {
	img := c.pool.NVMImage()
	wordsPerJob := c.jobBytes() / 4
	for j := 0; j < c.cfg.Jobs; j++ {
		if !c.done[j] {
			continue
		}
		for w := 0; w < wordsPerJob; w++ {
			gid := j*wordsPerJob + w
			addr := c.jobAddr(j) + uint64(w*4)
			if got := memsim.ImageU32(img, addr); got != c.Word(gid) {
				return fmt.Errorf("cluster: pool image diverges at job %d word %d (addr %#x): got %#x want %#x",
					j, w, addr, got, c.Word(gid))
			}
		}
	}
	return nil
}
