package cluster

import (
	"encoding/json"
	"fmt"

	"gpulp/internal/core"
)

// FailureKind is a device-failure shape the seeded injector can arm.
type FailureKind int

const (
	// FailStop kills the device instantly mid-launch: its cache is
	// dropped (the NVM image stays harvestable) and the device never
	// responds again. Detected at the moment of the crash.
	FailStop FailureKind = iota
	// Hang stops the device's forward progress mid-launch without killing
	// it; the control plane detects the silence when the per-device
	// heartbeat stream stays quiet past HeartbeatTimeout, then fences the
	// device out for good.
	Hang
	// TransientStall is Hang followed by a rejoin: the device comes back
	// RejoinCycles after detection and is routable again, but its
	// in-flight job has already been failed over.
	TransientStall
	numFailureKinds
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case FailStop:
		return "fail-stop"
	case Hang:
		return "hang"
	case TransientStall:
		return "transient-stall"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// AllFailureKinds returns every failure kind.
func AllFailureKinds() []FailureKind {
	out := make([]FailureKind, numFailureKinds)
	for i := range out {
		out[i] = FailureKind(i)
	}
	return out
}

// ParseFailureKind parses a FailureKind's String form.
func ParseFailureKind(s string) (FailureKind, error) {
	for _, k := range AllFailureKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown failure kind %q", s)
}

// MarshalJSON writes the readable String form.
func (k FailureKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the String form or the numeric constant.
func (k *FailureKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParseFailureKind(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var i int
	if err := json.Unmarshal(b, &i); err != nil {
		return fmt.Errorf("cluster: failure kind must be a name or number: %s", b)
	}
	if i < 0 || i >= int(numFailureKinds) {
		return fmt.Errorf("cluster: failure kind %d out of range", i)
	}
	*k = FailureKind(i)
	return nil
}

// FailurePlan arms one injected device failure: whichever device the
// router hands job Job is failed after AfterBlocks of that launch have
// retired. Plans are keyed by job, not device, so a sweep exercises every
// router without re-deriving which device dies.
type FailurePlan struct {
	// Job is the launch to kill (0..Jobs-1).
	Job int `json:"job"`
	// Kind is the failure shape.
	Kind FailureKind `json:"kind"`
	// AfterBlocks is how many of the job's blocks retire before the
	// failure hits (default 1; at most BlocksPerJob).
	AfterBlocks int `json:"after_blocks"`
	// RejoinCycles, for TransientStall, is the delay after detection
	// before the device is routable again (default 4 × HeartbeatTimeout).
	RejoinCycles int64 `json:"rejoin_cycles,omitempty"`
}

// DeviceState is a device's liveness from the control plane's view.
type DeviceState int

const (
	// Alive devices accept jobs.
	Alive DeviceState = iota
	// Stalled devices are silent but will rejoin at a known cycle.
	Stalled
	// Dead devices are fenced out for good.
	Dead
)

// String implements fmt.Stringer.
func (s DeviceState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Stalled:
		return "stalled"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("DeviceState(%d)", int(s))
}

// MarshalJSON writes the readable String form.
func (s DeviceState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// DegradedClusterError is the typed graceful-degradation outcome of a
// cluster run: every completed job's shard of the shared durable image
// is valid and published, but the listed jobs were lost — their failover
// budget was exhausted, or quorum dropped below MinAlive before they
// could run. Lost shards stay write-fenced in the pool. It wraps
// core.ErrDegraded so cluster callers share the single-device degraded
// taxonomy (errors.Is(err, core.ErrDegraded) holds).
type DegradedClusterError struct {
	// Coverage is completed jobs over total jobs (0..1).
	Coverage float64
	// LostJobs lists the unrecovered job indices in ascending order.
	LostJobs []int
	// LostBlocks is the total thread-block count behind the lost jobs.
	LostBlocks int
	// DeadDevices lists the devices that were fenced out, ascending.
	DeadDevices []int
}

// Error implements error.
func (e *DegradedClusterError) Error() string {
	return fmt.Sprintf("cluster: degraded completion: %d jobs lost (%d blocks, coverage %.4f, %d devices dead): %v",
		len(e.LostJobs), e.LostBlocks, e.Coverage, len(e.DeadDevices), core.ErrDegraded)
}

// Unwrap ties every DegradedClusterError to the core.ErrDegraded
// sentinel.
func (e *DegradedClusterError) Unwrap() error { return core.ErrDegraded }

// Is makes errors.Is(err, core.ErrDegraded) hold even when a wrapper
// hides the Unwrap chain, consistently with core.DegradedError.
func (e *DegradedClusterError) Is(target error) bool { return target == core.ErrDegraded }
