package cluster

import (
	"encoding/json"
	"fmt"
)

// RouterKind selects one of the built-in dispatch policies.
type RouterKind int

const (
	// RoundRobin cycles job dispatch over the routable devices in id
	// order — the baseline load spreader.
	RoundRobin RouterKind = iota
	// LeastLoaded dispatches each job to the device with the fewest
	// accumulated busy cycles (ties broken by lowest id).
	LeastLoaded
	// RegionAffinity dispatches each job to its shard owner
	// (job % devices) while the owner is routable, falling back to the
	// next routable id — the placement that keeps a shard's durable bytes
	// on one device until that device is lost.
	RegionAffinity
	numRouters
)

// String implements fmt.Stringer.
func (k RouterKind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case RegionAffinity:
		return "region-affinity"
	}
	return fmt.Sprintf("RouterKind(%d)", int(k))
}

// AllRouters returns every built-in router kind.
func AllRouters() []RouterKind {
	out := make([]RouterKind, numRouters)
	for i := range out {
		out[i] = RouterKind(i)
	}
	return out
}

// ParseRouterKind parses a RouterKind's String form.
func ParseRouterKind(s string) (RouterKind, error) {
	for _, k := range AllRouters() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router kind %q", s)
}

// MarshalJSON writes the readable String form.
func (k RouterKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the String form or the numeric constant.
func (k *RouterKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParseRouterKind(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var i int
	if err := json.Unmarshal(b, &i); err != nil {
		return fmt.Errorf("cluster: router kind must be a name or number: %s", b)
	}
	if i < 0 || i >= int(numRouters) {
		return fmt.Errorf("cluster: router kind %d out of range", i)
	}
	*k = RouterKind(i)
	return nil
}

// DeviceView is the router-visible state of one routable device.
type DeviceView struct {
	// ID is the device identity (0..Devices-1).
	ID int
	// AvailableAt is the earliest simulated cycle the device could start
	// a new job (its queue drain time, or its rejoin time when stalled).
	AvailableAt int64
	// BusyCycles is the device's accumulated execution time.
	BusyCycles int64
	// Jobs is the number of launches the device has run.
	Jobs int
}

// Router is a pluggable dispatch policy. Pick chooses one of the
// candidate devices (non-empty, ascending ID) for a job whose shard
// owner is owner, returning the chosen device's ID. Implementations must
// be deterministic functions of their inputs and internal state — the
// cluster's bit-identical-at-any-Workers contract extends to routing.
type Router interface {
	Name() string
	Pick(job, owner int, candidates []DeviceView) int
}

// newRouter builds the built-in router for k.
func newRouter(k RouterKind) Router {
	switch k {
	case RoundRobin:
		return &roundRobinRouter{last: -1}
	case LeastLoaded:
		return leastLoadedRouter{}
	case RegionAffinity:
		return affinityRouter{}
	}
	panic(fmt.Sprintf("cluster: no built-in router for %v", k))
}

type roundRobinRouter struct{ last int }

func (r *roundRobinRouter) Name() string { return RoundRobin.String() }

func (r *roundRobinRouter) Pick(job, owner int, cands []DeviceView) int {
	pick := cands[0].ID
	for _, c := range cands {
		if c.ID > r.last {
			pick = c.ID
			break
		}
	}
	r.last = pick
	return pick
}

type leastLoadedRouter struct{}

func (leastLoadedRouter) Name() string { return LeastLoaded.String() }

func (leastLoadedRouter) Pick(job, owner int, cands []DeviceView) int {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.BusyCycles < best.BusyCycles {
			best = c
		}
	}
	return best.ID
}

type affinityRouter struct{}

func (affinityRouter) Name() string { return RegionAffinity.String() }

func (affinityRouter) Pick(job, owner int, cands []DeviceView) int {
	for _, c := range cands {
		if c.ID == owner {
			return c.ID
		}
	}
	// Owner lost: next routable id after the owner, cyclically.
	for _, c := range cands {
		if c.ID > owner {
			return c.ID
		}
	}
	return cands[0].ID
}
