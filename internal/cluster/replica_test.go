package cluster

import (
	"encoding/json"
	"errors"
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/pmodel"
)

// replicaConfig is testConfig with two copies of every shard.
func replicaConfig() Config {
	cfg := testConfig()
	cfg.Replicas = 2
	return cfg
}

// TestReplicatedAdoptionEachModelEachKind is the quorum-harvest
// acceptance core: with R=2, every single-device failure under every
// persistency model must recover by adopting a consistent surviving
// replica — zero re-executions, zero failover attempts — and the pool
// must audit bit-exactly.
func TestReplicatedAdoptionEachModelEachKind(t *testing.T) {
	for _, model := range pmodel.Names() {
		for _, kind := range AllFailureKinds() {
			t.Run(model+"/"+kind.String(), func(t *testing.T) {
				cfg := replicaConfig()
				cfg.Model = model
				cfg.Failures = []FailurePlan{{Job: 2, Kind: kind, AfterBlocks: 1}}
				cl := MustNew(cfg)
				rep, err := cl.Run()
				if err != nil {
					t.Fatalf("run errored: %v", err)
				}
				if rep.Completed != cfg.Jobs {
					t.Fatalf("completed %d/%d, lost %v", rep.Completed, cfg.Jobs, rep.LostJobs)
				}
				if rep.Adopted != 1 {
					t.Fatalf("Adopted = %d, want 1", rep.Adopted)
				}
				if rep.Failovers != 0 || rep.FailedOver != 0 || rep.ReexecutedBlocks != 0 {
					t.Fatalf("adoption must not re-execute: failovers=%d failedOver=%d reexec=%d",
						rep.Failovers, rep.FailedOver, rep.ReexecutedBlocks)
				}
				if err := cl.Verify(); err != nil {
					t.Fatalf("pool audit after adoption: %v", err)
				}
			})
		}
	}
}

// TestReplicatedCleanRun: replication without failures launches R-1
// replicas per job, keeps full replica coverage, and stays bit-exact.
func TestReplicatedCleanRun(t *testing.T) {
	cfg := replicaConfig()
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("clean replicated run errored: %v", err)
	}
	if rep.ReplicaLaunches != cfg.Jobs*(cfg.Replicas-1) {
		t.Fatalf("ReplicaLaunches = %d, want %d", rep.ReplicaLaunches, cfg.Jobs*(cfg.Replicas-1))
	}
	if rep.ReplicaCoverage != 1 {
		t.Fatalf("ReplicaCoverage = %v, want 1 with no failures", rep.ReplicaCoverage)
	}
	if rep.UnderReplicated != 0 || rep.Adopted != 0 {
		t.Fatalf("clean run reported underReplicated=%d adopted=%d", rep.UnderReplicated, rep.Adopted)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit: %v", err)
	}
}

// TestReplicaWriteAmplification: R=2 must write measurably more NVM
// lines than R=1 — the cost side of the availability trade.
func TestReplicaWriteAmplification(t *testing.T) {
	run := func(r int) int64 {
		cfg := testConfig()
		cfg.Replicas = r
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatalf("R=%d run errored: %v", r, err)
		}
		return rep.NVMLineWrites
	}
	r1, r2 := run(1), run(2)
	if r2 <= r1 {
		t.Fatalf("NVM line writes must grow with replication: R=1 %d, R=2 %d", r1, r2)
	}
}

// TestReplicaOneMatchesDefault: an explicit Replicas=1 configuration is
// byte-identical — report JSON and pool image — to the zero-value
// (legacy) configuration it defaults from.
func TestReplicaOneMatchesDefault(t *testing.T) {
	run := func(mutate func(*Config)) (string, []byte) {
		cfg := testConfig()
		cfg.Failures = []FailurePlan{{Job: 2, Kind: FailStop, AfterBlocks: 1}}
		mutate(&cfg)
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatalf("run errored: %v", err)
		}
		if err := cl.Verify(); err != nil {
			t.Fatalf("pool audit: %v", err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(js), cl.Pool().NVMImage()
	}
	legacyJS, legacyImg := run(func(*Config) {})
	explicitJS, explicitImg := run(func(cfg *Config) {
		cfg.Replicas = 1
		cfg.Model = "lp"
		cfg.Placer = Spread
	})
	if legacyJS != explicitJS {
		t.Fatalf("explicit R=1 report diverged from legacy:\n%s\nvs\n%s", explicitJS, legacyJS)
	}
	if string(legacyImg) != string(explicitImg) {
		t.Fatal("explicit R=1 pool image diverged from legacy")
	}
}

// emptyPlacer denies every replica placement, forcing holders to stay
// empty so failover must take the legacy re-execute path.
type emptyPlacer struct{}

func (emptyPlacer) Name() string                                              { return "empty" }
func (emptyPlacer) Replicas(job, owner, primary, n int, _ []DeviceView) []int { return nil }

// TestReplicatedFallbackToReexec: when no replica passes its model's
// contract (here: none exist), failover falls back to the existing
// harvest/re-execute path and still recovers bit-exactly.
func TestReplicatedFallbackToReexec(t *testing.T) {
	cfg := replicaConfig()
	cfg.CustomPlacer = emptyPlacer{}
	cfg.Failures = []FailurePlan{{Job: 2, Kind: FailStop, AfterBlocks: 1}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if rep.Adopted != 0 || rep.FailedOver != 1 {
		t.Fatalf("fallback run: adopted=%d failedOver=%d, want 0/1", rep.Adopted, rep.FailedOver)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit after fallback: %v", err)
	}
}

// TestReplicatedRebalanceOnRejoin: a transiently stalled device that
// rejoins must receive bounded shard copy-ins restoring replication,
// with the destination fenced during each copy (the copy itself must
// not trip the fence — it is host work).
func TestReplicatedRebalanceOnRejoin(t *testing.T) {
	cfg := replicaConfig()
	cfg.RebalanceBudget = 1
	cfg.Failures = []FailurePlan{{Job: 1, Kind: TransientStall, AfterBlocks: 1, RejoinCycles: 1}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("run errored: %v", err)
	}
	if rep.Rejoins == 0 {
		t.Fatal("stalled device never rejoined")
	}
	if rep.RebalancedShards == 0 {
		t.Fatal("rejoin must trigger rebalancing of under-replicated shards")
	}
	if rep.RebalancedShards > cfg.RebalanceBudget*rep.Rejoins {
		t.Fatalf("rebalanced %d shards over %d rejoins exceeds budget %d",
			rep.RebalancedShards, rep.Rejoins, cfg.RebalanceBudget)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("pool audit after rebalance: %v", err)
	}
}

// TestPlacerPolicies pins the deterministic placements of the built-in
// placers.
func TestPlacerPolicies(t *testing.T) {
	cands := []DeviceView{{ID: 0}, {ID: 2}, {ID: 3}} // device 1 is the primary
	got := newPlacer(Spread).Replicas(5, 3, 1, 2, cands)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("spread placed %v, want [2 3]", got)
	}
	got = newPlacer(Affinity).Replicas(5, 3, 1, 2, cands)
	if len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("affinity placed %v, want [3 0]", got)
	}
	if n := len(newPlacer(Spread).Replicas(0, 0, 0, 5, cands)); n != 3 {
		t.Fatalf("placer must cap at candidate count, got %d", n)
	}
	for _, k := range AllPlacers() {
		if _, err := ParsePlacerKind(k.String()); err != nil {
			t.Fatalf("placer %v does not round-trip: %v", k, err)
		}
	}
}

// TestClusterFailoverDisabled: MaxFailovers=FailoverDisabled gives
// failover a zero budget — the lost job degrades immediately with the
// full typed unwrap chain, and zero attempts are recorded.
func TestClusterFailoverDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.MaxFailovers = FailoverDisabled
	cfg.Failures = []FailurePlan{{Job: 2, Kind: FailStop, AfterBlocks: 1}}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err == nil {
		t.Fatal("zero failover budget must degrade, got nil error")
	}
	var deg *DegradedClusterError
	if !errors.As(err, &deg) {
		t.Fatalf("error is %T, want *DegradedClusterError", err)
	}
	if !errors.Is(err, core.ErrDegraded) || !core.IsTypedRecoveryError(err) {
		t.Fatal("degraded error must keep the typed unwrap chain")
	}
	if rep.Failovers != 0 || rep.FailedOver != 0 {
		t.Fatalf("disabled failover still attempted: failovers=%d failedOver=%d",
			rep.Failovers, rep.FailedOver)
	}
	if len(deg.LostJobs) != 1 || deg.LostJobs[0] != 2 {
		t.Fatalf("lost jobs %v, want [2]", deg.LostJobs)
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("completed shards must stay valid: %v", err)
	}
}

// TestClusterFailoverBudgetDefaults pins the MaxFailovers semantics:
// zero keeps the legacy default, FailoverDisabled means zero budget.
func TestClusterFailoverBudgetDefaults(t *testing.T) {
	var cfg Config
	cfg.withDefaults()
	if cfg.MaxFailovers != 3 {
		t.Fatalf("zero-value MaxFailovers defaults to %d, want 3", cfg.MaxFailovers)
	}
	cfg = Config{MaxFailovers: FailoverDisabled}
	cfg.withDefaults()
	if cfg.MaxFailovers != 0 {
		t.Fatalf("FailoverDisabled resolves to %d, want 0", cfg.MaxFailovers)
	}
}

// TestClusterAllDevicesFail: every device dying must end in honest
// degradation — dead devices enumerated, undispatched jobs fenced as
// lost, completed shards still bit-exact.
func TestClusterAllDevicesFail(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 2
	cfg.Failures = []FailurePlan{
		{Job: 1, Kind: FailStop, AfterBlocks: 1},
		{Job: 2, Kind: FailStop, AfterBlocks: 1},
	}
	cl := MustNew(cfg)
	rep, err := cl.Run()
	if err == nil {
		t.Fatal("losing every device must degrade, got nil error")
	}
	var deg *DegradedClusterError
	if !errors.As(err, &deg) {
		t.Fatalf("error is %T, want *DegradedClusterError", err)
	}
	if !errors.Is(err, core.ErrDegraded) || !core.IsTypedRecoveryError(err) {
		t.Fatal("degraded error must keep the typed unwrap chain")
	}
	if len(deg.DeadDevices) != cfg.Devices {
		t.Fatalf("dead devices %v, want all %d", deg.DeadDevices, cfg.Devices)
	}
	if rep.Completed+len(deg.LostJobs) != cfg.Jobs {
		t.Fatalf("completed %d + lost %d != jobs %d", rep.Completed, len(deg.LostJobs), cfg.Jobs)
	}
	if len(cl.Pool().Fences()) != len(deg.LostJobs) {
		t.Fatalf("%d lost jobs but %d fenced shards", len(deg.LostJobs), len(cl.Pool().Fences()))
	}
	if err := cl.Verify(); err != nil {
		t.Fatalf("completed shards must stay valid: %v", err)
	}
}

// TestReplicatedDeterministicReport: a replicated failover run is a pure
// function of its Config.
func TestReplicatedDeterministicReport(t *testing.T) {
	run := func() string {
		cfg := replicaConfig()
		cfg.Model = "sbrp"
		cfg.Placer = Affinity
		cfg.Failures = []FailurePlan{{Job: 3, Kind: Hang, AfterBlocks: 1}}
		cl := MustNew(cfg)
		rep, err := cl.Run()
		if err != nil {
			t.Fatalf("run errored: %v", err)
		}
		js, _ := json.Marshal(rep)
		return string(js) + string(cl.Pool().NVMImage())
	}
	if run() != run() {
		t.Fatal("replicated cluster run is not deterministic")
	}
}
