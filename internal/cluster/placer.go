package cluster

import (
	"encoding/json"
	"fmt"
)

// PlacerKind selects one of the built-in replica placement policies.
type PlacerKind int

const (
	// Spread places replicas on the devices cyclically following the
	// primary in id order — maximum dispersion of a shard's copies.
	Spread PlacerKind = iota
	// Affinity places replicas on the devices cyclically following the
	// shard owner (job % devices) in id order, so a shard's copies
	// cluster around its affinity home regardless of where routing
	// landed the primary.
	Affinity
	numPlacers
)

// String implements fmt.Stringer.
func (k PlacerKind) String() string {
	switch k {
	case Spread:
		return "spread"
	case Affinity:
		return "affinity"
	}
	return fmt.Sprintf("PlacerKind(%d)", int(k))
}

// AllPlacers returns every built-in placer kind.
func AllPlacers() []PlacerKind {
	out := make([]PlacerKind, numPlacers)
	for i := range out {
		out[i] = PlacerKind(i)
	}
	return out
}

// ParsePlacerKind parses a PlacerKind's String form.
func ParsePlacerKind(s string) (PlacerKind, error) {
	for _, k := range AllPlacers() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown placer kind %q", s)
}

// MarshalJSON writes the readable String form.
func (k PlacerKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the String form or the numeric constant.
func (k *PlacerKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		kk, err := ParsePlacerKind(s)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	var i int
	if err := json.Unmarshal(b, &i); err != nil {
		return fmt.Errorf("cluster: placer kind must be a name or number: %s", b)
	}
	if i < 0 || i >= int(numPlacers) {
		return fmt.Errorf("cluster: placer kind %d out of range", i)
	}
	*k = PlacerKind(i)
	return nil
}

// Placer is a pluggable replica placement policy. Replicas chooses n
// distinct replica devices for a job whose shard owner is owner and
// whose primary launch landed on primary, from the candidate devices
// (non-empty, ascending ID, primary excluded). Implementations must be
// deterministic functions of their inputs — the cluster's
// bit-identical-at-any-Workers contract extends to placement.
type Placer interface {
	Name() string
	Replicas(job, owner, primary, n int, candidates []DeviceView) []int
}

// newPlacer builds the built-in placer for k.
func newPlacer(k PlacerKind) Placer {
	switch k {
	case Spread:
		return spreadPlacer{}
	case Affinity:
		return affinityPlacer{}
	}
	panic(fmt.Sprintf("cluster: no built-in placer for %v", k))
}

// pickAfter returns up to n candidate ids cyclically following anchor in
// ascending id order — the shared kernel of both built-in placements.
func pickAfter(anchor, n int, cands []DeviceView) []int {
	if n <= 0 {
		return nil
	}
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, 0, n)
	for _, c := range cands {
		if c.ID > anchor {
			out = append(out, c.ID)
			if len(out) == n {
				return out
			}
		}
	}
	for _, c := range cands {
		if c.ID <= anchor {
			out = append(out, c.ID)
			if len(out) == n {
				return out
			}
		}
	}
	return out
}

type spreadPlacer struct{}

func (spreadPlacer) Name() string { return Spread.String() }

func (spreadPlacer) Replicas(job, owner, primary, n int, cands []DeviceView) []int {
	return pickAfter(primary, n, cands)
}

type affinityPlacer struct{}

func (affinityPlacer) Name() string { return Affinity.String() }

func (affinityPlacer) Replicas(job, owner, primary, n int, cands []DeviceView) []int {
	// The owner itself leads the chain when it is not already the
	// primary: anchor just below it.
	return pickAfter(owner-1, n, cands)
}
