package pmodel

import (
	"gpulp/internal/ep"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// epModel adapts the Eager Persistency baseline (internal/ep) to the
// Model contract. The instrumented kernel is ep.Wrap's redo-log +
// clwb + persist-barrier pipeline, unchanged; damage prediction reads
// the per-block commit flags from the durable image; recovery replays
// committed logs and selectively re-executes uncommitted blocks.
type epModel struct {
	dev    *gpusim.Device
	e      *ep.EP
	name   string
	grid   gpusim.Dim3
	blk    gpusim.Dim3
	kernel gpusim.KernelFunc
}

func newEP(dev *gpusim.Device, w Workload, opt Options) Model {
	grid, blk := w.Geometry()
	entries := opt.EPEntries
	if entries <= 0 {
		// Four logged stores per thread covers every Table I kernel.
		entries = blk.Size() * 4
	}
	e := ep.New(dev, grid, blk, entries)
	return &epModel{
		dev:    dev,
		e:      e,
		name:   w.Name(),
		grid:   grid,
		blk:    blk,
		kernel: e.Wrap(w.Kernel(nil), w.Outputs()...),
	}
}

func (m *epModel) Name() string                     { return "ep" }
func (m *epModel) Kernel() gpusim.KernelFunc        { return m.kernel }
func (m *epModel) MetadataBytes() int64             { return m.e.LogBytes() + int64(m.grid.Size())*8 }
func (m *epModel) MetadataRegions() []memsim.Region { return m.e.MetadataRegions() }

// PredictDamage names the blocks whose commit flag never persisted —
// exactly the set Recover must re-execute. Committed blocks are never
// damage: their redo log is durable by construction (flushed and fenced
// before the flag), so replay restores them without re-execution.
func (m *epModel) PredictDamage(img []byte) []int {
	var damaged []int
	for blk, committed := range m.e.ImageCommitted(img) {
		if !committed {
			damaged = append(damaged, blk)
		}
	}
	return damaged
}

// ReplayBlocks implements ShardReplayer: EP never writes data lines
// back eagerly, so a committed block's data exists only in its durable
// redo log until replayed.
func (m *epModel) ReplayBlocks(blocks []int) int { return m.e.ReplayBlocks(blocks) }

func (m *epModel) Recover() (Report, error) {
	rep := m.e.Recover()
	out := Report{
		Damaged:  rep.Uncommitted,
		Replayed: rep.Replayed,
		Tier:     "replay+reexec",
	}
	if len(rep.Uncommitted) > 0 {
		res := m.dev.LaunchSelected(m.name+"-reexec", m.grid, m.blk, m.kernel, rep.Uncommitted)
		out.Cycles = res.Cycles
	}
	return out, nil
}
