// Package pmodel defines the PersistencyModel contract: one interface
// behind which every persistency design the repo simulates — Lazy
// Persistency's checksums (internal/core), Eager Persistency's redo log
// (internal/ep), scoped buffered release persistency (SBRP), and strict
// persistency — presents the same three faces:
//
//   - an instrumented kernel: the workload's body with the model's
//     persist-ordering machinery (store hooks, line flushes, persist
//     barriers, block-boundary commits) wrapped around it;
//   - a durable-state contract: PredictDamage inspects a raw durable
//     image (memsim.NVMImage or the crash-consistency oracle's shadow)
//     and names the damage recovery must find — without touching the
//     device. The persistcheck oracle holds each model to exactly this
//     prediction;
//   - a recovery entry: Recover repairs the durable state after a crash
//     and reports what it repaired, in the same units PredictDamage
//     speaks.
//
// Models register themselves in a name registry (see registry.go), so
// the harness, fault campaigns, the model checker and the CLI tools
// sweep "every registered model" instead of hard-coding the LP-vs-EP
// duality.
package pmodel

import (
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Workload is the slice of a benchmark a persistency model binds to.
// kernels.Workload satisfies it structurally; pmodel deliberately does
// not import the kernels package so faultsim and the harness can layer
// on top without cycles.
type Workload interface {
	// Name returns the benchmark's short name.
	Name() string
	// Geometry returns the launch dimensions.
	Geometry() (grid, block gpusim.Dim3)
	// Kernel returns the kernel body; nil runs it bare, an LP runtime
	// adds the paper's inline checksum instrumentation.
	Kernel(lp *core.LP) gpusim.KernelFunc
	// Recompute returns the LP crash-validation refold.
	Recompute() core.RecomputeFunc
	// Outputs lists the persistent output regions the model protects.
	Outputs() []memsim.Region
}

// Report is the uniform recovery summary every model returns.
type Report struct {
	// Damaged lists the damage units recovery repaired — the model's
	// own granularity (LP: checksum regions, which equal thread blocks
	// at the default fusion; EP/SBRP/strict: thread blocks). A model's
	// PredictDamage must name exactly this set from the durable image
	// alone; the persistcheck oracle enforces the equality.
	Damaged []int `json:"damaged,omitempty"`
	// Replayed counts redo-log records applied (EP only).
	Replayed int `json:"replayed,omitempty"`
	// Tier names the mechanism recovery used ("selective", "full-grid",
	// "checkpoint", "replay+reexec", "release-reexec").
	Tier string `json:"tier"`
	// Cycles is the simulated recovery cost (validation + repair).
	Cycles int64 `json:"cycles"`
}

// Model is one persistency model bound to a device and one workload
// geometry. Construction (Spec.New) happens after Workload.Setup and
// allocates the model's durable metadata — checksum store, redo log, or
// release flags — on the device.
type Model interface {
	// Name returns the registry name ("lp", "ep", "sbrp", "strict").
	Name() string
	// Kernel returns the instrumented kernel: the workload body with
	// the model's persist-ordering hooks around stores, fences, and the
	// kernel boundary. Launch it with the workload's geometry.
	Kernel() gpusim.KernelFunc
	// MetadataBytes is the durable metadata footprint (the model's
	// space overhead).
	MetadataBytes() int64
	// MetadataRegions lists the metadata regions (fault-injection and
	// oracle targets).
	MetadataRegions() []memsim.Region
	// PredictDamage reads a raw durable image and returns, in ascending
	// order, the damage units the model's own recovery must repair —
	// the durable-state contract, decided without the device.
	PredictDamage(img []byte) []int
	// Recover repairs durable state after a crash. On success the
	// workload's outputs (after any finalizer and a flush) must equal a
	// fault-free run's; unrecoverable damage surfaces as a typed error
	// (core.IsTypedRecoveryError).
	Recover() (Report, error)
}

// Epocher is implemented by models with epoch-salted metadata (LP's
// checksum salt); other models ignore epochs.
type Epocher interface {
	SetEpoch(epoch uint64)
}

// Options carries per-model tuning. The zero value works for every
// model.
type Options struct {
	// LP is the Lazy Persistency design point (nil = core.DefaultConfig).
	LP *core.Config
	// MaxRounds bounds LP's selective-recovery escalation (<=0 = 3).
	MaxRounds int
	// Checkpoint captures a durable checkpoint at bind time, arming
	// LP's tier-3 restore.
	Checkpoint bool
	// EPEntries is EP's per-block redo-log capacity (<=0 = 4 entries
	// per thread, enough for every Table I kernel).
	EPEntries int
	// SBRPBuffer is SBRP's per-scope persist-buffer capacity in cache
	// lines (<=0 = 8, the bounded hardware buffer the model posits).
	SBRPBuffer int
}

func (o Options) lpConfig() core.Config {
	if o.LP != nil {
		return *o.LP
	}
	return core.DefaultConfig()
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 3
	}
	return o.MaxRounds
}
