package pmodel

import (
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// strictModel is strict persistency: every protected store is flushed
// and fenced in program order, so the durable image trails execution by
// at most one store. It is the slow, simple end of the spectrum — no
// metadata beyond a release flag, no buffering, and a full NVM-write
// stall on every store — the baseline the other three models are
// measured against.
type strictModel struct {
	*flagModel
}

func newStrict(dev *gpusim.Device, w Workload, opt Options) Model {
	m := &strictModel{flagModel: newFlagModel(dev, w, "strict")}
	m.kernel = m.wrap(w.Kernel(nil), w.Outputs()...)
	return m
}

func (m *strictModel) Name() string { return "strict" }

func (m *strictModel) wrap(kernel gpusim.KernelFunc, protected ...memsim.Region) gpusim.KernelFunc {
	if kernel == nil {
		panic("pmodel: strict wraps a nil kernel")
	}
	if len(protected) == 0 {
		panic("pmodel: strict needs at least one protected region")
	}
	return func(b *gpusim.Block) {
		prev := b.SetStoreHook(func(t *gpusim.Thread, reg memsim.Region, elemIdx int, bits uint32) {
			for _, p := range protected {
				if p.Base == reg.Base {
					// Program-order durability: the store's line goes to
					// NVM and the thread waits for it before continuing.
					t.FlushLine(reg, elemIdx*4)
					t.PersistBarrier()
					return
				}
			}
		})
		kernel(b)
		b.SetStoreHook(prev)
		m.release(b)
	}
}
