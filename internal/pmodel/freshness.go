// Freshness contracts for replica adoption: the cluster's quorum
// harvest must decide, from a surviving replica's raw NVM image alone,
// whether a shard's blocks are fully persisted there — without
// launching anything on the (possibly dead) device. Flag-based models
// (EP commit flags, SBRP/strict release flags) answer from durable
// metadata; LP answers by refolding the shard's data and comparing
// against the checksum table stored in the same image, exactly the
// judgement PredictDamage makes on the primary after a crash.
package pmodel

import (
	"gpulp/internal/checksum"
	"gpulp/internal/memsim"
)

// BlockFolder replays one block's durable data from a raw NVM image,
// feeding every stored bit pattern to emit in the kernel's deterministic
// thread order. The workload owner supplies one so LP can refold a
// replica's checksums host-side.
type BlockFolder func(img []byte, block int, emit func(bits uint32))

// ImageJudge is implemented by models whose durable metadata alone
// certifies a shard: a set commit/release flag means the block's data
// persisted before the flag did (the model's ordering contract).
type ImageJudge interface {
	// ShardIntact reports whether every listed block is durably
	// complete in img.
	ShardIntact(img []byte, blocks []int) bool
}

// DataJudge is implemented by models whose freshness check must refold
// the workload's durable data (LP checksums): each block is replayed
// via the folder and the salted fold compared against the checksum
// table packed into the same image.
type DataJudge interface {
	ShardConsistent(img []byte, blocks []int, replay BlockFolder) bool
}

// ShardReplayer is implemented by models whose durable data lives in a
// log rather than in place (EP): after failover imports a harvested log
// onto a survivor, ReplayBlocks rematerializes the listed blocks' data
// from it before damage is judged. Returns the record count replayed.
type ShardReplayer interface {
	ReplayBlocks(blocks []int) int
}

// ShardIntact accepts the shard when every listed block's release flag
// is durably set. Covers sbrp and strict via embedding.
func (f *flagModel) ShardIntact(img []byte, blocks []int) bool {
	for _, blk := range blocks {
		if memsim.ImageU64(img, f.flags.Base+uint64(blk)*8) == 0 {
			return false
		}
	}
	return true
}

// ShardIntact accepts the shard when every listed block committed AND
// its durable data agrees with its redo log. EP persists the log, not
// the data lines, before the commit flag — a committed block's data may
// still be un-written-back — so the judge replays each durable log
// record against the same image and rejects on any divergence rather
// than trusting the flag alone.
func (m *epModel) ShardIntact(img []byte, blocks []int) bool {
	regions := m.e.MetadataRegions()
	logR, flags := regions[0], regions[1]
	perBlock := int(m.e.LogBytes()) / (m.grid.Size() * 16)
	committed := m.e.ImageCommitted(img)
	for _, blk := range blocks {
		if blk < 0 || blk >= len(committed) || !committed[blk] {
			return false
		}
		// The flag stores entryCount+1; replay each (address, value)
		// record and require the imaged data word to match.
		n := int(memsim.ImageU64(img, flags.Base+uint64(blk)*8)) - 1
		if n < 0 || n > perBlock {
			return false
		}
		seg := uint64(blk * perBlock)
		for i := uint64(0); i < uint64(n); i++ {
			addr := memsim.ImageU64(img, logR.Base+(seg+i)*16)
			val := memsim.ImageU64(img, logR.Base+(seg+i)*16+8)
			if uint64(memsim.ImageU32(img, addr)) != val {
				return false
			}
		}
	}
	return true
}

// ShardConsistent refolds the shard's durable data from img — salting
// each block total with Mix64(epoch, block) exactly as Region.Commit
// does on-device — merges fusion groups, and accepts only when every
// covered LP region's stored checksum matches the refold. A fusion
// group only partially inside the shard cannot be judged from the shard
// alone and is rejected; the caller falls back to re-execution.
func (m *lpModel) ShardConsistent(img []byte, blocks []int, replay BlockFolder) bool {
	cfg := m.lp.Config()
	fusion := m.lp.Fusion()
	grid := m.lp.Grid().Size()
	type group struct {
		st      checksum.State
		covered int
	}
	groups := make(map[int]*group, len(blocks))
	var order []int
	for _, blk := range blocks {
		var st checksum.State
		replay(img, blk, func(bits uint32) {
			switch cfg.Checksum {
			case checksum.Parity:
				st.Par ^= uint64(bits)
			case checksum.Modular:
				st.Mod += uint64(bits)
			default: // Dual
				st.Mod += uint64(bits)
				st.Par ^= uint64(bits)
			}
		})
		salt := checksum.Mix64(m.lp.Epoch(), uint64(blk))
		st.Mod += salt
		st.Par ^= salt
		reg := blk / fusion
		g := groups[reg]
		if g == nil {
			g = &group{}
			groups[reg] = g
			order = append(order, reg)
		}
		g.st.Mod += st.Mod
		g.st.Par ^= st.Par
		g.covered++
	}
	for _, reg := range order {
		size := fusion
		if rem := grid - reg*fusion; rem < size {
			size = rem
		}
		g := groups[reg]
		if g.covered != size {
			return false
		}
		stored, ok := m.lp.Store().ImageLookup(img, uint64(reg))
		if !ok || !stored.Matches(g.st, cfg.Checksum) {
			return false
		}
	}
	return true
}
