package pmodel

import (
	"fmt"
	"strings"

	"gpulp/internal/gpusim"
)

// Spec describes one registered persistency model.
type Spec struct {
	// Name is the registry key, as the CLI -model flags spell it.
	Name string
	// Title is a one-line description for listings and docs.
	Title string
	// New binds the model to a device and a workload whose Setup has
	// already run, allocating its durable metadata.
	New func(dev *gpusim.Device, w Workload, opt Options) Model
}

// registry lists every model in presentation order: the paper's design,
// its §I/§II antagonist, then the two spectrum points between them.
// A slice, not a map: iteration order is part of the determinism
// contract (sweeps and reports follow it).
var registry = []Spec{
	{Name: "lp", Title: "Lazy Persistency: block checksums, no flushes or fences (§II-A)", New: newLP},
	{Name: "ep", Title: "Eager/epoch persistency: redo log + clwb + persist barriers (§I/§II)", New: newEP},
	{Name: "sbrp", Title: "Scoped buffered release persistency: bounded per-scope persist buffer draining at release fences", New: newSBRP},
	{Name: "strict", Title: "Strict persistency: every store flushed and fenced in program order", New: newStrict},
}

// Specs returns every registered model, in registry order.
func Specs() []Spec {
	return append([]Spec(nil), registry...)
}

// Names returns the registered model names, in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// Lookup finds a model by name (case-insensitive, surrounding space
// ignored).
func Lookup(name string) (Spec, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustLookup is Lookup for registered-by-construction names; it panics
// on an unknown one.
func MustLookup(name string) Spec {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("pmodel: unknown persistency model %q", name))
	}
	return s
}

// Parse resolves a -model flag value: a comma-separated list of model
// names, or "all" (also the meaning of an empty string). Names are
// case-insensitive; duplicates collapse to the first occurrence; the
// result preserves the order given. Unknown names error, listing what
// is registered.
func Parse(list string) ([]Spec, error) {
	trimmed := strings.ToLower(strings.TrimSpace(list))
	if trimmed == "" || trimmed == "all" {
		return Specs(), nil
	}
	var out []Spec
	seen := map[string]bool{}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.EqualFold(part, "all") {
			return nil, fmt.Errorf("pmodel: %q mixes \"all\" with explicit model names", list)
		}
		s, ok := Lookup(part)
		if !ok {
			return nil, fmt.Errorf("pmodel: unknown persistency model %q (registered: %s)",
				part, strings.Join(Names(), ", "))
		}
		if seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pmodel: empty model list %q (registered: %s)", list, strings.Join(Names(), ", "))
	}
	return out, nil
}
