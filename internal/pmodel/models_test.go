package pmodel_test

import (
	"bytes"
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/ep"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// newSystem builds the standard test platform: a 256 KiB cache so real
// runs leave genuinely un-persisted lines behind at a crash.
func newSystem(workers int) (*memsim.Memory, *gpusim.Device) {
	mcfg := memsim.DefaultConfig()
	mcfg.CacheBytes = 256 << 10
	mem := memsim.MustNew(mcfg)
	dcfg := gpusim.DefaultConfig()
	dcfg.Workers = workers
	return mem, gpusim.MustNew(dcfg, mem)
}

// goldenOutputs runs the workload bare on a fresh system and returns
// its durable outputs.
func goldenOutputs(t *testing.T, name string) [][]byte {
	t.Helper()
	mem, dev := newSystem(1)
	w := kernels.New(name, 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	dev.Launch(name, grid, blk, w.Kernel(nil))
	if f, ok := w.(kernels.Finalizer); ok {
		n, fg, fb, k := f.FinalizeKernel()
		dev.Launch(n, fg, fb, k)
	}
	mem.FlushAll()
	if err := w.Verify(); err != nil {
		t.Fatalf("golden run of %s is itself wrong: %v", name, err)
	}
	out := make([][]byte, 0, len(w.Outputs()))
	for _, r := range w.Outputs() {
		out = append(out, mem.PeekNVM(r.Base, r.Size))
	}
	return out
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestModelCleanRun drives every registered model through a fault-free
// tmm run: the instrumented kernel must not perturb the computation,
// and after a full flush the durable-image contract must report zero
// damage.
func TestModelCleanRun(t *testing.T) {
	for _, spec := range pmodel.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mem, dev := newSystem(1)
			w := kernels.New("tmm", 1)
			w.Setup(dev)
			grid, blk := w.Geometry()
			m := spec.New(dev, w, pmodel.Options{})
			if m.Name() != spec.Name {
				t.Fatalf("model.Name() = %q, want %q", m.Name(), spec.Name)
			}
			if m.MetadataBytes() <= 0 {
				t.Fatalf("%s: MetadataBytes() = %d, want > 0", spec.Name, m.MetadataBytes())
			}
			if len(m.MetadataRegions()) == 0 {
				t.Fatalf("%s: no metadata regions", spec.Name)
			}
			dev.Launch("tmm", grid, blk, m.Kernel())
			mem.FlushAll()
			if err := w.Verify(); err != nil {
				t.Fatalf("%s: instrumented run is wrong: %v", spec.Name, err)
			}
			if damaged := m.PredictDamage(mem.SnapshotNVM()); len(damaged) != 0 {
				t.Fatalf("%s: clean flushed run predicts damage %v", spec.Name, damaged)
			}
		})
	}
}

// TestModelCrashRecovery is the end-to-end contract: crash tmm halfway
// through the grid, predict the damage set from the raw durable image
// alone, recover, and demand (a) prediction == recovery's report and
// (b) a durable image bit-exact with a fault-free run.
func TestModelCrashRecovery(t *testing.T) {
	golden := goldenOutputs(t, "tmm")
	for _, spec := range pmodel.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mem, dev := newSystem(1)
			w := kernels.New("tmm", 1)
			w.Setup(dev)
			grid, blk := w.Geometry()
			m := spec.New(dev, w, pmodel.Options{})
			dev.SetCrashTrigger(&gpusim.CrashTrigger{
				AfterBlocks: grid.Size() / 2,
				Fire:        func(*gpusim.Device) { mem.Crash() },
			})
			dev.Launch("tmm", grid, blk, m.Kernel())

			predicted := m.PredictDamage(mem.SnapshotNVM())
			rep, err := m.Recover()
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", spec.Name, err)
			}
			if !equalIntSlices(predicted, rep.Damaged) {
				t.Fatalf("%s: PredictDamage = %v but recovery repaired %v — the durable-state contract is broken",
					spec.Name, predicted, rep.Damaged)
			}
			if len(predicted) == 0 {
				t.Fatalf("%s: mid-kernel crash after %d/%d blocks predicted no damage", spec.Name, grid.Size()/2, grid.Size())
			}
			mem.FlushAll()
			for i, r := range w.Outputs() {
				if !bytes.Equal(mem.PeekNVM(r.Base, r.Size), golden[i]) {
					t.Fatalf("%s: recovered image of %s diverges from fault-free golden", spec.Name, r.Name)
				}
			}
		})
	}
}

// TestLPAdapterBitIdentical pins the refactor's central promise: an LP
// run through the pmodel adapter is byte-for-byte the run the core
// package produces directly — same instrumented kernel, same cycles,
// same durable image.
func TestLPAdapterBitIdentical(t *testing.T) {
	memA, devA := newSystem(1)
	wA := kernels.New("tmm", 1)
	wA.Setup(devA)
	grid, blk := wA.Geometry()
	m := pmodel.MustLookup("lp").New(devA, wA, pmodel.Options{})
	resA := devA.Launch("tmm", grid, blk, m.Kernel())

	memB, devB := newSystem(1)
	wB := kernels.New("tmm", 1)
	wB.Setup(devB)
	lp := core.New(devB, core.DefaultConfig(), grid, blk)
	resB := devB.Launch("tmm", grid, blk, wB.Kernel(lp))

	if resA.Cycles != resB.Cycles {
		t.Fatalf("adapter run took %d cycles, direct run %d", resA.Cycles, resB.Cycles)
	}
	if !bytes.Equal(memA.SnapshotNVM(), memB.SnapshotNVM()) {
		t.Fatal("adapter and direct LP runs leave different durable images")
	}
	if _, ok := m.(pmodel.Epocher); !ok {
		t.Fatal("lp model does not implement Epocher")
	}
}

// TestEPAdapterBitIdentical does the same for the EP baseline against
// direct ep.New/Wrap use with the legacy entry sizing.
func TestEPAdapterBitIdentical(t *testing.T) {
	memA, devA := newSystem(1)
	wA := kernels.New("tmm", 1)
	wA.Setup(devA)
	grid, blk := wA.Geometry()
	m := pmodel.MustLookup("ep").New(devA, wA, pmodel.Options{})
	resA := devA.Launch("tmm", grid, blk, m.Kernel())

	memB, devB := newSystem(1)
	wB := kernels.New("tmm", 1)
	wB.Setup(devB)
	e := ep.New(devB, grid, blk, blk.Size()*4)
	resB := devB.Launch("tmm", grid, blk, e.Wrap(wB.Kernel(nil), wB.Outputs()...))

	if resA.Cycles != resB.Cycles {
		t.Fatalf("adapter run took %d cycles, direct run %d", resA.Cycles, resB.Cycles)
	}
	if !bytes.Equal(memA.SnapshotNVM(), memB.SnapshotNVM()) {
		t.Fatal("adapter and direct EP runs leave different durable images")
	}
}

// pingpong is a synthetic workload whose consecutive stores alternate
// between two cache lines per block — the worst case for a bounded
// persist buffer. A one-line SBRP buffer must thrash (evict and
// re-flush the same lines over and over); a two-line buffer coalesces
// everything until the release drain.
type pingpong struct {
	out       memsim.Region
	grid, blk gpusim.Dim3
	lineElems int
}

func newPingpong(dev *gpusim.Device) *pingpong {
	p := &pingpong{
		grid:      gpusim.D1(4),
		blk:       gpusim.D1(16),
		lineElems: dev.Mem().Config().LineSize / 4,
	}
	p.out = dev.Alloc("pingpong.out", p.grid.Size()*2*p.lineElems*4)
	p.out.HostZero()
	return p
}

func (p *pingpong) Name() string                         { return "pingpong" }
func (p *pingpong) Geometry() (gpusim.Dim3, gpusim.Dim3) { return p.grid, p.blk }
func (p *pingpong) Recompute() core.RecomputeFunc        { return nil }
func (p *pingpong) Outputs() []memsim.Region             { return []memsim.Region{p.out} }

func (p *pingpong) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		base := b.LinearIdx * 2 * p.lineElems
		b.ForAll(func(t *gpusim.Thread) {
			// Even threads hit line 0, odd threads line 1, in thread
			// order: 0,1,0,1,... — strict line alternation.
			idx := base + (t.Linear%2)*p.lineElems + t.Linear/2
			t.StoreU32(p.out, idx, uint32(t.GlobalLinear()+1))
		})
	}
}

// TestSBRPBufferSpill forces the persist buffer's eviction path: under
// line-alternating stores a one-line buffer must thrash (strictly more
// NVM line writes than a buffer wide enough to coalesce) and still
// recover bit-exact from a mid-kernel crash.
func TestSBRPBufferSpill(t *testing.T) {
	nvmWrites := func(buffer int) int64 {
		mem, dev := newSystem(1)
		w := newPingpong(dev)
		grid, blk := w.Geometry()
		m := pmodel.MustLookup("sbrp").New(dev, w, pmodel.Options{SBRPBuffer: buffer})
		mem.ResetStats()
		dev.Launch(w.Name(), grid, blk, m.Kernel())
		mem.FlushAll()
		return mem.Stats().NVMLineWrites
	}
	tiny, wide := nvmWrites(1), nvmWrites(2)
	if tiny <= wide {
		t.Fatalf("one-line buffer wrote %d NVM lines, two-line buffer %d — the spill path never ran", tiny, wide)
	}

	golden := goldenOutputs(t, "tmm")
	mem, dev := newSystem(1)
	w := kernels.New("tmm", 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	m := pmodel.MustLookup("sbrp").New(dev, w, pmodel.Options{SBRPBuffer: 1})
	dev.SetCrashTrigger(&gpusim.CrashTrigger{
		AfterBlocks: grid.Size() / 2,
		Fire:        func(*gpusim.Device) { mem.Crash() },
	})
	dev.Launch("tmm", grid, blk, m.Kernel())
	predicted := m.PredictDamage(mem.SnapshotNVM())
	rep, err := m.Recover()
	if err != nil {
		t.Fatalf("sbrp buffer=1 recovery failed: %v", err)
	}
	if !equalIntSlices(predicted, rep.Damaged) {
		t.Fatalf("sbrp buffer=1: PredictDamage = %v, recovery repaired %v", predicted, rep.Damaged)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		if !bytes.Equal(mem.PeekNVM(r.Base, r.Size), golden[i]) {
			t.Fatalf("sbrp buffer=1: recovered image of %s diverges from golden", r.Name)
		}
	}
}

// TestStrictOrdering checks strict persistency's defining property: at
// any crash point, at most the in-flight lines are lost, so even a
// crash with no blocks retired predicts the full grid and recovers.
func TestStrictOrdering(t *testing.T) {
	golden := goldenOutputs(t, "tmm")
	mem, dev := newSystem(1)
	w := kernels.New("tmm", 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	m := pmodel.MustLookup("strict").New(dev, w, pmodel.Options{})
	dev.SetCrashTrigger(&gpusim.CrashTrigger{
		AfterBlocks: 1,
		Fire:        func(*gpusim.Device) { mem.Crash() },
	})
	dev.Launch("tmm", grid, blk, m.Kernel())
	predicted := m.PredictDamage(mem.SnapshotNVM())
	if want := grid.Size() - 1; len(predicted) != want {
		t.Fatalf("strict: crash after 1 block predicts %d damaged blocks, want %d", len(predicted), want)
	}
	rep, err := m.Recover()
	if err != nil {
		t.Fatalf("strict recovery failed: %v", err)
	}
	if !equalIntSlices(predicted, rep.Damaged) {
		t.Fatalf("strict: PredictDamage = %v, recovery repaired %v", predicted, rep.Damaged)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		if !bytes.Equal(mem.PeekNVM(r.Base, r.Size), golden[i]) {
			t.Fatalf("strict: recovered image of %s diverges from golden", r.Name)
		}
	}
}
