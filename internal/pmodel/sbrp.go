package pmodel

import (
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// sbrp.go implements scoped buffered release persistency (SBRP) and the
// flag-model machinery it shares with strict persistency.
//
// SBRP posits a bounded per-scope persist buffer (the scope here is the
// thread block): protected stores enqueue their cache line instead of
// flushing it, repeated stores to a resident line coalesce for free,
// and the buffer only spills — flushing its oldest line — when a new
// line arrives at capacity. The block boundary is the release fence:
// every buffered line drains, a persist barrier orders the drain, and a
// durable per-block release flag publishes the scope. Between LP (no
// flushes at all) and EP (a flushed redo record per store), SBRP pays
// eager-flush cost only for working sets wider than the buffer.

// defaultSBRPBuffer is the persist-buffer capacity in cache lines — the
// small bounded hardware structure the model posits per scope.
const defaultSBRPBuffer = 8

// flagModel is the durable-state + recovery half shared by the models
// whose contract is a per-block release/commit flag (SBRP, strict): a
// block with a durable flag is fully persistent; a block without one
// re-executes. The kernel half differs per model and is supplied by the
// wrapper.
type flagModel struct {
	dev    *gpusim.Device
	name   string
	grid   gpusim.Dim3
	blk    gpusim.Dim3
	flags  memsim.Region
	kernel gpusim.KernelFunc
	tier   string
}

func newFlagModel(dev *gpusim.Device, w Workload, tier string) *flagModel {
	grid, blk := w.Geometry()
	f := &flagModel{
		dev:  dev,
		name: w.Name(),
		grid: grid,
		blk:  blk,
		tier: tier,
	}
	f.flags = dev.Alloc(tier+".flags", grid.Size()*8)
	f.flags.HostZero()
	return f
}

// release publishes thread block b as durable: persist barrier to drain
// any in-flight flushes, a durable release flag, a flush of the flag's
// line, and a second barrier ordering the flag ahead of block retire —
// the same two-fence commit discipline as EP's flag, minus the log.
func (f *flagModel) release(b *gpusim.Block) {
	b.ForAll(func(t *gpusim.Thread) {
		if t.Linear != 0 {
			return
		}
		t.PersistBarrier()
		t.StoreU64K(memsim.AccessLog, f.flags, b.LinearIdx, 1)
		t.FlushLine(f.flags, b.LinearIdx*8)
		t.PersistBarrier()
	})
}

func (f *flagModel) MetadataBytes() int64             { return int64(f.grid.Size()) * 8 }
func (f *flagModel) MetadataRegions() []memsim.Region { return []memsim.Region{f.flags} }
func (f *flagModel) Kernel() gpusim.KernelFunc        { return f.kernel }

// PredictDamage names the blocks whose release flag never persisted.
// A durable flag means every line the block touched was flushed and
// fenced before the flag — released blocks are never damage.
func (f *flagModel) PredictDamage(img []byte) []int {
	var damaged []int
	for blk := 0; blk < f.grid.Size(); blk++ {
		if memsim.ImageU64(img, f.flags.Base+uint64(blk)*8) == 0 {
			damaged = append(damaged, blk)
		}
	}
	return damaged
}

// Recover re-executes the unreleased blocks. Released blocks need
// nothing: their data is already durable.
func (f *flagModel) Recover() (Report, error) {
	var unreleased []int
	for blk := 0; blk < f.grid.Size(); blk++ {
		if f.flags.NVMU64(blk) == 0 {
			unreleased = append(unreleased, blk)
		}
	}
	out := Report{Damaged: unreleased, Tier: f.tier}
	if len(unreleased) > 0 {
		res := f.dev.LaunchSelected(f.name+"-reexec", f.grid, f.blk, f.kernel, unreleased)
		out.Cycles = res.Cycles
	}
	return out, nil
}

// sbrpModel is SBRP proper: flagModel recovery under a buffered kernel.
type sbrpModel struct {
	*flagModel
	lines int
}

func newSBRP(dev *gpusim.Device, w Workload, opt Options) Model {
	lines := opt.SBRPBuffer
	if lines <= 0 {
		lines = defaultSBRPBuffer
	}
	m := &sbrpModel{flagModel: newFlagModel(dev, w, "sbrp"), lines: lines}
	m.kernel = m.wrap(w.Kernel(nil), w.Outputs()...)
	return m
}

func (m *sbrpModel) Name() string { return "sbrp" }

// bufLine is one persist-buffer slot: a line-aligned offset into a
// protected region.
type bufLine struct {
	reg memsim.Region
	off int
}

// wrap instruments a plain kernel with the per-scope persist buffer.
// All buffer state is per-block-invocation (closure locals inside the
// block function), so concurrent speculative blocks never share it.
func (m *sbrpModel) wrap(kernel gpusim.KernelFunc, protected ...memsim.Region) gpusim.KernelFunc {
	if kernel == nil {
		panic("pmodel: sbrp wraps a nil kernel")
	}
	if len(protected) == 0 {
		panic("pmodel: sbrp needs at least one protected region")
	}
	lineSize := m.dev.Mem().Config().LineSize
	return func(b *gpusim.Block) {
		// FIFO of buffered lines plus a residency index; head advances
		// on eviction so the slice is append-only per invocation.
		var fifo []bufLine
		head := 0
		resident := make(map[uint64]bool, m.lines)
		prev := b.SetStoreHook(func(t *gpusim.Thread, reg memsim.Region, elemIdx int, bits uint32) {
			tracked := false
			for _, p := range protected {
				if p.Base == reg.Base {
					tracked = true
					break
				}
			}
			if !tracked {
				return
			}
			off := (elemIdx * 4) / lineSize * lineSize
			key := reg.Base + uint64(off)
			if resident[key] {
				return // coalesced into the buffered line
			}
			if len(fifo)-head == m.lines {
				// Buffer full: spill the oldest line eagerly.
				old := fifo[head]
				head++
				delete(resident, old.reg.Base+uint64(old.off))
				t.FlushLine(old.reg, old.off)
			}
			fifo = append(fifo, bufLine{reg: reg, off: off})
			resident[key] = true
		})
		kernel(b)
		b.SetStoreHook(prev)

		// Release fence: drain the buffer in FIFO order, then publish.
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear != 0 {
				return
			}
			for _, l := range fifo[head:] {
				t.FlushLine(l.reg, l.off)
			}
		})
		m.release(b)
	}
}
