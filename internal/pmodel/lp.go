package pmodel

import (
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// lpModel adapts the Lazy Persistency runtime (internal/core) to the
// Model contract. It is a thin delegation layer: the kernel is the
// workload's own LP-instrumented body (the Listing 2 pattern), damage
// prediction is the checksum store's ImageLookup over the durable
// image, and recovery is the hardened three-tier escalation — exactly
// the machinery the harness and fault campaigns already exercise, so
// runs through the adapter are bit-identical to direct core use.
type lpModel struct {
	lp        *core.LP
	kernel    gpusim.KernelFunc
	recompute core.RecomputeFunc
	ck        *core.Checkpoint
	maxRounds int
}

func newLP(dev *gpusim.Device, w Workload, opt Options) Model {
	grid, blk := w.Geometry()
	cfg := opt.lpConfig()
	lp := core.New(dev, cfg, grid, blk)
	var ck *core.Checkpoint
	if opt.Checkpoint {
		// The durable state right after setup is the restore point of
		// last resort (tier 3).
		ck = core.CaptureCheckpoint(dev.Mem())
	}
	return &lpModel{
		lp:        lp,
		kernel:    w.Kernel(lp),
		recompute: w.Recompute(),
		ck:        ck,
		maxRounds: opt.maxRounds(),
	}
}

func (m *lpModel) Name() string              { return "lp" }
func (m *lpModel) Kernel() gpusim.KernelFunc { return m.kernel }
func (m *lpModel) MetadataBytes() int64      { return m.lp.TableBytes() }
func (m *lpModel) SetEpoch(epoch uint64)     { m.lp.SetEpoch(epoch) }
func (m *lpModel) MetadataRegions() []memsim.Region {
	return m.lp.Store().TableRegions()
}

// LP returns the underlying runtime (epoch control, store statistics).
func (m *lpModel) LP() *core.LP { return m.lp }

// PredictDamage recomputes every region's checksums from durable data
// and compares them against the checksum store as serialized in img:
// regions whose stored entry is missing, torn, or mismatched are the
// ones validation must fail. This is the LP durable-image contract the
// crash-consistency oracle checks.
func (m *lpModel) PredictDamage(img []byte) []int {
	perBlock, _ := m.lp.RecomputeStates(m.recompute)
	cfg := m.lp.Config()
	var damaged []int
	for reg := 0; reg < m.lp.Regions(); reg++ {
		stored, ok := m.lp.Store().ImageLookup(img, uint64(reg))
		if !ok || !stored.Matches(perBlock[reg], cfg.Checksum) {
			damaged = append(damaged, reg)
		}
	}
	return damaged
}

func (m *lpModel) Recover() (Report, error) {
	// The first validation names the damage set; hardened recovery then
	// escalates until a round validates clean (or gives up typedly).
	failed, vres, err := m.lp.Validate(m.recompute)
	if err != nil {
		return Report{Tier: core.TierSelective.String(), Cycles: vres.Cycles}, err
	}
	rep, rerr := m.lp.RecoverHardened(m.kernel, m.recompute, core.RecoverOpts{
		MaxRounds:  m.maxRounds,
		Checkpoint: m.ck,
	})
	out := Report{
		Damaged: failed,
		Tier:    rep.Tier.String(),
		Cycles:  vres.Cycles + rep.TotalCycles(),
	}
	return out, rerr
}
