package pmodel_test

import (
	"strings"
	"testing"

	"gpulp/internal/pmodel"
)

func specNames(specs []pmodel.Spec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ",")
}

func TestRegistryOrder(t *testing.T) {
	want := []string{"lp", "ep", "sbrp", "strict"}
	got := pmodel.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (registry order is part of the determinism contract)", i, got[i], want[i])
		}
	}
	for _, n := range want {
		s, ok := pmodel.Lookup(n)
		if !ok || s.Name != n || s.New == nil || s.Title == "" {
			t.Fatalf("Lookup(%q) = %+v, %v", n, s, ok)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    string // comma-joined spec names, "" with wantErr
		wantErr string // substring of the expected error
	}{
		{in: "", want: "lp,ep,sbrp,strict"},
		{in: "all", want: "lp,ep,sbrp,strict"},
		{in: "ALL", want: "lp,ep,sbrp,strict"},
		{in: "  all  ", want: "lp,ep,sbrp,strict"},
		{in: "lp", want: "lp"},
		{in: "strict", want: "strict"},
		{in: "ep,lp", want: "ep,lp"}, // order given, not registry order
		{in: "SBRP", want: "sbrp"},
		{in: " Lp , eP ", want: "lp,ep"},
		{in: "lp,lp,ep,LP", want: "lp,ep"}, // duplicates keep the first
		{in: "lp,,ep", want: "lp,ep"},      // empty elements are skipped
		{in: "epoch", wantErr: "unknown persistency model \"epoch\""},
		{in: "lp,bogus", wantErr: "registered: lp, ep, sbrp, strict"},
		{in: "lp,all", wantErr: "mixes \"all\""},
		{in: "all,ep", wantErr: "mixes \"all\""},
		{in: ",,", wantErr: "empty model list"},
	}
	for _, tc := range cases {
		got, err := pmodel.Parse(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("Parse(%q) = %s, want error containing %q", tc.in, specNames(got), tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Parse(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", tc.in, err)
			continue
		}
		if names := specNames(got); names != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, names, tc.want)
		}
	}
}
