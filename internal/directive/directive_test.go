package directive

import (
	"strings"
	"testing"
)

// paperSource is Listings 5 and 6 from the paper: the host launch with an
// lpcuda_init directive and the matrix-multiply kernel with an
// lpcuda_checksum directive on the C store.
const paperSource = `__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = computeTile(A, B, wA, wB);
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}

void host() {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    MatrixMulCUDA<<<grid, threads, 0, stream>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);
}
`

func mustTranslate(t *testing.T, src string) *Output {
	t.Helper()
	out, err := Translate(src)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	return out
}

func TestPaperListingParses(t *testing.T) {
	out := mustTranslate(t, paperSource)

	if len(out.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(out.Tables))
	}
	ti := out.Tables[0]
	if ti.Name != "checksumMM" || ti.NElems != "grid.x*grid.y" || ti.SElem != "1" {
		t.Errorf("bad table init: %+v", ti)
	}

	if len(out.Checksums) != 1 {
		t.Fatalf("checksums = %d, want 1", len(out.Checksums))
	}
	cd := out.Checksums[0]
	if cd.Op != "+" || cd.Table != "checksumMM" || cd.Kernel != "MatrixMulCUDA" {
		t.Errorf("bad checksum directive: %+v", cd)
	}
	if len(cd.Keys) != 2 || cd.Keys[0] != "blockIdx.x" || cd.Keys[1] != "blockIdx.y" {
		t.Errorf("bad keys: %v", cd.Keys)
	}
	if cd.LHS != "C[c + wB * ty + tx]" || cd.RHS != "Csub" {
		t.Errorf("bad annotated statement: LHS=%q RHS=%q", cd.LHS, cd.RHS)
	}
}

func TestInstrumentedCode(t *testing.T) {
	out := mustTranslate(t, paperSource)
	ins := out.Instrumented

	for _, want := range []string{
		// Host init runtime call replaces the init pragma.
		"lpcudaInitChecksumTable(&checksumMM, grid.x*grid.y, 1);",
		// Per-store checksum update follows the annotated store.
		`lpChecksumUpdate(&checksumMM, "+", Csub);`,
		// Block commit injected before the kernel's closing brace.
		"lpChecksumCommit(&checksumMM, blockIdx.x, blockIdx.y);",
	} {
		if !strings.Contains(ins, want) {
			t.Errorf("instrumented code missing %q\n---\n%s", want, ins)
		}
	}
	if strings.Contains(ins, "#pragma nvm") {
		t.Error("pragmas leaked into instrumented output")
	}
	// The original store must survive, before the update call.
	storeIdx := strings.Index(ins, "C[c + wB * ty + tx] = Csub;")
	updateIdx := strings.Index(ins, "lpChecksumUpdate")
	if storeIdx < 0 || updateIdx < 0 || updateIdx < storeIdx {
		t.Error("checksum update must directly follow the annotated store")
	}
	// Commit must come after the update.
	if commitIdx := strings.Index(ins, "lpChecksumCommit"); commitIdx < updateIdx {
		t.Error("commit must follow the update")
	}
}

func TestRecoveryKernelGenerated(t *testing.T) {
	out := mustTranslate(t, paperSource)
	rec := out.Recovery

	for _, want := range []string{
		// Listing 7's kernel name and signature.
		"__global__ void crMatrixMulCUDA(float *C, float *A, float *B, int wA, int wB)",
		// The program slice reconstructing the element pointer.
		"int bx = blockIdx.x;",
		"int by = blockIdx.y;",
		"int tx = threadIdx.x;",
		"int ty = threadIdx.y;",
		"int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;",
		// Validation against the table with the directive keys.
		"if (!lpValidate(C[c + wB * ty + tx], checksumMM, blockIdx.x, blockIdx.y))",
		// Recovery invocation with the kernel's parameters.
		"recovery_MatrixMulCUDA(C, A, B, wA, wB);",
		// The recovery function reproduces the original body.
		"__device__ void recovery_MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB)",
	} {
		if !strings.Contains(rec, want) {
			t.Errorf("recovery code missing %q\n---\n%s", want, rec)
		}
	}
	// The slice must not drag in the Csub computation (it does not feed
	// the address expression).
	head := rec[:strings.Index(rec, "lpValidate")]
	if strings.Contains(head, "computeTile") {
		t.Error("program slice included a statement that does not feed the address")
	}
	// The recovery body must not contain pragmas.
	if strings.Contains(rec, "#pragma") {
		t.Error("pragma leaked into recovery code")
	}
}

func TestParityOperator(t *testing.T) {
	src := strings.Replace(paperSource, `"+"`, `"^"`, 1)
	out := mustTranslate(t, src)
	if out.Checksums[0].Op != "^" {
		t.Errorf("op = %q, want ^", out.Checksums[0].Op)
	}
	if !strings.Contains(out.Instrumented, `lpChecksumUpdate(&checksumMM, "^", Csub);`) {
		t.Error("parity update call missing")
	}
}

func TestMultipleKeys(t *testing.T) {
	src := strings.Replace(paperSource,
		`lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y)`,
		`lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y, bx)`, 1)
	out := mustTranslate(t, src)
	if len(out.Checksums[0].Keys) != 3 {
		t.Errorf("keys = %v, want 3", out.Checksums[0].Keys)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"init arity",
			"#pragma nvm lpcuda_init(tab, 10)\n",
			"lpcuda_init takes 3 arguments",
		},
		{
			"checksum arity",
			"__global__ void k() {\n#pragma nvm lpcuda_checksum(\"+\", tab)\nx = 1;\n}\n",
			"at least 3 arguments",
		},
		{
			"checksum outside kernel",
			"#pragma nvm lpcuda_checksum(\"+\", tab, blockIdx.x)\nx = 1;\n",
			"outside a __global__ kernel",
		},
		{
			"bad operator",
			"__global__ void k() {\n#pragma nvm lpcuda_checksum(\"*\", tab, blockIdx.x)\nx = 1;\n}\n",
			"unknown checksum type",
		},
		{
			"not an assignment",
			"__global__ void k() {\n#pragma nvm lpcuda_checksum(\"+\", tab, blockIdx.x)\nreturn;\n}\n",
			"must annotate a simple assignment",
		},
		{
			"dangling directive",
			"__global__ void k() {\n    int x = 0;\n}\n#pragma nvm lpcuda_checksum(\"+\", tab, blockIdx.x)",
			"outside a __global__ kernel",
		},
		{
			"unterminated kernel",
			"__global__ void k() {\n    int x = 0;\n",
			"unterminated kernel",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Translate(tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestErrorCarriesLine(t *testing.T) {
	_, err := Translate("line one\n#pragma nvm lpcuda_init(tab, 10)\n")
	var de *Error
	if e, ok := err.(*Error); ok {
		de = e
	} else {
		t.Fatalf("error type %T, want *Error", err)
	}
	if de.Line != 2 {
		t.Errorf("error line = %d, want 2", de.Line)
	}
}

func TestUntouchedSourcePassesThrough(t *testing.T) {
	src := "int main() {\n    return 0;\n}\n"
	out := mustTranslate(t, src)
	if out.Instrumented != src {
		t.Errorf("pragma-free source modified:\n%s", out.Instrumented)
	}
	if out.Recovery != "" {
		t.Error("recovery generated for pragma-free source")
	}
}

func TestKernelWithoutDirectivesUntouched(t *testing.T) {
	src := "__global__ void plain(int *p) {\n    p[0] = 1;\n}\n"
	out := mustTranslate(t, src)
	if strings.Contains(out.Instrumented, "lpChecksum") {
		t.Error("undirected kernel was instrumented")
	}
}

func TestTwoKernels(t *testing.T) {
	src := paperSource + `
__global__ void Other(float *out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v = work(i, n);
#pragma nvm lpcuda_checksum("^", checksumOther, blockIdx.x)
    out[i] = v;
}
`
	out := mustTranslate(t, src)
	if len(out.Checksums) != 2 {
		t.Fatalf("checksums = %d, want 2", len(out.Checksums))
	}
	if !strings.Contains(out.Recovery, "crOther") || !strings.Contains(out.Recovery, "crMatrixMulCUDA") {
		t.Error("recovery kernels missing for one of the two kernels")
	}
	if !strings.Contains(out.Recovery, "recovery_Other(out, n);") {
		t.Errorf("recovery call for Other wrong:\n%s", out.Recovery)
	}
}

func TestSplitArgs(t *testing.T) {
	got := splitArgs(`"+", tab, f(a, b), x[i, j], "a,b"`)
	want := []string{`"+"`, "tab", "f(a, b)", "x[i, j]", `"a,b"`}
	if len(got) != len(want) {
		t.Fatalf("splitArgs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arg %d = %q, want %q", i, got[i], want[i])
		}
	}
}
