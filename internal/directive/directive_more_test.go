package directive

import (
	"strings"
	"testing"
)

func TestMultiLineKernelSignature(t *testing.T) {
	src := `__global__ void longSig(float *out,
                        float *in,
                        int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v = in[i];
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
`
	out := mustTranslate(t, src)
	if len(out.Checksums) != 1 {
		t.Fatalf("checksums = %d", len(out.Checksums))
	}
	if !strings.Contains(out.Recovery, "recovery_longSig(out, in, n);") {
		t.Errorf("multi-line signature params not recovered:\n%s", out.Recovery)
	}
}

func TestCompoundAssignmentRejected(t *testing.T) {
	src := `__global__ void k(float *out) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[0] += 1;
}
`
	if _, err := Translate(src); err == nil {
		t.Fatal("compound assignment should not be annotatable (the folded value is not the stored value)")
	}
}

func TestPragmaWithBlankLineBeforeStatement(t *testing.T) {
	src := `__global__ void k(float *out) {
    float v = 1;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)

    out[0] = v;
}
`
	out := mustTranslate(t, src)
	if out.Checksums[0].LHS != "out[0]" {
		t.Errorf("blank line broke statement attachment: %+v", out.Checksums[0])
	}
}

func TestSliceFollowsTransitiveDependencies(t *testing.T) {
	src := `__global__ void k(float *out, int stride) {
    int base = blockIdx.x * stride;
    int off = base * 2;
    int unrelated = 99;
    float v = g(unrelated);
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[off + threadIdx.x] = v;
}
`
	out := mustTranslate(t, src)
	head := out.Recovery[:strings.Index(out.Recovery, "lpValidate")]
	if !strings.Contains(head, "int off = base * 2;") || !strings.Contains(head, "int base = blockIdx.x * stride;") {
		t.Errorf("transitive address dependencies missing from slice:\n%s", head)
	}
	if strings.Contains(head, "unrelated") {
		t.Errorf("slice dragged in an unrelated statement:\n%s", head)
	}
}

func TestInstrumentedPreservesUnrelatedLines(t *testing.T) {
	out := mustTranslate(t, paperSource)
	for _, line := range []string{
		"int bx = blockIdx.x;",
		"float Csub = computeTile(A, B, wA, wB);",
		"MatrixMulCUDA<<<grid, threads, 0, stream>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);",
	} {
		if !strings.Contains(out.Instrumented, line) {
			t.Errorf("instrumented output lost %q", line)
		}
	}
}

func TestErrorMessageFormat(t *testing.T) {
	_, err := Translate("#pragma nvm lpcuda_init(x)\n")
	if err == nil || !strings.Contains(err.Error(), "directive: line 1") {
		t.Errorf("error lacks position prefix: %v", err)
	}
}
