// Package directive implements the paper's directive-based programming
// support (§VI): a source-to-source translator that recognizes
//
//	#pragma nvm lpcuda_init(checksum_tab_id, nelems, selem)
//	#pragma nvm lpcuda_checksum(checksum_type, checksum_tab_id, key1, ...)
//
// in CUDA-style source text and generates (a) the instrumented host and
// kernel code — a runtime call that initializes the checksum table, a
// per-store checksum update, and a block-level commit at kernel end —
// and (b) the check-and-recovery kernel of Listing 7, built from the
// program slice of the annotated store's address computation.
//
// Compilers that do not understand the directives simply ignore them, as
// the paper requires; this translator is the reference implementation of
// what a directive-aware compiler inserts. The directives carry no
// CUDA-specific semantics, so the same translation applies to OpenCL
// kernels.
package directive

import (
	"fmt"
	"regexp"
	"strings"
)

// TableInit is a parsed lpcuda_init directive.
type TableInit struct {
	// Name is the checksum table identifier.
	Name string
	// NElems is the element-count expression (e.g. "grid.x*grid.y").
	NElems string
	// SElem is the checksums-per-element expression.
	SElem string
	// Line is the 1-based source line of the pragma.
	Line int
}

// ChecksumDirective is a parsed lpcuda_checksum directive together with
// the statement it annotates.
type ChecksumDirective struct {
	// Op is the checksum operator: "+" (modular) or "^" (parity).
	Op string
	// Table is the checksum table identifier.
	Table string
	// Keys are the table-indexing key expressions.
	Keys []string
	// Kernel is the enclosing kernel name.
	Kernel string
	// LHS and RHS are the sides of the annotated store statement.
	LHS string
	RHS string
	// Line is the 1-based source line of the pragma.
	Line int
}

// Output is the result of a translation.
type Output struct {
	// Instrumented is the input with directives replaced by runtime
	// calls (init, per-store update, block commit).
	Instrumented string
	// Recovery is the generated check-and-recovery code: one
	// cr<Kernel> validation kernel plus one recovery_<Kernel> device
	// function per instrumented kernel.
	Recovery string
	// Tables and Checksums are the parsed directives.
	Tables    []TableInit
	Checksums []ChecksumDirective
}

// Error is a translation error with source position.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("directive: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var (
	pragmaRe     = regexp.MustCompile(`^\s*#pragma\s+nvm\s+(lpcuda_init|lpcuda_checksum)\s*\((.*)\)\s*$`)
	kernelRe     = regexp.MustCompile(`__global__\s+void\s+([A-Za-z_]\w*)\s*\(`)
	assignRe     = regexp.MustCompile(`^\s*(?:(?:const\s+)?(?:unsigned\s+)?[A-Za-z_]\w*(?:\s*\*+)?\s+)?([A-Za-z_]\w*(?:\s*\[[^\]]*\])?)\s*([-+*/|&^]?=)\s*(.+);\s*$`)
	identRe      = regexp.MustCompile(`[A-Za-z_]\w*`)
	builtinIdent = map[string]bool{
		"blockIdx": true, "threadIdx": true, "blockDim": true, "gridDim": true,
		"x": true, "y": true, "z": true, "if": true, "for": true, "while": true,
		"return": true, "int": true, "float": true, "double": true, "void": true,
		"unsigned": true, "const": true, "__shared__": true, "__syncthreads": true,
	}
)

var fullIdentRe = regexp.MustCompile(`^[A-Za-z_]\w*$`)

// validIdent reports whether s can name a checksum table: a single C
// identifier. Expressions, quoted strings, and the empty string (from a
// leading comma or a skipped argument) are rejected so the generated
// `&name` references compile.
func validIdent(s string) bool { return fullIdentRe.MatchString(s) }

// splitArgs splits a pragma argument list at top-level commas, respecting
// quotes and parentheses.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inStr = !inStr
		case inStr:
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

// kernelSpan tracks an open kernel definition during scanning.
type kernelSpan struct {
	name      string
	startLine int // line of the opening brace
	depth     int
	bodyLines []int // indices of lines inside the body
	params    string
}

// Translate processes the annotated source and produces the instrumented
// program plus the generated check-and-recovery code.
func Translate(src string) (*Output, error) {
	lines := strings.Split(src, "\n")
	out := &Output{}
	instrumented := make([]string, 0, len(lines)+16)

	var kernels []kernelSpan
	var current *kernelSpan
	var pendingChecksum *ChecksumDirective
	// kernel name -> directives inside it, for commit/recovery generation.
	perKernel := map[string][]*ChecksumDirective{}
	depthBefore := 0
	for i, raw := range lines {
		lineNo := i + 1

		if m := pragmaRe.FindStringSubmatch(raw); m != nil {
			args := splitArgs(m[2])
			switch m[1] {
			case "lpcuda_init":
				if len(args) != 3 {
					return nil, errf(lineNo, "lpcuda_init takes 3 arguments, got %d", len(args))
				}
				if !validIdent(args[0]) {
					return nil, errf(lineNo, "lpcuda_init table name %q is not an identifier", args[0])
				}
				for _, prev := range out.Tables {
					if prev.Name == args[0] {
						return nil, errf(lineNo, "duplicate lpcuda_init for table %q (first at line %d)", args[0], prev.Line)
					}
				}
				ti := TableInit{Name: args[0], NElems: args[1], SElem: args[2], Line: lineNo}
				out.Tables = append(out.Tables, ti)
				indent := raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))]
				instrumented = append(instrumented,
					fmt.Sprintf("%slpcudaInitChecksumTable(&%s, %s, %s);", indent, ti.Name, ti.NElems, ti.SElem))
				continue
			case "lpcuda_checksum":
				if len(args) < 3 {
					return nil, errf(lineNo, "lpcuda_checksum takes at least 3 arguments, got %d", len(args))
				}
				if current == nil {
					return nil, errf(lineNo, "lpcuda_checksum outside a __global__ kernel")
				}
				op := strings.Trim(args[0], `"`)
				if op != "+" && op != "^" {
					return nil, errf(lineNo, "unknown checksum type %q (want \"+\" or \"^\")", args[0])
				}
				if !validIdent(args[1]) {
					return nil, errf(lineNo, "lpcuda_checksum table name %q is not an identifier", args[1])
				}
				if pendingChecksum != nil {
					return nil, errf(lineNo, "lpcuda_checksum at line %d not yet bound to a statement", pendingChecksum.Line)
				}
				pendingChecksum = &ChecksumDirective{
					Op: op, Table: args[1], Keys: args[2:],
					Kernel: current.name, Line: lineNo,
				}
				continue // the pragma line itself is dropped
			}
		}

		// Track kernel definitions.
		if m := kernelRe.FindStringSubmatch(raw); m != nil && current == nil {
			current = &kernelSpan{name: m[1], startLine: lineNo}
			// Capture the parameter list (possibly spanning lines until ')').
			rest := raw[strings.Index(raw, m[0])+len(m[0]):]
			params := rest
			for d, j := 1, i; d > 0; {
				if idx := scanParens(params, &d); idx >= 0 {
					params = params[:idx]
					break
				}
				j++
				if j >= len(lines) {
					return nil, errf(lineNo, "unterminated parameter list for kernel %s", m[1])
				}
				params += " " + strings.TrimSpace(lines[j])
			}
			current.params = strings.TrimSpace(params)
		}

		// Consume the statement a pending checksum directive annotates.
		if pendingChecksum != nil && strings.TrimSpace(raw) != "" {
			am := assignRe.FindStringSubmatch(raw)
			if am == nil || am[2] != "=" {
				return nil, errf(lineNo, "lpcuda_checksum must annotate a simple assignment, got %q", strings.TrimSpace(raw))
			}
			pendingChecksum.LHS = strings.TrimSpace(am[1])
			pendingChecksum.RHS = strings.TrimSpace(am[3])
			out.Checksums = append(out.Checksums, *pendingChecksum)
			perKernel[pendingChecksum.Kernel] = append(perKernel[pendingChecksum.Kernel], pendingChecksum)
			indent := raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))]
			instrumented = append(instrumented, raw,
				fmt.Sprintf("%slpChecksumUpdate(&%s, \"%s\", %s);", indent, pendingChecksum.Table, pendingChecksum.Op, pendingChecksum.RHS))
			pendingChecksum = nil
			if current != nil {
				current.bodyLines = append(current.bodyLines, i)
			}
			depthBefore += strings.Count(raw, "{") - strings.Count(raw, "}")
			continue
		}

		// Brace tracking for kernel body extent: body lines are those
		// strictly inside the outermost braces.
		opens := strings.Count(raw, "{")
		closes := strings.Count(raw, "}")
		if current != nil && depthBefore > 0 {
			current.bodyLines = append(current.bodyLines, i)
		}
		depthBefore += opens - closes
		if current != nil && depthBefore == 0 && closes > 0 {
			// Drop the closing-brace line from the body.
			if n := len(current.bodyLines); n > 0 && current.bodyLines[n-1] == i {
				current.bodyLines = current.bodyLines[:n-1]
			}
			// Inject the block-level commit just before the closing
			// brace if the kernel has checksum directives.
			if dirs := perKernel[current.name]; len(dirs) > 0 {
				d := dirs[0]
				instrumented = append(instrumented,
					fmt.Sprintf("    lpChecksumCommit(&%s, %s);", d.Table, strings.Join(d.Keys, ", ")))
			}
			kernels = append(kernels, *current)
			current = nil
		}
		instrumented = append(instrumented, raw)
	}
	if pendingChecksum != nil {
		return nil, errf(pendingChecksum.Line, "lpcuda_checksum not followed by a statement")
	}
	if current != nil {
		return nil, errf(current.startLine, "unterminated kernel %s", current.name)
	}

	out.Instrumented = strings.Join(instrumented, "\n")

	// Generate the check-and-recovery code per instrumented kernel.
	var rec strings.Builder
	for _, k := range kernels {
		dirs := perKernel[k.name]
		if len(dirs) == 0 {
			continue
		}
		genRecovery(&rec, lines, k, dirs)
	}
	out.Recovery = rec.String()
	return out, nil
}

// scanParens advances depth d over s, returning the index of the
// balancing ')' or -1 if not found in s.
func scanParens(s string, d *int) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			*d++
		case ')':
			*d--
			if *d == 0 {
				return i
			}
		}
	}
	return -1
}

// identsOf returns the non-builtin identifiers in an expression.
func identsOf(expr string) []string {
	var out []string
	for _, id := range identRe.FindAllString(expr, -1) {
		if !builtinIdent[id] {
			out = append(out, id)
		}
	}
	return out
}

// genRecovery emits the Listing 7 check-and-recovery kernel for one
// annotated kernel: the program slice that recomputes the stored
// element's location, a validation call comparing the recomputed
// checksum against the table, and an invocation of the recovery
// function (the original kernel body) on failure.
func genRecovery(w *strings.Builder, lines []string, k kernelSpan, dirs []*ChecksumDirective) {
	d := dirs[0]

	// Program slice: walk the kernel body backwards from the annotated
	// store, keeping assignments that (transitively) feed the LHS
	// address expression.
	needed := map[string]bool{}
	for _, id := range identsOf(d.LHS) {
		needed[id] = true
	}
	var slice []string
	for i := len(k.bodyLines) - 1; i >= 0; i-- {
		raw := lines[k.bodyLines[i]]
		am := assignRe.FindStringSubmatch(raw)
		if am == nil {
			continue
		}
		target := strings.TrimSpace(am[1])
		if idx := strings.IndexByte(target, '['); idx >= 0 {
			target = target[:idx]
		}
		if target == strings.TrimSpace(d.LHS) || raw == "" {
			continue
		}
		if !needed[target] {
			continue
		}
		if strings.TrimSpace(am[1])+am[2]+am[3] == d.LHS+"="+d.RHS {
			continue // the annotated store itself
		}
		slice = append([]string{strings.TrimSpace(raw)}, slice...)
		for _, id := range identsOf(am[3]) {
			needed[id] = true
		}
	}

	paramNames := paramNamesOf(k.params)

	fmt.Fprintf(w, "// Check-and-recovery kernel for %s, generated from the\n", k.name)
	fmt.Fprintf(w, "// lpcuda_checksum directive at line %d (program slice of %s).\n", d.Line, d.LHS)
	fmt.Fprintf(w, "__global__ void cr%s(%s) {\n", capitalize(k.name), k.params)
	for _, s := range slice {
		fmt.Fprintf(w, "    %s\n", s)
	}
	fmt.Fprintf(w, "    if (!lpValidate(%s, %s, %s))\n", d.LHS, d.Table, strings.Join(d.Keys, ", "))
	fmt.Fprintf(w, "        recovery_%s(%s);\n", k.name, strings.Join(paramNames, ", "))
	fmt.Fprintf(w, "}\n\n")

	// The recovery function is the original kernel body (LP regions are
	// thread blocks, usually idempotent — §IV-A).
	fmt.Fprintf(w, "// Recovery function for %s: re-executes the original region body.\n", k.name)
	fmt.Fprintf(w, "__device__ void recovery_%s(%s) {\n", k.name, k.params)
	for _, li := range k.bodyLines {
		line := strings.TrimRight(lines[li], " \t")
		if strings.TrimSpace(line) == "" || pragmaRe.MatchString(line) {
			continue
		}
		fmt.Fprintf(w, "%s\n", line)
	}
	fmt.Fprintf(w, "}\n")
}

// paramNamesOf extracts the parameter names from a C parameter list.
func paramNamesOf(params string) []string {
	var names []string
	for _, p := range splitArgs(params) {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		ids := identRe.FindAllString(p, -1)
		if len(ids) > 0 {
			names = append(names, ids[len(ids)-1])
		}
	}
	return names
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
