package directive

import (
	"errors"
	"strings"
	"testing"
)

// kernelWrap embeds body lines in a minimal annotated kernel so edge
// cases exercise the in-kernel directive paths.
func kernelWrap(body ...string) string {
	lines := append([]string{
		"__global__ void k(float *out, int n) {",
		"    int i = blockIdx.x;",
	}, body...)
	lines = append(lines, "}")
	return strings.Join(lines, "\n")
}

func TestTranslateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantErr is a substring the error must contain; "" means the
		// translation must succeed.
		wantErr string
	}{
		{
			name:    "empty init pragma",
			src:     "#pragma nvm lpcuda_init()",
			wantErr: "takes 3 arguments, got 0",
		},
		{
			name:    "init missing one argument",
			src:     "#pragma nvm lpcuda_init(tab, n)",
			wantErr: "takes 3 arguments, got 2",
		},
		{
			name:    "init with empty table name",
			src:     "#pragma nvm lpcuda_init(, n, 1)",
			wantErr: "not an identifier",
		},
		{
			name:    "init table name is an expression",
			src:     "#pragma nvm lpcuda_init(tab[0], n, 1)",
			wantErr: "not an identifier",
		},
		{
			name:    "init table name starts with a digit",
			src:     "#pragma nvm lpcuda_init(9tab, n, 1)",
			wantErr: "not an identifier",
		},
		{
			name: "duplicate init for the same table",
			src: "#pragma nvm lpcuda_init(tab, n, 1)\n" +
				"#pragma nvm lpcuda_init(tab, m, 2)",
			wantErr: "duplicate lpcuda_init",
		},
		{
			name: "two inits for distinct tables ok",
			src: "#pragma nvm lpcuda_init(taba, n, 1)\n" +
				"#pragma nvm lpcuda_init(tabb, m, 2)",
		},
		{
			name:    "empty checksum pragma",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum()`),
			wantErr: "at least 3 arguments, got 0",
		},
		{
			name:    "checksum with bad operator",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum("*", tab, i)`, "    out[i] = 1.0f;"),
			wantErr: "unknown checksum type",
		},
		{
			name:    "checksum with malformed table name",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum("+", "tab", i)`, "    out[i] = 1.0f;"),
			wantErr: "not an identifier",
		},
		{
			name:    "checksum outside any kernel",
			src:     `#pragma nvm lpcuda_checksum("+", tab, i)`,
			wantErr: "outside a __global__ kernel",
		},
		{
			name: "duplicate checksum pragmas back to back",
			src: kernelWrap(
				`    #pragma nvm lpcuda_checksum("+", tab, i)`,
				`    #pragma nvm lpcuda_checksum("^", tab, i)`,
				"    out[i] = 1.0f;"),
			wantErr: "not yet bound to a statement",
		},
		{
			name:    "checksum annotating a non-assignment",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum("+", tab, i)`, "    __syncthreads();"),
			wantErr: "must annotate a simple assignment",
		},
		{
			name:    "checksum annotating a compound assignment",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum("+", tab, i)`, "    out[i] += 1.0f;"),
			wantErr: "must annotate a simple assignment",
		},
		{
			name:    "checksum at end of kernel with no statement",
			src:     kernelWrap(`    #pragma nvm lpcuda_checksum("+", tab, i)`),
			wantErr: "must annotate a simple assignment",
		},
		{
			name: "well-formed checksum ok",
			src:  kernelWrap(`    #pragma nvm lpcuda_checksum("+", tab, i)`, "    out[i] = 1.0f;"),
		},
		{
			name: "unterminated kernel",
			src: "__global__ void k(float *out) {\n" +
				"    out[0] = 1.0f;",
			wantErr: "unterminated kernel",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := Translate(tc.src)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Translate: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Translate succeeded, want error containing %q\ninstrumented:\n%s",
					tc.wantErr, out.Instrumented)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			var de *Error
			if !errors.As(err, &de) {
				t.Fatalf("error %T is not *directive.Error", err)
			}
			if de.Line < 1 {
				t.Fatalf("error line %d, want >= 1", de.Line)
			}
		})
	}
}
