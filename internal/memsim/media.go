// Online NVM media-error model: time-distributed transient and permanent
// (stuck-at) faults that strike while the system runs, not only at crash
// time. Real NVM exhibits retention drift, read/write disturb, and worn
// cells; the paper's recovery story (§V) assumes a single fail-stop crash,
// so a self-healing runtime needs the other half — detect media errors
// online, heal what is healable, and quarantine what is not.
//
// The model is deterministic: a seeded splitmix counter advances once per
// written line (full or torn write-back), and each draw decides whether
// this write suffers a transient single-bit error (the NVM cells capture a
// flipped bit; the next write of the line is clean) or gains a permanent
// stuck-at bit (the cell is pinned forever; every later write of that bit
// is overridden). Faults are evaluated at write-back time on the owner
// goroutine — the speculative parallel engine (gpusim Workers > 1)
// preserves the exact serial write-back order, so the fault sequence is
// bit-identical across engine configurations. Faults manifest at read
// time naturally: the NVM array holds the effective (faulted) bytes, so
// any fill, peek, or post-crash read observes them.
//
// Detection is ECC-style: for every line that has deviated from its
// intended durable contents the model keeps the intended bytes (what a
// fault-free medium would hold). Scrub sweeps that metadata, rewrites
// correctable lines through the ordinary COW/persistency-event paths
// (EvScrubRepair), and reports lines a rewrite cannot fix because a stuck
// cell holds the wrong value — the quarantine candidates.
//
// Cache lines stay pristine throughout: faults perturb only the durable
// array, via a Memory-owned scratch buffer, never the caller's cache-line
// bytes. All durable mutations route through mutateNVM/mutateNVMLine so
// active snapshots stay byte-frozen, and every mutation event carries the
// effective bytes so the persistcheck oracle stays exact.
package memsim

import (
	"bytes"
	"fmt"
	"sort"
)

// FaultConfig drives the online media-error model.
type FaultConfig struct {
	// Enabled turns the seeded fault process on. PlantStuckAt works even
	// when the process is disabled (explicit planting is orthogonal).
	Enabled bool
	// Seed makes the fault sequence reproducible: the same seed and the
	// same write-back sequence produce the same faults.
	Seed uint64
	// TransientPerWrite is the probability (0..1) that one written line
	// captures a transient single-bit error: the NVM cells hold a flipped
	// bit until the line is next written or scrubbed.
	TransientPerWrite float64
	// StuckPerWrite is the probability (0..1) that one written line gains
	// a permanent stuck-at bit, pinned to the complement of the bit being
	// written so the fault manifests immediately and on every later write.
	StuckPerWrite float64
}

// validate reports the first invalid FaultConfig field.
func (f FaultConfig) validate() error {
	if !f.Enabled {
		return nil
	}
	if f.TransientPerWrite < 0 || f.TransientPerWrite > 1 {
		return &ConfigError{Field: "Fault.TransientPerWrite",
			Reason: fmt.Sprintf("must be in [0,1], got %g", f.TransientPerWrite)}
	}
	if f.StuckPerWrite < 0 || f.StuckPerWrite > 1 {
		return &ConfigError{Field: "Fault.StuckPerWrite",
			Reason: fmt.Sprintf("must be in [0,1], got %g", f.StuckPerWrite)}
	}
	return nil
}

// MediaStats are cumulative media-error counters (not reset by ResetStats:
// media state is a property of the medium, not of a measurement window).
type MediaStats struct {
	// Writes counts fault-process draws (written lines while Enabled).
	Writes int64
	// Transient counts transient bit errors captured by NVM cells.
	Transient int64
	// Stuck counts permanent stuck-at bits created (process + planted).
	Stuck int64
	// Scrubs counts Scrub sweeps; Healed counts corrupt lines fully
	// restored by them.
	Scrubs int64
	Healed int64
}

// mediaLine is the per-line fault metadata.
type mediaLine struct {
	// intended is the full line a fault-free medium would hold — the
	// ECC-style detection metadata. The line is corrupt exactly when the
	// durable array deviates from it.
	intended []byte
	// stuckMask/stuckVal pin cells: bits set in stuckMask are forever held
	// at the corresponding stuckVal bit. nil when the line has none.
	stuckMask []byte
	stuckVal  []byte
}

// mediaState is the media-error model attached to a Memory. It exists
// when the fault process is enabled or any stuck-at bit has been planted.
type mediaState struct {
	cfg             FaultConfig
	transientThresh uint64 // cfg.TransientPerWrite scaled to 2^32
	stuckThresh     uint64
	writes          uint64 // fault-process counter
	lines           map[uint64]*mediaLine
	scratch         []byte // effective-bytes buffer; cache lines stay pristine
	stats           MediaStats
}

func newMediaState(cfg FaultConfig, lineSize int) *mediaState {
	return &mediaState{
		cfg:             cfg,
		transientThresh: uint64(cfg.TransientPerWrite * float64(1<<32)),
		stuckThresh:     uint64(cfg.StuckPerWrite * float64(1<<32)),
		lines:           map[uint64]*mediaLine{},
		scratch:         make([]byte, lineSize),
	}
}

// splitmix64 is the SplitMix64 mixer — the deterministic fault process.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mediaEnsure returns the media state, creating an inactive one on first
// use (explicit planting with the fault process disabled).
func (m *Memory) mediaEnsure() *mediaState {
	if m.media == nil {
		m.media = newMediaState(m.cfg.Fault, m.cfg.LineSize)
	}
	return m.media
}

// ensureLine returns the metadata entry for lineAddr, seeding intended
// from the current durable bytes (a line becomes tracked the moment its
// first fault strikes; until then NVM equals intent by definition).
func (md *mediaState) ensureLine(m *Memory, lineAddr uint64) *mediaLine {
	ml := md.lines[lineAddr]
	if ml == nil {
		ml = &mediaLine{intended: append([]byte(nil),
			m.nvm[lineAddr:lineAddr+uint64(m.cfg.LineSize)]...)}
		md.lines[lineAddr] = ml
	}
	return ml
}

// ensureStuck allocates the stuck masks of ml.
func (ml *mediaLine) ensureStuck(lineSize int) {
	if ml.stuckMask == nil {
		ml.stuckMask = make([]byte, lineSize)
		ml.stuckVal = make([]byte, lineSize)
	}
}

// applyStuck overrides the pinned bits of buf (line offset off) in place.
func (ml *mediaLine) applyStuck(buf []byte, off int) {
	if ml.stuckMask == nil {
		return
	}
	for i := range buf {
		mask := ml.stuckMask[off+i]
		if mask != 0 {
			buf[i] = (buf[i] &^ mask) | (ml.stuckVal[off+i] & mask)
		}
	}
}

// mediaEffective folds the media-error model into one line write of
// data at line offset 0 (full write-backs and torn prefixes both start
// at the line base): it advances the fault process, updates the line's
// intended bytes, applies stuck-at masks, and captures any new transient
// flip. The returned slice is what the NVM cells will actually hold; it
// aliases either data (fault-free) or the internal scratch buffer, never
// mutating the caller's bytes.
func (m *Memory) mediaEffective(lineAddr uint64, data []byte) []byte {
	md := m.media
	ml := md.lines[lineAddr]
	var draw uint64
	if md.cfg.Enabled {
		md.writes++
		md.stats.Writes++
		draw = splitmix64(md.cfg.Seed ^ md.writes)
	}

	// Permanent fault: pin one written bit at the complement of its
	// intended value, so the fault manifests on this very write.
	if md.cfg.Enabled && draw&0xffffffff < md.stuckThresh {
		pick := splitmix64(draw ^ 0x57c)
		bit := int(pick % uint64(len(data)*8))
		byteOff, b := bit/8, uint8(bit%8)
		ml = md.ensureLine(m, lineAddr)
		ml.ensureStuck(m.cfg.LineSize)
		if ml.stuckMask[byteOff]&(1<<b) == 0 {
			ml.stuckMask[byteOff] |= 1 << b
			if data[byteOff]&(1<<b) == 0 {
				ml.stuckVal[byteOff] |= 1 << b
			} else {
				ml.stuckVal[byteOff] &^= 1 << b
			}
			md.stats.Stuck++
		}
	}

	// Transient fault: one bit of this write is captured flipped.
	transientBit := -1
	if md.cfg.Enabled && (draw>>32)&0xffffffff < md.transientThresh {
		pick := splitmix64(draw ^ 0x7a4)
		transientBit = int(pick % uint64(len(data)*8))
		ml = md.ensureLine(m, lineAddr)
	}

	if ml == nil {
		return data // untracked line, no new fault: bytes land verbatim
	}

	// The write updates the intended durable contents regardless of what
	// the cells end up holding.
	copy(ml.intended[:len(data)], data)

	eff := md.scratch[:len(data)]
	copy(eff, data)
	ml.applyStuck(eff, 0)
	if transientBit >= 0 {
		byteOff, b := transientBit/8, uint8(transientBit%8)
		// A stuck cell absorbs the disturb: it cannot flip.
		if ml.stuckMask == nil || ml.stuckMask[byteOff]&(1<<b) == 0 {
			eff[byteOff] ^= 1 << b
			md.stats.Transient++
		}
	}
	return eff
}

// mediaHostEffective folds stuck-at masks into a host write (host writes
// do not advance the fault process — they model DMA from the host, whose
// payload still lands on possibly-pinned cells). Returns buf itself when
// no tracked line is touched.
func (m *Memory) mediaHostEffective(addr uint64, buf []byte) []byte {
	if m.media == nil || len(m.media.lines) == 0 {
		return buf
	}
	var eff []byte
	ls := uint64(m.cfg.LineSize)
	for done := 0; done < len(buf); {
		a := addr + uint64(done)
		lineAddr := a &^ (ls - 1)
		n := int(lineAddr + ls - a)
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if ml := m.media.lines[lineAddr]; ml != nil {
			copy(ml.intended[a-lineAddr:], buf[done:done+n])
			if ml.stuckMask != nil {
				if eff == nil {
					eff = append([]byte(nil), buf...)
				}
				ml.applyStuck(eff[done:done+n], int(a-lineAddr))
			}
		}
		done += n
	}
	if eff == nil {
		return buf
	}
	return eff
}

// mediaAbsorbsFlip reports whether a stuck cell pins the bit at addr,
// absorbing an external disturb (FlipBit of a pinned cell is a no-op: the
// cell cannot change, so no durable mutation and no event).
func (m *Memory) mediaAbsorbsFlip(addr uint64, bit uint8) bool {
	if m.media == nil {
		return false
	}
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	ml := m.media.lines[lineAddr]
	return ml != nil && ml.stuckMask != nil && ml.stuckMask[addr-lineAddr]&(1<<bit) != 0
}

// mediaTrackFlip records ECC detection metadata for an external FlipBit
// (intended bytes are the pre-flip durable contents), so a later Scrub
// can heal it. Only lines of an active media model are tracked; with no
// model the legacy FlipBit semantics are untouched.
func (m *Memory) mediaTrackFlip(addr uint64) {
	if m.media == nil {
		return
	}
	m.media.ensureLine(m, addr&^uint64(m.cfg.LineSize-1))
}

// PlantStuckAt pins one NVM cell for checker self-tests and watchdog
// acceptance tests: the bit at addr (bit index 0-7) is stuck at val
// (0 or 1) from now on — every write of that bit is overridden, scrub
// rewrites cannot heal it, and checkpoint restores re-assert it. If the
// current durable bit disagrees it is forced immediately (through the
// COW path, with an EvStuckAt event). Works with the fault process
// disabled; planting is orthogonal to the seeded model.
func (m *Memory) PlantStuckAt(addr uint64, bit uint8, val uint8) {
	bit %= 8
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	m.ensureNVM(lineAddr)
	md := m.mediaEnsure()
	ml := md.ensureLine(m, lineAddr)
	ml.ensureStuck(m.cfg.LineSize)
	off := addr - lineAddr
	if ml.stuckMask[off]&(1<<bit) == 0 {
		md.stats.Stuck++
	}
	ml.stuckMask[off] |= 1 << bit
	if val != 0 {
		ml.stuckVal[off] |= 1 << bit
	} else {
		ml.stuckVal[off] &^= 1 << bit
	}
	cur := m.nvm[addr]
	want := (cur &^ (1 << bit)) | (ml.stuckVal[off] & (1 << bit))
	if want != cur {
		m.mutateNVM(addr, []byte{want})
		m.notify(PersistEvent{Kind: EvStuckAt, Addr: addr, Data: []byte{want}, Bit: bit})
	}
}

// MediaStats returns the cumulative media-error counters.
func (m *Memory) MediaStats() MediaStats {
	if m.media == nil {
		return MediaStats{}
	}
	return m.media.stats
}

// MediaFaultyLines returns the tracked faulty line addresses in sorted
// order: lines currently deviating from their intended bytes plus lines
// carrying stuck-at cells (which can deviate again at any write).
func (m *Memory) MediaFaultyLines() []uint64 {
	if m.media == nil {
		return nil
	}
	out := make([]uint64, 0, len(m.media.lines))
	for la := range m.media.lines {
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScrubReport summarizes one Scrub sweep.
type ScrubReport struct {
	// LinesScanned counts tracked lines examined.
	LinesScanned int
	// Corrupt counts lines whose durable bytes deviated from intent.
	Corrupt int
	// Healed counts corrupt lines fully restored by the rewrite.
	Healed int
	// Uncorrectable counts lines still deviating after the rewrite —
	// stuck cells hold the wrong value. UncorrectableLines lists their
	// line addresses in ascending order (the quarantine candidates).
	Uncorrectable      int
	UncorrectableLines []uint64
}

// Clean reports whether the sweep left no uncorrectable lines.
func (r ScrubReport) Clean() bool { return r.Uncorrectable == 0 }

// String implements fmt.Stringer.
func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d scanned, %d corrupt, %d healed, %d uncorrectable",
		r.LinesScanned, r.Corrupt, r.Healed, r.Uncorrectable)
}

// Scrub sweeps the ECC detection metadata: every tracked line is compared
// against its intended bytes, deviating lines are rewritten through the
// ordinary COW/persistency-event paths (EvScrubRepair, counted as NVM
// line writes), and lines a rewrite cannot fix — a stuck cell pins the
// wrong value — are reported as uncorrectable. Healed transient-only
// lines leave the tracking map; stuck lines stay tracked forever. Scrub
// is an owner-goroutine operation like every other mutator.
func (m *Memory) Scrub() ScrubReport {
	var rep ScrubReport
	if m.media == nil {
		return rep
	}
	md := m.media
	md.stats.Scrubs++
	ls := uint64(m.cfg.LineSize)
	for _, lineAddr := range m.MediaFaultyLines() {
		ml := md.lines[lineAddr]
		rep.LinesScanned++
		cur := m.nvm[lineAddr : lineAddr+ls]
		if bytes.Equal(cur, ml.intended) {
			if ml.stuckMask == nil {
				delete(md.lines, lineAddr) // healed by overwrite since tracking
			}
			continue
		}
		rep.Corrupt++
		eff := md.scratch[:ls]
		copy(eff, ml.intended)
		ml.applyStuck(eff, 0)
		if !bytes.Equal(cur, eff) {
			m.mutateNVMLine(lineAddr, eff)
			m.notify(PersistEvent{Kind: EvScrubRepair, Addr: lineAddr, Data: eff})
			m.stats.NVMLineWrites++
			if m.stats.NVMWritesByRegion == nil {
				m.stats.NVMWritesByRegion = make(map[string]int64)
			}
			m.stats.NVMWritesByRegion[m.regionNameFor(lineAddr)]++
		}
		if bytes.Equal(m.nvm[lineAddr:lineAddr+ls], ml.intended) {
			rep.Healed++
			md.stats.Healed++
			if ml.stuckMask == nil {
				delete(md.lines, lineAddr)
			}
		} else {
			rep.Uncorrectable++
			rep.UncorrectableLines = append(rep.UncorrectableLines, lineAddr)
		}
	}
	return rep
}

// mediaAfterRestore re-asserts every stuck-at cell after a checkpoint
// restore replaced the durable image: the restored bytes become the new
// intended contents, transient-only tracking is dropped (the restore
// overwrote any captured flips), and pinned cells that disagree with the
// restored image are forced back (EvStuckAt events after the EvRestore,
// so the oracle replays the same sequence).
func (m *Memory) mediaAfterRestore() {
	if m.media == nil {
		return
	}
	md := m.media
	ls := uint64(m.cfg.LineSize)
	for _, lineAddr := range m.MediaFaultyLines() {
		ml := md.lines[lineAddr]
		copy(ml.intended, m.nvm[lineAddr:lineAddr+ls])
		if ml.stuckMask == nil {
			delete(md.lines, lineAddr)
			continue
		}
		for i := 0; i < int(ls); i++ {
			mask := ml.stuckMask[i]
			if mask == 0 {
				continue
			}
			addr := lineAddr + uint64(i)
			cur := m.nvm[addr]
			want := (cur &^ mask) | (ml.stuckVal[i] & mask)
			if want != cur {
				bit := uint8(0)
				for b := uint8(0); b < 8; b++ {
					if (cur^want)&(1<<b) != 0 {
						bit = b
						break
					}
				}
				m.mutateNVM(addr, []byte{want})
				m.notify(PersistEvent{Kind: EvStuckAt, Addr: addr, Data: []byte{want}, Bit: bit})
			}
		}
	}
}
