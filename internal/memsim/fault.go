// Fault-injection surface of the memory model: richer crash shapes than
// the all-or-nothing Crash, plus NVM media-error injection and whole-image
// snapshot/restore. These primitives exist for the fault-injection
// campaign engine (internal/faultsim): Lazy Persistency's correctness
// claim is that validation detects exactly the regions whose stores never
// became durable, and that claim is only testable when the durable image
// after a crash can take every shape real hardware produces — arbitrary
// eviction subsets and orderings, torn line write-backs, and bit flips in
// the NVM media itself (the false-negative analysis of Fig. 2).
package memsim

import (
	"fmt"
	"math/rand"
)

// CrashProfile shapes a PartialCrash.
type CrashProfile struct {
	// EvictFrac is the probability that a dirty line is written back to
	// NVM before power is lost (natural eviction racing the failure).
	// 0 makes PartialCrash equivalent to Crash; 1 evicts everything.
	EvictFrac float64
	// TornFrac is the probability that an evicted line's write-back is
	// torn: only a random prefix of the line reaches NVM, the tail keeps
	// its previous durable contents. Real NVM DIMMs guarantee only 8-byte
	// atomicity, so a 128-byte line write-back is 16 independently
	// persisted chunks.
	TornFrac float64
}

// CrashReport summarizes what a PartialCrash did.
type CrashReport struct {
	// Dirty is the number of dirty lines held at the crash instant.
	Dirty int
	// Evicted counts dirty lines fully written back before the drop.
	Evicted int
	// Torn counts dirty lines only partially written back.
	Torn int
	// Dropped counts dirty lines that never reached NVM at all.
	Dropped int
}

// String implements fmt.Stringer.
func (r CrashReport) String() string {
	return fmt.Sprintf("crash: %d dirty (%d evicted, %d torn, %d dropped)",
		r.Dirty, r.Evicted, r.Torn, r.Dropped)
}

// PartialCrash simulates a power failure preceded by a burst of natural
// eviction in arbitrary order: each dirty line is independently written
// back (fully or torn, per p) before every cached line is discarded. The
// eviction subset and order, and each torn line's cut point, are drawn
// from rng, so a seeded rng reproduces the exact durable image. A nil rng
// or zero profile degenerates to Crash.
func (m *Memory) PartialCrash(rng *rand.Rand, p CrashProfile) CrashReport {
	var rep CrashReport
	if rng == nil || p.EvictFrac <= 0 {
		rep.Dirty = m.DirtyLines()
		rep.Dropped = rep.Dirty
		m.Crash()
		return rep
	}
	var dirty []*line
	for i := range m.sets {
		for j := range m.sets[i].ways {
			l := &m.sets[i].ways[j]
			if l.valid && l.dirty {
				dirty = append(dirty, l)
			}
		}
	}
	rep.Dirty = len(dirty)
	// Arbitrary write-back order: the cache controller owes no ordering
	// between independent lines.
	rng.Shuffle(len(dirty), func(i, j int) { dirty[i], dirty[j] = dirty[j], dirty[i] })
	for _, l := range dirty {
		if rng.Float64() >= p.EvictFrac {
			rep.Dropped++
			continue
		}
		if rng.Float64() < p.TornFrac {
			m.tornWriteBack(l, rng)
			rep.Torn++
			continue
		}
		m.writeBack(l)
		rep.Evicted++
	}
	m.Crash()
	return rep
}

// tornWriteBack persists only a random non-empty proper prefix of l,
// aligned to 8 bytes (the media's atomic write unit). It counts as one
// NVM line write for traffic accounting.
func (m *Memory) tornWriteBack(l *line, rng *rand.Rand) {
	chunks := m.cfg.LineSize / 8
	if chunks < 2 {
		// Lines of one atomic unit cannot tear.
		m.writeBack(l)
		return
	}
	n := (1 + rng.Intn(chunks-1)) * 8
	m.ensureNVM(l.tag)
	data := l.data[:n]
	if m.media != nil {
		// A torn write is still a write of its prefix: the fault process
		// advances and stuck cells override the persisted chunk.
		data = m.mediaEffective(l.tag, data)
	}
	// Route through mutateNVM so an active snapshot preserves the line's
	// pre-tear durable bytes — torn persistence is a durable-image event
	// and must stay invisible to the frozen coherent view.
	m.mutateNVM(l.tag, data)
	m.notify(PersistEvent{Kind: EvTornWriteBack, Addr: l.tag, Data: data})
	m.stats.NVMLineWrites++
	if m.stats.NVMWritesByRegion == nil {
		m.stats.NVMWritesByRegion = make(map[string]int64)
	}
	m.stats.NVMWritesByRegion[m.regionNameFor(l.tag)]++
	l.dirty = false
}

// InjectBitFlipsRange flips n uniformly random bits within the durable
// image of [base, base+size), modeling NVM media errors (retention or
// disturb faults). Cached copies are not touched: a flip surfaces only to
// post-crash readers, which is when media errors matter to Lazy
// Persistency. Returns the flipped byte addresses (with repetition when
// rng lands twice on one byte).
func (m *Memory) InjectBitFlipsRange(rng *rand.Rand, base uint64, size, n int) []uint64 {
	if size <= 0 || n <= 0 {
		return nil
	}
	last := (base + uint64(size) - 1) &^ uint64(m.cfg.LineSize-1)
	m.ensureNVM(last)
	flipped := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		bit := rng.Intn(size * 8)
		addr := base + uint64(bit/8)
		m.FlipBit(addr, uint8(bit%8))
		flipped = append(flipped, addr)
	}
	return flipped
}

// FlipBit flips one bit of the durable image at addr, the deterministic
// primitive behind InjectBitFlips. The mutation goes through the
// snapshot copy-on-write path: an active Snapshot keeps presenting the
// pre-flip byte, exactly as it would had the media error struck with no
// snapshot outstanding (flips surface only to durable readers).
func (m *Memory) FlipBit(addr uint64, bit uint8) {
	m.ensureNVM(addr &^ uint64(m.cfg.LineSize-1))
	bit %= 8
	if m.mediaAbsorbsFlip(addr, bit) {
		// A stuck cell cannot change state: the disturb is absorbed, no
		// durable mutation happens, and no event fires (the oracle's xor
		// semantics would otherwise diverge from the unchanged image).
		return
	}
	// With an active media model the flip is ECC-detectable: record the
	// pre-flip bytes as the line's intended contents so Scrub can heal it.
	m.mediaTrackFlip(addr)
	b := m.nvm[addr] ^ (1 << bit)
	m.mutateNVM(addr, []byte{b})
	m.notify(PersistEvent{Kind: EvBitFlip, Addr: addr, Bit: bit})
}

// InjectBitFlips flips n random bits anywhere in the allocated durable
// image.
func (m *Memory) InjectBitFlips(rng *rand.Rand, n int) []uint64 {
	base := uint64(m.cfg.LineSize) // address 0 is never allocated
	if m.next <= base {
		return nil
	}
	return m.InjectBitFlipsRange(rng, base, int(m.next-base), n)
}

// SnapshotNVM returns a copy of the entire durable image — a restore
// point for checkpoint-based recovery. Callers that need the snapshot to
// reflect all logical state must FlushAll first.
func (m *Memory) SnapshotNVM() []byte {
	out := make([]byte, len(m.nvm))
	copy(out, m.nvm)
	return out
}

// RestoreNVM overwrites the durable image with a prior SnapshotNVM and
// discards every cached line, exactly as a checkpoint restore after a
// crash would. Bytes allocated after the snapshot was taken are zeroed.
func (m *Memory) RestoreNVM(img []byte) {
	if len(img) > len(m.nvm) {
		// Replacing the backing array is safe under an active snapshot:
		// the snapshot holds its own reference, and the mutators preserve
		// pre-mutation bytes from that frozen array, not this one.
		m.nvm = make([]byte, len(img))
	}
	// Route through the snapshot-safe mutator: a raw copy here would
	// rewrite lines an active copy-on-write snapshot has not captured
	// yet, corrupting the frozen view parallel workers are reading.
	m.mutateNVM(0, img)
	if len(m.nvm) > len(img) {
		m.mutateNVM(uint64(len(img)), make([]byte, len(m.nvm)-len(img)))
	}
	m.notify(PersistEvent{Kind: EvRestore, Data: img})
	// Stuck-at cells survive an image restore: re-assert them over the
	// restored bytes (after the EvRestore, so the oracle replays the same
	// sequence) and adopt the restored image as the new intended contents.
	m.mediaAfterRestore()
	m.Crash()
}
