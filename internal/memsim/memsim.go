// Package memsim provides a byte-accurate simulation of a GPU global-memory
// hierarchy backed by non-volatile memory (NVM).
//
// The model is the one assumed by the Lazy Persistency paper (IISWC 2020,
// "Scalable and Fast Lazy Persistency on GPUs"): all device data lives in a
// flat global address space whose durable backing store is NVM, fronted by a
// write-back, write-allocate, set-associative cache (think of it as the L2).
// Stores dirty cache lines; lines reach the NVM only through natural
// eviction or an explicit whole-cache flush. A crash discards the cache, so
// the durable state after a crash is exactly the set of lines that happened
// to have been written back — which is the failure model Lazy Persistency
// is designed to detect and recover from.
//
// All mutating entry points remain single-goroutine: the GPU simulator
// that drives them is a deterministic discrete-event engine whose commit
// loop owns the hierarchy, and determinism is a feature (experiments are
// reproducible bit-for-bit). For host-parallel execution the package adds
// one concurrency-safe read path: BeginSnapshot freezes the coherent view
// behind address-striped copy-on-write locks, letting worker goroutines
// read a stable image (Snapshot.ReadU32/ReadU64) while the owning
// goroutine keeps mutating the live hierarchy. Use one Memory per
// simulated device.
package memsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Config describes the cache and NVM characteristics of a Memory.
type Config struct {
	// LineSize is the cache line (and NVM write) granularity in bytes.
	LineSize int
	// CacheBytes is the total capacity of the write-back cache.
	CacheBytes int
	// Ways is the set associativity of the cache.
	Ways int
	// NVMReadNS and NVMWriteNS are the NVM access latencies in
	// nanoseconds. They are bookkeeping only at this layer; the GPU
	// timing model converts them to cycles.
	NVMReadNS  float64
	NVMWriteNS float64
	// NVMBandwidthGBs is the sustainable NVM bandwidth in GB/s.
	NVMBandwidthGBs float64
	// Fault configures the online media-error model (see media.go). The
	// zero value disables the fault process.
	Fault FaultConfig
}

// DefaultConfig mirrors the NVM parameters used in §VII-3 of the paper
// (GPGPU-sim modeling a Titan V with NVM: 326.4 GB/s, 160 ns read,
// 480 ns write) with a 4 MiB, 16-way L2 of 128-byte lines.
func DefaultConfig() Config {
	return Config{
		LineSize:        128,
		CacheBytes:      4 << 20,
		Ways:            16,
		NVMReadNS:       160,
		NVMWriteNS:      480,
		NVMBandwidthGBs: 326.4,
	}
}

// AccessKind distinguishes the statistics buckets for device accesses.
type AccessKind int

const (
	// AccessData is an ordinary data load/store issued by kernel code.
	AccessData AccessKind = iota
	// AccessChecksum is a load/store that belongs to the Lazy
	// Persistency machinery (checksum table maintenance). Keeping it
	// separate lets the write-amplification experiment attribute every
	// extra NVM write to LP.
	AccessChecksum
	// AccessAtomic is an atomic read-modify-write.
	AccessAtomic
	// AccessLog is persistency-log traffic (the Eager Persistency
	// baseline's redo log), kept separate so its write amplification is
	// attributable.
	AccessLog
	numAccessKinds
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case AccessData:
		return "data"
	case AccessChecksum:
		return "checksum"
	case AccessAtomic:
		return "atomic"
	case AccessLog:
		return "log"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// AccessResult reports what a single device access did to the hierarchy,
// so the GPU timing model can charge cycles and bandwidth.
type AccessResult struct {
	// Hit is true when the access was serviced entirely from cache.
	Hit bool
	// LinesFetched is the number of lines read from NVM (fill).
	LinesFetched int
	// LinesWrittenBack is the number of dirty lines evicted to NVM to
	// make room.
	LinesWrittenBack int
}

// Bytes returns the number of bytes moved between cache and NVM.
func (r AccessResult) Bytes(lineSize int) int {
	return (r.LinesFetched + r.LinesWrittenBack) * lineSize
}

// Stats aggregates traffic counters for a Memory.
type Stats struct {
	// Loads and Stores count device accesses by kind.
	Loads  [numAccessKinds]int64
	Stores [numAccessKinds]int64
	// Hits and Misses count cache outcomes over all accesses.
	Hits   int64
	Misses int64
	// NVMLineReads and NVMLineWrites count line-granularity NVM traffic.
	NVMLineReads  int64
	NVMLineWrites int64
	// NVMWritesByRegion attributes NVM line write-backs to the
	// allocation whose address range contains the line. Keyed by
	// region name.
	NVMWritesByRegion map[string]int64
	// FlushedLines counts lines written back by explicit FlushAll calls
	// (checkpoints), separately from natural evictions.
	FlushedLines int64
}

// NVMBytesWritten returns total bytes written to NVM.
func (s *Stats) NVMBytesWritten(lineSize int) int64 {
	return s.NVMLineWrites * int64(lineSize)
}

// HitRate returns the cache hit rate over all accesses, or 0 when idle.
func (s *Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type line struct {
	tag   uint64 // line-aligned base address
	valid bool
	dirty bool
	lru   uint64
	data  []byte
}

type cacheSet struct {
	ways []line
}

// Memory is a simulated NVM-backed global memory with a write-back cache.
type Memory struct {
	cfg     Config
	nvm     []byte
	sets    []cacheSet
	numSets int
	lruTick uint64
	next    uint64 // allocation cursor
	regions []Region
	stats   Stats
	snap    *Snapshot // active copy-on-write snapshot, nil when inactive

	// observer receives every durable-image mutation (see observe.go).
	observer func(PersistEvent)
	// plantDropNth/plantWBCount implement PlantDropWriteBack.
	plantDropNth int
	plantWBCount int
	// media is the online media-error model (see media.go); nil until the
	// fault process is enabled or a stuck-at cell is planted.
	media *mediaState
	// fences are the active write-fenced ranges (see fence.go); nil until
	// a fence is erected.
	fences []FencedRange
}

// New creates a Memory with the given configuration. A bad configuration
// returns a *ConfigError wrapping ErrConfig.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:     cfg,
		numSets: cfg.CacheBytes / cfg.LineSize / cfg.Ways,
		next:    uint64(cfg.LineSize), // keep address 0 unused
	}
	m.sets = make([]cacheSet, m.numSets)
	for i := range m.sets {
		m.sets[i].ways = make([]line, cfg.Ways)
	}
	if cfg.Fault.Enabled {
		m.media = newMediaState(cfg.Fault, cfg.LineSize)
	}
	return m, nil
}

// MustNew is New for configurations known to be valid (tests, defaults);
// it panics on a configuration error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a snapshot of the traffic counters.
func (m *Memory) Stats() Stats {
	s := m.stats
	s.NVMWritesByRegion = make(map[string]int64, len(m.stats.NVMWritesByRegion))
	for k, v := range m.stats.NVMWritesByRegion {
		s.NVMWritesByRegion[k] = v
	}
	return s
}

// ResetStats zeroes the traffic counters without touching memory contents.
func (m *Memory) ResetStats() {
	m.stats = Stats{}
}

// Alloc reserves size bytes of global memory under the given name and
// returns a Region handle. Allocations are line-aligned so write-back
// attribution per region is exact.
func (m *Memory) Alloc(name string, size int) Region {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%q) with non-positive size %d", name, size))
	}
	ls := uint64(m.cfg.LineSize)
	base := (m.next + ls - 1) &^ (ls - 1)
	end := base + uint64(size)
	m.next = (end + ls - 1) &^ (ls - 1)
	if int(m.next) > len(m.nvm) {
		grown := make([]byte, m.next)
		copy(grown, m.nvm)
		m.nvm = grown
	}
	r := Region{mem: m, Name: name, Base: base, Size: size}
	m.regions = append(m.regions, r)
	return r
}

// regionNameFor finds the allocation containing addr, for write-back
// attribution. Returns "(unattributed)" when no region matches.
func (m *Memory) regionNameFor(addr uint64) string {
	// Regions are allocated in increasing address order.
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].Base+uint64(m.regions[i].Size) > addr
	})
	if i < len(m.regions) && addr >= m.regions[i].Base {
		return m.regions[i].Name
	}
	return "(unattributed)"
}

func (m *Memory) setIndex(lineAddr uint64) int {
	return int((lineAddr / uint64(m.cfg.LineSize)) % uint64(m.numSets))
}

// lookupLine returns the cached line for lineAddr, or nil.
func (m *Memory) lookupLine(lineAddr uint64) *line {
	set := &m.sets[m.setIndex(lineAddr)]
	for i := range set.ways {
		l := &set.ways[i]
		if l.valid && l.tag == lineAddr {
			m.lruTick++
			l.lru = m.lruTick
			return l
		}
	}
	return nil
}

// fillLine brings lineAddr into the cache (evicting LRU if needed) and
// returns the line plus the access cost.
func (m *Memory) fillLine(lineAddr uint64) (*line, AccessResult) {
	var res AccessResult
	set := &m.sets[m.setIndex(lineAddr)]
	// Choose invalid way first, else LRU.
	victim := &set.ways[0]
	for i := range set.ways {
		l := &set.ways[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid && victim.dirty {
		m.writeBack(victim)
		res.LinesWrittenBack++
	}
	if victim.data == nil {
		victim.data = make([]byte, m.cfg.LineSize)
	}
	m.ensureNVM(lineAddr)
	copy(victim.data, m.nvm[lineAddr:lineAddr+uint64(m.cfg.LineSize)])
	m.stats.NVMLineReads++
	res.LinesFetched++
	victim.tag = lineAddr
	victim.valid = true
	victim.dirty = false
	m.lruTick++
	victim.lru = m.lruTick
	return victim, res
}

func (m *Memory) ensureNVM(lineAddr uint64) {
	end := int(lineAddr) + m.cfg.LineSize
	if end > len(m.nvm) {
		grown := make([]byte, end)
		copy(grown, m.nvm)
		m.nvm = grown
	}
}

func (m *Memory) writeBack(l *line) {
	m.ensureNVM(l.tag)
	data := l.data
	if m.media != nil {
		// The media model may perturb the bytes the cells capture; the
		// event carries the effective bytes so the durable oracle stays
		// exact, and l.data itself is never touched.
		data = m.mediaEffective(l.tag, l.data)
	}
	if !m.plantShouldDrop() {
		m.mutateNVMLine(l.tag, data)
	}
	m.notify(PersistEvent{Kind: EvWriteBack, Addr: l.tag, Data: data})
	m.stats.NVMLineWrites++
	if m.stats.NVMWritesByRegion == nil {
		m.stats.NVMWritesByRegion = make(map[string]int64)
	}
	m.stats.NVMWritesByRegion[m.regionNameFor(l.tag)]++
	l.dirty = false
}

// access performs the cache maneuver for [addr, addr+size) and returns the
// line holding addr. size must not cross a line boundary.
func (m *Memory) access(addr uint64, size int) (*line, AccessResult) {
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	if (addr+uint64(size)-1)&^uint64(m.cfg.LineSize-1) != lineAddr {
		panic(fmt.Sprintf("memsim: access at %#x size %d crosses a line boundary", addr, size))
	}
	if l := m.lookupLine(lineAddr); l != nil {
		m.stats.Hits++
		return l, AccessResult{Hit: true}
	}
	m.stats.Misses++
	l, res := m.fillLine(lineAddr)
	return l, res
}

// Load reads size bytes at addr through the cache as a device access.
func (m *Memory) Load(kind AccessKind, addr uint64, size int) ([]byte, AccessResult) {
	m.stats.Loads[kind]++
	l, res := m.access(addr, size)
	off := addr - l.tag
	return l.data[off : off+uint64(size)], res
}

// Store writes buf at addr through the cache as a device access
// (write-allocate, write-back).
func (m *Memory) Store(kind AccessKind, addr uint64, buf []byte) AccessResult {
	if m.fences != nil {
		m.checkFence("device store", addr, len(buf), false)
	}
	m.stats.Stores[kind]++
	l, res := m.access(addr, len(buf))
	off := addr - l.tag
	copy(l.data[off:], buf)
	l.dirty = true
	return res
}

// Crash simulates a power failure: every cached line — including dirty
// lines that were never written back — is discarded. The durable contents
// afterwards are exactly the NVM image.
func (m *Memory) Crash() {
	for i := range m.sets {
		for j := range m.sets[i].ways {
			m.sets[i].ways[j].valid = false
			m.sets[i].ways[j].dirty = false
		}
	}
	m.notify(PersistEvent{Kind: EvCrash})
}

// FlushAddr writes the line containing addr back to NVM if it is cached
// and dirty (the clwb/clflushopt primitive Eager Persistency relies on),
// returning whether a write-back happened. The line stays cached.
func (m *Memory) FlushAddr(addr uint64) bool {
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	set := &m.sets[m.setIndex(lineAddr)]
	for i := range set.ways {
		l := &set.ways[i]
		if l.valid && l.tag == lineAddr && l.dirty {
			m.writeBack(l)
			return true
		}
	}
	return false
}

// FlushAll writes every dirty line back to NVM and leaves the lines clean
// (a whole-cache flush, i.e. the checkpoint boundary from §IV-A). It
// returns the number of lines flushed.
func (m *Memory) FlushAll() int {
	n := 0
	for i := range m.sets {
		for j := range m.sets[i].ways {
			l := &m.sets[i].ways[j]
			if l.valid && l.dirty {
				m.writeBack(l)
				m.stats.FlushedLines++
				n++
			}
		}
	}
	return n
}

// DirtyLines returns the number of dirty (unpersisted) lines in the cache.
func (m *Memory) DirtyLines() int {
	n := 0
	for i := range m.sets {
		for j := range m.sets[i].ways {
			if m.sets[i].ways[j].valid && m.sets[i].ways[j].dirty {
				n++
			}
		}
	}
	return n
}

// PeekCoherent reads the current logical value of [addr, addr+size) —
// cache contents if present, NVM otherwise — without touching statistics
// or cache state. It is a host-side debugging view.
func (m *Memory) PeekCoherent(addr uint64, size int) []byte {
	out := make([]byte, size)
	ls := uint64(m.cfg.LineSize)
	for done := 0; done < size; {
		a := addr + uint64(done)
		lineAddr := a &^ (ls - 1)
		off := a - lineAddr
		n := int(ls - off)
		if n > size-done {
			n = size - done
		}
		found := false
		set := &m.sets[m.setIndex(lineAddr)]
		for i := range set.ways {
			l := &set.ways[i]
			if l.valid && l.tag == lineAddr {
				copy(out[done:done+n], l.data[off:])
				found = true
				break
			}
		}
		if !found {
			m.ensureNVM(lineAddr)
			copy(out[done:done+n], m.nvm[a:])
		}
		done += n
	}
	return out
}

// PeekCoherentU32 reads the current logical 32-bit value at addr without
// touching statistics, cache state, or the heap. addr must be 4-aligned.
// It is the primitive behind speculative-trace validation in gpusim, where
// a per-word PeekCoherent allocation would dominate the commit path.
func (m *Memory) PeekCoherentU32(addr uint64) uint32 {
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	set := &m.sets[m.setIndex(lineAddr)]
	for i := range set.ways {
		l := &set.ways[i]
		if l.valid && l.tag == lineAddr {
			return binary.LittleEndian.Uint32(l.data[addr-lineAddr:])
		}
	}
	if int(addr)+4 > len(m.nvm) {
		return 0
	}
	return binary.LittleEndian.Uint32(m.nvm[addr:])
}

// PeekCoherentU64 is PeekCoherentU32 for an 8-aligned 64-bit word.
func (m *Memory) PeekCoherentU64(addr uint64) uint64 {
	lineAddr := addr &^ uint64(m.cfg.LineSize-1)
	set := &m.sets[m.setIndex(lineAddr)]
	for i := range set.ways {
		l := &set.ways[i]
		if l.valid && l.tag == lineAddr {
			return binary.LittleEndian.Uint64(l.data[addr-lineAddr:])
		}
	}
	if int(addr)+8 > len(m.nvm) {
		return 0
	}
	return binary.LittleEndian.Uint64(m.nvm[addr:])
}

// NVMImage returns a copy of the full durable image — what a post-crash
// reader would see across every allocation. Determinism tests compare
// these images bit-for-bit across engine configurations.
func (m *Memory) NVMImage() []byte {
	out := make([]byte, len(m.nvm))
	copy(out, m.nvm)
	return out
}

// PeekNVM reads the durable (persisted) value of [addr, addr+size),
// ignoring any cached copy. This is what a post-crash reader would see.
func (m *Memory) PeekNVM(addr uint64, size int) []byte {
	end := int(addr) + size
	if end > len(m.nvm) {
		m.ensureNVM(uint64(end-1) &^ uint64(m.cfg.LineSize-1))
	}
	out := make([]byte, size)
	copy(out, m.nvm[addr:end])
	return out
}

// HostWrite writes buf directly to NVM at addr, invalidating any cached
// copy. It models pre-loading persistent input data (cudaMemcpy to a
// persistent heap before kernel launch) and is not counted as device
// traffic.
func (m *Memory) HostWrite(addr uint64, buf []byte) {
	if m.fences != nil {
		m.checkFence("host write", addr, len(buf), true)
	}
	end := int(addr) + len(buf)
	if end > len(m.nvm) {
		m.ensureNVM(uint64(end-1) &^ uint64(m.cfg.LineSize-1))
	}
	data := m.mediaHostEffective(addr, buf)
	m.mutateNVM(addr, data)
	m.notify(PersistEvent{Kind: EvHostWrite, Addr: addr, Data: data})
	ls := uint64(m.cfg.LineSize)
	first := addr &^ (ls - 1)
	last := (addr + uint64(len(buf)) - 1) &^ (ls - 1)
	for la := first; la <= last; la += ls {
		set := &m.sets[m.setIndex(la)]
		for i := range set.ways {
			l := &set.ways[i]
			if l.valid && l.tag == la {
				l.valid = false
				l.dirty = false
			}
		}
	}
}

// Float32Bits helpers shared by typed region views.

func f32FromBytes(b []byte) float32 { return math.Float32frombits(binary.LittleEndian.Uint32(b)) }
func f32ToBytes(dst []byte, v float32) {
	binary.LittleEndian.PutUint32(dst, math.Float32bits(v))
}
