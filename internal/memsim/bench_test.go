package memsim

import "testing"

// BenchmarkCachedLoad measures the hot path: a load that hits in cache.
func BenchmarkCachedLoad(b *testing.B) {
	m := MustNew(DefaultConfig())
	r := m.Alloc("data", 4096)
	r.StoreU32(AccessData, 0, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.LoadU32(AccessData, 0)
	}
}

// BenchmarkStreamingStores measures the miss/evict path: stores striding
// through a footprint larger than the cache.
func BenchmarkStreamingStores(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 << 10
	m := MustNew(cfg)
	elems := 1 << 18 // 1 MiB of u32, 16x the cache
	r := m.Alloc("data", elems*4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StoreU32(AccessData, (i*33)%elems, uint32(i))
	}
}

// BenchmarkFlushAll measures the checkpoint operation on a dirty cache.
func BenchmarkFlushAll(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 256 << 10
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := MustNew(cfg)
		r := m.Alloc("data", 256<<10)
		for e := 0; e < (256<<10)/4; e += 32 {
			r.StoreU32(AccessData, e, uint32(e))
		}
		b.StartTimer()
		m.FlushAll()
	}
}
