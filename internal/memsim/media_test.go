package memsim

import (
	"bytes"
	"testing"
)

// faultyConfig returns the tiny test memory with the seeded fault process
// armed at the given rates.
func faultyConfig(seed uint64, transient, stuck float64) Config {
	c := tinyConfig()
	c.Fault = FaultConfig{Enabled: true, Seed: seed, TransientPerWrite: transient, StuckPerWrite: stuck}
	return c
}

// TestFaultConfigValidate covers the typed validation of the fault knobs.
func TestFaultConfigValidate(t *testing.T) {
	bad := []Config{
		faultyConfig(1, -0.1, 0),
		faultyConfig(1, 1.5, 0),
		faultyConfig(1, 0, -1),
		faultyConfig(1, 0, 2),
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c.Fault)
		}
	}
	disabled := tinyConfig()
	disabled.Fault = FaultConfig{TransientPerWrite: 99} // ignored while disabled
	if _, err := New(disabled); err != nil {
		t.Errorf("disabled fault config rejected: %v", err)
	}
}

// TestTransientFaultCapturedAndScrubbed: with TransientPerWrite=1 every
// write-back captures one flipped bit; the durable bytes deviate from
// intent, and one Scrub sweep heals the line completely.
func TestTransientFaultCapturedAndScrubbed(t *testing.T) {
	m := MustNew(faultyConfig(42, 1, 0))
	r := m.Alloc("data", 64)
	for i := 0; i < 16; i++ {
		r.StoreU32(AccessData, i, 0xa5a5a5a5)
	}
	m.FlushAll()

	st := m.MediaStats()
	if st.Writes != 1 || st.Transient != 1 {
		t.Fatalf("stats after one write-back: %+v, want Writes=1 Transient=1", st)
	}
	diff := 0
	for i := 0; i < 16; i++ {
		if r.NVMU32(i) != 0xa5a5a5a5 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d words deviate from intent, want exactly 1 (single-bit error)", diff)
	}

	rep := m.Scrub()
	if rep.LinesScanned != 1 || rep.Corrupt != 1 || rep.Healed != 1 || !rep.Clean() {
		t.Fatalf("scrub report %+v, want 1 scanned/corrupt/healed, clean", rep)
	}
	for i := 0; i < 16; i++ {
		if got := r.NVMU32(i); got != 0xa5a5a5a5 {
			t.Fatalf("word %d = %#x after scrub, want healed %#x", i, got, 0xa5a5a5a5)
		}
	}
	if lines := m.MediaFaultyLines(); len(lines) != 0 {
		t.Fatalf("healed transient line still tracked: %v", lines)
	}
	// An idle follow-up sweep finds nothing.
	if rep := m.Scrub(); rep.LinesScanned != 0 || !rep.Clean() {
		t.Fatalf("idle scrub not empty: %+v", rep)
	}
}

// TestStuckAtPermanentAndUncorrectable: a stuck-at fault pins the cell
// against every write, scrub reports it uncorrectable, and checkpoint
// restore re-asserts it.
func TestStuckAtPermanentAndUncorrectable(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.StoreU32(AccessData, 0, 0xffffffff)
	m.FlushAll()

	m.PlantStuckAt(r.Base, 0, 0) // pin bit 0 of byte 0 to 0
	if got := r.NVMU32(0); got != 0xfffffffe {
		t.Fatalf("plant did not force durable bit: %#x", got)
	}

	// Every later write of the bit is overridden.
	r.StoreU32(AccessData, 0, 0xffffffff)
	m.FlushAll()
	if got := r.NVMU32(0); got != 0xfffffffe {
		t.Fatalf("write overrode stuck cell: %#x", got)
	}

	rep := m.Scrub()
	if rep.Uncorrectable != 1 || len(rep.UncorrectableLines) != 1 || rep.UncorrectableLines[0] != r.Base {
		t.Fatalf("scrub report %+v, want the stuck line uncorrectable", rep)
	}

	// A restore of a checkpoint that predates the fault still lands on the
	// pinned cell.
	snap := m.SnapshotNVM()
	m.RestoreNVM(snap)
	if got := r.NVMU32(0); got != 0xfffffffe {
		t.Fatalf("restore cleared stuck cell: %#x", got)
	}

	// Writing the stuck value makes the line deviation-free: intent now
	// agrees with the pinned cell, so scrub reports nothing to fix.
	r.StoreU32(AccessData, 0, 0xfffffffe)
	m.FlushAll()
	if rep := m.Scrub(); rep.Uncorrectable != 0 || rep.Corrupt != 0 {
		t.Fatalf("agreeing stuck line reported corrupt: %+v", rep)
	}
}

// TestStuckCellAbsorbsFlipBit: FlipBit on a pinned cell is a no-op (no
// durable change, no event); on other cells of a tracked line it is
// recorded as ECC-detectable and healed by scrub.
func TestStuckCellAbsorbsFlipBit(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	m.PlantStuckAt(r.Base, 3, 1)
	// Write the agreeing value so the line's only deviation risk is the
	// external flip below (a disagreeing stuck cell would stay
	// uncorrectable by design).
	r.StoreU32(AccessData, 0, 1<<3)
	m.FlushAll()

	events := 0
	m.SetPersistObserver(func(ev PersistEvent) { events++ })
	before := r.NVMU32(0)
	m.FlipBit(r.Base, 3)
	if got := r.NVMU32(0); got != before || events != 0 {
		t.Fatalf("pinned cell flipped: %#x -> %#x (%d events)", before, got, events)
	}

	m.FlipBit(r.Base+1, 5) // different byte, same tracked line
	rep := m.Scrub()
	if rep.Healed != 1 {
		t.Fatalf("tracked external flip not healed: %+v", rep)
	}
	if got := r.NVMU32(0); got != before {
		t.Fatalf("scrub did not restore flipped byte: %#x want %#x", got, before)
	}
}

// TestMediaFaultProcessDeterministic: the same seed and write sequence
// produce bit-identical durable images, stats, and faulty-line sets.
func TestMediaFaultProcessDeterministic(t *testing.T) {
	run := func() (*Memory, Region) {
		m := MustNew(faultyConfig(7, 0.5, 0.25))
		r := m.Alloc("data", 1024)
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 256; i++ {
				r.StoreU32(AccessData, i, uint32(i*pass)^0x9e37)
			}
			m.FlushAll()
		}
		return m, r
	}
	m1, _ := run()
	m2, _ := run()
	if !bytes.Equal(m1.NVMImage(), m2.NVMImage()) {
		t.Error("durable images diverge across identical runs")
	}
	if m1.MediaStats() != m2.MediaStats() {
		t.Errorf("media stats diverge: %+v vs %+v", m1.MediaStats(), m2.MediaStats())
	}
	l1, l2 := m1.MediaFaultyLines(), m2.MediaFaultyLines()
	if len(l1) != len(l2) {
		t.Fatalf("faulty line sets diverge: %v vs %v", l1, l2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("faulty line sets diverge at %d: %v vs %v", i, l1, l2)
		}
	}
	if st := m1.MediaStats(); st.Transient == 0 || st.Stuck == 0 {
		t.Fatalf("fault process produced no faults at high rates: %+v", st)
	}
}

// TestMediaOracleShadowExact: an event-replayed shadow image must stay
// bit-exact through fault-process write-backs, planted stuck-at cells,
// scrub repairs, crashes, and checkpoint restores — the PR 3 oracle
// contract extended to the new event kinds.
func TestMediaOracleShadowExact(t *testing.T) {
	m := MustNew(faultyConfig(13, 0.4, 0.1))
	var shadow []byte
	grow := func(end uint64) {
		for uint64(len(shadow)) < end {
			shadow = append(shadow, 0)
		}
	}
	m.SetPersistObserver(func(ev PersistEvent) {
		switch ev.Kind {
		case EvWriteBack, EvTornWriteBack, EvHostWrite, EvStuckAt, EvScrubRepair:
			grow(ev.Addr + uint64(len(ev.Data)))
			copy(shadow[ev.Addr:], ev.Data)
		case EvBitFlip:
			grow(ev.Addr + 1)
			shadow[ev.Addr] ^= 1 << ev.Bit
		case EvRestore:
			shadow = append(shadow[:0], ev.Data...)
		}
	})

	r := m.Alloc("data", 512)
	check := func(stage string) {
		t.Helper()
		img := m.NVMImage()
		grow(uint64(len(img)))
		if !bytes.Equal(shadow, img[:len(shadow)]) {
			t.Fatalf("%s: shadow diverges from durable image", stage)
		}
	}

	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 128; i++ {
			r.StoreU32(AccessData, i, uint32(i)+uint32(pass)<<16)
		}
		m.FlushAll()
		check("flush")
		m.Scrub()
		check("scrub")
	}
	m.PlantStuckAt(r.Base+17, 2, 1)
	check("plant")
	ckpt := m.SnapshotNVM()
	r.StoreU32(AccessData, 4, 0xdddddddd)
	m.Crash()
	check("crash")
	m.RestoreNVM(ckpt)
	check("restore (stuck cells re-asserted)")
	m.Scrub()
	check("final scrub")
}
