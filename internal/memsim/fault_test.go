package memsim

import (
	"bytes"
	"math/rand"
	"testing"
)

// dirtySystem builds a memory with one region fully written through the
// cache (dirty, nothing persisted yet) and returns the region.
func dirtySystem(t *testing.T) (*Memory, Region) {
	t.Helper()
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 512)
	for i := 0; i < 128; i++ {
		r.StoreU32(AccessData, i, uint32(i)*2654435761+1)
	}
	return m, r
}

func TestPartialCrashAccounting(t *testing.T) {
	m, _ := dirtySystem(t)
	dirty := m.DirtyLines()
	if dirty == 0 {
		t.Fatal("setup produced no dirty lines")
	}
	rep := m.PartialCrash(rand.New(rand.NewSource(1)), CrashProfile{EvictFrac: 0.5, TornFrac: 0.5})
	if rep.Dirty != dirty {
		t.Errorf("report Dirty = %d, want %d", rep.Dirty, dirty)
	}
	if rep.Evicted+rep.Torn+rep.Dropped != rep.Dirty {
		t.Errorf("report does not partition the dirty lines: %v", rep)
	}
	if m.DirtyLines() != 0 {
		t.Error("cache still holds dirty lines after PartialCrash")
	}
}

func TestPartialCrashDeterministic(t *testing.T) {
	var imgs [2][]byte
	for trial := range imgs {
		m, r := dirtySystem(t)
		m.PartialCrash(rand.New(rand.NewSource(42)), CrashProfile{EvictFrac: 0.6, TornFrac: 0.4})
		imgs[trial] = m.PeekNVM(r.Base, r.Size)
	}
	if !bytes.Equal(imgs[0], imgs[1]) {
		t.Fatal("same seed produced different durable images")
	}
}

func TestPartialCrashNilRngIsCrash(t *testing.T) {
	m, r := dirtySystem(t)
	rep := m.PartialCrash(nil, CrashProfile{EvictFrac: 1, TornFrac: 1})
	if rep.Dropped != rep.Dirty || rep.Evicted != 0 || rep.Torn != 0 {
		t.Fatalf("nil rng should drop everything: %v", rep)
	}
	if !bytes.Equal(m.PeekNVM(r.Base, r.Size), make([]byte, r.Size)) {
		t.Error("nil-rng PartialCrash persisted data")
	}
}

func TestPartialCrashFullEviction(t *testing.T) {
	m, r := dirtySystem(t)
	logical := m.PeekCoherent(r.Base, r.Size)
	rep := m.PartialCrash(rand.New(rand.NewSource(3)), CrashProfile{EvictFrac: 1})
	if rep.Evicted != rep.Dirty {
		t.Fatalf("EvictFrac=1 should evict every line: %v", rep)
	}
	if !bytes.Equal(m.PeekNVM(r.Base, r.Size), logical) {
		t.Error("full eviction did not persist the logical image")
	}
}

// TestTornWriteBackPersistsPrefix: with every write-back torn, each
// line's durable contents must be a non-empty, strictly proper, 8-byte
// aligned prefix of the cached line over the old durable contents.
func TestTornWriteBackPersistsPrefix(t *testing.T) {
	cfg := tinyConfig()
	m := MustNew(cfg)
	r := m.Alloc("data", cfg.LineSize) // exactly one line
	for i := 0; i < cfg.LineSize/4; i++ {
		r.StoreU32(AccessData, i, 0xA5A5A5A5)
	}
	rep := m.PartialCrash(rand.New(rand.NewSource(9)), CrashProfile{EvictFrac: 1, TornFrac: 1})
	if rep.Torn != 1 {
		t.Fatalf("expected the single dirty line torn: %v", rep)
	}
	img := m.PeekNVM(r.Base, r.Size)
	n := 0
	for n < len(img) && img[n] == 0xA5 {
		n++
	}
	if n == 0 || n == len(img) || n%8 != 0 {
		t.Fatalf("torn prefix length %d: want non-empty proper multiple of 8", n)
	}
	for _, b := range img[n:] {
		if b != 0 {
			t.Fatal("torn tail does not keep previous durable contents")
		}
	}
}

func TestInjectBitFlipsRange(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	m.FlushAll()
	before := m.PeekNVM(r.Base, r.Size)
	flipped := m.InjectBitFlipsRange(rand.New(rand.NewSource(5)), r.Base, r.Size, 3)
	if len(flipped) != 3 {
		t.Fatalf("reported %d flips, want 3", len(flipped))
	}
	after := m.PeekNVM(r.Base, r.Size)
	diff := 0
	for i := range after {
		if after[i] != before[i] {
			diff++
		}
	}
	if diff == 0 || diff > 3 {
		t.Fatalf("%d bytes changed, want 1..3 (flips may collide)", diff)
	}
	for _, a := range flipped {
		if !r.Contains(a) {
			t.Fatalf("flip address %#x outside target region", a)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, r := dirtySystem(t)
	m.FlushAll()
	snap := m.SnapshotNVM()
	golden := m.PeekNVM(r.Base, r.Size)

	for i := 0; i < 128; i++ {
		r.StoreU32(AccessData, i, 0xFFFFFFFF)
	}
	m.FlushAll()
	late := m.Alloc("late", 256)
	late.HostFillU64(0x1111111111111111)

	m.RestoreNVM(snap)
	if !bytes.Equal(m.PeekNVM(r.Base, r.Size), golden) {
		t.Error("restore did not bring back the snapshotted image")
	}
	if !bytes.Equal(m.PeekCoherent(r.Base, r.Size), golden) {
		t.Error("restore left stale cached lines visible")
	}
	if !bytes.Equal(m.PeekNVM(late.Base, late.Size), make([]byte, late.Size)) {
		t.Error("bytes allocated after the snapshot must restore to zero")
	}
}

// --- crash / flush edge cases ---

func TestCrashWithCleanCacheIsNoOp(t *testing.T) {
	m, r := dirtySystem(t)
	m.FlushAll()
	durable := m.PeekNVM(r.Base, r.Size)
	m.Crash() // nothing dirty: durable state must be untouched
	if !bytes.Equal(m.PeekNVM(r.Base, r.Size), durable) {
		t.Error("crash with a clean cache changed the durable image")
	}
	if m.DirtyLines() != 0 {
		t.Error("dirty lines appeared from nowhere")
	}
	if got := r.PeekU32(0); got != uint32(0)*2654435761+1 {
		t.Errorf("post-crash read = %d, want the flushed value", got)
	}
}

func TestFlushAddrUnmappedAndClean(t *testing.T) {
	m, r := dirtySystem(t)
	// An address no allocation covers: not cached, must be a clean no-op.
	if m.FlushAddr(1 << 30) {
		t.Error("FlushAddr on an unmapped address reported a write-back")
	}
	m.FlushAll()
	if m.FlushAddr(r.Base) {
		t.Error("FlushAddr on a clean line reported a write-back")
	}
}

func TestFlushAddrUnaligned(t *testing.T) {
	m, r := dirtySystem(t)
	// Mid-line address: the containing line must be flushed.
	if !m.FlushAddr(r.Base + 13) {
		t.Fatal("FlushAddr mid-line did not write the dirty line back")
	}
	line := m.PeekNVM(r.Base, m.cfg.LineSize)
	want := m.PeekCoherent(r.Base, m.cfg.LineSize)
	if !bytes.Equal(line, want) {
		t.Error("flushed line's durable contents differ from the cached line")
	}
}

// TestPeekViewsConvergeAfterCrash: while a line is dirty the coherent
// and durable views must differ; a crash discards the cached copy, so
// both views collapse to the old durable contents.
func TestPeekViewsConvergeAfterCrash(t *testing.T) {
	m, r := dirtySystem(t)
	if bytes.Equal(m.PeekCoherent(r.Base, r.Size), m.PeekNVM(r.Base, r.Size)) {
		t.Fatal("dirty data: coherent and durable views should diverge")
	}
	durable := m.PeekNVM(r.Base, r.Size)
	m.Crash()
	if !bytes.Equal(m.PeekCoherent(r.Base, r.Size), durable) {
		t.Error("after crash the coherent view must equal the durable image")
	}
	if !bytes.Equal(m.PeekNVM(r.Base, r.Size), durable) {
		t.Error("crash changed the durable image")
	}
}

// TestRestoreNVMSnapshotFrozen is the regression test for the violation
// lpvet's persistbarrier pass found in RestoreNVM: it copied the rollback
// image into the durable array directly, so a live copy-on-write snapshot
// — whose lazy capture relies on every mutation routing through
// mutateNVM — saw the restored bytes bleed into its "frozen" view.
func TestRestoreNVMSnapshotFrozen(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, uint32(i)+7)
	}
	m.FlushAll()
	ckpt := m.SnapshotNVM() // rollback image: elements i+7

	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, 0xcafe0000+uint32(i))
	}
	m.FlushAll() // durable image now holds the cafe values, all lines clean

	s := m.BeginSnapshot()
	frozen := make([]byte, r.Size)
	for i := 0; i < 64; i++ {
		s.read(r.Base+uint64(4*i), frozen[4*i:4*i+4])
	}

	m.RestoreNVM(ckpt) // mid-snapshot rollback

	for i := 0; i < 64; i++ {
		if got := s.ReadU32(r.Base + uint64(4*i)); got != 0xcafe0000+uint32(i) {
			t.Fatalf("snapshot leaked restore at element %d: read %#x, want frozen %#x",
				i, got, 0xcafe0000+uint32(i))
		}
	}
	m.EndSnapshot()

	if got := r.NVMU32(0); got != 7 {
		t.Errorf("durable image after restore = %#x, want rolled-back %#x", got, 7)
	}
	_ = frozen
}

// TestRestoreNVMSnapshotGrownImage covers the backing-array growth path:
// restoring an image larger than the current durable array replaces the
// array, and the active snapshot must keep reading its own (old) one.
func TestRestoreNVMSnapshotGrownImage(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 128)
	r.HostFillU64(0x2222222222222222)

	s := m.BeginSnapshot()

	big := make([]byte, len(m.NVMImage())+4096)
	for i := range big {
		big[i] = 0x5a
	}
	m.RestoreNVM(big)

	if got := s.ReadU64(r.Base); got != 0x2222222222222222 {
		t.Errorf("snapshot leaked grown restore: read %#x, want frozen %#x",
			got, uint64(0x2222222222222222))
	}
	m.EndSnapshot()
	if got := m.PeekNVM(r.Base, 1); got[0] != 0x5a {
		t.Errorf("durable image after grown restore = %#x, want 0x5a", got[0])
	}
}
