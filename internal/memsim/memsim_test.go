package memsim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func tinyConfig() Config {
	return Config{
		LineSize:        64,
		CacheBytes:      64 * 8 * 2, // 2 sets, 8 ways
		Ways:            8,
		NVMReadNS:       160,
		NVMWriteNS:      480,
		NVMBandwidthGBs: 326.4,
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"zero line", Config{LineSize: 0, CacheBytes: 1024, Ways: 2}, "LineSize"},
		{"non pow2 line", Config{LineSize: 96, CacheBytes: 1024, Ways: 2}, "LineSize"},
		{"zero ways", Config{LineSize: 64, CacheBytes: 1024, Ways: 0}, "Ways"},
		{"cache too small", Config{LineSize: 64, CacheBytes: 64, Ways: 2}, "CacheBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.cfg)
			if err == nil {
				t.Fatalf("New(%+v) = %v, want error", tc.cfg, m)
			}
			if !errors.Is(err, ErrConfig) {
				t.Errorf("New(%+v) error %v does not wrap ErrConfig", tc.cfg, err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("New(%+v) error %v is not a *ConfigError", tc.cfg, err)
			}
			if ce.Field != tc.field {
				t.Errorf("New(%+v) blamed field %q, want %q", tc.cfg, ce.Field, tc.field)
			}
		})
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on a bad config did not panic")
		}
	}()
	MustNew(Config{LineSize: 0, CacheBytes: 1024, Ways: 2})
}

func TestAllocAlignment(t *testing.T) {
	m := MustNew(tinyConfig())
	a := m.Alloc("a", 10)
	b := m.Alloc("b", 100)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Errorf("allocations not line aligned: a=%#x b=%#x", a.Base, b.Base)
	}
	if b.Base < a.End() {
		t.Errorf("allocations overlap: a=[%#x,%#x) b=%#x", a.Base, a.End(), b.Base)
	}
	if a.Base == 0 {
		t.Error("address 0 should not be allocated")
	}
}

func TestAllocInvalidSize(t *testing.T) {
	m := MustNew(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with size 0 did not panic")
		}
	}()
	m.Alloc("bad", 0)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)

	r.StoreF32(AccessData, 3, 3.5)
	if got, _ := r.LoadF32(AccessData, 3); got != 3.5 {
		t.Errorf("LoadF32 = %v, want 3.5", got)
	}
	r.StoreU64(AccessChecksum, 7, 0xdeadbeefcafe)
	if got, _ := r.LoadU64(AccessChecksum, 7); got != 0xdeadbeefcafe {
		t.Errorf("LoadU64 = %#x, want 0xdeadbeefcafe", got)
	}
	r.StoreI32(AccessData, 11, -42)
	if got, _ := r.LoadI32(AccessData, 11); got != -42 {
		t.Errorf("LoadI32 = %d, want -42", got)
	}
}

func TestHitMissAccounting(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)

	_, res := r.LoadF32(AccessData, 0)
	if res.Hit || res.LinesFetched != 1 {
		t.Errorf("first access: got %+v, want miss with one fetch", res)
	}
	// Same line (64B line = 16 f32): index 1 must hit.
	_, res = r.LoadF32(AccessData, 1)
	if !res.Hit {
		t.Errorf("second access to same line missed: %+v", res)
	}
	s := m.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
	if s.Loads[AccessData] != 2 {
		t.Errorf("data loads = %d, want 2", s.Loads[AccessData])
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	cfg := tinyConfig() // 16 lines total, 2 sets x 8 ways
	m := MustNew(cfg)
	r := m.Alloc("data", 64*64) // 64 lines

	// Dirty line 0 (set 0), then touch enough other set-0 lines to evict it.
	r.StoreF32(AccessData, 0, 1.25)
	if got := r.NVMF32(0); got == 1.25 {
		t.Fatal("store reached NVM before eviction")
	}
	// Lines mapping to set 0 are every other line (2 sets).
	for i := 1; i <= 8; i++ {
		lineElem := i * 2 * 16 // every 2nd line, 16 f32 per line
		r.LoadF32(AccessData, lineElem)
	}
	if got := r.NVMF32(0); got != 1.25 {
		t.Errorf("evicted dirty line not written back: NVM value %v, want 1.25", got)
	}
	s := m.Stats()
	if s.NVMLineWrites == 0 {
		t.Error("no NVM line writes recorded")
	}
	if s.NVMWritesByRegion["data"] == 0 {
		t.Error("write-back not attributed to region \"data\"")
	}
}

func TestCrashLosesDirtyData(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)
	r.HostWriteF32s(make([]float32, 256)) // durable zeros

	r.StoreF32(AccessData, 5, 99)
	if got := r.PeekF32(5); got != 99 {
		t.Fatalf("coherent view before crash = %v, want 99", got)
	}
	m.Crash()
	if got := r.PeekF32(5); got != 0 {
		t.Errorf("value survived crash without write-back: %v, want 0", got)
	}
	if m.DirtyLines() != 0 {
		t.Errorf("dirty lines after crash = %d, want 0", m.DirtyLines())
	}
}

func TestFlushAllPersists(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)

	r.StoreF32(AccessData, 5, 99)
	n := m.FlushAll()
	if n != 1 {
		t.Errorf("FlushAll flushed %d lines, want 1", n)
	}
	m.Crash()
	if got := r.NVMF32(5); got != 99 {
		t.Errorf("flushed value lost after crash: %v, want 99", got)
	}
	if s := m.Stats(); s.FlushedLines != 1 {
		t.Errorf("FlushedLines = %d, want 1", s.FlushedLines)
	}
}

func TestHostWriteInvalidatesCache(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)

	r.StoreF32(AccessData, 0, 1) // cached dirty
	r.HostWriteF32s([]float32{7, 8, 9})
	if got, _ := r.LoadF32(AccessData, 0); got != 7 {
		t.Errorf("load after HostWrite = %v, want 7 (stale cache not invalidated)", got)
	}
	if got := r.NVMF32(2); got != 9 {
		t.Errorf("HostWrite not durable: %v, want 9", got)
	}
}

func TestPeekViewsDiffer(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 1024)
	r.HostZero()

	r.StoreF32(AccessData, 0, 5)
	if got := r.PeekF32(0); got != 5 {
		t.Errorf("PeekF32 (coherent) = %v, want 5", got)
	}
	if got := r.NVMF32(0); got != 0 {
		t.Errorf("NVMF32 (durable) = %v, want 0 before eviction", got)
	}
}

func TestRegionBounds(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	r.LoadF32(AccessData, 4) // elem 4 needs bytes [16,20)
}

func TestCrossLineAccessPanics(t *testing.T) {
	m := MustNew(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	m.Load(AccessData, 62, 4) // line size 64
}

func TestRegionAttributionMultipleRegions(t *testing.T) {
	m := MustNew(tinyConfig())
	a := m.Alloc("alpha", 64)
	b := m.Alloc("beta", 64)
	a.StoreU32(AccessData, 0, 1)
	b.StoreU32(AccessData, 0, 2)
	m.FlushAll()
	s := m.Stats()
	if s.NVMWritesByRegion["alpha"] != 1 || s.NVMWritesByRegion["beta"] != 1 {
		t.Errorf("attribution = %v, want alpha:1 beta:1", s.NVMWritesByRegion)
	}
}

func TestResetStats(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.StoreU32(AccessData, 0, 1)
	m.ResetStats()
	s := m.Stats()
	if s.Hits+s.Misses+s.NVMLineReads+s.NVMLineWrites != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	// Contents must survive a stats reset.
	if got, _ := r.LoadU32(AccessData, 0); got != 1 {
		t.Errorf("contents lost on ResetStats: %d", got)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessData.String() != "data" || AccessChecksum.String() != "checksum" || AccessAtomic.String() != "atomic" {
		t.Error("AccessKind.String mismatch")
	}
	if AccessKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

// TestPropertyCoherentMatchesShadow drives random stores/loads against the
// cache hierarchy and checks the coherent view always equals a flat shadow
// array — the fundamental functional invariant of the hierarchy.
func TestPropertyCoherentMatchesShadow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(tinyConfig())
		const elems = 512
		r := m.Alloc("data", elems*4)
		r.HostZero()
		shadow := make([]uint32, elems)
		for op := 0; op < 2000; op++ {
			idx := rng.Intn(elems)
			switch rng.Intn(4) {
			case 0, 1: // store
				v := rng.Uint32()
				r.StoreU32(AccessData, idx, v)
				shadow[idx] = v
			case 2: // load must match shadow
				if got, _ := r.LoadU32(AccessData, idx); got != shadow[idx] {
					return false
				}
			case 3: // coherent peek must match shadow
				if r.PeekU32(idx) != shadow[idx] {
					return false
				}
			}
		}
		// After a flush, the durable image matches the shadow too.
		m.FlushAll()
		for i := range shadow {
			if r.NVMU32(i) != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCrashSubset checks that after a crash, every durable value is
// either the pre-run initial value or some value that was actually stored —
// never garbage. (Persistency can lose suffixes, not invent data.)
func TestPropertyCrashSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(tinyConfig())
		const elems = 256
		r := m.Alloc("data", elems*4)
		r.HostZero()
		written := make(map[int]map[uint32]bool)
		for op := 0; op < 1000; op++ {
			idx := rng.Intn(elems)
			v := rng.Uint32() | 1 // never store zero, so zero = initial
			r.StoreU32(AccessData, idx, v)
			if written[idx] == nil {
				written[idx] = map[uint32]bool{}
			}
			written[idx][v] = true
		}
		m.Crash()
		for i := 0; i < elems; i++ {
			got := r.NVMU32(i)
			if got == 0 {
				continue // initial value: store never persisted
			}
			if !written[i][got] {
				return false // durable state contains a never-written value
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsNVMBytes(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.StoreU32(AccessData, 0, 1)
	m.FlushAll()
	s := m.Stats()
	if got := s.NVMBytesWritten(64); got != 64 {
		t.Errorf("NVMBytesWritten = %d, want 64", got)
	}
	if s.HitRate() < 0 || s.HitRate() > 1 {
		t.Errorf("HitRate out of range: %v", s.HitRate())
	}
}

func TestPeekSlices(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.HostWriteI32s([]int32{1, -2, 3})
	got := r.PeekI32s(3)
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("PeekI32s = %v", got)
	}
	r.HostWriteF32s([]float32{1.5, 2.5})
	gf := r.PeekF32s(2)
	if gf[0] != 1.5 || gf[1] != 2.5 {
		t.Errorf("PeekF32s = %v", gf)
	}
	r.HostWriteU64s([]uint64{42})
	if r.PeekU64(0) != 42 {
		t.Errorf("PeekU64 = %d", r.PeekU64(0))
	}
}
