package memsim

import "testing"

func TestLRUEvictsOldest(t *testing.T) {
	// 2 sets x 8 ways of 64B lines. Fill one set's 8 ways, touch the
	// first 7 again, then bring in a 9th line: way 8 (the LRU) must go.
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64*64)
	line := func(i int) int { return i * 2 * 16 } // every other line -> set 0

	for i := 0; i < 8; i++ {
		r.StoreU32(AccessData, line(i), uint32(i+1))
	}
	for i := 0; i < 7; i++ {
		r.LoadU32(AccessData, line(i)) // refresh all but line 7
	}
	r.LoadU32(AccessData, line(8)) // evicts line 7
	s := m.Stats()
	if s.NVMLineWrites != 1 {
		t.Fatalf("evictions = %d, want exactly 1", s.NVMLineWrites)
	}
	if got := r.NVMU32(line(7)); got != 8 {
		t.Errorf("evicted line was not the LRU: NVM[line7]=%d, want 8", got)
	}
	if got := r.NVMU32(line(0)); got != 0 {
		t.Errorf("recently used line was evicted: NVM[line0]=%d, want 0", got)
	}
}

func TestSetMappingIsolatesSets(t *testing.T) {
	// Lines mapping to set 1 must not evict set 0's contents.
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64*64)
	r.StoreU32(AccessData, 0, 42) // set 0
	for i := 0; i < 16; i++ {
		r.LoadU32(AccessData, (2*i+1)*16) // odd lines -> set 1
	}
	if got, res := r.LoadU32(AccessData, 0); got != 42 || !res.Hit {
		t.Errorf("set-0 line disturbed by set-1 traffic: v=%d hit=%v", got, res.Hit)
	}
}

func TestHostPutU64(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.StoreU64(AccessData, 1, 111) // cached dirty
	r.HostPutU64(1, 222)
	if got := r.NVMU64(1); got != 222 {
		t.Errorf("HostPutU64 not durable: %d", got)
	}
	if got, _ := r.LoadU64(AccessData, 1); got != 222 {
		t.Errorf("HostPutU64 did not invalidate the cached copy: %d", got)
	}
}

func TestHostFillU64(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	r.HostFillU64(^uint64(0))
	for i := 0; i < 8; i++ {
		if r.NVMU64(i) != ^uint64(0) {
			t.Fatalf("element %d not filled", i)
		}
	}
	t.Run("misaligned panics", func(t *testing.T) {
		r2 := m.Alloc("odd", 12)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for non-multiple-of-8 fill")
			}
		}()
		r2.HostFillU64(1)
	})
}

func TestPeekCoherentSpansLines(t *testing.T) {
	// A coherent peek across a cached line and an uncached line must
	// stitch the correct view.
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	r.HostWriteI32s(make([]int32, 64)) // durable zeros
	r.StoreU32(AccessData, 0, 0xAAAA)  // line 0 cached dirty
	// Element 16 is in line 1, never cached.
	raw := m.PeekCoherent(r.Base, 68)
	if raw[0] != 0xAA || raw[1] != 0xAA {
		t.Error("coherent span missed the cached line's dirty data")
	}
	if raw[64] != 0 || raw[67] != 0 {
		t.Error("coherent span corrupted the uncached tail")
	}
}

func TestRegionContains(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64)
	if !r.Contains(r.Base) || !r.Contains(r.End()-1) {
		t.Error("Contains excludes its own range")
	}
	if r.Contains(r.End()) || r.Contains(r.Base-1) {
		t.Error("Contains includes neighbors")
	}
}

func TestDirtyLinesCounts(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 64*4)
	if m.DirtyLines() != 0 {
		t.Fatal("fresh cache has dirty lines")
	}
	r.StoreU32(AccessData, 0, 1)
	r.StoreU32(AccessData, 16, 1) // second line
	if got := m.DirtyLines(); got != 2 {
		t.Errorf("DirtyLines = %d, want 2", got)
	}
	m.FlushAll()
	if m.DirtyLines() != 0 {
		t.Error("flush left dirty lines")
	}
}
