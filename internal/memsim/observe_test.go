package memsim

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestBitFlipUnderSnapshotFrozen is the regression test for the
// snapshot × fault-injection interaction: a media bit flip landing on a
// line the snapshot has NOT copy-on-write-shadowed (clean or uncached)
// used to write the shared backing array directly, so the "frozen"
// coherent view leaked the flip. The flip must surface only to durable
// readers; the snapshot must keep presenting pre-flip bytes.
func TestBitFlipUnderSnapshotFrozen(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, uint32(i)+100)
	}
	m.FlushAll() // every line clean and durable — no eager COW copies
	s := m.BeginSnapshot()

	addr := r.Base + 4*7 // element 7
	before := s.ReadU32(addr)
	m.FlipBit(addr, 3)

	if got := s.ReadU32(addr); got != before {
		t.Errorf("snapshot leaked bit flip: read %#x, want frozen %#x", got, before)
	}
	if got := r.NVMU32(7); got != before^(1<<3) {
		t.Errorf("durable image missing flip: read %#x, want %#x", got, before^(1<<3))
	}
	m.EndSnapshot()

	// After a crash the flip is what post-crash readers load.
	m.Crash()
	if got, _ := r.LoadU32(AccessData, 7); got != before^(1<<3) {
		t.Errorf("post-crash load = %#x, want flipped %#x", got, before^(1<<3))
	}
}

// TestBitFlipUnderSnapshotDirtyLine covers the COW-shadowed case: the
// line was dirty at BeginSnapshot (eagerly copied with its coherent
// value), then flushed and hit by a flip. The snapshot must present the
// original coherent value throughout.
func TestBitFlipUnderSnapshotDirtyLine(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	r.StoreU32(AccessData, 0, 0xdeadbeef) // dirty, not yet durable
	s := m.BeginSnapshot()

	m.FlushAll()
	m.FlipBit(r.Base, 0)

	if got := s.ReadU32(r.Base); got != 0xdeadbeef {
		t.Errorf("snapshot of dirty line = %#x, want frozen %#x", got, 0xdeadbeef)
	}
	if got := r.NVMU32(0); got != 0xdeadbeef^1 {
		t.Errorf("durable image = %#x, want flushed-then-flipped %#x", got, 0xdeadbeef^1)
	}
	m.EndSnapshot()
}

// TestTornWriteBackUnderSnapshotFrozen: torn write-backs mutate the
// durable array mid-snapshot and must likewise stay invisible to the
// frozen view.
func TestTornWriteBackUnderSnapshotFrozen(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 256)
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, uint32(i)*2654435761+1)
	}
	want := make([]uint32, 64)
	for i := range want {
		want[i], _ = r.LoadU32(AccessData, i)
	}
	s := m.BeginSnapshot()
	m.PartialCrash(rand.New(rand.NewSource(7)), CrashProfile{EvictFrac: 1, TornFrac: 1})
	for i := range want {
		if got := s.ReadU32(r.Base + uint64(4*i)); got != want[i] {
			t.Fatalf("snapshot[%d] = %#x after torn write-backs, want frozen %#x", i, got, want[i])
		}
	}
	m.EndSnapshot()
}

// TestFaultProcessUnderSnapshotFrozen extends the snapshot × fault
// regression to the online media-error model: write-backs whose bytes are
// perturbed by the seeded fault process (transient flips, fresh stuck-at
// cells) mutate the durable array mid-snapshot and must stay invisible to
// the frozen view.
func TestFaultProcessUnderSnapshotFrozen(t *testing.T) {
	cfg := tinyConfig()
	cfg.Fault = FaultConfig{Enabled: true, Seed: 11, TransientPerWrite: 1, StuckPerWrite: 0.5}
	m := MustNew(cfg)
	r := m.Alloc("data", 256)
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, uint32(i)+7)
	}
	m.FlushAll() // faulted bytes land durably; coherent view unaffected
	s := m.BeginSnapshot()

	want := make([]uint32, 64)
	for i := range want {
		want[i] = s.ReadU32(r.Base + uint64(4*i))
	}
	// Dirty every line again and force faulted write-backs under the live
	// snapshot.
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, uint32(i)*2654435761)
	}
	m.FlushAll()
	for i := range want {
		if got := s.ReadU32(r.Base + uint64(4*i)); got != want[i] {
			t.Fatalf("snapshot[%d] = %#x after faulted write-backs, want frozen %#x", i, got, want[i])
		}
	}
	if st := m.MediaStats(); st.Transient == 0 {
		t.Fatal("fault process injected nothing — test exercised no fault path")
	}
	m.EndSnapshot()
}

// TestScrubAndStuckAtUnderSnapshotFrozen: scrub rewrites and planted
// stuck-at forcings route through the COW paths too, so a live snapshot
// must not observe them either.
func TestScrubAndStuckAtUnderSnapshotFrozen(t *testing.T) {
	cfg := tinyConfig()
	cfg.Fault = FaultConfig{Enabled: true, Seed: 3, TransientPerWrite: 1}
	m := MustNew(cfg)
	r := m.Alloc("data", 256)
	for i := 0; i < 64; i++ {
		r.StoreU32(AccessData, i, 0x5a5a0000+uint32(i))
	}
	m.FlushAll() // every line now carries one transient flip
	s := m.BeginSnapshot()

	want := make([]uint32, 64)
	for i := range want {
		want[i] = s.ReadU32(r.Base + uint64(4*i))
	}
	rep := m.Scrub() // heals the flips — durably, under the snapshot
	if rep.Healed == 0 {
		t.Fatal("scrub healed nothing — test exercised no repair path")
	}
	m.PlantStuckAt(r.Base+5, 6, 1) // forces a durable byte immediately
	for i := range want {
		if got := s.ReadU32(r.Base + uint64(4*i)); got != want[i] {
			t.Fatalf("snapshot[%d] = %#x after scrub/plant, want frozen %#x", i, got, want[i])
		}
	}
	m.EndSnapshot()

	// Post-snapshot, durable readers see the healed + pinned bytes: word 1
	// holds the healed value plus the stuck-at bit (byte 5, bit 6 — bit 14
	// of the word).
	m.Crash()
	want1 := uint32(0x5a5a0001) | 1<<14
	if got, _ := r.LoadU32(AccessData, 1); got != want1 {
		t.Errorf("post-crash word 1 = %#x, want healed+pinned %#x", got, want1)
	}
}

// TestPersistObserverStream checks that the observer sees every durable
// mutation with the bytes that actually landed: a shadow image replayed
// from events alone must equal the real durable image.
func TestPersistObserverStream(t *testing.T) {
	m := MustNew(tinyConfig())
	shadow := make([]byte, 0)
	grow := func(end uint64) {
		for uint64(len(shadow)) < end {
			shadow = append(shadow, 0)
		}
	}
	crashes := 0
	m.SetPersistObserver(func(ev PersistEvent) {
		switch ev.Kind {
		case EvWriteBack, EvTornWriteBack, EvHostWrite:
			grow(ev.Addr + uint64(len(ev.Data)))
			copy(shadow[ev.Addr:], ev.Data)
		case EvBitFlip:
			grow(ev.Addr + 1)
			shadow[ev.Addr] ^= 1 << ev.Bit
		case EvRestore:
			shadow = append(shadow[:0], ev.Data...)
		case EvCrash:
			crashes++
		}
	})

	r := m.Alloc("data", 512)
	for i := 0; i < 128; i++ {
		r.StoreU32(AccessData, i, uint32(i)^0x5a5a)
	}
	m.FlushAddr(r.Base)
	r.HostWriteU64s([]uint64{1, 2, 3})
	m.InjectBitFlips(rand.New(rand.NewSource(3)), 5)
	m.PartialCrash(rand.New(rand.NewSource(9)), CrashProfile{EvictFrac: 0.7, TornFrac: 0.5})

	img := m.NVMImage()
	grow(uint64(len(img)))
	if len(shadow) > len(img) {
		t.Fatalf("shadow grew past the durable image: %d > %d", len(shadow), len(img))
	}
	if !bytes.Equal(shadow, img[:len(shadow)]) {
		t.Error("event-replayed shadow diverges from durable image")
	}
	if crashes != 1 {
		t.Errorf("observed %d crash events, want 1", crashes)
	}

	snap := m.SnapshotNVM()
	m.HostWrite(r.Base, []byte{0xff, 0xff})
	m.RestoreNVM(snap)
	if !bytes.Equal(shadow, m.NVMImage()[:len(shadow)]) {
		t.Error("shadow diverges after restore")
	}
}

// TestPlantDropWriteBack verifies the planted persistency bug: the nth
// write-back is acknowledged (line clean, eviction observed, traffic
// counted) but its bytes never reach NVM — and that the observer-driven
// shadow therefore diverges from the durable image, which is exactly the
// signal the model checker keys on.
func TestPlantDropWriteBack(t *testing.T) {
	m := MustNew(tinyConfig())
	r := m.Alloc("data", 128)
	r.StoreU32(AccessData, 0, 0x11111111)
	r.StoreU32(AccessData, 16, 0x22222222) // second line

	var wbs int
	m.SetPersistObserver(func(ev PersistEvent) {
		if ev.Kind == EvWriteBack {
			wbs++
		}
	})
	m.PlantDropWriteBack(1)
	m.FlushAddr(r.Base)      // dropped: acknowledged, never durable
	m.FlushAddr(r.Base + 64) // persists normally
	if m.DirtyLines() != 0 {
		t.Fatal("planted drop left dirty lines — it must acknowledge the eviction")
	}
	if wbs != 2 {
		t.Fatalf("observer saw %d write-backs, want 2 (the drop is silent)", wbs)
	}
	if got := r.NVMU32(0); got != 0 {
		t.Errorf("dropped write-back reached NVM: %#x", got)
	}
	if got := r.NVMU32(16); got != 0x22222222 {
		t.Errorf("second write-back lost: %#x", got)
	}

	// Disarmed: everything persists again.
	m.PlantDropWriteBack(0)
	r.StoreU32(AccessData, 0, 0x33333333)
	m.FlushAddr(r.Base)
	if got := r.NVMU32(0); got != 0x33333333 {
		t.Errorf("write-back after disarm lost: %#x", got)
	}
}
