package memsim

import (
	"encoding/binary"
	"sync"
)

// snapStripes is the number of address stripes guarding the copy-on-write
// map. Striping bounds contention: workers reading disjoint lines almost
// never share a mutex with the committer's write-backs.
const snapStripes = 64

type snapStripe struct {
	mu  sync.Mutex
	cow map[uint64][]byte // line address -> line bytes frozen at snapshot time
}

// Snapshot is a frozen coherent view of a Memory (cache contents where
// present, NVM otherwise, as of BeginSnapshot), readable from many
// goroutines while the owning goroutine continues to mutate the live
// hierarchy. The freeze is copy-on-write: dirty cache lines are captured
// eagerly (their bytes exist nowhere durable), and NVM lines are captured
// lazily the moment a write-back or host write first overwrites them.
type Snapshot struct {
	mem     *Memory
	nvm     []byte // the durable array as of BeginSnapshot
	lineSz  uint64
	stripes [snapStripes]snapStripe
}

func (s *Snapshot) stripeOf(lineAddr uint64) *snapStripe {
	return &s.stripes[(lineAddr/s.lineSz)%snapStripes]
}

// BeginSnapshot freezes the current coherent view and returns it. Exactly
// one snapshot may be active at a time; the caller must EndSnapshot before
// beginning another. While active, only the snapshot's read methods may be
// called from other goroutines — every Memory method remains owned by the
// goroutine that called BeginSnapshot.
func (m *Memory) BeginSnapshot() *Snapshot {
	if m.snap != nil {
		panic("memsim: BeginSnapshot with a snapshot already active")
	}
	s := &Snapshot{mem: m, nvm: m.nvm, lineSz: uint64(m.cfg.LineSize)}
	for i := range s.stripes {
		s.stripes[i].cow = map[uint64][]byte{}
	}
	// Dirty lines are the only state whose coherent value differs from the
	// durable array (a clean cached line was filled from NVM and not
	// modified since), so they are the only eager copies needed.
	for i := range m.sets {
		for j := range m.sets[i].ways {
			l := &m.sets[i].ways[j]
			if l.valid && l.dirty {
				cp := make([]byte, m.cfg.LineSize)
				copy(cp, l.data)
				s.stripeOf(l.tag).cow[l.tag] = cp
			}
		}
	}
	m.snap = s
	return s
}

// EndSnapshot deactivates the snapshot. Reads through it after the end are
// invalid (concurrent mutation is no longer intercepted).
func (m *Memory) EndSnapshot() {
	m.snap = nil
}

// mutateNVMLine overwrites one full line of the durable array with data,
// first preserving the line's pre-mutation bytes in the active snapshot.
// The stripe mutex is held across preserve-and-copy so a concurrent
// snapshot reader sees either the old bytes directly or the COW entry —
// never a torn mixture.
func (m *Memory) mutateNVMLine(lineAddr uint64, data []byte) {
	s := m.snap
	if s == nil {
		copy(m.nvm[lineAddr:lineAddr+uint64(m.cfg.LineSize)], data)
		return
	}
	st := s.stripeOf(lineAddr)
	st.mu.Lock()
	if _, ok := st.cow[lineAddr]; !ok {
		cp := make([]byte, m.cfg.LineSize)
		if int(lineAddr) < len(s.nvm) {
			copy(cp, s.nvm[lineAddr:])
		}
		st.cow[lineAddr] = cp
	}
	copy(m.nvm[lineAddr:lineAddr+uint64(m.cfg.LineSize)], data)
	st.mu.Unlock()
}

// mutateNVM is mutateNVMLine for an arbitrary (possibly unaligned,
// multi-line) byte range.
func (m *Memory) mutateNVM(addr uint64, buf []byte) {
	s := m.snap
	if s == nil {
		copy(m.nvm[addr:], buf)
		return
	}
	ls := uint64(m.cfg.LineSize)
	for done := 0; done < len(buf); {
		a := addr + uint64(done)
		lineAddr := a &^ (ls - 1)
		n := int(lineAddr + ls - a)
		if n > len(buf)-done {
			n = len(buf) - done
		}
		st := s.stripeOf(lineAddr)
		st.mu.Lock()
		if _, ok := st.cow[lineAddr]; !ok {
			cp := make([]byte, ls)
			if int(lineAddr) < len(s.nvm) {
				copy(cp, s.nvm[lineAddr:])
			}
			st.cow[lineAddr] = cp
		}
		copy(m.nvm[a:], buf[done:done+n])
		st.mu.Unlock()
		done += n
	}
}

// read copies size bytes at addr (which must not cross a line boundary)
// into out. Safe to call concurrently with the owner's mutations.
func (s *Snapshot) read(addr uint64, out []byte) {
	lineAddr := addr &^ (s.lineSz - 1)
	st := s.stripeOf(lineAddr)
	st.mu.Lock()
	if cp, ok := st.cow[lineAddr]; ok {
		copy(out, cp[addr-lineAddr:])
	} else if int(addr)+len(out) <= len(s.nvm) {
		// Reading the shared durable array is safe here: any write to this
		// line takes the same stripe mutex and inserts a COW entry first,
		// so a line reachable on this branch has not been written since
		// the snapshot began.
		copy(out, s.nvm[addr:])
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	st.mu.Unlock()
}

// ReadU32 reads the frozen 32-bit value at a 4-aligned address.
func (s *Snapshot) ReadU32(addr uint64) uint32 {
	var b [4]byte
	s.read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// ReadU64 reads the frozen 64-bit value at an 8-aligned address.
func (s *Snapshot) ReadU64(addr uint64) uint64 {
	var b [8]byte
	s.read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}
