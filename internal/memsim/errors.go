package memsim

import (
	"errors"
	"fmt"
)

// ErrConfig is the sentinel all configuration errors wrap, so callers can
// test errors.Is(err, memsim.ErrConfig) without matching field details.
var ErrConfig = errors.New("memsim: invalid configuration")

// ConfigError reports one invalid Config field.
type ConfigError struct {
	// Field is the Config field name; Reason describes the constraint it
	// violated.
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("memsim: invalid %s: %s", e.Field, e.Reason)
}

// Unwrap ties every ConfigError to the ErrConfig sentinel.
func (e *ConfigError) Unwrap() error { return ErrConfig }

// Validate checks the configuration, returning a *ConfigError (wrapping
// ErrConfig) for the first violated constraint.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return &ConfigError{Field: "LineSize",
			Reason: fmt.Sprintf("must be a positive power of two, got %d", c.LineSize)}
	}
	if c.Ways <= 0 {
		return &ConfigError{Field: "Ways",
			Reason: fmt.Sprintf("must be positive, got %d", c.Ways)}
	}
	if c.CacheBytes/c.LineSize/c.Ways <= 0 {
		return &ConfigError{Field: "CacheBytes",
			Reason: fmt.Sprintf("cache of %d bytes too small for %d-byte lines at %d ways",
				c.CacheBytes, c.LineSize, c.Ways)}
	}
	return c.Fault.validate()
}
