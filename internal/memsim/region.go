package memsim

import (
	"encoding/binary"
	"fmt"
)

// Region is a named, line-aligned allocation in simulated global memory.
// Typed accessors index the region as an array of the named element type;
// Load*/Store* go through the cache as device traffic, Peek*/NVM* are
// host-side views, and HostWrite* pre-load durable input data.
type Region struct {
	mem  *Memory
	Name string
	Base uint64
	Size int
}

// Memory returns the Memory this region was allocated from.
func (r Region) Memory() *Memory { return r.mem }

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + uint64(r.Size) }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

func (r Region) addr(idx, elemSize int) uint64 {
	off := idx * elemSize
	if idx < 0 || off+elemSize > r.Size {
		panic(fmt.Sprintf("memsim: region %q index %d (elem %dB) out of range (size %dB)", r.Name, idx, elemSize, r.Size))
	}
	return r.Base + uint64(off)
}

// --- Device accesses (cached, counted) ---

// LoadU32 reads element idx as a uint32 through the cache.
func (r Region) LoadU32(kind AccessKind, idx int) (uint32, AccessResult) {
	b, res := r.mem.Load(kind, r.addr(idx, 4), 4)
	return binary.LittleEndian.Uint32(b), res
}

// StoreU32 writes element idx as a uint32 through the cache.
func (r Region) StoreU32(kind AccessKind, idx int, v uint32) AccessResult {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return r.mem.Store(kind, r.addr(idx, 4), buf[:])
}

// LoadU64 reads element idx as a uint64 through the cache.
func (r Region) LoadU64(kind AccessKind, idx int) (uint64, AccessResult) {
	b, res := r.mem.Load(kind, r.addr(idx, 8), 8)
	return binary.LittleEndian.Uint64(b), res
}

// StoreU64 writes element idx as a uint64 through the cache.
func (r Region) StoreU64(kind AccessKind, idx int, v uint64) AccessResult {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return r.mem.Store(kind, r.addr(idx, 8), buf[:])
}

// LoadF32 reads element idx as a float32 through the cache.
func (r Region) LoadF32(kind AccessKind, idx int) (float32, AccessResult) {
	b, res := r.mem.Load(kind, r.addr(idx, 4), 4)
	return f32FromBytes(b), res
}

// StoreF32 writes element idx as a float32 through the cache.
func (r Region) StoreF32(kind AccessKind, idx int, v float32) AccessResult {
	var buf [4]byte
	f32ToBytes(buf[:], v)
	return r.mem.Store(kind, r.addr(idx, 4), buf[:])
}

// LoadI32 reads element idx as an int32 through the cache.
func (r Region) LoadI32(kind AccessKind, idx int) (int32, AccessResult) {
	v, res := r.LoadU32(kind, idx)
	return int32(v), res
}

// StoreI32 writes element idx as an int32 through the cache.
func (r Region) StoreI32(kind AccessKind, idx int, v int32) AccessResult {
	return r.StoreU32(kind, idx, uint32(v))
}

// --- Host-side coherent views (no stats, no cache mutation) ---

// PeekU32 returns the current logical uint32 at element idx.
func (r Region) PeekU32(idx int) uint32 {
	return binary.LittleEndian.Uint32(r.mem.PeekCoherent(r.addr(idx, 4), 4))
}

// PeekU64 returns the current logical uint64 at element idx.
func (r Region) PeekU64(idx int) uint64 {
	return binary.LittleEndian.Uint64(r.mem.PeekCoherent(r.addr(idx, 8), 8))
}

// PeekF32 returns the current logical float32 at element idx.
func (r Region) PeekF32(idx int) float32 {
	return f32FromBytes(r.mem.PeekCoherent(r.addr(idx, 4), 4))
}

// PeekI32 returns the current logical int32 at element idx.
func (r Region) PeekI32(idx int) int32 { return int32(r.PeekU32(idx)) }

// PeekF32s returns the current logical value of the whole region as
// float32s (n elements from the start).
func (r Region) PeekF32s(n int) []float32 {
	raw := r.mem.PeekCoherent(r.Base, n*4)
	out := make([]float32, n)
	for i := range out {
		out[i] = f32FromBytes(raw[i*4:])
	}
	return out
}

// PeekI32s returns the current logical value of n int32 elements.
func (r Region) PeekI32s(n int) []int32 {
	raw := r.mem.PeekCoherent(r.Base, n*4)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

// --- Durable (post-crash) views ---

// NVMU32 returns the persisted uint32 at element idx.
func (r Region) NVMU32(idx int) uint32 {
	return binary.LittleEndian.Uint32(r.mem.PeekNVM(r.addr(idx, 4), 4))
}

// NVMU64 returns the persisted uint64 at element idx.
func (r Region) NVMU64(idx int) uint64 {
	return binary.LittleEndian.Uint64(r.mem.PeekNVM(r.addr(idx, 8), 8))
}

// NVMF32 returns the persisted float32 at element idx.
func (r Region) NVMF32(idx int) float32 {
	return f32FromBytes(r.mem.PeekNVM(r.addr(idx, 4), 4))
}

// NVMI32 returns the persisted int32 at element idx.
func (r Region) NVMI32(idx int) int32 { return int32(r.NVMU32(idx)) }

// --- Host initialization (direct to NVM, cache-invalidating) ---

// HostWriteF32s writes vals to the region starting at element 0, directly
// into NVM (persistent input data).
func (r Region) HostWriteF32s(vals []float32) {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		f32ToBytes(buf[i*4:], v)
	}
	r.boundsCheck(len(buf))
	r.mem.HostWrite(r.Base, buf)
}

// HostWriteI32s writes vals to the region starting at element 0.
func (r Region) HostWriteI32s(vals []int32) {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	r.boundsCheck(len(buf))
	r.mem.HostWrite(r.Base, buf)
}

// HostWriteU64s writes vals to the region starting at element 0.
func (r Region) HostWriteU64s(vals []uint64) {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	r.boundsCheck(len(buf))
	r.mem.HostWrite(r.Base, buf)
}

// HostPutU64 durably writes one uint64 element (direct to NVM,
// invalidating any cached copy) — used to pre-populate persistent data
// structures element by element.
func (r Region) HostPutU64(idx int, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	r.mem.HostWrite(r.addr(idx, 8), buf[:])
}

// HostZero zeroes the whole region durably.
func (r Region) HostZero() {
	r.mem.HostWrite(r.Base, make([]byte, r.Size))
}

// HostFillU64 durably fills the region with a repeated uint64 pattern
// (e.g. a NaN-like sentinel for checksum tables). The region size must be
// a multiple of 8.
func (r Region) HostFillU64(v uint64) {
	if r.Size%8 != 0 {
		panic(fmt.Sprintf("memsim: HostFillU64 on region %q with size %d not a multiple of 8", r.Name, r.Size))
	}
	buf := make([]byte, r.Size)
	for off := 0; off < r.Size; off += 8 {
		binary.LittleEndian.PutUint64(buf[off:], v)
	}
	r.mem.HostWrite(r.Base, buf)
}

func (r Region) boundsCheck(n int) {
	if n > r.Size {
		panic(fmt.Sprintf("memsim: host write of %dB overflows region %q (%dB)", n, r.Name, r.Size))
	}
}
