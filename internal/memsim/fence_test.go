package memsim

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not mention %q", r, substr)
		}
	}()
	fn()
}

func TestFenceBlocksWrites(t *testing.T) {
	m := MustNew(tinyConfig())
	m.HostWrite(0x100, make([]byte, 64))
	m.FenceRange("shard", 0x100, 64)

	mustPanic(t, `fenced range "shard"`, func() { m.HostWrite(0x100, []byte{1}) })
	// Overlap from below and above is refused too.
	mustPanic(t, "fenced range", func() { m.HostWrite(0xfc, make([]byte, 8)) })
	mustPanic(t, "fenced range", func() { m.HostWrite(0x13c, make([]byte, 8)) })
	mustPanic(t, "fenced range", func() { m.Store(AccessData, 0x120, []byte{1, 2, 3, 4}) })

	// Adjacent, non-overlapping writes are fine.
	m.HostWrite(0x0c0, make([]byte, 64))
	m.HostWrite(0x140, make([]byte, 64))

	// Loads and peeks stay unrestricted — harvesting reads fenced shards.
	m.Load(AccessData, 0x100, 64)
	_ = m.PeekNVM(0x100, 64)
}

func TestFenceLifecycle(t *testing.T) {
	m := MustNew(tinyConfig())
	m.FenceRange("a", 0, 64)
	m.FenceRange("b", 1024, 64)
	if got := len(m.Fences()); got != 2 {
		t.Fatalf("Fences() has %d entries, want 2", got)
	}
	if !m.Unfence("a") {
		t.Fatal("Unfence(a) reported missing")
	}
	if m.Unfence("a") {
		t.Fatal("double Unfence(a) reported found")
	}
	// Range a is writable again; b still is not.
	m.HostWrite(0, make([]byte, 64))
	mustPanic(t, `"b"`, func() { m.HostWrite(1024, []byte{1}) })
	if got := m.Fences(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Fences() = %+v, want only b", got)
	}
}

func TestFenceValidation(t *testing.T) {
	m := MustNew(tinyConfig())
	mustPanic(t, "empty name", func() { m.FenceRange("", 0, 64) })
	mustPanic(t, "non-positive size", func() { m.FenceRange("z", 0, 0) })
	m.FenceRange("dup", 0, 64)
	mustPanic(t, "already exists", func() { m.FenceRange("dup", 4096, 64) })
}
