// Persistency observation surface: a callback stream of every mutation of
// the durable (NVM) image. The crash-consistency model checker
// (internal/persistcheck) attaches an observer and maintains a pure-Go
// shadow copy of the durable image from the event stream alone; after any
// crash the shadow must match the real NVM image bit for bit. The two
// views share no mutation code — the observer fires at the semantic level
// (an eviction happened, a host write happened) while the shadow replays
// the events independently — so a divergence pinpoints a persistency bug
// in either the hierarchy or the model.
//
// The file also hosts the planted-bug surface: PlantDropWriteBack makes
// the hierarchy silently lose one eviction (the line is marked clean and
// the eviction is reported, but the bytes never reach the NVM array).
// This models the exact failure class the checker exists to catch —
// hardware that acknowledges a write-back the media never completed — and
// doubles as the checker's self-test: a checker that cannot catch the
// planted bug is not checking anything.
package memsim

import "encoding/binary"

// PersistEventKind discriminates durable-image mutations.
type PersistEventKind int

const (
	// EvWriteBack is a full dirty-line eviction or flush reaching NVM.
	EvWriteBack PersistEventKind = iota
	// EvTornWriteBack is a partial (prefix-only) line write-back; Data
	// holds just the persisted prefix.
	EvTornWriteBack
	// EvHostWrite is a direct host write to NVM (input pre-loading,
	// durable clears).
	EvHostWrite
	// EvBitFlip is a single-bit NVM media error; Bit is the bit index
	// within the byte at Addr.
	EvBitFlip
	// EvRestore replaces the whole durable image (checkpoint restore);
	// Data is the full new image.
	EvRestore
	// EvCrash is a power failure: all cached state dropped, durable image
	// untouched. Carries no bytes; observers use it to mark epochs.
	EvCrash
	// EvStuckAt is a stuck-at media cell forcing the durable byte at Addr;
	// Data holds the single resulting byte, Bit the (a) pinned bit index.
	// Fired when a stuck bit is planted over a disagreeing durable value
	// or re-asserted after a checkpoint restore; stuck overrides folded
	// into ordinary write-backs travel inside those events' Data instead.
	EvStuckAt
	// EvScrubRepair is a Scrub pass rewriting a deviating line; Data holds
	// the full effective line (intended bytes with stuck cells applied).
	EvScrubRepair
)

// String implements fmt.Stringer.
func (k PersistEventKind) String() string {
	switch k {
	case EvWriteBack:
		return "write-back"
	case EvTornWriteBack:
		return "torn-write-back"
	case EvHostWrite:
		return "host-write"
	case EvBitFlip:
		return "bit-flip"
	case EvRestore:
		return "restore"
	case EvCrash:
		return "crash"
	case EvStuckAt:
		return "stuck-at"
	case EvScrubRepair:
		return "scrub-repair"
	}
	return "unknown"
}

// PersistEvent describes one mutation of the durable image. Data, when
// non-nil, aliases internal buffers and is valid only for the duration of
// the observer call — observers must copy what they keep.
type PersistEvent struct {
	Kind PersistEventKind
	Addr uint64
	Data []byte
	// Bit is the flipped bit index for EvBitFlip (0-7 within Addr's byte).
	Bit uint8
}

// SetPersistObserver installs fn as the durable-image observer (nil
// removes it) and returns the previous observer. The observer fires on
// the goroutine performing the mutation — the single owner goroutine of
// the hierarchy — so it needs no internal synchronization.
func (m *Memory) SetPersistObserver(fn func(PersistEvent)) func(PersistEvent) {
	prev := m.observer
	m.observer = fn
	return prev
}

// notify reports one durable mutation to the observer, if any.
func (m *Memory) notify(ev PersistEvent) {
	if m.observer != nil {
		m.observer(ev)
	}
}

// PlantDropWriteBack arms a deliberate persistency bug for checker
// self-tests: the nth write-back after arming (1-based) is silently
// dropped — the line is marked clean, traffic is counted, and the
// eviction is reported to the observer, but the bytes never reach the
// NVM array. 0 disarms. This is exactly the "acknowledged but lost"
// media failure Lazy Persistency's validation must detect; the model
// checker is required to catch it and shrink it to a minimal reproducer.
func (m *Memory) PlantDropWriteBack(nth int) {
	m.plantDropNth = nth
	m.plantWBCount = 0
}

// plantShouldDrop advances the planted-bug counter and reports whether
// this write-back's NVM mutation must be dropped.
func (m *Memory) plantShouldDrop() bool {
	if m.plantDropNth <= 0 {
		return false
	}
	m.plantWBCount++
	return m.plantWBCount == m.plantDropNth
}

// ImageU64 reads a little-endian uint64 at addr from a durable-image
// byte slice (as returned by NVMImage or maintained by a persistency
// oracle), returning 0 for any out-of-range access — the same semantics
// a post-crash reader gets from never-written NVM.
func ImageU64(img []byte, addr uint64) uint64 {
	if addr+8 > uint64(len(img)) {
		return 0
	}
	return binary.LittleEndian.Uint64(img[addr:])
}

// ImageU32 is ImageU64 for a 32-bit word.
func ImageU32(img []byte, addr uint64) uint32 {
	if addr+4 > uint64(len(img)) {
		return 0
	}
	return binary.LittleEndian.Uint32(img[addr:])
}
