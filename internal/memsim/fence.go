package memsim

import "fmt"

// Shard fencing: a cluster control plane fences the address range of a
// shard whose owning device was lost, so that no device store or host
// write can mutate the durable bytes while failover recovery is
// re-executing the shard's blocks elsewhere. A write into a fenced range
// is a protocol bug — publication raced recovery — so it panics rather
// than returning an error the hot path would have to thread through.
// Loads and peeks are unrestricted: harvesting a fenced shard's durable
// bytes is exactly what recovery does.

// FencedRange is one named write-fenced address range. HostWritable
// fences block device stores only: the cluster's rebalance copy-in
// erects one so the destination device cannot dirty the shard while the
// control plane's HostWrite restores it from the durable pool.
type FencedRange struct {
	Name         string
	Base         uint64
	Size         int
	HostWritable bool
}

// FenceRange write-fences [base, base+size). The name must be non-empty
// and not currently fenced; size must be positive. Fencing guards new
// Store and HostWrite mutations — write-backs of lines dirtied before
// the fence was erected are not intercepted (the fence protocol flushes
// or crashes the cache first).
func (m *Memory) FenceRange(name string, base uint64, size int) {
	m.fenceRange(name, base, size, false)
}

// FenceRangeHost write-fences [base, base+size) against device stores
// only; host writes pass through. This is the rebalance copy-in fence:
// the control plane repopulates a rejoined replica by HostWrite while
// the fence guarantees no kernel can race the copy.
func (m *Memory) FenceRangeHost(name string, base uint64, size int) {
	m.fenceRange(name, base, size, true)
}

func (m *Memory) fenceRange(name string, base uint64, size int, hostWritable bool) {
	if name == "" {
		panic("memsim: FenceRange with empty name")
	}
	if size <= 0 {
		panic(fmt.Sprintf("memsim: FenceRange(%q) with non-positive size %d", name, size))
	}
	for _, f := range m.fences {
		if f.Name == name {
			panic(fmt.Sprintf("memsim: fence %q already exists", name))
		}
	}
	m.fences = append(m.fences, FencedRange{Name: name, Base: base, Size: size, HostWritable: hostWritable})
}

// Unfence removes the named fence, reporting whether it existed.
func (m *Memory) Unfence(name string) bool {
	for i, f := range m.fences {
		if f.Name == name {
			m.fences = append(m.fences[:i], m.fences[i+1:]...)
			return true
		}
	}
	return false
}

// Fences returns a copy of the active fenced ranges.
func (m *Memory) Fences() []FencedRange {
	out := make([]FencedRange, len(m.fences))
	copy(out, m.fences)
	return out
}

// checkFence panics when [addr, addr+size) overlaps a fenced range.
// host marks the mutation as a control-plane HostWrite, which
// HostWritable fences deliberately admit.
func (m *Memory) checkFence(what string, addr uint64, size int, host bool) {
	for _, f := range m.fences {
		if host && f.HostWritable {
			continue
		}
		if addr < f.Base+uint64(f.Size) && addr+uint64(size) > f.Base {
			panic(fmt.Sprintf("memsim: %s at %#x (%d bytes) into fenced range %q [%#x,%#x)",
				what, addr, size, f.Name, f.Base, f.Base+uint64(f.Size)))
		}
	}
}
