package persistcheck

import (
	"path/filepath"
	"strings"
	"testing"

	"gpulp/internal/faultsim"
	"gpulp/internal/memsim"
)

// TestOracleTracksHealthySystem: on an unfaulted system the oracle must
// agree with the durable image through stores, evictions, and crashes.
func TestOracleTracksHealthySystem(t *testing.T) {
	sc := GenMemOps(42, 200)
	if err := RunMemOps(sc); err != nil {
		t.Fatalf("healthy system violated the persistency contract: %v", err)
	}
}

// TestPlantedBugCaughtAndShrunk is the checker's self-test: arm the
// planted persistency bug (the first write-back is acknowledged but its
// bytes never reach NVM), confirm the oracle catches it, and confirm the
// shrinker reduces the reproducer to a handful of operations.
func TestPlantedBugCaughtAndShrunk(t *testing.T) {
	var caught *MemOpsScenario
	for seed := uint64(1); seed <= 20; seed++ {
		sc := GenMemOps(seed, 80)
		sc.PlantDrop = 1
		if err := RunMemOps(sc); err != nil {
			caught = &sc
			break
		}
	}
	if caught == nil {
		t.Fatal("planted dropped write-back not caught in 20 seeded scenarios")
	}
	shrunk := ShrinkMemOps(*caught)
	if err := RunMemOps(shrunk); err == nil {
		t.Fatal("shrunk scenario no longer fails")
	}
	if len(shrunk.Ops) > 10 {
		t.Fatalf("shrunk reproducer has %d ops, want <= 10", len(shrunk.Ops))
	}
	t.Logf("planted bug shrunk from %d to %d ops", len(caught.Ops), len(shrunk.Ops))
}

// TestPlantedBugCaughtByChecker runs the planted bug through the full
// orchestrator: the report must contain at least one failure with a
// shrunk memops reproducer.
func TestPlantedBugCaughtByChecker(t *testing.T) {
	c := NewChecker()
	// N exceeds the 8-scenario coverage sweep so random memops scenarios
	// (the family that arms the plant) actually run.
	rep := c.Run(Config{Seed: 7, N: 14, PlantDrop: 1, Kernels: []string{"tmm"}})
	if rep.Ok() {
		t.Fatal("checker run with planted bug reported no failures")
	}
	found := false
	for _, f := range rep.Failures {
		if f.Repro.Family != FamilyMemOps {
			continue
		}
		found = true
		if n := len(f.Repro.MemOps.Ops); n > 10 {
			t.Errorf("failure %q shrunk to %d ops, want <= 10", f.Scenario, n)
		}
	}
	if !found {
		t.Fatal("no memops failure in the report")
	}
}

// TestCorpusReplay replays every checked-in reproducer; all must pass
// (their bugs are fixed — that is why they are in the corpus).
func TestCorpusReplay(t *testing.T) {
	names, repros, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("empty corpus")
	}
	c := NewChecker()
	for i, r := range repros {
		if err := c.RunRepro(r); err != nil {
			t.Errorf("%s: %v", names[i], err)
		}
	}
}

// TestMemOpsDeterministic: replaying the same generated scenario twice
// must agree — the foundation every corpus entry rests on.
func TestMemOpsDeterministic(t *testing.T) {
	sc := GenMemOps(9, 120)
	if err := RunMemOps(sc); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := RunMemOps(sc); err != nil {
		t.Fatalf("second run: %v", err)
	}
	again := GenMemOps(9, 120)
	if len(again.Ops) != len(sc.Ops) {
		t.Fatalf("regenerated scenario has %d ops, want %d", len(again.Ops), len(sc.Ops))
	}
	for i := range again.Ops {
		if again.Ops[i] != sc.Ops[i] {
			t.Fatalf("regenerated op %d = %+v, want %+v", i, again.Ops[i], sc.Ops[i])
		}
	}
}

// TestCheckerFingerprintDeterministic: two runs with the same seed and
// budget must produce identical fingerprints (and outcomes).
func TestCheckerFingerprintDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two small checker runs")
	}
	run := func() *Report {
		return NewChecker().Run(Config{Seed: 3, N: 10, Kernels: []string{"tmm"}})
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %#x vs %#x", a.Fingerprint, b.Fingerprint)
	}
	if a.Scenarios != b.Scenarios || len(a.Failures) != len(b.Failures) {
		t.Fatalf("run shapes differ: %+v vs %+v", a, b)
	}
	if !a.Ok() {
		t.Fatalf("baseline checker run failed: %+v", a.Failures)
	}
}

// TestKernelScenarioBackends runs one cheap kernel scenario per backend.
func TestKernelScenarioBackends(t *testing.T) {
	c := NewChecker()
	for _, backend := range Backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			sc := KernelScenario{Kernel: "tmm", Backend: backend,
				Fault: faultsim.CleanCrash, Seed: 21}
			if err := c.RunKernel(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentials runs one differential of each kind.
func TestDifferentials(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant kernel runs")
	}
	c := NewChecker()
	base := KernelScenario{Kernel: "tmm", Backend: BackendGlobalArray,
		Fault: faultsim.MidKernelCrash, Seed: 31}
	if err := c.RunDiffWorkers(base, 4); err != nil {
		t.Errorf("diff-workers: %v", err)
	}
	if err := c.RunDiffStores(KernelScenario{Kernel: "tmm",
		Fault: faultsim.PartialEviction, Seed: 32}); err != nil {
		t.Errorf("diff-stores: %v", err)
	}
	if err := c.RunDiffEP(KernelScenario{Kernel: "tmm",
		Fault: faultsim.CleanCrash, Seed: 33}); err != nil {
		t.Errorf("diff-ep: %v", err)
	}
}

// TestShrinkTruncatesAtFailure: operations after the failing index must
// never survive shrinking.
func TestShrinkTruncatesAtFailure(t *testing.T) {
	sc := MemOpsScenario{
		PlantDrop: 1,
		Ops: []MemOp{
			{Op: OpStore, Idx: 1, Val: 7},
			{Op: OpFlushAll}, // write-back dropped here; oracle diverges
			{Op: OpStore, Idx: 2, Val: 8},
			{Op: OpStore, Idx: 3, Val: 9},
			{Op: OpLoad, Idx: 4},
			{Op: OpCrash},
		},
	}
	if err := RunMemOps(sc); err == nil {
		t.Fatal("planted scenario unexpectedly passed")
	}
	shrunk := ShrinkMemOps(sc)
	if len(shrunk.Ops) > 2 {
		t.Fatalf("shrunk to %d ops, want <= 2: %+v", len(shrunk.Ops), shrunk.Ops)
	}
}

// TestOracleDetectsOutOfBandMutation: a direct NVM mutation behind the
// observer's back must fail the check — the property that gives every
// green scenario its meaning.
func TestOracleDetectsOutOfBandMutation(t *testing.T) {
	mem := memsim.MustNew(memopsConfig())
	r := mem.Alloc("data", 1024)
	o := AttachOracle(mem)
	defer o.Detach()
	r.HostPutU64(0, 77) // observed: oracle follows
	if err := o.Check(); err != nil {
		t.Fatalf("observed host write diverged: %v", err)
	}
	// Simulate a buggy mutation path: corrupt the shadow's belief about
	// one durable byte and confirm Check reports the divergence.
	o.shadow[r.Base] ^= 0xff
	if err := o.Check(); err == nil {
		t.Fatal("oracle missed an out-of-band NVM mutation")
	} else if !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// TestLoadCorpusMissingDir: a missing corpus directory is empty, not an
// error (fresh checkouts before any soak has failed).
func TestLoadCorpusMissingDir(t *testing.T) {
	names, repros, err := LoadCorpus(filepath.Join("testdata", "no-such-dir"))
	if err != nil || len(names) != 0 || len(repros) != 0 {
		t.Fatalf("got %v %v %v, want empty", names, repros, err)
	}
}

// TestSaveLoadReproRoundTrip exercises the corpus serialization.
func TestSaveLoadReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc := GenMemOps(5, 12)
	path := filepath.Join(dir, "r.json")
	if err := SaveRepro(path, memopsRepro(sc)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Family != FamilyMemOps || got.MemOps == nil || len(got.MemOps.Ops) != 12 {
		t.Fatalf("round trip mangled repro: %+v", got)
	}
}
