// Differential checks: the same seeded scenario executed under two
// design points must land on identical persistent contents. These are
// the properties that make the checker transferable — they hold
// regardless of which implementation detail is wrong, because both runs
// share it only if it is deterministic and persistency-correct.
package persistcheck

import (
	"bytes"
	"fmt"

	"gpulp/internal/faultsim"
)

// diffFaults are the fault kinds used for differential runs: shapes
// recovery must always repair, so every variant is required to succeed
// (typed errors would make "identical contents" vacuous).
var diffFaults = []faultsim.Kind{
	faultsim.CleanCrash, faultsim.MidKernelCrash,
	faultsim.PartialEviction, faultsim.TornWriteback,
}

// RunDiffWorkers checks host-parallel determinism end to end: the same
// scenario at Workers=1 and Workers=w must produce the identical durable
// image at the crash instant AND identical recovered outputs. This is
// the persistency half of the speculative engine's determinism contract.
func (c *Checker) RunDiffWorkers(sc KernelScenario, w int) error {
	if w < 2 {
		w = 2
	}
	serial := sc
	serial.Workers = 1
	parallel := sc
	parallel.Workers = w
	a, err := c.runKernel(serial)
	if err != nil {
		return err
	}
	b, err := c.runKernel(parallel)
	if err != nil {
		return err
	}
	if !bytes.Equal(a.postCrash, b.postCrash) {
		return fmt.Errorf("persistcheck: %v: post-crash durable image differs between Workers=1 and Workers=%d", sc, w)
	}
	return diffOutputs(fmt.Sprintf("%v vs Workers=%d", sc, w), a, b)
}

// RunDiffStores checks that every checksum-store backend recovers the
// same scenario to identical output contents: the store is recovery
// metadata, and metadata organization must never leak into data.
func (c *Checker) RunDiffStores(sc KernelScenario) error {
	var ref *runArtifacts
	refBackend := ""
	for _, backend := range []string{BackendQuad, BackendCuckoo, BackendChained, BackendGlobalArray} {
		v := sc
		v.Backend = backend
		art, err := c.runKernel(v)
		if err != nil {
			return err
		}
		if art.typedErr {
			return fmt.Errorf("persistcheck: %v: recovery gave up (%s) on a repairable fault", v, art.errText)
		}
		if ref == nil {
			ref, refBackend = art, backend
			continue
		}
		if err := diffOutputs(fmt.Sprintf("%v: %s vs %s", sc, refBackend, backend), ref, art); err != nil {
			return err
		}
	}
	return nil
}

// RunDiffModels checks every registered persistency model against LP on
// the same seeded scenario: entirely different persistency mechanisms —
// checksum validation + re-execution, redo-log replay, buffered release
// flags, strict in-order flushing — must converge on identical
// recovered outputs. The scenario's fault kind must be decidable under
// the most restrictive model (they share one applicability matrix).
func (c *Checker) RunDiffModels(sc KernelScenario) error {
	if !modelEligible(BackendEP, sc.Kernel, sc.Fault) {
		return fmt.Errorf("persistcheck: %v: fault kind not checkable under the non-LP models", sc)
	}
	lpv := sc
	lpv.Backend = BackendGlobalArray
	ref, err := c.runKernel(lpv)
	if err != nil {
		return err
	}
	if ref.typedErr {
		return fmt.Errorf("persistcheck: %v: LP recovery gave up (%s) on a repairable fault", lpv, ref.errText)
	}
	for _, backend := range Backends {
		if !isModelBackend(backend) {
			continue
		}
		v := sc
		v.Backend = backend
		art, err := c.runKernel(v)
		if err != nil {
			return err
		}
		if err := diffOutputs(fmt.Sprintf("%v: LP vs %s", sc, backend), ref, art); err != nil {
			return err
		}
	}
	return nil
}

// RunDiffEP is the legacy LP-vs-EP differential.
//
// Deprecated: it now delegates to RunDiffModels, which additionally
// covers sbrp and strict; recorded diff-ep reproducers replay through
// the stronger check.
func (c *Checker) RunDiffEP(sc KernelScenario) error {
	return c.RunDiffModels(sc)
}

func diffOutputs(label string, a, b *runArtifacts) error {
	if a.typedErr != b.typedErr {
		return fmt.Errorf("persistcheck: %s: one variant recovered, the other gave up (%s%s)", label, a.errText, b.errText)
	}
	if len(a.outputs) != len(b.outputs) {
		return fmt.Errorf("persistcheck: %s: output region count differs: %d vs %d", label, len(a.outputs), len(b.outputs))
	}
	for i := range a.outputs {
		if !bytes.Equal(a.outputs[i], b.outputs[i]) {
			return fmt.Errorf("persistcheck: %s: recovered contents of output region %d differ", label, i)
		}
	}
	return nil
}
