// Scrub scenario family: property-based checks of the self-healing NVM
// runtime. Each scenario arms memsim's online media-error process at a
// seeded rate, runs an LP-protected fill workload for several epochs with
// a seeded scrub cadence, crashes, and drives core.SelfHeal — holding the
// run to three properties: the oracle's event-replayed shadow stays
// bit-exact through faulted write-backs, scrub repairs and stuck-at
// forcings; SelfHeal never lies (a clean or degraded completion implies
// every surviving region's durable bytes are exact); and every quarantine
// is justified by a durable uncorrectable line or a watchdog abort.
package persistcheck

import (
	"errors"
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// ScrubScenario is one replayable self-healing check.
type ScrubScenario struct {
	Seed uint64 `json:"seed"`
	// Transient is the per-write transient fault probability; StuckFrac
	// the fraction of it that is permanent stuck-at faults.
	Transient float64 `json:"transient"`
	StuckFrac float64 `json:"stuck_frac"`
	// Epochs is the number of LP epochs run before the crash (default 2);
	// ScrubEvery scrubs after every n-th epoch (0 = no mid-run scrubs —
	// only the ones SelfHeal issues).
	Epochs     int `json:"epochs,omitempty"`
	ScrubEvery int `json:"scrub_every,omitempty"`
	// Workers is the speculative host-parallelism width (0/1 = serial).
	Workers int `json:"workers,omitempty"`
	// Blocks and BlockThreads fix the fill geometry (default 16 × 32).
	Blocks       int `json:"blocks,omitempty"`
	BlockThreads int `json:"block_threads,omitempty"`
	// Locks guards each block behind a spin lock, so stuck-at cells under
	// lock words can livelock re-execution into the kernel watchdog.
	Locks bool `json:"locks,omitempty"`
}

// String implements fmt.Stringer.
func (s ScrubScenario) String() string {
	out := fmt.Sprintf("scrub seed=%#x rate=%g stuck=%g", s.Seed, s.Transient, s.StuckFrac)
	if s.Epochs > 1 {
		out += fmt.Sprintf(" epochs=%d", s.Epochs)
	}
	if s.ScrubEvery > 0 {
		out += fmt.Sprintf(" scrub-every=%d", s.ScrubEvery)
	}
	if s.Workers > 1 {
		out += fmt.Sprintf(" workers=%d", s.Workers)
	}
	if s.Locks {
		out += " locks"
	}
	return out
}

// withDefaults fills unset scenario knobs.
func (s ScrubScenario) withDefaults() ScrubScenario {
	if s.Epochs <= 0 {
		s.Epochs = 2
	}
	if s.Blocks <= 0 {
		s.Blocks = 16
	}
	if s.BlockThreads <= 0 {
		s.BlockThreads = 32
	}
	return s
}

// GenScrub derives a random scrub scenario from a seed alone.
func GenScrub(seed uint64) ScrubScenario {
	pick := func(n uint64, mod int) int { return int(splitmix(seed^n) % uint64(mod)) }
	return ScrubScenario{
		Seed:       seed,
		Transient:  []float64{0.005, 0.02, 0.08, 0.25}[pick(2, 4)],
		StuckFrac:  []float64{0, 0.1, 0.3}[pick(3, 3)],
		Epochs:     1 + pick(4, 3),
		ScrubEvery: pick(5, 3), // 0 = none
		Workers:    []int{1, 1, 2, 4}[pick(6, 4)],
		Locks:      pick(7, 3) == 0,
	}
}

// RunScrub executes one scrub scenario and returns the first
// contract violation (nil when it passes; an honest degraded completion
// or typed unrecoverable error is a pass).
func (c *Checker) RunScrub(sc ScrubScenario) (err error) {
	sc = sc.withDefaults()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("persistcheck: %v: panic: %v", sc, r)
		}
	}()
	if sc.Transient < 0 || sc.Transient > 1 || sc.StuckFrac < 0 || sc.Transient*sc.StuckFrac > 1 {
		return fmt.Errorf("persistcheck: %v: fault rates out of range", sc)
	}

	mcfg := c.Opt.Mem
	mcfg.Fault = memsim.FaultConfig{
		Enabled:           true,
		Seed:              sc.Seed,
		TransientPerWrite: sc.Transient,
		StuckPerWrite:     sc.Transient * sc.StuckFrac,
	}
	dcfg := c.Opt.Dev
	dcfg.Workers = sc.Workers
	dcfg.WatchdogSteps = 200_000
	mem := memsim.MustNew(mcfg)
	o := AttachOracle(mem)
	defer o.Detach()
	dev := gpusim.MustNew(dcfg, mem)

	grid, blk := gpusim.D1(sc.Blocks), gpusim.D1(sc.BlockThreads)
	n := grid.Size() * blk.Size()
	var locks memsim.Region
	if sc.Locks {
		locks = dev.Alloc("locks", grid.Size()*8)
		locks.HostZero()
	}
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := core.New(dev, c.Opt.LP, grid, blk)
	ck := core.CaptureCheckpoint(mem)

	value := func(gid int) uint32 { return uint32(gid)*2654435761 + uint32(sc.Seed) }
	kernel := func(b *gpusim.Block) {
		if sc.Locks {
			b.ForAll(func(t *gpusim.Thread) {
				if t.Linear == 0 {
					for t.AtomicCASU64(locks, b.LinearIdx, 0, 1) != 0 {
						t.Op(1)
					}
				}
			})
		}
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := value(gid)
			t.StoreU32(out, gid, v)
			r.Update(t, v)
		})
		if sc.Locks {
			b.ForAll(func(t *gpusim.Thread) {
				if t.Linear == 0 {
					t.AtomicExchU64(locks, b.LinearIdx, 0)
				}
			})
		}
		r.Commit()
	}
	recompute := func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.Update(t, t.LoadU32(out, t.GlobalLinear()))
		})
	}

	// Property 1 (checked throughout): faulted write-backs, scrub repairs
	// and stuck-at forcings must keep the oracle's event-replayed shadow
	// bit-exact against the durable image.
	watchdogged := false
	for e := 0; e < sc.Epochs; e++ {
		lp.SetEpoch(uint64(e))
		lres := dev.Launch("scrub-fill", grid, blk, kernel)
		if lres.Watchdog != nil {
			// The engine already crashed memory; the heal below must cope
			// with the partial image.
			watchdogged = true
			break
		}
		mem.FlushAll()
		if sc.ScrubEvery > 0 && (e+1)%sc.ScrubEvery == 0 {
			mem.Scrub()
		}
		if err := o.Check(); err != nil {
			return fmt.Errorf("%v: epoch %d: %w", sc, e, err)
		}
	}
	if !watchdogged {
		mem.Crash()
	}
	if err := o.Check(); err != nil {
		return fmt.Errorf("%v: post-crash: %w", sc, err)
	}

	fusion := c.Opt.LP.Fusion
	if fusion < 1 {
		fusion = 1
	}
	blockBytes := uint64(blk.Size() * 4)
	rep, herr := lp.SelfHeal(kernel, recompute, core.HealOpts{
		MaxAttempts: 4,
		Checkpoint:  ck,
		RegionOf: func(line uint64) int {
			if line < out.Base || line >= out.Base+uint64(n*4) {
				return -1
			}
			return int((line-out.Base)/blockBytes) / fusion
		},
	})

	// Property 2: SelfHeal never lies — on a clean or degraded
	// completion, every surviving region's durable bytes are exact.
	quarantined := map[int]bool{}
	var deg *core.DegradedError
	switch {
	case herr == nil:
	case errors.As(herr, &deg):
		for _, reg := range deg.Regions {
			quarantined[reg] = true
		}
		// Property 3: a degraded completion must justify itself — some
		// quarantined region backed by an uncorrectable line or a
		// watchdog abort, and a coverage ratio consistent with the set.
		if len(deg.Regions) == 0 {
			return fmt.Errorf("%v: degraded with empty quarantine set", sc)
		}
		regions := (grid.Size() + fusion - 1) / fusion
		if want := 1 - float64(len(deg.Regions))/float64(regions); deg.Coverage != want {
			return fmt.Errorf("%v: coverage %v inconsistent with %d quarantined regions (want %v)",
				sc, deg.Coverage, len(deg.Regions), want)
		}
		if rep.FinalScrub.Uncorrectable == 0 && rep.WatchdogAborts == 0 {
			return fmt.Errorf("%v: quarantine without an uncorrectable line or watchdog abort: %v", sc, rep)
		}
	case core.IsTypedRecoveryError(herr):
		return nil // honest failure: damage beyond repair
	default:
		return fmt.Errorf("%v: self-heal failed untypedly: %w", sc, herr)
	}
	img := mem.NVMImage()
	for gid := 0; gid < n; gid++ {
		if quarantined[gid/blk.Size()/fusion] {
			continue
		}
		if got := memsim.ImageU32(img, out.Base+uint64(gid*4)); got != value(gid) {
			return fmt.Errorf("%v: surviving out[%d] = %#x after self-heal, want %#x (silent corruption)",
				sc, gid, got, value(gid))
		}
	}
	// The oracle must have followed the whole heal — scrub rewrites,
	// re-executions, checkpoint restores — too.
	if err := o.Check(); err != nil {
		return fmt.Errorf("%v: post-heal: %w", sc, err)
	}
	return nil
}

// shrinkScrub reduces a failing scrub scenario along its pinnable axes:
// serial execution, no locks, a single epoch, no mid-run scrubs, and
// transient-only faults.
func (c *Checker) shrinkScrub(sc ScrubScenario) ScrubScenario {
	fails := func(s ScrubScenario) bool { return c.RunScrub(s) != nil }
	if !fails(sc) {
		return sc
	}
	for _, cand := range []func(ScrubScenario) ScrubScenario{
		func(s ScrubScenario) ScrubScenario { s.Workers = 1; return s },
		func(s ScrubScenario) ScrubScenario { s.Locks = false; return s },
		func(s ScrubScenario) ScrubScenario { s.Epochs = 1; return s },
		func(s ScrubScenario) ScrubScenario { s.ScrubEvery = 0; return s },
		func(s ScrubScenario) ScrubScenario { s.StuckFrac = 0; return s },
	} {
		if next := cand(sc); next != sc && fails(next) {
			sc = next
		}
	}
	return sc
}
