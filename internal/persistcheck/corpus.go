// Replayable reproducers. Every scenario family serializes to a small
// JSON document, so a failure found by a long fuzzing soak can be
// checked into testdata/corpus/ and replayed forever as a regression
// test.
package persistcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Repro families.
const (
	FamilyMemOps      = "memops"
	FamilyKernel      = "kernel"
	FamilyDiffWorkers = "diff-workers"
	FamilyDiffStores  = "diff-stores"
	FamilyDiffModels  = "diff-models"
	// FamilyDiffEP is the legacy name of the model differential; old
	// reproducers replay through FamilyDiffModels' check.
	FamilyDiffEP = "diff-ep"
	FamilyScrub  = "scrub"
)

// Repro is a self-contained, replayable scenario of any family.
type Repro struct {
	Version int    `json:"version"`
	Family  string `json:"family"`
	// Note is free-form provenance (what the scenario caught, and when).
	Note   string          `json:"note,omitempty"`
	MemOps *MemOpsScenario `json:"memops,omitempty"`
	Kernel *KernelScenario `json:"kernel,omitempty"`
	Scrub  *ScrubScenario  `json:"scrub,omitempty"`
	// DiffWorkers is the parallel width for the diff-workers family.
	DiffWorkers int `json:"diff_workers,omitempty"`
}

const reproVersion = 1

func memopsRepro(sc MemOpsScenario) Repro {
	return Repro{Version: reproVersion, Family: FamilyMemOps, MemOps: &sc}
}

func kernelRepro(sc KernelScenario) Repro {
	return Repro{Version: reproVersion, Family: FamilyKernel, Kernel: &sc}
}

func scrubRepro(sc ScrubScenario) Repro {
	return Repro{Version: reproVersion, Family: FamilyScrub, Scrub: &sc}
}

// RunRepro replays a reproducer, returning the contract violation it
// encodes (nil when the scenario passes — the state of every corpus
// entry once its bug is fixed).
func (c *Checker) RunRepro(r Repro) error {
	switch r.Family {
	case FamilyMemOps:
		if r.MemOps == nil {
			return fmt.Errorf("persistcheck: %s repro has no memops scenario", r.Family)
		}
		return RunMemOps(*r.MemOps)
	case FamilyScrub:
		if r.Scrub == nil {
			return fmt.Errorf("persistcheck: %s repro has no scrub scenario", r.Family)
		}
		return c.RunScrub(*r.Scrub)
	case FamilyKernel, FamilyDiffWorkers, FamilyDiffStores, FamilyDiffModels, FamilyDiffEP:
		if r.Kernel == nil {
			return fmt.Errorf("persistcheck: %s repro has no kernel scenario", r.Family)
		}
		switch r.Family {
		case FamilyKernel:
			return c.RunKernel(*r.Kernel)
		case FamilyDiffWorkers:
			return c.RunDiffWorkers(*r.Kernel, r.DiffWorkers)
		case FamilyDiffStores:
			return c.RunDiffStores(*r.Kernel)
		default:
			return c.RunDiffModels(*r.Kernel)
		}
	default:
		return fmt.Errorf("persistcheck: unknown repro family %q", r.Family)
	}
}

// SaveRepro writes a reproducer as indented JSON.
func SaveRepro(path string, r Repro) error {
	if r.Version == 0 {
		r.Version = reproVersion
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads one reproducer file.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("persistcheck: %s: %w", path, err)
	}
	if r.Version != reproVersion {
		return r, fmt.Errorf("persistcheck: %s: unsupported repro version %d", path, r.Version)
	}
	return r, nil
}

// LoadCorpus reads every *.json reproducer in dir, sorted by name.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) (names []string, repros []Repro, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		r, err := LoadRepro(filepath.Join(dir, name))
		if err != nil {
			return names, repros, err
		}
		repros = append(repros, r)
	}
	return names, repros, nil
}
