// Package persistcheck is a deterministic, seed-driven crash-consistency
// model checker for the Lazy Persistency runtime. It holds an executable
// specification of the persistency semantics — a pure-Go shadow of the
// durable image maintained from memsim's persistency event stream — and
// generates thousands of seeded scenarios (raw memory-operation
// sequences, kernel runs under every checksum-store backend and the EP
// baseline, crashes at arbitrary points, torn evictions, media bit
// flips, speculative Workers counts) asserting that:
//
//  1. after any crash, the real NVM image matches the oracle shadow bit
//     for bit;
//  2. validation accepts exactly the LP regions the oracle's image says
//     have a matching durable checksum, and hardened recovery restores
//     the fault-free golden image;
//  3. differential properties hold — Workers=1 vs N, every store
//     backend, and LP vs the EP baseline all recover to identical
//     persistent contents.
//
// Failing scenarios shrink automatically to minimal reproducers that
// serialize into a replayable corpus (testdata/corpus). The cmd/lpcheck
// driver exposes seed/count/duration knobs for CI smoke vs soak runs.
package persistcheck

import (
	"fmt"

	"gpulp/internal/memsim"
)

// Oracle is the executable persistency spec: a shadow durable image
// rebuilt from the PersistEvent stream alone, sharing no mutation code
// with the memory hierarchy. At every quiescent point the shadow must
// equal the hierarchy's real NVM image; a divergence pinpoints a
// persistency bug on one side or the other.
type Oracle struct {
	mem    *memsim.Memory
	shadow []byte
	prev   func(memsim.PersistEvent)
	// Events counts observed durable mutations; Crashes counts observed
	// power failures.
	Events  int64
	Crashes int
}

// AttachOracle seeds a shadow from the memory's current durable image
// and installs the oracle as its persistency observer (chaining to any
// previous observer). Call Detach when done.
func AttachOracle(mem *memsim.Memory) *Oracle {
	o := &Oracle{mem: mem, shadow: append([]byte(nil), mem.NVMImage()...)}
	o.prev = mem.SetPersistObserver(o.handle)
	return o
}

// Detach restores the previously installed observer.
func (o *Oracle) Detach() { o.mem.SetPersistObserver(o.prev) }

func (o *Oracle) handle(ev memsim.PersistEvent) {
	o.Events++
	switch ev.Kind {
	case memsim.EvWriteBack, memsim.EvTornWriteBack, memsim.EvHostWrite,
		memsim.EvStuckAt, memsim.EvScrubRepair:
		// All four carry the effective bytes that landed on the medium —
		// write-backs and host writes already folded in any media faults,
		// stuck-at asserts carry the forced byte, scrub repairs the
		// rewritten line — so the shadow just copies them.
		o.grow(ev.Addr + uint64(len(ev.Data)))
		copy(o.shadow[ev.Addr:], ev.Data)
	case memsim.EvBitFlip:
		o.grow(ev.Addr + 1)
		o.shadow[ev.Addr] ^= 1 << ev.Bit
	case memsim.EvRestore:
		o.shadow = append(o.shadow[:0], ev.Data...)
	case memsim.EvCrash:
		o.Crashes++
	}
	if o.prev != nil {
		o.prev(ev)
	}
}

func (o *Oracle) grow(end uint64) {
	for uint64(len(o.shadow)) < end {
		o.shadow = append(o.shadow, 0)
	}
}

// Image returns a copy of the shadow durable image, zero-extended to the
// real image's length (never-written NVM reads as zero on both sides).
func (o *Oracle) Image() []byte {
	n := len(o.mem.NVMImage())
	if len(o.shadow) > n {
		n = len(o.shadow)
	}
	out := make([]byte, n)
	copy(out, o.shadow)
	return out
}

// Check compares the shadow against the real durable image and reports
// the first divergence. Both images are zero-extended to equal length:
// allocation alone is not a durable mutation.
func (o *Oracle) Check() error {
	real := o.mem.NVMImage()
	n := len(real)
	if len(o.shadow) > n {
		n = len(o.shadow)
	}
	at := func(img []byte, i int) byte {
		if i < len(img) {
			return img[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if g, w := at(real, i), at(o.shadow, i); g != w {
			return fmt.Errorf(
				"persistcheck: durable image diverges from oracle at %#x: nvm=%#02x oracle=%#02x (after %d events, %d crashes)",
				i, g, w, o.Events, o.Crashes)
		}
	}
	return nil
}
