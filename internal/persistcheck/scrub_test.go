package persistcheck

import (
	"testing"
)

// TestScrubTransientOnly: with no stuck-at faults, every scenario must
// heal to a bit-exact image — transient flips are exactly what the ECC
// scrub repairs.
func TestScrubTransientOnly(t *testing.T) {
	c := NewChecker()
	for _, sc := range []ScrubScenario{
		{Seed: 0x51, Transient: 0.01},
		{Seed: 0x52, Transient: 0.05, ScrubEvery: 1},
		{Seed: 0x53, Transient: 0.1, Epochs: 3, Workers: 4},
	} {
		if err := c.RunScrub(sc); err != nil {
			t.Errorf("%v: %v", sc, err)
		}
	}
}

// TestScrubStuckFaults: permanent stuck-at faults force the quarantine
// machinery (and, under locks, the watchdog); the contract — heal
// bit-exactly, degrade honestly, or fail typed — must hold throughout.
func TestScrubStuckFaults(t *testing.T) {
	c := NewChecker()
	for _, sc := range []ScrubScenario{
		{Seed: 0x61, Transient: 0.1, StuckFrac: 0.3},
		{Seed: 0x62, Transient: 0.2, StuckFrac: 0.5, ScrubEvery: 1, Workers: 2},
		{Seed: 0x63, Transient: 0.15, StuckFrac: 0.3, Locks: true},
	} {
		if err := c.RunScrub(sc); err != nil {
			t.Errorf("%v: %v", sc, err)
		}
	}
}

// TestScrubGenDeterministic: the generator is a pure function of the
// seed, the precondition for replayable fuzzing.
func TestScrubGenDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 200; seed++ {
		if a, b := GenScrub(seed), GenScrub(seed); a != b {
			t.Fatalf("seed %d: %v vs %v", seed, a, b)
		}
	}
}

// TestScrubGenContract runs a small band of generated scenarios
// end-to-end (the fuzzing loop in miniature).
func TestScrubGenContract(t *testing.T) {
	if testing.Short() {
		t.Skip("generated scrub band is slow")
	}
	c := NewChecker()
	for seed := uint64(100); seed < 112; seed++ {
		sc := GenScrub(seed)
		if err := c.RunScrub(sc); err != nil {
			t.Errorf("%v: %v", sc, err)
		}
	}
}

// TestScrubShrinkKeepsPassing: the shrinker must return a passing
// scenario unchanged (it only minimizes failures).
func TestScrubShrinkKeepsPassing(t *testing.T) {
	c := NewChecker()
	sc := ScrubScenario{Seed: 0x51, Transient: 0.01, Workers: 4, Locks: true, Epochs: 2}
	if got := c.shrinkScrub(sc); got != sc {
		t.Fatalf("shrinker changed a passing scenario: %v -> %v", sc, got)
	}
}
