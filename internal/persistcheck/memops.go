// Raw memory-operation fuzzing: the cheapest scenario family. A small
// cache over two regions is driven through a generated sequence of
// stores, loads, flushes, host writes, media faults, and crashes, with
// the oracle checked after every operation — so a persistency bug is
// localized to the exact operation that exposed it, and the shrinker can
// cut everything after it before minimizing what remains.
package persistcheck

import (
	"fmt"
	"math/rand"

	"gpulp/internal/memsim"
)

// Op names for MemOp.Op. String-typed for readable corpus files.
const (
	OpStore     = "store"     // cached 64-bit store (dirties a line)
	OpLoad      = "load"      // cached load (fills, may evict)
	OpFlush     = "flush"     // flush the line holding one element
	OpFlushAll  = "flushall"  // flush every dirty line
	OpHostWrite = "hostwrite" // direct durable write, cache invalidated
	OpFlip      = "flip"      // single-bit NVM media error
	OpPartial   = "partial"   // seeded partial crash (eviction subset, tearing)
	OpCrash     = "crash"     // clean power failure
)

// MemOp is one step of a memory-operation scenario.
type MemOp struct {
	Op string `json:"op"`
	// Reg selects the target region (0 = data, 1 = aux).
	Reg int `json:"reg,omitempty"`
	// Idx is the 64-bit element index within the region.
	Idx int    `json:"idx,omitempty"`
	Val uint64 `json:"val,omitempty"`
	// Bit is the flipped bit for OpFlip (0-7 within the element's first
	// byte).
	Bit uint8 `json:"bit,omitempty"`
	// Seed drives OpPartial's eviction subset and tearing.
	Seed uint64 `json:"seed,omitempty"`
}

// MemOpsScenario is a replayable raw-memory scenario.
type MemOpsScenario struct {
	// Seed records the generator seed (informational once Ops exist).
	Seed uint64 `json:"seed"`
	// PlantDrop arms memsim's planted persistency bug: the nth
	// write-back is silently dropped. The checker must catch it.
	PlantDrop int     `json:"plant_drop,omitempty"`
	Ops       []MemOp `json:"ops"`
}

// memops platform: a deliberately tiny cache (16 lines over two regions
// spanning 80 lines) so ordinary stores cause constant natural eviction
// — the write-back path is the one under audit.
func memopsConfig() memsim.Config {
	return memsim.Config{
		LineSize:        64,
		CacheBytes:      64 * 4 * 4, // 4 sets, 4 ways
		Ways:            4,
		NVMReadNS:       160,
		NVMWriteNS:      480,
		NVMBandwidthGBs: 326.4,
	}
}

const (
	memopsDataWords = 512 // 4 KiB data region
	memopsAuxWords  = 128 // 1 KiB aux region
)

func memopsWords(reg int) int {
	if reg%2 == 0 {
		return memopsDataWords
	}
	return memopsAuxWords
}

// RunMemOps replays a scenario, returning the first oracle violation
// (nil when the scenario upholds the persistency contract).
func RunMemOps(sc MemOpsScenario) error {
	_, err := runMemOpsIndexed(sc)
	return err
}

// runMemOpsIndexed additionally reports the index of the first failing
// operation (len(Ops) for the final-crash check) for the shrinker.
func runMemOpsIndexed(sc MemOpsScenario) (failAt int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("persistcheck: memops panic: %v", r)
		}
	}()
	mem := memsim.MustNew(memopsConfig())
	regs := [2]memsim.Region{
		mem.Alloc("data", memopsDataWords*8),
		mem.Alloc("aux", memopsAuxWords*8),
	}
	if sc.PlantDrop > 0 {
		mem.PlantDropWriteBack(sc.PlantDrop)
	}
	o := AttachOracle(mem)
	defer o.Detach()
	for i, op := range sc.Ops {
		applyMemOp(mem, regs, op)
		if err := o.Check(); err != nil {
			return i, fmt.Errorf("op %d %q: %w", i, op.Op, err)
		}
	}
	mem.Crash()
	if err := o.Check(); err != nil {
		return len(sc.Ops), fmt.Errorf("after final crash: %w", err)
	}
	return -1, nil
}

func applyMemOp(mem *memsim.Memory, regs [2]memsim.Region, op MemOp) {
	r := regs[op.Reg%2]
	idx := op.Idx % memopsWords(op.Reg)
	if idx < 0 {
		idx = 0
	}
	switch op.Op {
	case OpStore:
		r.StoreU64(memsim.AccessData, idx, op.Val)
	case OpLoad:
		r.LoadU64(memsim.AccessData, idx)
	case OpFlush:
		mem.FlushAddr(r.Base + uint64(idx)*8)
	case OpFlushAll:
		mem.FlushAll()
	case OpHostWrite:
		r.HostPutU64(idx, op.Val)
	case OpFlip:
		mem.FlipBit(r.Base+uint64(idx)*8, op.Bit)
	case OpPartial:
		rng := rand.New(rand.NewSource(int64(op.Seed)))
		mem.PartialCrash(rng, memsim.CrashProfile{
			EvictFrac: 0.2 + 0.6*rng.Float64(),
			TornFrac:  0.5 * rng.Float64(),
		})
	case OpCrash:
		mem.Crash()
	default:
		panic(fmt.Sprintf("persistcheck: unknown mem op %q", op.Op))
	}
}

// GenMemOps generates a seeded scenario of n operations, weighted toward
// stores (the cache must churn for write-backs to happen) with a tail of
// every fault shape.
func GenMemOps(seed uint64, n int) MemOpsScenario {
	rng := rand.New(rand.NewSource(int64(splitmix(seed))))
	sc := MemOpsScenario{Seed: seed, Ops: make([]MemOp, 0, n)}
	for i := 0; i < n; i++ {
		op := MemOp{Reg: rng.Intn(2), Idx: rng.Intn(memopsDataWords), Val: rng.Uint64()}
		switch p := rng.Intn(100); {
		case p < 45:
			op.Op = OpStore
		case p < 60:
			op.Op = OpLoad
		case p < 70:
			op.Op = OpFlush
		case p < 75:
			op.Op = OpFlushAll
		case p < 85:
			op.Op = OpHostWrite
		case p < 91:
			op.Op = OpFlip
			op.Bit = uint8(rng.Intn(8))
		case p < 96:
			op.Op = OpPartial
			op.Seed = rng.Uint64()
		default:
			op.Op = OpCrash
		}
		sc.Ops = append(sc.Ops, op)
	}
	return sc
}

// ShrinkMemOps minimizes a failing scenario: truncate to the prefix
// ending at the first failing operation, then repeatedly delete single
// operations (scanning back to front) as long as the failure reproduces.
// Returns the smallest still-failing scenario found.
func ShrinkMemOps(sc MemOpsScenario) MemOpsScenario {
	failAt, err := runMemOpsIndexed(sc)
	if err == nil {
		return sc // not failing; nothing to shrink
	}
	if failAt >= 0 && failAt < len(sc.Ops) {
		sc.Ops = sc.Ops[:failAt+1]
	}
	for changed := true; changed; {
		changed = false
		for i := len(sc.Ops) - 1; i >= 0; i-- {
			cand := sc
			cand.Ops = make([]MemOp, 0, len(sc.Ops)-1)
			cand.Ops = append(cand.Ops, sc.Ops[:i]...)
			cand.Ops = append(cand.Ops, sc.Ops[i+1:]...)
			if _, err := runMemOpsIndexed(cand); err != nil {
				sc = cand
				changed = true
			}
		}
	}
	return sc
}

// splitmix advances a SplitMix64 state — the seed-derivation mixer used
// throughout the checker so every scenario is reproducible from (seed,
// ordinal) alone.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
