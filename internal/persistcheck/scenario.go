// Kernel scenario family: full persistency-model runs of the benchmark
// suite under seeded fault injection, with three layers of assertions —
// the oracle image equality, the independent prediction of the model's
// recovery verdict from the oracle image alone (each model's own
// durable-state contract), and bit-exact recovery against the
// fault-free golden image.
package persistcheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"gpulp/internal/core"
	"gpulp/internal/faultsim"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// Backend names a persistency design point: one of the four LP checksum
// store organizations, or a non-LP model from the pmodel registry (the
// EP redo-log baseline, scoped buffered release, strict persistency).
const (
	BackendQuad        = "quad"
	BackendCuckoo      = "cuckoo"
	BackendChained     = "chained"
	BackendGlobalArray = "global-array"
	BackendEP          = "ep"
	BackendSBRP        = "sbrp"
	BackendStrict      = "strict"
)

// Backends lists every design point the checker exercises.
var Backends = []string{BackendQuad, BackendCuckoo, BackendChained, BackendGlobalArray,
	BackendEP, BackendSBRP, BackendStrict}

// isModelBackend reports whether backend is a non-LP pmodel registry
// model (checked by runModel) rather than an LP checksum store.
func isModelBackend(backend string) bool {
	return backend == BackendEP || backend == BackendSBRP || backend == BackendStrict
}

// KernelScenario is one replayable kernel-level check.
type KernelScenario struct {
	Kernel  string `json:"kernel"`
	Backend string `json:"backend"`
	// Workers is the speculative host-parallelism width (0/1 = serial).
	Workers int `json:"workers,omitempty"`
	// Epochs runs this many LP epochs, the fault striking the last one
	// (requires an idempotent dense kernel when > 1).
	Epochs int           `json:"epochs,omitempty"`
	Fault  faultsim.Kind `json:"fault"`
	Seed   uint64        `json:"seed"`
	// AfterBlocks pins the mid-kernel crash point (0 = derive from Seed).
	AfterBlocks int `json:"after_blocks,omitempty"`
	// Flips pins the injected bit-flip count (0 = derive from Seed).
	Flips int `json:"flips,omitempty"`
}

// String implements fmt.Stringer.
func (s KernelScenario) String() string {
	out := fmt.Sprintf("%s/%s/%s seed=%#x", s.Kernel, s.Backend, s.Fault, s.Seed)
	if s.Workers > 1 {
		out += fmt.Sprintf(" workers=%d", s.Workers)
	}
	if s.Epochs > 1 {
		out += fmt.Sprintf(" epochs=%d", s.Epochs)
	}
	if s.AfterBlocks > 0 {
		out += fmt.Sprintf(" after=%d", s.AfterBlocks)
	}
	if s.Flips > 0 {
		out += fmt.Sprintf(" flips=%d", s.Flips)
	}
	return out
}

// modelEligible reports whether backend can check kernel under kind —
// the per-model applicability matrix, shared with the fault campaigns.
// The non-LP models survive post-kernel crashes by replay or eager
// durability alone; crashes that leave unfinished blocks additionally
// need byte-idempotent re-execution, which only the dense kernels
// guarantee, and none of them has checksums, so media flips are
// undetectable by design.
func modelEligible(backend, kernel string, kind faultsim.Kind) bool {
	return faultsim.ModelApplicable(backend, kernel, kind)
}

// Checker runs kernel scenarios against cached golden images on a fixed
// simulated platform.
type Checker struct {
	// Opt fixes the platform (memory hierarchy, device, LP defaults).
	Opt faultsim.Options

	goldens   map[string]*faultsim.Golden
	epEntries map[string]int
}

// NewChecker builds a checker on the default campaign platform.
func NewChecker() *Checker {
	return &Checker{
		Opt:       faultsim.DefaultOptions(),
		goldens:   map[string]*faultsim.Golden{},
		epEntries: map[string]int{},
	}
}

// golden returns the cached fault-free reference image for kernel.
func (c *Checker) golden(kernel string) (*faultsim.Golden, error) {
	if g, ok := c.goldens[kernel]; ok {
		return g, nil
	}
	g, err := faultsim.GoldenRun(c.Opt, kernel)
	if err != nil {
		return nil, err
	}
	c.goldens[kernel] = g
	return g, nil
}

// logEntriesFor sizes the EP redo log for kernel: a fault-free dry run
// on a scratch system counts the protected stores of every block; the
// maximum (plus slack for re-execution) is the per-block capacity.
func (c *Checker) logEntriesFor(kernel string) (int, error) {
	if n, ok := c.epEntries[kernel]; ok {
		return n, nil
	}
	mem := memsim.MustNew(c.Opt.Mem)
	dev := gpusim.MustNew(c.Opt.Dev, mem)
	w := kernels.New(kernel, c.Opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	counts := make([]int, grid.Size())
	outs := w.Outputs()
	dev.SetStoreHook(func(t *gpusim.Thread, r memsim.Region, elemIdx int, bits uint32) {
		for _, o := range outs {
			if o.Base == r.Base {
				counts[t.Block().LinearIdx]++
				return
			}
		}
	})
	dev.Launch(kernel, grid, blk, w.Kernel(nil))
	max := 1
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	c.epEntries[kernel] = max + 1
	return max + 1, nil
}

// runArtifacts carries what a scenario run produced, for differential
// comparison across runs.
type runArtifacts struct {
	// typedErr is true when recovery honestly reported unrecoverable
	// damage (an acceptable outcome; outputs is nil then).
	typedErr bool
	errText  string
	// postCrash is the durable image right after the fault struck.
	postCrash []byte
	// outputs holds the final durable bytes of every output region.
	outputs [][]byte
}

// RunKernel executes one kernel scenario and returns the first
// persistency-contract violation (nil when the scenario passes; an
// honestly-reported typed recovery error is a pass).
func (c *Checker) RunKernel(sc KernelScenario) error {
	_, err := c.runKernel(sc)
	return err
}

func (c *Checker) runKernel(sc KernelScenario) (art *runArtifacts, err error) {
	defer func() {
		if r := recover(); r != nil {
			art, err = nil, fmt.Errorf("persistcheck: %v: panic: %v", sc, r)
		}
	}()
	if isModelBackend(sc.Backend) {
		return c.runModel(sc)
	}
	return c.runLP(sc)
}

func parseBackend(name string) (hashtab.Kind, error) {
	for _, k := range []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo, hashtab.GlobalArray, hashtab.Chained} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("persistcheck: unknown backend %q", name)
}

// injectFault mirrors faultsim.RunCase's fault shapes, seeded from rng.
// Mid-kernel crashes are armed by the caller before the launch; the
// remaining kinds strike here, after the kernel retires.
func injectFault(mem *memsim.Memory, rng *rand.Rand, sc KernelScenario,
	w kernels.Workload, golden *faultsim.Golden, tables []memsim.Region) {
	switch sc.Fault {
	case faultsim.CleanCrash:
		mem.Crash()
	case faultsim.PartialEviction:
		mem.PartialCrash(rng, memsim.CrashProfile{EvictFrac: 0.2 + 0.6*rng.Float64()})
	case faultsim.TornWriteback:
		mem.PartialCrash(rng, memsim.CrashProfile{
			EvictFrac: 0.3 + 0.5*rng.Float64(),
			TornFrac:  0.2 + 0.5*rng.Float64(),
		})
	case faultsim.DataBitFlips:
		mem.Crash()
		n := sc.Flips
		if n <= 0 {
			n = 1 + rng.Intn(4)
		}
		outs := w.Outputs()
		ri := rng.Intn(len(outs))
		r := outs[ri]
		if wr := golden.WrittenOffsets(ri); len(wr) > 0 {
			for i := 0; i < n; i++ {
				off := uint64(wr[rng.Intn(len(wr))])
				mem.InjectBitFlipsRange(rng, r.Base+off, 1, 1)
			}
		} else {
			mem.InjectBitFlipsRange(rng, r.Base, r.Size, n)
		}
	case faultsim.StoreBitFlips:
		mem.Crash()
		n := sc.Flips
		if n <= 0 {
			n = 1 + rng.Intn(4)
		}
		r := tables[rng.Intn(len(tables))]
		mem.InjectBitFlipsRange(rng, r.Base, r.Size, n)
	default:
		panic(fmt.Sprintf("persistcheck: unknown fault kind %v", sc.Fault))
	}
}

func (c *Checker) runLP(sc KernelScenario) (*runArtifacts, error) {
	golden, err := c.golden(sc.Kernel)
	if err != nil {
		return nil, err
	}
	kind, err := parseBackend(sc.Backend)
	if err != nil {
		return nil, err
	}
	opt := c.Opt
	opt.Dev.Workers = sc.Workers
	lpCfg := opt.LP
	lpCfg.Store = kind

	rng := rand.New(rand.NewSource(int64(splitmix(sc.Seed))))
	mem := memsim.MustNew(opt.Mem)
	o := AttachOracle(mem) // before any allocation: the shadow sees every durable byte
	defer o.Detach()
	dev := gpusim.MustNew(opt.Dev, mem)
	w := kernels.New(sc.Kernel, opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lp := core.New(dev, lpCfg, grid, blk)
	ck := core.CaptureCheckpoint(mem)
	kernel := w.Kernel(lp)

	// Fault-free leading epochs; the fault strikes the last one.
	for e := 0; e+1 < sc.Epochs; e++ {
		lp.SetEpoch(uint64(e))
		dev.Launch(sc.Kernel, grid, blk, kernel)
		mem.FlushAll()
	}
	if sc.Epochs > 1 {
		lp.SetEpoch(uint64(sc.Epochs - 1))
	}

	if sc.Fault == faultsim.MidKernelCrash {
		after := sc.AfterBlocks
		if after <= 0 {
			after = 1 + rng.Intn(grid.Size())
		}
		dev.SetCrashTrigger(&gpusim.CrashTrigger{
			AfterBlocks: after,
			Fire:        func(*gpusim.Device) { mem.Crash() },
		})
		dev.Launch(sc.Kernel, grid, blk, kernel)
	} else {
		dev.Launch(sc.Kernel, grid, blk, kernel)
		injectFault(mem, rng, sc, w, golden, lp.Store().TableRegions())
	}

	// Assertion 1: the durable image is exactly what the event stream
	// says it should be.
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("%v: post-crash: %w", sc, err)
	}
	art := &runArtifacts{postCrash: mem.NVMImage()}

	// Assertion 2: predict validation's verdict from the oracle image
	// alone (ImageLookup over the shadow), and hold the device-side
	// Validate to it. Loads during either pass never dirty the durable
	// state under audit.
	oracleImg := o.Image()
	perBlock, _ := lp.RecomputeStates(w.Recompute())
	var predicted []int
	for reg := 0; reg < lp.Regions(); reg++ {
		stored, ok := lp.Store().ImageLookup(oracleImg, uint64(reg))
		if !ok || !stored.Matches(perBlock[reg], lpCfg.Checksum) {
			predicted = append(predicted, reg)
		}
	}
	failed, _, verr := lp.Validate(w.Recompute())
	if verr != nil {
		return nil, fmt.Errorf("%v: validate: %w", sc, verr)
	}
	if !equalIntSets(predicted, failed) {
		return nil, fmt.Errorf("%v: validation verdict diverges from oracle prediction: predicted %d failed %v, validate %d failed %v",
			sc, len(predicted), head(predicted), len(failed), head(failed))
	}

	// Assertion 3: hardened recovery restores the golden image (or
	// honestly reports unrecoverable damage).
	rep, rerr := lp.RecoverHardened(kernel, w.Recompute(), core.RecoverOpts{
		MaxRounds:  c.Opt.MaxRounds,
		Checkpoint: ck,
	})
	_ = rep
	if rerr != nil {
		if core.IsTypedRecoveryError(rerr) {
			art.typedErr = true
			art.errText = rerr.Error()
			return art, nil
		}
		return nil, fmt.Errorf("%v: recovery failed untypedly: %w", sc, rerr)
	}
	if f, ok := w.(kernels.Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		img := mem.PeekNVM(r.Base, r.Size)
		if !bytes.Equal(img, golden.Output(i)) {
			return nil, fmt.Errorf("%v: recovered image of %s diverges from golden", sc, r.Name)
		}
		art.outputs = append(art.outputs, img)
	}
	// The oracle must have followed recovery's mutations too.
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("%v: post-recovery: %w", sc, err)
	}
	return art, nil
}

// runModel checks a non-LP registry model (ep, sbrp, strict) against
// its own durable-image contract: the oracle image equality, the
// model's PredictDamage-vs-Recover agreement, and bit-exact recovery
// against the fault-free golden.
func (c *Checker) runModel(sc KernelScenario) (*runArtifacts, error) {
	if !modelEligible(sc.Backend, sc.Kernel, sc.Fault) {
		return nil, fmt.Errorf("persistcheck: %v: fault kind not checkable under model %s", sc, sc.Backend)
	}
	golden, err := c.golden(sc.Kernel)
	if err != nil {
		return nil, err
	}
	var popt pmodel.Options
	if sc.Backend == BackendEP {
		entries, err := c.logEntriesFor(sc.Kernel)
		if err != nil {
			return nil, err
		}
		popt.EPEntries = entries
	}
	opt := c.Opt
	opt.Dev.Workers = sc.Workers

	rng := rand.New(rand.NewSource(int64(splitmix(sc.Seed))))
	mem := memsim.MustNew(opt.Mem)
	o := AttachOracle(mem)
	defer o.Detach()
	dev := gpusim.MustNew(opt.Dev, mem)
	w := kernels.New(sc.Kernel, opt.Scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	m := pmodel.MustLookup(sc.Backend).New(dev, w, popt)
	wrapped := m.Kernel()

	if sc.Fault == faultsim.MidKernelCrash {
		after := sc.AfterBlocks
		if after <= 0 {
			after = 1 + rng.Intn(grid.Size())
		}
		dev.SetCrashTrigger(&gpusim.CrashTrigger{
			AfterBlocks: after,
			Fire:        func(*gpusim.Device) { mem.Crash() },
		})
		dev.Launch(sc.Kernel, grid, blk, wrapped)
	} else {
		dev.Launch(sc.Kernel, grid, blk, wrapped)
		injectFault(mem, rng, sc, w, golden, nil)
	}

	// Assertion 1: the durable image is exactly what the event stream
	// says it should be.
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("%v: post-crash: %w", sc, err)
	}
	art := &runArtifacts{postCrash: mem.NVMImage()}

	// Assertion 2, the durable-state contract: the damage the model
	// predicts from the oracle image alone must be exactly what its
	// recovery reports repairing.
	predicted := m.PredictDamage(o.Image())
	rep, rerr := m.Recover()
	if rerr != nil {
		if core.IsTypedRecoveryError(rerr) {
			art.typedErr = true
			art.errText = rerr.Error()
			return art, nil
		}
		return nil, fmt.Errorf("%v: model %s recovery failed untypedly: %w", sc, sc.Backend, rerr)
	}
	if !equalIntSets(predicted, rep.Damaged) {
		return nil, fmt.Errorf("%v: model %s recovery diverges from its durable-state contract: predicted %d damaged %v, repaired %d %v",
			sc, sc.Backend, len(predicted), head(predicted), len(rep.Damaged), head(rep.Damaged))
	}

	// Assertion 3: recovery restored the golden image bit for bit.
	if f, ok := w.(kernels.Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	mem.FlushAll()
	for i, r := range w.Outputs() {
		img := mem.PeekNVM(r.Base, r.Size)
		if !bytes.Equal(img, golden.Output(i)) {
			return nil, fmt.Errorf("%v: %s-recovered image of %s diverges from golden", sc, sc.Backend, r.Name)
		}
		art.outputs = append(art.outputs, img)
	}
	// The oracle must have followed recovery's mutations too.
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("%v: post-recovery: %w", sc, err)
	}
	return art, nil
}

// equalIntSets compares two int slices as sets (both are produced in
// ascending order, but sort defensively).
func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// head bounds a list for error messages.
func head(xs []int) []int {
	if len(xs) > 8 {
		return xs[:8]
	}
	return xs
}
