// Checker orchestration: scenario generation, coverage accounting,
// failure shrinking, and the deterministic report.
package persistcheck

import (
	"fmt"

	"gpulp/internal/faultsim"
	"gpulp/internal/kernels"
)

// Config parameterizes a checking run.
type Config struct {
	// Seed makes the whole run reproducible: the same seed generates the
	// same scenarios in the same order.
	Seed uint64
	// N is the total scenario budget. The mandatory coverage sweep
	// (every kernel × backend, plus one differential of each kind)
	// always runs in full, even when it exceeds N.
	N int
	// MaxOps, when positive, stops random generation once the run's
	// estimated op budget (see opsOf) is spent — a deterministic budget:
	// the same (Seed, N, MaxOps) always runs exactly the same scenarios,
	// on any machine. The coverage sweep still completes in full.
	MaxOps int64
	// Stop, when set, is polled between random scenarios; returning true
	// stops generation (the coverage sweep still completes). The CLI
	// wires its wall-clock -duration flag through this hook, keeping the
	// checker itself free of wall-clock reads.
	Stop func() bool
	// Kernels overrides the workload list (default: the Table I suite).
	Kernels []string
	// Backends overrides the design-point list (default: all of
	// Backends — every LP store organization plus the non-LP models).
	// The CLI's -model flag maps registry models onto this.
	Backends []string
	// PlantDrop arms the planted persistency bug in every raw-memory
	// scenario: the nth write-back is silently dropped. A checker that
	// does not fail with this set is broken.
	PlantDrop int
	// Progress, when set, receives one line per scenario batch.
	Progress func(format string, args ...any)
}

// Failure records one contract violation with its (shrunk) reproducer.
type Failure struct {
	Scenario string `json:"scenario"`
	Err      string `json:"err"`
	Repro    Repro  `json:"repro"`
}

// Report is the outcome of a checking run.
type Report struct {
	Scenarios int `json:"scenarios"`
	MemOps    int `json:"memops"`
	Kernel    int `json:"kernel"`
	Diff      int `json:"diff"`
	Scrub     int `json:"scrub"`
	// Ops is the estimated op cost of everything that ran (the MaxOps
	// budget's unit; see opsOf).
	Ops int64 `json:"ops,omitempty"`
	// Coverage counts scenarios per "kernel/backend" pair.
	Coverage map[string]int `json:"coverage"`
	Failures []Failure      `json:"failures,omitempty"`
	// Fingerprint folds every scenario outcome: two runs with the same
	// seed and budget must report the same fingerprint.
	Fingerprint uint64 `json:"fingerprint"`
}

// Ok reports whether the run found no contract violations.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

func (r *Report) fold(s string, failed bool) {
	h := r.Fingerprint
	for _, b := range []byte(s) {
		h = splitmix(h ^ uint64(b))
	}
	if failed {
		h = splitmix(h ^ 0xdead)
	}
	r.Fingerprint = h
}

// Run executes the checking campaign: first the mandatory coverage sweep
// (every kernel × every backend at least once, one differential check of
// each kind), then seeded random scenarios — raw memory-operation
// fuzzing, kernel runs, and differentials — until the budget is spent.
// Failing scenarios are shrunk to minimal reproducers in the report.
func (c *Checker) Run(cfg Config) *Report {
	if len(cfg.Kernels) == 0 {
		cfg.Kernels = kernels.Names
	}
	if len(cfg.Backends) == 0 {
		cfg.Backends = Backends
	}
	rep := &Report{Coverage: map[string]int{}}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	seedAt := func(i int) uint64 { return splitmix(cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15) }
	expired := func() bool {
		if cfg.MaxOps > 0 && rep.Ops >= cfg.MaxOps {
			return true
		}
		return cfg.Stop != nil && cfg.Stop()
	}

	// Phase 1: mandatory kernel × backend sweep. Fault kinds, workers
	// and epochs rotate deterministically so the sweep alone touches
	// every shape at least somewhere.
	ordinal := 0
	for ki, kernel := range cfg.Kernels {
		for bi, backend := range cfg.Backends {
			sc := KernelScenario{
				Kernel:  kernel,
				Backend: backend,
				Workers: 1 + (ki+bi)%2, // alternate serial and speculative
				Seed:    seedAt(ordinal),
			}
			sc.Fault = c.rotateFault(sc, ki+bi)
			c.check(rep, kernelRepro(sc), sc.String())
			ordinal++
		}
		progress("sweep %d/%d: %s ok (%d scenarios)", ki+1, len(cfg.Kernels), kernel, rep.Scenarios)
	}
	// One differential of each kind on cheap dense kernels.
	diffBase := KernelScenario{Kernel: "tmm", Backend: BackendGlobalArray,
		Fault: faultsim.MidKernelCrash, Seed: seedAt(ordinal)}
	c.check(rep, Repro{Family: FamilyDiffWorkers, Kernel: &diffBase, DiffWorkers: 4}, "diff-workers "+diffBase.String())
	storesBase := KernelScenario{Kernel: "spmv",
		Fault: faultsim.PartialEviction, Seed: seedAt(ordinal + 1)}
	c.check(rep, Repro{Family: FamilyDiffStores, Kernel: &storesBase}, "diff-stores "+storesBase.String())
	modelsBase := KernelScenario{Kernel: "tmm",
		Fault: faultsim.TornWriteback, Seed: seedAt(ordinal + 2)}
	c.check(rep, Repro{Family: FamilyDiffModels, Kernel: &modelsBase}, "diff-models "+modelsBase.String())
	ordinal += 3
	// Two mandatory self-healing scenarios: a transient-only run the
	// scrubber must heal bit-exactly, and a stuck-at run with spin locks
	// that exercises the watchdog and quarantine paths.
	transientSc := ScrubScenario{Seed: seedAt(ordinal), Transient: 0.02}
	c.check(rep, scrubRepro(transientSc), transientSc.String())
	stuckSc := ScrubScenario{Seed: seedAt(ordinal + 1), Transient: 0.1, StuckFrac: 0.3,
		ScrubEvery: 1, Workers: 2, Locks: true}
	c.check(rep, scrubRepro(stuckSc), stuckSc.String())
	ordinal += 2
	progress("coverage sweep done: %d scenarios, %d failures", rep.Scenarios, len(rep.Failures))

	// Phase 2: seeded random scenarios up to the budget, weighted toward
	// the cheap raw-memory family.
	for rep.Scenarios < cfg.N && !expired() {
		seed := seedAt(ordinal)
		switch p := splitmix(seed) % 100; {
		case p < 65 || cfg.PlantDrop > 0:
			// With a planted bug armed, everything funnels into the
			// family that can catch it fastest.
			n := 24 + int(splitmix(seed^1)%96)
			sc := GenMemOps(seed, n)
			sc.PlantDrop = cfg.PlantDrop
			c.check(rep, memopsRepro(sc), fmt.Sprintf("memops seed=%#x n=%d", seed, n))
		case p < 84:
			sc := c.randomKernelScenario(cfg, seed)
			c.check(rep, kernelRepro(sc), sc.String())
		case p < 92:
			r, label := c.randomDiff(cfg, seed)
			c.check(rep, r, label)
		default:
			sc := GenScrub(seed)
			c.check(rep, scrubRepro(sc), sc.String())
		}
		ordinal++
		if rep.Scenarios%50 == 0 {
			progress("%d scenarios (%d memops, %d kernel, %d diff, %d scrub), %d failures",
				rep.Scenarios, rep.MemOps, rep.Kernel, rep.Diff, rep.Scrub, len(rep.Failures))
		}
	}
	return rep
}

// rotateFault picks a deterministic fault kind for the sweep, skipping
// kinds the (kernel, backend) pair cannot decide.
func (c *Checker) rotateFault(sc KernelScenario, i int) faultsim.Kind {
	kinds := faultsim.AllKinds()
	for off := 0; off < len(kinds); off++ {
		k := kinds[(i+off)%len(kinds)]
		if isModelBackend(sc.Backend) {
			if modelEligible(sc.Backend, sc.Kernel, k) {
				return k
			}
			continue
		}
		if faultsim.Applicable(sc.Kernel, k) {
			return k
		}
	}
	return faultsim.CleanCrash
}

func (c *Checker) randomKernelScenario(cfg Config, seed uint64) KernelScenario {
	pick := func(n uint64, mod int) int { return int(splitmix(seed^n) % uint64(mod)) }
	sc := KernelScenario{
		Kernel:  cfg.Kernels[pick(2, len(cfg.Kernels))],
		Backend: cfg.Backends[pick(3, len(cfg.Backends))],
		Workers: []int{1, 1, 2, 4}[pick(4, 4)],
		Seed:    seed,
	}
	sc.Fault = c.rotateFault(sc, pick(5, 6))
	// Occasional two-epoch scenarios on idempotent kernels probe
	// mid-epoch crashes against stale prior-epoch checksums (an LP
	// notion: the non-LP models carry no epoch salt).
	if !isModelBackend(sc.Backend) && pick(6, 10) == 0 &&
		faultsim.Applicable(sc.Kernel, faultsim.DataBitFlips) {
		sc.Epochs = 2
	}
	return sc
}

func (c *Checker) randomDiff(cfg Config, seed uint64) (Repro, string) {
	pick := func(n uint64, mod int) int { return int(splitmix(seed^n) % uint64(mod)) }
	dense := denseOf(cfg.Kernels)
	if len(dense) == 0 {
		dense = []string{"tmm"}
	}
	sc := KernelScenario{
		Kernel: dense[pick(2, len(dense))],
		Fault:  diffFaults[pick(3, len(diffFaults))],
		Seed:   seed,
	}
	switch pick(4, 3) {
	case 0:
		sc.Backend = BackendGlobalArray
		return Repro{Family: FamilyDiffWorkers, Kernel: &sc, DiffWorkers: []int{2, 4, 8}[pick(5, 3)]},
			"diff-workers " + sc.String()
	case 1:
		return Repro{Family: FamilyDiffStores, Kernel: &sc}, "diff-stores " + sc.String()
	default:
		return Repro{Family: FamilyDiffModels, Kernel: &sc}, "diff-models " + sc.String()
	}
}

func denseOf(names []string) []string {
	var out []string
	for _, n := range names {
		if faultsim.Applicable(n, faultsim.DataBitFlips) {
			out = append(out, n)
		}
	}
	return out
}

// opsOf estimates a reproducer's cost in op units — the currency of the
// deterministic MaxOps budget. Raw memory operations count one each;
// the heavier families carry flat weights roughly proportional to their
// simulated work: a kernel scenario runs a full launch plus recovery
// (~40), differentials multiply that by the number of variant runs, and
// a scrub scenario is a short kernel plus media sweeps (~30). The
// weights are part of the budget's definition: changing them changes
// which scenarios a given MaxOps runs.
func opsOf(r Repro) int64 {
	switch r.Family {
	case FamilyMemOps:
		if r.MemOps == nil {
			return 1
		}
		return int64(len(r.MemOps.Ops))
	case FamilyKernel:
		return 40
	case FamilyDiffWorkers:
		return 2 * 40
	case FamilyDiffStores:
		return 4 * 40
	case FamilyDiffEP, FamilyDiffModels:
		return 4 * 40
	case FamilyScrub:
		return 30
	}
	return 1
}

// check runs one reproducer, accounts it, and shrinks it on failure.
func (c *Checker) check(rep *Report, r Repro, label string) {
	err := c.RunRepro(r)
	rep.Scenarios++
	rep.Ops += opsOf(r)
	switch r.Family {
	case FamilyMemOps:
		rep.MemOps++
	case FamilyKernel:
		rep.Kernel++
		rep.Coverage[r.Kernel.Kernel+"/"+r.Kernel.Backend]++
	case FamilyScrub:
		rep.Scrub++
		rep.Coverage["selfheal/scrub"]++
	default:
		rep.Diff++
		if r.Kernel != nil {
			rep.Coverage[r.Kernel.Kernel+"/"+r.Family]++
		}
	}
	rep.fold(label, err != nil)
	if err == nil {
		return
	}
	rep.Failures = append(rep.Failures, Failure{
		Scenario: label,
		Err:      err.Error(),
		Repro:    c.Shrink(r),
	})
}

// Shrink minimizes a failing reproducer (returns it unchanged when it
// does not actually fail, or when its family has no shrinker).
func (c *Checker) Shrink(r Repro) Repro {
	switch r.Family {
	case FamilyMemOps:
		sc := ShrinkMemOps(*r.MemOps)
		return memopsRepro(sc)
	case FamilyKernel:
		sc := c.shrinkKernel(*r.Kernel)
		return kernelRepro(sc)
	case FamilyScrub:
		sc := c.shrinkScrub(*r.Scrub)
		return scrubRepro(sc)
	}
	return r
}

// shrinkKernel reduces a failing kernel scenario along its pinnable
// axes: serial execution, a single epoch, the earliest reproducing
// crash point, the fewest reproducing bit flips.
func (c *Checker) shrinkKernel(sc KernelScenario) KernelScenario {
	fails := func(s KernelScenario) bool { return c.RunKernel(s) != nil }
	if !fails(sc) {
		return sc
	}
	if sc.Workers > 1 {
		cand := sc
		cand.Workers = 1
		if fails(cand) {
			sc = cand
		}
	}
	if sc.Epochs > 1 {
		cand := sc
		cand.Epochs = 0
		if fails(cand) {
			sc = cand
		}
	}
	if sc.Fault == faultsim.MidKernelCrash {
		for _, after := range []int{1, 2, 4, 8, 16} {
			cand := sc
			cand.AfterBlocks = after
			if fails(cand) {
				sc = cand
				break
			}
		}
	}
	if sc.Fault == faultsim.DataBitFlips || sc.Fault == faultsim.StoreBitFlips {
		cand := sc
		cand.Flips = 1
		if fails(cand) {
			sc = cand
		}
	}
	return sc
}
