package core

import "errors"

// Typed recovery errors. Recovery paths return these (wrapped with
// context) instead of panicking, so fault-injection campaigns and
// production callers can distinguish "the durable state cannot be
// repaired" from a programming error.
var (
	// ErrUnrecoverable reports that recovery could not reach a clean
	// validation within its round and escalation budget: the durable
	// state is damaged beyond what re-execution (and any provided
	// checkpoint) can repair.
	ErrUnrecoverable = errors.New("persistent state unrecoverable")

	// ErrStoreCorrupt reports that the checksum store cannot serve the
	// lookups validation needs — its organization does not support the
	// configured region fusion, or its contents are uninterpretable.
	ErrStoreCorrupt = errors.New("checksum store corrupt or unusable")
)

// IsTypedRecoveryError reports whether err is (or wraps) one of the
// typed recovery errors — the honest "damage beyond repair" outcomes a
// fault campaign accepts, as opposed to a programming error.
func IsTypedRecoveryError(err error) bool {
	return errors.Is(err, ErrUnrecoverable) || errors.Is(err, ErrStoreCorrupt)
}
