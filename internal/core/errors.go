package core

import (
	"errors"
	"fmt"
)

// Typed recovery errors. Recovery paths return these (wrapped with
// context) instead of panicking, so fault-injection campaigns and
// production callers can distinguish "the durable state cannot be
// repaired" from a programming error.
var (
	// ErrUnrecoverable reports that recovery could not reach a clean
	// validation within its round and escalation budget: the durable
	// state is damaged beyond what re-execution (and any provided
	// checkpoint) can repair.
	ErrUnrecoverable = errors.New("persistent state unrecoverable")

	// ErrStoreCorrupt reports that the checksum store cannot serve the
	// lookups validation needs — its organization does not support the
	// configured region fusion, or its contents are uninterpretable.
	ErrStoreCorrupt = errors.New("checksum store corrupt or unusable")

	// ErrDegraded reports that self-healing recovery completed — every
	// still-healthy region validates — but some regions were quarantined
	// (permanently uncorrectable media, or blocks the watchdog had to
	// abort) and their results are excluded. The run keeps serving at the
	// reported coverage instead of failing outright.
	ErrDegraded = errors.New("persistent state degraded: quarantined regions excluded")
)

// DegradedError is the typed ErrDegraded result of self-healing recovery:
// the surviving regions are valid, the listed ones are quarantined.
type DegradedError struct {
	// Coverage is the fraction of LP regions still served (0..1),
	// 1 - quarantined/total.
	Coverage float64
	// Regions lists the quarantined LP region indices in ascending order.
	Regions []int
	// Lines lists the uncorrectable NVM line addresses behind the
	// quarantine (from the final scrub sweep), in ascending order.
	Lines []uint64
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("core: degraded completion: %d regions quarantined (coverage %.4f, %d uncorrectable lines): %v",
		len(e.Regions), e.Coverage, len(e.Lines), ErrDegraded)
}

// Unwrap ties every DegradedError to the ErrDegraded sentinel.
func (e *DegradedError) Unwrap() error { return ErrDegraded }

// Is makes errors.Is(err, ErrDegraded) hold for any chain containing a
// DegradedError, consistently with the other typed recovery errors, even
// when an intermediate wrapper hides the Unwrap chain.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// IsTypedRecoveryError reports whether err is (or wraps) one of the
// typed recovery errors — the honest "damage beyond repair" (or
// "serving degraded") outcomes a fault campaign accepts, as opposed to a
// programming error.
func IsTypedRecoveryError(err error) bool {
	return errors.Is(err, ErrUnrecoverable) || errors.Is(err, ErrStoreCorrupt) ||
		errors.Is(err, ErrDegraded)
}
