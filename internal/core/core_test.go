package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/memsim"
)

func newTestDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 4
	return gpusim.MustNew(cfg, memsim.MustNew(memsim.Config{
		LineSize: 128, CacheBytes: 256 << 10, Ways: 8,
		NVMReadNS: 160, NVMWriteNS: 480, NVMBandwidthGBs: 326.4,
	}))
}

// fillKernel is a minimal LP-protected workload: each thread stores a
// deterministic value derived from its global id and folds it into the
// region explicitly (the Listing 2 style).
func fillKernel(out memsim.Region, lp *LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := uint32(gid)*2654435761 + 12345
			t.StoreU32(out, gid, v)
			r.Update(t, v)
		})
		r.Commit()
	}
}

// fillRecompute reloads each block's outputs and refolds them.
func fillRecompute(out memsim.Region) RecomputeFunc {
	return func(b *gpusim.Block, r *Region) {
		b.ForAll(func(t *gpusim.Thread) {
			v := t.LoadU32(out, t.GlobalLinear())
			r.Update(t, v)
		})
	}
}

func allLPConfigs() []Config {
	var out []Config
	for _, st := range []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo, hashtab.GlobalArray} {
		for _, lm := range []hashtab.LockMode{hashtab.LockFree, hashtab.LockBased, hashtab.NoAtomic} {
			for _, red := range []Reduction{ReduceShuffle, ReduceSequential} {
				out = append(out, Config{Checksum: checksum.Dual, Store: st, LockMode: lm, Reduction: red, Seed: 5})
			}
		}
	}
	return out
}

func TestValidationPassesAfterCleanRun(t *testing.T) {
	for _, cfg := range allLPConfigs() {
		name := fmt.Sprintf("%v-%v-%v", cfg.Store, cfg.LockMode, cfg.Reduction)
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice()
			grid, blk := gpusim.D1(64), gpusim.D1(64)
			out := dev.Alloc("out", grid.Size()*blk.Size()*4)
			out.HostZero()
			lp := New(dev, cfg, grid, blk)
			dev.Launch("fill", grid, blk, fillKernel(out, lp))
			// No crash: everything coherent, so validation (which reads
			// through the cache) must pass for every block.
			failed, _, _ := lp.Validate(fillRecompute(out))
			if len(failed) != 0 {
				t.Fatalf("clean run failed validation for %d blocks: %v...", len(failed), failed[:min(len(failed), 5)])
			}
		})
	}
}

func TestCrashRecoveryRestoresOutput(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(256), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := fillKernel(out, lp)

	dev.Launch("fill", grid, blk, kernel)

	// Golden: the coherent (pre-crash logical) contents.
	golden := make([]uint32, n)
	for i := range golden {
		golden[i] = out.PeekU32(i)
	}

	dev.Mem().Crash() // dirty lines lost

	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) == 0 {
		t.Skip("crash lost nothing at this scale; cannot exercise recovery")
	}
	rep, err := lp.ValidateAndRecover(kernel, fillRecompute(out), 4)
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	for i := range golden {
		if got := out.PeekU32(i); got != golden[i] {
			t.Fatalf("out[%d] = %d after recovery, want %d", i, got, golden[i])
		}
	}
	if rep.FailedPerRound[0] != len(failed) {
		t.Errorf("report first round %d != observed %d", rep.FailedPerRound[0], len(failed))
	}
	t.Logf("%v", rep)
}

func TestRecoveredStateIsDurable(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(128), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := fillKernel(out, lp)

	dev.Launch("fill", grid, blk, kernel)
	dev.Mem().Crash()
	if _, err := lp.ValidateAndRecover(kernel, fillRecompute(out), 4); err != nil {
		t.Fatal(err)
	}
	// Eager recovery flushes: a second crash immediately after recovery
	// must lose nothing.
	dev.Mem().Crash()
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != 0 {
		t.Fatalf("%d blocks invalid after post-recovery crash; eager recovery did not persist", len(failed))
	}
}

func TestValidationDetectsLostChecksumStore(t *testing.T) {
	// Even when all data persisted, a lost checksum insertion must fail
	// validation (the checksum store is itself lazily persisted).
	dev := newTestDevice()
	grid, blk := gpusim.D1(8), gpusim.D1(32)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	dev.Launch("fill", grid, blk, fillKernel(out, lp))
	// Persist everything, then clobber the checksum table durably.
	dev.Mem().FlushAll()
	lp.Reset()
	dev.Mem().Crash()
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != grid.Size() {
		t.Errorf("%d blocks failed, want all %d (checksums were wiped)", len(failed), grid.Size())
	}
}

func TestInstrumentMatchesExplicit(t *testing.T) {
	// The store-hook instrumentation must produce the same checksums as
	// hand-written Update calls: a clean instrumented run validates.
	dev := newTestDevice()
	grid, blk := gpusim.D1(32), gpusim.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)

	plain := func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			t.StoreF32(out, gid, float32(gid)*1.5)
		})
	}
	dev.Launch("fill", grid, blk, lp.Instrument(plain, out))
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != 0 {
		t.Fatalf("instrumented run failed validation for %d blocks", len(failed))
	}
}

func TestInstrumentIgnoresUnprotectedRegions(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(4), gpusim.D1(32)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	scratch := dev.Alloc("scratch", grid.Size()*blk.Size()*4)
	out.HostZero()
	scratch.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)

	kernel := func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			t.StoreU32(scratch, gid, 0xdead) // unprotected: must not affect checksums
			t.StoreU32(out, gid, uint32(gid))
		})
	}
	dev.Launch("fill", grid, blk, lp.Instrument(kernel, out))
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != 0 {
		t.Fatalf("scratch stores leaked into checksums: %d blocks failed", len(failed))
	}
}

func TestInstrumentValidation(t *testing.T) {
	dev := newTestDevice()
	lp := New(dev, DefaultConfig(), gpusim.D1(1), gpusim.D1(32))
	t.Run("nil kernel", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		lp.Instrument(nil, memsim.Region{})
	})
	t.Run("no regions", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		lp.Instrument(func(b *gpusim.Block) {}, []memsim.Region{}...)
	})
}

func TestNilRuntimeIsInert(t *testing.T) {
	dev := newTestDevice()
	out := dev.Alloc("out", 32*4)
	out.HostZero()
	var lp *LP
	res := dev.Launch("baseline", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			t.StoreU32(out, t.Linear, 1)
			r.Update(t, 1)
			r.UpdateF32(t, 2.0)
		})
		r.Commit()
	})
	if res.Blocks != 1 {
		t.Fatal("baseline did not run")
	}
	for i := 0; i < 32; i++ {
		if out.PeekU32(i) != 1 {
			t.Fatal("baseline kernel body broken")
		}
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	dev := newTestDevice()
	lp := New(dev, DefaultConfig(), gpusim.D1(4), gpusim.D1(32))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched geometry")
		}
	}()
	dev.Launch("bad", gpusim.D1(4), gpusim.D1(64), func(b *gpusim.Block) {
		lp.Begin(b)
	})
}

func TestNewValidatesGeometry(t *testing.T) {
	dev := newTestDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty grid")
		}
	}()
	New(dev, DefaultConfig(), gpusim.D1(0), gpusim.D1(32))
}

func TestValidateNilRecomputeTypedError(t *testing.T) {
	dev := newTestDevice()
	lp := New(dev, DefaultConfig(), gpusim.D1(1), gpusim.D1(32))
	_, _, err := lp.Validate(nil)
	if !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("Validate(nil) = %v, want ErrStoreCorrupt", err)
	}
}

func TestChecksumKindsValidate(t *testing.T) {
	for _, kind := range []checksum.Kind{checksum.Parity, checksum.Modular, checksum.Dual} {
		t.Run(kind.String(), func(t *testing.T) {
			dev := newTestDevice()
			grid, blk := gpusim.D1(16), gpusim.D1(64)
			out := dev.Alloc("out", grid.Size()*blk.Size()*4)
			out.HostZero()
			cfg := DefaultConfig()
			cfg.Checksum = kind
			lp := New(dev, cfg, grid, blk)
			dev.Launch("fill", grid, blk, fillKernel(out, lp))
			failed, _, _ := lp.Validate(fillRecompute(out))
			if len(failed) != 0 {
				t.Fatalf("%v: clean run failed validation (%d blocks)", kind, len(failed))
			}
		})
	}
}

func TestAdler32Rejected(t *testing.T) {
	dev := newTestDevice()
	cfg := DefaultConfig()
	cfg.Checksum = checksum.Adler32
	defer func() {
		if recover() == nil {
			t.Fatal("order-sensitive Adler-32 must be rejected for GPU LP")
		}
	}()
	New(dev, cfg, gpusim.D1(4), gpusim.D1(32))
}

func TestDualChecksumCostsMoreThanSingle(t *testing.T) {
	run := func(kind checksum.Kind) int64 {
		dev := newTestDevice()
		grid, blk := gpusim.D1(64), gpusim.D1(64)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		cfg := DefaultConfig()
		cfg.Checksum = kind
		lp := New(dev, cfg, grid, blk)
		return dev.Launch("fill", grid, blk, fillKernel(out, lp)).Cycles
	}
	parity, dual := run(checksum.Parity), run(checksum.Dual)
	if dual <= parity {
		t.Errorf("dual (%d cycles) not more expensive than parity alone (%d)", dual, parity)
	}
	// §VII-2: the bump should be minor, not a doubling.
	if float64(dual) > 1.5*float64(parity) {
		t.Errorf("dual checksum cost blow-up: %d vs %d cycles", dual, parity)
	}
}

func TestSequentialReductionSlowerThanShuffle(t *testing.T) {
	run := func(red Reduction) int64 {
		dev := newTestDevice()
		grid, blk := gpusim.D1(128), gpusim.D1(256)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		cfg := DefaultConfig()
		cfg.Reduction = red
		lp := New(dev, cfg, grid, blk)
		return dev.Launch("fill", grid, blk, fillKernel(out, lp)).Cycles
	}
	shfl, seq := run(ReduceShuffle), run(ReduceSequential)
	if seq <= shfl {
		t.Errorf("sequential reduction (%d cycles) not slower than shuffle (%d)", seq, shfl)
	}
}

func TestCheckpointBoundsValidation(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	dev.Launch("fill", grid, blk, fillKernel(out, lp))
	if n := lp.Checkpoint(); n == 0 {
		t.Error("checkpoint flushed nothing despite dirty lines")
	}
	dev.Mem().Crash()
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != 0 {
		t.Errorf("crash after checkpoint lost %d regions", len(failed))
	}
}

func TestRecoveryReportString(t *testing.T) {
	rep := RecoveryReport{Rounds: 1, FailedPerRound: []int{3, 0}, ValidateCycles: 10, RecoverCycles: 20}
	if rep.TotalCycles() != 30 || rep.String() == "" {
		t.Errorf("report accessors broken: %+v", rep)
	}
}

func TestReductionString(t *testing.T) {
	if ReduceShuffle.String() != "shuffle" || ReduceSequential.String() != "sequential" {
		t.Error("Reduction strings wrong")
	}
	if Reduction(9).String() == "" {
		t.Error("unknown reduction should format")
	}
}

func TestAccessors(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(4), gpusim.D1(32)
	lp := New(dev, DefaultConfig(), grid, blk)
	if lp.Grid() != grid || lp.Block() != blk {
		t.Error("geometry accessors wrong")
	}
	if lp.Config().Store != hashtab.GlobalArray {
		t.Error("config accessor wrong")
	}
	if lp.TableBytes() != lp.Store().TableBytes() {
		t.Error("TableBytes accessor inconsistent")
	}
}

// TestPropertyRecoveryAlwaysRestores: for arbitrary crash points
// (simulated by flushing a prefix of blocks then crashing), recovery
// restores the full golden output.
func TestPropertyRecoveryAlwaysRestores(t *testing.T) {
	f := func(seed uint64) bool {
		dev := newTestDevice()
		grid, blk := gpusim.D1(64), gpusim.D1(64)
		n := grid.Size() * blk.Size()
		out := dev.Alloc("out", n*4)
		out.HostZero()
		cfg := DefaultConfig()
		cfg.Seed = seed
		// Vary the store kind by seed for extra coverage.
		cfg.Store = []hashtab.Kind{hashtab.GlobalArray, hashtab.Quad, hashtab.Cuckoo}[seed%3]
		lp := New(dev, cfg, grid, blk)
		kernel := fillKernel(out, lp)
		dev.Launch("fill", grid, blk, kernel)
		golden := make([]uint32, n)
		for i := range golden {
			golden[i] = out.PeekU32(i)
		}
		dev.Mem().Crash()
		if _, err := lp.ValidateAndRecover(kernel, fillRecompute(out), 4); err != nil {
			return false
		}
		for i := range golden {
			if out.PeekU32(i) != golden[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
