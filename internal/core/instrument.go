package core

import (
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Instrument wraps a plain kernel with directive-style Lazy Persistency:
// every 32-bit store the kernel issues to one of the protected regions is
// folded into the block checksum automatically, and the block checksum is
// committed when the kernel body returns. This is the runtime analog of
// the #pragma nvm lpcuda_checksum directive (§VI): the kernel author
// declares *which* arrays are persistent instead of writing checksum code.
//
// The same unwrapped kernel is the no-LP baseline, so overhead
// measurements compare identical kernel bodies.
func (lp *LP) Instrument(kernel gpusim.KernelFunc, protected ...memsim.Region) gpusim.KernelFunc {
	if kernel == nil {
		panic("core: nil kernel")
	}
	if len(protected) == 0 {
		panic("core: Instrument needs at least one protected region")
	}
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		// The hook is installed per block (not on the device): with
		// Config.Workers > 1 several blocks run concurrently, each folding
		// stores into its own region.
		prev := b.SetStoreHook(func(t *gpusim.Thread, reg memsim.Region, elemIdx int, bits uint32) {
			for _, p := range protected {
				if p.Base == reg.Base {
					r.Update(t, bits)
					return
				}
			}
		})
		defer b.SetStoreHook(prev)
		kernel(b)
		r.Commit()
	}
}

// RecomputeOver builds a RecomputeFunc for the common case where each
// block's persistent output is a known set of elements in one region:
// elems maps a block to the element indices it stored (in any order —
// the checksums are associative). The returned function reloads those
// elements and folds them into the region, exactly what the generated
// check-and-recovery kernel of Listing 7 does.
func RecomputeOver(out memsim.Region, elems func(b *gpusim.Block) []int) RecomputeFunc {
	return func(b *gpusim.Block, r *Region) {
		idxs := elems(b)
		b.ForAll(func(t *gpusim.Thread) {
			// Reloads are strided across the block's threads; the exact
			// assignment is irrelevant because the checksums are
			// commutative and associative across the whole block.
			for i := t.Linear; i < len(idxs); i += b.BlockDim.Size() {
				v := t.LoadU32(out, idxs[i])
				r.Update(t, v)
			}
		})
	}
}
