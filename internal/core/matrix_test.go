package core

import (
	"fmt"
	"testing"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/memsim"
)

// TestDesignSpaceMatrixCrashRecovery runs the full §IV design space —
// every checksum store × locking mode × reduction strategy × checksum
// kind — through the complete crash/recovery flow with a small cache, and
// requires exact output restoration from each point. This is the
// characterization's correctness backbone: whatever the performance of a
// design point, it must be *sound*.
func TestDesignSpaceMatrixCrashRecovery(t *testing.T) {
	stores := []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo, hashtab.GlobalArray, hashtab.Chained}
	locks := []hashtab.LockMode{hashtab.LockFree, hashtab.LockBased, hashtab.NoAtomic}
	reductions := []Reduction{ReduceShuffle, ReduceSequential}
	kinds := []checksum.Kind{checksum.Parity, checksum.Modular, checksum.Dual}

	for _, st := range stores {
		for _, lm := range locks {
			if st == hashtab.Chained && lm == hashtab.NoAtomic {
				continue // chained has no distinct no-atomic variant
			}
			for _, red := range reductions {
				for _, kind := range kinds {
					cfg := Config{Checksum: kind, Store: st, LockMode: lm, Reduction: red, Seed: 9}
					name := fmt.Sprintf("%v-%v-%v-%v", st, lm, red, kind)
					t.Run(name, func(t *testing.T) {
						runMatrixPoint(t, cfg)
					})
				}
			}
		}
	}
}

func runMatrixPoint(t *testing.T, cfg Config) {
	t.Helper()
	devCfg := gpusim.DefaultConfig()
	devCfg.NumSMs = 4
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 64 << 10
	dev := gpusim.MustNew(devCfg, memsim.MustNew(memCfg))

	grid, blk := gpusim.D1(48), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, cfg, grid, blk)
	kernel := fillKernel(out, lp)

	dev.Launch("fill", grid, blk, kernel)
	golden := make([]uint32, n)
	for i := range golden {
		golden[i] = out.PeekU32(i)
	}
	dev.Mem().Crash()

	rep, err := lp.ValidateAndRecover(kernel, fillRecompute(out), 5)
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	for i := range golden {
		if got := out.PeekU32(i); got != golden[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got, golden[i])
		}
	}
}

// TestMatrixOverheadOrdering: across the design space on one device, the
// global array is never beaten by a lock-based hash table — the paper's
// bottom-line ranking.
func TestMatrixOverheadOrdering(t *testing.T) {
	run := func(cfg Config) int64 {
		devCfg := gpusim.DefaultConfig()
		devCfg.NumSMs = 8
		dev := gpusim.MustNew(devCfg, memsim.MustNew(memsim.DefaultConfig()))
		grid, blk := gpusim.D1(512), gpusim.D1(32)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		cfg.Seed = 3
		lp := New(dev, cfg, grid, blk)
		return dev.Launch("fill", grid, blk, fillKernel(out, lp)).Cycles
	}
	ga := run(DefaultConfig())
	quadLock := run(Config{Checksum: checksum.Dual, Store: hashtab.Quad, LockMode: hashtab.LockBased})
	chainedLock := run(Config{Checksum: checksum.Dual, Store: hashtab.Chained, LockMode: hashtab.LockBased})
	if !(ga < quadLock && ga < chainedLock) {
		t.Errorf("global array (%d cycles) beaten by lock-based designs (quad %d, chained %d)",
			ga, quadLock, chainedLock)
	}
}
