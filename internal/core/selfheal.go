// Self-healing recovery orchestration: the online counterpart of
// RecoverHardened. Where hardened recovery assumes one fail-stop crash and
// a healthy medium, SelfHeal drives recovery on a medium that keeps
// failing — transient media errors that an ECC scrub can rewrite, stuck-at
// cells no rewrite can fix, and livelocked blocks the kernel watchdog
// aborts. Each attempt scrubs the NVM, validates, selectively re-executes,
// and backs off on a deterministic simulated clock; regions that stay
// invalid across attempts (or whose re-execution trips the watchdog) are
// quarantined, and the run completes in degraded mode — a typed
// ErrDegraded with a coverage ratio — instead of failing the whole grid.
package core

import (
	"fmt"
	"sort"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// HealOpts configures SelfHeal.
type HealOpts struct {
	// MaxAttempts bounds the scrub→validate→repair loop (default 3).
	MaxAttempts int
	// BackoffBase is the simulated-cycle backoff charged after attempt i:
	// BackoffBase << i (deterministic exponential backoff on the simulated
	// clock — no wall time is ever consulted). Default 4096.
	BackoffBase int64
	// QuarantineAfter is how many consecutive failed validations a region
	// survives before it is quarantined (default 2). Watchdog culprits are
	// quarantined immediately — a livelocked block would otherwise stall
	// every later attempt.
	QuarantineAfter int
	// Checkpoint, when non-nil, arms the final escalation tier: restore
	// this durable image (stuck-at cells re-assert themselves through the
	// media model) and re-execute every non-quarantined block from it.
	Checkpoint *Checkpoint
	// RegionOf maps an NVM line address to the LP region whose data it
	// backs (-1 when none), letting the orchestrator quarantine straight
	// from the scrub's uncorrectable-line reports: a line uncorrectable in
	// QuarantineAfter consecutive sweeps condemns its region even while
	// cached repairs mask the damage from validation. Only the workload
	// knows its data layout, so the mapping is supplied, not derived. nil
	// disables line-based quarantine (validation streaks and watchdog
	// aborts still quarantine).
	RegionOf func(lineAddr uint64) int
}

// withDefaults fills unset knobs.
func (o HealOpts) withDefaults() HealOpts {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 4096
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 2
	}
	return o
}

// HealReport summarizes a SelfHeal run.
type HealReport struct {
	// Attempts counts scrub→validate→repair iterations performed.
	Attempts int
	// FailedPerAttempt records the non-quarantined blocks failing
	// validation at each attempt (the first entry is the initial damage).
	FailedPerAttempt []int
	// BackoffCycles is the total simulated backoff charged between
	// attempts; ValidateCycles/RepairCycles the simulated recovery costs.
	BackoffCycles  int64
	ValidateCycles int64
	RepairCycles   int64
	// Scrubs aggregates the per-attempt ECC sweeps: lines healed in
	// total, and the final sweep's report.
	Scrubs      int
	ScrubHealed int64
	FinalScrub  memsim.ScrubReport
	// WatchdogAborts counts launches the kernel watchdog had to abort
	// (each quarantines the culprit's region).
	WatchdogAborts int
	// QuarantinedRegions lists quarantined LP region indices ascending;
	// QuarantinedLines the uncorrectable NVM lines of the final scrub.
	// QuarantinedBytes is the durable footprint of those lines.
	QuarantinedRegions []int
	QuarantinedLines   []uint64
	QuarantinedBytes   int64
	// Coverage is 1 - quarantined/total regions.
	Coverage float64
	// Tier is the highest escalation level reached.
	Tier RecoveryTier
}

// String implements fmt.Stringer.
func (r HealReport) String() string {
	return fmt.Sprintf("selfheal: %d attempts (%v tier), failures %v, %d scrubs (%d healed), %d watchdog aborts, %d quarantined regions, coverage %.4f",
		r.Attempts, r.Tier, r.FailedPerAttempt, r.Scrubs, r.ScrubHealed, r.WatchdogAborts, len(r.QuarantinedRegions), r.Coverage)
}

// healState is the orchestrator's working state.
type healState struct {
	lp     *LP
	opts   HealOpts
	rep    *HealReport
	kernel gpusim.KernelFunc
	// quarantined marks LP regions excluded from validation and repair.
	// failStreak counts, per region, consecutive validations that failed
	// *after a completed repair* — failures following an aborted repair
	// (the watchdog crashed the hierarchy, losing the attempt's work)
	// prove nothing about the region and do not advance the streak.
	// lineStreak counts consecutive scrub sweeps in which an NVM line was
	// uncorrectable; repairedReg marks regions whose repair completed
	// (flushed durably) since the last validation.
	quarantined map[int]bool
	failStreak  map[int]int
	lineStreak  map[uint64]int
	repairedReg map[int]bool
	// lastScrub is the most recent sweep's report; its uncorrectable
	// lines mark suspect regions for the next validation round.
	lastScrub memsim.ScrubReport
}

// quarantine marks region reg quarantined (idempotent).
func (h *healState) quarantine(reg int) {
	if reg >= 0 && reg < h.lp.regions {
		h.quarantined[reg] = true
	}
}

// activeBlocks returns every block whose region is not quarantined, in
// ascending order.
func (h *healState) activeBlocks() []int {
	var out []int
	for blk := 0; blk < h.lp.grid.Size(); blk++ {
		if !h.quarantined[blk/h.lp.fusion] {
			out = append(out, blk)
		}
	}
	return out
}

// filterQuarantined drops blocks of quarantined regions from failed.
func (h *healState) filterQuarantined(failed []int) []int {
	out := failed[:0]
	for _, blk := range failed {
		if !h.quarantined[blk/h.lp.fusion] {
			out = append(out, blk)
		}
	}
	return out
}

// noteValidation updates per-region failure streaks from a validation
// outcome and quarantines regions whose streak reached the bound. A
// failure advances the streak only when the region's repair completed
// since the last validation (otherwise the failure is expected, not
// evidence of unhealable damage). It returns the still-active failed
// blocks.
func (h *healState) noteValidation(failed []int) []int {
	failedReg := map[int]bool{}
	for _, blk := range failed {
		failedReg[blk/h.lp.fusion] = true
	}
	for reg := 0; reg < h.lp.regions; reg++ {
		if h.quarantined[reg] {
			continue
		}
		switch {
		case !failedReg[reg]:
			h.failStreak[reg] = 0
		case h.repairedReg[reg]:
			h.failStreak[reg]++
			if h.failStreak[reg] >= h.opts.QuarantineAfter {
				h.quarantine(reg)
			}
		}
	}
	clear(h.repairedReg)
	return h.filterQuarantined(failed)
}

// scrub runs one ECC sweep, folds it into the report, and — when the
// workload supplied a RegionOf mapping — quarantines regions whose lines
// stayed uncorrectable for QuarantineAfter consecutive sweeps. Lines that
// heal (or vanish) reset their streak.
func (h *healState) scrub() memsim.ScrubReport {
	sr := h.lp.dev.Mem().Scrub()
	h.rep.Scrubs++
	h.rep.ScrubHealed += int64(sr.Healed)
	h.rep.FinalScrub = sr
	unc := map[uint64]bool{}
	for _, line := range sr.UncorrectableLines {
		unc[line] = true
		h.lineStreak[line]++
		if h.opts.RegionOf != nil && h.lineStreak[line] >= h.opts.QuarantineAfter {
			h.quarantine(h.opts.RegionOf(line))
		}
	}
	for line := range h.lineStreak {
		if !unc[line] {
			delete(h.lineStreak, line)
		}
	}
	h.lastScrub = sr
	return sr
}

// suspectBlocks expands the still-active regions behind the last sweep's
// uncorrectable lines into block indices. A repaired stuck line sits
// cached-clean, so validation alone would pass the region while its
// durable bytes stay wrong — the scrub's ECC view is the only witness,
// and its suspects must fail validation until healed or quarantined.
func (h *healState) suspectBlocks() []int {
	if h.opts.RegionOf == nil {
		return nil
	}
	var out []int
	seen := map[int]bool{}
	for _, line := range h.lastScrub.UncorrectableLines {
		reg := h.opts.RegionOf(line)
		if reg < 0 || reg >= h.lp.regions || h.quarantined[reg] || seen[reg] {
			continue
		}
		seen[reg] = true
		for blk := reg * h.lp.fusion; blk < (reg+1)*h.lp.fusion && blk < h.lp.grid.Size(); blk++ {
			out = append(out, blk)
		}
	}
	return out
}

// validate runs one quarantine-aware validation round. A watchdog abort
// during validation quarantines the culprit and reports ok=false (the
// round's outcome is untrusted); a store error is fatal.
func (h *healState) validate(recompute RecomputeFunc) (failed []int, ok bool, err error) {
	failed, vres, err := h.lp.Validate(recompute)
	h.rep.ValidateCycles += vres.Cycles
	if err != nil {
		return nil, false, err
	}
	if vres.Watchdog != nil {
		h.rep.WatchdogAborts++
		h.quarantine(vres.Watchdog.Block / h.lp.fusion)
		return nil, false, nil
	}
	if suspects := h.suspectBlocks(); len(suspects) > 0 {
		merged := map[int]bool{}
		for _, blk := range append(failed, suspects...) {
			merged[blk] = true
		}
		failed = failed[:0]
		for blk := range merged {
			failed = append(failed, blk)
		}
		sort.Ints(failed)
	}
	return h.noteValidation(failed), true, nil
}

// repairSelected re-executes blks and flushes the repairs durable. A
// watchdog abort quarantines the culprit's region and reports false — the
// hierarchy has been crashed, so the attempt's repairs are lost and the
// next attempt revalidates from the durable image.
func (h *healState) repairSelected(name string, blks []int) (bool, error) {
	lp := h.lp
	if lp.fusion > 1 && len(blks) > 0 {
		merger, err := lp.merger()
		if err != nil {
			return false, err
		}
		seen := map[int]bool{}
		for _, blk := range blks {
			if reg := blk / lp.fusion; !seen[reg] {
				seen[reg] = true
				merger.HostResetEntry(uint64(reg))
			}
		}
	}
	rres := lp.dev.LaunchSelected(name, lp.grid, lp.blk, h.kernel, blks)
	h.rep.RepairCycles += rres.Cycles
	if rres.Watchdog != nil {
		h.rep.WatchdogAborts++
		h.quarantine(rres.Watchdog.Block / lp.fusion)
		return false, nil
	}
	lp.dev.Mem().FlushAll()
	for _, blk := range blks {
		h.repairedReg[blk/lp.fusion] = true
	}
	return true, nil
}

// SelfHeal is the retrying recovery orchestrator. Each attempt scrubs the
// NVM (healing transient media errors through the ordinary persistency
// paths), validates the non-quarantined regions, selectively re-executes
// the failures, and charges a deterministic exponential backoff on the
// simulated clock. Regions that stay invalid across attempts — a stuck-at
// cell under their data keeps re-corrupting every rewrite — and blocks
// whose re-execution livelocks (watchdog abort) are quarantined and
// excluded from further work. When attempts run out, recovery escalates
// like RecoverHardened, restricted to the surviving regions: full
// re-execution over the current durable data, then (when armed) a
// checkpoint restore.
//
// The outcome is nil when everything validates and nothing was
// quarantined; a *DegradedError (wrapping ErrDegraded, with the coverage
// ratio) when the surviving regions validate but some were quarantined;
// and an error wrapping ErrUnrecoverable when even the surviving regions
// cannot be repaired. The whole procedure consults only simulated state,
// so its result — including the quarantine set — is bit-identical across
// gpusim Workers settings.
func (lp *LP) SelfHeal(kernel gpusim.KernelFunc, recompute RecomputeFunc, opts HealOpts) (HealReport, error) {
	opts = opts.withDefaults()
	rep := HealReport{Coverage: 1}
	h := &healState{
		lp:          lp,
		opts:        opts,
		rep:         &rep,
		quarantined: map[int]bool{},
		failStreak:  map[int]int{},
		lineStreak:  map[uint64]int{},
		repairedReg: map[int]bool{},
		kernel:      kernel,
	}

	clean := false
	for attempt := 0; attempt < opts.MaxAttempts && !clean; attempt++ {
		rep.Attempts++
		h.scrub()
		failed, ok, err := h.validate(recompute)
		if err != nil {
			return h.finish(), err
		}
		if ok {
			rep.FailedPerAttempt = append(rep.FailedPerAttempt, len(failed))
			if len(failed) == 0 {
				clean = true
				break
			}
			if _, err := h.repairSelected("lp-heal", failed); err != nil {
				return h.finish(), err
			}
		}
		rep.BackoffCycles += opts.BackoffBase << attempt
	}

	// Escalation tiers over the surviving regions only.
	if !clean {
		rep.Tier = TierFullGrid
		if err := h.fullRepairActive(); err != nil {
			return h.finish(), err
		}
		h.scrub()
		failed, ok, err := h.validate(recompute)
		if err != nil {
			return h.finish(), err
		}
		clean = ok && len(failed) == 0
	}
	if !clean && opts.Checkpoint != nil {
		rep.Tier = TierCheckpoint
		opts.Checkpoint.Restore()
		if err := h.fullRepairActive(); err != nil {
			return h.finish(), err
		}
		h.scrub()
		failed, ok, err := h.validate(recompute)
		if err != nil {
			return h.finish(), err
		}
		clean = ok && len(failed) == 0
	}

	rep = h.finish()
	if !clean {
		return rep, fmt.Errorf("core: self-heal exhausted after %d attempts (%v tier, %d regions quarantined): %w",
			rep.Attempts, rep.Tier, len(rep.QuarantinedRegions), ErrUnrecoverable)
	}
	if len(rep.QuarantinedRegions) > 0 {
		return rep, &DegradedError{
			Coverage: rep.Coverage,
			Regions:  append([]int(nil), rep.QuarantinedRegions...),
			Lines:    append([]uint64(nil), rep.QuarantinedLines...),
		}
	}
	return rep, nil
}

// fullRepairActive durably clears the checksum store and re-executes every
// non-quarantined block, retrying (and quarantining the culprit) whenever
// the watchdog aborts the launch. Each abort strictly grows the quarantine
// set, so the loop terminates within Regions iterations.
func (h *healState) fullRepairActive() error {
	for {
		h.lp.st.Clear()
		active := h.activeBlocks()
		if len(active) == 0 {
			return nil
		}
		ok, err := h.repairSelected("lp-heal-full", active)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// finish freezes the quarantine sets and coverage into the report.
func (h *healState) finish() HealReport {
	rep := *h.rep
	rep.QuarantinedRegions = rep.QuarantinedRegions[:0]
	for reg := range h.quarantined {
		rep.QuarantinedRegions = append(rep.QuarantinedRegions, reg)
	}
	sort.Ints(rep.QuarantinedRegions)
	rep.QuarantinedLines = append([]uint64(nil), rep.FinalScrub.UncorrectableLines...)
	rep.QuarantinedBytes = int64(len(rep.QuarantinedLines)) * int64(h.lp.dev.Mem().Config().LineSize)
	rep.Coverage = 1 - float64(len(rep.QuarantinedRegions))/float64(h.lp.regions)
	*h.rep = rep
	return rep
}
