package core

import (
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
)

func fusedConfig(f int) Config {
	cfg := DefaultConfig()
	cfg.Fusion = f
	return cfg
}

func TestFusionRegionsAndTableShrink(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	plain := New(dev, DefaultConfig(), grid, blk)

	dev2 := newTestDevice()
	fused := New(dev2, fusedConfig(4), grid, blk)
	if fused.Regions() != 16 || fused.Fusion() != 4 {
		t.Fatalf("fusion geometry wrong: regions=%d fusion=%d", fused.Regions(), fused.Fusion())
	}
	if fused.TableBytes() >= plain.TableBytes() {
		t.Errorf("fusion did not shrink the checksum table: %d vs %d", fused.TableBytes(), plain.TableBytes())
	}
	// Entries grow from 2 to 3 words (the contributor count), so the
	// shrink is fusion*2/3: 64*16B plain vs 16*24B fused.
	if plain.TableBytes() != 64*16 || fused.TableBytes() != 16*24 {
		t.Errorf("table bytes plain=%d fused=%d, want 1024/384", plain.TableBytes(), fused.TableBytes())
	}
}

func TestFusionRequiresGlobalArray(t *testing.T) {
	dev := newTestDevice()
	cfg := fusedConfig(4)
	cfg.Store = hashtab.Quad
	defer func() {
		if recover() == nil {
			t.Fatal("fusion with a hash table store did not panic")
		}
	}()
	New(dev, cfg, gpusim.D1(8), gpusim.D1(32))
}

func TestFusionCleanRunValidates(t *testing.T) {
	for _, f := range []int{2, 4, 7, 64} { // 7: grid not divisible by fusion
		dev := newTestDevice()
		grid, blk := gpusim.D1(64), gpusim.D1(64)
		out := dev.Alloc("out", grid.Size()*blk.Size()*4)
		out.HostZero()
		lp := New(dev, fusedConfig(f), grid, blk)
		dev.Launch("fill", grid, blk, fillKernel(out, lp))
		failed, _, _ := lp.Validate(fillRecompute(out))
		if len(failed) != 0 {
			t.Errorf("fusion=%d: clean run failed validation for %d blocks", f, len(failed))
		}
	}
}

func TestFusionDetectsAtGroupGranularity(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	const f = 8
	lp := New(dev, fusedConfig(f), grid, blk)
	dev.Launch("fill", grid, blk, fillKernel(out, lp))
	dev.Mem().FlushAll()

	// Durably corrupt exactly one element belonging to block 13.
	victim := 13*blk.Size() + 5
	out.Memory().HostWrite(out.Base+uint64(victim*4), []byte{0xff, 0xff, 0xff, 0xfe})

	failed, _, _ := lp.Validate(fillRecompute(out))
	// The whole fused group of block 13 must fail — and nothing else.
	if len(failed) != f {
		t.Fatalf("failed %d blocks, want the whole group of %d", len(failed), f)
	}
	group := 13 / f
	for _, blkIdx := range failed {
		if blkIdx/f != group {
			t.Errorf("block %d outside damaged group %d reported as failed", blkIdx, group)
		}
	}
}

func TestFusionCrashRecoveryRestoresOutput(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(128), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, fusedConfig(4), grid, blk)
	kernel := fillKernel(out, lp)
	dev.Launch("fill", grid, blk, kernel)

	golden := make([]uint32, n)
	for i := range golden {
		golden[i] = out.PeekU32(i)
	}
	dev.Mem().Crash()

	rep, err := lp.ValidateAndRecover(kernel, fillRecompute(out), 4)
	if err != nil {
		t.Fatalf("fused recovery failed: %v (%v)", err, rep)
	}
	for i := range golden {
		if out.PeekU32(i) != golden[i] {
			t.Fatalf("out[%d] wrong after fused recovery", i)
		}
	}
	// Failure counts must be multiples of... not necessarily (tail group),
	// but recovery must converge to zero.
	if rep.FailedPerRound[len(rep.FailedPerRound)-1] != 0 {
		t.Errorf("recovery did not converge: %v", rep)
	}
}

func TestFusionReducesInsertTargets(t *testing.T) {
	// With fusion, many blocks merge into few entries; the store's insert
	// count still equals the block count (each block contributes once).
	dev := newTestDevice()
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, fusedConfig(16), grid, blk)
	dev.Launch("fill", grid, blk, fillKernel(out, lp))
	if got := lp.Store().Stats().Inserts; got != 64 {
		t.Errorf("inserts = %d, want 64 (one contribution per block)", got)
	}
}

func TestFusionOneIsDefault(t *testing.T) {
	dev := newTestDevice()
	lp := New(dev, DefaultConfig(), gpusim.D1(8), gpusim.D1(32))
	if lp.Fusion() != 1 || lp.Regions() != 8 {
		t.Errorf("default fusion wrong: %d/%d", lp.Fusion(), lp.Regions())
	}
	cfg := DefaultConfig()
	cfg.Fusion = -3
	lp2 := New(newTestDevice(), cfg, gpusim.D1(8), gpusim.D1(32))
	if lp2.Fusion() != 1 {
		t.Errorf("negative fusion not clamped: %d", lp2.Fusion())
	}
}
