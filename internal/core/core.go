// Package core implements the paper's primary contribution: the Lazy
// Persistency (LP) runtime for GPUs (IISWC 2020, "Scalable and Fast Lazy
// Persistency on GPUs").
//
// An LP region is a thread block (§IV-A): thread blocks are naturally
// associative (the hardware guarantees no execution order between them),
// large enough to amortize checksum cost, and able to reduce their
// checksums cooperatively through shared memory and warp shuffles. During
// normal execution every persistent store is folded into a per-thread
// checksum; at block end the per-thread checksums are reduced to one pair
// per block (modular + parity) and inserted into a checksum store in
// global — and therefore NVM-backed — memory. Nothing is ever flushed:
// both the data and the checksums persist through natural cache eviction.
//
// After a crash, a validation kernel with the original grid geometry
// recomputes each block's checksums from the durable data and compares
// them with the durably stored ones; blocks that fail (because a data
// store or the checksum store itself never persisted) are re-executed.
//
// The runtime exposes every design-space axis the paper characterizes:
// checksum kind (§IV-B), checksum store organization and locking (§IV-C),
// and sequential vs. shuffle-based parallel reduction (§IV-D.5), plus the
// paper's final design — the hash-table-less global array (§V).
package core

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/memsim"
)

// Reduction selects how per-thread checksums combine into the block
// checksum.
type Reduction int

const (
	// ReduceShuffle uses warp-level shuffle-down reduction followed by a
	// shared-memory staged final reduction by warp 0 (Listings 3–4).
	ReduceShuffle Reduction = iota
	// ReduceSequential stages per-thread checksums through global
	// memory and folds them sequentially on one thread — the paper's
	// "no parallel reduction" baseline, which adds memory traffic and a
	// long divergent tail (§IV-D.5).
	ReduceSequential
)

// String implements fmt.Stringer.
func (r Reduction) String() string {
	switch r {
	case ReduceShuffle:
		return "shuffle"
	case ReduceSequential:
		return "sequential"
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// Config selects a point in the LP design space.
type Config struct {
	// Checksum is the checksum scheme (default Dual, the paper's
	// recommendation).
	Checksum checksum.Kind
	// Store is the checksum store organization.
	Store hashtab.Kind
	// LockMode is the insertion synchronization discipline.
	LockMode hashtab.LockMode
	// Reduction is the per-block reduction strategy.
	Reduction Reduction
	// PerfectSlot forces collision-free first probes (§IV-D.2).
	PerfectSlot bool
	// Seed perturbs the store's hash functions.
	Seed uint64
	// Fusion enlarges LP regions by grouping this many consecutive
	// thread blocks into one region sharing one checksum entry (§IV-A:
	// regions "can be enlarged if needed, e.g. through thread block
	// fusion"). Values <= 1 keep the paper's default of one region per
	// block. Fusion requires the GlobalArray store (partial checksums
	// are merged into the shared entry with atomics); it shrinks the
	// checksum table by the fusion factor at the cost of re-executing
	// the whole group when any member block's persistence fails.
	Fusion int
}

// fusion returns the effective fusion factor.
func (c Config) fusion() int {
	if c.Fusion < 1 {
		return 1
	}
	return c.Fusion
}

// DefaultConfig returns the paper's final design: global array store,
// lock-free, shuffle reduction, dual checksums — the configuration that
// achieves the headline 2.1% geometric-mean overhead (Table V).
func DefaultConfig() Config {
	return Config{
		Checksum:  checksum.Dual,
		Store:     hashtab.GlobalArray,
		LockMode:  hashtab.LockFree,
		Reduction: ReduceShuffle,
	}
}

// LP is a Lazy Persistency runtime bound to one device and one kernel
// geometry (one checksum slot per LP region; a region is one thread
// block, or Fusion consecutive blocks).
type LP struct {
	dev  *gpusim.Device
	cfg  Config
	st   hashtab.Store
	grid gpusim.Dim3
	blk  gpusim.Dim3

	fusion  int
	regions int
	epoch   uint64

	scratch      memsim.Region // staging for sequential reduction
	scratchSlots int
}

// New creates an LP runtime for kernels launched with the given grid and
// block dimensions on dev. It allocates the checksum store (and, for
// sequential reduction, the staging scratch) in device global memory.
func New(dev *gpusim.Device, cfg Config, grid, blk gpusim.Dim3) *LP {
	if grid.Size() <= 0 || blk.Size() <= 0 {
		panic(fmt.Sprintf("core: empty geometry grid=%v block=%v", grid, blk))
	}
	fusion := cfg.fusion()
	if fusion > 1 && cfg.Store != hashtab.GlobalArray {
		panic("core: region fusion requires the GlobalArray checksum store")
	}
	if cfg.Checksum == checksum.Adler32 {
		// §IV-B: Adler-32 is order-sensitive, so thousands of threads
		// cannot reduce it in parallel — the paper rejects it for GPUs.
		panic("core: Adler-32 is order-sensitive and cannot be reduced across GPU threads; use Parity, Modular or Dual")
	}
	regions := (grid.Size() + fusion - 1) / fusion
	lp := &LP{
		dev:     dev,
		cfg:     cfg,
		grid:    grid,
		blk:     blk,
		fusion:  fusion,
		regions: regions,
		st: hashtab.New(dev, "lp.checksums", hashtab.Config{
			Kind:        cfg.Store,
			LockMode:    cfg.LockMode,
			NumKeys:     regions,
			PerfectSlot: cfg.PerfectSlot,
			Seed:        cfg.Seed,
			MergeCount:  fusion > 1,
		}),
	}
	if cfg.Reduction == ReduceSequential {
		lp.scratchSlots = grid.Size()
		if lp.scratchSlots > 2048 {
			lp.scratchSlots = 2048
		}
		lp.scratch = dev.Alloc("lp.scratch", lp.scratchSlots*blk.Size()*16)
	}
	return lp
}

// Config returns the runtime's design-space configuration.
func (lp *LP) Config() Config { return lp.cfg }

// Store returns the checksum store (for statistics inspection).
func (lp *LP) Store() hashtab.Store { return lp.st }

// Grid and Block return the geometry the runtime was built for.
func (lp *LP) Grid() gpusim.Dim3  { return lp.grid }
func (lp *LP) Block() gpusim.Dim3 { return lp.blk }

// Regions returns the number of LP regions (grid blocks / fusion).
func (lp *LP) Regions() int { return lp.regions }

// groupSize returns the number of blocks in region reg (the tail region
// can be smaller than the fusion factor).
func (lp *LP) groupSize(reg int) int {
	lo := reg * lp.fusion
	hi := lo + lp.fusion
	if hi > lp.grid.Size() {
		hi = lp.grid.Size()
	}
	return hi - lo
}

// Fusion returns the effective fusion factor.
func (lp *LP) Fusion() int { return lp.fusion }

// TableBytes returns the checksum store footprint (Table V space
// overhead numerator).
func (lp *LP) TableBytes() int64 { return lp.st.TableBytes() }

// Reset durably clears the checksum store for a fresh run.
func (lp *LP) Reset() { lp.st.Clear() }

// SetEpoch tags subsequent commits and validations with an epoch (e.g.
// the iteration number of a long-running application that relaunches the
// same kernel). The epoch is folded into every region checksum as a
// per-block salt, so a checksum-table entry left over from a previous
// launch can never validate this launch's regions — even when both the
// stale entry and the stale data describe identical values (an all-zero
// region is the classic case). Set it before each launch and keep it for
// that launch's validation/recovery.
func (lp *LP) SetEpoch(epoch uint64) { lp.epoch = epoch }

// Epoch returns the current epoch tag.
func (lp *LP) Epoch() uint64 { return lp.epoch }

// Checkpoint flushes the whole cache, making everything stored so far
// durable. This is the periodic whole-cache flush of §IV-A that bounds
// how far back validation must look after a crash.
func (lp *LP) Checkpoint() int { return lp.dev.Mem().FlushAll() }
