package core

import (
	"math"
	"testing"
	"testing/quick"
)

func planner() CheckpointPlanner {
	return CheckpointPlanner{FlushCost: 2000, ValidateCost: 9000, MTBFCycles: 1e8}
}

func TestOptimalIntervalFormula(t *testing.T) {
	p := planner()
	want := math.Sqrt(p.FlushCost * p.MTBFCycles)
	if got := p.OptimalInterval(); math.Abs(got-want) > 1e-6 {
		t.Errorf("OptimalInterval = %v, want %v", got, want)
	}
}

func TestOptimalIntervalMinimizesOverhead(t *testing.T) {
	p := planner()
	opt := p.OptimalInterval()
	at := p.ExpectedOverhead(opt)
	for _, f := range []float64{0.25, 0.5, 2, 4} {
		if other := p.ExpectedOverhead(opt * f); other < at {
			t.Errorf("interval %v (overhead %v) beats the optimum %v (overhead %v)",
				opt*f, other, opt, at)
		}
	}
}

func TestOverheadComponents(t *testing.T) {
	p := planner()
	// Very short intervals: checkpoint tax dominates and diverges.
	if p.ExpectedOverhead(10) < 100 {
		t.Error("10-cycle intervals should be dominated by flush cost")
	}
	// Very long intervals: crash tax grows linearly.
	long := p.ExpectedOverhead(1e8)
	longer := p.ExpectedOverhead(2e8)
	if longer <= long {
		t.Error("crash tax should grow with the interval")
	}
}

func TestAvailabilityMonotoneInMTBF(t *testing.T) {
	flaky := CheckpointPlanner{FlushCost: 2000, ValidateCost: 9000, MTBFCycles: 1e6}
	stable := CheckpointPlanner{FlushCost: 2000, ValidateCost: 9000, MTBFCycles: 1e10}
	if flaky.Availability(flaky.OptimalInterval()) >= stable.Availability(stable.OptimalInterval()) {
		t.Error("more failures should mean lower best-case availability")
	}
}

func TestIntervalForAvailability(t *testing.T) {
	p := CheckpointPlanner{FlushCost: 2000, ValidateCost: 9000, MTBFCycles: 1e10}
	iv, err := p.IntervalForAvailability(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Availability(iv); got < 0.999 {
		t.Errorf("returned interval achieves %v < target", got)
	}
	// The returned interval is the small root: a much smaller one must
	// miss the target (checkpointing too often).
	if p.Availability(iv*0.01) >= 0.999 {
		t.Error("returned interval is not near-minimal")
	}
	// Unreachable target errors.
	if _, err := p.IntervalForAvailability(0.9999999); err == nil {
		t.Error("unreachable availability target accepted")
	}
	// Bad targets error.
	for _, bad := range []float64{0, 1, -1, 2} {
		if _, err := p.IntervalForAvailability(bad); err == nil {
			t.Errorf("target %v accepted", bad)
		}
	}
}

func TestPlannerValidation(t *testing.T) {
	for _, p := range []CheckpointPlanner{
		{FlushCost: 0, MTBFCycles: 1},
		{FlushCost: 1, MTBFCycles: 0},
		{FlushCost: 1, MTBFCycles: 1, ValidateCost: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("planner %+v did not panic", p)
				}
			}()
			p.ExpectedOverhead(100)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive interval did not panic")
		}
	}()
	planner().ExpectedOverhead(0)
}

// TestPropertyOptimumIsStationary: for arbitrary valid parameters, the
// closed-form optimum never loses to nearby intervals.
func TestPropertyOptimumIsStationary(t *testing.T) {
	f := func(flushRaw, mtbfRaw uint32) bool {
		p := CheckpointPlanner{
			FlushCost:    float64(flushRaw%100000) + 1,
			ValidateCost: 500,
			MTBFCycles:   float64(mtbfRaw%1000000000) + 1000,
		}
		opt := p.OptimalInterval()
		at := p.ExpectedOverhead(opt)
		return p.ExpectedOverhead(opt*1.1) >= at-1e-12 && p.ExpectedOverhead(opt*0.9) >= at-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
