package core

import (
	"fmt"
	"math"
)

// CheckpointPlanner selects the periodic whole-cache-flush interval of
// §IV-A from failure statistics: "The interval period can be selected
// based on probability of crashes and recovery time to achieve a certain
// MTBF or availability target." Costs are in simulated cycles, measured
// from the actual system (lpbench's checkpoint ablation produces them).
//
// The model is the classic checkpoint/restart analysis: with checkpoints
// every Interval cycles of useful work, each period pays FlushCost; a
// crash (exponential with the given MTBF) loses on average half a period
// of work plus the fixed recovery cost (validation sweep + re-execution
// of the damaged tail). Minimizing expected overhead yields the
// Young-style optimum Interval* = sqrt(2 * FlushCost * MTBF).
type CheckpointPlanner struct {
	// FlushCost is the cycles one checkpoint (whole-cache flush) takes.
	FlushCost float64
	// ValidateCost is the fixed post-crash validation sweep cost.
	ValidateCost float64
	// MTBFCycles is the mean time between failures in cycles.
	MTBFCycles float64
}

func (p CheckpointPlanner) check() {
	if p.FlushCost <= 0 || p.MTBFCycles <= 0 || p.ValidateCost < 0 {
		panic(fmt.Sprintf("core: invalid planner parameters %+v", p))
	}
}

// ExpectedOverhead returns the expected fraction of time lost to
// persistency bookkeeping (checkpoints) plus crash recovery, for a given
// checkpoint interval in cycles.
func (p CheckpointPlanner) ExpectedOverhead(interval float64) float64 {
	p.check()
	if interval <= 0 {
		panic("core: interval must be positive")
	}
	// Checkpointing tax: one flush per interval of useful work.
	checkpointFrac := p.FlushCost / interval
	// Crash tax: crashes arrive at rate 1/MTBF; each loses half an
	// interval of work on average and pays validation plus re-execution
	// of the lost half-interval.
	crashFrac := (interval/2 + p.ValidateCost + interval/2) / p.MTBFCycles
	return checkpointFrac + crashFrac
}

// OptimalInterval returns the overhead-minimizing checkpoint interval in
// cycles: sqrt(2 * FlushCost * MTBF) under this model (the validation
// cost is interval-independent and does not move the optimum).
func (p CheckpointPlanner) OptimalInterval() float64 {
	p.check()
	// d/dI [F/I + I/MTBF + V/MTBF] = 0  =>  I = sqrt(F * MTBF).
	// The lost work counts twice (lost progress + re-execution), so the
	// crash term is I/MTBF rather than I/(2*MTBF), giving:
	return math.Sqrt(p.FlushCost * p.MTBFCycles)
}

// Availability returns the expected fraction of time spent making
// forward progress at the given interval.
func (p CheckpointPlanner) Availability(interval float64) float64 {
	o := p.ExpectedOverhead(interval)
	return 1 / (1 + o)
}

// IntervalForAvailability returns the smallest checkpoint interval whose
// expected availability meets the target, or an error when the target is
// unreachable even at the optimum.
func (p CheckpointPlanner) IntervalForAvailability(target float64) (float64, error) {
	p.check()
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("core: availability target %v out of (0,1)", target)
	}
	opt := p.OptimalInterval()
	if p.Availability(opt) < target {
		return 0, fmt.Errorf("core: availability %.4f at the optimal interval is below the %.4f target",
			p.Availability(opt), target)
	}
	// The overhead is convex in the interval; binary-search the smaller
	// root (frequent checkpoints bound recovery time, which is usually
	// the operational preference).
	lo, hi := 1e-9, opt
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.Availability(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
