package core

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
)

// RecomputeFunc recomputes a block's checksum contributions from the
// durable contents of memory: it must issue the same Region.Update calls
// (over re-loaded output data) that the block's original execution issued
// over its stores. Workloads provide one per kernel; the directive
// compiler in internal/directive generates the equivalent code from the
// program slice of the annotated store (§VI, Listing 7).
type RecomputeFunc func(b *gpusim.Block, r *Region)

// Validate launches the check kernel (§IV-A): a grid of the original
// geometry in which each block recomputes its checksums from memory;
// the recomputed values are compared against the durably stored ones
// region by region (a region covers Fusion consecutive blocks). It
// returns the linear indices of every block belonging to a failed
// region, in ascending order, plus the combined launch timing.
func (lp *LP) Validate(recompute RecomputeFunc) ([]int, gpusim.LaunchResult) {
	if recompute == nil {
		panic("core: nil recompute function")
	}
	// Phase 1: every block recomputes its (partial) checksum.
	perBlock := make([]checksum.State, lp.grid.Size())
	res := lp.dev.Launch("lp-validate", lp.grid, lp.blk, func(b *gpusim.Block) {
		r := lp.Begin(b)
		recompute(b, r)
		perBlock[b.LinearIdx] = r.reduce()
	})
	// Combine partials per region (host-visible mirror of what warp 0 of
	// a gather kernel would compute; checksums are commutative).
	perRegion := make([]checksum.State, lp.regions)
	for i, st := range perBlock {
		perRegion[i/lp.fusion].Merge(st)
	}
	// Phase 2: look the stored checksums up and compare. Fused regions
	// additionally require every member block's contribution to have
	// persisted (the contributor count must equal the group size).
	var failedRegions []int
	lres := lp.dev.Launch("lp-validate-lookup", gpusim.D1(lp.regions), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear != 0 {
				return
			}
			reg := b.LinearIdx
			if lp.fusion > 1 {
				stored, count := lp.st.(hashtab.Merger).LookupCount(t, uint64(reg))
				if count != uint64(lp.groupSize(reg)) || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
					failedRegions = append(failedRegions, reg)
				}
				return
			}
			stored, ok := lp.st.Lookup(t, uint64(reg))
			if !ok || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
				failedRegions = append(failedRegions, reg)
			}
		})
	})
	res.Cycles += lres.Cycles

	// Expand failed regions to their member blocks.
	var failed []int
	for _, reg := range failedRegions {
		lo := reg * lp.fusion
		hi := lo + lp.fusion
		if hi > lp.grid.Size() {
			hi = lp.grid.Size()
		}
		for blk := lo; blk < hi; blk++ {
			failed = append(failed, blk)
		}
	}
	return failed, res
}

// RecoveryReport summarizes a ValidateAndRecover run.
type RecoveryReport struct {
	// Rounds is the number of validate→re-execute iterations performed.
	Rounds int
	// FailedPerRound records how many blocks failed validation each
	// round (the first entry is the post-crash damage).
	FailedPerRound []int
	// ValidateCycles and RecoverCycles are the simulated costs.
	ValidateCycles int64
	RecoverCycles  int64
}

// TotalCycles returns the full recovery cost.
func (r RecoveryReport) TotalCycles() int64 { return r.ValidateCycles + r.RecoverCycles }

// String implements fmt.Stringer.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("recovery: %d rounds, failures per round %v, %d validate + %d re-execute cycles",
		r.Rounds, r.FailedPerRound, r.ValidateCycles, r.RecoverCycles)
}

// ValidateAndRecover performs eager recovery (§II-A): validate all
// regions, re-execute the failed ones with the original kernel (LP
// regions here are idempotent at block granularity, the common case
// §IV-A identifies), flush to make the repairs durable, and repeat until
// a validation round passes clean. maxRounds bounds the loop; it returns
// an error if the system cannot be repaired within the bound.
func (lp *LP) ValidateAndRecover(kernel gpusim.KernelFunc, recompute RecomputeFunc, maxRounds int) (RecoveryReport, error) {
	if maxRounds <= 0 {
		maxRounds = 3
	}
	var rep RecoveryReport
	for round := 0; round < maxRounds; round++ {
		failed, vres := lp.Validate(recompute)
		rep.Rounds++
		rep.ValidateCycles += vres.Cycles
		rep.FailedPerRound = append(rep.FailedPerRound, len(failed))
		if len(failed) == 0 {
			return rep, nil
		}
		// Fused regions accumulate contributions, so a failed region's
		// entry must be re-initialized before its blocks re-merge.
		if lp.fusion > 1 {
			merger := lp.st.(hashtab.Merger)
			seen := map[int]bool{}
			for _, blk := range failed {
				if reg := blk / lp.fusion; !seen[reg] {
					seen[reg] = true
					merger.HostResetEntry(uint64(reg))
				}
			}
		}
		rres := lp.dev.LaunchSelected("lp-recover", lp.grid, lp.blk, kernel, failed)
		rep.RecoverCycles += rres.Cycles
		// Eager recovery guarantees forward progress by making the
		// repaired regions durable immediately.
		lp.dev.Mem().FlushAll()
	}
	failed, vres := lp.Validate(recompute)
	rep.ValidateCycles += vres.Cycles
	rep.FailedPerRound = append(rep.FailedPerRound, len(failed))
	if len(failed) != 0 {
		return rep, fmt.Errorf("core: %d regions still invalid after %d recovery rounds", len(failed), maxRounds)
	}
	return rep, nil
}
