package core

import (
	"encoding/json"
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
)

// RecomputeFunc recomputes a block's checksum contributions from the
// durable contents of memory: it must issue the same Region.Update calls
// (over re-loaded output data) that the block's original execution issued
// over its stores. Workloads provide one per kernel; the directive
// compiler in internal/directive generates the equivalent code from the
// program slice of the annotated store (§VI, Listing 7).
type RecomputeFunc func(b *gpusim.Block, r *Region)

// merger returns the checksum store's fused-region interface, or a typed
// error when the store cannot serve fused lookups (a misconfigured or
// corrupt store organization must surface as a recovery error, not a
// panic, so campaigns and production callers can react).
func (lp *LP) merger() (hashtab.Merger, error) {
	m, ok := lp.st.(hashtab.Merger)
	if !ok {
		return nil, fmt.Errorf("core: %v store cannot serve fused regions (fusion=%d): %w",
			lp.st.Kind(), lp.fusion, ErrStoreCorrupt)
	}
	return m, nil
}

// RecomputeStates launches the recompute half of the check kernel alone:
// a grid of the original geometry in which every block rebuilds its
// checksum contributions from the durable data, returned per linear
// block index. Validate builds on it; the crash-consistency checker
// (internal/persistcheck) uses it directly to predict, from its oracle
// image, exactly which regions validation must reject. Loads of durable
// data never dirty the hierarchy's write-back state the checker is
// auditing.
func (lp *LP) RecomputeStates(recompute RecomputeFunc) ([]checksum.State, gpusim.LaunchResult) {
	perBlock := make([]checksum.State, lp.grid.Size())
	res := lp.dev.Launch("lp-validate", lp.grid, lp.blk, func(b *gpusim.Block) {
		r := lp.Begin(b)
		recompute(b, r)
		perBlock[b.LinearIdx] = r.reduce()
	})
	return perBlock, res
}

// Validate launches the check kernel (§IV-A): a grid of the original
// geometry in which each block recomputes its checksums from memory;
// the recomputed values are compared against the durably stored ones
// region by region (a region covers Fusion consecutive blocks). It
// returns the linear indices of every block belonging to a failed
// region, in ascending order, plus the combined launch timing. The error
// is non-nil (and typed) when the checksum store cannot be interrogated.
func (lp *LP) Validate(recompute RecomputeFunc) ([]int, gpusim.LaunchResult, error) {
	if recompute == nil {
		return nil, gpusim.LaunchResult{}, fmt.Errorf("core: nil recompute function: %w", ErrStoreCorrupt)
	}
	var merger hashtab.Merger
	if lp.fusion > 1 {
		m, err := lp.merger()
		if err != nil {
			return nil, gpusim.LaunchResult{}, err
		}
		merger = m
	}
	// Phase 1: every block recomputes its (partial) checksum.
	perBlock, res := lp.RecomputeStates(recompute)
	// Combine partials per region (host-visible mirror of what warp 0 of
	// a gather kernel would compute; checksums are commutative).
	perRegion := make([]checksum.State, lp.regions)
	for i, st := range perBlock {
		perRegion[i/lp.fusion].Merge(st)
	}
	// Phase 2: look the stored checksums up and compare. Fused regions
	// additionally require every member block's contribution to have
	// persisted (the contributor count must equal the group size). Each
	// validating block owns exactly one region, so outcomes are written
	// to disjoint slots of failedMark — safe even if the simulator ever
	// executes blocks concurrently (a shared append would race).
	failedMark := make([]bool, lp.regions)
	lres := lp.dev.Launch("lp-validate-lookup", gpusim.D1(lp.regions), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear != 0 {
				return
			}
			reg := b.LinearIdx
			if lp.fusion > 1 {
				stored, count := merger.LookupCount(t, uint64(reg))
				if count != uint64(lp.groupSize(reg)) || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
					failedMark[reg] = true
				}
				return
			}
			stored, ok := lp.st.Lookup(t, uint64(reg))
			if !ok || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
				failedMark[reg] = true
			}
		})
	})
	res.Cycles += lres.Cycles

	// Expand failed regions to their member blocks.
	var failed []int
	for reg, bad := range failedMark {
		if !bad {
			continue
		}
		lo := reg * lp.fusion
		hi := lo + lp.fusion
		if hi > lp.grid.Size() {
			hi = lp.grid.Size()
		}
		for blk := lo; blk < hi; blk++ {
			failed = append(failed, blk)
		}
	}
	return failed, res, nil
}

// RecoveryTier identifies the escalation level hardened recovery needed
// to reach a clean validation.
type RecoveryTier int

const (
	// TierSelective re-executed only the failed LP regions (the paper's
	// recovery flow, §II-A).
	TierSelective RecoveryTier = iota
	// TierFullGrid cleared the checksum store and re-executed the whole
	// grid over the current durable data.
	TierFullGrid
	// TierCheckpoint restored a durable checkpoint image and re-executed
	// the whole grid from it.
	TierCheckpoint
)

// MarshalJSON writes the readable String form.
func (t RecoveryTier) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// String implements fmt.Stringer.
func (t RecoveryTier) String() string {
	switch t {
	case TierSelective:
		return "selective"
	case TierFullGrid:
		return "full-grid"
	case TierCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("RecoveryTier(%d)", int(t))
}

// RecoveryReport summarizes a recovery run.
type RecoveryReport struct {
	// Rounds is the number of validate→re-execute iterations performed.
	Rounds int
	// FailedPerRound records how many blocks failed validation each
	// round (the first entry is the post-crash damage).
	FailedPerRound []int
	// ValidateCycles and RecoverCycles are the simulated costs.
	ValidateCycles int64
	RecoverCycles  int64
	// BackoffCycles is simulated time spent in deterministic exponential
	// backoff between retry rounds (RecoverBlocks only; zero elsewhere).
	BackoffCycles int64
	// Tier is the highest escalation tier recovery needed (always
	// TierSelective for ValidateAndRecover).
	Tier RecoveryTier
}

// TotalCycles returns the full recovery cost.
func (r RecoveryReport) TotalCycles() int64 { return r.ValidateCycles + r.RecoverCycles }

// String implements fmt.Stringer.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("recovery: %d rounds (%v tier), failures per round %v, %d validate + %d re-execute cycles",
		r.Rounds, r.Tier, r.FailedPerRound, r.ValidateCycles, r.RecoverCycles)
}

// validateRound runs one validation and folds its cost into rep.
func (lp *LP) validateRound(recompute RecomputeFunc, rep *RecoveryReport) ([]int, error) {
	failed, vres, err := lp.Validate(recompute)
	if err != nil {
		return nil, err
	}
	rep.Rounds++
	rep.ValidateCycles += vres.Cycles
	rep.FailedPerRound = append(rep.FailedPerRound, len(failed))
	return failed, nil
}

// selectiveRepair re-executes exactly the failed blocks and flushes the
// repairs durable (eager recovery's forward-progress guarantee).
func (lp *LP) selectiveRepair(kernel gpusim.KernelFunc, failed []int, rep *RecoveryReport) error {
	// Fused regions accumulate contributions, so a failed region's
	// entry must be re-initialized before its blocks re-merge.
	if lp.fusion > 1 {
		merger, err := lp.merger()
		if err != nil {
			return err
		}
		seen := map[int]bool{}
		for _, blk := range failed {
			if reg := blk / lp.fusion; !seen[reg] {
				seen[reg] = true
				merger.HostResetEntry(uint64(reg))
			}
		}
	}
	rres := lp.dev.LaunchSelected("lp-recover", lp.grid, lp.blk, kernel, failed)
	rep.RecoverCycles += rres.Cycles
	lp.dev.Mem().FlushAll()
	return nil
}

// ValidateAndRecover performs eager recovery (§II-A): validate all
// regions, re-execute the failed ones with the original kernel (LP
// regions here are idempotent at block granularity, the common case
// §IV-A identifies), flush to make the repairs durable, and repeat until
// a validation round passes clean. maxRounds bounds the loop; the error
// wraps ErrUnrecoverable if the system cannot be repaired within the
// bound. For recovery that degrades gracefully past that bound, use
// RecoverHardened.
func (lp *LP) ValidateAndRecover(kernel gpusim.KernelFunc, recompute RecomputeFunc, maxRounds int) (RecoveryReport, error) {
	if maxRounds <= 0 {
		maxRounds = 3
	}
	var rep RecoveryReport
	clean, err := lp.selectiveRounds(kernel, recompute, maxRounds, &rep)
	if err != nil {
		return rep, err
	}
	if !clean {
		n := rep.FailedPerRound[len(rep.FailedPerRound)-1]
		return rep, fmt.Errorf("core: %d blocks still invalid after %d recovery rounds: %w",
			n, maxRounds, ErrUnrecoverable)
	}
	return rep, nil
}

// selectiveRounds runs up to maxRounds validate→selective-repair
// iterations plus a final validation, reporting whether the last
// validation came back clean.
func (lp *LP) selectiveRounds(kernel gpusim.KernelFunc, recompute RecomputeFunc, maxRounds int, rep *RecoveryReport) (bool, error) {
	for round := 0; round < maxRounds; round++ {
		failed, err := lp.validateRound(recompute, rep)
		if err != nil {
			return false, err
		}
		if len(failed) == 0 {
			return true, nil
		}
		if err := lp.selectiveRepair(kernel, failed, rep); err != nil {
			return false, err
		}
	}
	failed, err := lp.validateRound(recompute, rep)
	if err != nil {
		return false, err
	}
	return len(failed) == 0, nil
}

// RecoverOpts configures RecoverHardened.
type RecoverOpts struct {
	// MaxRounds bounds the selective-repair tier (default 3). A negative
	// value skips the selective tier entirely and escalates immediately.
	MaxRounds int
	// Checkpoint, when non-nil, enables the final escalation tier:
	// restore this durable image and re-execute the whole grid from it.
	Checkpoint *Checkpoint
}

// RecoverHardened is graceful-degradation recovery: it tries the paper's
// selective re-execution first, and when bounded rounds do not converge
// it escalates — first to a full-grid re-execution over the current
// durable data (repairs damage selective rounds cannot pin down, e.g. a
// corrupted checksum store), then to restoring the provided checkpoint
// and recomputing everything from it (repairs even corrupted inputs and
// non-idempotent kernels). The report's Tier records which escalation
// level was needed; the error wraps ErrUnrecoverable when every tier is
// exhausted.
func (lp *LP) RecoverHardened(kernel gpusim.KernelFunc, recompute RecomputeFunc, opts RecoverOpts) (RecoveryReport, error) {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 3
	}
	var rep RecoveryReport

	if maxRounds > 0 {
		clean, err := lp.selectiveRounds(kernel, recompute, maxRounds, &rep)
		if err != nil {
			return rep, err
		}
		if clean {
			return rep, nil
		}
	}

	// Tier 2: clear the checksum store and re-execute the whole grid
	// over the current durable data. Every block re-commits a fresh
	// checksum, so even an uninterpretably corrupted store is rebuilt.
	rep.Tier = TierFullGrid
	if err := lp.fullGridRepair(kernel, &rep); err != nil {
		return rep, err
	}
	failed, err := lp.validateRound(recompute, &rep)
	if err != nil {
		return rep, err
	}
	if len(failed) == 0 {
		return rep, nil
	}

	// Tier 3: roll the durable image back to the checkpoint and
	// recompute everything from it.
	if opts.Checkpoint != nil {
		rep.Tier = TierCheckpoint
		opts.Checkpoint.Restore()
		if err := lp.fullGridRepair(kernel, &rep); err != nil {
			return rep, err
		}
		failed, err = lp.validateRound(recompute, &rep)
		if err != nil {
			return rep, err
		}
		if len(failed) == 0 {
			return rep, nil
		}
	}
	return rep, fmt.Errorf("core: %d blocks invalid after %v-tier recovery: %w",
		len(failed), rep.Tier, ErrUnrecoverable)
}

// fullGridRepair durably clears the checksum store, re-executes the full
// grid, and flushes everything durable.
func (lp *LP) fullGridRepair(kernel gpusim.KernelFunc, rep *RecoveryReport) error {
	lp.st.Clear()
	rres := lp.dev.Launch("lp-recover-full", lp.grid, lp.blk, kernel)
	rep.RecoverCycles += rres.Cycles
	lp.dev.Mem().FlushAll()
	return nil
}
