package core

import (
	"encoding/binary"
	"errors"
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// shardSystem is a dense LP-protected fill over 16 blocks × 32 threads:
// out[gid] = gid*3 + 1.
func shardSystem(t *testing.T, cfg Config) (dev *gpusim.Device, lp *LP, out memsim.Region, kernel gpusim.KernelFunc, rec RecomputeFunc) {
	t.Helper()
	dev = newTestDevice()
	grid, blk := gpusim.D1(16), gpusim.D1(32)
	out = dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp = New(dev, cfg, grid, blk)
	kernel = func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(th *gpusim.Thread) {
			v := uint32(th.GlobalLinear())*3 + 1
			th.StoreU32(out, th.GlobalLinear(), v)
			r.Update(th, v)
		})
		r.Commit()
	}
	rec = func(b *gpusim.Block, r *Region) {
		b.ForAll(func(th *gpusim.Thread) {
			r.Update(th, th.LoadU32(out, th.GlobalLinear()))
		})
	}
	return dev, lp, out, kernel, rec
}

// corruptWord flips one durable word of block blk (thread 0's slot).
func corruptWord(dev *gpusim.Device, out memsim.Region, blk int, threads int) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], 0xdeadbeef)
	dev.Mem().HostWrite(out.Base+uint64(blk*threads*4), buf[:])
}

func TestValidateBlocksSubsetSemantics(t *testing.T) {
	dev, lp, out, kernel, rec := shardSystem(t, DefaultConfig())
	dev.Launch("fill", lp.grid, lp.blk, kernel)
	dev.Mem().FlushAll()

	// Clean state: any subset validates clean.
	failed, _, err := lp.ValidateBlocks(rec, []int{4, 5, 6, 7})
	if err != nil || len(failed) != 0 {
		t.Fatalf("clean subset: failed=%v err=%v", failed, err)
	}

	// Corrupt block 5's durable data: only a subset containing 5 sees it.
	corruptWord(dev, out, 5, 32)
	failed, _, err = lp.ValidateBlocks(rec, []int{4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 5 {
		t.Fatalf("failed = %v, want [5]", failed)
	}
	// Corruption outside the subset is invisible — shard isolation.
	failed, _, err = lp.ValidateBlocks(rec, []int{0, 1, 2, 3})
	if err != nil || len(failed) != 0 {
		t.Fatalf("disjoint subset saw foreign corruption: failed=%v err=%v", failed, err)
	}

	// Duplicates and unsorted input normalize.
	failed, _, err = lp.ValidateBlocks(rec, []int{7, 5, 5, 4})
	if err != nil || len(failed) != 1 || failed[0] != 5 {
		t.Fatalf("normalized subset: failed=%v err=%v", failed, err)
	}
}

func TestValidateBlocksEdgeCases(t *testing.T) {
	_, lp, _, _, rec := shardSystem(t, DefaultConfig())

	// Empty subset: trivially clean.
	failed, res, err := lp.ValidateBlocks(rec, nil)
	if err != nil || len(failed) != 0 || res.Cycles != 0 {
		t.Fatalf("empty subset: failed=%v res=%+v err=%v", failed, res, err)
	}

	// Nil recompute is a typed store-corrupt error.
	if _, _, err := lp.ValidateBlocks(nil, []int{0}); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("nil recompute: %v, want ErrStoreCorrupt", err)
	}

	// Out-of-grid blocks panic like LaunchSelected.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-grid block must panic")
			}
		}()
		lp.ValidateBlocks(rec, []int{99})
	}()
}

func TestValidateBlocksFusionAlignment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fusion = 2
	dev, lp, out, kernel, rec := shardSystem(t, cfg)
	dev.Launch("fill", lp.grid, lp.blk, kernel)
	dev.Mem().FlushAll()

	// Half a fusion group is unsound and refused with a typed error.
	if _, _, err := lp.ValidateBlocks(rec, []int{2}); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("partial fusion group: %v, want ErrStoreCorrupt", err)
	}

	// Whole groups validate; a corrupted member fails its whole group.
	corruptWord(dev, out, 3, 32)
	failed, _, err := lp.ValidateBlocks(rec, []int{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 3 {
		t.Fatalf("failed = %v, want the whole fused group [2 3]", failed)
	}
}

func TestRecoverBlocksRepairsSubset(t *testing.T) {
	dev, lp, out, kernel, rec := shardSystem(t, DefaultConfig())
	dev.Launch("fill", lp.grid, lp.blk, kernel)
	dev.Mem().FlushAll()
	corruptWord(dev, out, 5, 32)
	corruptWord(dev, out, 6, 32)

	rep, err := lp.RecoverBlocks(kernel, rec, []int{4, 5, 6, 7}, ShardRecoverOpts{})
	if err != nil {
		t.Fatalf("shard recovery failed: %v (%+v)", err, rep)
	}
	if len(rep.FailedPerRound) == 0 || rep.FailedPerRound[0] != 2 {
		t.Fatalf("first round should re-execute exactly blocks 5 and 6: %v", rep.FailedPerRound)
	}
	if rep.BackoffCycles != 0 {
		t.Fatalf("single-round recovery charged %d backoff cycles", rep.BackoffCycles)
	}
	for i := 0; i < lp.grid.Size()*lp.blk.Size(); i++ {
		if got, want := out.NVMU32(i), uint32(i)*3+1; got != want {
			t.Fatalf("out[%d] = %d after recovery, want %d", i, got, want)
		}
	}
}

// TestRecoverBlocksUnrecoverable: when re-execution cannot repair (the
// guard kernel refuses corrupted durable input), RecoverBlocks exhausts
// its rounds, charges deterministic backoff, and returns the typed error.
func TestRecoverBlocksUnrecoverable(t *testing.T) {
	dev, lp, in, out, kernel, rec := guardSystem(t)
	dev.Launch("guard", lp.grid, lp.blk, kernel)
	dev.Mem().FlushAll()

	// Poison block 9: odd durable input (kernel refuses to commit) and a
	// corrupted output word (validation keeps failing).
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], 0xdead_beef|1)
	dev.Mem().HostWrite(in.Base+uint64(9*lp.blk.Size()*4), buf[:])
	dev.Mem().HostWrite(out.Base+uint64(9*lp.blk.Size()*4), buf[:])

	rep, err := lp.RecoverBlocks(kernel, rec, []int{8, 9, 10}, ShardRecoverOpts{MaxRounds: 2, BackoffBase: 100})
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("unrepairable shard returned %v, want ErrUnrecoverable", err)
	}
	if rep.Rounds != 3 {
		t.Fatalf("MaxRounds=2 should validate 3 times (got %d)", rep.Rounds)
	}
	// Round 1 retry charges the base; the first repair round is free.
	if rep.BackoffCycles != 100 {
		t.Fatalf("backoff = %d cycles, want 100", rep.BackoffCycles)
	}
}
