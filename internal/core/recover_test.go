package core

import (
	"errors"
	"sync"
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// guardSystem builds a workload whose kernel validates its input before
// processing: in[i] must be even, out[i] = in[i]*3 + 7. A block that
// sees a corrupted (odd) input refuses to store or commit — the
// defensive-kernel pattern that makes durable input corruption
// unrepairable by re-execution alone and forces recovery to escalate.
func guardSystem(t *testing.T) (dev *gpusim.Device, lp *LP, in, out memsim.Region, kernel gpusim.KernelFunc, rec RecomputeFunc) {
	t.Helper()
	dev = newTestDevice()
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	in = dev.Alloc("in", n*4)
	out = dev.Alloc("out", n*4)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(2 * i)
	}
	in.HostWriteI32s(vals)
	out.HostZero()
	lp = New(dev, DefaultConfig(), grid, blk)
	kernel = func(b *gpusim.Block) {
		r := lp.Begin(b)
		ok := true
		b.ForAll(func(th *gpusim.Thread) {
			v := th.LoadU32(in, th.GlobalLinear())
			if v&1 != 0 {
				ok = false
				return
			}
			o := v*3 + 7
			th.StoreU32(out, th.GlobalLinear(), o)
			r.Update(th, o)
		})
		if ok {
			r.Commit()
		}
	}
	rec = func(b *gpusim.Block, r *Region) {
		b.ForAll(func(th *gpusim.Thread) {
			r.Update(th, th.LoadU32(out, th.GlobalLinear()))
		})
	}
	return dev, lp, in, out, kernel, rec
}

func checkGuardOutput(t *testing.T, out memsim.Region, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if got, want := out.PeekU32(i), uint32(2*i)*3+7; got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestRecoverHardenedSelectiveTier: an ordinary crash must be repaired
// by the paper's selective re-execution without escalating.
func TestRecoverHardenedSelectiveTier(t *testing.T) {
	dev, lp, _, out, kernel, rec := guardSystem(t)
	dev.Launch("guard", lp.grid, lp.blk, kernel)
	dev.Mem().Crash()
	rep, err := lp.RecoverHardened(kernel, rec, RecoverOpts{})
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	if rep.Tier != TierSelective {
		t.Fatalf("plain crash escalated to %v", rep.Tier)
	}
	checkGuardOutput(t, out, lp.grid.Size()*lp.blk.Size())
}

// TestRecoverHardenedFullGridTier: a negative MaxRounds skips the
// selective tier, so recovery must rebuild everything via a full-grid
// re-execution and report that tier.
func TestRecoverHardenedFullGridTier(t *testing.T) {
	dev, lp, _, out, kernel, rec := guardSystem(t)
	dev.Launch("guard", lp.grid, lp.blk, kernel)
	dev.Mem().Crash()
	rep, err := lp.RecoverHardened(kernel, rec, RecoverOpts{MaxRounds: -1})
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	if rep.Tier != TierFullGrid {
		t.Fatalf("tier = %v, want full-grid", rep.Tier)
	}
	checkGuardOutput(t, out, lp.grid.Size()*lp.blk.Size())
}

// corruptInput makes one durable input word odd (violating the guard
// kernel's invariant) straight in NVM, bypassing the cache — the media
// corruption a crash cannot explain and re-execution cannot repair.
func corruptInput(dev *gpusim.Device, in memsim.Region, idx int) {
	v := in.NVMU32(idx) | 1
	dev.Mem().HostWrite(in.Base+uint64(idx*4), []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// TestRecoverHardenedCheckpointTier: with a durable input corrupted, the
// guarded block refuses to re-execute, so neither selective rounds nor a
// full-grid rebuild can produce a matching checksum; only restoring the
// checkpointed image repairs the input and lets recovery converge.
func TestRecoverHardenedCheckpointTier(t *testing.T) {
	dev, lp, in, out, kernel, rec := guardSystem(t)
	ck := CaptureCheckpoint(dev.Mem())
	dev.Launch("guard", lp.grid, lp.blk, kernel)
	dev.Mem().Crash()
	corruptInput(dev, in, 40)

	rep, err := lp.RecoverHardened(kernel, rec, RecoverOpts{Checkpoint: ck})
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	if rep.Tier != TierCheckpoint {
		t.Fatalf("tier = %v, want checkpoint", rep.Tier)
	}
	checkGuardOutput(t, out, lp.grid.Size()*lp.blk.Size())
	if got := in.PeekU32(40); got != 80 {
		t.Fatalf("checkpoint restore left in[40] = %d, want 80", got)
	}
}

// TestRecoverHardenedUnrecoverableTypedError: the same corruption with
// no checkpoint to fall back on must surface as a typed error — never a
// panic, never a silent success.
func TestRecoverHardenedUnrecoverableTypedError(t *testing.T) {
	dev, lp, in, _, kernel, rec := guardSystem(t)
	dev.Launch("guard", lp.grid, lp.blk, kernel)
	dev.Mem().Crash()
	corruptInput(dev, in, 40)

	rep, err := lp.RecoverHardened(kernel, rec, RecoverOpts{})
	if err == nil {
		t.Fatalf("recovery claimed success over corrupted input: %v", rep)
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("error is not typed ErrUnrecoverable: %v", err)
	}
	if rep.Tier != TierFullGrid {
		t.Fatalf("tier = %v, want full-grid (the last tier tried without a checkpoint)", rep.Tier)
	}
}

// TestCheckpointRestoreRoundTrip pins checkpoint semantics: restore
// brings the durable image back bit-exactly and drops the cache, so the
// coherent view equals the checkpointed one.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dev := newTestDevice()
	r := dev.Alloc("data", 4096)
	vals := make([]int32, 1024)
	for i := range vals {
		vals[i] = int32(i * 3)
	}
	r.HostWriteI32s(vals)
	ck := CaptureCheckpoint(dev.Mem())

	dev.Launch("clobber", gpusim.D1(8), gpusim.D1(128), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			th.StoreU32(r, th.GlobalLinear(), 0xdead)
		})
	})
	dev.Mem().FlushAll()

	ck.Restore()
	for i := range vals {
		if got := r.PeekU32(i); got != uint32(vals[i]) {
			t.Fatalf("after restore, data[%d] = %d, want %d", i, got, vals[i])
		}
		if got := r.NVMU32(i); got != uint32(vals[i]) {
			t.Fatalf("after restore, durable data[%d] = %d, want %d", i, got, vals[i])
		}
	}
}

// TestConcurrentRecoveryIndependentSystems drives full
// launch→crash→validate→recover pipelines from several goroutines on
// independent simulated systems. Run under -race this is the regression
// test for the Validate phase-2 result aggregation (disjoint per-region
// marks, no shared append) and for any accidental package-level state.
func TestConcurrentRecoveryIndependentSystems(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			dev := newTestDevice()
			grid, blk := gpusim.D1(64), gpusim.D1(64)
			out := dev.Alloc("out", grid.Size()*blk.Size()*4)
			out.HostZero()
			lp := New(dev, DefaultConfig(), grid, blk)
			kernel := func(b *gpusim.Block) {
				r := lp.Begin(b)
				b.ForAll(func(th *gpusim.Thread) {
					v := uint32(th.GlobalLinear())*2654435761 + seed
					th.StoreU32(out, th.GlobalLinear(), v)
					r.Update(th, v)
				})
				r.Commit()
			}
			dev.Launch("fill", grid, blk, kernel)
			dev.Mem().Crash()
			if _, err := lp.ValidateAndRecover(kernel, func(b *gpusim.Block, r *Region) {
				b.ForAll(func(th *gpusim.Thread) {
					r.Update(th, th.LoadU32(out, th.GlobalLinear()))
				})
			}, 4); err != nil {
				errs <- err
			}
		}(uint32(g) * 1000003)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
