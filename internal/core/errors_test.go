package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestTypedErrorChains is the single table covering every typed error in
// errors.go: each must satisfy errors.Is against its own sentinel (bare,
// wrapped once, wrapped twice), errors.As where a concrete type exists,
// IsTypedRecoveryError, and must NOT match the other sentinels.
func TestTypedErrorChains(t *testing.T) {
	sentinels := []error{ErrUnrecoverable, ErrStoreCorrupt, ErrDegraded}
	degraded := &DegradedError{Coverage: 0.75, Regions: []int{3, 9}, Lines: []uint64{0x1000}}

	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"unrecoverable bare", ErrUnrecoverable, ErrUnrecoverable},
		{"unrecoverable wrapped", fmt.Errorf("round 3: %w", ErrUnrecoverable), ErrUnrecoverable},
		{"unrecoverable double-wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrUnrecoverable)), ErrUnrecoverable},
		{"store-corrupt bare", ErrStoreCorrupt, ErrStoreCorrupt},
		{"store-corrupt wrapped", fmt.Errorf("lookup: %w", ErrStoreCorrupt), ErrStoreCorrupt},
		{"degraded bare", ErrDegraded, ErrDegraded},
		{"degraded wrapped", fmt.Errorf("campaign: %w", ErrDegraded), ErrDegraded},
		{"DegradedError bare", error(degraded), ErrDegraded},
		{"DegradedError wrapped", fmt.Errorf("run: %w", degraded), ErrDegraded},
		{"DegradedError double-wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", degraded)), ErrDegraded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", tc.err, tc.sentinel)
			}
			if !IsTypedRecoveryError(tc.err) {
				t.Fatalf("IsTypedRecoveryError(%v) = false", tc.err)
			}
			// No cross-matching between distinct sentinels.
			for _, other := range sentinels {
				if other == tc.sentinel {
					continue
				}
				if errors.Is(tc.err, other) {
					t.Fatalf("errors.Is(%v, %v) = true across sentinels", tc.err, other)
				}
			}
		})
	}
}

// TestDegradedErrorAs: the concrete type is recoverable from any depth of
// wrapping, with its payload intact.
func TestDegradedErrorAs(t *testing.T) {
	orig := &DegradedError{Coverage: 0.5, Regions: []int{1, 2}, Lines: []uint64{0x40, 0x80}}
	wrapped := fmt.Errorf("recovery: %w", fmt.Errorf("inner: %w", orig))

	var de *DegradedError
	if !errors.As(wrapped, &de) {
		t.Fatal("errors.As failed to recover *DegradedError")
	}
	if de != orig {
		t.Fatal("errors.As returned a different *DegradedError")
	}
	if de.Coverage != 0.5 || len(de.Regions) != 2 || len(de.Lines) != 2 {
		t.Fatalf("payload lost through the chain: %+v", de)
	}
	// Unwrap lands on the sentinel directly, and the explicit Is method
	// matches the sentinel without traversing Unwrap.
	if !errors.Is(errors.Unwrap(orig), ErrDegraded) {
		t.Fatal("DegradedError.Unwrap must yield ErrDegraded")
	}
	if !orig.Is(ErrDegraded) || orig.Is(ErrUnrecoverable) {
		t.Fatal("DegradedError.Is must match exactly the ErrDegraded sentinel")
	}
}

// TestIsTypedRecoveryErrorNegatives: ordinary errors and nil are not
// typed recovery outcomes.
func TestIsTypedRecoveryErrorNegatives(t *testing.T) {
	if IsTypedRecoveryError(nil) {
		t.Fatal("nil is not a typed recovery error")
	}
	if IsTypedRecoveryError(errors.New("disk on fire")) {
		t.Fatal("ad-hoc errors are not typed recovery errors")
	}
	if IsTypedRecoveryError(fmt.Errorf("wrapping nothing special: %w", errors.New("x"))) {
		t.Fatal("wrapped ad-hoc errors are not typed recovery errors")
	}
}
