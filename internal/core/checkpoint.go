package core

import "gpulp/internal/memsim"

// Checkpoint is a durable restore point: a snapshot of the whole NVM
// image taken at a moment when everything logically written so far had
// been flushed. It is the last escalation tier of hardened recovery
// (RecoverHardened): when selective and full-grid re-execution cannot
// repair the durable state — corrupted inputs, or a kernel whose
// re-execution is not idempotent — restoring the checkpoint and
// re-running the whole launch always can.
type Checkpoint struct {
	mem *memsim.Memory
	img []byte
}

// CaptureCheckpoint flushes the cache (making all pending stores durable)
// and snapshots the durable image. Capture it after input setup — or at
// any LP.Checkpoint boundary — to bound how far back the last recovery
// tier rolls the computation.
func CaptureCheckpoint(mem *memsim.Memory) *Checkpoint {
	mem.FlushAll()
	return &Checkpoint{mem: mem, img: mem.SnapshotNVM()}
}

// Restore rewrites the durable image from the snapshot and discards all
// cached state, as a post-crash checkpoint restore would.
func (c *Checkpoint) Restore() { c.mem.RestoreNVM(c.img) }

// Bytes returns the snapshot footprint.
func (c *Checkpoint) Bytes() int { return len(c.img) }
