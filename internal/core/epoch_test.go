package core

import (
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// TestEpochSaltDetectsStaleZeroRegions pins the protocol hole epoch
// salting closes: an iterative application relaunches a kernel that
// reuses the checksum table; after a crash, a region whose data reverted
// to all-zeros could falsely validate against a previous launch's
// checksum entry that also described all-zeros. With per-epoch salts the
// stale entry can never match the current epoch's recomputation.
func TestEpochSaltDetectsStaleZeroRegions(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(8), gpusim.D1(32)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)

	zeroKernel := func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(th *gpusim.Thread) {
			th.StoreU32(out, th.GlobalLinear(), 0) // epoch 0 writes zeros
			r.Update(th, 0)
		})
		r.Commit()
	}
	recompute := func(b *gpusim.Block, r *Region) {
		b.ForAll(func(th *gpusim.Thread) {
			r.Update(th, th.LoadU32(out, th.GlobalLinear()))
		})
	}

	// Epoch 0: write zeros, persist everything (entry = checksum of
	// zeros, salted with epoch 0).
	lp.SetEpoch(0)
	dev.Launch("epoch0", grid, blk, zeroKernel)
	dev.Mem().FlushAll()

	// Epoch 1: overwrite with nonzero values, but crash before anything
	// persists — durable data reverts to zeros, durable entries to the
	// epoch-0 checksums of zeros.
	lp.SetEpoch(1)
	dev.Launch("epoch1", grid, blk, func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(th *gpusim.Thread) {
			v := uint32(th.GlobalLinear()) + 1
			th.StoreU32(out, th.GlobalLinear(), v)
			r.Update(th, v)
		})
		r.Commit()
	})
	dev.Mem().Crash()

	failed, _, _ := lp.Validate(recompute)
	if len(failed) != grid.Size() {
		t.Fatalf("stale zero-regions validated: %d/%d failed, want all (epoch salt missing?)",
			len(failed), grid.Size())
	}
}

// TestEpochConsistencyWithinLaunch: commits and validations under the
// same epoch agree (the salt must be deterministic).
func TestEpochConsistencyWithinLaunch(t *testing.T) {
	dev := newTestDevice()
	grid, blk := gpusim.D1(16), gpusim.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	lp.SetEpoch(42)
	if lp.Epoch() != 42 {
		t.Fatalf("Epoch() = %d", lp.Epoch())
	}
	dev.Launch("fill", grid, blk, fillKernel(out, lp))
	failed, _, _ := lp.Validate(fillRecompute(out))
	if len(failed) != 0 {
		t.Fatalf("same-epoch validation failed %d regions", len(failed))
	}
	// A different epoch must reject everything.
	lp.SetEpoch(43)
	failed, _, _ = lp.Validate(fillRecompute(out))
	if len(failed) != grid.Size() {
		t.Fatalf("cross-epoch validation passed %d regions", grid.Size()-len(failed))
	}
}

// TestIterativeRecoveryAcrossEpochs is the end-to-end Jacobi-style flow:
// iterate with per-iteration epochs and boundary checkpoints, crash
// mid-iteration, recover only the in-flight iteration, resume, and match
// the crash-free reference exactly.
func TestIterativeRecoveryAcrossEpochs(t *testing.T) {
	const n, tile, iters, crashAt = 64, 8, 6, 4
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 16 << 10
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 8
	dev := gpusim.MustNew(cfg, memsim.MustNew(memCfg))
	bufs := [2]memsim.Region{dev.Alloc("a", n*n*4), dev.Alloc("b", n*n*4)}
	init := make([]float32, n*n)
	for y := 0; y < n; y++ {
		init[y*n] = 100
	}
	bufs[0].HostWriteF32s(init)
	bufs[1].HostWriteF32s(init)
	grid, blk := gpusim.D2(n/tile, n/tile), gpusim.D2(tile, tile)
	lp := New(dev, DefaultConfig(), grid, blk)

	sweep := func(src, dst memsim.Region) gpusim.KernelFunc {
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(th *gpusim.Thread) {
				x := b.Idx.X*tile + th.Idx.X
				y := b.Idx.Y*tile + th.Idx.Y
				var v float32
				if x == 0 || y == 0 || x == n-1 || y == n-1 {
					v = th.LoadF32(src, y*n+x)
				} else {
					v = 0.25 * (th.LoadF32(src, y*n+x-1) + th.LoadF32(src, y*n+x+1) +
						th.LoadF32(src, (y-1)*n+x) + th.LoadF32(src, (y+1)*n+x))
				}
				th.StoreF32(dst, y*n+x, v)
				r.UpdateF32(th, v)
			})
			r.Commit()
		}
	}
	recomputeOf := func(dst memsim.Region) RecomputeFunc {
		return func(b *gpusim.Block, r *Region) {
			b.ForAll(func(th *gpusim.Thread) {
				x := b.Idx.X*tile + th.Idx.X
				y := b.Idx.Y*tile + th.Idx.Y
				r.UpdateF32(th, th.LoadF32(dst, y*n+x))
			})
		}
	}

	// Host reference.
	ga := append([]float32(nil), init...)
	gb := append([]float32(nil), init...)
	for it := 0; it < iters; it++ {
		src, dst := ga, gb
		if it%2 == 1 {
			src, dst = gb, ga
		}
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				dst[y*n+x] = 0.25 * (src[y*n+x-1] + src[y*n+x+1] + src[(y-1)*n+x] + src[(y+1)*n+x])
			}
		}
		for y := 0; y < n; y++ {
			dst[y*n] = src[y*n]
			dst[y*n+n-1] = src[y*n+n-1]
		}
		for x := 0; x < n; x++ {
			dst[x] = src[x]
			dst[(n-1)*n+x] = src[(n-1)*n+x]
		}
	}
	golden := ga
	if iters%2 == 1 {
		golden = gb
	}

	for it := 0; it < crashAt; it++ {
		lp.SetEpoch(uint64(it))
		dev.Launch("sweep", grid, blk, sweep(bufs[it%2], bufs[(it+1)%2]))
		if it < crashAt-1 {
			lp.Checkpoint()
		}
	}
	dev.Mem().Crash()
	if _, err := lp.ValidateAndRecover(
		sweep(bufs[(crashAt-1)%2], bufs[crashAt%2]),
		recomputeOf(bufs[crashAt%2]), 4); err != nil {
		t.Fatal(err)
	}
	for it := crashAt; it < iters; it++ {
		lp.SetEpoch(uint64(it))
		dev.Launch("sweep", grid, blk, sweep(bufs[it%2], bufs[(it+1)%2]))
		lp.Checkpoint()
	}
	final := bufs[iters%2].PeekF32s(n * n)
	for i := range golden {
		if final[i] != golden[i] {
			t.Fatalf("field[%d] = %v after crash/recovery/resume, want %v", i, final[i], golden[i])
		}
	}
}
