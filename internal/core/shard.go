package core

import (
	"fmt"
	"sort"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
)

// Shard recovery: validation and re-execution restricted to a subset of
// the grid's blocks. A multi-device cluster shards one logical grid
// across devices; when a device is lost mid-launch, a survivor imports
// the dead device's durable bytes (data slice + checksum table) and
// repairs only the in-flight shard's blocks — the cross-device selective
// re-execution the cluster failover protocol is built on. The full-grid
// Validate/ValidateAndRecover remain the single-device entry points.

// normalizeBlocks sorts and dedupes a block subset, panicking (like
// LaunchSelected) on indices outside the grid.
func (lp *LP) normalizeBlocks(blocks []int) []int {
	sel := make([]int, 0, len(blocks))
	sel = append(sel, blocks...)
	sort.Ints(sel)
	out := sel[:0]
	for i, b := range sel {
		if b < 0 || b >= lp.grid.Size() {
			panic(fmt.Sprintf("core: shard block %d out of grid %v", b, lp.grid))
		}
		if i > 0 && sel[i-1] == b {
			continue
		}
		out = append(out, b)
	}
	return out
}

// shardRegions returns the ascending region indices covered by the
// (sorted, deduped) block subset, and a typed error when fusion groups
// are only partially covered: a fused region's checksum is one merged
// entry, so validating or re-executing a strict subset of its member
// blocks cannot be made sound.
func (lp *LP) shardRegions(sel []int) ([]int, error) {
	var regs []int
	count := map[int]int{}
	for _, b := range sel {
		reg := b / lp.fusion
		if count[reg] == 0 {
			regs = append(regs, reg)
		}
		count[reg]++
	}
	if lp.fusion > 1 {
		for _, reg := range regs {
			if count[reg] != lp.groupSize(reg) {
				return nil, fmt.Errorf("core: shard covers %d of %d blocks of fused region %d: %w",
					count[reg], lp.groupSize(reg), reg, ErrStoreCorrupt)
			}
		}
	}
	return regs, nil
}

// ValidateBlocks is Validate restricted to a subset of the grid's linear
// block indices: only those blocks recompute their checksums, and only
// their regions are looked up and compared. It returns the member blocks
// of every failed region in ascending order. With region fusion, the
// subset must cover whole fusion groups. An interrupted or
// watchdog-aborted validation launch surfaces as a typed error wrapping
// ErrUnrecoverable — the caller (a cluster failover path) must treat the
// validating device as failed too.
func (lp *LP) ValidateBlocks(recompute RecomputeFunc, blocks []int) ([]int, gpusim.LaunchResult, error) {
	if recompute == nil {
		return nil, gpusim.LaunchResult{}, fmt.Errorf("core: nil recompute function: %w", ErrStoreCorrupt)
	}
	sel := lp.normalizeBlocks(blocks)
	if len(sel) == 0 {
		return nil, gpusim.LaunchResult{}, nil
	}
	regs, err := lp.shardRegions(sel)
	if err != nil {
		return nil, gpusim.LaunchResult{}, err
	}
	var merger hashtab.Merger
	if lp.fusion > 1 {
		m, err := lp.merger()
		if err != nil {
			return nil, gpusim.LaunchResult{}, err
		}
		merger = m
	}

	// Phase 1: the selected blocks recompute their (partial) checksums.
	perBlock := make([]checksum.State, lp.grid.Size())
	res := lp.dev.LaunchSelected("lp-shard-validate", lp.grid, lp.blk, func(b *gpusim.Block) {
		r := lp.Begin(b)
		recompute(b, r)
		perBlock[b.LinearIdx] = r.reduce()
	}, sel)
	if res.Interrupted {
		return nil, res, fmt.Errorf("core: shard validation launch aborted (%d/%d blocks): %w",
			res.Blocks, len(sel), ErrUnrecoverable)
	}
	perRegion := make([]checksum.State, lp.regions)
	for _, b := range sel {
		perRegion[b/lp.fusion].Merge(perBlock[b])
	}

	// Phase 2: look up and compare only the covered regions. The lookup
	// grid assigns one block per region, so selecting region indices runs
	// exactly the covered regions' comparisons — the same kernel body as
	// the full-grid Validate.
	failedMark := make([]bool, lp.regions)
	lres := lp.dev.LaunchSelected("lp-shard-validate-lookup", gpusim.D1(lp.regions), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear != 0 {
				return
			}
			reg := b.LinearIdx
			if lp.fusion > 1 {
				stored, count := merger.LookupCount(t, uint64(reg))
				if count != uint64(lp.groupSize(reg)) || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
					failedMark[reg] = true
				}
				return
			}
			stored, ok := lp.st.Lookup(t, uint64(reg))
			if !ok || !stored.Matches(perRegion[reg], lp.cfg.Checksum) {
				failedMark[reg] = true
			}
		})
	}, regs)
	res.Cycles += lres.Cycles
	if lres.Interrupted {
		return nil, res, fmt.Errorf("core: shard lookup launch aborted: %w", ErrUnrecoverable)
	}

	var failed []int
	for _, reg := range regs {
		if !failedMark[reg] {
			continue
		}
		lo := reg * lp.fusion
		hi := lo + lp.fusion
		if hi > lp.grid.Size() {
			hi = lp.grid.Size()
		}
		for blk := lo; blk < hi; blk++ {
			failed = append(failed, blk)
		}
	}
	return failed, res, nil
}

// ShardRecoverOpts configures RecoverBlocks.
type ShardRecoverOpts struct {
	// MaxRounds bounds the validate→re-execute loop (default 3).
	MaxRounds int
	// BackoffBase, when positive, charges BackoffBase << (round-1)
	// simulated cycles of deterministic exponential backoff before each
	// retry round (the first repair round is free). The cost accumulates
	// in RecoveryReport.BackoffCycles.
	BackoffBase int64
}

// RecoverBlocks is selective recovery restricted to a block subset: it
// validates the subset, re-executes the failed blocks with the original
// kernel, flushes the repairs durable, and repeats — with deterministic
// exponential backoff between rounds — until the subset validates clean
// or MaxRounds is exhausted (a typed error wrapping ErrUnrecoverable).
// Any launch aborted mid-recovery (watchdog or external RequestAbort)
// also surfaces as a typed ErrUnrecoverable error, so a cluster failover
// path can fail over again to the next surviving device.
func (lp *LP) RecoverBlocks(kernel gpusim.KernelFunc, recompute RecomputeFunc, blocks []int, opts ShardRecoverOpts) (RecoveryReport, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 3
	}
	var rep RecoveryReport
	sel := lp.normalizeBlocks(blocks)
	for round := 0; round < maxRounds; round++ {
		failed, vres, err := lp.ValidateBlocks(recompute, sel)
		rep.Rounds++
		rep.ValidateCycles += vres.Cycles
		if err != nil {
			return rep, err
		}
		rep.FailedPerRound = append(rep.FailedPerRound, len(failed))
		if len(failed) == 0 {
			return rep, nil
		}
		if round > 0 && opts.BackoffBase > 0 {
			rep.BackoffCycles += opts.BackoffBase << (round - 1)
		}
		if err := lp.repairBlocks(kernel, failed, &rep); err != nil {
			return rep, err
		}
	}
	failed, vres, err := lp.ValidateBlocks(recompute, sel)
	rep.Rounds++
	rep.ValidateCycles += vres.Cycles
	if err != nil {
		return rep, err
	}
	rep.FailedPerRound = append(rep.FailedPerRound, len(failed))
	if len(failed) > 0 {
		return rep, fmt.Errorf("core: %d shard blocks still invalid after %d recovery rounds: %w",
			len(failed), maxRounds, ErrUnrecoverable)
	}
	return rep, nil
}

// repairBlocks re-executes exactly the failed blocks and flushes the
// repairs durable, surfacing an aborted repair launch as a typed error.
func (lp *LP) repairBlocks(kernel gpusim.KernelFunc, failed []int, rep *RecoveryReport) error {
	if lp.fusion > 1 {
		merger, err := lp.merger()
		if err != nil {
			return err
		}
		seen := map[int]bool{}
		for _, blk := range failed {
			if reg := blk / lp.fusion; !seen[reg] {
				seen[reg] = true
				merger.HostResetEntry(uint64(reg))
			}
		}
	}
	rres := lp.dev.LaunchSelected("lp-shard-recover", lp.grid, lp.blk, kernel, failed)
	rep.RecoverCycles += rres.Cycles
	if rres.Interrupted {
		return fmt.Errorf("core: shard repair launch aborted (%d/%d blocks): %w",
			rres.Blocks, len(failed), ErrUnrecoverable)
	}
	lp.dev.Mem().FlushAll()
	return nil
}
