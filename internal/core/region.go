package core

import (
	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/memsim"
)

// Region is the per-thread-block LP context. Kernel code obtains one from
// LP.Begin, folds every persistent store into it with Update (the analog
// of UpdateCheckSum in Listing 1 / the lpcuda_checksum directive), and
// finishes with Commit, which reduces the per-thread checksums and
// inserts the block checksum into the checksum store.
//
// A nil *Region is valid and inert, so the same kernel body serves as the
// no-LP baseline when the runtime is absent.
type Region struct {
	lp  *LP
	b   *gpusim.Block
	key uint64
	mod []uint64
	par []uint64
}

// Begin opens the LP region for block b. Safe to call on a nil runtime
// (returns a nil, inert region) — that is how baseline runs reuse LP
// kernels.
func (lp *LP) Begin(b *gpusim.Block) *Region {
	if lp == nil {
		return nil
	}
	if b.GridDim != lp.grid || b.BlockDim != lp.blk {
		panic("core: block geometry does not match the LP runtime's geometry")
	}
	// Accumulators are allocated per region, not shared on the runtime:
	// with Config.Workers > 1 several blocks fold checksums concurrently.
	nt := lp.blk.Size()
	return &Region{lp: lp, b: b, key: uint64(b.LinearIdx / lp.fusion), mod: make([]uint64, nt), par: make([]uint64, nt)}
}

// Update folds one stored 32-bit value into the calling thread's
// checksum accumulators, charging the configured checksum cost.
func (r *Region) Update(t *gpusim.Thread, bits uint32) {
	if r == nil {
		return
	}
	t.Op(r.lp.cfg.Checksum.UpdateCost())
	switch r.lp.cfg.Checksum {
	case checksum.Parity:
		r.par[t.Linear] ^= uint64(bits)
	case checksum.Modular:
		r.mod[t.Linear] += uint64(bits)
	default:
		r.mod[t.Linear] += uint64(bits)
		r.par[t.Linear] ^= uint64(bits)
	}
}

// UpdateF32 folds a float32 store via the Fig. 2 conversion.
func (r *Region) UpdateF32(t *gpusim.Thread, v float32) {
	if r == nil {
		return
	}
	r.Update(t, checksum.FloatBits(v))
}

// Commit reduces the block's per-thread checksums and inserts the result
// into the checksum store (thread 0 performs the insertion, fused into
// the reduction's final phase). Under region fusion the block's partial
// checksum is merged into the group's shared entry instead. No-op on a
// nil region.
func (r *Region) Commit() {
	if r == nil {
		return
	}
	if r.lp.fusion > 1 {
		merger := r.lp.st.(hashtab.Merger)
		r.reduceAndThen(func(t *gpusim.Thread, total checksum.State) {
			merger.MergeInsert(t, r.key, total)
		})
		return
	}
	r.reduceAndThen(func(t *gpusim.Thread, total checksum.State) {
		r.lp.st.Insert(t, r.key, total)
	})
}

// vectors is the number of checksum register vectors being reduced.
func (r *Region) vectors() int {
	if r.lp.cfg.Checksum == checksum.Dual {
		return 2
	}
	return 1
}

// blockTotal folds the per-thread accumulators host-side; the reduction
// phases charge the equivalent device cost. The block's epoch salt (see
// LP.SetEpoch) is folded in last, so entries written under a different
// epoch can never validate this one.
func (r *Region) blockTotal() checksum.State {
	var total checksum.State
	for i := 0; i < r.b.BlockDim.Size(); i++ {
		total.Mod += r.mod[i]
		total.Par ^= r.par[i]
	}
	salt := checksum.Mix64(r.lp.epoch, uint64(r.b.LinearIdx))
	total.Mod += salt
	total.Par ^= salt
	return total
}

// reduce combines per-thread accumulators into the block checksum with
// the configured strategy, returning it without inserting (used by
// validation).
func (r *Region) reduce() checksum.State {
	return r.reduceAndThen(nil)
}

// reduceAndThen reduces, then runs the optional continuation on thread 0
// within the final phase (fusing insertion with the reduction so tiny
// blocks do not pay an extra barrier).
func (r *Region) reduceAndThen(then func(t *gpusim.Thread, total checksum.State)) checksum.State {
	if r.lp.cfg.Reduction == ReduceSequential {
		return r.reduceSequential(then)
	}
	return r.reduceShuffle(then)
}

// reduceShuffle is the cost model of Listings 3–4 (see gpusim.Warp for
// the faithful lane-level mechanics): every thread participates in
// log2(warpSize) shuffle-down steps per checksum vector; lane 0 of each
// warp stages its partial in shared memory; after a barrier, warp 0
// reduces the staged partials; thread 0 then runs the continuation.
func (r *Region) reduceShuffle(then func(t *gpusim.Thread, total checksum.State)) checksum.State {
	b := r.b
	ws := b.Device().Config().WarpSize
	nw := b.NumWarps()
	vecs := r.vectors()
	steps := 0
	for s := ws / 2; s > 0; s /= 2 {
		steps++
	}
	total := r.blockTotal()

	if nw > 1 {
		b.Barrier() // staging barrier between warp partials and final reduce
	}
	b.ForAll(func(t *gpusim.Thread) {
		t.Op(2 * steps * vecs) // shuffle + combine per step per vector
		if t.Lane == 0 {
			t.Op(vecs) // write warp partial to shared memory
		}
		if t.Linear == 0 {
			if nw > 1 {
				t.Op((2*steps + 1) * vecs) // warp 0's final reduce over staged partials
			}
			if then != nil {
				then(t, total)
			}
		}
	})
	return total
}

// reduceSequential stages every thread's accumulators through global
// memory, then thread 0 folds them one by one — O(N) loads and a long
// divergent tail, the cost §IV-D.5 measures for the no-shuffle variant.
func (r *Region) reduceSequential(then func(t *gpusim.Thread, total checksum.State)) checksum.State {
	b := r.b
	lp := r.lp
	nt := b.BlockDim.Size()
	vecs := r.vectors()
	base := (b.LinearIdx % lp.scratchSlots) * nt * 2
	total := r.blockTotal()

	b.ForAll(func(t *gpusim.Thread) {
		t.StoreU64K(memsim.AccessChecksum, lp.scratch, base+t.Linear*2, r.mod[t.Linear])
		if vecs == 2 {
			t.StoreU64K(memsim.AccessChecksum, lp.scratch, base+t.Linear*2+1, r.par[t.Linear])
		}
	})
	b.ForAll(func(t *gpusim.Thread) {
		if t.Linear != 0 {
			return
		}
		for i := 0; i < nt; i++ {
			_ = t.LoadU64K(memsim.AccessChecksum, lp.scratch, base+i*2)
			if vecs == 2 {
				_ = t.LoadU64K(memsim.AccessChecksum, lp.scratch, base+i*2+1)
			}
			t.Op(vecs)
		}
		if then != nil {
			then(t, total)
		}
	})
	return total
}
