package core

import (
	"errors"
	"testing"

	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// newFaultyDevice builds the test device over a memory with the seeded
// fault process armed (rates may be zero) and the watchdog set.
func newFaultyDevice(fault memsim.FaultConfig, watchdogSteps int64) *gpusim.Device {
	mcfg := memsim.Config{
		LineSize: 128, CacheBytes: 256 << 10, Ways: 8,
		NVMReadNS: 160, NVMWriteNS: 480, NVMBandwidthGBs: 326.4,
		Fault: fault,
	}
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 4
	cfg.WatchdogSteps = watchdogSteps
	return gpusim.MustNew(cfg, memsim.MustNew(mcfg))
}

// lockFillKernel is fillKernel behind a per-block spin lock (one uint64
// lock word per block): the acquisition loop of §IV-D reduced to atomics,
// so a stuck-at fault pinning a lock word turns the block into a livelock
// only the watchdog can break.
func lockFillKernel(locks, out memsim.Region, lp *LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear == 0 {
				for t.AtomicCASU64(locks, b.LinearIdx, 0, 1) != 0 {
					t.Op(1)
				}
			}
		})
		b.ForAll(func(t *gpusim.Thread) {
			gid := t.GlobalLinear()
			v := uint32(gid)*2654435761 + 12345
			t.StoreU32(out, gid, v)
			r.Update(t, v)
		})
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear == 0 {
				t.AtomicExchU64(locks, b.LinearIdx, 0)
			}
		})
		r.Commit()
	}
}

// TestSelfHealStuckLockWatchdogQuarantine is the headline acceptance
// scenario: a stuck-at fault pins one block's lock word, the launch is
// caught by the watchdog as a typed ErrWatchdog (not a hang), and the
// retrying recovery quarantines the livelocked region and completes in
// degraded mode with coverage < 1.0 while every surviving block's output
// is fully recovered.
func TestSelfHealStuckLockWatchdogQuarantine(t *testing.T) {
	dev := newFaultyDevice(memsim.FaultConfig{}, 50_000)
	grid, blk := gpusim.D1(32), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	locks := dev.Alloc("locks", grid.Size()*8)
	out := dev.Alloc("out", n*4)
	locks.HostZero()
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := lockFillKernel(locks, out, lp)

	// Pin bit 0 of block 9's lock word to 1: durably "held" forever.
	const culprit = 9
	dev.Mem().PlantStuckAt(locks.Base+culprit*8, 0, 1)

	res := dev.Launch("lockfill", grid, blk, kernel)
	if res.Watchdog == nil || !errors.Is(res.Watchdog, gpusim.ErrWatchdog) {
		t.Fatalf("stuck lock not caught by watchdog: %+v", res)
	}
	if res.Watchdog.Block != culprit {
		t.Fatalf("watchdog blamed block %d, want %d", res.Watchdog.Block, culprit)
	}

	rep, err := lp.SelfHeal(kernel, fillRecompute(out), HealOpts{MaxAttempts: 5})
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("self-heal outcome = %v (%v), want DegradedError", err, rep)
	}
	if !errors.Is(err, ErrDegraded) || !IsTypedRecoveryError(err) {
		t.Fatalf("degraded outcome not typed: %v", err)
	}
	if deg.Coverage >= 1 || deg.Coverage <= 0 {
		t.Fatalf("coverage = %v, want in (0,1)", deg.Coverage)
	}
	if len(deg.Regions) != 1 || deg.Regions[0] != culprit {
		t.Fatalf("quarantined regions %v, want [%d]", deg.Regions, culprit)
	}
	if rep.WatchdogAborts == 0 {
		t.Fatalf("report counts no watchdog aborts: %v", rep)
	}
	if rep.Coverage != deg.Coverage {
		t.Fatalf("report coverage %v != error coverage %v", rep.Coverage, deg.Coverage)
	}
	// Every surviving block's output is durably recovered.
	img := dev.Mem().NVMImage()
	for gid := 0; gid < n; gid++ {
		if gid/blk.Size() == culprit {
			continue
		}
		want := uint32(gid)*2654435761 + 12345
		if got := memsim.ImageU32(img, out.Base+uint64(gid*4)); got != want {
			t.Fatalf("surviving out[%d] = %#x, want %#x", gid, got, want)
		}
	}
}

// TestSelfHealStuckDataQuarantine: a stuck-at cell under one block's
// output data re-corrupts every rewrite. After a repair the cache holds
// the clean rewrite, masking the damage from validation — but the scrub
// keeps reporting the NVM line uncorrectable, and after QuarantineAfter
// consecutive sightings the workload's RegionOf mapping condemns the
// region. No watchdog involved.
func TestSelfHealStuckDataQuarantine(t *testing.T) {
	dev := newFaultyDevice(memsim.FaultConfig{}, 0)
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := fillKernel(out, lp)

	dev.Launch("fill", grid, blk, kernel)
	lp.Checkpoint()

	// Pin one bit of block 3's first output word to the complement of its
	// durable value: permanently uncorrectable, immune to re-execution.
	const culprit = 3
	addr := out.Base + uint64(culprit*blk.Size()*4)
	cur := memsim.ImageU32(dev.Mem().NVMImage(), addr)
	dev.Mem().PlantStuckAt(addr, 0, uint8(^cur&1))

	dev.Mem().Crash()
	regionOf := func(line uint64) int {
		if line < out.Base || line >= out.Base+uint64(n)*4 {
			return -1
		}
		return int(line-out.Base) / (blk.Size() * 4)
	}
	rep, err := lp.SelfHeal(kernel, fillRecompute(out), HealOpts{RegionOf: regionOf})
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("self-heal outcome = %v (%v), want DegradedError", err, rep)
	}
	if len(deg.Regions) != 1 || deg.Regions[0] != culprit {
		t.Fatalf("quarantined regions %v, want [%d]", deg.Regions, culprit)
	}
	if len(deg.Lines) == 0 || rep.QuarantinedBytes == 0 {
		t.Fatalf("degraded result carries no uncorrectable lines: %v / %v", deg.Lines, rep)
	}
	if rep.WatchdogAborts != 0 {
		t.Fatalf("unexpected watchdog aborts: %v", rep)
	}
}

// TestSelfHealTransientFaultsHealClean: with only transient media errors
// in play, the per-attempt scrub heals everything and self-heal converges
// to a fully clean (non-degraded) completion.
func TestSelfHealTransientFaultsHealClean(t *testing.T) {
	dev := newFaultyDevice(memsim.FaultConfig{
		Enabled: true, Seed: 99, TransientPerWrite: 0.05,
	}, 0)
	grid, blk := gpusim.D1(64), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := fillKernel(out, lp)

	dev.Launch("fill", grid, blk, kernel)
	dev.Mem().Crash()

	rep, err := lp.SelfHeal(kernel, fillRecompute(out), HealOpts{MaxAttempts: 6})
	if err != nil {
		t.Fatalf("self-heal failed under transient-only faults: %v (%v)", err, rep)
	}
	if rep.Coverage != 1 || len(rep.QuarantinedRegions) != 0 {
		t.Fatalf("transient-only run degraded: %v", rep)
	}
	if rep.ScrubHealed == 0 {
		t.Fatalf("scrubs healed nothing — fault process never fired: %v", rep)
	}
	// The durable image must now be fully valid *and* scrub-clean.
	img := dev.Mem().NVMImage()
	for gid := 0; gid < n; gid++ {
		want := uint32(gid)*2654435761 + 12345
		if got := memsim.ImageU32(img, out.Base+uint64(gid*4)); got != want {
			t.Fatalf("out[%d] = %#x after heal, want %#x", gid, got, want)
		}
	}
}

// TestSelfHealBackoffDeterministic: the simulated backoff is a pure
// function of the attempt count — exponential from BackoffBase.
func TestSelfHealBackoffDeterministic(t *testing.T) {
	dev := newFaultyDevice(memsim.FaultConfig{}, 0)
	grid, blk := gpusim.D1(16), gpusim.D1(32)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()
	lp := New(dev, DefaultConfig(), grid, blk)
	kernel := fillKernel(out, lp)
	dev.Launch("fill", grid, blk, kernel)
	dev.Mem().Crash()

	rep, err := lp.SelfHeal(kernel, fillRecompute(out), HealOpts{BackoffBase: 1000})
	if err != nil {
		t.Fatalf("self-heal failed: %v", err)
	}
	var want int64
	// Backoff is charged after every attempt that did not validate clean.
	for i := 0; i < rep.Attempts-1; i++ {
		want += 1000 << i
	}
	if rep.BackoffCycles != want {
		t.Fatalf("backoff = %d cycles over %d attempts, want %d", rep.BackoffCycles, rep.Attempts, want)
	}
}
