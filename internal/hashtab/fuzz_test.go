package hashtab

import "testing"

// FuzzKeyPacking checks the packed-slot encoding invariants every store
// relies on: packing round-trips, never produces the empty sentinel, and
// unpacking the empty word reports absence.
func FuzzKeyPacking(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(^uint64(0) - 1)
	f.Fuzz(func(t *testing.T, key uint64) {
		if key == ^uint64(0) {
			// Outside the documented key space [0, 2^64-1).
			return
		}
		packed := PackKey(key)
		if packed == 0 {
			t.Fatalf("PackKey(%#x) produced the empty sentinel", key)
		}
		got, ok := UnpackKey(packed)
		if !ok || got != key {
			t.Fatalf("UnpackKey(PackKey(%#x)) = %#x, %v", key, got, ok)
		}
		if _, ok := UnpackKey(0); ok {
			t.Fatal("UnpackKey(0) reported a present key")
		}
	})
}

// FuzzQuadProbeCoversTable checks the property quadratic probing's
// termination rests on (§IV-D): with a power-of-two table, triangular
// probing (h + i(i+1)/2) visits every slot within cap probes, so an
// insert into a non-full table always finds a free slot.
func FuzzQuadProbeCoversTable(f *testing.F) {
	f.Add(uint64(0), uint8(4))
	f.Add(uint64(123456789), uint8(8))
	f.Fuzz(func(t *testing.T, key uint64, logCap uint8) {
		capPow := 1 << (logCap % 11) // up to 1024 slots
		mask := capPow - 1
		home := int(mix64(key, 7)) & mask
		seen := make([]bool, capPow)
		for i := 0; i < capPow; i++ {
			seen[(home+i*(i+1)/2)&mask] = true
		}
		for slot, v := range seen {
			if !v {
				t.Fatalf("cap %d home %d: probe sequence never reaches slot %d", capPow, home, slot)
			}
		}
	})
}
