package hashtab

import "testing"

// TestImageLookupMatchesLookup holds the two lookup implementations
// against each other: after inserting and flushing, ImageLookup over the
// durable image must agree with the device Lookup for every present key
// and for a band of absent ones.
func TestImageLookupMatchesLookup(t *testing.T) {
	const n = 300
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray, Chained} {
		t.Run(kind.String(), func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: kind, NumKeys: n, Seed: 11})
			insertAll(dev, s, n)
			dev.Mem().FlushAll()
			img := dev.Mem().NVMImage()
			for key := uint64(0); key < n; key++ {
				got, ok := s.ImageLookup(img, key)
				if !ok {
					t.Fatalf("ImageLookup(%d) absent after flush", key)
				}
				if got != sumFor(key) {
					t.Fatalf("ImageLookup(%d) = %+v, want %+v", key, got, sumFor(key))
				}
			}
			if kind == GlobalArray {
				return // direct indexing panics out of range by contract
			}
			for key := uint64(n); key < n+50; key++ {
				if _, ok := s.ImageLookup(img, key); ok {
					t.Fatalf("ImageLookup(%d) found a never-inserted key", key)
				}
			}
		})
	}
}

// TestImageLookupEmptyTable: a freshly cleared store finds nothing in
// its own durable image.
func TestImageLookupEmptyTable(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray, Chained} {
		dev := newTestDevice()
		s := New(dev, "tbl", Config{Kind: kind, NumKeys: 64, Seed: 3})
		dev.Mem().FlushAll()
		img := dev.Mem().NVMImage()
		for key := uint64(0); key < 64; key++ {
			if _, ok := s.ImageLookup(img, key); ok {
				t.Fatalf("%v: ImageLookup(%d) found a key in an empty table", kind, key)
			}
		}
	}
}

// TestPackKeyRoundTrip pins the in-band empty-marker encoding.
func TestPackKeyRoundTrip(t *testing.T) {
	for _, key := range []uint64{0, 1, 41, 1 << 32, 1<<63 - 1} {
		w := PackKey(key)
		if w == 0 {
			t.Fatalf("PackKey(%d) collides with the empty marker", key)
		}
		got, ok := UnpackKey(w)
		if !ok || got != key {
			t.Fatalf("UnpackKey(PackKey(%d)) = %d, %v", key, got, ok)
		}
	}
	if _, ok := UnpackKey(0); ok {
		t.Fatal("UnpackKey(0) must report empty")
	}
}
