// Key packing and durable-image lookup: the parts of a checksum store
// that must be readable without a device.
//
// Every store marks slot occupancy in-band by storing key+1 in the key
// word, reserving 0 for "empty" so tables can be durably initialized
// with a plain zero fill. PackKey/UnpackKey centralize that encoding;
// the native fuzz target in fuzz_test.go pins the round-trip.
//
// ImageLookup is the second, device-free read path: it interprets a raw
// durable image (memsim.NVMImage, or the persistency oracle's shadow of
// it) with the same probe sequences the device Lookup uses, but through
// plain byte reads. The crash-consistency checker uses it to predict,
// from the oracle image alone, exactly which keys recovery must find —
// an independent implementation of the lookup semantics, so a
// divergence between ImageLookup-on-oracle and device Lookup-on-NVM
// localizes a persistency bug.
package hashtab

import (
	"gpulp/internal/checksum"
	"gpulp/internal/memsim"
)

// PackKey encodes key for a table's key word: key+1, reserving 0 as the
// in-band empty marker. The key space is [0, 2^64-1) — the all-ones key
// would wrap to the empty marker, and no store can hold it (region ids
// are small integers in practice).
func PackKey(key uint64) uint64 { return key + 1 }

// UnpackKey decodes a key word; ok is false for the empty marker.
func UnpackKey(word uint64) (uint64, bool) {
	if word == 0 {
		return 0, false
	}
	return word - 1, true
}

// imageWord reads uint64 word idx of region r from a durable image,
// with never-written bytes reading as zero.
func imageWord(img []byte, r memsim.Region, idx int) uint64 {
	return memsim.ImageU64(img, r.Base+uint64(idx)*8)
}

// ImageLookup implements Store for quadStore: the triangular probe
// sequence replayed over raw image bytes.
func (q *quadStore) ImageLookup(img []byte, key uint64) (checksum.State, bool) {
	home := q.home(key)
	for i := 0; i <= q.tab.cap; i++ {
		slot := q.slotAt(home, i)
		switch imageWord(img, q.tab.region, q.tab.keyIdx(slot)) {
		case PackKey(key):
			return checksum.State{
				Mod: imageWord(img, q.tab.region, q.tab.modIdx(slot)),
				Par: imageWord(img, q.tab.region, q.tab.parIdx(slot)),
			}, true
		case 0:
			return checksum.State{}, false
		}
	}
	return checksum.State{}, false
}

// ImageLookup implements Store for cuckooStore: one candidate slot per
// table under the store's current hash functions (rehashes evolve the
// seeds; the live store is the only holder of the current epoch, which
// is why image lookup is a store method and not a free function).
func (c *cuckooStore) ImageLookup(img []byte, key uint64) (checksum.State, bool) {
	for table := 0; table < 2; table++ {
		slot := c.slotFor(key, table)
		tab := c.tabs[table]
		if imageWord(img, tab.region, tab.keyIdx(slot)) == PackKey(key) {
			return checksum.State{
				Mod: imageWord(img, tab.region, tab.modIdx(slot)),
				Par: imageWord(img, tab.region, tab.parIdx(slot)),
			}, true
		}
	}
	return checksum.State{}, false
}

// ImageLookup implements Store for globalArray: direct indexing, with
// the sentinel (plain mode) or contributor count (merge mode) deciding
// presence exactly as the device Lookup does.
func (g *globalArray) ImageLookup(img []byte, key uint64) (checksum.State, bool) {
	g.check(key)
	w := g.words()
	mod := imageWord(img, g.region, int(key)*w)
	par := imageWord(img, g.region, int(key)*w+1)
	if g.merge {
		count := imageWord(img, g.region, int(key)*w+2)
		return checksum.State{Mod: mod, Par: par}, count > 0
	}
	if mod == gaSentinel && par == gaSentinel {
		return checksum.State{}, false
	}
	return checksum.State{Mod: mod, Par: par}, true
}

// ImageLookup implements Store for chainedStore: the chain walk over
// image bytes, bounded by the pool capacity against corrupt next links.
func (c *chainedStore) ImageLookup(img []byte, key uint64) (checksum.State, bool) {
	bucket := c.bucketOf(key)
	cur := imageWord(img, c.heads, bucket)
	for depth := 0; cur != 0 && depth <= c.cap; depth++ {
		if cur > uint64(c.cap) {
			// A corrupt head or next link (torn write-back of the pool)
			// points outside the pool: the key is unreachable.
			return checksum.State{}, false
		}
		base := int(cur-1) * chainNodeWords
		if imageWord(img, c.pool, base) == PackKey(key) {
			return checksum.State{
				Mod: imageWord(img, c.pool, base+1),
				Par: imageWord(img, c.pool, base+2),
			}, true
		}
		cur = imageWord(img, c.pool, base+3)
	}
	return checksum.State{}, false
}
