package hashtab

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// quadStore is an open-addressing table with triangular quadratic probing
// (probe i lands at h + i(i+1)/2, which visits every slot of a
// power-of-two table). Capacity is sized for a ≤70% load factor, the
// limit the paper quotes for quadratic probing (§IV-C).
type quadStore struct {
	dev   *gpusim.Device
	tab   slotIO
	mask  int
	seed  uint64
	mode  LockMode
	lock  *gpusim.Lock
	perf  bool
	stats Stats
}

func newQuad(dev *gpusim.Device, name string, cfg Config) *quadStore {
	loadPct := cfg.QuadLoadPct
	if loadPct <= 0 || loadPct > 100 {
		loadPct = 70 // the paper's quadratic-probing limit (§IV-C)
	}
	capacity := nextPow2(cfg.NumKeys*100/loadPct + 1)
	q := &quadStore{
		dev:  dev,
		tab:  makeTable(dev, name, capacity),
		mask: capacity - 1,
		seed: cfg.Seed,
		mode: cfg.LockMode,
		perf: cfg.PerfectSlot,
	}
	if cfg.LockMode == LockBased {
		q.lock = dev.NewLock(name + ".lock")
	}
	return q
}

func (q *quadStore) Kind() Kind        { return Quad }
func (q *quadStore) Stats() *Stats     { return &q.stats }
func (q *quadStore) TableBytes() int64 { return int64(q.tab.cap) * slotBytes }

// TableRegions implements Store.
func (q *quadStore) TableRegions() []memsim.Region { return []memsim.Region{q.tab.region} }
func (q *quadStore) Clear()                        { q.tab.clear() }

func (q *quadStore) home(key uint64) int {
	if q.perf {
		// §IV-D.2 experiment: the first probed entry is always empty.
		return int(key) & q.mask
	}
	return int(mix64(key, q.seed)) & q.mask
}

// slotAt returns the i-th probe position for key.
func (q *quadStore) slotAt(home, i int) int {
	return (home + i*(i+1)/2) & q.mask
}

// Insert implements Store.
func (q *quadStore) Insert(t *gpusim.Thread, key uint64, sum checksum.State) {
	blockStats(t, &q.stats).Inserts++
	switch q.mode {
	case LockBased:
		t.LockAcquire(q.lock)
		defer t.LockRelease(q.lock)
		q.insertPlain(t, key, sum, false)
	case NoAtomic:
		q.insertPlain(t, key, sum, true)
	default:
		q.insertCAS(t, key, sum)
	}
}

func (q *quadStore) insertCAS(t *gpusim.Thread, key uint64, sum checksum.State) {
	st := blockStats(t, &q.stats)
	home := q.home(key)
	for i := 0; i <= q.tab.cap; i++ {
		slot := q.slotAt(home, i)
		t.Op(2) // probe index arithmetic
		st.Probes++
		old := t.AtomicCASU64(q.tab.region, q.tab.keyIdx(slot), 0, PackKey(key))
		if old == 0 || old == PackKey(key) {
			q.tab.storeChecksums(t, slot, sum)
			q.noteProbeDepth(st, int64(i))
			return
		}
		st.Collisions++
		// The next probe's address depends on this CAS's result: a full
		// round trip is exposed on the inserting thread.
		t.Stall(retryStallCycles)
	}
	panic(fmt.Sprintf("hashtab: quad table full inserting key %d (cap %d)", key, q.tab.cap))
}

// insertPlain probes with ordinary loads and claims with ordinary stores.
// Under LockBased the table lock makes this safe; under NoAtomic the
// check-then-act races with concurrent inserters, which the simulator
// surfaces deterministically via RacyTouch — a detected race is a lost
// update the thread must redo at the next probe position, and every probe
// pays an extra verification load (§IV-D.3 found this costs far more than
// the atomics it saves).
func (q *quadStore) insertPlain(t *gpusim.Thread, key uint64, sum checksum.State, racy bool) {
	st := blockStats(t, &q.stats)
	home := q.home(key)
	for i := 0; i <= q.tab.cap; i++ {
		slot := q.slotAt(home, i)
		t.Op(2)
		st.Probes++
		old := t.LoadU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot))
		if old != 0 && old != PackKey(key) {
			st.Collisions++
			continue
		}
		if racy {
			t.Stall(noAtomicStallCycles)
			// Even unsynchronized, the read-check-write-verify sequence
			// serializes at the L2 partition three times over.
			t.SerializeOn(q.tab.region, q.tab.keyIdx(slot)*8)
			t.SerializeOn(q.tab.region, q.tab.keyIdx(slot)*8)
			t.SerializeOn(q.tab.region, q.tab.keyIdx(slot)*8)
			raced := t.RacyTouch(q.tab.region, q.tab.keyIdx(slot)*8, raceWindowCycles)
			t.StoreU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot), PackKey(key))
			// Verification read-back: without atomics, the only way to
			// learn whether our claim survived.
			_ = t.LoadU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot))
			t.Op(2)
			if raced {
				// Our claim was clobbered by a concurrent inserter:
				// undo it and move to the next probe position.
				t.StoreU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot), old)
				st.RaceRedos++
				st.Collisions++
				continue
			}
		} else {
			t.StoreU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot), PackKey(key))
		}
		q.tab.storeChecksums(t, slot, sum)
		q.noteProbeDepth(st, int64(i))
		return
	}
	panic(fmt.Sprintf("hashtab: quad table full inserting key %d (cap %d)", key, q.tab.cap))
}

func (q *quadStore) noteProbeDepth(st *Stats, i int64) {
	if i > st.MaxProbe {
		st.MaxProbe = i
	}
}

// Lookup implements Store. Lookups are off the critical path (crash
// recovery only).
func (q *quadStore) Lookup(t *gpusim.Thread, key uint64) (checksum.State, bool) {
	blockStats(t, &q.stats).Lookups++
	home := q.home(key)
	for i := 0; i <= q.tab.cap; i++ {
		slot := q.slotAt(home, i)
		t.Op(2)
		got := t.LoadU64K(memsim.AccessChecksum, q.tab.region, q.tab.keyIdx(slot))
		switch got {
		case PackKey(key):
			return q.tab.loadChecksums(t, slot), true
		case 0:
			return checksum.State{}, false
		}
	}
	return checksum.State{}, false
}
