package hashtab

import (
	"fmt"
	"testing"

	"gpulp/internal/gpusim"
)

// BenchmarkInsert measures bulk checksum insertion per store design —
// the operation on LP's critical path.
func BenchmarkInsert(b *testing.B) {
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray} {
		for _, mode := range []LockMode{LockFree, LockBased} {
			if kind == GlobalArray && mode == LockBased {
				continue // the global array has nothing to lock
			}
			b.Run(fmt.Sprintf("%v-%v", kind, mode), func(b *testing.B) {
				const n = 2048
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					dev := newTestDevice()
					s := New(dev, "tbl", Config{Kind: kind, LockMode: mode, NumKeys: n, Seed: 7})
					b.StartTimer()
					insertAll(dev, s, n)
				}
			})
		}
	}
}

// BenchmarkLookup measures recovery-time lookup per store design.
func BenchmarkLookup(b *testing.B) {
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray} {
		b.Run(kind.String(), func(b *testing.B) {
			const n = 2048
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: kind, NumKeys: n, Seed: 7})
			insertAll(dev, s, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.Launch("lookup", gpusim.D1(n), gpusim.D1(32), func(blk *gpusim.Block) {
					blk.ForAll(func(t *gpusim.Thread) {
						if t.Linear == 0 {
							s.Lookup(t, uint64(blk.LinearIdx))
						}
					})
				})
			}
		})
	}
}
